package srlb

import (
	"context"
	"io"
	"time"

	"srlb/internal/experiments"
	"srlb/internal/feedback"
	"srlb/internal/stats"
	"srlb/internal/testbed"
	"srlb/internal/trace"
	"srlb/internal/wiki"
)

// Re-exported configuration and result types. Aliases keep the public
// surface thin while the implementation lives in internal packages.
type (
	// Policy names a complete load-balancing configuration: SR candidate
	// count plus the per-server connection acceptance policy.
	Policy = experiments.PolicySpec
	// Cluster fixes the testbed: server count, worker/core/backlog
	// parameters, seed. The zero value is the paper's 12-server platform.
	Cluster = experiments.ClusterConfig
	// PoissonRun is the outcome of one Poisson-workload run.
	PoissonRun = experiments.PoissonRun

	// The composable experiment API: a Scenario is one cell (cluster ×
	// policy × workload × load point), a Sweep is the cross product
	// policies × loads × seeds over one workload, and a Runner executes
	// either on a worker pool with deterministic results.
	Scenario    = experiments.Scenario
	Sweep       = experiments.Sweep
	Runner      = experiments.Runner
	CellResult  = experiments.CellResult
	CellOutcome = experiments.CellOutcome
	SweepResult = experiments.SweepResult
	// ClusterVariant is the Sweep's topology/event axis: each variant
	// derives a cluster (replica count, miss-fallback, event schedule)
	// from the sweep's base.
	ClusterVariant = experiments.ClusterVariant

	// The declarative topology layer: a Topology names VIPs (each with
	// its own scheme), declares named server pools that several VIPs may
	// share (PoolSpec + VIPSpec.Pool — the contention regime), attaches
	// N LB replicas over anycast/ECMP, and schedules lifecycle Events;
	// testbed.Build compiles it to wired nodes. Cluster remains the
	// one-line single-LB/single-VIP wrapper.
	Topology = testbed.Topology
	VIPSpec  = testbed.VIPSpec
	PoolSpec = testbed.PoolSpec
	Event    = testbed.Event

	// The replication-statistics layer: a Sweep with several Seeds
	// aggregates into per-cell mean ± 95% CI. Dist summarizes one
	// metric's replicates; Replicated pairs the raw per-seed values
	// with their Dist; CellStats/SweepStats are the aggregated forms of
	// CellResult/SweepResult (see SweepResult.Aggregate and
	// Runner.RunSweepStats).
	Dist       = stats.Dist
	Interval   = stats.Interval
	CellStats  = experiments.CellStats
	SweepStats = experiments.SweepStats
	// LoadGrid is the vector load axis of a grid sweep (Sweep.LoadGrid):
	// the cross product of per-service ρ axes, one logical cell per grid
	// point. Adaptive configures adaptive replication for
	// Runner.RunSweepStats: a mandatory MinSeeds replicate floor per
	// cell, then one seed per round until the relative CI95 hits
	// CITarget (cells at policy-crossover boundaries get a tighter
	// target), capped at MaxSeeds.
	LoadGrid = experiments.LoadGrid
	Adaptive = experiments.Adaptive

	// Workload is the arrival-process-plus-demand-model interface every
	// scenario replays; these are the built-in implementations.
	// VectorWorkload is the extension grid sweeps dispatch through
	// (MultiServiceWorkload implements it).
	Workload        = experiments.Workload
	VectorWorkload  = experiments.VectorWorkload
	PoissonWorkload = experiments.PoissonWorkload
	BurstyWorkload  = experiments.BurstyWorkload
	TraceWorkload   = experiments.TraceWorkload
	WikiWorkload    = experiments.WikiWorkload
	// PoissonStats is the Extra payload of the Poisson-family workloads.
	PoissonStats = experiments.PoissonStats

	// The multi-service layer: a MultiServiceWorkload interleaves one
	// arrival stream per VIP (each a ServiceWorkload named by a
	// ServiceSpec) into a single deterministic run against a multi-VIP
	// cluster, reporting the outcome both aggregate and per service
	// (VIPOutcome per cell, VIPStats per aggregate). Services may share
	// a server pool (ServiceSpec.Pool + MultiServiceWorkload.Pools) and
	// carry their own load axes (ServiceLoad — a fixed victim ρ against
	// a swept aggressor).
	MultiServiceWorkload = experiments.MultiServiceWorkload
	ServiceSpec          = experiments.ServiceSpec
	ServiceLoad          = experiments.ServiceLoad
	ServiceWorkload      = experiments.ServiceWorkload
	ServiceStream        = experiments.ServiceStream
	PoissonService       = experiments.PoissonService
	BurstyService        = experiments.BurstyService
	WikiService          = experiments.WikiService
	VIPOutcome           = experiments.VIPOutcome
	VIPStats             = experiments.VIPStats

	// Calibration measures λ0, the §V-A drop-onset rate.
	Calibration       = experiments.CalibrationConfig
	CalibrationResult = experiments.CalibrationResult

	// Figure configs/results (figures 2–8 of the paper).
	Fig2Config = experiments.Fig2Config
	Fig2Result = experiments.Fig2Result
	CDFConfig  = experiments.CDFConfig
	CDFResult  = experiments.CDFResult
	Fig4Config = experiments.Fig4Config
	Fig4Result = experiments.Fig4Result
	WikiConfig = experiments.WikiConfig
	WikiResult = experiments.WikiResult
	// WikiRun is one policy's replay outcome — also the Extra payload a
	// WikiWorkload/TraceWorkload cell carries.
	WikiRun = experiments.WikiRun

	// WikiDay parameterizes the synthetic Wikipedia day (§VI).
	WikiDay = wiki.Config
	// WikiCost is the per-replica service-cost model.
	WikiCost = wiki.CostModel
	// TraceEntry is one request of a recorded access trace.
	TraceEntry = trace.Entry

	// Ablation studies (beyond the paper's own figures).
	AblationConfig = experiments.AblationConfig
	AblationResult = experiments.AblationResult
	// RetransmitConfig/Result: the §IV-C abort-on-overflow study.
	RetransmitConfig = experiments.RetransmitConfig
	RetransmitResult = experiments.RetransmitResult
	// HeteroConfig/Result: the heterogeneous-cluster extension.
	HeteroConfig = experiments.HeteroConfig
	HeteroResult = experiments.HeteroResult
	// FailoverConfig/Result: the LB-replica failover transient (kill a
	// replica mid-run; Maglev fallback vs random selection).
	FailoverConfig = experiments.FailoverConfig
	FailoverResult = experiments.FailoverResult
	// ResilienceConfig/Result/Row: the warm-handoff resilience ablation
	// — {stateless, chash, warm} recovery disciplines through replica
	// kill, rack loss, and rolling-upgrade schedules.
	ResilienceConfig = experiments.ResilienceConfig
	ResilienceResult = experiments.ResilienceResult
	ResilienceRow    = experiments.ResilienceRow
	// ChurnConfig/Result: the pool churn/autoscale study (drain and
	// re-add servers under load).
	ChurnConfig = experiments.ChurnConfig
	ChurnResult = experiments.ChurnResult
	// MultiServiceConfig/Result: the concurrent multi-service study
	// (web Poisson + wiki replay + batch bursty sharing the LB, per-VIP
	// per-policy outcomes).
	MultiServiceConfig = experiments.MultiServiceConfig
	MultiServiceResult = experiments.MultiServiceResult
	MultiServiceRow    = experiments.MultiServiceRow
	// InterferenceConfig/Result: the cross-service interference study —
	// a pinned web service and a swept bursty batch service contending
	// on one shared pool, per-victim p99/completion degradation per
	// policy.
	InterferenceConfig = experiments.InterferenceConfig
	InterferenceResult = experiments.InterferenceResult
	InterferenceRow    = experiments.InterferenceRow
	// PoliciesConfig/Result: the load-feedback policy ablation —
	// {random2, chash2, wleastload, flowlet} over the interference
	// workload and its pool-churn variant, with the telemetry plane
	// enabled and flowlet re-steer counts reported per cell.
	PoliciesConfig = experiments.PoliciesConfig
	PoliciesResult = experiments.PoliciesResult
	PoliciesRow    = experiments.PoliciesRow
	// RhoGridConfig/Result: the ρ-grid study — the four-way policy
	// ablation run over a full web-ρ × batch-ρ load matrix on one
	// shared pool, with adaptive replication concentrating seeds at
	// policy-crossover cells; renders per-policy ASCII heatmaps.
	RhoGridConfig = experiments.RhoGridConfig
	RhoGridResult = experiments.RhoGridResult
	RhoGridRow    = experiments.RhoGridRow
	// MultiServiceStats is a multi-service cell's Extra payload: the
	// cluster-side flowlet re-steer/rebind counters.
	MultiServiceStats = experiments.MultiServiceStats

	// FeedbackConfig tunes the server-load telemetry plane
	// (Cluster.Feedback / Topology.Feedback): publish interval, report
	// TTL, EWMA smoothing.
	FeedbackConfig = feedback.Config
	// FeedbackReport is one server's published load sample.
	FeedbackReport = feedback.Report

	// VIPScaleConfig/Result: per-packet dispatch cost vs advertised
	// service count (100 → 10k VIPs) per selection scheme, on generated
	// shared-pool topologies — the O(1)-dispatch flat-curve figure.
	VIPScaleConfig = experiments.VIPScaleConfig
	VIPScaleResult = experiments.VIPScaleResult
	VIPScaleRow    = experiments.VIPScaleRow
	VIPScaleScheme = experiments.VIPScaleScheme

	// HorizonConfig/Result: the constant-memory soak — 10⁸ open-loop
	// queries measured through streaming sketches with a flat heap.
	HorizonConfig = experiments.HorizonConfig
	HorizonResult = experiments.HorizonResult
)

// Lifecycle-event constructors for Topology.Events / Cluster.Events.
var (
	// AddServer grows a VIP's pool by one freshly built server.
	AddServer = testbed.AddServer
	// DrainServer removes a server from selection, letting established
	// flows complete.
	DrainServer = testbed.DrainServer
	// FailServer is fail-stop: selection, attachment and responses all
	// cease.
	FailServer = testbed.FailServer
	// AddPoolServer/DrainPoolServer/FailPoolServer are the pool-targeted
	// forms for named shared pools: one event drives every service
	// selecting over the pool.
	AddPoolServer   = testbed.AddPoolServer
	DrainPoolServer = testbed.DrainPoolServer
	FailPoolServer  = testbed.FailPoolServer
	// FailReplica removes an LB replica from the anycast groups.
	FailReplica = testbed.FailReplica
	// RecoverReplica re-attaches a failed replica, stateless.
	RecoverReplica = testbed.RecoverReplica
	// RecoverReplicaWarm re-attaches a failed replica with a warm flow
	// table: a surviving donor's live snapshot, or (donor == replica)
	// the replica's own pre-fail snapshot aged by its downtime.
	RecoverReplicaWarm = testbed.RecoverReplicaWarm
	// FailPoolRack fails several of a pool's servers at one
	// rate-relative instant — the correlated top-of-rack loss.
	FailPoolRack = testbed.FailPoolRack
	// RollingUpgradeEvents sequences a fail/recover pair per replica —
	// the rolling-upgrade maintenance schedule, warm or stateless.
	RollingUpgradeEvents = testbed.RollingUpgradeEvents
	// ResolveEvents resolves rate-relative event times (Event.AtFraction)
	// against an arrival span. Workloads resolve their cluster's events
	// automatically per load point; call this only when handing a
	// relative schedule straight to BuildTopology.
	ResolveEvents = testbed.ResolveEvents
)

// Policy constructors.
var (
	// RR is the paper's baseline: one random server, no Service Hunting.
	RR = experiments.RR
	// SRStatic is Algorithm 1 (SRc) over two random candidates.
	SRStatic = experiments.SRc
	// SRStaticK generalizes SRc to k candidates.
	SRStaticK = experiments.SRcK
	// SRDynamic is Algorithm 2 (SRdyn) over two random candidates.
	SRDynamic = experiments.SRdyn
	// PaperPolicies returns {RR, SR4, SR8, SR16, SRdyn} — the lines of
	// figures 2, 3 and 5.
	PaperPolicies = experiments.PaperPolicies
	// Random2/CHash2 are the load-oblivious anchors of the policy
	// ablation; WeightedLeastLoadPolicy and FlowletPolicy are the
	// load-aware schemes over the feedback plane. AblationPolicies
	// returns all four.
	Random2                 = experiments.Random2
	CHash2                  = experiments.CHash2
	WeightedLeastLoadPolicy = experiments.WeightedLeastLoadPolicy
	FlowletPolicy           = experiments.FlowletPolicy
	AblationPolicies        = experiments.AblationPolicies
)

// Replicated pairs a metric's raw per-replicate values with the Dist of
// their float64 projection — the element type of CellStats
// (Replicated[time.Duration] for response times, projected to seconds).
type Replicated[T any] = stats.Replicated[T]

// Describe computes the Dist (mean, std, stderr, Student-t 95% CI) of a
// sample of observations.
func Describe(xs []float64) Dist { return stats.Describe(xs) }

// NewReplicated builds a Replicated from per-replicate values and the
// projection used for aggregation.
func NewReplicated[T any](values []T, proj func(T) float64) Replicated[T] {
	return stats.NewReplicated(values, proj)
}

// BootstrapCI returns the deterministic percentile-bootstrap interval
// for an arbitrary statistic of xs — the small-sample tool for order
// statistics (percentiles, CDF bands) where the t interval of Describe
// does not apply.
func BootstrapCI(xs []float64, stat func([]float64) float64, resamples int, conf float64, seed uint64) Interval {
	return stats.BootstrapCI(xs, stat, resamples, conf, seed)
}

// MeanDemand is the paper's Poisson-workload CPU cost mean (100 ms).
const MeanDemand = experiments.MeanDemand

// DeriveSeeds expands a base seed into n well-separated, pairwise
// distinct, nonzero seeds for a Sweep's replication axis.
func DeriveSeeds(base uint64, n int) []uint64 { return experiments.DeriveSeeds(base, n) }

// ExtendSeeds appends n derived seeds to an existing list, skipping
// zero and anything already present — how adaptive replication grows a
// user-supplied seed list to Adaptive.MaxSeeds.
func ExtendSeeds(existing []uint64, base uint64, n int) []uint64 {
	return experiments.ExtendSeeds(existing, base, n)
}

// RunPoisson replays §V's workload: `queries` Poisson arrivals at
// ratePerSec with Exp(MeanDemand) demands under the given policy.
func RunPoisson(cluster Cluster, policy Policy, ratePerSec float64, queries int) PoissonRun {
	return experiments.RunPoisson(cluster, policy, ratePerSec, queries, experiments.PoissonHooks{})
}

// Calibrate measures λ0 (§V-A's bootstrap) by a speculative-parallel
// ladder search: each round probes Calibration.ProbeFan rates
// concurrently, landing within one bisection tolerance of the serial
// search in ~ProbeFan× fewer serial rounds.
func Calibrate(cfg Calibration) CalibrationResult { return experiments.Calibrate(cfg) }

// CalibrateCached is Calibrate behind a process-wide cache keyed by the
// cluster fingerprint — sweeps and figures sharing a topology calibrate
// it once.
func CalibrateCached(cfg Calibration) CalibrationResult { return experiments.CalibrateCached(cfg) }

// Legacy figure entry points. Each is a one-line wrapper over a
// Scenario/Sweep composition in internal/experiments — prefer building
// Sweeps directly for new workloads; these survive for the paper's
// artifacts and existing callers.

// RunFig2 sweeps mean response time vs normalized load (figure 2).
func RunFig2(cfg Fig2Config) Fig2Result { return experiments.RunFig2(cfg) }

// RunFig3 runs the high-load CDF at ρ=0.88 (figure 3).
func RunFig3(cfg CDFConfig) CDFResult { return experiments.RunFig3(cfg) }

// RunFig4 records instantaneous load and fairness timelines (figure 4).
func RunFig4(cfg Fig4Config) Fig4Result { return experiments.RunFig4(cfg) }

// RunFig5 runs the light-load CDF at ρ=0.61 (figure 5).
func RunFig5(cfg CDFConfig) CDFResult { return experiments.RunFig5(cfg) }

// RunWiki replays a (synthetic) Wikipedia day under RR and SR4, producing
// the data behind figures 6, 7 and 8.
func RunWiki(cfg WikiConfig) WikiResult { return experiments.RunWiki(cfg) }

// RunAllAblations executes the design-choice studies listed in DESIGN.md.
func RunAllAblations(cfg AblationConfig) []AblationResult {
	return experiments.RunAllAblations(cfg)
}

// RunRetransmitAblation compares abort-on-overflow (RST) against silent
// drops + client SYN retransmission under overload — the measurement-
// hygiene decision of §IV-C.
func RunRetransmitAblation(cfg RetransmitConfig) RetransmitResult {
	return experiments.RunRetransmitAblation(cfg)
}

// RunHetero runs RR/SR4/SRdyn on a cluster with mixed core counts — the
// capacity-shedding extension the local-threshold design enables.
func RunHetero(cfg HeteroConfig) HeteroResult { return experiments.RunHetero(cfg) }

// RunFailover kills an LB replica mid-run and measures the RT/refusal
// transient, comparing consistent-hash selection + miss-fallback against
// random selection — the stateless-failover story of §II-B, measured.
func RunFailover(cfg FailoverConfig) FailoverResult { return experiments.RunFailover(cfg) }

// RunResilience ablates {stateless restart, chash miss-fallback, warm
// handoff} through replica-kill, rack-loss and rolling-upgrade
// schedules, reporting completion rates with CIs per (scenario, mode).
func RunResilience(cfg ResilienceConfig) ResilienceResult { return experiments.RunResilience(cfg) }

// RunChurn drains and re-adds part of the server pool under load,
// comparing how much of the capacity squeeze each policy passes through
// to clients, steady vs churning, with CIs across seeds. The schedule is
// rate-relative: one pair of variants serves the whole load sweep.
func RunChurn(cfg ChurnConfig) ChurnResult { return experiments.RunChurn(cfg) }

// RunMultiService drives three heterogeneous services — web Poisson,
// Wikipedia-day replay, bursty batch — concurrently through the shared
// LB, sweeping load under each policy and reporting per-service
// response-time and completion rows (with CIs across seeds).
func RunMultiService(cfg MultiServiceConfig) MultiServiceResult {
	return experiments.RunMultiService(cfg)
}

// RunInterference sweeps a bursty batch service's load against a pinned
// web service on ONE shared server pool and reports each policy's
// per-victim p99/completion degradation (with CIs across seeds) — the
// cross-service contention measurement shared-backend deployments care
// about.
func RunInterference(cfg InterferenceConfig) InterferenceResult {
	return experiments.RunInterference(cfg)
}

// RunPolicies runs the load-feedback policy ablation: {random2, chash2,
// wleastload, flowlet} over the cross-service interference workload and
// its pool-churn variant, with the telemetry plane enabled and clients
// closing connections explicitly so flowlet boundaries exist. Reports
// the per-victim p99/completion grid plus flowlet re-steer counts.
func RunPolicies(cfg PoliciesConfig) PoliciesResult {
	return experiments.RunPolicies(cfg)
}

// RunRhoGrid runs the policy ablation over a full web-ρ × batch-ρ load
// matrix on one shared pool (Sweep.LoadGrid), optionally under
// adaptive replication (RhoGridConfig.Adaptive): every cell runs at
// least MinSeeds replicates, easy cells stop once their relative CI95
// hits the target, and cells at policy-crossover boundaries absorb the
// saved budget. Reports per-(grid point, policy, service) rows and
// per-policy ASCII heatmaps, byte-identical at any worker count.
func RunRhoGrid(cfg RhoGridConfig) RhoGridResult {
	return experiments.RunRhoGrid(cfg)
}

// RunVIPScale sweeps the advertised service count (default 100 → 10k
// VIPs over shared pools, via testbed.GenerateTopology) per selection
// scheme and measures the per-packet dispatch cost of the SYN and
// steered paths by driving the LB's Handle loop directly — the
// latency-vs-#services figure whose headline is the flat curve.
func RunVIPScale(cfg VIPScaleConfig) VIPScaleResult {
	return experiments.RunVIPScale(cfg)
}

// RunHorizon executes the constant-memory soak: a single very long
// open-loop cell (default 10⁸ queries at ρ = 0.85) measured entirely
// through streaming sketches, sampling the heap as it goes. ctx cancels
// mid-run; the result then holds the partial measurement.
func RunHorizon(ctx context.Context, cfg HorizonConfig) (HorizonResult, error) {
	return experiments.RunHorizon(ctx, cfg)
}

// BuildTopology compiles a declarative Topology into a wired cluster —
// the low-level entry point for hand-built multi-LB / multi-VIP
// scenarios; experiments usually go through Cluster or a Sweep's
// ClusterVariant axis instead.
func BuildTopology(top Topology) *testbed.Testbed { return testbed.Build(top) }

// SynthesizeWikiTrace writes a synthetic Wikipedia day to w in the trace
// format (cmd/srlb-trace wraps this).
func SynthesizeWikiTrace(day WikiDay, w io.Writer) (wikiQueries, staticQueries int, err error) {
	tw := trace.NewWriter(w)
	return wiki.Synthesize(day, tw)
}

// ReadTrace loads a recorded access trace.
func ReadTrace(r io.Reader) ([]TraceEntry, error) { return trace.ReadAll(r) }

// QuickComparison runs a small RR-vs-SR4 comparison at the given load and
// returns (rrMean, sr4Mean) — the two-line demo of the README. It
// calibrates the cluster once and runs both policies as one parallel
// Sweep against the same calibrated Poisson workload.
func QuickComparison(seed uint64, servers int, rho float64, queries int) (rrMean, sr4Mean time.Duration) {
	cluster := Cluster{Seed: seed, Servers: servers}
	cal := CalibrateCached(Calibration{Cluster: cluster, Queries: queries})
	res, _ := Runner{}.RunSweep(context.Background(), Sweep{
		Cluster:  cluster,
		Policies: []Policy{RR(), SRStatic(4)},
		Loads:    []float64{rho},
		Workload: PoissonWorkload{Lambda0: cal.Lambda0, Queries: queries},
	})
	return res.Cell(0, 0, 0).Outcome.RT.Mean(), res.Cell(1, 0, 0).Outcome.RT.Mean()
}
