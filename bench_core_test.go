// Core hot-path benchmarks and the BENCH_core.json perf trajectory.
//
// Seven benchmarks cover the layers the perf work touches: the DES
// event kernel, sketch ingestion, the generator's sink-mode query path,
// a reference figure-2 cell, the per-packet dispatch lookup at 1k and
// 10k advertised VIPs, and the telemetry plane's report ingest. TestBenchCore (gated behind SRLB_BENCH_CORE=1)
// runs them through testing.Benchmark, writes the measurements to
// BENCH_core.json, and fails when any benchmark's allocs/op regresses
// more than 2x against the committed baseline — the CI smoke job runs
// it with -benchtime=1x. TestDispatchComplexityClass (same gate) pins
// the O(1) claim directly: dispatch at 10k VIPs must stay within 2x of
// its 1k cost on both the SYN and steered paths.
package srlb_test

import (
	"encoding/json"
	"fmt"
	"net/netip"
	"os"
	"runtime"
	"testing"
	"time"

	"srlb"
	"srlb/internal/des"
	"srlb/internal/experiments"
	"srlb/internal/feedback"
	"srlb/internal/rng"
	"srlb/internal/sketch"
	"srlb/internal/testbed"
)

// BenchmarkDESKernel measures the calendar-queue schedule/fire cycle
// with a realistically sized co-pending event set.
func BenchmarkDESKernel(b *testing.B) {
	sim := des.New()
	const pending = 4096
	r := rng.New(7)
	spacing := 50 * time.Microsecond
	for i := 0; i < pending; i++ {
		sim.Schedule(time.Duration(r.Int64N(int64(pending)*int64(spacing))), func() {})
	}
	b.ReportAllocs()
	b.ResetTimer()
	var fired int
	for i := 0; i < b.N; i++ {
		// Each op: fire one event and schedule a replacement, keeping the
		// pending population constant — the steady state of a long run.
		sim.Step()
		fired++
		sim.ScheduleAfter(time.Duration(pending)*spacing, func() {})
	}
	_ = fired
}

// BenchmarkSketchAdd measures histogram ingestion over a heavy-tailed
// sample stream (the response-time shape the sink sees).
func BenchmarkSketchAdd(b *testing.B) {
	h := sketch.New()
	r := rng.New(11)
	samples := make([]time.Duration, 8192)
	for i := range samples {
		samples[i] = rng.Exp(r, 100*time.Millisecond)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Add(samples[i&8191])
	}
	benchCoreSink = h.Count()
}

// BenchmarkGeneratorSink measures the full sink-mode query path: one op
// is one query launched, balanced, served, and folded into the sketch —
// packets, timers, and pending records all recycled.
func BenchmarkGeneratorSink(b *testing.B) {
	tb := testbed.New(testbed.Config{Seed: 13, Servers: 4})
	sink := testbed.NewSketchSink()
	tb.Gen.Sink = sink
	r := rng.Split(13, 99)
	p := rng.NewPoisson(r, 200, 0)
	b.ReportAllocs()
	b.ResetTimer()
	remaining := b.N
	var id uint64
	var launchNext func()
	launchNext = func() {
		if remaining == 0 {
			return
		}
		remaining--
		q := testbed.Query{ID: id, Demand: rng.Exp(r, 20*time.Millisecond)}
		id++
		tb.Gen.Launch(q)
		if remaining > 0 {
			tb.Sim.At(p.Next(), launchNext)
		}
	}
	tb.Sim.At(p.Next(), launchNext)
	tb.Sim.Run()
	tb.Gen.DrainPending()
	benchCoreSink = int(sink.Total().Counters.Offered)
}

// BenchmarkFig2Cell measures one scaled reference figure-2 cell end to
// end (the unit of every sweep).
func BenchmarkFig2Cell(b *testing.B) {
	cluster := srlb.Cluster{Seed: 0xbe7c, Servers: 4}
	l0 := cluster.TheoreticalCapacity()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run := srlb.RunPoisson(cluster, srlb.SRStatic(4), 0.85*l0, 3000)
		benchCoreSink = run.RT.Count()
	}
}

// benchmarkDispatchLookup measures the steered per-packet path (VIP
// index lookup → flow-table hit → steer SRH → wire marshal) on a
// generated topology of the given service count. The rig never runs the
// simulator and drops every delivery, so one op is pure dispatch work.
func benchmarkDispatchLookup(b *testing.B, vips int) {
	rig := experiments.NewDispatchRig(0x51ca1e, vips, 16, 12, experiments.VIPScaleSchemes()[0])
	const flows = 4096
	rig.SeedFlows(flows)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rig.SteerOp(i, flows)
	}
}

// BenchmarkDispatchLookup1k is the steered dispatch cost at 1k VIPs.
func BenchmarkDispatchLookup1k(b *testing.B) { benchmarkDispatchLookup(b, 1000) }

// BenchmarkDispatchLookup10k is the same loop at 10k VIPs — with O(1)
// dispatch its ns/op matches the 1k figure; any per-VIP scan would show
// up as a ~10x blowout here.
func BenchmarkDispatchLookup10k(b *testing.B) { benchmarkDispatchLookup(b, 10000) }

// BenchmarkFeedbackIngest measures the telemetry plane's steady-state
// ingest path: one op is one server sampling its scoreboard (EWMA fold)
// and publishing the report into the view's (VIP, server) slot. After
// first contact the slot is reused, so the loop must allocate nothing —
// publishing scales with servers × reporting rate, and any per-report
// allocation would dominate long feedback-enabled sweeps.
func BenchmarkFeedbackIngest(b *testing.B) {
	var now time.Duration
	view := feedback.NewView(feedback.Config{Enabled: true}, func() time.Duration { return now })
	vip := netip.MustParseAddr("2001:db8::1")
	const servers = 16
	addrs := make([]netip.Addr, servers)
	pubs := make([]*feedback.Publisher, servers)
	addr := netip.MustParseAddr("2001:db8:0:1::1")
	for i := range addrs {
		addrs[i] = addr
		addr = addr.Next()
		pubs[i] = feedback.NewPublisher(0)
		view.Ingest(vip, addrs[i], pubs[i].Sample(now, i%8, 8, i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := i % servers
		now += time.Millisecond
		view.Ingest(vip, addrs[s], pubs[s].Sample(now, s%8, 8, i&31))
	}
	benchCoreSink = int(view.Stats().Ingests)
}

// TestDispatchComplexityClass pins the complexity class the vipscale
// experiment plots: per-packet dispatch cost at 10k advertised services
// must stay within 2x of the 1k cost on both the SYN (Service Hunting)
// and steered (flow-table hit) paths. The 2x bound is deliberately
// loose — cache effects at 10x the working set are real — but an O(n)
// dispatch structure fails it by a factor of ~5. Timing is done with
// manual min-over-rounds wall loops (not testing.Benchmark) so the test
// stays meaningful under the CI smoke job's -benchtime=1x.
func TestDispatchComplexityClass(t *testing.T) {
	if os.Getenv("SRLB_BENCH_CORE") == "" {
		t.Skip("set SRLB_BENCH_CORE=1 to run the complexity-class regression")
	}
	const (
		ops    = 50000
		rounds = 5
		flows  = 4096
		bound  = 2.0
	)
	measure := func(vips int) (synNs, steerNs float64) {
		rig := experiments.NewDispatchRig(0x51ca1e, vips, 16, 12, experiments.VIPScaleSchemes()[0])
		rig.SeedFlows(flows)
		rig.MeasureSYN(ops / 10)
		rig.MeasureSteered(ops/10, flows)
		for round := 0; round < rounds; round++ {
			if s := rig.MeasureSYN(ops); round == 0 || s < synNs {
				synNs = s
			}
			if s := rig.MeasureSteered(ops, flows); round == 0 || s < steerNs {
				steerNs = s
			}
		}
		return synNs, steerNs
	}
	syn1k, steer1k := measure(1000)
	syn10k, steer10k := measure(10000)
	t.Logf("syn: 1k %.0f ns/op, 10k %.0f ns/op (ratio %.2f)", syn1k, syn10k, syn10k/syn1k)
	t.Logf("steer: 1k %.0f ns/op, 10k %.0f ns/op (ratio %.2f)", steer1k, steer10k, steer10k/steer1k)
	if syn10k > bound*syn1k {
		t.Errorf("SYN dispatch at 10k VIPs costs %.0f ns/op, more than %.1fx the 1k cost %.0f — dispatch is not O(1)",
			syn10k, bound, syn1k)
	}
	if steer10k > bound*steer1k {
		t.Errorf("steered dispatch at 10k VIPs costs %.0f ns/op, more than %.1fx the 1k cost %.0f — dispatch is not O(1)",
			steer10k, bound, steer1k)
	}
}

var benchCoreSink int

// benchCoreJSON is the BENCH_core.json schema: one row per benchmark
// with the headline per-op costs plus the post-run live heap.
type benchCoreJSON struct {
	Schema     string          `json:"schema"`
	GoVersion  string          `json:"go_version"`
	Benchmarks []benchCoreCase `json:"benchmarks"`
}

type benchCoreCase struct {
	Name        string  `json:"name"`
	N           int     `json:"n"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	// HeapAfter is HeapAlloc right after the benchmark returned (before
	// any explicit GC) — a coarse peak-liveness signal for the smoke job.
	HeapAfter uint64 `json:"heap_after_bytes"`
}

// TestBenchCore emits BENCH_core.json and enforces the allocs/op
// regression gate against the committed baseline. Gated behind
// SRLB_BENCH_CORE=1 so the ordinary test run stays fast; the CI smoke
// job runs it with -benchtime=1x.
func TestBenchCore(t *testing.T) {
	if os.Getenv("SRLB_BENCH_CORE") == "" {
		t.Skip("set SRLB_BENCH_CORE=1 to run the core benchmark smoke suite")
	}
	cases := []struct {
		name string
		fn   func(*testing.B)
	}{
		{"DESKernel", BenchmarkDESKernel},
		{"SketchAdd", BenchmarkSketchAdd},
		{"GeneratorSink", BenchmarkGeneratorSink},
		{"Fig2Cell", BenchmarkFig2Cell},
		{"DispatchLookup1k", BenchmarkDispatchLookup1k},
		{"DispatchLookup10k", BenchmarkDispatchLookup10k},
		{"FeedbackIngest", BenchmarkFeedbackIngest},
	}
	// Read the committed baseline before the output path can clobber it
	// (locally both default to BENCH_core.json).
	baseline, baseErr := readBenchCoreBaseline("BENCH_core.json")
	if baseErr != nil {
		t.Fatal(baseErr)
	}

	out := benchCoreJSON{Schema: "bench_core/v1", GoVersion: runtime.Version()}
	var ms runtime.MemStats
	for _, c := range cases {
		res := testing.Benchmark(c.fn)
		runtime.ReadMemStats(&ms)
		row := benchCoreCase{
			Name:        c.name,
			N:           res.N,
			NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
			AllocsPerOp: res.AllocsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
			HeapAfter:   ms.HeapAlloc,
		}
		out.Benchmarks = append(out.Benchmarks, row)
		t.Logf("%-14s n=%-8d %12.1f ns/op %6d allocs/op %10d B/op", row.Name, row.N, row.NsPerOp, row.AllocsPerOp, row.BytesPerOp)
	}

	path := os.Getenv("SRLB_BENCH_CORE_OUT")
	if path == "" {
		path = "BENCH_core.json"
	}
	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", path)

	if err := checkBenchCoreBaseline(baseline, out); err != nil {
		t.Fatal(err)
	}
}

// readBenchCoreBaseline loads the committed baseline; a missing file is
// not an error (the first run seeds it).
func readBenchCoreBaseline(path string) (*benchCoreJSON, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var base benchCoreJSON
	if err := json.Unmarshal(buf, &base); err != nil {
		return nil, fmt.Errorf("baseline %s: %w", path, err)
	}
	return &base, nil
}

// benchCoreAllocSlack absorbs one-time setup allocations: at the CI
// smoke job's -benchtime=1x a benchmark runs a single op, so its fixed
// setup (testbed construction, first slice growths) lands entirely on
// that op's allocs/op instead of amortizing away.
const benchCoreAllocSlack = 64

// checkBenchCoreBaseline compares allocs/op against the committed
// BENCH_core.json: growth beyond 2x + slack on any benchmark fails.
// ns/op is NOT gated — CI machines vary too much — but travels in the
// artifact so regressions stay visible across commits.
func checkBenchCoreBaseline(base *benchCoreJSON, cur benchCoreJSON) error {
	if base == nil {
		return nil
	}
	byName := make(map[string]benchCoreCase, len(base.Benchmarks))
	for _, c := range base.Benchmarks {
		byName[c.Name] = c
	}
	for _, c := range cur.Benchmarks {
		b, ok := byName[c.Name]
		if !ok {
			continue
		}
		if c.AllocsPerOp > 2*b.AllocsPerOp+benchCoreAllocSlack {
			return fmt.Errorf("%s: %d allocs/op, more than 2x the baseline %d (+%d slack)",
				c.Name, c.AllocsPerOp, b.AllocsPerOp, benchCoreAllocSlack)
		}
	}
	return nil
}
