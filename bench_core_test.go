// Core hot-path benchmarks and the BENCH_core.json perf trajectory.
//
// Four benchmarks cover the layers the streaming-metrics overhaul
// touches: the DES event kernel, sketch ingestion, the generator's
// sink-mode query path, and a reference figure-2 cell. TestBenchCore
// (gated behind SRLB_BENCH_CORE=1) runs them through testing.Benchmark,
// writes the measurements to BENCH_core.json, and fails when any
// benchmark's allocs/op regresses more than 2x against the committed
// baseline — the CI smoke job runs it with -benchtime=1x.
package srlb_test

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"srlb"
	"srlb/internal/des"
	"srlb/internal/rng"
	"srlb/internal/sketch"
	"srlb/internal/testbed"
)

// BenchmarkDESKernel measures the calendar-queue schedule/fire cycle
// with a realistically sized co-pending event set.
func BenchmarkDESKernel(b *testing.B) {
	sim := des.New()
	const pending = 4096
	r := rng.New(7)
	spacing := 50 * time.Microsecond
	for i := 0; i < pending; i++ {
		sim.Schedule(time.Duration(r.Int64N(int64(pending)*int64(spacing))), func() {})
	}
	b.ReportAllocs()
	b.ResetTimer()
	var fired int
	for i := 0; i < b.N; i++ {
		// Each op: fire one event and schedule a replacement, keeping the
		// pending population constant — the steady state of a long run.
		sim.Step()
		fired++
		sim.ScheduleAfter(time.Duration(pending)*spacing, func() {})
	}
	_ = fired
}

// BenchmarkSketchAdd measures histogram ingestion over a heavy-tailed
// sample stream (the response-time shape the sink sees).
func BenchmarkSketchAdd(b *testing.B) {
	h := sketch.New()
	r := rng.New(11)
	samples := make([]time.Duration, 8192)
	for i := range samples {
		samples[i] = rng.Exp(r, 100*time.Millisecond)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Add(samples[i&8191])
	}
	benchCoreSink = h.Count()
}

// BenchmarkGeneratorSink measures the full sink-mode query path: one op
// is one query launched, balanced, served, and folded into the sketch —
// packets, timers, and pending records all recycled.
func BenchmarkGeneratorSink(b *testing.B) {
	tb := testbed.New(testbed.Config{Seed: 13, Servers: 4})
	sink := testbed.NewSketchSink()
	tb.Gen.Sink = sink
	r := rng.Split(13, 99)
	p := rng.NewPoisson(r, 200, 0)
	b.ReportAllocs()
	b.ResetTimer()
	remaining := b.N
	var id uint64
	var launchNext func()
	launchNext = func() {
		if remaining == 0 {
			return
		}
		remaining--
		q := testbed.Query{ID: id, Demand: rng.Exp(r, 20*time.Millisecond)}
		id++
		tb.Gen.Launch(q)
		if remaining > 0 {
			tb.Sim.At(p.Next(), launchNext)
		}
	}
	tb.Sim.At(p.Next(), launchNext)
	tb.Sim.Run()
	tb.Gen.DrainPending()
	benchCoreSink = int(sink.Total().Counters.Offered)
}

// BenchmarkFig2Cell measures one scaled reference figure-2 cell end to
// end (the unit of every sweep).
func BenchmarkFig2Cell(b *testing.B) {
	cluster := srlb.Cluster{Seed: 0xbe7c, Servers: 4}
	l0 := cluster.TheoreticalCapacity()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run := srlb.RunPoisson(cluster, srlb.SRStatic(4), 0.85*l0, 3000)
		benchCoreSink = run.RT.Count()
	}
}

var benchCoreSink int

// benchCoreJSON is the BENCH_core.json schema: one row per benchmark
// with the headline per-op costs plus the post-run live heap.
type benchCoreJSON struct {
	Schema     string          `json:"schema"`
	GoVersion  string          `json:"go_version"`
	Benchmarks []benchCoreCase `json:"benchmarks"`
}

type benchCoreCase struct {
	Name        string  `json:"name"`
	N           int     `json:"n"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	// HeapAfter is HeapAlloc right after the benchmark returned (before
	// any explicit GC) — a coarse peak-liveness signal for the smoke job.
	HeapAfter uint64 `json:"heap_after_bytes"`
}

// TestBenchCore emits BENCH_core.json and enforces the allocs/op
// regression gate against the committed baseline. Gated behind
// SRLB_BENCH_CORE=1 so the ordinary test run stays fast; the CI smoke
// job runs it with -benchtime=1x.
func TestBenchCore(t *testing.T) {
	if os.Getenv("SRLB_BENCH_CORE") == "" {
		t.Skip("set SRLB_BENCH_CORE=1 to run the core benchmark smoke suite")
	}
	cases := []struct {
		name string
		fn   func(*testing.B)
	}{
		{"DESKernel", BenchmarkDESKernel},
		{"SketchAdd", BenchmarkSketchAdd},
		{"GeneratorSink", BenchmarkGeneratorSink},
		{"Fig2Cell", BenchmarkFig2Cell},
	}
	// Read the committed baseline before the output path can clobber it
	// (locally both default to BENCH_core.json).
	baseline, baseErr := readBenchCoreBaseline("BENCH_core.json")
	if baseErr != nil {
		t.Fatal(baseErr)
	}

	out := benchCoreJSON{Schema: "bench_core/v1", GoVersion: runtime.Version()}
	var ms runtime.MemStats
	for _, c := range cases {
		res := testing.Benchmark(c.fn)
		runtime.ReadMemStats(&ms)
		row := benchCoreCase{
			Name:        c.name,
			N:           res.N,
			NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
			AllocsPerOp: res.AllocsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
			HeapAfter:   ms.HeapAlloc,
		}
		out.Benchmarks = append(out.Benchmarks, row)
		t.Logf("%-14s n=%-8d %12.1f ns/op %6d allocs/op %10d B/op", row.Name, row.N, row.NsPerOp, row.AllocsPerOp, row.BytesPerOp)
	}

	path := os.Getenv("SRLB_BENCH_CORE_OUT")
	if path == "" {
		path = "BENCH_core.json"
	}
	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", path)

	if err := checkBenchCoreBaseline(baseline, out); err != nil {
		t.Fatal(err)
	}
}

// readBenchCoreBaseline loads the committed baseline; a missing file is
// not an error (the first run seeds it).
func readBenchCoreBaseline(path string) (*benchCoreJSON, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var base benchCoreJSON
	if err := json.Unmarshal(buf, &base); err != nil {
		return nil, fmt.Errorf("baseline %s: %w", path, err)
	}
	return &base, nil
}

// benchCoreAllocSlack absorbs one-time setup allocations: at the CI
// smoke job's -benchtime=1x a benchmark runs a single op, so its fixed
// setup (testbed construction, first slice growths) lands entirely on
// that op's allocs/op instead of amortizing away.
const benchCoreAllocSlack = 64

// checkBenchCoreBaseline compares allocs/op against the committed
// BENCH_core.json: growth beyond 2x + slack on any benchmark fails.
// ns/op is NOT gated — CI machines vary too much — but travels in the
// artifact so regressions stay visible across commits.
func checkBenchCoreBaseline(base *benchCoreJSON, cur benchCoreJSON) error {
	if base == nil {
		return nil
	}
	byName := make(map[string]benchCoreCase, len(base.Benchmarks))
	for _, c := range base.Benchmarks {
		byName[c.Name] = c
	}
	for _, c := range cur.Benchmarks {
		b, ok := byName[c.Name]
		if !ok {
			continue
		}
		if c.AllocsPerOp > 2*b.AllocsPerOp+benchCoreAllocSlack {
			return fmt.Errorf("%s: %d allocs/op, more than 2x the baseline %d (+%d slack)",
				c.Name, c.AllocsPerOp, b.AllocsPerOp, benchCoreAllocSlack)
		}
	}
	return nil
}
