// Figure-level benchmarks: one testing.B per evaluation artifact of the
// paper, each running a scaled-but-representative version of the full
// experiment (cmd/srlb-bench regenerates the full-scale artifacts) and
// reporting the figure's headline quantity via b.ReportMetric:
//
//   - Fig2  → SR4-vs-RR mean-RT improvement at ρ=0.88 (paper: up to 2.3×)
//   - Fig3  → high-load median RT per policy
//   - Fig4  → mean Jain fairness, RR vs SR4
//   - Fig5  → light-load median RT per policy
//   - Fig6-8 → whole-day wiki median / Q3, RR vs SR4
//
// Micro-benchmarks for the data-plane hot paths live in the internal
// packages (codecs, Maglev, flow table, DES, PS server).
package srlb_test

import (
	"sync"
	"testing"
	"time"

	"srlb"
)

// benchCluster is the paper's 12-server platform with a fixed bench seed.
var benchCluster = srlb.Cluster{Seed: 0xbe7c, Servers: 12}

// lambda0 is calibrated once and shared by every figure bench.
var (
	lambda0Once sync.Once
	lambda0Val  float64
)

func lambda0(b *testing.B) float64 {
	b.Helper()
	lambda0Once.Do(func() {
		lambda0Val = srlb.Calibrate(srlb.Calibration{Cluster: benchCluster}).Lambda0
	})
	return lambda0Val
}

// benchQueries keeps a single bench iteration around a second of wall
// time; srlb-bench runs the paper's full 20000.
const benchQueries = 6000

func BenchmarkCalibrateLambda0(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cal := srlb.Calibrate(srlb.Calibration{Cluster: benchCluster, Queries: benchQueries})
		b.ReportMetric(cal.Lambda0, "lambda0_qps")
	}
}

func BenchmarkFig2_MeanResponseVsLoad(b *testing.B) {
	l0 := lambda0(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := srlb.RunFig2(srlb.Fig2Config{
			Cluster: benchCluster,
			Lambda0: l0,
			Rhos:    []float64{0.20, 0.61, 0.88},
			Queries: benchQueries,
		})
		if imp, err := res.Improvement("SR 4", 0.88); err == nil {
			b.ReportMetric(imp, "sr4_vs_rr_x")
		}
		if imp, err := res.Improvement("SR dyn", 0.88); err == nil {
			b.ReportMetric(imp, "srdyn_vs_rr_x")
		}
	}
}

func reportCDF(b *testing.B, res srlb.CDFResult) {
	b.Helper()
	for i, spec := range res.Policies {
		name := map[string]string{
			"RR": "rr", "SR 4": "sr4", "SR 8": "sr8", "SR 16": "sr16", "SR dyn": "srdyn",
		}[spec.Name]
		if name == "" {
			continue
		}
		b.ReportMetric(res.RT[i].Median().Seconds(), name+"_median_s")
	}
}

func BenchmarkFig3_CDFHighLoad(b *testing.B) {
	l0 := lambda0(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := srlb.RunFig3(srlb.CDFConfig{
			Cluster: benchCluster, Lambda0: l0, Queries: benchQueries,
		})
		reportCDF(b, res)
	}
}

func BenchmarkFig4_LoadAndFairness(b *testing.B) {
	l0 := lambda0(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := srlb.RunFig4(srlb.Fig4Config{
			Cluster: benchCluster, Lambda0: l0, Queries: benchQueries,
		})
		if f, err := res.MeanFairness("RR"); err == nil {
			b.ReportMetric(f, "rr_fairness")
		}
		if f, err := res.MeanFairness("SR 4"); err == nil {
			b.ReportMetric(f, "sr4_fairness")
		}
	}
}

func BenchmarkFig5_CDFLowLoad(b *testing.B) {
	l0 := lambda0(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := srlb.RunFig5(srlb.CDFConfig{
			Cluster: benchCluster, Lambda0: l0, Queries: benchQueries,
		})
		reportCDF(b, res)
	}
}

// benchWiki runs the compressed day shared by the three wiki figures.
func benchWiki(b *testing.B) srlb.WikiResult {
	b.Helper()
	return srlb.RunWiki(srlb.WikiConfig{
		Cluster: benchCluster,
		Day:     srlb.WikiDay{Seed: 0xbe7c, Compression: 288}, // 24h -> 5 min
	})
}

func BenchmarkFig6_WikiMedianTimeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := benchWiki(b)
		// Peak-bin medians: the figure's contrast is RR degrading at peak.
		for _, run := range res.Runs {
			peak := run.WikiBins.NumBins() * 5 / 6 // ≈ 20:00 with default phase
			med := run.WikiBins.Bin(peak).Median()
			switch run.Spec.Name {
			case "RR":
				b.ReportMetric(med.Seconds(), "rr_peak_median_s")
			case "SR 4":
				b.ReportMetric(med.Seconds(), "sr4_peak_median_s")
			}
		}
	}
}

func BenchmarkFig7_WikiDeciles(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := benchWiki(b)
		// Spread of the decile fan at the peak bin (d9 - d1): figure 7's
		// point is that SR4's fan is tighter under load.
		for _, run := range res.Runs {
			peak := run.WikiBins.NumBins() * 5 / 6
			d := run.WikiBins.Bin(peak).Deciles()
			spread := (d[8] - d[0]).Seconds()
			switch run.Spec.Name {
			case "RR":
				b.ReportMetric(spread, "rr_decile_spread_s")
			case "SR 4":
				b.ReportMetric(spread, "sr4_decile_spread_s")
			}
		}
	}
}

func BenchmarkFig8_WikiCDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := benchWiki(b)
		for _, s := range res.Summaries() {
			switch s.Policy {
			case "RR":
				b.ReportMetric(s.Median.Seconds(), "rr_median_s")
				b.ReportMetric(s.Q3.Seconds(), "rr_q3_s")
			case "SR 4":
				b.ReportMetric(s.Median.Seconds(), "sr4_median_s")
				b.ReportMetric(s.Q3.Seconds(), "sr4_q3_s")
			}
		}
	}
}

// Ablation benches: the design choices DESIGN.md calls out.

func BenchmarkAblation_CandidateCount(b *testing.B) {
	l0 := lambda0(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := srlb.RunAllAblations(srlb.AblationConfig{
			Cluster: benchCluster, Lambda0: l0, Queries: benchQueries / 2,
		})
		// Report the k=2 gain over k=1 from the candidate study.
		for _, study := range res {
			if len(study.Rows) >= 2 && study.Rows[0].Label == "k=1 (RR)" {
				k1 := study.Rows[0].Mean.Seconds()
				k2 := study.Rows[1].Mean.Seconds()
				if k2 > 0 {
					b.ReportMetric(k1/k2, "k2_vs_k1_x")
				}
			}
		}
	}
}

// End-to-end data-plane throughput: each op is one query fully processed
// (SYN → hunt → accept → steer → respond) including all packet codecs.
func BenchmarkEndToEndQueries(b *testing.B) {
	run := srlb.RunPoisson(benchCluster, srlb.SRStatic(4), 120, b.N)
	benchSink = run.RT.Mean()
}

var benchSink time.Duration

// BenchmarkPoissonRun20000 measures the paper-scale batch end to end.
func BenchmarkPoissonRun20000(b *testing.B) {
	l0 := lambda0(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run := srlb.RunPoisson(benchCluster, srlb.SRStatic(4), 0.88*l0, 20000)
		benchSink = run.RT.Mean()
	}
}
