module srlb

go 1.24
