// Package srlb is a from-scratch Go implementation of SRLB — the load
// balancer of Desmouceaux et al., "SRLB: The Power of Choices in Load
// Balancing with Segment Routing" (IEEE ICDCS 2017) — together with every
// substrate needed to reproduce the paper's evaluation: a wire-accurate
// IPv6 Segment Routing data plane, a discrete-event datacenter testbed
// with processor-sharing application servers, the paper's connection
// acceptance policies, a family of workloads, and a composable experiment
// API that regenerates every figure of the paper and scales to new
// scenarios.
//
// # Service Hunting in one paragraph
//
// A client SYN for a virtual IP reaches the load balancer, which inserts
// an IPv6 Segment Routing Header listing two randomly chosen candidate
// servers followed by the VIP, and forwards to the first. Each candidate's
// virtual router consults a purely local policy ("fewer than c busy Apache
// workers?") and either delivers the connection to the application or
// forwards it along the segment list; the penultimate candidate must
// accept. The accepting server's SYN-ACK carries a segment list
// [server, LB, client], letting the LB learn — in the forwarding plane,
// with no out-of-band signaling — which server owns the flow; all later
// packets of the flow are steered with a one-segment SRH.
//
// # The experiment API: Scenario, Workload, Sweep, Runner
//
// Experiments compose from four values instead of per-figure entry points:
//
//   - Workload — an arrival process plus demand model: PoissonWorkload
//     (§V), BurstyWorkload (flowlet-style on/off MMPP), WikiWorkload
//     (the §VI synthetic Wikipedia day), TraceWorkload (recorded traces).
//   - Scenario — one cell: cluster × policy × workload × load point.
//   - Sweep — the cross product policies × load points × seeds over one
//     workload.
//   - Runner — context-aware worker-pool execution. Every random stream
//     derives from the scenario value alone, so results are identical for
//     1 worker and N, and a cancelled sweep returns promptly with the
//     cells finished so far.
//
// A complete figure-2-style sweep, replicated over 5 seeds and
// aggregated into per-cell mean ± 95% CI:
//
//	cal := srlb.CalibrateCached(srlb.Calibration{Cluster: cluster})
//	agg, _ := srlb.Runner{}.RunSweepStats(ctx, srlb.Sweep{
//		Cluster:  cluster,
//		Policies: srlb.PaperPolicies(),
//		Loads:    []float64{0.2, 0.61, 0.88},
//		Seeds:    srlb.DeriveSeeds(1, 5),
//		Workload: srlb.PoissonWorkload{Lambda0: cal.Lambda0},
//	})
//	cell := agg.Cell(1, 2) // SR4, ρ=0.88: mean ± CI over the 5 seeds
//	fmt.Printf("%v ± %v (n=%d)\n", cell.MeanRT(), cell.MeanCI95(), cell.N())
//
// RunSweep keeps the raw per-seed cells (SweepResult.Cell(pi, li, si));
// Aggregate folds them after the fact. The paper's artifacts remain
// available as one-line wrappers (RunFig2, RunFig3, RunFig4, RunFig5,
// RunWiki, RunHetero, RunFailover, RunChurn, …), each now a thin
// Scenario/Sweep composition with its own Seeds knob; cmd/srlb-bench
// regenerates all of them and emits a machine-readable per-cell summary
// (BENCH_sweep.json, documented in docs/RESULTS_SCHEMA.md).
//
// # Topologies: LB replicas, multiple VIPs, lifecycle events
//
// Cluster construction is declarative (docs/TOPOLOGY.md): a Topology
// names VIPs — each with its own selection scheme, miss-fallback and
// demand model — declares server pools (implicit per VIP, or named
// PoolSpecs that several VIPs share, contending for the same workers),
// attaches N LB replicas through anycast/ECMP (the Maglev/Ananta
// deployment model that §II-B's consistent-hash selection enables), and
// schedules lifecycle Events (AddServer, DrainServer, FailServer and
// their pool-targeted forms AddPoolServer/DrainPoolServer/
// FailPoolServer, FailReplica, RecoverReplica, the correlated
// FailPoolRack, the state-inheriting RecoverReplicaWarm, and the
// RollingUpgradeEvents schedule helper) at virtual times during
// the run. BuildTopology compiles the value to wired nodes; Cluster
// remains the one-line single-LB/single-VIP wrapper, so existing
// figures are untouched. Sweeps gain the matching axis: Sweep.Variants
// derives topology variants (replica counts, event schedules) from the
// base cluster, crossed with policies × loads × seeds, deterministic at
// any worker count.
//
// Three first-class experiments ride on this: RunFailover kills an LB
// replica mid-run and measures the client-observed transient (with the
// consistent-hash fallback, completions hold at 100% through the kill;
// with random selection, multi-replica operation is structurally
// broken), RunChurn drains and re-adds servers under load, reporting
// each policy's churn penalty with CIs, and RunMultiService drives
// heterogeneous services concurrently through the shared balancer
// (below).
//
// Failover deepens into warm handoff: flowtable.Snapshot/Restore (and
// the core.LoadBalancer ExportFlows/ImportFlows wrappers) merge flow
// bindings with their deadlines and closing state — never overwriting
// a newer local entry — so a recovering replica can inherit a
// survivor's table at the recover instant instead of restarting cold.
// RunResilience (`srlb-bench -experiment resilience`) ablates
// {stateless restart, consistent-hash miss-fallback, warm handoff}
// through replica-kill, rack-loss and rolling-upgrade schedules under
// client SYN retransmission, emitting completion-rate facets with CIs
// (extension_resilience.tsv, schema-v8 BENCH_sweep.json `resilience`
// rows).
//
// Event times compose with load sweeps by being declared rate-relative:
// Event.AtFraction(f) schedules the event at fraction f of the run's
// arrival span, and every workload resolves the fractions per load
// point (ResolveEvents), so a single drain/add schedule means the same
// thing at every ρ. RunChurn's steady-vs-churn variant pair sweeps all
// of its loads this way.
//
// # Multi-service workloads: several VIPs, one run
//
// MultiServiceWorkload interleaves one arrival stream per VIP — any mix
// of PoissonService, BurstyService and WikiService — into a single
// deterministic open loop against a multi-VIP cluster sharing the LB
// replicas, the many-services regime in which the power-of-choices
// argument compounds. Each query is tagged with its VIP and the outcome
// is reported both aggregate and per service, with conservation per VIP
// (offered == completed + refused + unfinished):
//
//	cal := srlb.CalibrateCached(srlb.Calibration{Cluster: cluster})
//	agg, _ := srlb.Runner{}.RunSweepStats(ctx, srlb.Sweep{
//		Cluster:  cluster,
//		Policies: []srlb.Policy{srlb.RR(), srlb.SRStatic(4)},
//		Loads:    []float64{0.6, 0.85},
//		Seeds:    srlb.DeriveSeeds(1, 5),
//		Workload: srlb.MultiServiceWorkload{Services: []srlb.ServiceSpec{
//			{Name: "web", Workload: srlb.PoissonService{Lambda0: cal.Lambda0}},
//			{Name: "wiki", Workload: srlb.WikiService{Day: srlb.WikiDay{Compression: 288}}},
//			{Name: "batch", Workload: srlb.BurstyService{Lambda0: cal.Lambda0 / 2, PeakFactor: 4}, Servers: 6},
//		}},
//	})
//	web := agg.Cell(1, 1).VIPs[0] // SR4 × ρ=0.85: web service, mean ± ci95
//	fmt.Printf("web: %.0f ms ± %.0f\n", web.Mean.Dist.Mean*1e3, web.Mean.Dist.CI95*1e3)
//
// RunMultiService packages the canonical three-service mix (web Poisson
// + Wikipedia replay + bursty batch) as `srlb-bench -experiment
// multiservice`, emitting per-policy per-service rows
// (extension_multiservice.tsv) and schema-v6 BENCH_sweep.json cells
// with per-VIP breakdowns.
//
// Control-plane scale is its own axis: testbed.GenerateTopology
// mass-produces 1k–10k-VIP topologies over shared pools
// (index-deterministic addresses, pools targetable by name), the LB
// dispatches them through an indexed O(1) table (one map lookup per
// packet; Maglev tables interned per backend set), and RunVIPScale
// (`srlb-bench -experiment vipscale`) measures per-packet SYN/steered
// dispatch cost over {100, 1k, 10k} services per scheme — the flat
// latency-vs-#services curve, with the complexity class pinned by
// TestDispatchComplexityClass and the DispatchLookup rows of
// BENCH_core.json.
//
// The contention regime layers on top: ServiceSpec.Pool +
// MultiServiceWorkload.Pools put several services on ONE shared server
// pool, and MultiServiceWorkload.ServiceLoads gives each service its
// own load axis (a ServiceLoad pins a victim's ρ or scales the sweep's
// knob), so a batch surge ρ_b can sweep against a steady web ρ_w over
// the same workers. RunInterference packages that measurement as
// `srlb-bench -experiment interference`: per-victim p99/completion
// degradation per policy as the aggressor ramps
// (extension_interference.tsv). WikiService.Pinned replays one recorded
// day across policies × seeds, cutting across-seed variance of the wiki
// rows to the cluster's own randomness.
//
// # Load feedback and flowlet-grained policies
//
// The paper's schemes are deliberately feedback-free; their natural
// competitors are not. internal/feedback is the out-of-band telemetry
// plane those competitors need — servers publish EWMA-smoothed load
// reports on a virtual-time tick into a per-(VIP, server) view with
// freshness tracking (a report older than the TTL demotes every
// consumer to its load-oblivious fallback; failed servers go stale by
// silence) — and internal/selection gains the stateful scheme surface
// (Stateful/Resteerer, probed once at VIP-compile time) plus two
// consumers: WeightedLeastLoad re-ranks the power-of-two candidates by
// reported load, and Flowlet re-steers established flows onto
// less-loaded servers at flowlet-gap boundaries, rewriting the LB's
// flow table mid-connection (never SYNs or RSTs; FuzzFlowletGaps locks
// the invariants). RunPolicies packages the four-way ablation
// {random2, chash2, wleastload, flowlet} over the interference workload
// in steady and churn variants as `srlb-bench -experiment policies`
// (extension_policies.tsv, schema-v7 BENCH_sweep.json `policies` rows,
// FeedbackConfig/FeedbackReport re-exports; docs/TOPOLOGY.md covers the
// plane).
//
// # Grid sweeps and adaptive replication
//
// Sweep.LoadGrid generalizes the scalar load axis to a vector one: the
// grid is the cross product of per-service ρ-axes, each point a
// ρ-vector dispatched through VectorWorkload.RunVector (implemented by
// MultiServiceWorkload, which pins every service to its entry). One
// sweep then enumerates a full web-ρ × batch-ρ matrix instead of
// pinning the victim. Because the matrix multiplies cells, Sweep.
// Adaptive sizes each cell's replication on the fly: a mandatory floor
// of MinSeeds (≥ 3) replicates, then one seed per round until the
// relative CI95 of the cell's mean response time drops under CITarget
// or MaxSeeds is hit, with policy-crossover-boundary cells held to a
// tighter target. Stop decisions are taken at round barriers from
// completed-seed data in canonical cell order, and every cell's round-k
// replicate uses the k-th seed of one shared universe, so results stay
// byte-identical at any worker count. RunRhoGrid packages the four-way
// policy ablation over the grid as `srlb-bench -experiment rhogrid`
// (extension_rhogrid.tsv, per-policy ASCII heatmaps via
// plot.RenderHeatmaps, schema-v9 BENCH_sweep.json cells with load_vec
// and stop_reason).
//
// # Streaming measurement: sketches and the horizon soak
//
// Experiment cells measure through internal/sketch: a mergeable
// log-linear response-time histogram (quantiles within a documented
// ≈0.2% relative error at the default precision; count/mean/min/max
// exact) plus Welford moments and outcome counters, folded in as each
// query completes. The testbed generator's per-query Results slice is
// opt-in (Generator.RetainResults) — the default sink path holds
// constant memory regardless of horizon length. RunHorizon pushes that
// to 10⁸ open-loop queries with a flat heap
// (`srlb-bench -experiment horizon`); BENCH_core.json tracks the hot
// paths' ns/op and allocs/op across commits (docs/RESULTS_SCHEMA.md).
//
// # Interpreting results: seeds, CI width, choosing Sweep.Seeds
//
// Every simulation cell is a pure function of its scenario value, so a
// single cell is exactly reproducible — but it is still one draw from
// the distribution the paper's claims are about. Replication is the
// Seeds axis: Sweep.Seeds (use DeriveSeeds to expand a base seed into
// well-separated streams) reruns every (policy, load) cell once per
// seed, and the stats layer (internal/stats, re-exported here as Dist,
// Replicated, CellStats, SweepStats) folds the replicates into
// mean ± 95% confidence intervals.
//
// How to read the numbers:
//
//   - A CellStats metric (Mean, Median, P95, P99) is the across-seed
//     mean of the per-seed statistic; its Dist.CI95 is the Student-t
//     95% half-width. Report "mean ± ci95 (n=seeds)".
//   - N == 1 carries no dispersion information, so its raw Dist.CI95 is
//     +Inf — "unknown", impossible to mistake for a tight interval (the
//     adaptive stopper relies on this). Reporting boundaries (JSON,
//     TSV, plots; Dist.ReportedCI95 and CellStats.MeanCI95) map the
//     non-finite sentinel to 0.
//   - Two policies differ meaningfully when their intervals separate.
//     Overlapping intervals at n=3 are an instruction to add seeds, not
//     a conclusion of equality.
//
// Choosing the number of seeds: CI width shrinks as s/√n·t(n−1), so the
// first few seeds buy the most. On this testbed, 5 seeds resolve the
// headline RR-vs-SR4 gap at high load (a ~2× effect); closely matched
// configurations (SR8 vs SR16 at light load, threshold micro-sweeps)
// need 10–20. Light loads have small variance and converge quickly;
// near saturation (ρ ≳ 0.9) variance explodes and CIs stay wide — that
// width is real signal about the operating regime, not noise to tune
// away. λ0 calibration (Calibrate/CalibrateCached) is itself seeded and
// cached per cluster fingerprint, so replicates share one λ0 rather
// than folding calibration noise into every cell.
//
// # Package map
//
// The public API in this root package fronts the implementation packages:
//
//   - internal/core — the load balancer (the paper's contribution)
//   - internal/vrouter, internal/agent — per-server router + policies
//   - internal/srv6, internal/ipv6, internal/tcpseg, internal/packet — codecs
//   - internal/appserver — processor-sharing Apache model
//   - internal/des, internal/netsim — simulation kernel and LAN
//   - internal/livenet — real-time goroutine runtime, same wire format
//   - internal/workload: internal/wiki, internal/trace, internal/rng
//   - internal/stats — replication statistics: Dist, Replicated,
//     Student-t CIs, seeded bootstrap
//   - internal/sketch — constant-memory streaming metrics: mergeable
//     log-linear histogram, Welford moments, counters
//   - internal/experiments — Scenario/Sweep/Runner, workloads, figures 2–8,
//     λ0 calibration, ablations
//
// Use QuickComparison for a two-line comparison run, Sweep/Runner for
// anything bigger; cmd/srlb-bench does both from the command line.
package srlb
