// Package srlb is a from-scratch Go implementation of SRLB — the load
// balancer of Desmouceaux et al., "SRLB: The Power of Choices in Load
// Balancing with Segment Routing" (IEEE ICDCS 2017) — together with every
// substrate needed to reproduce the paper's evaluation: a wire-accurate
// IPv6 Segment Routing data plane, a discrete-event datacenter testbed
// with processor-sharing application servers, the paper's connection
// acceptance policies, a family of workloads, and a composable experiment
// API that regenerates every figure of the paper and scales to new
// scenarios.
//
// # Service Hunting in one paragraph
//
// A client SYN for a virtual IP reaches the load balancer, which inserts
// an IPv6 Segment Routing Header listing two randomly chosen candidate
// servers followed by the VIP, and forwards to the first. Each candidate's
// virtual router consults a purely local policy ("fewer than c busy Apache
// workers?") and either delivers the connection to the application or
// forwards it along the segment list; the penultimate candidate must
// accept. The accepting server's SYN-ACK carries a segment list
// [server, LB, client], letting the LB learn — in the forwarding plane,
// with no out-of-band signaling — which server owns the flow; all later
// packets of the flow are steered with a one-segment SRH.
//
// # The experiment API: Scenario, Workload, Sweep, Runner
//
// Experiments compose from four values instead of per-figure entry points:
//
//   - Workload — an arrival process plus demand model: PoissonWorkload
//     (§V), BurstyWorkload (flowlet-style on/off MMPP), WikiWorkload
//     (the §VI synthetic Wikipedia day), TraceWorkload (recorded traces).
//   - Scenario — one cell: cluster × policy × workload × load point.
//   - Sweep — the cross product policies × load points × seeds over one
//     workload.
//   - Runner — context-aware worker-pool execution. Every random stream
//     derives from the scenario value alone, so results are identical for
//     1 worker and N, and a cancelled sweep returns promptly with the
//     cells finished so far.
//
// A complete figure-2-style sweep:
//
//	cal := srlb.Calibrate(srlb.Calibration{Cluster: cluster})
//	res, _ := srlb.Runner{}.RunSweep(ctx, srlb.Sweep{
//		Cluster:  cluster,
//		Policies: srlb.PaperPolicies(),
//		Loads:    []float64{0.2, 0.61, 0.88},
//		Seeds:    srlb.DeriveSeeds(1, 3),
//		Workload: srlb.PoissonWorkload{Lambda0: cal.Lambda0},
//	})
//	cell := res.Cell(1, 2, 0) // SR4, ρ=0.88, first seed
//
// The paper's artifacts remain available as one-line wrappers (RunFig2,
// RunFig3, RunFig4, RunFig5, RunWiki, RunHetero, …), each now a thin
// Scenario/Sweep composition; cmd/srlb-bench regenerates all of them and
// emits a machine-readable per-cell summary (BENCH_sweep.json).
//
// # Package map
//
// The public API in this root package fronts the implementation packages:
//
//   - internal/core — the load balancer (the paper's contribution)
//   - internal/vrouter, internal/agent — per-server router + policies
//   - internal/srv6, internal/ipv6, internal/tcpseg, internal/packet — codecs
//   - internal/appserver — processor-sharing Apache model
//   - internal/des, internal/netsim — simulation kernel and LAN
//   - internal/livenet — real-time goroutine runtime, same wire format
//   - internal/workload: internal/wiki, internal/trace, internal/rng
//   - internal/experiments — Scenario/Sweep/Runner, workloads, figures 2–8,
//     λ0 calibration, ablations
//
// Use QuickComparison for a two-line comparison run, Sweep/Runner for
// anything bigger; cmd/srlb-bench does both from the command line.
package srlb
