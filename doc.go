// Package srlb is a from-scratch Go implementation of SRLB — the load
// balancer of Desmouceaux et al., "SRLB: The Power of Choices in Load
// Balancing with Segment Routing" (IEEE ICDCS 2017) — together with every
// substrate needed to reproduce the paper's evaluation: a wire-accurate
// IPv6 Segment Routing data plane, a discrete-event datacenter testbed
// with processor-sharing application servers, the paper's connection
// acceptance policies, Poisson and synthetic-Wikipedia workloads, and a
// harness that regenerates every figure of the paper.
//
// # Service Hunting in one paragraph
//
// A client SYN for a virtual IP reaches the load balancer, which inserts
// an IPv6 Segment Routing Header listing two randomly chosen candidate
// servers followed by the VIP, and forwards to the first. Each candidate's
// virtual router consults a purely local policy ("fewer than c busy Apache
// workers?") and either delivers the connection to the application or
// forwards it along the segment list; the penultimate candidate must
// accept. The accepting server's SYN-ACK carries a segment list
// [server, LB, client], letting the LB learn — in the forwarding plane,
// with no out-of-band signaling — which server owns the flow; all later
// packets of the flow are steered with a one-segment SRH.
//
// # Package map
//
// The public API in this root package fronts the implementation packages:
//
//   - internal/core — the load balancer (the paper's contribution)
//   - internal/vrouter, internal/agent — per-server router + policies
//   - internal/srv6, internal/ipv6, internal/tcpseg, internal/packet — codecs
//   - internal/appserver — processor-sharing Apache model
//   - internal/des, internal/netsim — simulation kernel and LAN
//   - internal/livenet — real-time goroutine runtime, same wire format
//   - internal/workload: internal/wiki, internal/trace, internal/rng
//   - internal/experiments — figures 2–8, λ0 calibration, ablations
//
// Use Quickstart for a two-line comparison run, or the Fig*/Wiki/Calibrate
// wrappers to regenerate the paper's artifacts; cmd/srlb-bench does both
// from the command line.
package srlb
