// Maglev table interning: at control-plane scale thousands of VIPs
// share a handful of server pools, and a Maglev table is a pure
// function of (backends, size) — populating one per VIP turns topology
// construction into O(VIPs × tableSize). SharedMaglev canonicalizes:
// the first request for a backend set pays the populate, every later
// request gets the same immutable table back.
package chash

import (
	"strings"
	"sync"
)

// internCap bounds the cache. A run holds a few distinct pools (the
// testbed's shared-pool topologies) times a few table sizes; 128 is far
// above any realistic working set, and on overflow the whole cache is
// dropped rather than tracking recency — correctness never depends on a
// hit.
const internCap = 128

var (
	internMu    sync.Mutex
	internTable map[string]*Maglev
)

// internKey is the canonical identity of a table: its size and the
// backend list in caller order (Maglev population is order-sensitive
// only through backend hashing, but two differently-ordered declarations
// are treated as distinct — cheaper than sorting and callers are
// deterministic anyway).
func internKey(backends []string, tableSize int) string {
	var sb strings.Builder
	n := len("\x00") * (len(backends) + 1)
	for _, b := range backends {
		n += len(b)
	}
	sb.Grow(n + 20)
	sb.WriteString(itoa(tableSize))
	for _, b := range backends {
		sb.WriteByte(0)
		sb.WriteString(b)
	}
	return sb.String()
}

// itoa avoids pulling strconv into the hot construction path for a
// trivial non-negative conversion.
func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// SharedMaglev returns the interned Maglev table for (backends,
// tableSize), building and caching it on first use. The returned table
// is shared — it is immutable after construction, so concurrent readers
// (parallel sweep workers building topologies) are safe. Errors are not
// cached.
func SharedMaglev(backends []string, tableSize int) (*Maglev, error) {
	if tableSize <= 0 {
		tableSize = DefaultTableSize
	}
	key := internKey(backends, tableSize)

	internMu.Lock()
	if m, ok := internTable[key]; ok {
		internMu.Unlock()
		return m, nil
	}
	internMu.Unlock()

	// Populate outside the lock: tables are pure functions of the key, so
	// a racing duplicate build wastes work but stays correct (last write
	// wins; both values are interchangeable).
	m, err := NewMaglev(backends, tableSize)
	if err != nil {
		return nil, err
	}

	internMu.Lock()
	if internTable == nil {
		internTable = make(map[string]*Maglev)
	}
	if prior, ok := internTable[key]; ok {
		internMu.Unlock()
		return prior, nil
	}
	if len(internTable) >= internCap {
		internTable = make(map[string]*Maglev)
	}
	internTable[key] = m
	internMu.Unlock()
	return m, nil
}

// InternedTables reports how many tables the cache currently holds —
// test and diagnostics hook.
func InternedTables() int {
	internMu.Lock()
	defer internMu.Unlock()
	return len(internTable)
}
