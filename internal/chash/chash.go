// Package chash provides consistent hashing: a Maglev-style lookup table
// (Eisenbud et al., NSDI'16 — reference [3] of the paper) and a classic
// ring hash.
//
// SRLB §II-B lists consistent hashing as one of the candidate-selection
// schemes for the SR segment list, and the related-work discussion notes
// Maglev/Ananta use it for flow affinity across load-balancer instances.
// This package backs the selection.ConsistentHash scheme and the flow-miss
// fallback in the load balancer.
package chash

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// Hash64 hashes a string key with FNV-1a (stdlib, stable across runs).
func Hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// hashWithSalt mixes an integer salt into a key hash.
func hashWithSalt(key string, salt uint64) uint64 {
	h := fnv.New64a()
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(salt >> (8 * i))
	}
	h.Write(b[:])
	h.Write([]byte(key))
	return h.Sum64()
}

// Maglev is the Maglev consistent-hashing lookup table: every backend
// fills table slots following its own permutation, giving near-perfect
// balance and minimal disruption on membership change.
type Maglev struct {
	table    []int // slot -> backend index
	backends []string
	m        uint64
}

// DefaultTableSize is a prime ≫ max backends, per the Maglev paper's
// guidance (table size ≥ 100× backends for <1% imbalance).
const DefaultTableSize = 65537

// NewMaglev builds a lookup table of the given size (must be > 0; a prime
// is strongly recommended and enforced for sizes > 3 by rounding up to the
// next odd non-trivially-composite value is NOT done — callers pass a
// prime, e.g. DefaultTableSize). backends must be non-empty and unique.
func NewMaglev(backends []string, tableSize int) (*Maglev, error) {
	if len(backends) == 0 {
		return nil, fmt.Errorf("chash: no backends")
	}
	if tableSize <= 0 {
		tableSize = DefaultTableSize
	}
	if tableSize < len(backends) {
		return nil, fmt.Errorf("chash: table size %d smaller than backend count %d", tableSize, len(backends))
	}
	seen := make(map[string]bool, len(backends))
	for _, b := range backends {
		if seen[b] {
			return nil, fmt.Errorf("chash: duplicate backend %q", b)
		}
		seen[b] = true
	}
	m := &Maglev{
		backends: append([]string(nil), backends...),
		m:        uint64(tableSize),
	}
	m.populate()
	return m, nil
}

// populate implements the Maglev population algorithm (NSDI'16 §3.4).
func (m *Maglev) populate() {
	n := len(m.backends)
	M := m.m
	offsets := make([]uint64, n)
	skips := make([]uint64, n)
	for i, b := range m.backends {
		offsets[i] = hashWithSalt(b, 0xdead) % M
		skips[i] = hashWithSalt(b, 0xbeef)%(M-1) + 1
	}
	table := make([]int, M)
	for i := range table {
		table[i] = -1
	}
	next := make([]uint64, n)
	var filled uint64
	for filled < M {
		for i := 0; i < n && filled < M; i++ {
			c := (offsets[i] + next[i]*skips[i]) % M
			for table[c] >= 0 {
				next[i]++
				c = (offsets[i] + next[i]*skips[i]) % M
			}
			table[c] = i
			next[i]++
			filled++
		}
	}
	m.table = table
}

// Lookup returns the backend for a flow key.
func (m *Maglev) Lookup(key string) string {
	return m.backends[m.table[Hash64(key)%m.m]]
}

// LookupHash returns the backend for a precomputed hash.
func (m *Maglev) LookupHash(h uint64) string {
	return m.backends[m.table[h%m.m]]
}

// Lookup2 returns two distinct backends for a key — the primary and the
// next distinct entry in the table — supporting two-candidate Service
// Hunting with consistent (rather than random) selection. With one
// backend, both returns are that backend.
func (m *Maglev) Lookup2(key string) (string, string) {
	h := Hash64(key)
	slot := h % m.m
	first := m.table[slot]
	if len(m.backends) == 1 {
		return m.backends[first], m.backends[first]
	}
	for i := uint64(1); i < m.m; i++ {
		cand := m.table[(slot+i)%m.m]
		if cand != first {
			return m.backends[first], m.backends[cand]
		}
	}
	return m.backends[first], m.backends[first]
}

// Backends returns the member list (copy).
func (m *Maglev) Backends() []string {
	return append([]string(nil), m.backends...)
}

// TableSize returns the lookup table size.
func (m *Maglev) TableSize() int { return int(m.m) }

// Distribution returns how many slots each backend owns, keyed by name.
func (m *Maglev) Distribution() map[string]int {
	out := make(map[string]int, len(m.backends))
	for _, idx := range m.table {
		out[m.backends[idx]]++
	}
	return out
}

// Ring is a classic consistent-hash ring with virtual nodes, provided as a
// second scheme (and as the comparison baseline for the Maglev balance
// property tests).
type Ring struct {
	points   []ringPoint
	backends []string
}

type ringPoint struct {
	hash    uint64
	backend int
}

// NewRing builds a ring with the given number of virtual nodes per
// backend (vnodes ≤ 0 defaults to 256). Vnode positions are derived by
// re-hashing the previous position, which spreads markedly better than
// hashing "name#i" with FNV on short similar names.
func NewRing(backends []string, vnodes int) (*Ring, error) {
	if len(backends) == 0 {
		return nil, fmt.Errorf("chash: no backends")
	}
	if vnodes <= 0 {
		vnodes = 256
	}
	r := &Ring{backends: append([]string(nil), backends...)}
	for i, b := range r.backends {
		h := Hash64(b)
		for v := 0; v < vnodes; v++ {
			h = mix64(h)
			r.points = append(r.points, ringPoint{hash: h, backend: i})
		}
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
	return r, nil
}

// mix64 is the splitmix64 finalizer — a strong 64-bit bijective mixer.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Lookup returns the backend owning the key.
func (r *Ring) Lookup(key string) string {
	h := Hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.backends[r.points[i].backend]
}
