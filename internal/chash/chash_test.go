package chash

import (
	"fmt"
	"testing"
	"testing/quick"
)

func names(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("server-%d", i)
	}
	return out
}

func TestMaglevErrors(t *testing.T) {
	if _, err := NewMaglev(nil, 101); err == nil {
		t.Fatal("empty backends accepted")
	}
	if _, err := NewMaglev([]string{"a", "a"}, 101); err == nil {
		t.Fatal("duplicate backends accepted")
	}
	if _, err := NewMaglev(names(200), 101); err == nil {
		t.Fatal("table smaller than backends accepted")
	}
}

func TestMaglevDefaultTableSize(t *testing.T) {
	m, err := NewMaglev(names(3), 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.TableSize() != DefaultTableSize {
		t.Fatalf("table size = %d", m.TableSize())
	}
}

func TestMaglevBalance(t *testing.T) {
	m, err := NewMaglev(names(12), 65537)
	if err != nil {
		t.Fatal(err)
	}
	dist := m.Distribution()
	ideal := 65537.0 / 12
	for b, got := range dist {
		dev := (float64(got) - ideal) / ideal
		if dev < -0.02 || dev > 0.02 {
			t.Fatalf("backend %s owns %d slots, ideal %.0f (dev %.3f)", b, got, ideal, dev)
		}
	}
}

func TestMaglevLookupDeterministic(t *testing.T) {
	a, _ := NewMaglev(names(12), 65537)
	b, _ := NewMaglev(names(12), 65537)
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("flow-%d", i)
		if a.Lookup(key) != b.Lookup(key) {
			t.Fatal("lookup not deterministic across instances")
		}
	}
}

func TestMaglevLookupSpread(t *testing.T) {
	m, _ := NewMaglev(names(12), 65537)
	counts := make(map[string]int)
	const n = 120000
	for i := 0; i < n; i++ {
		counts[m.Lookup(fmt.Sprintf("flow-%d", i))]++
	}
	for b, c := range counts {
		frac := float64(c) / n
		if frac < 0.06 || frac > 0.11 { // ideal 1/12 ≈ 0.083
			t.Fatalf("backend %s got %.3f of flows", b, frac)
		}
	}
}

// TestMaglevMinimalDisruption: removing one backend must only remap the
// keys that pointed at it (plus a small repopulation epsilon).
func TestMaglevMinimalDisruption(t *testing.T) {
	before, _ := NewMaglev(names(12), 65537)
	after, _ := NewMaglev(names(11), 65537) // server-11 removed

	const n = 20000
	moved := 0
	belongedToRemoved := 0
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("flow-%d", i)
		b := before.Lookup(key)
		a := after.Lookup(key)
		if b == "server-11" {
			belongedToRemoved++
			continue // must move by necessity
		}
		if a != b {
			moved++
		}
	}
	// Maglev guarantees "mostly minimal" disruption; NSDI'16 reports ~1%
	// extra churn at this table-size ratio. Allow 3%.
	if frac := float64(moved) / n; frac > 0.03 {
		t.Fatalf("%.4f of stable keys moved, want ≤0.03", frac)
	}
	if belongedToRemoved == 0 {
		t.Fatal("sanity: no keys mapped to the removed backend?")
	}
}

func TestMaglevLookup2Distinct(t *testing.T) {
	m, _ := NewMaglev(names(12), 65537)
	for i := 0; i < 1000; i++ {
		a, b := m.Lookup2(fmt.Sprintf("flow-%d", i))
		if a == b {
			t.Fatalf("Lookup2 returned identical candidates %q", a)
		}
	}
}

func TestMaglevLookup2SingleBackend(t *testing.T) {
	m, _ := NewMaglev([]string{"only"}, 101)
	a, b := m.Lookup2("flow")
	if a != "only" || b != "only" {
		t.Fatalf("single backend Lookup2 = %q, %q", a, b)
	}
}

func TestMaglevLookup2PrimaryMatchesLookup(t *testing.T) {
	m, _ := NewMaglev(names(5), 4099)
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("k%d", i)
		a, _ := m.Lookup2(key)
		if a != m.Lookup(key) {
			t.Fatal("Lookup2 primary differs from Lookup")
		}
	}
}

func TestMaglevBackendsCopy(t *testing.T) {
	m, _ := NewMaglev(names(3), 101)
	b := m.Backends()
	b[0] = "mutated"
	if m.Backends()[0] == "mutated" {
		t.Fatal("Backends() must return a copy")
	}
}

func TestLookupHashConsistent(t *testing.T) {
	m, _ := NewMaglev(names(7), 4099)
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("k%d", i)
		if m.Lookup(key) != m.LookupHash(Hash64(key)) {
			t.Fatal("LookupHash disagrees with Lookup")
		}
	}
}

func TestRingBasics(t *testing.T) {
	if _, err := NewRing(nil, 16); err == nil {
		t.Fatal("empty ring accepted")
	}
	r, err := NewRing(names(12), 0) // default vnodes
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[string]int)
	const n = 120000
	for i := 0; i < n; i++ {
		counts[r.Lookup(fmt.Sprintf("flow-%d", i))]++
	}
	if len(counts) != 12 {
		t.Fatalf("only %d backends receive traffic", len(counts))
	}
	for b, c := range counts {
		frac := float64(c) / n
		if frac < 0.04 || frac > 0.14 { // ideal 1/12 ≈ 0.083; ring is noisier than Maglev
			t.Fatalf("ring backend %s got %.3f of flows", b, frac)
		}
	}
}

func TestRingDeterministic(t *testing.T) {
	a, _ := NewRing(names(5), 64)
	b, _ := NewRing(names(5), 64)
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("k%d", i)
		if a.Lookup(key) != b.Lookup(key) {
			t.Fatal("ring lookup not deterministic")
		}
	}
}

func TestRingStabilityQuick(t *testing.T) {
	r, _ := NewRing(names(8), 64)
	f := func(key string) bool {
		return r.Lookup(key) == r.Lookup(key)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestHash64Stable(t *testing.T) {
	// FNV-1a of "abc" is a published constant.
	if Hash64("abc") != 0xe71fa2190541574b {
		t.Fatalf("Hash64(abc) = %#x", Hash64("abc"))
	}
}

func BenchmarkMaglevLookup(b *testing.B) {
	m, _ := NewMaglev(names(12), 65537)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.LookupHash(uint64(i) * 0x9e3779b97f4a7c15)
	}
}

func BenchmarkMaglevBuild12(b *testing.B) {
	ns := names(12)
	for i := 0; i < b.N; i++ {
		if _, err := NewMaglev(ns, 65537); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRingLookup(b *testing.B) {
	r, _ := NewRing(names(12), 128)
	keys := make([]string, 1024)
	for i := range keys {
		keys[i] = fmt.Sprintf("flow-%d", i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Lookup(keys[i&1023])
	}
}
