// Package metrics provides the measurement machinery the SRLB evaluation
// needs: response-time recorders with exact quantiles/deciles/CDFs
// (figures 2, 3, 5, 7, 8), Jain's fairness index and EWMA smoothing
// (figure 4), and fixed-width time bins (figures 6 and 7).
package metrics

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Recorder accumulates duration samples and answers exact order
// statistics. It keeps every sample (the paper's batches are 20 000
// queries — trivially small), sorting lazily.
type Recorder struct {
	samples []time.Duration
	sorted  bool
	sum     time.Duration
	max     time.Duration
}

// NewRecorder returns a Recorder with capacity hint n.
func NewRecorder(n int) *Recorder {
	return &Recorder{samples: make([]time.Duration, 0, n)}
}

// Add records one sample.
func (r *Recorder) Add(d time.Duration) {
	r.samples = append(r.samples, d)
	r.sorted = false
	r.sum += d
	if d > r.max {
		r.max = d
	}
}

// Count returns the number of samples.
func (r *Recorder) Count() int { return len(r.samples) }

// Samples returns a copy of the raw samples in insertion order (the
// recorder may re-sort its own slice lazily at any query).
func (r *Recorder) Samples() []time.Duration {
	return append([]time.Duration(nil), r.samples...)
}

// Mean returns the sample mean (0 when empty).
func (r *Recorder) Mean() time.Duration {
	if len(r.samples) == 0 {
		return 0
	}
	return r.sum / time.Duration(len(r.samples))
}

// Max returns the largest sample.
func (r *Recorder) Max() time.Duration { return r.max }

// Sum returns the sum of all samples.
func (r *Recorder) Sum() time.Duration { return r.sum }

func (r *Recorder) sort() {
	if !r.sorted {
		sort.Slice(r.samples, func(i, j int) bool { return r.samples[i] < r.samples[j] })
		r.sorted = true
	}
}

// Quantile returns the p-quantile (0 ≤ p ≤ 1) using linear interpolation
// between closest ranks. Empty recorders return 0.
func (r *Recorder) Quantile(p float64) time.Duration {
	n := len(r.samples)
	if n == 0 {
		return 0
	}
	r.sort()
	if p <= 0 {
		return r.samples[0]
	}
	if p >= 1 {
		return r.samples[n-1]
	}
	pos := p * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return r.samples[lo]
	}
	frac := pos - float64(lo)
	return r.samples[lo] + time.Duration(frac*float64(r.samples[hi]-r.samples[lo]))
}

// Median returns the 0.5-quantile.
func (r *Recorder) Median() time.Duration { return r.Quantile(0.5) }

// Deciles returns quantiles 0.1 … 0.9, the series of paper figure 7.
func (r *Recorder) Deciles() [9]time.Duration {
	var out [9]time.Duration
	for i := 1; i <= 9; i++ {
		out[i-1] = r.Quantile(float64(i) / 10)
	}
	return out
}

// CDF returns (value, cumulative-fraction) pairs at up to maxPoints evenly
// spaced ranks — the curves of figures 3, 5 and 8.
func (r *Recorder) CDF(maxPoints int) []CDFPoint {
	n := len(r.samples)
	if n == 0 {
		return nil
	}
	r.sort()
	if maxPoints <= 0 || maxPoints > n {
		maxPoints = n
	}
	out := make([]CDFPoint, 0, maxPoints)
	for i := 0; i < maxPoints; i++ {
		rank := (i + 1) * n / maxPoints // 1..n
		out = append(out, CDFPoint{
			Value:    r.samples[rank-1],
			Fraction: float64(rank) / float64(n),
		})
	}
	return out
}

// CDFPoint is one point of an empirical CDF.
type CDFPoint struct {
	Value    time.Duration
	Fraction float64
}

// Snapshot returns a sorted copy of the samples.
func (r *Recorder) Snapshot() []time.Duration {
	r.sort()
	return append([]time.Duration(nil), r.samples...)
}

// Merge adds all samples from other into r.
func (r *Recorder) Merge(other *Recorder) {
	for _, s := range other.samples {
		r.Add(s)
	}
}

// Fairness computes Jain's fairness index (Σx)² / (n·Σx²) over the given
// loads, exactly the index plotted in figure 4. By convention the index of
// an all-zero vector is 1 (a perfectly fair idle system). Range: [1/n, 1].
func Fairness(xs []float64) float64 {
	if len(xs) == 0 {
		return 1
	}
	var sum, sumsq float64
	for _, x := range xs {
		sum += x
		sumsq += x * x
	}
	if sumsq == 0 {
		return 1
	}
	return sum * sum / (float64(len(xs)) * sumsq)
}

// EWMA is the exponential moving average with the paper's time-aware
// parameterization (figure 4, footnote 2): α = 1 − exp(−δt/τ) where δt is
// the gap between consecutive observations and τ the smoothing constant.
type EWMA struct {
	tau   time.Duration
	value float64
	last  time.Duration
	init  bool
}

// NewEWMA creates a filter with time constant tau (τ=1s reproduces the
// paper's α = 1−e^(−δt) with δt in seconds).
func NewEWMA(tau time.Duration) *EWMA {
	if tau <= 0 {
		tau = time.Second
	}
	return &EWMA{tau: tau}
}

// Update feeds observation v at time t and returns the smoothed value.
func (e *EWMA) Update(t time.Duration, v float64) float64 {
	if !e.init {
		e.value = v
		e.last = t
		e.init = true
		return v
	}
	dt := t - e.last
	if dt < 0 {
		dt = 0
	}
	alpha := 1 - math.Exp(-float64(dt)/float64(e.tau))
	e.value += alpha * (v - e.value)
	e.last = t
	return e.value
}

// Value returns the current smoothed value.
func (e *EWMA) Value() float64 { return e.value }

// TimeBins partitions a time horizon into fixed-width bins, each with its
// own Recorder — the 10-minute bins of figures 6 and 7.
type TimeBins struct {
	width time.Duration
	bins  []*Recorder
}

// NewTimeBins creates bins of the given width covering [0, horizon).
func NewTimeBins(width, horizon time.Duration) *TimeBins {
	if width <= 0 {
		panic("metrics: bin width must be positive")
	}
	n := int((horizon + width - 1) / width)
	if n < 1 {
		n = 1
	}
	bins := make([]*Recorder, n)
	for i := range bins {
		bins[i] = NewRecorder(0)
	}
	return &TimeBins{width: width, bins: bins}
}

// Add records sample d at time t. Samples beyond the horizon land in the
// last bin.
func (tb *TimeBins) Add(t time.Duration, d time.Duration) {
	i := int(t / tb.width)
	if i < 0 {
		i = 0
	}
	if i >= len(tb.bins) {
		i = len(tb.bins) - 1
	}
	tb.bins[i].Add(d)
}

// NumBins returns the number of bins.
func (tb *TimeBins) NumBins() int { return len(tb.bins) }

// Width returns the bin width.
func (tb *TimeBins) Width() time.Duration { return tb.width }

// Bin returns the recorder of bin i.
func (tb *TimeBins) Bin(i int) *Recorder { return tb.bins[i] }

// BinStart returns the start time of bin i.
func (tb *TimeBins) BinStart(i int) time.Duration { return time.Duration(i) * tb.width }

// Rate returns the per-second event rate of bin i.
func (tb *TimeBins) Rate(i int) float64 {
	return float64(tb.bins[i].Count()) / tb.width.Seconds()
}

// Seconds is a display helper converting a duration to float seconds.
func Seconds(d time.Duration) float64 { return d.Seconds() }

// FormatDuration renders d in seconds with millisecond precision, the way
// the paper's axes are labeled.
func FormatDuration(d time.Duration) string {
	return fmt.Sprintf("%.3f", d.Seconds())
}

// Counter is a simple monotonically increasing event counter keyed by
// name, used by the data-plane elements for drop/forward accounting.
type Counter struct {
	counts map[string]uint64
}

// NewCounter returns an empty counter set.
func NewCounter() *Counter { return &Counter{counts: make(map[string]uint64)} }

// Inc increments key by 1.
func (c *Counter) Inc(key string) { c.counts[key]++ }

// Addn increments key by n.
func (c *Counter) Addn(key string, n uint64) { c.counts[key] += n }

// Get returns the current count for key.
func (c *Counter) Get(key string) uint64 { return c.counts[key] }

// Keys returns all keys in sorted order.
func (c *Counter) Keys() []string {
	keys := make([]string, 0, len(c.counts))
	for k := range c.counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
