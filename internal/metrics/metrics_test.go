package metrics

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
	"time"
)

func TestRecorderBasics(t *testing.T) {
	r := NewRecorder(4)
	if r.Count() != 0 || r.Mean() != 0 || r.Max() != 0 {
		t.Fatal("empty recorder should be all-zero")
	}
	for _, d := range []time.Duration{100, 200, 300, 400} {
		r.Add(d * time.Millisecond)
	}
	if r.Count() != 4 {
		t.Fatalf("count = %d", r.Count())
	}
	if r.Mean() != 250*time.Millisecond {
		t.Fatalf("mean = %v", r.Mean())
	}
	if r.Max() != 400*time.Millisecond {
		t.Fatalf("max = %v", r.Max())
	}
	if r.Sum() != time.Second {
		t.Fatalf("sum = %v", r.Sum())
	}
}

func TestQuantileExactRanks(t *testing.T) {
	r := NewRecorder(0)
	// 1..100 ms — quantiles should be easy to reason about.
	for i := 100; i >= 1; i-- {
		r.Add(time.Duration(i) * time.Millisecond)
	}
	if got := r.Quantile(0); got != time.Millisecond {
		t.Fatalf("q0 = %v", got)
	}
	if got := r.Quantile(1); got != 100*time.Millisecond {
		t.Fatalf("q1 = %v", got)
	}
	med := r.Median()
	if med < 50*time.Millisecond || med > 51*time.Millisecond {
		t.Fatalf("median = %v", med)
	}
	q3 := r.Quantile(0.75)
	if q3 < 75*time.Millisecond || q3 > 76*time.Millisecond {
		t.Fatalf("q75 = %v", q3)
	}
}

func TestQuantileSingleSample(t *testing.T) {
	r := NewRecorder(0)
	r.Add(42 * time.Millisecond)
	for _, p := range []float64{0, 0.25, 0.5, 0.99, 1} {
		if got := r.Quantile(p); got != 42*time.Millisecond {
			t.Fatalf("q%v = %v", p, got)
		}
	}
}

func TestQuantileMonotoneQuick(t *testing.T) {
	f := func(raw []uint16, a, b float64) bool {
		if len(raw) == 0 {
			return true
		}
		a = math.Abs(math.Mod(a, 1))
		b = math.Abs(math.Mod(b, 1))
		if a > b {
			a, b = b, a
		}
		r := NewRecorder(len(raw))
		for _, v := range raw {
			r.Add(time.Duration(v) * time.Microsecond)
		}
		return r.Quantile(a) <= r.Quantile(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestDecilesOrdered(t *testing.T) {
	r := NewRecorder(0)
	rng := rand.New(rand.NewPCG(1, 1))
	for i := 0; i < 1000; i++ {
		r.Add(time.Duration(rng.IntN(1_000_000)))
	}
	d := r.Deciles()
	for i := 1; i < len(d); i++ {
		if d[i] < d[i-1] {
			t.Fatalf("deciles not monotone: %v", d)
		}
	}
	if d[4] != r.Median() {
		t.Fatalf("5th decile %v != median %v", d[4], r.Median())
	}
}

func TestCDF(t *testing.T) {
	r := NewRecorder(0)
	for i := 1; i <= 1000; i++ {
		r.Add(time.Duration(i) * time.Millisecond)
	}
	cdf := r.CDF(10)
	if len(cdf) != 10 {
		t.Fatalf("len = %d", len(cdf))
	}
	if cdf[9].Fraction != 1 {
		t.Fatalf("last fraction = %v", cdf[9].Fraction)
	}
	if cdf[9].Value != time.Second {
		t.Fatalf("last value = %v", cdf[9].Value)
	}
	for i := 1; i < len(cdf); i++ {
		if cdf[i].Value < cdf[i-1].Value || cdf[i].Fraction <= cdf[i-1].Fraction {
			t.Fatal("CDF not monotone")
		}
	}
	if r.CDF(0) == nil || len(r.CDF(0)) != 1000 {
		t.Fatal("maxPoints<=0 should return all points")
	}
	empty := NewRecorder(0)
	if empty.CDF(10) != nil {
		t.Fatal("empty CDF should be nil")
	}
}

func TestMergeAndSnapshot(t *testing.T) {
	a, b := NewRecorder(0), NewRecorder(0)
	a.Add(1 * time.Millisecond)
	b.Add(2 * time.Millisecond)
	b.Add(3 * time.Millisecond)
	a.Merge(b)
	if a.Count() != 3 {
		t.Fatalf("count = %d", a.Count())
	}
	snap := a.Snapshot()
	if len(snap) != 3 || snap[0] != time.Millisecond || snap[2] != 3*time.Millisecond {
		t.Fatalf("snapshot = %v", snap)
	}
	// Snapshot must be a copy.
	snap[0] = 99 * time.Hour
	if a.Quantile(0) == 99*time.Hour {
		t.Fatal("snapshot aliases internal storage")
	}
}

func TestFairness(t *testing.T) {
	if got := Fairness([]float64{5, 5, 5, 5}); math.Abs(got-1) > 1e-12 {
		t.Fatalf("equal loads fairness = %v, want 1", got)
	}
	// One hot server out of n → 1/n.
	xs := make([]float64, 12)
	xs[3] = 7
	if got := Fairness(xs); math.Abs(got-1.0/12) > 1e-12 {
		t.Fatalf("single hot fairness = %v, want 1/12", got)
	}
	if Fairness(nil) != 1 || Fairness([]float64{0, 0}) != 1 {
		t.Fatal("degenerate fairness should be 1")
	}
	got := Fairness([]float64{1, 0, 1, 0})
	if math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("half-loaded fairness = %v, want 0.5", got)
	}
}

func TestFairnessRangeQuick(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		fi := Fairness(xs)
		return fi >= 1/float64(len(xs))-1e-9 && fi <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestEWMAConverges(t *testing.T) {
	e := NewEWMA(time.Second)
	e.Update(0, 0)
	var v float64
	for i := 1; i <= 100; i++ {
		v = e.Update(time.Duration(i)*100*time.Millisecond, 10)
	}
	if math.Abs(v-10) > 0.01 {
		t.Fatalf("EWMA did not converge: %v", v)
	}
}

func TestEWMAFirstObservation(t *testing.T) {
	e := NewEWMA(time.Second)
	if got := e.Update(5*time.Second, 7); got != 7 {
		t.Fatalf("first update = %v, want 7", got)
	}
	if e.Value() != 7 {
		t.Fatalf("value = %v", e.Value())
	}
}

func TestEWMAAlphaDependsOnGap(t *testing.T) {
	// A large gap should move the average much more than a small gap.
	small := NewEWMA(time.Second)
	small.Update(0, 0)
	vSmall := small.Update(10*time.Millisecond, 10)

	large := NewEWMA(time.Second)
	large.Update(0, 0)
	vLarge := large.Update(5*time.Second, 10)

	if vSmall >= vLarge {
		t.Fatalf("EWMA gap handling wrong: small=%v large=%v", vSmall, vLarge)
	}
	if vLarge < 9.9 {
		t.Fatalf("after 5τ gap value should be ≈10, got %v", vLarge)
	}
}

func TestEWMADefaultTau(t *testing.T) {
	e := NewEWMA(0)
	e.Update(0, 1)
	e.Update(time.Second, 2) // must not panic, tau defaulted
}

func TestTimeBins(t *testing.T) {
	tb := NewTimeBins(10*time.Minute, 24*time.Hour)
	if tb.NumBins() != 144 {
		t.Fatalf("bins = %d, want 144", tb.NumBins())
	}
	tb.Add(0, time.Second)
	tb.Add(9*time.Minute+59*time.Second, 2*time.Second)
	tb.Add(10*time.Minute, 3*time.Second)
	tb.Add(25*time.Hour, 4*time.Second) // beyond horizon → last bin
	if tb.Bin(0).Count() != 2 {
		t.Fatalf("bin0 = %d", tb.Bin(0).Count())
	}
	if tb.Bin(1).Count() != 1 {
		t.Fatalf("bin1 = %d", tb.Bin(1).Count())
	}
	if tb.Bin(143).Count() != 1 {
		t.Fatalf("last bin = %d", tb.Bin(143).Count())
	}
	if tb.BinStart(6) != time.Hour {
		t.Fatalf("BinStart(6) = %v", tb.BinStart(6))
	}
	if got := tb.Rate(0); math.Abs(got-2.0/600) > 1e-12 {
		t.Fatalf("rate = %v", got)
	}
	if tb.Width() != 10*time.Minute {
		t.Fatalf("width = %v", tb.Width())
	}
}

func TestTimeBinsPanicsOnBadWidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewTimeBins(0, time.Hour)
}

func TestCounter(t *testing.T) {
	c := NewCounter()
	c.Inc("drops")
	c.Inc("drops")
	c.Addn("forwards", 10)
	if c.Get("drops") != 2 || c.Get("forwards") != 10 || c.Get("missing") != 0 {
		t.Fatal("counter values wrong")
	}
	keys := c.Keys()
	if len(keys) != 2 || keys[0] != "drops" || keys[1] != "forwards" {
		t.Fatalf("keys = %v", keys)
	}
}

func TestFormatDuration(t *testing.T) {
	if got := FormatDuration(1234 * time.Millisecond); got != "1.234" {
		t.Fatalf("FormatDuration = %q", got)
	}
	if Seconds(1500*time.Millisecond) != 1.5 {
		t.Fatal("Seconds conversion wrong")
	}
}

func BenchmarkRecorderAdd(b *testing.B) {
	r := NewRecorder(b.N)
	for i := 0; i < b.N; i++ {
		r.Add(time.Duration(i))
	}
}

func BenchmarkQuantile20k(b *testing.B) {
	r := NewRecorder(20000)
	rng := rand.New(rand.NewPCG(1, 1))
	for i := 0; i < 20000; i++ {
		r.Add(time.Duration(rng.IntN(1_000_000)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Add(time.Duration(i)) // force re-sort
		_ = r.Median()
	}
}
