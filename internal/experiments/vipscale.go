// VIP-scale dispatch cost: per-packet load-balancer cost as the number
// of advertised services sweeps 100 → 10k, per selection scheme — the
// regime where kube-proxy's O(n) iptables traversal collapses while an
// O(1) hash dispatch stays flat. The measurement drives the LB's Handle
// loop directly on generated topologies (testbed.GenerateTopology):
// packets are crafted and dispatched without running the simulator, so
// the number is pure forwarding-plane work (VIP lookup, scheme pick or
// flow-table hit, SRH construction, wire marshal), not queueing.
//
// RunVIPScale is the canonical instance behind
// `srlb-bench -experiment vipscale`. The headline figure is the flat
// latency-vs-#services curve; the complexity-class regression test in
// bench_core fails the build if dispatch at 10k VIPs ever exceeds 2×
// its 1k cost.

package experiments

import (
	"fmt"
	"io"
	"math/rand/v2"
	"net/netip"
	"time"

	"srlb/internal/packet"
	"srlb/internal/plot"
	"srlb/internal/selection"
	"srlb/internal/tcpseg"
	"srlb/internal/testbed"
)

// VIPScaleScheme names one selection scheme variant for the sweep.
type VIPScaleScheme struct {
	Name     string
	Scheme   testbed.SchemeFn
	Fallback testbed.FallbackFn // optional miss-fallback (chash variants)
}

// vipScaleTableSize is the Maglev table size the chash variant uses:
// prime, ≥ 300× the 12-server pools — small enough that even a cold
// cache populates in microseconds.
const vipScaleTableSize = 4099

// VIPScaleSchemes returns the default scheme axis: the paper's random-2,
// deterministic round-robin-2, and Maglev consistent hashing (with
// itself as miss-fallback — the production configuration).
func VIPScaleSchemes() []VIPScaleScheme {
	chash := func(servers []netip.Addr) selection.Scheme {
		cs, err := selection.NewConsistentHash(servers, vipScaleTableSize)
		if err != nil {
			panic(fmt.Sprintf("vipscale: chash: %v", err))
		}
		return cs
	}
	return []VIPScaleScheme{
		{Name: "random2", Scheme: func(servers []netip.Addr, r *rand.Rand) selection.Scheme {
			return selection.NewRandom(servers, 2, r)
		}},
		{Name: "roundrobin2", Scheme: func(servers []netip.Addr, _ *rand.Rand) selection.Scheme {
			return selection.NewRoundRobin(servers, 2)
		}},
		{Name: "chash2", Scheme: func(servers []netip.Addr, _ *rand.Rand) selection.Scheme {
			return chash(servers)
		}, Fallback: chash},
	}
}

// VIPScaleConfig parameterizes the sweep.
type VIPScaleConfig struct {
	// VIPCounts is the service-count axis (default {100, 1000, 10000}).
	VIPCounts []int
	// Schemes is the selection-scheme axis (default VIPScaleSchemes()).
	Schemes []VIPScaleScheme
	// Pools spreads the VIPs over this many shared server pools (default
	// 16); ServersPerPool sizes each (default 12).
	Pools          int
	ServersPerPool int
	// Ops is the dispatch-op count per measured path (default 100000);
	// Rounds repeats each measurement, keeping the minimum (default 3 —
	// the minimum is the least-noise estimator for a deterministic loop).
	Ops    int
	Rounds int
	// WarmFlows seeds the flow table for the steered-path measurement
	// (default 4096).
	WarmFlows int
	// Seed drives the topology's random streams (default 0x51ca1e).
	Seed     uint64
	Progress func(string)
}

func (cfg VIPScaleConfig) withDefaults() VIPScaleConfig {
	if len(cfg.VIPCounts) == 0 {
		cfg.VIPCounts = []int{100, 1000, 10000}
	}
	if len(cfg.Schemes) == 0 {
		cfg.Schemes = VIPScaleSchemes()
	}
	if cfg.Pools <= 0 {
		cfg.Pools = 16
	}
	if cfg.ServersPerPool <= 0 {
		cfg.ServersPerPool = 12
	}
	if cfg.Ops <= 0 {
		cfg.Ops = 100000
	}
	if cfg.Rounds <= 0 {
		cfg.Rounds = 3
	}
	if cfg.WarmFlows <= 0 {
		cfg.WarmFlows = 4096
	}
	if cfg.Seed == 0 {
		cfg.Seed = 0x51ca1e
	}
	return cfg
}

// VIPScaleRow is one (scheme, VIP-count) measurement.
type VIPScaleRow struct {
	Scheme string
	VIPs   int
	Pools  int
	// BuildMS is the control-plane cost: topology generation + compile
	// (all replica schemes, pools, servers) in wall milliseconds.
	BuildMS float64
	// SYNNs is the per-packet SYN (Service Hunting) dispatch cost and
	// SteerNs the per-packet steered (flow-table hit) cost, wall ns.
	SYNNs   float64
	SteerNs float64
	Ops     int
}

// VIPScaleResult is the full sweep.
type VIPScaleResult struct {
	VIPCounts []int
	Rows      []VIPScaleRow
}

// DispatchRig drives one generated topology's primary LB replica
// directly: it crafts client packets and calls Handle without ever
// running the simulator (netsim only schedules deliveries, so pending
// events pile up harmlessly and virtual time stays at zero). Exported
// for the bench_core benchmarks, which pin the complexity class of the
// same loop.
type DispatchRig struct {
	TB      *testbed.Testbed
	vips    []netip.Addr
	clients []netip.Addr
	server  netip.Addr
	pkt     packet.Packet
}

// NewDispatchRig generates and compiles a topology of the given shape
// and prepares the packet loop.
func NewDispatchRig(seed uint64, vipCount, pools, serversPerPool int, scheme VIPScaleScheme) *DispatchRig {
	top := testbed.GenerateTopology(testbed.GenSpec{
		Seed:           seed,
		VIPs:           vipCount,
		Pools:          pools,
		ServersPerPool: serversPerPool,
		Scheme:         scheme.Scheme,
		Fallback:       scheme.Fallback,
	})
	// Drop every delivery: Send still pays the full marshal (the cost we
	// measure) but recycles the in-flight record immediately instead of
	// scheduling it, so millions of dispatches don't pile pending events
	// (and their GC pressure) into the never-run simulator.
	top.Net.LossProb = 1
	tb := testbed.Build(top)
	r := &DispatchRig{
		TB:      tb,
		vips:    make([]netip.Addr, vipCount),
		clients: make([]netip.Addr, 8),
		server:  testbed.SharedPoolServerAddr(0, 0),
	}
	for v := range r.vips {
		r.vips[v] = testbed.VIPAddr(v)
	}
	for j := range r.clients {
		r.clients[j] = testbed.ClientAddr(j)
	}
	return r
}

// synFlow returns the i-th SYN-path flow: source ports below 32768,
// disjoint from the seeded steered flows, cycling clients and VIPs so
// consecutive packets hit different services.
func (r *DispatchRig) synFlow(i int) (src, dst netip.Addr, sport uint16) {
	return r.clients[i%len(r.clients)], r.vips[i%len(r.vips)], uint16(1024 + i%30000)
}

// steerFlow returns the k-th seeded flow (source ports ≥ 32768).
func (r *DispatchRig) steerFlow(k int) (src, dst netip.Addr, sport uint16) {
	return r.clients[k%len(r.clients)], r.vips[k%len(r.vips)], uint16(32768 + k%32000)
}

// SeedFlows installs n flow-table bindings for the steered-path loop.
func (r *DispatchRig) SeedFlows(n int) {
	for k := 0; k < n; k++ {
		src, dst, sport := r.steerFlow(k)
		r.TB.LB.SeedFlow(packet.FlowKey{Src: src, Dst: dst, SrcPort: sport, DstPort: 80}, r.server)
	}
}

// SYNOp dispatches the i-th SYN packet (VIP lookup → scheme pick →
// hunt SRH → marshal) — one per-packet unit of Service Hunting work,
// exposed so testing.B loops can drive single ops.
func (r *DispatchRig) SYNOp(i int) {
	src, dst, sport := r.synFlow(i)
	r.pkt.IP.Src, r.pkt.IP.Dst = src, dst
	r.pkt.TCP = tcpseg.Segment{SrcPort: sport, DstPort: 80, Flags: tcpseg.FlagSYN}
	r.pkt.SRH = nil
	r.TB.LB.Handle(&r.pkt)
}

// SteerOp dispatches the i-th steered packet over n seeded flows (VIP
// lookup → flow-table hit → steer SRH → marshal). Call SeedFlows(n)
// first.
func (r *DispatchRig) SteerOp(i, n int) {
	src, dst, sport := r.steerFlow(i % n)
	r.pkt.IP.Src, r.pkt.IP.Dst = src, dst
	r.pkt.TCP = tcpseg.Segment{SrcPort: sport, DstPort: 80, Flags: tcpseg.FlagACK}
	r.pkt.SRH = nil
	r.TB.LB.Handle(&r.pkt)
}

// MeasureSYN runs ops SYN dispatches and returns wall ns per op.
func (r *DispatchRig) MeasureSYN(ops int) float64 {
	t0 := time.Now()
	for i := 0; i < ops; i++ {
		r.SYNOp(i)
	}
	return float64(time.Since(t0)) / float64(ops)
}

// MeasureSteered runs ops steered dispatches over n seeded flows and
// returns wall ns per op. Call SeedFlows(n) first.
func (r *DispatchRig) MeasureSteered(ops, n int) float64 {
	t0 := time.Now()
	for i := 0; i < ops; i++ {
		r.SteerOp(i, n)
	}
	return float64(time.Since(t0)) / float64(ops)
}

// RunVIPScale executes the sweep: for each (scheme, VIP count) it
// builds a generated topology, measures control-plane build time, then
// the SYN and steered per-packet dispatch costs (minimum over Rounds).
func RunVIPScale(cfg VIPScaleConfig) VIPScaleResult {
	cfg = cfg.withDefaults()
	progress := cfg.Progress
	if progress == nil {
		progress = func(string) {}
	}
	res := VIPScaleResult{VIPCounts: cfg.VIPCounts}
	for _, scheme := range cfg.Schemes {
		for _, v := range cfg.VIPCounts {
			t0 := time.Now()
			rig := NewDispatchRig(cfg.Seed, v, cfg.Pools, cfg.ServersPerPool, scheme)
			buildMS := float64(time.Since(t0)) / float64(time.Millisecond)
			rig.SeedFlows(cfg.WarmFlows)
			// Warm both paths once before timing (first-touch map growth,
			// branch warm-up), then keep the minimum across rounds.
			rig.MeasureSYN(cfg.Ops / 10)
			rig.MeasureSteered(cfg.Ops/10, cfg.WarmFlows)
			synNs, steerNs := 0.0, 0.0
			for round := 0; round < cfg.Rounds; round++ {
				if s := rig.MeasureSYN(cfg.Ops); round == 0 || s < synNs {
					synNs = s
				}
				if s := rig.MeasureSteered(cfg.Ops, cfg.WarmFlows); round == 0 || s < steerNs {
					steerNs = s
				}
			}
			row := VIPScaleRow{
				Scheme: scheme.Name, VIPs: v, Pools: cfg.Pools,
				BuildMS: buildMS, SYNNs: synNs, SteerNs: steerNs, Ops: cfg.Ops,
			}
			res.Rows = append(res.Rows, row)
			progress(fmt.Sprintf("vipscale %s vips=%d: build %.1f ms, syn %.0f ns/op, steer %.0f ns/op",
				scheme.Name, v, buildMS, synNs, steerNs))
		}
	}
	return res
}

// FlatnessRatio returns the worst (largest-count vs smallest-count)
// dispatch-cost ratio across schemes and both paths — 1.0 is perfectly
// flat; an O(n) structure shows up as ≈ count ratio.
func (r VIPScaleResult) FlatnessRatio() float64 {
	worst := 0.0
	type pair struct{ lo, hi VIPScaleRow }
	byScheme := make(map[string]*pair)
	for _, row := range r.Rows {
		p, ok := byScheme[row.Scheme]
		if !ok {
			p = &pair{lo: row, hi: row}
			byScheme[row.Scheme] = p
			continue
		}
		if row.VIPs < p.lo.VIPs {
			p.lo = row
		}
		if row.VIPs > p.hi.VIPs {
			p.hi = row
		}
	}
	for _, p := range byScheme {
		if p.lo.SYNNs > 0 {
			if ratio := p.hi.SYNNs / p.lo.SYNNs; ratio > worst {
				worst = ratio
			}
		}
		if p.lo.SteerNs > 0 {
			if ratio := p.hi.SteerNs / p.lo.SteerNs; ratio > worst {
				worst = ratio
			}
		}
	}
	return worst
}

// Plot renders the latency-vs-#services figure: one facet per dispatch
// path, VIP count on X (per scheme series) — the eBPF-study shape.
func (r VIPScaleResult) Plot() []plot.Facet {
	paths := []struct {
		title string
		get   func(VIPScaleRow) float64
	}{
		{"VIP scale: SYN dispatch ns/pkt vs #services", func(row VIPScaleRow) float64 { return row.SYNNs }},
		{"VIP scale: steered dispatch ns/pkt vs #services", func(row VIPScaleRow) float64 { return row.SteerNs }},
	}
	facets := make([]plot.Facet, 0, len(paths))
	for _, p := range paths {
		bySeries := make(map[string]*plot.Series)
		var order []string
		for _, row := range r.Rows {
			ser, ok := bySeries[row.Scheme]
			if !ok {
				ser = &plot.Series{Name: row.Scheme}
				bySeries[row.Scheme] = ser
				order = append(order, row.Scheme)
			}
			ser.X = append(ser.X, float64(row.VIPs))
			ser.Y = append(ser.Y, p.get(row))
		}
		series := make([]plot.Series, 0, len(order))
		for _, name := range order {
			series = append(series, *bySeries[name])
		}
		facets = append(facets, plot.Facet{Title: p.title, Series: series})
	}
	return facets
}

// WriteTSV renders the sweep, one row per (scheme, VIP count).
func (r VIPScaleResult) WriteTSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "# Per-packet dispatch cost vs advertised service count (wall ns, min over rounds; build is control-plane compile ms)"); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "scheme\tvips\tpools\tbuild_ms\tsyn_ns\tsteer_ns\tops"); err != nil {
		return err
	}
	for _, row := range r.Rows {
		if _, err := fmt.Fprintf(w, "%s\t%d\t%d\t%.2f\t%.1f\t%.1f\t%d\n",
			row.Scheme, row.VIPs, row.Pools, row.BuildMS, row.SYNNs, row.SteerNs, row.Ops); err != nil {
			return err
		}
	}
	return nil
}
