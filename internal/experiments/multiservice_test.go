package experiments

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"srlb/internal/agent"
	"srlb/internal/wiki"
)

// testServices is a small three-service mix — web Poisson + wiki replay +
// batch bursty — sized so a cell simulates in well under a second. The
// wiki day's rates are scaled down to a 4-server pool.
func testServices(webQ, batchQ int) []ServiceSpec {
	return []ServiceSpec{
		{Name: "web", Workload: PoissonService{Lambda0: 80, Queries: webQ}},
		{Name: "wiki", Workload: WikiService{Day: wiki.Config{
			Compression: 5760, FullPeakRate: 60, FullTroughRate: 30,
		}}},
		{Name: "batch", Workload: BurstyService{Lambda0: 40, Queries: batchQ, PeakFactor: 4}, Servers: 2},
	}
}

// Per-VIP conservation: for every service of a multi-service run,
// completions + refusals + unfinished must equal the queries offered to
// that VIP, and the per-VIP columns must sum to the aggregate outcome —
// across selection schemes and replica counts, including the structurally
// lossy random-selection multi-replica configuration.
func TestMultiServiceConservation(t *testing.T) {
	firstAccept := PolicySpec{
		Name:       "first-accept",
		Candidates: 2,
		NewAgent:   func() agent.Policy { return agent.Always{} },
	}
	cases := []struct {
		name                string
		policy              PolicySpec
		replicas            int
		chash, missFallback bool
	}{
		{"RR single LB", RR(), 1, false, false},
		{"SR4 single LB", SRc(4), 1, false, false},
		{"SRdyn single LB", SRdyn(), 1, false, false},
		{"maglev+fallback 2 replicas", firstAccept, 2, true, true},
		// Random selection across 2 replicas loses flows by construction
		// (cross-replica steering has nothing to fall back to); the books
		// must still balance, with the losses in Unfinished.
		{"random 2 replicas (lossy)", SRc(4), 2, false, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cluster := ClusterConfig{
				Seed: 31, Servers: 4,
				Replicas:       tc.replicas,
				ConsistentHash: tc.chash,
				MissFallback:   tc.missFallback,
			}
			w := MultiServiceWorkload{Services: testServices(600, 300)}
			out, err := w.Run(context.Background(), cluster, tc.policy, 0.7)
			if err != nil {
				t.Fatal(err)
			}
			if len(out.PerVIP) != 3 {
				t.Fatalf("PerVIP has %d entries, want 3", len(out.PerVIP))
			}
			var offered, completed, refused, unfinished int
			for _, vo := range out.PerVIP {
				if vo.Offered == 0 {
					t.Fatalf("service %q offered no queries — stream never opened", vo.Name)
				}
				if got := vo.RT.Count() + vo.Refused + vo.Unfinished; got != vo.Offered {
					t.Fatalf("service %q: %d completed + %d refused + %d unfinished != %d offered",
						vo.Name, vo.RT.Count(), vo.Refused, vo.Unfinished, vo.Offered)
				}
				offered += vo.Offered
				completed += vo.RT.Count()
				refused += vo.Refused
				unfinished += vo.Unfinished
			}
			if completed != out.RT.Count() || refused != out.Refused || unfinished != out.Unfinished {
				t.Fatalf("per-VIP sums (%d/%d/%d) != aggregate (%d/%d/%d)",
					completed, refused, unfinished, out.RT.Count(), out.Refused, out.Unfinished)
			}
			if got := out.RT.Count() + out.Refused + out.Unfinished; got != offered {
				t.Fatalf("aggregate accounting: %d results for %d offered", got, offered)
			}
			if out.RT.Count() == 0 {
				t.Fatal("no queries completed at moderate load — run vacuous")
			}
		})
	}
}

// A multi-service sweep with mixed per-VIP workloads is byte-identical at
// 1 vs N Runner workers and across repeated runs with the same seeds.
func TestMultiServiceDeterminism(t *testing.T) {
	sweep := Sweep{
		Cluster:  ClusterConfig{Seed: 33, Servers: 4},
		Policies: []PolicySpec{RR(), SRc(4)},
		Loads:    []float64{0.7},
		Seeds:    DeriveSeeds(33, 2),
		Workload: MultiServiceWorkload{Services: testServices(400, 200)},
	}
	serial, err := Runner{Workers: 1}.RunSweep(context.Background(), sweep)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Runner{Workers: 4}.RunSweep(context.Background(), sweep)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stripWall(serial.Cells), stripWall(parallel.Cells)) {
		t.Fatal("multi-service sweep differs between 1 and 4 workers")
	}
	again, err := Runner{Workers: 4}.RunSweep(context.Background(), sweep)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stripWall(parallel.Cells), stripWall(again.Cells)) {
		t.Fatal("multi-service sweep not reproducible across runs")
	}

	// The replication axis folds per VIP too: each service aggregates its
	// own across-seed stats, aligned and labeled.
	agg := serial.Aggregate()
	cs := agg.Cell(1, 0) // SR 4
	if cs.N() != 2 {
		t.Fatalf("aggregate has %d replicates, want 2", cs.N())
	}
	if len(cs.VIPs) != 3 {
		t.Fatalf("aggregate has %d VIP breakdowns, want 3", len(cs.VIPs))
	}
	for i, want := range []string{"web", "wiki", "batch"} {
		vs := cs.VIPs[i]
		if vs.Name != want {
			t.Fatalf("VIP %d named %q, want %q", i, vs.Name, want)
		}
		if vs.Offered.Dist.Mean == 0 {
			t.Fatalf("VIP %q aggregated zero offered queries", want)
		}
		if len(vs.Mean.Values) != 2 {
			t.Fatalf("VIP %q aggregated %d replicates, want 2", want, len(vs.Mean.Values))
		}
	}
}

// The workload label names every service, and single-VIP cells keep a nil
// per-VIP breakdown (no spurious VIPs entries in their aggregates).
func TestMultiServiceLabelsAndSingleVIPNil(t *testing.T) {
	w := MultiServiceWorkload{Services: testServices(100, 100)}
	label := w.Label()
	for _, want := range []string{"web:poisson", "wiki:wiki-day", "batch:bursty"} {
		if !strings.Contains(label, want) {
			t.Fatalf("label %q does not mention %q", label, want)
		}
	}
	cell := Scenario{
		Cluster:  ClusterConfig{Seed: 5, Servers: 4},
		Policy:   RR(),
		Workload: PoissonWorkload{Lambda0: 80, Queries: 300},
		Load:     0.5,
	}.Run(context.Background())
	if cell.Outcome.PerVIP != nil {
		t.Fatal("single-VIP workload must not produce a PerVIP breakdown")
	}
	if vips := newCellStats([]CellResult{cell}).VIPs; vips != nil {
		t.Fatal("single-VIP aggregate must keep VIPs nil")
	}
}

// RunMultiService produces per-(rho, policy, service) rows, including the
// aggregate, and the TSV renders one line per row.
func TestRunMultiServiceSmall(t *testing.T) {
	res := RunMultiService(MultiServiceConfig{
		Cluster:     ClusterConfig{Seed: 37, Servers: 4},
		Lambda0:     80,
		Rhos:        []float64{0.7},
		Queries:     400,
		Compression: 5760,
		Policies:    []PolicySpec{RR(), SRc(4)},
	})
	if got, want := len(res.Services), 3; got != want {
		t.Fatalf("%d services, want %d", got, want)
	}
	// 1 rho × 2 policies × (1 aggregate + 3 services).
	if got, want := len(res.Rows), 8; got != want {
		t.Fatalf("%d rows, want %d", got, want)
	}
	for _, row := range res.Rows {
		if row.N != 1 {
			t.Fatalf("row %+v has N=%d, want 1", row, row.N)
		}
		if row.Service != "all" && row.Offered == 0 {
			t.Fatalf("service row %q offered nothing", row.Service)
		}
	}
	if _, err := res.Row("SR 4", "wiki", 0.7); err != nil {
		t.Fatal(err)
	}
	if _, err := res.Improvement("SR 4", "web", 0.7); err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := res.WriteTSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(buf.String(), "\n")
	if lines != 2+len(res.Rows) { // header comment + column header + rows
		t.Fatalf("TSV has %d lines, want %d", lines, 2+len(res.Rows))
	}
	if series := res.PlotSeries("web"); len(series) != 2 {
		t.Fatalf("PlotSeries returned %d series, want 2", len(series))
	}
}

// Pinned-trace mode: replaying one recorded day across seeds must cut
// the across-seed variance of the wiki rows vs seed-derived days — with
// the trace (arrivals, page sequence, per-server cost streams) frozen,
// replicates differ only in the cluster's own randomness.
func TestWikiServicePinnedTraceCutsVariance(t *testing.T) {
	run := func(pinned bool) CellStats {
		agg, err := Runner{Workers: 4}.RunSweepStats(context.Background(), Sweep{
			Cluster:  ClusterConfig{Seed: 91, Servers: 4},
			Policies: []PolicySpec{SRc(4)},
			Loads:    []float64{0.8},
			Seeds:    DeriveSeeds(91, 4),
			Workload: MultiServiceWorkload{Services: []ServiceSpec{
				{Name: "wiki", Workload: WikiService{
					Day:    wiki.Config{Compression: 5760, FullPeakRate: 60, FullTroughRate: 30},
					Pinned: pinned,
				}},
			}},
		})
		if err != nil {
			t.Fatal(err)
		}
		cs := agg.Cell(0, 0)
		if cs.N() != 4 || len(cs.VIPs) != 1 {
			t.Fatalf("aggregate has n=%d, %d VIPs — want 4 replicates of 1 service", cs.N(), len(cs.VIPs))
		}
		return cs
	}
	pinnedCS, freeCS := run(true), run(false)
	if !strings.Contains(pinnedCS.VIPs[0].Workload, "pinned") {
		t.Fatalf("pinned run's workload label %q does not say so", pinnedCS.VIPs[0].Workload)
	}
	// A pinned day offers the identical query count every seed; a
	// seed-derived day resamples the NHPP and varies.
	if s := pinnedCS.VIPs[0].Offered.Dist.Std; s != 0 {
		t.Fatalf("pinned replay varies its offered count across seeds (std=%.2f)", s)
	}
	if s := freeCS.VIPs[0].Offered.Dist.Std; s == 0 {
		t.Fatal("seed-derived replay offered identical counts — day not seed-derived?")
	}
	pv, fv := pinnedCS.VIPs[0].Mean.Dist.Std, freeCS.VIPs[0].Mean.Dist.Std
	if pv >= fv {
		t.Fatalf("pinned across-seed mean-RT std %.6f not below seed-derived %.6f", pv, fv)
	}
	t.Logf("across-seed mean-RT std: pinned %.6fs vs seed-derived %.6fs", pv, fv)
}

// A batch-heavy service mix is where multi-service hunting pays off: the
// batch VIP's bursts must not be visible in the web VIP's outcome under
// Service Hunting any more than under RR — and within the batch VIP,
// SR4 must beat RR's tail as in the single-service bursty study.
func TestMultiServiceBatchIsolation(t *testing.T) {
	run := func(p PolicySpec) CellOutcome {
		w := MultiServiceWorkload{Services: testServices(800, 800)}
		out, err := w.Run(context.Background(), ClusterConfig{Seed: 41, Servers: 4}, p, 0.8)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	rr, sr := run(RR()), run(SRc(4))
	// Pool separation is structural: web traffic is served by web servers
	// only, so batch bursts cannot refuse web queries. The interesting
	// comparison is within each service.
	if sr.PerVIP[2].RT.Quantile(0.95) >= rr.PerVIP[2].RT.Quantile(0.95) {
		t.Logf("note: SR4 batch p95 %v vs RR %v — hunting did not beat the spray on this seed",
			sr.PerVIP[2].RT.Quantile(0.95), rr.PerVIP[2].RT.Quantile(0.95))
	}
	for _, out := range []CellOutcome{rr, sr} {
		if out.PerVIP[0].OKFraction() < 0.95 {
			t.Fatalf("web service lost %.1f%% of queries at moderate load",
				100*(1-out.PerVIP[0].OKFraction()))
		}
	}
}
