package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"srlb/internal/agent"
	"srlb/internal/metrics"
)

// AblationConfig drives the design-choice studies DESIGN.md lists beyond
// the paper's own figures: the number of SR candidates, the SRdyn window,
// the static threshold sweep, and the selection scheme.
type AblationConfig struct {
	Cluster ClusterConfig
	// Rho is the load at which ablations run (default 0.88 — where the
	// policy differences are sharpest in figure 2).
	Rho     float64
	Lambda0 float64
	Queries int
	// Workers bounds each study's parallelism (0 = GOMAXPROCS).
	Workers int
	// Progress receives one line per finished run, if non-nil.
	Progress func(string)
}

// AblationRow is one configuration's outcome.
type AblationRow struct {
	Label   string
	Mean    time.Duration
	Median  time.Duration
	P95     time.Duration
	Refused int
}

// AblationResult groups rows under a study name.
type AblationResult struct {
	Study string
	Rho   float64
	Rows  []AblationRow
}

// WriteTSV renders the study.
func (r AblationResult) WriteTSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# Ablation: %s (rho=%.2f)\n", r.Study, r.Rho); err != nil {
		return err
	}
	fmt.Fprintln(w, "config\tmean_s\tmedian_s\tp95_s\trefused")
	for _, row := range r.Rows {
		if _, err := fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%d\n",
			row.Label,
			metrics.FormatDuration(row.Mean),
			metrics.FormatDuration(row.Median),
			metrics.FormatDuration(row.P95),
			row.Refused); err != nil {
			return err
		}
	}
	return nil
}

func (cfg *AblationConfig) defaults() {
	cfg.Cluster = cfg.Cluster.withDefaults()
	if cfg.Rho == 0 {
		cfg.Rho = 0.88
	}
	if cfg.Queries == 0 {
		cfg.Queries = 20000
	}
	if cfg.Lambda0 == 0 {
		cal := Calibrate(CalibrationConfig{Cluster: cfg.Cluster})
		cfg.Lambda0 = cal.Lambda0
	}
}

// scenario builds one study cell: the shared Poisson workload at the
// study load, under a (possibly per-cell) cluster and policy.
func (cfg *AblationConfig) scenario(label string, spec PolicySpec, cluster ClusterConfig) Scenario {
	return Scenario{
		Name:     label,
		Cluster:  cluster,
		Policy:   spec,
		Workload: PoissonWorkload{Lambda0: cfg.Lambda0, Queries: cfg.Queries},
		Load:     cfg.Rho,
	}
}

// runStudy executes a study's scenarios on the parallel Runner and folds
// the cells into labeled rows (input order; cancelled cells omitted).
func (cfg *AblationConfig) runStudy(ctx context.Context, study string, scenarios []Scenario) AblationResult {
	res := AblationResult{Study: study, Rho: cfg.Rho}
	progress := cfg.Progress
	if progress != nil {
		study := study
		orig := progress
		progress = func(s string) { orig(fmt.Sprintf("[%s] %s", study, s)) }
	}
	cells, _ := Runner{Workers: cfg.Workers, Progress: progress}.Run(ctx, scenarios)
	for _, cell := range cells {
		if cell.Skipped() {
			continue
		}
		res.Rows = append(res.Rows, AblationRow{
			Label:   cell.Name,
			Mean:    cell.Outcome.RT.Mean(),
			Median:  cell.Outcome.RT.Median(),
			P95:     cell.Outcome.RT.Quantile(0.95),
			Refused: cell.Outcome.Refused,
		})
	}
	return res
}

// RunCandidateAblation sweeps the SR list length k ∈ {1, 2, 3, 4} at the
// SR4 threshold — quantifying Mitzenmacher's "decreased marginal benefit
// from more than two servers" cited in §II-B.
func RunCandidateAblation(cfg AblationConfig) AblationResult {
	cfg.defaults()
	var scenarios []Scenario
	for _, k := range []int{1, 2, 3, 4} {
		spec, label := SRcK(4, k), fmt.Sprintf("k=%d", k)
		if k == 1 {
			spec, label = RR(), "k=1 (RR)"
		}
		scenarios = append(scenarios, cfg.scenario(label, spec, cfg.Cluster))
	}
	return cfg.runStudy(context.Background(), "SR candidates (power of k choices)", scenarios)
}

// RunThresholdAblation sweeps the static threshold c at fixed load,
// locating the SRc optimum (§III-A: "the choice of the parameter c has a
// direct influence on the behavior of the global system").
func RunThresholdAblation(cfg AblationConfig) AblationResult {
	cfg.defaults()
	var scenarios []Scenario
	for _, c := range []int{1, 2, 4, 6, 8, 12, 16, 24, 32} {
		scenarios = append(scenarios, cfg.scenario(fmt.Sprintf("c=%d", c), SRc(c), cfg.Cluster))
	}
	return cfg.runStudy(context.Background(), "static threshold c sweep", scenarios)
}

// RunWindowAblation sweeps SRdyn's adaptation window (Algorithm 2 uses
// 50).
func RunWindowAblation(cfg AblationConfig) AblationResult {
	cfg.defaults()
	var scenarios []Scenario
	for _, win := range []int{10, 25, 50, 100, 200} {
		win := win
		spec := PolicySpec{
			Name:       fmt.Sprintf("SRdyn(w=%d)", win),
			Candidates: 2,
			NewAgent: func() agent.Policy {
				return agent.NewDynamic(agent.DynamicConfig{WindowSize: win})
			},
		}
		scenarios = append(scenarios, cfg.scenario(spec.Name, spec, cfg.Cluster))
	}
	return cfg.runStudy(context.Background(), "SRdyn window size", scenarios)
}

// RunSchemeAblation compares uniform-random candidate selection against
// the Maglev consistent-hash pairs (§II-B's two schemes).
func RunSchemeAblation(cfg AblationConfig) AblationResult {
	cfg.defaults()
	ch := cfg.Cluster
	ch.ConsistentHash = true
	scenarios := []Scenario{
		cfg.scenario("random2", SRc(4), cfg.Cluster),
		cfg.scenario("chash2", SRc(4), ch),
	}
	return cfg.runStudy(context.Background(), "selection scheme (random vs consistent hash)", scenarios)
}

// RunBacklogAblation varies the accept-queue depth and the
// abort-on-overflow switch (§IV-C pins them to 128/on).
func RunBacklogAblation(cfg AblationConfig) AblationResult {
	cfg.defaults()
	var scenarios []Scenario
	for _, backlog := range []int{16, 64, 128, 512} {
		cl := cfg.Cluster
		cl.Server.Backlog = backlog
		scenarios = append(scenarios, cfg.scenario(fmt.Sprintf("backlog=%d", backlog), SRc(4), cl))
	}
	cl := cfg.Cluster
	cl.Server.AbortOnOverflow = false
	scenarios = append(scenarios, cfg.scenario("backlog=128,silent-drop", SRc(4), cl))
	return cfg.runStudy(context.Background(), "backlog depth and abort-on-overflow", scenarios)
}

// RunAllAblations executes every study.
func RunAllAblations(cfg AblationConfig) []AblationResult {
	cfg.defaults() // calibrate once; the copy passes Lambda0 on
	return []AblationResult{
		RunCandidateAblation(cfg),
		RunThresholdAblation(cfg),
		RunWindowAblation(cfg),
		RunSchemeAblation(cfg),
		RunBacklogAblation(cfg),
	}
}
