package experiments

import (
	"context"
	"fmt"
	"io"
	"math"
	"time"

	"srlb/internal/agent"
	"srlb/internal/metrics"
)

// AblationConfig drives the design-choice studies DESIGN.md lists beyond
// the paper's own figures: the number of SR candidates, the SRdyn window,
// the static threshold sweep, and the selection scheme.
type AblationConfig struct {
	Cluster ClusterConfig
	// Rho is the load at which ablations run (default 0.88 — where the
	// policy differences are sharpest in figure 2).
	Rho     float64
	Lambda0 float64
	Queries int
	// Seeds is the replication axis (default: the cluster seed alone).
	Seeds []uint64
	// Workers bounds each study's parallelism (0 = GOMAXPROCS).
	Workers int
	// Progress receives one line per finished run, if non-nil.
	Progress func(string)
}

// AblationRow is one configuration's outcome, aggregated across the
// replication axis (MeanCI95 is zero when N == 1).
type AblationRow struct {
	Label    string
	Mean     time.Duration
	Median   time.Duration
	P95      time.Duration
	Refused  int
	N        int
	MeanCI95 time.Duration
}

// AblationResult groups rows under a study name.
type AblationResult struct {
	Study string
	Rho   float64
	Seeds []uint64
	Rows  []AblationRow
}

// WriteTSV renders the study; replicated runs gain mean_ci95_s and n
// columns.
func (r AblationResult) WriteTSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# Ablation: %s (rho=%.2f)\n", r.Study, r.Rho); err != nil {
		return err
	}
	replicated := len(r.Seeds) > 1
	if replicated {
		fmt.Fprintln(w, "config\tmean_s\tmean_ci95_s\tmedian_s\tp95_s\trefused\tn")
	} else {
		fmt.Fprintln(w, "config\tmean_s\tmedian_s\tp95_s\trefused")
	}
	for _, row := range r.Rows {
		var err error
		if replicated {
			_, err = fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%s\t%d\t%d\n",
				row.Label,
				metrics.FormatDuration(row.Mean),
				metrics.FormatDuration(row.MeanCI95),
				metrics.FormatDuration(row.Median),
				metrics.FormatDuration(row.P95),
				row.Refused, row.N)
		} else {
			_, err = fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%d\n",
				row.Label,
				metrics.FormatDuration(row.Mean),
				metrics.FormatDuration(row.Median),
				metrics.FormatDuration(row.P95),
				row.Refused)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func (cfg *AblationConfig) defaults() {
	cfg.Cluster = cfg.Cluster.withDefaults()
	if cfg.Rho == 0 {
		cfg.Rho = 0.88
	}
	if cfg.Queries == 0 {
		cfg.Queries = 20000
	}
	if len(cfg.Seeds) == 0 {
		cfg.Seeds = []uint64{cfg.Cluster.Seed}
	}
	if cfg.Lambda0 == 0 {
		// Through the calibration cache: every study on the same cluster
		// (and any figure sharing it) calibrates once per process.
		cal := CalibrateCached(CalibrationConfig{Cluster: cfg.Cluster})
		cfg.Lambda0 = cal.Lambda0
	}
}

// scenario builds one study cell: the shared Poisson workload at the
// study load, under a (possibly per-cell) cluster and policy.
func (cfg *AblationConfig) scenario(label string, spec PolicySpec, cluster ClusterConfig) Scenario {
	return Scenario{
		Name:     label,
		Cluster:  cluster,
		Policy:   spec,
		Workload: PoissonWorkload{Lambda0: cfg.Lambda0, Queries: cfg.Queries},
		Load:     cfg.Rho,
	}
}

// runStudy replicates every labeled scenario across the study's seeds,
// executes the whole batch on the parallel Runner, and folds each
// scenario's replicates into one labeled row (input order; cancelled
// replicates omitted, fully-cancelled scenarios dropped).
func (cfg *AblationConfig) runStudy(ctx context.Context, study string, scenarios []Scenario) AblationResult {
	res := AblationResult{Study: study, Rho: cfg.Rho, Seeds: cfg.Seeds}
	progress := cfg.Progress
	if progress != nil {
		orig := progress
		progress = func(s string) { orig(fmt.Sprintf("[%s] %s", study, s)) }
	}
	cells, _ := Runner{Workers: cfg.Workers, Progress: progress}.Run(ctx, replicateScenarios(scenarios, cfg.Seeds))
	for i := range scenarios {
		cs := newCellStats(cells[i*len(cfg.Seeds) : (i+1)*len(cfg.Seeds)])
		if cs.N() == 0 {
			continue
		}
		res.Rows = append(res.Rows, AblationRow{
			Label:    cs.Name,
			Mean:     secDur(cs.Mean.Dist.Mean),
			Median:   secDur(cs.Median.Dist.Mean),
			P95:      secDur(cs.P95.Dist.Mean),
			Refused:  int(math.Round(cs.Refused.Dist.Mean)),
			N:        cs.N(),
			MeanCI95: secDur(cs.Mean.Dist.ReportedCI95()),
		})
	}
	return res
}

// RunCandidateAblation sweeps the SR list length k ∈ {1, 2, 3, 4} at the
// SR4 threshold — quantifying Mitzenmacher's "decreased marginal benefit
// from more than two servers" cited in §II-B.
func RunCandidateAblation(cfg AblationConfig) AblationResult {
	cfg.defaults()
	var scenarios []Scenario
	for _, k := range []int{1, 2, 3, 4} {
		spec, label := SRcK(4, k), fmt.Sprintf("k=%d", k)
		if k == 1 {
			spec, label = RR(), "k=1 (RR)"
		}
		scenarios = append(scenarios, cfg.scenario(label, spec, cfg.Cluster))
	}
	return cfg.runStudy(context.Background(), "SR candidates (power of k choices)", scenarios)
}

// RunThresholdAblation sweeps the static threshold c at fixed load,
// locating the SRc optimum (§III-A: "the choice of the parameter c has a
// direct influence on the behavior of the global system").
func RunThresholdAblation(cfg AblationConfig) AblationResult {
	cfg.defaults()
	var scenarios []Scenario
	for _, c := range []int{1, 2, 4, 6, 8, 12, 16, 24, 32} {
		scenarios = append(scenarios, cfg.scenario(fmt.Sprintf("c=%d", c), SRc(c), cfg.Cluster))
	}
	return cfg.runStudy(context.Background(), "static threshold c sweep", scenarios)
}

// RunWindowAblation sweeps SRdyn's adaptation window (Algorithm 2 uses
// 50).
func RunWindowAblation(cfg AblationConfig) AblationResult {
	cfg.defaults()
	var scenarios []Scenario
	for _, win := range []int{10, 25, 50, 100, 200} {
		win := win
		spec := PolicySpec{
			Name:       fmt.Sprintf("SRdyn(w=%d)", win),
			Candidates: 2,
			NewAgent: func() agent.Policy {
				return agent.NewDynamic(agent.DynamicConfig{WindowSize: win})
			},
		}
		scenarios = append(scenarios, cfg.scenario(spec.Name, spec, cfg.Cluster))
	}
	return cfg.runStudy(context.Background(), "SRdyn window size", scenarios)
}

// RunSchemeAblation compares uniform-random candidate selection against
// the Maglev consistent-hash pairs (§II-B's two schemes).
func RunSchemeAblation(cfg AblationConfig) AblationResult {
	cfg.defaults()
	ch := cfg.Cluster
	ch.ConsistentHash = true
	scenarios := []Scenario{
		cfg.scenario("random2", SRc(4), cfg.Cluster),
		cfg.scenario("chash2", SRc(4), ch),
	}
	return cfg.runStudy(context.Background(), "selection scheme (random vs consistent hash)", scenarios)
}

// RunBacklogAblation varies the accept-queue depth and the
// abort-on-overflow switch (§IV-C pins them to 128/on).
func RunBacklogAblation(cfg AblationConfig) AblationResult {
	cfg.defaults()
	var scenarios []Scenario
	for _, backlog := range []int{16, 64, 128, 512} {
		cl := cfg.Cluster
		cl.Server.Backlog = backlog
		scenarios = append(scenarios, cfg.scenario(fmt.Sprintf("backlog=%d", backlog), SRc(4), cl))
	}
	cl := cfg.Cluster
	cl.Server.AbortOnOverflow = false
	scenarios = append(scenarios, cfg.scenario("backlog=128,silent-drop", SRc(4), cl))
	return cfg.runStudy(context.Background(), "backlog depth and abort-on-overflow", scenarios)
}

// RunAllAblations executes every study.
func RunAllAblations(cfg AblationConfig) []AblationResult {
	cfg.defaults() // calibrate once; the copy passes Lambda0 on
	return []AblationResult{
		RunCandidateAblation(cfg),
		RunThresholdAblation(cfg),
		RunWindowAblation(cfg),
		RunSchemeAblation(cfg),
		RunBacklogAblation(cfg),
	}
}
