package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// TestHeteroSheddingToFastServers: on a mixed cluster, Service Hunting
// must route load away from slow boxes (they refuse more offers), while
// random assignment keeps feeding them — so SRc both beats RR on response
// time AND serves a slow-box share closer to the capacity share.
func TestHeteroSheddingToFastServers(t *testing.T) {
	res := RunHetero(HeteroConfig{
		Cluster: ClusterConfig{Seed: 31, Servers: 6},
		Queries: 8000,
	})
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	rr := res.Rows[0]
	sr := res.Rows[1]
	if rr.Policy != "RR" || sr.Policy != "SR 4" {
		t.Fatalf("row order: %s/%s", rr.Policy, sr.Policy)
	}
	if sr.Mean >= rr.Mean {
		t.Fatalf("SR4 (%v) not better than RR (%v) on heterogeneous cluster", sr.Mean, rr.Mean)
	}
	// RR assigns uniformly: slow boxes (1/3 of servers) serve ≈1/3 of
	// queries despite holding only CapacityShare (1/5) of the capacity.
	if rr.SlowShare < res.CapacityShare {
		t.Fatalf("RR slow share %.3f below capacity share %.3f — unexpected", rr.SlowShare, res.CapacityShare)
	}
	// Hunting sheds load: the slow share must sit strictly below RR's.
	if sr.SlowShare >= rr.SlowShare {
		t.Fatalf("SR4 slow share %.3f not below RR's %.3f", sr.SlowShare, rr.SlowShare)
	}

	var buf bytes.Buffer
	if err := res.WriteTSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "heterogeneous") {
		t.Fatal("TSV header missing")
	}
}
