package experiments

import (
	"context"
	"reflect"
	"strings"
	"testing"
	"time"

	"srlb/internal/agent"
	"srlb/internal/appserver"
	"srlb/internal/testbed"
)

// sharedPoolServices is a small web+batch mix contending on one shared
// pool, with the batch axis pinned per cell via ServiceLoads: web fixed
// at 0.5, batch tracking the cell's load knob.
func sharedPoolServices(webQ int, span time.Duration) MultiServiceWorkload {
	return MultiServiceWorkload{
		Services: []ServiceSpec{
			{Name: "web", Pool: "shared", Workload: PoissonService{Lambda0: 80, Queries: webQ}},
			// Sub-second burst cycles so every test-sized horizon sees
			// several ON periods.
			{Name: "batch", Pool: "shared", Workload: BurstyService{
				Lambda0: 80, Horizon: span, PeakFactor: 4,
				MeanOn: 500 * time.Millisecond, MeanOff: time.Second,
			}},
		},
		ServiceLoads: []ServiceLoad{{Fixed: 0.5}, {}},
		Pools:        []testbed.PoolSpec{{Name: "shared"}},
	}
}

// Per-VIP conservation on a *shared* pool, table-driven over selection
// schemes × replica counts: for each service, completions + refusals +
// unfinished must equal the queries offered to its VIP, the per-VIP
// columns must sum to the aggregate, and every response a shared server
// emits is attributable to exactly one VIP — even in the structurally
// lossy random-selection multi-replica configuration.
func TestSharedPoolConservation(t *testing.T) {
	firstAccept := PolicySpec{
		Name:       "first-accept",
		Candidates: 2,
		NewAgent:   func() agent.Policy { return agent.Always{} },
	}
	cases := []struct {
		name                string
		policy              PolicySpec
		replicas            int
		chash, missFallback bool
	}{
		{"RR single LB", RR(), 1, false, false},
		{"SR4 single LB", SRc(4), 1, false, false},
		{"SRdyn single LB", SRdyn(), 1, false, false},
		{"maglev+fallback 2 replicas", firstAccept, 2, true, true},
		// Random selection across 2 replicas loses flows by construction;
		// the books must still balance, with the losses in Unfinished.
		{"random 2 replicas (lossy)", SRc(4), 2, false, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cluster := ClusterConfig{
				Seed: 61, Servers: 4,
				Replicas:       tc.replicas,
				ConsistentHash: tc.chash,
				MissFallback:   tc.missFallback,
			}
			w := sharedPoolServices(600, 8*time.Second)
			out, err := w.Run(context.Background(), cluster, tc.policy, 0.3)
			if err != nil {
				t.Fatal(err)
			}
			if len(out.PerVIP) != 2 {
				t.Fatalf("PerVIP has %d entries, want 2", len(out.PerVIP))
			}
			// The per-service load axis must ride into the outcome: web
			// pinned, batch at the cell's knob.
			if out.PerVIP[0].Load != 0.5 || out.PerVIP[1].Load != 0.3 {
				t.Fatalf("resolved loads = %.2f/%.2f, want 0.50/0.30",
					out.PerVIP[0].Load, out.PerVIP[1].Load)
			}
			var offered, completed, refused, unfinished int
			for _, vo := range out.PerVIP {
				if vo.Offered == 0 {
					t.Fatalf("service %q offered no queries — stream never opened", vo.Name)
				}
				if got := vo.RT.Count() + vo.Refused + vo.Unfinished; got != vo.Offered {
					t.Fatalf("service %q: %d completed + %d refused + %d unfinished != %d offered",
						vo.Name, vo.RT.Count(), vo.Refused, vo.Unfinished, vo.Offered)
				}
				offered += vo.Offered
				completed += vo.RT.Count()
				refused += vo.Refused
				unfinished += vo.Unfinished
			}
			if completed != out.RT.Count() || refused != out.Refused || unfinished != out.Unfinished {
				t.Fatalf("per-VIP sums (%d/%d/%d) != aggregate (%d/%d/%d)",
					completed, refused, unfinished, out.RT.Count(), out.Refused, out.Unfinished)
			}
			if out.RT.Count() == 0 {
				t.Fatal("no queries completed at moderate load — run vacuous")
			}
		})
	}
}

// Per-server attribution on the shared pool: build the same two-service
// topology directly and check each server's per-VIP response ledger sums
// to its responses_tx — busy time is attributable to exactly one VIP at
// a time, with both services actually landing on shared workers.
func TestSharedPoolServerAttribution(t *testing.T) {
	w := sharedPoolServices(500, 6*time.Second)
	cluster := ClusterConfig{Seed: 67, Servers: 3}.withDefaults()
	spec := SRc(4)
	pools := []testbed.PoolSpec{{
		Name: "shared", Servers: cluster.Servers, Server: cluster.Server,
		Policy: func(int) agent.Policy { return spec.NewAgent() },
	}}
	vips := make([]testbed.VIPSpec, len(w.Services))
	for i, svc := range w.Services {
		vs := cluster.vipSpec(spec)
		vs.Name = svc.name(i)
		vs.Pool = "shared"
		vs.Servers = 0
		vs.Server = appserver.Config{}
		vs.ServerOverride = nil
		vs.Policy = nil
		vips[i] = vs
	}
	tb := testbed.Build(testbed.Topology{Seed: cluster.Seed, Pools: pools, VIPs: vips})
	for i := 0; i < 400; i++ {
		q := testbed.Query{ID: uint64(i), Demand: 8 * time.Millisecond}
		if i%2 == 1 {
			q.VIP = tb.VIPAddrOf(1)
		}
		tb.Sim.At(time.Duration(i)*2*time.Millisecond, func() { tb.Gen.Launch(q) })
	}
	tb.Sim.Run()
	tb.Gen.DrainPending()
	var web, batch uint64
	for i := 0; i < cluster.Servers; i++ {
		rt := tb.RouterOf(0, i)
		a, b := rt.VIPResponses(tb.VIPAddrOf(0)), rt.VIPResponses(tb.VIPAddrOf(1))
		if total := rt.Counts.Get("responses_tx"); a+b != total {
			t.Fatalf("server %d: per-VIP responses %d+%d != total %d", i, a, b, total)
		}
		web += a
		batch += b
	}
	if web == 0 || batch == 0 {
		t.Fatalf("attribution vacuous: web=%d batch=%d responses", web, batch)
	}
}

// A shared-pool sweep with per-service load axes is byte-identical at
// 1 vs N Runner workers and across repeated runs — the contention regime
// keeps the determinism contract (runs under -race -shuffle=on in CI).
func TestSharedPoolDeterminism(t *testing.T) {
	sweep := Sweep{
		Cluster:  ClusterConfig{Seed: 71, Servers: 4},
		Policies: []PolicySpec{RR(), SRc(4)},
		Loads:    []float64{0.2, 0.4},
		Seeds:    DeriveSeeds(71, 2),
		Workload: sharedPoolServices(400, 6*time.Second),
	}
	serial, err := Runner{Workers: 1}.RunSweep(context.Background(), sweep)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Runner{Workers: 4}.RunSweep(context.Background(), sweep)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stripWall(serial.Cells), stripWall(parallel.Cells)) {
		t.Fatal("shared-pool sweep differs between 1 and 4 workers")
	}
	again, err := Runner{Workers: 4}.RunSweep(context.Background(), sweep)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stripWall(parallel.Cells), stripWall(again.Cells)) {
		t.Fatal("shared-pool sweep not reproducible across runs")
	}
	// The per-service loads fold into the aggregate: web pinned at 0.5
	// in every cell, batch tracking the load axis.
	agg := serial.Aggregate()
	for li, rho := range sweep.Loads {
		cs := agg.Cell(0, li)
		if len(cs.VIPs) != 2 {
			t.Fatalf("cell has %d VIP breakdowns, want 2", len(cs.VIPs))
		}
		if cs.VIPs[0].Load != 0.5 || cs.VIPs[1].Load != rho {
			t.Fatalf("aggregated loads = %.2f/%.2f, want 0.50/%.2f",
				cs.VIPs[0].Load, cs.VIPs[1].Load, rho)
		}
	}
}

// RunInterference produces per-(batch_rho, policy, service) rows with
// degradation columns anchored at the lowest batch load, and the TSV
// renders one line per row.
func TestRunInterferenceSmall(t *testing.T) {
	res := RunInterference(InterferenceConfig{
		Cluster:   ClusterConfig{Seed: 73, Servers: 4},
		Lambda0:   80,
		WebRho:    0.4,
		BatchRhos: []float64{0.1, 0.5},
		Queries:   600,
		Policies:  []PolicySpec{RR(), SRc(4)},
	})
	if got, want := len(res.Services), 2; got != want {
		t.Fatalf("%d services, want %d", got, want)
	}
	// 2 batch rhos × 2 policies × (1 aggregate + 2 services).
	if got, want := len(res.Rows), 12; got != want {
		t.Fatalf("%d rows, want %d", got, want)
	}
	for _, row := range res.Rows {
		if row.N != 1 {
			t.Fatalf("row %+v has N=%d, want 1", row, row.N)
		}
		if row.Service == "web" && row.Load != 0.4 {
			t.Fatalf("web row at batch_rho=%.2f carries load %.2f, want the pinned 0.40", row.BatchRho, row.Load)
		}
		if row.Service == "batch" && row.Load != row.BatchRho {
			t.Fatalf("batch row carries load %.2f, want its own axis %.2f", row.Load, row.BatchRho)
		}
		if row.BatchRho == res.BatchRhos[0] && row.P99Degradation != 1 {
			t.Fatalf("baseline row %s/%s has degradation %.2f, want 1", row.Policy, row.Service, row.P99Degradation)
		}
	}
	if _, err := res.Row("SR 4", "web", 0.5); err != nil {
		t.Fatal(err)
	}
	if _, err := res.VictimDegradation("RR"); err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := res.WriteTSV(&buf); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != 2+len(res.Rows) {
		t.Fatalf("TSV has %d lines, want %d", lines, 2+len(res.Rows))
	}
	if facets := res.PlotFacets(); len(facets) != 2 {
		t.Fatalf("PlotFacets returned %d facets, want 2", len(facets))
	}
}

// The experiment's claim, in miniature: under a heavy-but-serviceable
// batch surge on the shared pool (total ρ ≈ 0.85), the victim's mean and
// p99 under Service Hunting must not exceed the random spray's —
// contention is where the choices pay. (In deep overload the two
// converge: when every worker queues, there is nothing left to choose.)
func TestInterferenceVictimOrdering(t *testing.T) {
	res := RunInterference(InterferenceConfig{
		Cluster:   ClusterConfig{Seed: 79, Servers: 4},
		Lambda0:   80,
		WebRho:    0.5,
		BatchRhos: []float64{0.1, 0.35},
		Queries:   3000,
		Policies:  []PolicySpec{RR(), SRc(4)},
		Seeds:     DeriveSeeds(79, 3),
	})
	rr, err := res.Row("RR", "web", 0.35)
	if err != nil {
		t.Fatal(err)
	}
	sr, err := res.Row("SR 4", "web", 0.35)
	if err != nil {
		t.Fatal(err)
	}
	if sr.Mean > rr.Mean {
		t.Fatalf("victim mean under SR4 (%v) above RR (%v) at heavy batch load", sr.Mean, rr.Mean)
	}
	if sr.P99 > rr.P99 {
		t.Fatalf("victim p99 under SR4 (%v) above RR (%v) at heavy batch load", sr.P99, rr.P99)
	}
	// And the surge must actually have hurt: the victim's p99 at the
	// heavy batch load degrades visibly vs the light-batch baseline.
	if deg, err := res.VictimDegradation("RR"); err != nil || deg < 1.5 {
		t.Fatalf("RR victim degradation = %.2f (err=%v) — interference not exercised", deg, err)
	}
}
