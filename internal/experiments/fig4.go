package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"srlb/internal/metrics"
	"srlb/internal/rng"
	"srlb/internal/stats"
	"srlb/internal/testbed"
)

// Fig4Config reproduces figure 4: the instantaneous server load (mean busy
// workers over the 12 servers) and the corresponding Jain fairness index,
// over the course of a 20000-query run at ρ = 0.88, for RR vs SR4.
// Both series are smoothed with the paper's time-aware EWMA
// (α = 1 − e^(−δt), footnote 2).
type Fig4Config struct {
	Cluster ClusterConfig
	// Rho is the normalized load (default 0.88, the paper's).
	Rho     float64
	Lambda0 float64
	Queries int
	// Policies defaults to {RR, SR4}, the two lines of the figure.
	Policies []PolicySpec
	// SampleEvery sets the load-sampling period (default 100ms).
	SampleEvery time.Duration
	// EWMATau is the smoothing constant (default 1s = the paper's α).
	EWMATau time.Duration
	// Seeds is the replication axis (default: the cluster seed alone).
	// With several seeds each timeline point is the across-seed mean
	// with a Student-t 95% CI.
	Seeds []uint64
	// Workers bounds the sweep's parallelism (0 = GOMAXPROCS).
	Workers  int
	Progress func(string)
}

// Fig4Sample is one point of the smoothed series. With replication the
// values are across-seed means and the CI95 fields their 95% interval
// half-widths (zero for a single seed).
type Fig4Sample struct {
	At           time.Duration
	MeanBusy     float64
	Fairness     float64
	MeanBusyCI95 float64
	FairnessCI95 float64
}

// Fig4Series is the timeline for one policy.
type Fig4Series struct {
	Spec PolicySpec
	// N is the number of replicates aggregated into Samples.
	N       int
	Samples []Fig4Sample
}

// Fig4Result holds one series per policy.
type Fig4Result struct {
	Rho     float64
	Lambda0 float64
	Seeds   []uint64
	Series  []Fig4Series
}

// fig4Workload is the Poisson workload instrumented with periodic
// busy-worker sampling; the smoothed timeline rides in Extra. Each Run
// builds its own sampling state, so cells are safe to run concurrently.
type fig4Workload struct {
	lambda0     float64
	queries     int
	sampleEvery time.Duration
	tau         time.Duration
}

// Label implements Workload.
func (w fig4Workload) Label() string {
	return fmt.Sprintf("poisson+load-sampling(%dq)", w.queries)
}

// Run implements Workload.
func (w fig4Workload) Run(ctx context.Context, cluster ClusterConfig, spec PolicySpec, load float64) (CellOutcome, error) {
	var samples []Fig4Sample
	meanE := metrics.NewEWMA(w.tau)
	fairE := metrics.NewEWMA(w.tau)
	hooks := PoissonHooks{
		Testbed: func(tb *testbed.Testbed, horizon time.Duration) {
			tb.SampleLoads(w.sampleEvery, horizon, func(now time.Duration, busy []int) {
				xs := make([]float64, len(busy))
				var sum float64
				for i, b := range busy {
					xs[i] = float64(b)
					sum += xs[i]
				}
				samples = append(samples, Fig4Sample{
					At:       now,
					MeanBusy: meanE.Update(now, sum/float64(len(busy))),
					Fairness: fairE.Update(now, metrics.Fairness(xs)),
				})
			})
		},
	}
	rate := load * w.lambda0
	arrivals := rng.NewPoisson(rng.Split(cluster.Seed, 0xa221), rate, 0)
	out, err := runOpenLoop(ctx, cluster, spec, arrivals, rate, w.queries, 0, hooks)
	// Trim trailing idle samples (after the last query completed the
	// cluster sits empty until the horizon guard).
	last := len(samples)
	for last > 0 && samples[last-1].MeanBusy < 1e-9 {
		last--
	}
	out.Extra = samples[:last]
	return out, err
}

// RunFig4 executes the experiment: a one-load-point Sweep of the sampled
// Poisson workload over {RR, SR4}, run in parallel.
func RunFig4(cfg Fig4Config) Fig4Result { return RunFig4Ctx(context.Background(), cfg) }

// RunFig4Ctx is RunFig4 with cancellation; cancelled cells yield empty
// series.
func RunFig4Ctx(ctx context.Context, cfg Fig4Config) Fig4Result {
	cfg.Cluster = cfg.Cluster.withDefaults()
	if cfg.Rho == 0 {
		cfg.Rho = 0.88
	}
	if cfg.Lambda0 == 0 {
		cal := CalibrateCached(CalibrationConfig{Cluster: cfg.Cluster})
		cfg.Lambda0 = cal.Lambda0
	}
	if cfg.Queries == 0 {
		cfg.Queries = 20000
	}
	if len(cfg.Policies) == 0 {
		cfg.Policies = []PolicySpec{RR(), SRc(4)}
	}
	if cfg.SampleEvery == 0 {
		cfg.SampleEvery = 100 * time.Millisecond
	}
	if cfg.EWMATau == 0 {
		cfg.EWMATau = time.Second
	}

	sweep, _ := Runner{Workers: cfg.Workers, Progress: cfg.Progress}.RunSweep(ctx, Sweep{
		Cluster:  cfg.Cluster,
		Policies: cfg.Policies,
		Loads:    []float64{cfg.Rho},
		Seeds:    cfg.Seeds,
		Workload: fig4Workload{
			lambda0:     cfg.Lambda0,
			queries:     cfg.Queries,
			sampleEvery: cfg.SampleEvery,
			tau:         cfg.EWMATau,
		},
	})

	res := Fig4Result{Rho: cfg.Rho, Lambda0: cfg.Lambda0, Seeds: sweep.Seeds}
	for pi, spec := range cfg.Policies {
		var timelines [][]Fig4Sample
		for si := range sweep.Seeds {
			cell := sweep.Cell(pi, 0, si)
			if cell.Err != nil { // a cancelled cell's timeline is truncated
				continue
			}
			if samples, ok := cell.Outcome.Extra.([]Fig4Sample); ok {
				timelines = append(timelines, samples)
			}
		}
		res.Series = append(res.Series, Fig4Series{
			Spec:    spec,
			N:       len(timelines),
			Samples: aggregateTimelines(timelines),
		})
	}
	return res
}

// aggregateTimelines folds per-seed timelines into one pointwise
// mean ± CI series. The sampling clock is deterministic (fixed period
// from t=0), so sample i has the same At in every replicate; lengths
// differ only by the trailing-idle trim, and the aggregate stops at the
// shortest replicate.
func aggregateTimelines(timelines [][]Fig4Sample) []Fig4Sample {
	switch len(timelines) {
	case 0:
		return nil
	case 1:
		return timelines[0]
	}
	n := len(timelines[0])
	for _, tl := range timelines[1:] {
		n = min(n, len(tl))
	}
	out := make([]Fig4Sample, n)
	busy := make([]float64, len(timelines))
	fair := make([]float64, len(timelines))
	for i := range out {
		for ti, tl := range timelines {
			busy[ti] = tl[i].MeanBusy
			fair[ti] = tl[i].Fairness
		}
		db, df := stats.Describe(busy), stats.Describe(fair)
		out[i] = Fig4Sample{
			At:           timelines[0][i].At,
			MeanBusy:     db.Mean,
			Fairness:     df.Mean,
			MeanBusyCI95: db.CI95,
			FairnessCI95: df.CI95,
		}
	}
	return out
}

// WriteTSV emits two blocks per policy — the figure's two stacked plots:
// (time, smoothed mean busy workers) and (time, smoothed fairness). A
// replicated run appends the per-point 95% CI half-width columns.
func (r Fig4Result) WriteTSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# Figure 4: instantaneous server load (mean, fairness), rho=%.2f\n", r.Rho); err != nil {
		return err
	}
	for _, s := range r.Series {
		replicated := s.N > 1
		if replicated {
			fmt.Fprintf(w, "# policy: %s (mean over %d seeds)\n", s.Spec.Name, s.N)
		} else {
			fmt.Fprintf(w, "# policy: %s\n", s.Spec.Name)
		}
		fmt.Fprintf(w, "t_s\tmean_busy_%s\tfairness_%s", s.Spec.Name, s.Spec.Name)
		if replicated {
			fmt.Fprint(w, "\tmean_busy_ci95\tfairness_ci95")
		}
		fmt.Fprintln(w)
		for _, p := range s.Samples {
			fmt.Fprintf(w, "%.1f\t%.3f\t%.4f", p.At.Seconds(), p.MeanBusy, p.Fairness)
			if replicated {
				fmt.Fprintf(w, "\t%.3f\t%.4f", p.MeanBusyCI95, p.FairnessCI95)
			}
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

// MeanFairness averages the smoothed fairness over the middle 80% of a
// series (ignoring warm-up and drain), the figure's qualitative takeaway.
func (r Fig4Result) MeanFairness(policyName string) (float64, error) {
	for _, s := range r.Series {
		if s.Spec.Name != policyName {
			continue
		}
		n := len(s.Samples)
		if n == 0 {
			return 0, fmt.Errorf("fig4: empty series for %s", policyName)
		}
		lo, hi := n/10, n*9/10
		if hi <= lo {
			lo, hi = 0, n
		}
		var sum float64
		for _, p := range s.Samples[lo:hi] {
			sum += p.Fairness
		}
		return sum / float64(hi-lo), nil
	}
	return 0, fmt.Errorf("fig4: no series for %s", policyName)
}
