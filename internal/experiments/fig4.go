package experiments

import (
	"fmt"
	"io"
	"time"

	"srlb/internal/metrics"
	"srlb/internal/testbed"
)

// Fig4Config reproduces figure 4: the instantaneous server load (mean busy
// workers over the 12 servers) and the corresponding Jain fairness index,
// over the course of a 20000-query run at ρ = 0.88, for RR vs SR4.
// Both series are smoothed with the paper's time-aware EWMA
// (α = 1 − e^(−δt), footnote 2).
type Fig4Config struct {
	Cluster ClusterConfig
	// Rho is the normalized load (default 0.88, the paper's).
	Rho     float64
	Lambda0 float64
	Queries int
	// Policies defaults to {RR, SR4}, the two lines of the figure.
	Policies []PolicySpec
	// SampleEvery sets the load-sampling period (default 100ms).
	SampleEvery time.Duration
	// EWMATau is the smoothing constant (default 1s = the paper's α).
	EWMATau  time.Duration
	Progress func(string)
}

// Fig4Sample is one point of the smoothed series.
type Fig4Sample struct {
	At       time.Duration
	MeanBusy float64
	Fairness float64
}

// Fig4Series is the timeline for one policy.
type Fig4Series struct {
	Spec    PolicySpec
	Samples []Fig4Sample
}

// Fig4Result holds one series per policy.
type Fig4Result struct {
	Rho     float64
	Lambda0 float64
	Series  []Fig4Series
}

// RunFig4 executes the experiment.
func RunFig4(cfg Fig4Config) Fig4Result {
	cfg.Cluster = cfg.Cluster.withDefaults()
	if cfg.Rho == 0 {
		cfg.Rho = 0.88
	}
	if cfg.Lambda0 == 0 {
		cal := Calibrate(CalibrationConfig{Cluster: cfg.Cluster})
		cfg.Lambda0 = cal.Lambda0
	}
	if cfg.Queries == 0 {
		cfg.Queries = 20000
	}
	if len(cfg.Policies) == 0 {
		cfg.Policies = []PolicySpec{RR(), SRc(4)}
	}
	if cfg.SampleEvery == 0 {
		cfg.SampleEvery = 100 * time.Millisecond
	}
	if cfg.EWMATau == 0 {
		cfg.EWMATau = time.Second
	}
	res := Fig4Result{Rho: cfg.Rho, Lambda0: cfg.Lambda0}
	for _, spec := range cfg.Policies {
		series := Fig4Series{Spec: spec}
		meanE := metrics.NewEWMA(cfg.EWMATau)
		fairE := metrics.NewEWMA(cfg.EWMATau)
		hooks := PoissonHooks{
			Testbed: func(tb *testbed.Testbed, horizon time.Duration) {
				tb.SampleLoads(cfg.SampleEvery, horizon, func(now time.Duration, busy []int) {
					xs := make([]float64, len(busy))
					var sum float64
					for i, b := range busy {
						xs[i] = float64(b)
						sum += xs[i]
					}
					series.Samples = append(series.Samples, Fig4Sample{
						At:       now,
						MeanBusy: meanE.Update(now, sum/float64(len(busy))),
						Fairness: fairE.Update(now, metrics.Fairness(xs)),
					})
				})
			},
		}
		run := RunPoisson(cfg.Cluster, spec, cfg.Rho*cfg.Lambda0, cfg.Queries, hooks)
		// Trim trailing idle samples (after the last query completed the
		// cluster sits empty until the horizon guard).
		last := len(series.Samples)
		for last > 0 && series.Samples[last-1].MeanBusy < 1e-9 {
			last--
		}
		series.Samples = series.Samples[:last]
		res.Series = append(res.Series, series)
		if cfg.Progress != nil {
			cfg.Progress(fmt.Sprintf("%s: %d samples, mean RT %s",
				spec.Name, len(series.Samples), metrics.FormatDuration(run.RT.Mean())))
		}
	}
	return res
}

// WriteTSV emits two blocks per policy — the figure's two stacked plots:
// (time, smoothed mean busy workers) and (time, smoothed fairness).
func (r Fig4Result) WriteTSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# Figure 4: instantaneous server load (mean, fairness), rho=%.2f\n", r.Rho); err != nil {
		return err
	}
	for _, s := range r.Series {
		fmt.Fprintf(w, "# policy: %s\n", s.Spec.Name)
		fmt.Fprintf(w, "t_s\tmean_busy_%s\tfairness_%s\n", s.Spec.Name, s.Spec.Name)
		for _, p := range s.Samples {
			fmt.Fprintf(w, "%.1f\t%.3f\t%.4f\n", p.At.Seconds(), p.MeanBusy, p.Fairness)
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

// MeanFairness averages the smoothed fairness over the middle 80% of a
// series (ignoring warm-up and drain), the figure's qualitative takeaway.
func (r Fig4Result) MeanFairness(policyName string) (float64, error) {
	for _, s := range r.Series {
		if s.Spec.Name != policyName {
			continue
		}
		n := len(s.Samples)
		if n == 0 {
			return 0, fmt.Errorf("fig4: empty series for %s", policyName)
		}
		lo, hi := n/10, n*9/10
		if hi <= lo {
			lo, hi = 0, n
		}
		var sum float64
		for _, p := range s.Samples[lo:hi] {
			sum += p.Fairness
		}
		return sum / float64(hi-lo), nil
	}
	return 0, fmt.Errorf("fig4: no series for %s", policyName)
}
