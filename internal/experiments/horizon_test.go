package experiments

import (
	"context"
	"os"
	"testing"
	"time"

	"srlb/internal/metrics"
	"srlb/internal/sketch"
	"srlb/internal/testbed"
)

// horizonCluster is a small, fast cluster for the soak tests; Lambda0 is
// pinned to its fluid capacity so no calibration run is needed.
func horizonCfg(queries uint64) HorizonConfig {
	cluster := ClusterConfig{Seed: 42, Servers: 4}
	return HorizonConfig{
		Cluster:     cluster,
		Queries:     queries,
		Rho:         0.7,
		Lambda0:     cluster.TheoreticalCapacity(),
		SampleEvery: 1 << 16,
	}
}

// The constant-memory claim: pushing the horizon 5x further must not
// move the peak live heap beyond GC jitter. Every per-query object —
// timers, packets, wire buffers, pending-query records — recycles, and
// the measurement lives in fixed-size sketches.
func TestHorizonConstantMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run soak")
	}
	small, err := RunHorizon(context.Background(), horizonCfg(200_000))
	if err != nil {
		t.Fatal(err)
	}
	large, err := RunHorizon(context.Background(), horizonCfg(1_000_000))
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("peak heap: %d queries -> %.1f MB, %d queries -> %.1f MB (%.0f q/s)",
		small.Queries, float64(small.PeakHeap)/(1<<20),
		large.Queries, float64(large.PeakHeap)/(1<<20), large.QPS())
	// The live set is the cluster plus sketches plus freelists — a few
	// MB. Allow 2x for GC pacing noise plus a small constant; growth
	// proportional to the 5x query ratio would blow far past this.
	if large.PeakHeap > 2*small.PeakHeap+8<<20 {
		t.Fatalf("peak heap grew with query count: %d B at %d queries vs %d B at %d",
			large.PeakHeap, large.Queries, small.PeakHeap, small.Queries)
	}
	if large.Counters.Offered != large.Queries {
		t.Fatalf("offered %d != queries %d", large.Counters.Offered, large.Queries)
	}
	sum := large.Counters.OK + large.Counters.Refused + large.Counters.Unfinished
	if sum != large.Counters.Offered {
		t.Fatalf("conservation: %d outcomes for %d offered", sum, large.Counters.Offered)
	}
}

// The acceptance reference cell: on a 10⁶-query run, the sketch's
// quantiles must match exact order statistics (collected side-by-side
// through the OnResult hook) within the histogram's documented relative
// error, and count/mean/max must be exact.
func TestHorizonSketchMatchesExact(t *testing.T) {
	if testing.Short() {
		t.Skip("10⁶-query reference cell")
	}
	exact := metrics.NewRecorder(1 << 20)
	cfg := horizonCfg(1_000_000)
	cfg.Hooks.OnResult = func(res testbed.Result) {
		if res.OK {
			exact.Add(res.RT)
		}
	}
	res, err := RunHorizon(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.RT.Count() != exact.Count() {
		t.Fatalf("sketch count %d != exact %d", res.RT.Count(), exact.Count())
	}
	if res.RT.Max() != exact.Max() {
		t.Fatalf("sketch max %v != exact %v", res.RT.Max(), exact.Max())
	}
	if got, want := res.RT.Mean(), exact.Mean(); got != want {
		t.Fatalf("sketch mean %v != exact %v", got, want)
	}
	bound := sketch.MaxRelativeError(sketch.DefaultPrecision)
	for _, p := range []float64{0.5, 0.9, 0.99, 0.999} {
		got, want := res.RT.Quantile(p), exact.Quantile(p)
		if want == 0 {
			continue
		}
		rel := float64(got-want) / float64(want)
		if rel < 0 {
			rel = -rel
		}
		if rel > bound {
			t.Errorf("p%.3f: sketch %v vs exact %v (rel err %.5f > bound %.5f)",
				p, got, want, rel, bound)
		}
	}
}

// The full 10⁸-query soak of the issue's acceptance criterion — minutes
// of host time, so gated behind SRLB_HORIZON_FULL=1. Compares peak heap
// against a 10⁶-query run.
func TestHorizonFull(t *testing.T) {
	if os.Getenv("SRLB_HORIZON_FULL") == "" {
		t.Skip("set SRLB_HORIZON_FULL=1 to run the 10⁸-query soak")
	}
	ref, err := RunHorizon(context.Background(), horizonCfg(1_000_000))
	if err != nil {
		t.Fatal(err)
	}
	cfg := horizonCfg(100_000_000)
	cfg.SampleEvery = 1 << 20
	cfg.Progress = func(done, total uint64) {
		t.Logf("%d/%d queries", done, total)
	}
	start := time.Now()
	full, err := RunHorizon(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("10⁸ queries in %v (%.0f q/s), peak heap %.1f MB (ref %.1f MB)",
		time.Since(start).Round(time.Second), full.QPS(),
		float64(full.PeakHeap)/(1<<20), float64(ref.PeakHeap)/(1<<20))
	if full.Counters.Offered != full.Queries {
		t.Fatalf("offered %d != queries %d", full.Counters.Offered, full.Queries)
	}
	if full.PeakHeap > 2*ref.PeakHeap+8<<20 {
		t.Fatalf("peak heap not constant: %d B at 10⁸ vs %d B at 10⁶",
			full.PeakHeap, ref.PeakHeap)
	}
}
