package experiments

import (
	"fmt"
	"io"
	"reflect"
	"runtime"
	"strings"
	"sync"
)

// CalibrationConfig drives the §V-A bootstrap: "identifying λ0, the max
// rate sustainable by the 12-servers swarm, i.e. the smallest value of λ
// for which some TCP connections were dropped".
type CalibrationConfig struct {
	Cluster ClusterConfig
	// Spec is the policy used while probing (the paper uses the plain
	// random balancer; default RR).
	Spec PolicySpec
	// Queries per probe run (default 20000, the paper's batch size).
	Queries int
	// Lo, Hi bracket the search in queries/sec. Defaults: 0.5× and 1.5×
	// the theoretical capacity.
	Lo, Hi float64
	// RelTol is the search's relative stopping width (default 1%).
	RelTol float64
	// ProbeFan is the number of interior rates probed concurrently per
	// refinement round (default 4). Each round splits the bracket into
	// ProbeFan+1 intervals and keeps the one where the drop indicator
	// flips, so the bracket shrinks by (ProbeFan+1)× per round instead
	// of the serial bisection's 2×. ProbeFan = 1 recovers the classic
	// serial bisection exactly, probe for probe.
	ProbeFan int
	// Workers bounds concurrent probe runs (0 = GOMAXPROCS, 1 serial).
	Workers int
}

func (cfg CalibrationConfig) withDefaults() CalibrationConfig {
	cfg.Cluster = cfg.Cluster.withDefaults()
	if cfg.Spec.NewAgent == nil {
		cfg.Spec = RR()
	}
	if cfg.Queries == 0 {
		cfg.Queries = 20000
	}
	theo := cfg.Cluster.TheoreticalCapacity()
	if cfg.Lo == 0 {
		cfg.Lo = 0.5 * theo
	}
	if cfg.Hi == 0 {
		cfg.Hi = 1.5 * theo
	}
	if cfg.RelTol == 0 {
		cfg.RelTol = 0.01
	}
	if cfg.ProbeFan <= 0 {
		cfg.ProbeFan = 4
	}
	return cfg
}

// CalibrationResult reports the measured λ0.
type CalibrationResult struct {
	// Lambda0 is the measured drop-onset rate (queries/sec).
	Lambda0 float64
	// Theoretical is the fluid-limit capacity for reference.
	Theoretical float64
	// Probes lists every (rate, refused) probe run. Within a concurrent
	// round probes are recorded in ascending rate order, so the list is
	// deterministic regardless of worker scheduling.
	Probes []CalibrationProbe
}

// CalibrationProbe is one probe run.
type CalibrationProbe struct {
	RatePerSec float64
	Refused    int
	Unfinished int
}

// Calibrate measures λ0 by a speculative-parallel ladder search: each
// refinement round probes ProbeFan interior rates of the bracket
// concurrently (every probe is an independent, deterministic
// simulation), then keeps the sub-interval where the drop indicator
// flips. The result is a pure function of the config — worker count and
// scheduling cannot change it — and ProbeFan = 1 reproduces the classic
// serial bisection exactly.
func Calibrate(cfg CalibrationConfig) CalibrationResult {
	cfg = cfg.withDefaults()
	res := CalibrationResult{Theoretical: cfg.Cluster.TheoreticalCapacity()}

	probeOne := func(rate float64) CalibrationProbe {
		run := RunPoisson(cfg.Cluster, cfg.Spec, rate, cfg.Queries, PoissonHooks{})
		return CalibrationProbe{RatePerSec: rate, Refused: run.Refused, Unfinished: run.Unfinished}
	}
	// probeAll runs one round of probes on the worker pool and records
	// them in ascending rate order.
	probeAll := func(rates []float64) []CalibrationProbe {
		out := make([]CalibrationProbe, len(rates))
		w := cfg.Workers
		if w <= 0 {
			w = runtime.GOMAXPROCS(0)
		}
		if w > len(rates) {
			w = len(rates)
		}
		if w <= 1 {
			for i, r := range rates {
				out[i] = probeOne(r)
			}
		} else {
			var wg sync.WaitGroup
			next := make(chan int)
			for ; w > 0; w-- {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := range next {
						out[i] = probeOne(rates[i])
					}
				}()
			}
			for i := range rates {
				next <- i
			}
			close(next)
			wg.Wait()
		}
		res.Probes = append(res.Probes, out...)
		return out
	}
	drops := func(rate float64) bool {
		return probeAll([]float64{rate})[0].Refused > 0
	}

	lo, hi := cfg.Lo, cfg.Hi
	// Widen the bracket if mis-specified (rare on the default 0.5×/1.5×
	// theoretical bracket, so this stays a serial ladder).
	for drops(lo) && lo > 1 {
		hi = lo
		lo /= 2
	}
	for !drops(hi) {
		lo = hi
		hi *= 2
	}
	// K-section refinement: probe ProbeFan evenly spaced interior rates
	// concurrently, then shrink to the sub-interval where the indicator
	// flips. Like the serial bisection this assumes the drop indicator
	// is monotone in rate; where simulation noise locally violates that,
	// both searches land inside the same onset band (within RelTol).
	for (hi-lo)/hi > cfg.RelTol {
		fan := cfg.ProbeFan
		pts := make([]float64, fan)
		step := (hi - lo) / float64(fan+1)
		for i := range pts {
			pts[i] = lo + float64(i+1)*step
		}
		round := probeAll(pts)
		newLo, newHi := lo, hi
		for i, p := range round {
			if p.Refused > 0 {
				newHi = pts[i]
				break
			}
			newLo = pts[i]
		}
		lo, hi = newLo, newHi
	}
	res.Lambda0 = hi
	return res
}

// fingerprint identifies everything the calibration outcome depends on:
// the (defaulted) cluster topology — including every per-server
// override — the probing policy, and the search parameters. The policy
// is keyed by name, candidate count, and the NewAgent function's code
// pointer, so two same-named policies built from different function
// literals do not alias. (Two closures of the same literal capturing
// different state still would; keep calibration policies distinct, or
// rely on the default — plain RR — which never collides.)
func (cfg CalibrationConfig) fingerprint() string {
	cfg = cfg.withDefaults()
	var b strings.Builder
	cl := cfg.Cluster
	fmt.Fprintf(&b, "seed=%d;servers=%d;clients=%d;chash=%t;server=%+v",
		cl.Seed, cl.Servers, cl.Clients, cl.ConsistentHash, cl.Server)
	if cl.Replicas > 1 || cl.MissFallback || len(cl.Events) > 0 {
		fmt.Fprintf(&b, ";replicas=%d;fallback=%t;events=%+v",
			cl.Replicas, cl.MissFallback, cl.Events)
	}
	if cl.ServerOverride != nil {
		for i := 0; i < cl.Servers; i++ {
			fmt.Fprintf(&b, ";o%d=%+v", i, cl.ServerOverride(i))
		}
	}
	fmt.Fprintf(&b, ";spec=%s/%d/%x;q=%d;lo=%g;hi=%g;tol=%g;fan=%d",
		cfg.Spec.Name, cfg.Spec.Candidates, reflect.ValueOf(cfg.Spec.NewAgent).Pointer(),
		cfg.Queries, cfg.Lo, cfg.Hi, cfg.RelTol, cfg.ProbeFan)
	return b.String()
}

// calCache memoizes calibrations per cluster fingerprint for the life
// of the process. Sound because Calibrate is a pure function of its
// config: same fingerprint ⇒ same λ0, probe for probe.
var calCache sync.Map // fingerprint → *calEntry

type calEntry struct {
	once sync.Once
	res  CalibrationResult
}

// CalibrateCached is Calibrate behind a process-wide cache keyed by the
// config fingerprint: the first caller per topology pays for the
// probes, every later caller — another figure, another ablation study
// on the same cluster — gets the memoized result. Concurrent callers
// with the same fingerprint calibrate once (the others block on the
// first).
func CalibrateCached(cfg CalibrationConfig) CalibrationResult {
	v, _ := calCache.LoadOrStore(cfg.fingerprint(), &calEntry{})
	e := v.(*calEntry)
	e.once.Do(func() { e.res = Calibrate(cfg) })
	return e.res
}

// WriteTSV renders the calibration as rows of (rate, refused).
func (r CalibrationResult) WriteTSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# lambda0 bootstrap (SS V-A): measured %.1f q/s, theoretical %.1f q/s\n", r.Lambda0, r.Theoretical); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "rate_qps\trefused\tunfinished"); err != nil {
		return err
	}
	for _, p := range r.Probes {
		if _, err := fmt.Fprintf(w, "%.1f\t%d\t%d\n", p.RatePerSec, p.Refused, p.Unfinished); err != nil {
			return err
		}
	}
	return nil
}
