package experiments

import (
	"fmt"
	"io"
)

// CalibrationConfig drives the §V-A bootstrap: "identifying λ0, the max
// rate sustainable by the 12-servers swarm, i.e. the smallest value of λ
// for which some TCP connections were dropped".
type CalibrationConfig struct {
	Cluster ClusterConfig
	// Spec is the policy used while probing (the paper uses the plain
	// random balancer; default RR).
	Spec PolicySpec
	// Queries per probe run (default 20000, the paper's batch size).
	Queries int
	// Lo, Hi bracket the search in queries/sec. Defaults: 0.5× and 1.5×
	// the theoretical capacity.
	Lo, Hi float64
	// RelTol is the bisection's relative stopping width (default 1%).
	RelTol float64
}

// CalibrationResult reports the measured λ0.
type CalibrationResult struct {
	// Lambda0 is the measured drop-onset rate (queries/sec).
	Lambda0 float64
	// Theoretical is the fluid-limit capacity for reference.
	Theoretical float64
	// Probes lists every (rate, refused) probe run, in search order.
	Probes []CalibrationProbe
}

// CalibrationProbe is one bisection step.
type CalibrationProbe struct {
	RatePerSec float64
	Refused    int
	Unfinished int
}

// Calibrate measures λ0 by bisection on the drop indicator.
func Calibrate(cfg CalibrationConfig) CalibrationResult {
	cfg.Cluster = cfg.Cluster.withDefaults()
	if cfg.Spec.NewAgent == nil {
		cfg.Spec = RR()
	}
	if cfg.Queries == 0 {
		cfg.Queries = 20000
	}
	theo := cfg.Cluster.TheoreticalCapacity()
	if cfg.Lo == 0 {
		cfg.Lo = 0.5 * theo
	}
	if cfg.Hi == 0 {
		cfg.Hi = 1.5 * theo
	}
	if cfg.RelTol == 0 {
		cfg.RelTol = 0.01
	}

	res := CalibrationResult{Theoretical: theo}
	drops := func(rate float64) bool {
		run := RunPoisson(cfg.Cluster, cfg.Spec, rate, cfg.Queries, PoissonHooks{})
		res.Probes = append(res.Probes, CalibrationProbe{
			RatePerSec: rate, Refused: run.Refused, Unfinished: run.Unfinished,
		})
		return run.Refused > 0
	}

	lo, hi := cfg.Lo, cfg.Hi
	// Widen the bracket if mis-specified.
	for drops(lo) && lo > 1 {
		hi = lo
		lo /= 2
	}
	for !drops(hi) {
		lo = hi
		hi *= 2
	}
	for (hi-lo)/hi > cfg.RelTol {
		mid := (lo + hi) / 2
		if drops(mid) {
			hi = mid
		} else {
			lo = mid
		}
	}
	res.Lambda0 = hi
	return res
}

// WriteTSV renders the calibration as rows of (rate, refused).
func (r CalibrationResult) WriteTSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# lambda0 bootstrap (SS V-A): measured %.1f q/s, theoretical %.1f q/s\n", r.Lambda0, r.Theoretical); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "rate_qps\trefused\tunfinished"); err != nil {
		return err
	}
	for _, p := range r.Probes {
		if _, err := fmt.Fprintf(w, "%.1f\t%d\t%d\n", p.RatePerSec, p.Refused, p.Unfinished); err != nil {
			return err
		}
	}
	return nil
}
