package experiments

import (
	"context"
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"srlb/internal/testbed"
)

// A malformed fraction must surface its diagnostic on the workload path
// too — workloads resolve events before Build, so resolution is where
// the check fires.
func TestWorkloadRejectsBadFraction(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("bad fraction not rejected on the workload path")
		}
		if !strings.Contains(fmt.Sprint(r), "outside [0, 1]") {
			t.Fatalf("wrong diagnostic: %v", r)
		}
	}()
	_, _ = PoissonWorkload{Lambda0: 80, Queries: 100}.Run(context.Background(),
		ClusterConfig{Seed: 1, Servers: 4,
			Events: []testbed.Event{testbed.DrainServer(0, 0, 0).AtFraction(-0.1)}},
		RR(), 0.5)
}

// Regression for the rate-relative migration: RunChurn used to run one
// sweep per rho, hand-resolving each drain/add time against that rho's
// arrival span. The migrated schedule declares the same instants as
// fractions (AtFraction) and lets the workload resolve them per load
// point — so for a fixed rho the two forms must produce identical cells.
func TestChurnRelativeMatchesAbsolute(t *testing.T) {
	const (
		lambda0             = 80.0
		queries             = 1500
		rho                 = 0.9
		churnBy             = 2
		drainFrac, growFrac = 0.3, 0.65
	)
	// The absolute schedule exactly as the pre-migration code computed
	// it: phase offset + per-server stagger of span/100.
	rate := rho * lambda0
	span := time.Duration(float64(queries) / rate * float64(time.Second))
	stagger := span / 100
	absolute := make([]testbed.Event, 0, 2*churnBy)
	for g := 0; g < churnBy; g++ {
		at := time.Duration(drainFrac*float64(span)) + time.Duration(g)*stagger
		absolute = append(absolute, testbed.DrainServer(at, 0, g))
	}
	for g := 0; g < churnBy; g++ {
		at := time.Duration(growFrac*float64(span)) + time.Duration(g)*stagger
		absolute = append(absolute, testbed.AddServer(at, 0))
	}
	relative := churnEvents(churnBy, drainFrac, growFrac)

	run := func(events []testbed.Event) []CellResult {
		res, err := Runner{Workers: 2}.RunSweep(context.Background(), Sweep{
			Cluster:  ClusterConfig{Seed: 43, Servers: 4},
			Policies: []PolicySpec{RR(), SRc(4)},
			Variants: []ClusterVariant{{Name: "churn", Apply: func(c ClusterConfig) ClusterConfig {
				c.Events = events
				return c
			}}},
			Loads:    []float64{rho},
			Seeds:    DeriveSeeds(43, 2),
			Workload: PoissonWorkload{Lambda0: lambda0, Queries: queries},
		})
		if err != nil {
			t.Fatal(err)
		}
		return stripWall(res.Cells)
	}
	if !reflect.DeepEqual(run(absolute), run(relative)) {
		t.Fatal("rate-relative churn schedule diverges from the absolute-time schedule at fixed rho")
	}
}

// A long stagger (big ChurnBy, late GrowFrac) must clamp to span end
// instead of producing fractions > 1 — the absolute-time schedule simply
// fired those events after the last arrival, so the migrated form must
// not panic where the old one ran.
func TestChurnLateScheduleClamps(t *testing.T) {
	events := churnEvents(6, 0.3, 0.97)
	for _, ev := range events {
		if ev.Frac > 1 {
			t.Fatalf("event fraction %v escaped the clamp", ev.Frac)
		}
	}
	res := RunChurn(ChurnConfig{
		Cluster:  ClusterConfig{Seed: 51, Servers: 6},
		Lambda0:  120,
		Rhos:     []float64{0.8},
		ChurnBy:  2,
		GrowFrac: 0.99, // 0.99 + stagger crosses 1 without the clamp
		Queries:  800,
	})
	if len(res.Rows) == 0 {
		t.Fatal("late-schedule churn produced no rows")
	}
}

// One rate-relative variant serves the whole load sweep: the drain must
// land mid-run at every rho (the pre-migration failure mode was a fixed
// absolute schedule churning after the arrivals ended at low rates).
func TestChurnSweepAcrossRhos(t *testing.T) {
	res := RunChurn(ChurnConfig{
		Cluster: ClusterConfig{Seed: 47, Servers: 4},
		Lambda0: 80,
		Rhos:    []float64{0.4, 0.9},
		ChurnBy: 1,
		Queries: 1200,
	})
	if len(res.Rows) != 2*3*2 { // rhos × policies × modes
		t.Fatalf("%d rows, want 12", len(res.Rows))
	}
	// Churn must actually bite at every rho: the churn variant's mean RT
	// differs from steady's (the drained third of the pool squeezes
	// capacity mid-run at 0.4 just as at 0.9).
	for _, rho := range []float64{0.4, 0.9} {
		pen, err := res.ChurnPenalty("RR", rho)
		if err != nil {
			t.Fatalf("rho=%.1f: %v", rho, err)
		}
		if pen == 1.0 {
			t.Fatalf("rho=%.1f: churn penalty exactly 1 — events inert at this load", rho)
		}
	}
}
