package experiments

import (
	"context"
	"fmt"
	"math/rand/v2"
	"time"

	"srlb/internal/des"
	"srlb/internal/metrics"
	"srlb/internal/rng"
	"srlb/internal/sketch"
	"srlb/internal/testbed"
)

// Workload is an arrival process plus a demand model, replayable against
// any (cluster, policy) pair at a given load point. Implementations must
// derive all randomness from the cluster seed so that a scenario's outcome
// is a pure function of its inputs — this is what lets the Runner execute
// cells in any order, on any number of workers, with identical results.
type Workload interface {
	// Label names the workload in progress lines and artifacts.
	Label() string
	// Run replays the workload against a freshly built testbed. load is
	// the workload's intensity knob — the normalized rate ρ for the
	// Poisson-family workloads, a replay speed-up for traces. Run returns
	// ctx.Err() when cancelled mid-replay; the outcome then holds the
	// partial measurement.
	Run(ctx context.Context, cluster ClusterConfig, spec PolicySpec, load float64) (CellOutcome, error)
}

// VectorWorkload is a Workload that can run a per-service load vector —
// the contract grid sweeps (Sweep.LoadGrid) dispatch through. The same
// determinism rules as Run apply: the outcome must be a pure function
// of (cluster, spec, loads).
type VectorWorkload interface {
	Workload
	// RunVector replays the workload with service d pinned at loads[d].
	RunVector(ctx context.Context, cluster ClusterConfig, spec PolicySpec, loads []float64) (CellOutcome, error)
}

// CellOutcome is the measurement a Workload produces for one cell.
type CellOutcome struct {
	// RT sketches the response times of successful queries in constant
	// memory (quantiles within sketch.MaxRelativeError; count/mean exact).
	RT *sketch.Histogram
	// Refused counts RST-refused connections; Unfinished counts queries
	// still pending (or timed out client-side) at horizon end.
	Refused    int
	Unfinished int
	// PerVIP breaks the outcome down by service for multi-VIP workloads
	// (MultiServiceWorkload), in the workload's service order; nil for
	// single-VIP workloads. The aggregate fields above always cover all
	// VIPs: summing a VIPOutcome column reproduces them.
	PerVIP []VIPOutcome
	// Extra carries workload-specific payloads: PoissonStats for the
	// Poisson-family workloads, WikiRun for WikiWorkload, the sampled
	// timeline for figure 4's workload.
	Extra any
}

// VIPOutcome is one service's share of a multi-VIP cell: the same
// accounting as CellOutcome, restricted to queries addressed to that VIP.
type VIPOutcome struct {
	// Name is the service name; Workload labels its arrival process.
	Name     string
	Workload string
	// Load is the service's own resolved load point. It equals the
	// cell's load unless the workload carries per-service load axes
	// (MultiServiceWorkload.ServiceLoads) — a fixed victim keeps its
	// pinned ρ while the sweep's knob drives the aggressor.
	Load float64
	// Offered counts queries launched at this VIP — the conservation
	// anchor: Offered == RT.Count() + Refused + Unfinished at run end.
	Offered int
	// RT sketches the response times of this VIP's successful queries.
	RT *sketch.Histogram
	// Refused and Unfinished count this VIP's failed queries.
	Refused    int
	Unfinished int
}

// OKFraction returns the completed fraction of the VIP's offered queries.
func (o VIPOutcome) OKFraction() float64 {
	if o.RT == nil || o.Offered == 0 {
		return 0
	}
	return float64(o.RT.Count()) / float64(o.Offered)
}

// OKFraction returns the completed fraction of all observed queries
// (0 for a skipped cell, whose RT is nil).
func (o CellOutcome) OKFraction() float64 {
	if o.RT == nil {
		return 0
	}
	total := o.RT.Count() + o.Refused + o.Unfinished
	if total == 0 {
		return 0
	}
	return float64(o.RT.Count()) / float64(total)
}

// sketchFromRecorder folds an exact recorder into a histogram sketch, so
// workloads that keep full recorders in their Extra payload (the wiki
// replays) can still satisfy CellOutcome.RT.
func sketchFromRecorder(r *metrics.Recorder) *sketch.Histogram {
	h := sketch.New()
	for _, d := range r.Samples() {
		h.Add(d)
	}
	return h
}

// PoissonStats is the Extra payload of PoissonWorkload and BurstyWorkload.
type PoissonStats struct {
	// ServerCompleted is the number of queries each server completed —
	// the capacity-shedding evidence of the heterogeneous-cluster study.
	ServerCompleted []uint64
	// Retransmits and SYNTimeouts are nonzero only with RetransmitRTO set
	// (the §IV-C silent-drop study).
	Retransmits uint64
	SYNTimeouts uint64
}

// PoissonWorkload is the paper's §V workload: open-loop Poisson arrivals
// with Exp(MeanDemand) CPU demands. rate = load × Lambda0.
type PoissonWorkload struct {
	// Lambda0 converts the load point to an absolute rate in queries/sec
	// (measure it with Calibrate; §V-A).
	Lambda0 float64
	// Queries per cell (default 20000, the paper's batch).
	Queries int
	// RetransmitRTO, when nonzero, enables client SYN retransmission —
	// pair with Cluster.Server.AbortOnOverflow=false for the §IV-C study.
	RetransmitRTO time.Duration
}

// Label implements Workload.
func (w PoissonWorkload) Label() string {
	return fmt.Sprintf("poisson(%dq)", w.queries())
}

func (w PoissonWorkload) queries() int {
	if w.Queries == 0 {
		return 20000
	}
	return w.Queries
}

// Run implements Workload.
func (w PoissonWorkload) Run(ctx context.Context, cluster ClusterConfig, spec PolicySpec, load float64) (CellOutcome, error) {
	rate := load * w.Lambda0
	arrivals := rng.NewPoisson(rng.Split(cluster.Seed, 0xa221), rate, 0)
	return runOpenLoop(ctx, cluster, spec, arrivals, rate, w.queries(), w.RetransmitRTO, PoissonHooks{})
}

// BurstyWorkload is a two-state Markov-modulated Poisson process — a
// flowlet-style on/off arrival stream in the spirit of the host-driven
// flowlet-balancing literature: bursts at several times the long-run rate
// alternate with quiet periods, while the mean stays load × Lambda0. It
// stresses exactly what Service Hunting is for: instantaneous imbalance
// that a static random spray cannot see.
type BurstyWorkload struct {
	Lambda0 float64
	Queries int
	// MeanOn and MeanOff are the mean burst and quiet durations
	// (exponentially distributed; defaults 2s and 6s).
	MeanOn, MeanOff time.Duration
	// PeakFactor is the ON-state rate relative to the long-run mean
	// (default 3; capped at (MeanOn+MeanOff)/MeanOn, where the OFF state
	// goes fully quiet).
	PeakFactor float64
}

func (w BurstyWorkload) withDefaults() BurstyWorkload {
	if w.Queries == 0 {
		w.Queries = 20000
	}
	if w.MeanOn == 0 {
		w.MeanOn = 2 * time.Second
	}
	if w.MeanOff == 0 {
		w.MeanOff = 6 * time.Second
	}
	if w.PeakFactor == 0 {
		w.PeakFactor = 3
	}
	onFrac := w.MeanOn.Seconds() / (w.MeanOn + w.MeanOff).Seconds()
	if w.PeakFactor > 1/onFrac {
		w.PeakFactor = 1 / onFrac
	}
	if w.PeakFactor < 1 {
		w.PeakFactor = 1
	}
	return w
}

// Label implements Workload.
func (w BurstyWorkload) Label() string {
	w = w.withDefaults()
	return fmt.Sprintf("bursty(%dq,peak=%.1fx)", w.Queries, w.PeakFactor)
}

// Run implements Workload.
func (w BurstyWorkload) Run(ctx context.Context, cluster ClusterConfig, spec PolicySpec, load float64) (CellOutcome, error) {
	w = w.withDefaults()
	return runOpenLoop(ctx, cluster, spec, w.newMMPP(cluster.Seed, load), load*w.Lambda0, w.Queries, 0, PoissonHooks{})
}

// newMMPP builds the workload's arrival process at the given load from
// the given seed — shared by BurstyWorkload and BurstyService so the two
// forms generate the identical on/off stream. w must already carry its
// defaults.
func (w BurstyWorkload) newMMPP(seed uint64, load float64) *mmpp {
	mean := load * w.Lambda0
	onFrac := w.MeanOn.Seconds() / (w.MeanOn + w.MeanOff).Seconds()
	rateOn := w.PeakFactor * mean
	rateOff := (mean - onFrac*rateOn) / (1 - onFrac)
	if rateOff < 0 {
		rateOff = 0
	}
	arrivals := &mmpp{
		r:       rng.Split(seed, 0xb124),
		rateOn:  rateOn,
		rateOff: rateOff,
		meanOn:  w.MeanOn,
		meanOff: w.MeanOff,
	}
	// Start in the OFF state with a fresh dwell time.
	arrivals.switchAt = rng.Exp(arrivals.r, arrivals.meanOff)
	return arrivals
}

// mmpp generates arrivals of a two-state Markov-modulated Poisson process.
// Exponential holding times make the per-state restart at each boundary
// exact (memorylessness), so no thinning is needed.
type mmpp struct {
	r               *rand.Rand
	rateOn, rateOff float64
	meanOn, meanOff time.Duration
	t, switchAt     time.Duration
	on              bool
}

func (p *mmpp) Next() time.Duration {
	for {
		rate := p.rateOff
		if p.on {
			rate = p.rateOn
		}
		if rate > 0 {
			dt := rng.ExpRate(p.r, rate)
			if p.t+dt <= p.switchAt {
				p.t += dt
				return p.t
			}
		}
		p.t = p.switchAt
		p.on = !p.on
		dwell := p.meanOff
		if p.on {
			dwell = p.meanOn
		}
		p.switchAt = p.t + rng.Exp(p.r, dwell)
	}
}

// arrivalStream yields successive absolute arrival times of an open-loop
// arrival process.
type arrivalStream interface {
	Next() time.Duration
}

// runOpenLoop replays `queries` open-loop arrivals with Exp(MeanDemand)
// demands against a fresh testbed — the engine behind PoissonWorkload and
// BurstyWorkload, and the ctx-aware core of RunPoisson. meanRate sizes the
// horizon guard; rto enables client SYN retransmission.
func runOpenLoop(ctx context.Context, cluster ClusterConfig, spec PolicySpec, arrivals arrivalStream, meanRate float64, queries int, rto time.Duration, hooks PoissonHooks) (CellOutcome, error) {
	cluster = cluster.withDefaults()
	// The expected arrival span at this rate — what rate-relative events
	// resolve against, so one schedule means the same thing at every ρ.
	span := time.Duration(float64(queries) / meanRate * float64(time.Second))
	top := cluster.topology(spec)
	top.Events = testbed.ResolveEvents(top.Events, span)
	if top.Feedback.Enabled && top.Feedback.Horizon <= 0 {
		// Publish through the run's own horizon (the drain window
		// included), then stop so the idle simulator can terminate.
		top.Feedback.Horizon = span + 2*time.Minute
	}
	tb := testbed.Build(top)
	tb.Gen.RetransmitRTO = rto

	// Sketch-backed sink: per-query results are folded into constant-size
	// aggregates as they complete — nothing is retained per query.
	sink := testbed.NewSketchSink()
	tb.Gen.Sink = sink
	tb.Gen.OnResult = hooks.OnResult

	demands := rng.Split(cluster.Seed, 0xde3a)
	horizon := span + 2*time.Minute
	if rto > 0 {
		horizon += 3 * time.Minute // leave room for the backoff ladder
	}
	if hooks.Testbed != nil {
		hooks.Testbed(tb, horizon)
	}
	// Stream arrivals one ahead instead of pre-scheduling all of them.
	remaining := queries
	var id uint64
	var launchNext func()
	launchNext = func() {
		if remaining == 0 {
			return
		}
		remaining--
		q := testbed.Query{ID: id, Demand: rng.Exp(demands, MeanDemand)}
		id++
		tb.Gen.Launch(q)
		if remaining > 0 {
			next := arrivals.Next()
			tb.Sim.At(next, launchNext)
		}
	}
	tb.Sim.At(arrivals.Next(), launchNext)
	err := runSim(ctx, tb.Sim, horizon)
	// Drained queries report through the sink above (OK and Refused both
	// false), so they land in Unfinished there — do not add the return
	// count on top.
	tb.Gen.DrainPending()

	total := sink.Total()
	out := CellOutcome{
		RT:         total.RT,
		Refused:    int(total.Counters.Refused),
		Unfinished: int(total.Counters.Unfinished),
	}
	stats := PoissonStats{
		ServerCompleted: make([]uint64, len(tb.Servers)),
		Retransmits:     tb.Gen.Counts.Get("syn_retransmits"),
		SYNTimeouts:     tb.Gen.Counts.Get("syn_timeout"),
	}
	for i, s := range tb.Servers {
		stats.ServerCompleted[i] = s.Stats().Completed
	}
	out.Extra = stats
	return out, err
}

// simBatch is how many DES events run between cancellation polls. Large
// enough that ctx.Err() is noise in the profile, small enough that a
// cancelled 20000-query cell aborts within a few milliseconds.
const simBatch = 8192

// runSim drives the simulator to the horizon, polling ctx between event
// batches so a cancelled sweep returns promptly even mid-cell.
func runSim(ctx context.Context, sim *des.Simulator, horizon time.Duration) error {
	if ctx == nil {
		ctx = context.Background()
	}
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		if !sim.RunUntilLimit(horizon, simBatch) {
			return nil
		}
	}
}
