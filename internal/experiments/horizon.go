package experiments

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"time"

	"srlb/internal/rng"
	"srlb/internal/sketch"
	"srlb/internal/testbed"
)

// HorizonConfig drives a single very long open-loop cell — the
// constant-memory soak that the streaming-metrics path exists for.
// Default: 10⁸ Poisson queries at ρ = 0.85 through the paper's cluster,
// measured entirely through sketches, so the heap stays flat no matter
// how far the horizon is pushed.
type HorizonConfig struct {
	Cluster ClusterConfig
	// Policy is the policy under test (default SRc(4), the paper's).
	Policy PolicySpec
	// Queries is the horizon length (default 1e8).
	Queries uint64
	// Rho is the normalized load (default 0.85).
	Rho float64
	// Lambda0 converts Rho to an absolute rate (0 ⇒ calibrated first).
	Lambda0 float64
	// SampleEvery is the number of queries between heap samples
	// (default 2²⁰). Sampling reads runtime.MemStats, so it should stay
	// coarse on long runs.
	SampleEvery uint64
	// Progress, when set, is called at every heap sample.
	Progress func(done, total uint64)
	// Hooks observe the run (nil-safe); OnResult sees every outcome —
	// used by tests to compare the sketch against exact accounting.
	Hooks PoissonHooks
}

// HorizonResult is the outcome of a horizon run: streaming aggregates
// only — nothing in it grows with the query count.
type HorizonResult struct {
	Queries uint64
	Rho     float64
	Lambda0 float64
	Policy  string
	// RT sketches the response times of completed queries; Seconds holds
	// their exact streaming mean/variance; Counters the accounting.
	RT       *sketch.Histogram
	Seconds  sketch.Welford
	Counters sketch.Counters
	// PeakHeap is the largest live-heap sample (runtime.MemStats
	// HeapAlloc) observed during the run — the constant-memory claim.
	PeakHeap uint64
	// Events is the number of DES events executed; SimTime the simulated
	// span; Wall the host time the run took.
	Events  uint64
	SimTime time.Duration
	Wall    time.Duration
}

// QPS returns the host-side event throughput in queries per wall second.
func (r HorizonResult) QPS() float64 {
	if r.Wall <= 0 {
		return 0
	}
	return float64(r.Queries) / r.Wall.Seconds()
}

func (c HorizonConfig) withDefaults() HorizonConfig {
	c.Cluster = c.Cluster.withDefaults()
	if c.Policy.NewAgent == nil {
		c.Policy = SRc(4)
	}
	if c.Queries == 0 {
		c.Queries = 100_000_000
	}
	if c.Rho == 0 {
		c.Rho = 0.85
	}
	if c.SampleEvery == 0 {
		c.SampleEvery = 1 << 20
	}
	return c
}

// RunHorizon executes the soak. It is the same engine as runOpenLoop —
// streamed arrivals, sketch-backed sink — with a heap-sampling loop
// around it, and query counts wide enough for 10⁸ and beyond.
func RunHorizon(ctx context.Context, cfg HorizonConfig) (HorizonResult, error) {
	cfg = cfg.withDefaults()
	if cfg.Lambda0 == 0 {
		cal := CalibrateCached(CalibrationConfig{Cluster: cfg.Cluster})
		cfg.Lambda0 = cal.Lambda0
	}
	rate := cfg.Rho * cfg.Lambda0
	span := time.Duration(float64(cfg.Queries) / rate * float64(time.Second))

	top := cfg.Cluster.topology(cfg.Policy)
	top.Events = testbed.ResolveEvents(top.Events, span)
	tb := testbed.Build(top)
	sink := testbed.NewSketchSink()
	tb.Gen.Sink = sink
	tb.Gen.OnResult = cfg.Hooks.OnResult

	horizon := span + 2*time.Minute
	if cfg.Hooks.Testbed != nil {
		cfg.Hooks.Testbed(tb, horizon)
	}

	arrivals := rng.NewPoisson(rng.Split(cfg.Cluster.Seed, 0xa221), rate, 0)
	demands := rng.Split(cfg.Cluster.Seed, 0xde3a)

	var peak uint64
	var ms runtime.MemStats
	sample := func(done uint64) {
		runtime.ReadMemStats(&ms)
		if ms.HeapAlloc > peak {
			peak = ms.HeapAlloc
		}
		if cfg.Progress != nil {
			cfg.Progress(done, cfg.Queries)
		}
	}

	// Stream arrivals one ahead — the scheduler never sees more than one
	// future arrival, so the pending-event set stays at cluster scale.
	remaining := cfg.Queries
	var id uint64
	var launchNext func()
	launchNext = func() {
		if remaining == 0 {
			return
		}
		remaining--
		q := testbed.Query{ID: id, Demand: rng.Exp(demands, MeanDemand)}
		id++
		if id%cfg.SampleEvery == 0 {
			sample(id)
		}
		tb.Gen.Launch(q)
		if remaining > 0 {
			tb.Sim.At(arrivals.Next(), launchNext)
		}
	}
	tb.Sim.At(arrivals.Next(), launchNext)

	start := time.Now()
	sample(0)
	err := runSim(ctx, tb.Sim, horizon)
	tb.Gen.DrainPending()
	sample(id)

	total := sink.Total()
	return HorizonResult{
		Queries:  cfg.Queries,
		Rho:      cfg.Rho,
		Lambda0:  cfg.Lambda0,
		Policy:   cfg.Policy.Name,
		RT:       total.RT,
		Seconds:  total.Seconds,
		Counters: total.Counters,
		PeakHeap: peak,
		Events:   tb.Sim.Processed(),
		SimTime:  tb.Sim.Now(),
		Wall:     time.Since(start),
	}, err
}

// WriteSummary renders the run human-readably, one stat per line.
func (r HorizonResult) WriteSummary(w io.Writer) error {
	okFrac := 0.0
	if r.Counters.Offered > 0 {
		okFrac = float64(r.Counters.OK) / float64(r.Counters.Offered)
	}
	_, err := fmt.Fprintf(w,
		"queries\t%d\npolicy\t%s\nrho\t%.2f\nlambda0\t%.1f\n"+
			"ok\t%d (%.4f)\nrefused\t%d\nunfinished\t%d\n"+
			"mean_ms\t%.3f\np50_ms\t%.3f\np99_ms\t%.3f\nmax_ms\t%.3f\n"+
			"peak_heap_mb\t%.1f\nevents\t%d\nsim_time\t%s\nwall\t%s\nqps\t%.0f\n",
		r.Queries, r.Policy, r.Rho, r.Lambda0,
		r.Counters.OK, okFrac, r.Counters.Refused, r.Counters.Unfinished,
		durMS(r.RT.Mean()), durMS(r.RT.Median()), durMS(r.RT.Quantile(0.99)), durMS(r.RT.Max()),
		float64(r.PeakHeap)/(1<<20), r.Events, r.SimTime.Round(time.Millisecond), r.Wall.Round(time.Millisecond),
		r.QPS())
	return err
}

func durMS(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
