package experiments

import (
	"fmt"
	"io"
	"time"

	"srlb/internal/metrics"
	"srlb/internal/rng"
	"srlb/internal/testbed"
)

// RetransmitConfig studies the paper's §IV-C design decision: with
// tcp_abort_on_overflow enabled, a connection hitting a full backlog is
// refused instantly with a RST; without it, the SYN is silently dropped
// and the client retries after a (doubling) retransmission timeout —
// polluting response-time measurements with multi-second TCP artifacts.
// The paper enables the flag so that "the application response delays are
// measured, and not possible TCP SYN retransmit delays"; this experiment
// shows what they kept out.
type RetransmitConfig struct {
	Cluster ClusterConfig
	// Rho is the (over)load to run at (default 1.05 — just past
	// saturation, where backlogs actually fill).
	Rho     float64
	Lambda0 float64
	Queries int
	// RTO is the client's initial retransmission timeout (default 1s,
	// Linux's floor).
	RTO      time.Duration
	Progress func(string)
}

// RetransmitRow is one mode's outcome.
type RetransmitRow struct {
	Mode string
	// Completed response-time stats.
	Median, P95, P99, Max time.Duration
	Completed             int
	// Refused counts instant RSTs; TimedOut counts clients that gave up.
	Refused  int
	TimedOut int
	// Retransmits counts extra SYNs sent.
	Retransmits uint64
}

// RetransmitResult compares abort-on-overflow against silent drop.
type RetransmitResult struct {
	Rho  float64
	Rows []RetransmitRow
}

// RunRetransmitAblation executes both modes under identical arrivals.
func RunRetransmitAblation(cfg RetransmitConfig) RetransmitResult {
	cfg.Cluster = cfg.Cluster.withDefaults()
	if cfg.Rho == 0 {
		cfg.Rho = 1.05
	}
	if cfg.Queries == 0 {
		cfg.Queries = 20000
	}
	if cfg.RTO == 0 {
		cfg.RTO = time.Second
	}
	if cfg.Lambda0 == 0 {
		cal := Calibrate(CalibrationConfig{Cluster: cfg.Cluster})
		cfg.Lambda0 = cal.Lambda0
	}
	res := RetransmitResult{Rho: cfg.Rho}
	for _, silent := range []bool{false, true} {
		mode := "abort-on-overflow (RST)"
		cluster := cfg.Cluster
		if silent {
			mode = "silent-drop + SYN retransmit"
			cluster.Server.AbortOnOverflow = false
		}
		row := runRetransmitOne(cfg, cluster, silent)
		row.Mode = mode
		res.Rows = append(res.Rows, row)
		if cfg.Progress != nil {
			cfg.Progress(fmt.Sprintf("%s: p99=%s refused=%d timeouts=%d retx=%d",
				mode, metrics.FormatDuration(row.P99), row.Refused, row.TimedOut, row.Retransmits))
		}
	}
	return res
}

func runRetransmitOne(cfg RetransmitConfig, cluster ClusterConfig, silent bool) RetransmitRow {
	tb := testbed.New(cluster.testbedConfig(SRc(4)))
	if silent {
		tb.Gen.RetransmitRTO = cfg.RTO
	}
	rt := metrics.NewRecorder(cfg.Queries)
	var row RetransmitRow
	tb.Gen.DiscardResults = true
	tb.Gen.OnResult = func(res testbed.Result) {
		switch {
		case res.OK:
			rt.Add(res.RT)
		case res.Refused:
			row.Refused++
		default:
			row.TimedOut++
		}
	}
	arrivals := rng.Split(cluster.Seed, 0xa221)
	demands := rng.Split(cluster.Seed, 0xde3a)
	rate := cfg.Rho * cfg.Lambda0
	p := rng.NewPoisson(arrivals, rate, 0)
	for i := 0; i < cfg.Queries; i++ {
		at := p.Next()
		q := testbed.Query{ID: uint64(i), Demand: rng.Exp(demands, MeanDemand)}
		tb.Sim.At(at, func() { tb.Gen.Launch(q) })
	}
	horizon := time.Duration(float64(cfg.Queries)/rate*float64(time.Second)) + 5*time.Minute
	tb.Sim.RunUntil(horizon)
	row.TimedOut += tb.Gen.DrainPending()
	row.Completed = rt.Count()
	row.Median = rt.Median()
	row.P95 = rt.Quantile(0.95)
	row.P99 = rt.Quantile(0.99)
	row.Max = rt.Max()
	row.Retransmits = tb.Gen.Counts.Get("syn_retransmits")
	return row
}

// WriteTSV renders the comparison.
func (r RetransmitResult) WriteTSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# Ablation: tcp_abort_on_overflow (SS IV-C), rho=%.2f\n", r.Rho); err != nil {
		return err
	}
	fmt.Fprintln(w, "mode\tmedian_s\tp95_s\tp99_s\tmax_s\tcompleted\trefused\ttimed_out\tretransmits")
	for _, row := range r.Rows {
		if _, err := fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%s\t%d\t%d\t%d\t%d\n",
			row.Mode,
			metrics.FormatDuration(row.Median),
			metrics.FormatDuration(row.P95),
			metrics.FormatDuration(row.P99),
			metrics.FormatDuration(row.Max),
			row.Completed, row.Refused, row.TimedOut, row.Retransmits); err != nil {
			return err
		}
	}
	return nil
}
