package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"srlb/internal/metrics"
)

// RetransmitConfig studies the paper's §IV-C design decision: with
// tcp_abort_on_overflow enabled, a connection hitting a full backlog is
// refused instantly with a RST; without it, the SYN is silently dropped
// and the client retries after a (doubling) retransmission timeout —
// polluting response-time measurements with multi-second TCP artifacts.
// The paper enables the flag so that "the application response delays are
// measured, and not possible TCP SYN retransmit delays"; this experiment
// shows what they kept out.
type RetransmitConfig struct {
	Cluster ClusterConfig
	// Rho is the (over)load to run at (default 1.05 — just past
	// saturation, where backlogs actually fill).
	Rho     float64
	Lambda0 float64
	Queries int
	// RTO is the client's initial retransmission timeout (default 1s,
	// Linux's floor).
	RTO      time.Duration
	Progress func(string)
}

// RetransmitRow is one mode's outcome.
type RetransmitRow struct {
	Mode string
	// Completed response-time stats.
	Median, P95, P99, Max time.Duration
	Completed             int
	// Refused counts instant RSTs; TimedOut counts clients that gave up.
	Refused  int
	TimedOut int
	// Retransmits counts extra SYNs sent.
	Retransmits uint64
}

// RetransmitResult compares abort-on-overflow against silent drop.
type RetransmitResult struct {
	Rho  float64
	Rows []RetransmitRow
}

// RunRetransmitAblation executes both modes under identical arrivals —
// two explicit Scenarios (same policy and workload shape, RST vs
// silent-drop clusters) handed to the parallel Runner.
func RunRetransmitAblation(cfg RetransmitConfig) RetransmitResult {
	return RunRetransmitAblationCtx(context.Background(), cfg)
}

// RunRetransmitAblationCtx is RunRetransmitAblation with cancellation;
// cancelled rows are omitted.
func RunRetransmitAblationCtx(ctx context.Context, cfg RetransmitConfig) RetransmitResult {
	cfg.Cluster = cfg.Cluster.withDefaults()
	if cfg.Rho == 0 {
		cfg.Rho = 1.05
	}
	if cfg.Queries == 0 {
		cfg.Queries = 20000
	}
	if cfg.RTO == 0 {
		cfg.RTO = time.Second
	}
	if cfg.Lambda0 == 0 {
		cal := Calibrate(CalibrationConfig{Cluster: cfg.Cluster})
		cfg.Lambda0 = cal.Lambda0
	}

	silentCluster := cfg.Cluster
	silentCluster.Server.AbortOnOverflow = false
	scenarios := []Scenario{
		{
			Name:     "abort-on-overflow (RST)",
			Cluster:  cfg.Cluster,
			Policy:   SRc(4),
			Workload: PoissonWorkload{Lambda0: cfg.Lambda0, Queries: cfg.Queries},
			Load:     cfg.Rho,
		},
		{
			Name:     "silent-drop + SYN retransmit",
			Cluster:  silentCluster,
			Policy:   SRc(4),
			Workload: PoissonWorkload{Lambda0: cfg.Lambda0, Queries: cfg.Queries, RetransmitRTO: cfg.RTO},
			Load:     cfg.Rho,
		},
	}
	cells, _ := Runner{Progress: cfg.Progress}.Run(ctx, scenarios)

	res := RetransmitResult{Rho: cfg.Rho}
	for _, cell := range cells {
		if cell.Skipped() {
			continue
		}
		rt := cell.Outcome.RT
		row := RetransmitRow{
			Mode:      cell.Name,
			Median:    rt.Median(),
			P95:       rt.Quantile(0.95),
			P99:       rt.Quantile(0.99),
			Max:       rt.Max(),
			Completed: rt.Count(),
			Refused:   cell.Outcome.Refused,
			TimedOut:  cell.Outcome.Unfinished,
		}
		if stats, ok := cell.Outcome.Extra.(PoissonStats); ok {
			row.Retransmits = stats.Retransmits
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

// WriteTSV renders the comparison.
func (r RetransmitResult) WriteTSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# Ablation: tcp_abort_on_overflow (SS IV-C), rho=%.2f\n", r.Rho); err != nil {
		return err
	}
	fmt.Fprintln(w, "mode\tmedian_s\tp95_s\tp99_s\tmax_s\tcompleted\trefused\ttimed_out\tretransmits")
	for _, row := range r.Rows {
		if _, err := fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%s\t%d\t%d\t%d\t%d\n",
			row.Mode,
			metrics.FormatDuration(row.Median),
			metrics.FormatDuration(row.P95),
			metrics.FormatDuration(row.P99),
			metrics.FormatDuration(row.Max),
			row.Completed, row.Refused, row.TimedOut, row.Retransmits); err != nil {
			return err
		}
	}
	return nil
}
