package experiments

import (
	"context"
	"fmt"
	"io"
	"math"
	"time"

	"srlb/internal/metrics"
)

// RetransmitConfig studies the paper's §IV-C design decision: with
// tcp_abort_on_overflow enabled, a connection hitting a full backlog is
// refused instantly with a RST; without it, the SYN is silently dropped
// and the client retries after a (doubling) retransmission timeout —
// polluting response-time measurements with multi-second TCP artifacts.
// The paper enables the flag so that "the application response delays are
// measured, and not possible TCP SYN retransmit delays"; this experiment
// shows what they kept out.
type RetransmitConfig struct {
	Cluster ClusterConfig
	// Rho is the (over)load to run at (default 1.05 — just past
	// saturation, where backlogs actually fill).
	Rho     float64
	Lambda0 float64
	Queries int
	// RTO is the client's initial retransmission timeout (default 1s,
	// Linux's floor).
	RTO time.Duration
	// Seeds is the replication axis (default: the cluster seed alone).
	Seeds    []uint64
	Progress func(string)
}

// RetransmitRow is one mode's outcome, aggregated across the
// replication axis (CI95 fields are zero when N == 1).
type RetransmitRow struct {
	Mode string
	// Completed response-time stats (across-seed means of per-seed
	// statistics; Max is the max over all replicates).
	Median, P95, P99, Max time.Duration
	Completed             int
	// Refused counts instant RSTs; TimedOut counts clients that gave up.
	Refused  int
	TimedOut int
	// Retransmits counts extra SYNs sent (mean across replicates).
	Retransmits uint64
	// N counts the completed replicates behind the row.
	N                   int
	MedianCI95, P99CI95 time.Duration
}

// RetransmitResult compares abort-on-overflow against silent drop.
type RetransmitResult struct {
	Rho   float64
	Seeds []uint64
	Rows  []RetransmitRow
}

// RunRetransmitAblation executes both modes under identical arrivals —
// two explicit Scenarios (same policy and workload shape, RST vs
// silent-drop clusters) handed to the parallel Runner.
func RunRetransmitAblation(cfg RetransmitConfig) RetransmitResult {
	return RunRetransmitAblationCtx(context.Background(), cfg)
}

// RunRetransmitAblationCtx is RunRetransmitAblation with cancellation;
// cancelled rows are omitted.
func RunRetransmitAblationCtx(ctx context.Context, cfg RetransmitConfig) RetransmitResult {
	cfg.Cluster = cfg.Cluster.withDefaults()
	if cfg.Rho == 0 {
		cfg.Rho = 1.05
	}
	if cfg.Queries == 0 {
		cfg.Queries = 20000
	}
	if cfg.RTO == 0 {
		cfg.RTO = time.Second
	}
	if cfg.Lambda0 == 0 {
		// Through the calibration cache: the retransmit study shares its
		// cluster (and thus its λ0) with every other figure run on it in
		// this process.
		cal := CalibrateCached(CalibrationConfig{Cluster: cfg.Cluster})
		cfg.Lambda0 = cal.Lambda0
	}
	seeds := cfg.Seeds
	if len(seeds) == 0 {
		seeds = []uint64{cfg.Cluster.Seed}
	}

	silentCluster := cfg.Cluster
	silentCluster.Server.AbortOnOverflow = false
	modes := []Scenario{
		{
			Name:     "abort-on-overflow (RST)",
			Cluster:  cfg.Cluster,
			Policy:   SRc(4),
			Workload: PoissonWorkload{Lambda0: cfg.Lambda0, Queries: cfg.Queries},
			Load:     cfg.Rho,
		},
		{
			Name:     "silent-drop + SYN retransmit",
			Cluster:  silentCluster,
			Policy:   SRc(4),
			Workload: PoissonWorkload{Lambda0: cfg.Lambda0, Queries: cfg.Queries, RetransmitRTO: cfg.RTO},
			Load:     cfg.Rho,
		},
	}
	cells, _ := Runner{Progress: cfg.Progress}.Run(ctx, replicateScenarios(modes, seeds))

	res := RetransmitResult{Rho: cfg.Rho, Seeds: seeds}
	for mi := range modes {
		group := cells[mi*len(seeds) : (mi+1)*len(seeds)]
		cs := newCellStats(group)
		if cs.N() == 0 {
			continue
		}
		// Metrics newCellStats does not carry: the all-replicate max and
		// the completion/timeout/retransmit accounting.
		var (
			maxRT               time.Duration
			completed, timedOut int
			retransmits         float64
		)
		for _, cell := range group {
			if cell.Err != nil { // match newCellStats: no truncated runs
				continue
			}
			maxRT = max(maxRT, cell.Outcome.RT.Max())
			completed += cell.Outcome.RT.Count()
			timedOut += cell.Outcome.Unfinished
			if ps, ok := cell.Outcome.Extra.(PoissonStats); ok {
				retransmits += float64(ps.Retransmits)
			}
		}
		n := cs.N()
		res.Rows = append(res.Rows, RetransmitRow{
			Mode:        cs.Name,
			Median:      secDur(cs.Median.Dist.Mean),
			P95:         secDur(cs.P95.Dist.Mean),
			P99:         secDur(cs.P99.Dist.Mean),
			Max:         maxRT,
			Completed:   int(math.Round(float64(completed) / float64(n))),
			Refused:     int(math.Round(cs.Refused.Dist.Mean)),
			TimedOut:    int(math.Round(float64(timedOut) / float64(n))),
			Retransmits: uint64(math.Round(retransmits / float64(n))),
			N:           n,
			MedianCI95:  secDur(cs.Median.Dist.ReportedCI95()),
			P99CI95:     secDur(cs.P99.Dist.ReportedCI95()),
		})
	}
	return res
}

// WriteTSV renders the comparison; replicated runs gain CI columns.
func (r RetransmitResult) WriteTSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# Ablation: tcp_abort_on_overflow (SS IV-C), rho=%.2f\n", r.Rho); err != nil {
		return err
	}
	replicated := len(r.Seeds) > 1
	if replicated {
		fmt.Fprintln(w, "mode\tmedian_s\tmedian_ci95_s\tp95_s\tp99_s\tp99_ci95_s\tmax_s\tcompleted\trefused\ttimed_out\tretransmits\tn")
	} else {
		fmt.Fprintln(w, "mode\tmedian_s\tp95_s\tp99_s\tmax_s\tcompleted\trefused\ttimed_out\tretransmits")
	}
	for _, row := range r.Rows {
		var err error
		if replicated {
			_, err = fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%s\t%s\t%s\t%d\t%d\t%d\t%d\t%d\n",
				row.Mode,
				metrics.FormatDuration(row.Median),
				metrics.FormatDuration(row.MedianCI95),
				metrics.FormatDuration(row.P95),
				metrics.FormatDuration(row.P99),
				metrics.FormatDuration(row.P99CI95),
				metrics.FormatDuration(row.Max),
				row.Completed, row.Refused, row.TimedOut, row.Retransmits, row.N)
		} else {
			_, err = fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%s\t%d\t%d\t%d\t%d\n",
				row.Mode,
				metrics.FormatDuration(row.Median),
				metrics.FormatDuration(row.P95),
				metrics.FormatDuration(row.P99),
				metrics.FormatDuration(row.Max),
				row.Completed, row.Refused, row.TimedOut, row.Retransmits)
		}
		if err != nil {
			return err
		}
	}
	return nil
}
