package experiments

import (
	"context"
	"fmt"
	"time"
)

// Scenario is one fully specified experiment cell: a cluster, a policy,
// a workload, and the workload's load point. Scenarios are values — build
// them directly, or let Sweep enumerate a cross product.
type Scenario struct {
	// Name labels the cell in progress lines and artifacts; empty derives
	// "<policy> <workload> load=<load>".
	Name     string
	Cluster  ClusterConfig
	Policy   PolicySpec
	Workload Workload
	// Variant labels the topology variant the Cluster was derived from
	// (set by Sweep.Scenarios; empty for the identity variant).
	Variant string
	// Load is the workload intensity (default 1).
	Load float64
	// LoadVec, when non-nil, is the per-service load vector of a grid
	// sweep (Sweep.LoadGrid): entry d pins service d's load. The
	// workload must implement VectorWorkload; Load then only labels the
	// cell (the grid's last-axis value).
	LoadVec []float64
	// Seed, when nonzero, overrides Cluster.Seed — the replication axis.
	Seed uint64
}

func (sc Scenario) load() float64 {
	if sc.Load == 0 {
		return 1
	}
	return sc.Load
}

// seed returns the effective seed: the Seed override when set, else the
// cluster's.
func (sc Scenario) seed() uint64 {
	if sc.Seed != 0 {
		return sc.Seed
	}
	return sc.Cluster.Seed
}

func (sc Scenario) label() string {
	if sc.Name != "" {
		return sc.Name
	}
	load := fmt.Sprintf("load=%.2f", sc.load())
	if sc.LoadVec != nil {
		load = "load=" + fmtLoadVec(sc.LoadVec)
	}
	if sc.Variant != "" {
		return fmt.Sprintf("%s/%s %s %s", sc.Policy.Name, sc.Variant, sc.Workload.Label(), load)
	}
	return fmt.Sprintf("%s %s %s", sc.Policy.Name, sc.Workload.Label(), load)
}

// fmtLoadVec renders a grid point as "(0.30,0.05)".
func fmtLoadVec(vec []float64) string {
	s := "("
	for i, v := range vec {
		if i > 0 {
			s += ","
		}
		s += fmt.Sprintf("%.2f", v)
	}
	return s + ")"
}

// Run executes the scenario on the calling goroutine. The outcome is a
// pure function of the scenario value: every random stream is derived from
// the effective seed, so any two runs — serial or inside a parallel sweep —
// produce identical results.
func (sc Scenario) Run(ctx context.Context) CellResult {
	sc.Cluster.Seed = sc.seed()
	res := CellResult{
		Name:     sc.label(),
		Policy:   sc.Policy.Name,
		Workload: sc.Workload.Label(),
		Variant:  sc.Variant,
		Load:     sc.load(),
		LoadVec:  sc.LoadVec,
		Seed:     sc.Cluster.Seed,
	}
	start := time.Now()
	if sc.LoadVec != nil {
		vw, ok := sc.Workload.(VectorWorkload)
		if !ok {
			panic(fmt.Sprintf("experiments: workload %q cannot run a load vector (does not implement VectorWorkload)", sc.Workload.Label()))
		}
		res.Outcome, res.Err = vw.RunVector(ctx, sc.Cluster, sc.Policy, sc.LoadVec)
	} else {
		res.Outcome, res.Err = sc.Workload.Run(ctx, sc.Cluster, sc.Policy, sc.load())
	}
	res.Wall = time.Since(start)
	return res
}

// CellResult is the outcome of one scenario.
type CellResult struct {
	// Index is the scenario's position in the Runner's input.
	Index int
	// Name, Policy, Workload, Variant, Load, Seed identify the cell.
	// LoadVec is the per-service load vector for grid-sweep cells (nil
	// for scalar cells).
	Name     string
	Policy   string
	Workload string
	Variant  string
	Load     float64
	LoadVec  []float64
	Seed     uint64
	// Outcome is the workload's measurement (partial when Err != nil,
	// zero when the cell was skipped after cancellation).
	Outcome CellOutcome
	// Wall is the host wall-clock cost of the cell. It is the only field
	// that is not a deterministic function of the scenario.
	Wall time.Duration
	// Err is non-nil when the cell was cancelled before or during its run.
	Err error
}

// Skipped reports whether the cell never ran (sweep cancelled first).
func (c CellResult) Skipped() bool { return c.Err != nil && c.Outcome.RT == nil }
