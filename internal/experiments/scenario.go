package experiments

import (
	"context"
	"fmt"
	"time"
)

// Scenario is one fully specified experiment cell: a cluster, a policy,
// a workload, and the workload's load point. Scenarios are values — build
// them directly, or let Sweep enumerate a cross product.
type Scenario struct {
	// Name labels the cell in progress lines and artifacts; empty derives
	// "<policy> <workload> load=<load>".
	Name     string
	Cluster  ClusterConfig
	Policy   PolicySpec
	Workload Workload
	// Variant labels the topology variant the Cluster was derived from
	// (set by Sweep.Scenarios; empty for the identity variant).
	Variant string
	// Load is the workload intensity (default 1).
	Load float64
	// Seed, when nonzero, overrides Cluster.Seed — the replication axis.
	Seed uint64
}

func (sc Scenario) load() float64 {
	if sc.Load == 0 {
		return 1
	}
	return sc.Load
}

// seed returns the effective seed: the Seed override when set, else the
// cluster's.
func (sc Scenario) seed() uint64 {
	if sc.Seed != 0 {
		return sc.Seed
	}
	return sc.Cluster.Seed
}

func (sc Scenario) label() string {
	if sc.Name != "" {
		return sc.Name
	}
	if sc.Variant != "" {
		return fmt.Sprintf("%s/%s %s load=%.2f", sc.Policy.Name, sc.Variant, sc.Workload.Label(), sc.load())
	}
	return fmt.Sprintf("%s %s load=%.2f", sc.Policy.Name, sc.Workload.Label(), sc.load())
}

// Run executes the scenario on the calling goroutine. The outcome is a
// pure function of the scenario value: every random stream is derived from
// the effective seed, so any two runs — serial or inside a parallel sweep —
// produce identical results.
func (sc Scenario) Run(ctx context.Context) CellResult {
	sc.Cluster.Seed = sc.seed()
	res := CellResult{
		Name:     sc.label(),
		Policy:   sc.Policy.Name,
		Workload: sc.Workload.Label(),
		Variant:  sc.Variant,
		Load:     sc.load(),
		Seed:     sc.Cluster.Seed,
	}
	start := time.Now()
	res.Outcome, res.Err = sc.Workload.Run(ctx, sc.Cluster, sc.Policy, sc.load())
	res.Wall = time.Since(start)
	return res
}

// CellResult is the outcome of one scenario.
type CellResult struct {
	// Index is the scenario's position in the Runner's input.
	Index int
	// Name, Policy, Workload, Variant, Load, Seed identify the cell.
	Name     string
	Policy   string
	Workload string
	Variant  string
	Load     float64
	Seed     uint64
	// Outcome is the workload's measurement (partial when Err != nil,
	// zero when the cell was skipped after cancellation).
	Outcome CellOutcome
	// Wall is the host wall-clock cost of the cell. It is the only field
	// that is not a deterministic function of the scenario.
	Wall time.Duration
	// Err is non-nil when the cell was cancelled before or during its run.
	Err error
}

// Skipped reports whether the cell never ran (sweep cancelled first).
func (c CellResult) Skipped() bool { return c.Err != nil && c.Outcome.RT == nil }
