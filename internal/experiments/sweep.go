package experiments

// Sweep enumerates the cross product policies × loads × seeds over one
// workload — "run policy set P over workload W on cluster C, swept over
// load points, replicated over seeds" as a single value. Expand it with
// Scenarios, or hand it to Runner.RunSweep.
type Sweep struct {
	Cluster ClusterConfig
	// Policies defaults to PaperPolicies().
	Policies []PolicySpec
	// Loads are the workload intensities to sweep (default {1}).
	Loads []float64
	// Seeds is the replication axis (default {Cluster.Seed}).
	Seeds []uint64
	// Workload is required.
	Workload Workload
}

func (s Sweep) withDefaults() Sweep {
	if len(s.Policies) == 0 {
		s.Policies = PaperPolicies()
	}
	if len(s.Loads) == 0 {
		s.Loads = []float64{1}
	}
	if len(s.Seeds) == 0 {
		s.Seeds = []uint64{s.Cluster.Seed}
	}
	return s
}

// Size returns the number of cells in the cross product.
func (s Sweep) Size() int {
	s = s.withDefaults()
	return len(s.Policies) * len(s.Loads) * len(s.Seeds)
}

// Scenarios expands the cross product in deterministic order:
// policy-major, then load, then seed. The scenario at (pi, li, si) has
// index (pi×len(Loads)+li)×len(Seeds)+si — SweepResult.Cell inverts this.
func (s Sweep) Scenarios() []Scenario {
	s = s.withDefaults()
	out := make([]Scenario, 0, s.Size())
	for _, spec := range s.Policies {
		for _, load := range s.Loads {
			for _, seed := range s.Seeds {
				out = append(out, Scenario{
					Cluster:  s.Cluster,
					Policy:   spec,
					Workload: s.Workload,
					Load:     load,
					Seed:     seed,
				})
			}
		}
	}
	return out
}

// DeriveSeeds expands a base seed into n well-separated seeds for the
// replication axis (SplitMix64 over the base).
func DeriveSeeds(base uint64, n int) []uint64 {
	out := make([]uint64, n)
	x := base
	for i := range out {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		out[i] = z ^ (z >> 31)
	}
	return out
}

// SweepResult indexes the runner's flat cell slice by the sweep's axes.
type SweepResult struct {
	Policies []PolicySpec
	Loads    []float64
	Seeds    []uint64
	// Cells holds one result per scenario, in Scenarios() order.
	Cells []CellResult
}

// Cell returns the result at (policy pi, load li, seed si).
func (r SweepResult) Cell(pi, li, si int) CellResult {
	return r.Cells[(pi*len(r.Loads)+li)*len(r.Seeds)+si]
}
