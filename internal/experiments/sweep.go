package experiments

// ClusterVariant derives a topology variant from a sweep's base cluster
// — the topology/event axis. Variants sweep what ClusterConfig alone
// cannot express as a scalar: replica counts, miss-fallback schemes,
// lifecycle-event schedules (see RunFailover and RunChurn).
type ClusterVariant struct {
	// Name labels the variant in cell names and artifacts. Empty names
	// the identity variant.
	Name string
	// Apply derives the variant's cluster from the base (nil = identity).
	Apply func(ClusterConfig) ClusterConfig
}

// Sweep enumerates the cross product policies × variants × loads × seeds
// over one workload — "run policy set P over workload W on cluster C (and
// its topology variants), swept over load points, replicated over seeds"
// as a single value. Expand it with Scenarios, or hand it to
// Runner.RunSweep.
type Sweep struct {
	Cluster ClusterConfig
	// Policies defaults to PaperPolicies().
	Policies []PolicySpec
	// Variants is the topology/event axis (default: the identity
	// variant alone).
	Variants []ClusterVariant
	// Loads are the workload intensities to sweep (default {1}).
	Loads []float64
	// Seeds is the replication axis (default {Cluster.Seed}).
	Seeds []uint64
	// Workload is required.
	Workload Workload
}

func (s Sweep) withDefaults() Sweep {
	if len(s.Policies) == 0 {
		s.Policies = PaperPolicies()
	}
	if len(s.Variants) == 0 {
		s.Variants = []ClusterVariant{{}}
	}
	if len(s.Loads) == 0 {
		s.Loads = []float64{1}
	}
	if len(s.Seeds) == 0 {
		s.Seeds = []uint64{s.Cluster.Seed}
	}
	return s
}

// Size returns the number of cells in the cross product.
func (s Sweep) Size() int {
	s = s.withDefaults()
	return len(s.Policies) * len(s.Variants) * len(s.Loads) * len(s.Seeds)
}

// Scenarios expands the cross product in deterministic order:
// policy-major, then variant, then load, then seed. The scenario at
// (pi, vi, li, si) has index ((pi×V+vi)×L+li)×S+si —
// SweepResult.CellAt inverts this.
func (s Sweep) Scenarios() []Scenario {
	s = s.withDefaults()
	out := make([]Scenario, 0, s.Size())
	for _, spec := range s.Policies {
		for _, va := range s.Variants {
			cluster := s.Cluster
			if va.Apply != nil {
				cluster = va.Apply(cluster)
			}
			for _, load := range s.Loads {
				for _, seed := range s.Seeds {
					out = append(out, Scenario{
						Cluster:  cluster,
						Policy:   spec,
						Variant:  va.Name,
						Workload: s.Workload,
						Load:     load,
						Seed:     seed,
					})
				}
			}
		}
	}
	return out
}

// DeriveSeeds expands a base seed into n well-separated seeds for the
// replication axis (SplitMix64 over the base).
func DeriveSeeds(base uint64, n int) []uint64 {
	out := make([]uint64, n)
	x := base
	for i := range out {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		out[i] = z ^ (z >> 31)
	}
	return out
}

// SweepResult indexes the runner's flat cell slice by the sweep's axes.
type SweepResult struct {
	Policies []PolicySpec
	Variants []ClusterVariant
	Loads    []float64
	Seeds    []uint64
	// Cells holds one result per scenario, in Scenarios() order.
	Cells []CellResult
}

// variants returns the variant-axis length (1 for pre-variant results).
func (r SweepResult) variants() int {
	if len(r.Variants) == 0 {
		return 1
	}
	return len(r.Variants)
}

// Cell returns the result at (policy pi, load li, seed si) of the first
// (for variant-free sweeps, the only) topology variant.
func (r SweepResult) Cell(pi, li, si int) CellResult {
	return r.CellAt(pi, 0, li, si)
}

// CellAt returns the result at (policy pi, variant vi, load li, seed si).
func (r SweepResult) CellAt(pi, vi, li, si int) CellResult {
	return r.Cells[((pi*r.variants()+vi)*len(r.Loads)+li)*len(r.Seeds)+si]
}
