package experiments

import "fmt"

// ClusterVariant derives a topology variant from a sweep's base cluster
// — the topology/event axis. Variants sweep what ClusterConfig alone
// cannot express as a scalar: replica counts, miss-fallback schemes,
// lifecycle-event schedules (see RunFailover and RunChurn).
type ClusterVariant struct {
	// Name labels the variant in cell names and artifacts. Empty names
	// the identity variant.
	Name string
	// Apply derives the variant's cluster from the base (nil = identity).
	Apply func(ClusterConfig) ClusterConfig
}

// LoadGrid is a vector load axis: Axes[d] lists the values swept along
// dimension d and the grid is their cross product, enumerated row-major
// (the last axis varies fastest). Each grid point is a per-service
// ρ-vector that rides the workload's per-service load plumbing
// (MultiServiceWorkload.ServiceLoads): point[d] pins service d's load,
// so axis d must align with service d and every value must be > 0 — a
// zero would read as "track the scalar load" (ServiceLoad's unset
// convention) and silently collapse the grid.
type LoadGrid struct {
	// AxisNames label the dimensions in artifacts ("web", "batch").
	// Optional; when set, must match len(Axes).
	AxisNames []string
	// Axes[d] lists dimension d's swept values, each > 0.
	Axes [][]float64
}

// Empty reports whether the grid has no axes (scalar sweep).
func (g LoadGrid) Empty() bool { return len(g.Axes) == 0 }

// Size returns the number of grid points (product of axis lengths).
func (g LoadGrid) Size() int {
	if g.Empty() {
		return 0
	}
	n := 1
	for _, ax := range g.Axes {
		n *= len(ax)
	}
	return n
}

// Points enumerates the cross product row-major: the last axis varies
// fastest, so a web×batch grid lists all batch values at the first web
// value, then the next web value, … Point order is the sweep's load
// axis order.
func (g LoadGrid) Points() [][]float64 {
	if g.Empty() {
		return nil
	}
	dims := len(g.Axes)
	out := make([][]float64, 0, g.Size())
	idx := make([]int, dims)
	for {
		pt := make([]float64, dims)
		for d, ax := range g.Axes {
			pt[d] = ax[idx[d]]
		}
		out = append(out, pt)
		d := dims - 1
		for d >= 0 {
			idx[d]++
			if idx[d] < len(g.Axes[d]) {
				break
			}
			idx[d] = 0
			d--
		}
		if d < 0 {
			return out
		}
	}
}

// Neighbors returns the grid-point indexes adjacent to point i: those
// differing by ±1 along exactly one axis. Used by adaptive replication
// to locate policy-crossover boundaries.
func (g LoadGrid) Neighbors(i int) []int {
	if g.Empty() {
		return nil
	}
	// Decompose i into per-axis indexes (row-major, last axis fastest).
	dims := len(g.Axes)
	idx := make([]int, dims)
	rem := i
	for d := dims - 1; d >= 0; d-- {
		idx[d] = rem % len(g.Axes[d])
		rem /= len(g.Axes[d])
	}
	stride := make([]int, dims)
	s := 1
	for d := dims - 1; d >= 0; d-- {
		stride[d] = s
		s *= len(g.Axes[d])
	}
	var out []int
	for d := 0; d < dims; d++ {
		if idx[d] > 0 {
			out = append(out, i-stride[d])
		}
		if idx[d] < len(g.Axes[d])-1 {
			out = append(out, i+stride[d])
		}
	}
	return out
}

// Sweep enumerates the cross product policies × variants × loads × seeds
// over one workload — "run policy set P over workload W on cluster C (and
// its topology variants), swept over load points, replicated over seeds"
// as a single value. Expand it with Scenarios, or hand it to
// Runner.RunSweep.
type Sweep struct {
	Cluster ClusterConfig
	// Policies defaults to PaperPolicies().
	Policies []PolicySpec
	// Variants is the topology/event axis (default: the identity
	// variant alone).
	Variants []ClusterVariant
	// Loads are the workload intensities to sweep (default {1}).
	// Mutually exclusive with LoadGrid.
	Loads []float64
	// LoadGrid, when non-empty, replaces the scalar Loads axis with the
	// cross product of per-service load vectors: one load point per grid
	// point, each dispatched through VectorWorkload.RunVector. The
	// scalar load recorded for a grid cell is its last-axis value (the
	// innermost knob), mirroring how the batch axis labels interference
	// rows.
	LoadGrid LoadGrid
	// Seeds is the replication axis (default {Cluster.Seed}).
	Seeds []uint64
	// Adaptive configures adaptive replication for Runner.RunSweepStats
	// (zero value = fixed replication over Seeds). RunSweep ignores it.
	Adaptive Adaptive
	// Workload is required.
	Workload Workload
}

func (s Sweep) withDefaults() Sweep {
	if len(s.Policies) == 0 {
		s.Policies = PaperPolicies()
	}
	if len(s.Variants) == 0 {
		s.Variants = []ClusterVariant{{}}
	}
	if len(s.Loads) == 0 && s.LoadGrid.Empty() {
		s.Loads = []float64{1}
	}
	if !s.LoadGrid.Empty() && len(s.Loads) > 0 {
		panic("experiments: Sweep.Loads and Sweep.LoadGrid are mutually exclusive")
	}
	if len(s.Seeds) == 0 {
		s.Seeds = []uint64{s.Cluster.Seed}
	}
	return s
}

// loadPoints returns the load-axis length: grid points when a LoadGrid
// is set, scalar loads otherwise.
func (s Sweep) loadPoints() int {
	if !s.LoadGrid.Empty() {
		return s.LoadGrid.Size()
	}
	return len(s.Loads)
}

// loadLabels returns the scalar label of every load point: Loads for a
// scalar sweep, each point's last-axis value for a grid sweep.
func (s Sweep) loadLabels() []float64 {
	if s.LoadGrid.Empty() {
		return s.Loads
	}
	pts := s.LoadGrid.Points()
	out := make([]float64, len(pts))
	for i, pt := range pts {
		out[i] = pt[len(pt)-1]
	}
	return out
}

// Size returns the number of cells in the cross product.
func (s Sweep) Size() int {
	s = s.withDefaults()
	return len(s.Policies) * len(s.Variants) * s.loadPoints() * len(s.Seeds)
}

// cellScenarios expands the policy × variant × load-point axes (no seed
// axis) in canonical order: policy-major, then variant, then load. The
// defaults must already be applied. Scenarios and the adaptive
// replication controller both derive their enumeration from this one
// list, so cell order is identical everywhere.
func (s Sweep) cellScenarios() []Scenario {
	grid := s.LoadGrid.Points()
	labels := s.loadLabels()
	out := make([]Scenario, 0, len(s.Policies)*len(s.Variants)*s.loadPoints())
	for _, spec := range s.Policies {
		for _, va := range s.Variants {
			cluster := s.Cluster
			if va.Apply != nil {
				cluster = va.Apply(cluster)
			}
			for li := 0; li < s.loadPoints(); li++ {
				sc := Scenario{
					Cluster:  cluster,
					Policy:   spec,
					Variant:  va.Name,
					Workload: s.Workload,
					Load:     labels[li],
				}
				if grid != nil {
					sc.LoadVec = grid[li]
				}
				out = append(out, sc)
			}
		}
	}
	return out
}

// Scenarios expands the cross product in deterministic order:
// policy-major, then variant, then load, then seed. The scenario at
// (pi, vi, li, si) has index ((pi×V+vi)×L+li)×S+si —
// SweepResult.CellAt inverts this.
func (s Sweep) Scenarios() []Scenario {
	s = s.withDefaults()
	out := make([]Scenario, 0, s.Size())
	for _, sc := range s.cellScenarios() {
		for _, seed := range s.Seeds {
			rep := sc
			rep.Seed = seed
			out = append(out, rep)
		}
	}
	return out
}

// DeriveSeeds expands a base seed into n well-separated, pairwise
// distinct, nonzero seeds for the replication axis (SplitMix64 over
// the base). The guard matters: a derived 0 would fall back to
// Cluster.Seed inside Scenario.seed(), and a duplicate would silently
// shrink the effective replication count — both bias confidence
// intervals narrow, which is exactly what an adaptive early stopper
// must not see. Zero or already-emitted values are skipped by
// advancing the underlying stream until a fresh seed appears.
func DeriveSeeds(base uint64, n int) []uint64 {
	return ExtendSeeds(nil, base, n)
}

// ExtendSeeds appends n seeds derived from base to existing, skipping
// zero and anything already present (in existing or among the new
// draws), and returns the combined slice. The adaptive replication
// controller uses it to grow a user-supplied seed list to MaxSeeds
// without colliding with the seeds already spent.
func ExtendSeeds(existing []uint64, base uint64, n int) []uint64 {
	seen := make(map[uint64]bool, len(existing)+n)
	for _, s := range existing {
		seen[s] = true
	}
	out := append([]uint64(nil), existing...)
	x := base
	for added := 0; added < n; {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		if z == 0 || seen[z] {
			continue
		}
		seen[z] = true
		out = append(out, z)
		added++
	}
	return out
}

// SweepResult indexes the runner's flat cell slice by the sweep's axes.
type SweepResult struct {
	Policies []PolicySpec
	Variants []ClusterVariant
	Loads    []float64
	// LoadVecs is the vector load axis of a grid sweep (one per-service
	// ρ-vector per load point, in load-axis order); nil for scalar
	// sweeps. When set, Loads holds each point's scalar label.
	LoadVecs [][]float64
	Seeds    []uint64
	// CellSeeds, when non-nil, records each logical cell's replicate
	// seeds in cell order — the ragged layout adaptive replication
	// produces. Cells then holds cell 0's replicates, then cell 1's, …
	// and CellAt resolves seed indexes against the cell's own count
	// instead of a uniform len(Seeds).
	CellSeeds [][]uint64
	// Cells holds one result per scenario, in Scenarios() order (or, for
	// ragged results, grouped per logical cell in the same cell order).
	Cells []CellResult
}

// variants returns the variant-axis length (1 for pre-variant results).
func (r SweepResult) variants() int {
	if len(r.Variants) == 0 {
		return 1
	}
	return len(r.Variants)
}

// Cell returns the result at (policy pi, load li, seed si) of the first
// (for variant-free sweeps, the only) topology variant.
func (r SweepResult) Cell(pi, li, si int) CellResult {
	return r.CellAt(pi, 0, li, si)
}

// cellIndex returns the logical cell index of (pi, vi, li), panicking
// with a description on any out-of-range axis index — the old flat
// arithmetic silently read a neighboring cell instead.
func (r SweepResult) cellIndex(pi, vi, li int) int {
	v, l := r.variants(), len(r.Loads)
	if pi < 0 || pi >= len(r.Policies) || vi < 0 || vi >= v || li < 0 || li >= l {
		panic(fmt.Sprintf(
			"experiments: cell (policy %d, variant %d, load %d) out of range for %d policies × %d variants × %d loads",
			pi, vi, li, len(r.Policies), v, l))
	}
	return (pi*v+vi)*l + li
}

// SeedsAt returns the replicate seeds of logical cell (pi, vi, li):
// the cell's own list for ragged results, the shared Seeds axis
// otherwise.
func (r SweepResult) SeedsAt(pi, vi, li int) []uint64 {
	ci := r.cellIndex(pi, vi, li)
	if r.CellSeeds != nil {
		return r.CellSeeds[ci]
	}
	return r.Seeds
}

// Replicates returns the replicate results of logical cell (pi, vi,
// li), robust to ragged per-cell seed counts (adaptive replication).
func (r SweepResult) Replicates(pi, vi, li int) []CellResult {
	ci := r.cellIndex(pi, vi, li)
	if r.CellSeeds != nil {
		off := 0
		for _, seeds := range r.CellSeeds[:ci] {
			off += len(seeds)
		}
		return r.Cells[off : off+len(r.CellSeeds[ci])]
	}
	return r.Cells[ci*len(r.Seeds) : (ci+1)*len(r.Seeds)]
}

// CellAt returns the result at (policy pi, variant vi, load li, seed
// si). All four indexes are bounds-checked — si against the cell's own
// replicate count when the result is ragged — and an out-of-range
// index panics with a description instead of silently returning a
// neighboring cell.
func (r SweepResult) CellAt(pi, vi, li, si int) CellResult {
	reps := r.Replicates(pi, vi, li)
	if si < 0 || si >= len(reps) {
		panic(fmt.Sprintf(
			"experiments: seed index %d out of range for cell (policy %d, variant %d, load %d) with %d replicates",
			si, pi, vi, li, len(reps)))
	}
	return reps[si]
}
