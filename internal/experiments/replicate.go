package experiments

import (
	"context"
	"fmt"
	"math"
	"time"

	"srlb/internal/plot"
	"srlb/internal/stats"
)

// CellStats aggregates the replicates of one logical cell — the same
// (policy, workload, load) run under every seed of the sweep's
// replication axis — into mean ± 95% CI per metric. Each metric is a
// stats.Replicated: the raw per-seed values plus the Dist of their
// float64 projection (durations project to seconds).
//
// A CellStats over a single seed degenerates gracefully: the point
// estimates equal the underlying cell's and every CI95 is +Inf
// ("unknown", not "exact" — see the stats package documentation;
// serialization boundaries report the sentinel as 0 via
// stats.Dist.ReportedCI95).
type CellStats struct {
	// Name, Policy, Workload, Variant, Load identify the logical cell.
	Name     string
	Policy   string
	Workload string
	Variant  string
	Load     float64
	// LoadVec is the cell's per-service load vector for grid sweeps
	// (Sweep.LoadGrid); nil for scalar sweeps.
	LoadVec []float64
	// StopReason records why adaptive replication stopped adding seeds
	// to this cell (StopConverged, StopMaxSeeds); empty under fixed
	// replication.
	StopReason string
	// Seeds lists the replicates that ran to completion. Cancelled
	// replicates — skipped or interrupted mid-run — are dropped, so N()
	// can be smaller than the sweep's seed count.
	Seeds []uint64
	// Mean, Median, P95, P99 summarize the per-seed response-time
	// statistics, projected to seconds.
	Mean, Median, P95, P99 stats.Replicated[time.Duration]
	// OKFraction, Refused and Unfinished summarize the per-seed
	// completion accounting.
	OKFraction stats.Replicated[float64]
	Refused    stats.Replicated[int]
	Unfinished stats.Replicated[int]
	// VIPs breaks the aggregates down by service for multi-VIP cells
	// (one VIPStats per service, aligned with CellOutcome.PerVIP); nil
	// for single-VIP workloads.
	VIPs []VIPStats
	// Wall is the summed host wall-clock over the replicates.
	Wall time.Duration
}

// VIPStats is one service's share of a CellStats: the same per-metric
// mean ± CI aggregation, restricted to queries addressed to that VIP.
type VIPStats struct {
	// Name is the service name; Workload labels its arrival process.
	Name     string
	Workload string
	// Load is the service's own resolved load point (identical across
	// replicates — the per-service load axis of schema v5).
	Load float64
	// Mean, Median, P95, P99 summarize the per-seed response-time
	// statistics of this VIP's completed queries.
	Mean, Median, P95, P99 stats.Replicated[time.Duration]
	// OKFraction, Offered, Refused, Unfinished summarize the per-seed
	// completion accounting of this VIP.
	OKFraction stats.Replicated[float64]
	Offered    stats.Replicated[int]
	Refused    stats.Replicated[int]
	Unfinished stats.Replicated[int]
}

// N returns the number of completed replicates.
func (c CellStats) N() int { return len(c.Seeds) }

// MeanRT returns the across-seed mean of per-seed mean response times.
func (c CellStats) MeanRT() time.Duration { return secDur(c.Mean.Dist.Mean) }

// MeanCI95 returns the CI half-width of MeanRT (0 when the interval is
// unknown, i.e. fewer than two completed replicates).
func (c CellStats) MeanCI95() time.Duration { return secDur(c.Mean.Dist.ReportedCI95()) }

// secDur converts seconds to a duration. Non-finite input — the
// "unknown interval" sentinel of stats.Dist.CI95 at n < 2 — maps to 0
// rather than overflowing into a garbage duration.
func secDur(sec float64) time.Duration {
	if math.IsInf(sec, 0) || math.IsNaN(sec) {
		return 0
	}
	return time.Duration(sec * float64(time.Second))
}

// durSeconds is the projection used for response-time metrics.
func durSeconds(d time.Duration) float64 { return d.Seconds() }

// newCellStats folds replicate cells (same logical cell, different
// seeds) into a CellStats. Skipped cells are dropped; an all-skipped
// group yields a CellStats with N() == 0 and zero metrics.
func newCellStats(cells []CellResult) CellStats {
	var (
		cs         CellStats
		means      []time.Duration
		medians    []time.Duration
		p95s       []time.Duration
		p99s       []time.Duration
		okFracs    []float64
		refused    []int
		unfinished []int
	)
	for _, c := range cells {
		cs.Wall += c.Wall
		// Err != nil (not just Skipped) — a cell cancelled mid-run holds
		// a truncated recorder whose statistics would silently skew the
		// aggregate.
		if c.Err != nil {
			continue
		}
		if len(cs.Seeds) == 0 {
			cs.Name, cs.Policy, cs.Workload, cs.Variant, cs.Load = c.Name, c.Policy, c.Workload, c.Variant, c.Load
			cs.LoadVec = c.LoadVec
		}
		cs.Seeds = append(cs.Seeds, c.Seed)
		means = append(means, c.Outcome.RT.Mean())
		medians = append(medians, c.Outcome.RT.Median())
		p95s = append(p95s, c.Outcome.RT.Quantile(0.95))
		p99s = append(p99s, c.Outcome.RT.Quantile(0.99))
		okFracs = append(okFracs, c.Outcome.OKFraction())
		refused = append(refused, c.Outcome.Refused)
		unfinished = append(unfinished, c.Outcome.Unfinished)
	}
	intVal := func(n int) float64 { return float64(n) }
	cs.Mean = stats.NewReplicated(means, durSeconds)
	cs.Median = stats.NewReplicated(medians, durSeconds)
	cs.P95 = stats.NewReplicated(p95s, durSeconds)
	cs.P99 = stats.NewReplicated(p99s, durSeconds)
	cs.OKFraction = stats.NewReplicated(okFracs, func(f float64) float64 { return f })
	cs.Refused = stats.NewReplicated(refused, intVal)
	cs.Unfinished = stats.NewReplicated(unfinished, intVal)
	cs.VIPs = newVIPStats(cells)
	return cs
}

// newVIPStats folds the per-VIP breakdowns of the completed replicates —
// a multi-VIP workload produces the same services in the same order in
// every replicate, so VIP i aligns across cells. Single-VIP cells (no
// PerVIP) yield nil.
func newVIPStats(cells []CellResult) []VIPStats {
	var completed []CellResult
	for _, c := range cells {
		if c.Err == nil && len(c.Outcome.PerVIP) > 0 {
			completed = append(completed, c)
		}
	}
	if len(completed) == 0 {
		return nil
	}
	intVal := func(n int) float64 { return float64(n) }
	nVIPs := len(completed[0].Outcome.PerVIP)
	out := make([]VIPStats, nVIPs)
	for vi := range out {
		var (
			means, medians, p95s, p99s   []time.Duration
			okFracs                      []float64
			offered, refused, unfinished []int
		)
		for _, c := range completed {
			vo := c.Outcome.PerVIP[vi]
			means = append(means, vo.RT.Mean())
			medians = append(medians, vo.RT.Median())
			p95s = append(p95s, vo.RT.Quantile(0.95))
			p99s = append(p99s, vo.RT.Quantile(0.99))
			okFracs = append(okFracs, vo.OKFraction())
			offered = append(offered, vo.Offered)
			refused = append(refused, vo.Refused)
			unfinished = append(unfinished, vo.Unfinished)
		}
		first := completed[0].Outcome.PerVIP[vi]
		out[vi] = VIPStats{
			Name:       first.Name,
			Workload:   first.Workload,
			Load:       first.Load,
			Mean:       stats.NewReplicated(means, durSeconds),
			Median:     stats.NewReplicated(medians, durSeconds),
			P95:        stats.NewReplicated(p95s, durSeconds),
			P99:        stats.NewReplicated(p99s, durSeconds),
			OKFraction: stats.NewReplicated(okFracs, func(f float64) float64 { return f }),
			Offered:    stats.NewReplicated(offered, intVal),
			Refused:    stats.NewReplicated(refused, intVal),
			Unfinished: stats.NewReplicated(unfinished, intVal),
		}
	}
	return out
}

// replicateScenarios expands each scenario across the seeds,
// scenario-major, so the replicates of scenario i are the adjacent
// cells [i*len(seeds), (i+1)*len(seeds)) of the Runner's output —
// ready for newCellStats. This is the explicit-scenario counterpart of
// Sweep's own Seeds axis.
func replicateScenarios(scenarios []Scenario, seeds []uint64) []Scenario {
	out := make([]Scenario, 0, len(scenarios)*len(seeds))
	for _, sc := range scenarios {
		for _, seed := range seeds {
			rep := sc
			rep.Seed = seed
			out = append(out, rep)
		}
	}
	return out
}

// SweepStats is a SweepResult with the replication axis folded away:
// one CellStats per (policy, variant, load), each aggregating
// len(Seeds) replicates.
type SweepStats struct {
	Policies []PolicySpec
	Variants []ClusterVariant
	Loads    []float64
	// LoadVecs is the vector load axis of a grid sweep (nil for scalar
	// sweeps); when set, Loads holds each point's scalar label.
	LoadVecs [][]float64
	// Seeds is the sweep's replication axis (the requested seeds — for
	// an adaptive run, the full seed universe up to MaxSeeds; a cell's
	// own Seeds field lists the ones that actually ran and completed).
	Seeds []uint64
	// Cells holds one aggregate per (policy, variant, load),
	// policy-major — the same order as SweepResult with the seed axis
	// removed.
	Cells []CellStats
}

// variants returns the variant-axis length (1 for pre-variant results).
func (s SweepStats) variants() int {
	if len(s.Variants) == 0 {
		return 1
	}
	return len(s.Variants)
}

// Cell returns the aggregate at (policy pi, load li) of the first (for
// variant-free sweeps, the only) topology variant.
func (s SweepStats) Cell(pi, li int) CellStats {
	return s.CellAt(pi, 0, li)
}

// CellAt returns the aggregate at (policy pi, variant vi, load li).
// Out-of-range indexes panic with a description instead of silently
// reading a neighboring cell.
func (s SweepStats) CellAt(pi, vi, li int) CellStats {
	v, l := s.variants(), len(s.Loads)
	if pi < 0 || pi >= len(s.Policies) || vi < 0 || vi >= v || li < 0 || li >= l {
		panic(fmt.Sprintf(
			"experiments: cell (policy %d, variant %d, load %d) out of range for %d policies × %d variants × %d loads",
			pi, vi, li, len(s.Policies), v, l))
	}
	return s.Cells[(pi*v+vi)*l+li]
}

// Aggregate folds the replication axis: each logical cell's replicates
// — len(Seeds) adjacent cells for a uniform sweep, the cell's own
// CellSeeds group for a ragged (adaptive) one — become one CellStats.
// This is the step that turns a replicated sweep into per-cell
// mean ± CI.
func (r SweepResult) Aggregate() SweepStats {
	agg := SweepStats{
		Policies: r.Policies,
		Variants: r.Variants,
		Loads:    r.Loads,
		LoadVecs: r.LoadVecs,
		Seeds:    r.Seeds,
		Cells:    make([]CellStats, 0, len(r.Policies)*r.variants()*len(r.Loads)),
	}
	for pi := range r.Policies {
		for vi := 0; vi < r.variants(); vi++ {
			for li := range r.Loads {
				agg.Cells = append(agg.Cells, newCellStats(r.Replicates(pi, vi, li)))
			}
		}
	}
	return agg
}

// PlotSeries renders the aggregate as mean-RT-vs-load lines — one
// plot.Series per (policy, variant), y in seconds, with the per-point
// Student-t 95% half-width as the error bar. Replicated sweeps thus
// plot their CIs; single-seed sweeps degrade to plain lines (an
// unknown half-width reports as zero). Grid sweeps should render as
// heatmaps instead — here every grid row collapses onto the last-axis
// label.
func (s SweepStats) PlotSeries() []plot.Series {
	out := make([]plot.Series, 0, len(s.Policies)*s.variants())
	for pi, spec := range s.Policies {
		for vi := 0; vi < s.variants(); vi++ {
			name := spec.Name
			if len(s.Variants) > vi && s.Variants[vi].Name != "" {
				name = fmt.Sprintf("%s/%s", spec.Name, s.Variants[vi].Name)
			}
			ser := plot.Series{
				Name: name,
				X:    make([]float64, 0, len(s.Loads)),
				Y:    make([]float64, 0, len(s.Loads)),
				YErr: make([]float64, 0, len(s.Loads)),
			}
			for li, load := range s.Loads {
				cs := s.CellAt(pi, vi, li)
				if cs.N() == 0 {
					continue
				}
				ser.X = append(ser.X, load)
				ser.Y = append(ser.Y, cs.Mean.Dist.Mean)
				ser.YErr = append(ser.YErr, cs.Mean.Dist.ReportedCI95())
			}
			out = append(out, ser)
		}
	}
	return out
}

// RunSweepStats expands and executes the sweep, then aggregates the
// replication axis — the one-call way to get per-cell mean ± CI out of
// a Sweep with several Seeds. When the sweep carries an enabled
// Adaptive config the replication axis is grown adaptively instead of
// run wholesale (see Adaptive). The error mirrors RunSweep's: non-nil
// only on cancellation, with the aggregates over the cells that did
// finish.
func (r Runner) RunSweepStats(ctx context.Context, s Sweep) (SweepStats, error) {
	if s.Adaptive.enabled() {
		_, agg, err := r.RunSweepAdaptive(ctx, s)
		return agg, err
	}
	res, err := r.RunSweep(ctx, s)
	return res.Aggregate(), err
}
