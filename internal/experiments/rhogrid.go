// ρ-grid sweep: the four-way policy ablation {random2, chash2,
// wleastload, flowlet} run over a full web-ρ × batch-ρ load matrix on
// one shared pool, instead of pinning the web victim at a single load
// the way RunInterference and RunPolicies do. Every (ρ_w, ρ_b) grid
// point is one logical cell with its own replication axis, so the
// output is a per-policy heatmap of the victim's tail with per-cell
// confidence intervals attached.
//
// The grid is where adaptive replication (Sweep.Adaptive) earns its
// keep: the matrix multiplies cells by |web axis|, and most of them —
// deep in the underloaded corner, or hopelessly saturated — converge at
// the minimum replicate count, while the cells near policy crossovers
// soak up the saved budget. The experiment keeps the Runner's
// determinism contract: the grid, the per-cell seed counts and every
// statistic are byte-identical at 1 worker and N.
//
// RunRhoGrid is the canonical instance behind
// `srlb-bench -experiment rhogrid`.

package experiments

import (
	"context"
	"fmt"
	"io"
	"math"
	"time"

	"srlb/internal/feedback"
	"srlb/internal/metrics"
	"srlb/internal/plot"
	"srlb/internal/testbed"
)

// RhoGridConfig parameterizes the experiment.
type RhoGridConfig struct {
	Cluster ClusterConfig
	// Lambda0 is the shared pool's calibrated capacity rate (0 ⇒
	// measured via CalibrateCached on the base cluster).
	Lambda0 float64
	// WebRhos is the web (victim) load axis (default {0.3, 0.55, 0.8}).
	WebRhos []float64
	// BatchRhos is the batch (aggressor) load axis (default
	// {0.05, 0.2, 0.35, 0.5}).
	BatchRhos []float64
	// Queries sizes the fixed measurement window: every cell simulates
	// span = Queries/Lambda0 seconds (the ρ=1 window), so the web VIP
	// offers ≈ ρ_w × Queries arrivals and all grid cells measure the
	// same wall of simulated time (default 20000).
	Queries int
	// BatchPeak is the batch service's ON-state burst factor (default 4).
	BatchPeak float64
	// FlowletGap is the flowlet policy's idle gap (0 ⇒
	// selection.DefaultFlowletGap). Used only when Policies is empty.
	FlowletGap time.Duration
	// Feedback overrides the telemetry plane's tuning; Enabled is forced
	// on (the load-aware schemes need it).
	Feedback feedback.Config
	// Policies defaults to the four-way ablation
	// {Random2, CHash2, WeightedLeastLoadPolicy, FlowletPolicy}.
	Policies []PolicySpec
	// Seeds is the replication axis (default: the cluster seed alone;
	// adaptive runs extend it to Adaptive.MaxSeeds).
	Seeds []uint64
	// Adaptive configures adaptive replication (CITarget <= 0 runs the
	// fixed Seeds axis everywhere).
	Adaptive Adaptive
	Workers  int
	Progress func(string)
}

// RhoGridRow is one (web-ρ, batch-ρ, policy, service) outcome
// aggregated across the replication axis; Service "all" covers both
// services together.
type RhoGridRow struct {
	WebRho   float64
	BatchRho float64
	Policy   string
	Service  string
	// Load is the row's service's own resolved load (WebRho or BatchRho;
	// the larger of the two on "all" rows).
	Load float64
	// N counts completed replicates; StopReason is the adaptive
	// controller's verdict for the cell ("converged", "max-seeds";
	// empty under fixed replication).
	N                            int
	StopReason                   string
	Mean, MeanCI95, P99, P99CI95 time.Duration
	OKFrac, OKFracCI95           float64
	// Offered, Refused and Unfinished are across-seed mean counts.
	Offered, Refused, Unfinished float64
}

// RhoGridResult holds the full matrix.
type RhoGridResult struct {
	Lambda0   float64
	WebRhos   []float64
	BatchRhos []float64
	// Seeds is the full seed universe (up to Adaptive.MaxSeeds for
	// adaptive runs); per-cell completion counts live on the rows.
	Seeds []uint64
	// Services lists the service names in spec order (web, batch).
	Services []string
	// MaxSeeds is the per-cell replicate cap the run was budgeted
	// against (len(Seeds)); the fixed-replication budget is
	// grid cells × MaxSeeds replicates.
	MaxSeeds int
	// Adaptive reports whether the run used adaptive replication.
	Adaptive bool
	// Stats is the underlying replicated sweep — the machine-readable
	// artifact's source (schema v9 adds load_vec, per-cell n and
	// stop_reason).
	Stats SweepStats
	Rows  []RhoGridRow
}

// RunRhoGrid executes the experiment.
func RunRhoGrid(cfg RhoGridConfig) RhoGridResult {
	return RunRhoGridCtx(context.Background(), cfg)
}

// RunRhoGridCtx is RunRhoGrid with cancellation; cancelled cells are
// dropped from the aggregates.
func RunRhoGridCtx(ctx context.Context, cfg RhoGridConfig) RhoGridResult {
	cfg.Cluster = cfg.Cluster.withDefaults()
	if len(cfg.WebRhos) == 0 {
		cfg.WebRhos = []float64{0.3, 0.55, 0.8}
	}
	if len(cfg.BatchRhos) == 0 {
		cfg.BatchRhos = []float64{0.05, 0.2, 0.35, 0.5}
	}
	if cfg.Queries == 0 {
		cfg.Queries = 20000
	}
	if cfg.BatchPeak == 0 {
		cfg.BatchPeak = 4
	}
	if len(cfg.Policies) == 0 {
		cfg.Policies = []PolicySpec{
			Random2(), CHash2(), WeightedLeastLoadPolicy(), FlowletPolicy(cfg.FlowletGap),
		}
	}
	if cfg.Lambda0 == 0 {
		cal := CalibrateCached(CalibrationConfig{Cluster: cfg.Cluster})
		cfg.Lambda0 = cal.Lambda0
	}
	cfg.Cluster.Feedback = cfg.Feedback
	cfg.Cluster.Feedback.Enabled = true

	// Unlike RunPolicies, the web load is swept too, so no single
	// victim span exists; instead every cell simulates the same fixed
	// window (the ρ=1 span) with both services time-bounded to it.
	span := time.Duration(float64(cfg.Queries) / cfg.Lambda0 * float64(time.Second))
	workload := MultiServiceWorkload{
		Services: []ServiceSpec{
			{Name: "web", Pool: "shared", Workload: PoissonService{Lambda0: cfg.Lambda0, Horizon: span}},
			{Name: "batch", Pool: "shared", Workload: BurstyService{
				Lambda0: cfg.Lambda0, Horizon: span, PeakFactor: cfg.BatchPeak,
			}},
		},
		Pools:    []testbed.PoolSpec{{Name: "shared"}},
		CloseAck: true,
	}

	sweep := Sweep{
		Cluster:  cfg.Cluster,
		Policies: cfg.Policies,
		LoadGrid: LoadGrid{
			AxisNames: []string{"web", "batch"},
			Axes:      [][]float64{cfg.WebRhos, cfg.BatchRhos},
		},
		Seeds:    cfg.Seeds,
		Adaptive: cfg.Adaptive,
		Workload: workload,
	}
	runner := Runner{Workers: cfg.Workers, Progress: cfg.Progress}
	var agg SweepStats
	if cfg.Adaptive.enabled() {
		_, agg, _ = runner.RunSweepAdaptive(ctx, sweep)
	} else {
		agg, _ = runner.RunSweepStats(ctx, sweep)
	}

	res := RhoGridResult{
		Lambda0:   cfg.Lambda0,
		WebRhos:   cfg.WebRhos,
		BatchRhos: cfg.BatchRhos,
		Seeds:     agg.Seeds,
		MaxSeeds:  len(agg.Seeds),
		Adaptive:  cfg.Adaptive.enabled(),
		Stats:     agg,
	}
	for _, svc := range workload.Services {
		res.Services = append(res.Services, svc.Name)
	}
	for wi, webRho := range cfg.WebRhos {
		for bi, batchRho := range cfg.BatchRhos {
			li := wi*len(cfg.BatchRhos) + bi
			for pi, spec := range cfg.Policies {
				cs := agg.CellAt(pi, 0, li)
				if cs.N() == 0 {
					continue
				}
				var offered float64
				for _, vs := range cs.VIPs {
					offered += vs.Offered.Dist.Mean
				}
				res.Rows = append(res.Rows, RhoGridRow{
					WebRho: webRho, BatchRho: batchRho, Policy: spec.Name, Service: "all",
					Load: math.Max(webRho, batchRho), N: cs.N(), StopReason: cs.StopReason,
					Mean: secDur(cs.Mean.Dist.Mean), MeanCI95: secDur(cs.Mean.Dist.ReportedCI95()),
					P99: secDur(cs.P99.Dist.Mean), P99CI95: secDur(cs.P99.Dist.ReportedCI95()),
					OKFrac: cs.OKFraction.Dist.Mean, OKFracCI95: cs.OKFraction.Dist.ReportedCI95(),
					Offered:    offered,
					Refused:    cs.Refused.Dist.Mean,
					Unfinished: cs.Unfinished.Dist.Mean,
				})
				for _, vs := range cs.VIPs {
					res.Rows = append(res.Rows, RhoGridRow{
						WebRho: webRho, BatchRho: batchRho, Policy: spec.Name, Service: vs.Name,
						Load: vs.Load, N: cs.N(), StopReason: cs.StopReason,
						Mean: secDur(vs.Mean.Dist.Mean), MeanCI95: secDur(vs.Mean.Dist.ReportedCI95()),
						P99: secDur(vs.P99.Dist.Mean), P99CI95: secDur(vs.P99.Dist.ReportedCI95()),
						OKFrac: vs.OKFraction.Dist.Mean, OKFracCI95: vs.OKFraction.Dist.ReportedCI95(),
						Offered:    vs.Offered.Dist.Mean,
						Refused:    vs.Refused.Dist.Mean,
						Unfinished: vs.Unfinished.Dist.Mean,
					})
				}
			}
		}
	}
	return res
}

// Row returns the row for (policy, service) at the grid point closest
// to (webRho, batchRho).
func (r RhoGridResult) Row(policy, service string, webRho, batchRho float64) (RhoGridRow, error) {
	var best RhoGridRow
	bestDiff := -1.0
	for _, row := range r.Rows {
		if row.Policy != policy || row.Service != service {
			continue
		}
		d := math.Abs(row.WebRho-webRho) + math.Abs(row.BatchRho-batchRho)
		if bestDiff < 0 || d < bestDiff {
			bestDiff = d
			best = row
		}
	}
	if bestDiff < 0 {
		return RhoGridRow{}, fmt.Errorf("rhogrid: no row for (%q, %q)", policy, service)
	}
	return best, nil
}

// TotalReplicates sums the completed replicates over the grid's "all"
// rows — the measurement budget the run actually spent. Compare with
// FixedBudget to see what adaptive replication saved.
func (r RhoGridResult) TotalReplicates() int {
	total := 0
	for _, row := range r.Rows {
		if row.Service == "all" {
			total += row.N
		}
	}
	return total
}

// FixedBudget is the replicate count a fixed-replication run over the
// same grid would spend: cells × MaxSeeds.
func (r RhoGridResult) FixedBudget() int {
	return len(r.WebRhos) * len(r.BatchRhos) * len(r.Stats.Policies) * r.MaxSeeds
}

// gridMetric projects a row onto the named heatmap metric.
func gridMetric(row RhoGridRow, metric string) float64 {
	switch metric {
	case "p99":
		return row.P99.Seconds()
	case "mean":
		return row.Mean.Seconds()
	case "ok":
		return row.OKFrac
	case "n":
		return float64(row.N)
	default:
		panic(fmt.Sprintf("rhogrid: unknown heatmap metric %q", metric))
	}
}

// Heatmaps renders the victim view of one metric as a per-policy facet
// sequence: each facet is the web service's metric over the
// web-ρ (rows) × batch-ρ (columns) grid, all facets pinned to one
// shared color scale so glyphs compare across policies. metric is one
// of "p99", "mean", "ok" or "n" (per-cell replicate count — the
// adaptive controller's budget map; service-independent).
func (r RhoGridResult) Heatmaps(metric string) []plot.Heatmap {
	service := "web"
	unit := "s"
	switch metric {
	case "ok":
		unit = "frac"
	case "n":
		unit = "replicates"
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	zs := make([][][]float64, len(r.Stats.Policies))
	for pi := range r.Stats.Policies {
		z := make([][]float64, len(r.WebRhos))
		for wi := range r.WebRhos {
			z[wi] = make([]float64, len(r.BatchRhos))
			for bi := range r.BatchRhos {
				z[wi][bi] = math.NaN()
			}
		}
		zs[pi] = z
	}
	policyIdx := make(map[string]int, len(r.Stats.Policies))
	for pi, spec := range r.Stats.Policies {
		policyIdx[spec.Name] = pi
	}
	axisIdx := func(axis []float64, v float64) int {
		for i, a := range axis {
			if a == v {
				return i
			}
		}
		return -1
	}
	for _, row := range r.Rows {
		if row.Service != service {
			continue
		}
		pi, ok := policyIdx[row.Policy]
		wi, bi := axisIdx(r.WebRhos, row.WebRho), axisIdx(r.BatchRhos, row.BatchRho)
		if !ok || wi < 0 || bi < 0 {
			continue
		}
		v := gridMetric(row, metric)
		zs[pi][wi][bi] = v
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if lo > hi {
		lo, hi = 0, 0
	}
	out := make([]plot.Heatmap, 0, len(r.Stats.Policies))
	for pi, spec := range r.Stats.Policies {
		out = append(out, plot.Heatmap{
			Title:  fmt.Sprintf("RhoGrid[%s]: %s %s (%s) over web-rho × batch-rho", spec.Name, service, metric, unit),
			XLabel: "batch rho",
			YLabel: "web rho",
			X:      r.BatchRhos,
			Y:      r.WebRhos,
			Z:      zs[pi],
			Min:    lo,
			Max:    hi,
		})
	}
	return out
}

// WriteTSV renders the matrix: one row per (web_rho, batch_rho,
// policy, service), the aggregate first.
func (r RhoGridResult) WriteTSV(w io.Writer) error {
	mode := "fixed"
	if r.Adaptive {
		mode = "adaptive"
	}
	if _, err := fmt.Fprintf(w, "# Rho-grid policy ablation: web-rho × batch-rho matrix on one shared pool, %s replication (budget %d/%d replicates); lambda0=%.1f q/s\n",
		mode, r.TotalReplicates(), r.FixedBudget(), r.Lambda0); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "web_rho\tbatch_rho\tpolicy\tservice\trho_svc\tn\tstop_reason\toffered\tmean_s\tmean_ci95_s\tp99_s\tp99_ci95_s\tok_frac\tok_ci95\trefused\tunfinished"); err != nil {
		return err
	}
	for _, row := range r.Rows {
		stop := row.StopReason
		if stop == "" {
			stop = "-"
		}
		if _, err := fmt.Fprintf(w, "%.2f\t%.2f\t%s\t%s\t%.2f\t%d\t%s\t%.0f\t%s\t%s\t%s\t%s\t%.4f\t%.4f\t%.0f\t%.0f\n",
			row.WebRho, row.BatchRho, row.Policy, row.Service, row.Load, row.N, stop, row.Offered,
			metrics.FormatDuration(row.Mean),
			metrics.FormatDuration(row.MeanCI95),
			metrics.FormatDuration(row.P99),
			metrics.FormatDuration(row.P99CI95),
			row.OKFrac, row.OKFracCI95,
			row.Refused, row.Unfinished); err != nil {
			return err
		}
	}
	return nil
}
