package experiments

import (
	"bytes"
	"context"
	"reflect"
	"testing"
	"time"

	"srlb/internal/rng"
	"srlb/internal/trace"
	"srlb/internal/wiki"
)

// stripWall zeroes the only nondeterministic CellResult field so full
// results can be compared with reflect.DeepEqual.
func stripWall(cells []CellResult) []CellResult {
	out := make([]CellResult, len(cells))
	for i, c := range cells {
		c.Wall = 0
		out[i] = c
	}
	return out
}

func testSweep(seed uint64) Sweep {
	return Sweep{
		Cluster:  ClusterConfig{Seed: seed, Servers: 4},
		Policies: []PolicySpec{RR(), SRc(4)},
		Loads:    []float64{0.5, 0.85},
		Seeds:    DeriveSeeds(seed, 2),
		Workload: PoissonWorkload{Lambda0: 80, Queries: 1200},
	}
}

func TestRunnerParallelEqualsSerial(t *testing.T) {
	sweep := testSweep(21)
	serial, err := Runner{Workers: 1}.RunSweep(context.Background(), sweep)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Runner{Workers: 8}.RunSweep(context.Background(), sweep)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial.Cells) != sweep.Size() {
		t.Fatalf("cells = %d, want %d", len(serial.Cells), sweep.Size())
	}
	if !reflect.DeepEqual(stripWall(serial.Cells), stripWall(parallel.Cells)) {
		t.Fatal("parallel sweep differs from serial sweep for the same scenarios")
	}
	// And a re-run is identical too (pure function of the sweep value).
	again, _ := Runner{Workers: 3}.RunSweep(context.Background(), sweep)
	if !reflect.DeepEqual(stripWall(parallel.Cells), stripWall(again.Cells)) {
		t.Fatal("sweep not reproducible across runs")
	}
}

func TestRunnerResultsInInputOrder(t *testing.T) {
	sweep := testSweep(22).withDefaults()
	res, err := Runner{Workers: 4}.RunSweep(context.Background(), sweep)
	if err != nil {
		t.Fatal(err)
	}
	i := 0
	for pi, spec := range sweep.Policies {
		for li, load := range sweep.Loads {
			for si, seed := range sweep.Seeds {
				c := res.Cells[i]
				if c.Index != i || c.Policy != spec.Name || c.Load != load || c.Seed != seed {
					t.Fatalf("cell %d out of order: %+v", i, c)
				}
				if got := res.Cell(pi, li, si); got.Index != i {
					t.Fatalf("Cell(%d,%d,%d).Index = %d, want %d", pi, li, si, got.Index, i)
				}
				i++
			}
		}
	}
}

func TestRunnerCancellation(t *testing.T) {
	// Many expensive cells: the sweep would take tens of seconds serially.
	sweep := Sweep{
		Cluster:  ClusterConfig{Seed: 23, Servers: 4},
		Policies: PaperPolicies(),
		Loads:    []float64{0.3, 0.6, 0.88},
		Seeds:    DeriveSeeds(23, 4),
		Workload: PoissonWorkload{Lambda0: 80, Queries: 20000},
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	res, err := Runner{Workers: 2}.RunSweep(ctx, sweep)
	elapsed := time.Since(start)
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("cancelled sweep took %v — not prompt", elapsed)
	}
	if len(res.Cells) != sweep.Size() {
		t.Fatalf("partial result must keep the full cell slice, got %d", len(res.Cells))
	}
	skipped := 0
	for _, c := range res.Cells {
		switch {
		case c.Err != nil:
			skipped++
		case c.Outcome.RT == nil:
			t.Fatalf("cell %d has neither outcome nor error", c.Index)
		}
	}
	if skipped == 0 {
		t.Fatal("expected at least one cancelled cell")
	}
}

func TestScenarioSeedOverride(t *testing.T) {
	w := PoissonWorkload{Lambda0: 80, Queries: 800}
	base := Scenario{Cluster: ClusterConfig{Seed: 5, Servers: 4}, Policy: RR(), Workload: w, Load: 0.5}
	override := base
	override.Seed = 6
	direct := base
	direct.Cluster.Seed = 6
	a := override.Run(context.Background())
	b := direct.Run(context.Background())
	if a.Seed != 6 || b.Seed != 6 {
		t.Fatalf("seeds = %d/%d, want 6", a.Seed, b.Seed)
	}
	if a.Outcome.RT.Mean() != b.Outcome.RT.Mean() {
		t.Fatal("Seed override must be equivalent to setting Cluster.Seed")
	}
	c := base.Run(context.Background())
	if c.Outcome.RT.Mean() == a.Outcome.RT.Mean() {
		t.Fatal("different seeds should perturb the outcome")
	}
}

func TestDeriveSeeds(t *testing.T) {
	seeds := DeriveSeeds(1, 8)
	seen := map[uint64]bool{}
	for _, s := range seeds {
		if seen[s] {
			t.Fatal("duplicate derived seed")
		}
		seen[s] = true
	}
	if !reflect.DeepEqual(seeds, DeriveSeeds(1, 8)) {
		t.Fatal("DeriveSeeds must be deterministic")
	}
	if reflect.DeepEqual(seeds, DeriveSeeds(2, 8)) {
		t.Fatal("different bases must give different seeds")
	}
}

func TestPoissonWorkloadMatchesRunPoisson(t *testing.T) {
	cluster := ClusterConfig{Seed: 7, Servers: 4}
	legacy := RunPoisson(cluster, SRc(4), 40, 1500, PoissonHooks{})
	cell := Scenario{
		Cluster:  cluster,
		Policy:   SRc(4),
		Workload: PoissonWorkload{Lambda0: 80, Queries: 1500},
		Load:     0.5, // 0.5 × 80 = the same 40 q/s
	}.Run(context.Background())
	if legacy.RT.Mean() != cell.Outcome.RT.Mean() || legacy.RT.Count() != cell.Outcome.RT.Count() {
		t.Fatalf("PoissonWorkload diverges from RunPoisson: %v/%d vs %v/%d",
			legacy.RT.Mean(), legacy.RT.Count(), cell.Outcome.RT.Mean(), cell.Outcome.RT.Count())
	}
	if legacy.Refused != cell.Outcome.Refused || legacy.Unfinished != cell.Outcome.Unfinished {
		t.Fatal("failure accounting diverges")
	}
}

func TestBurstyWorkload(t *testing.T) {
	cluster := ClusterConfig{Seed: 8, Servers: 4}
	const queries = 3000
	cell := Scenario{
		Cluster:  cluster,
		Policy:   SRc(4),
		Workload: BurstyWorkload{Lambda0: 80, Queries: queries},
		Load:     0.6,
	}.Run(context.Background())
	out := cell.Outcome
	if got := out.RT.Count() + out.Refused + out.Unfinished; got != queries {
		t.Fatalf("accounting: %d results for %d queries", got, queries)
	}
	if out.RT.Count() < queries/2 {
		t.Fatalf("only %d/%d completed at moderate mean load", out.RT.Count(), queries)
	}
	// Same scenario twice: byte-identical (the MMPP is seeded).
	again := Scenario{
		Cluster:  cluster,
		Policy:   SRc(4),
		Workload: BurstyWorkload{Lambda0: 80, Queries: queries},
		Load:     0.6,
	}.Run(context.Background())
	if out.RT.Mean() != again.Outcome.RT.Mean() {
		t.Fatal("bursty workload not deterministic")
	}

	// The point of the workload: at the same mean rate, on/off bursts beat
	// up the tail relative to a plain Poisson stream under RR.
	bursty := Scenario{Cluster: cluster, Policy: RR(),
		Workload: BurstyWorkload{Lambda0: 80, Queries: queries, PeakFactor: 4, MeanOn: time.Second, MeanOff: 7 * time.Second},
		Load:     0.6}.Run(context.Background())
	smooth := Scenario{Cluster: cluster, Policy: RR(),
		Workload: PoissonWorkload{Lambda0: 80, Queries: queries},
		Load:     0.6}.Run(context.Background())
	if bursty.Outcome.RT.Quantile(0.95) <= smooth.Outcome.RT.Quantile(0.95) {
		t.Fatalf("bursty p95 (%v) should exceed smooth p95 (%v) at equal mean load",
			bursty.Outcome.RT.Quantile(0.95), smooth.Outcome.RT.Quantile(0.95))
	}
}

func TestTraceWorkloadSpeedOnlyRescalesTime(t *testing.T) {
	var buf bytes.Buffer
	day := wiki.Config{Seed: 11, Compression: 2880} // 24h -> 30s of entries
	if _, _, err := wiki.Synthesize(day, trace.NewWriter(&buf)); err != nil {
		t.Fatal(err)
	}
	entries, err := trace.ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	cluster := ClusterConfig{Seed: 11, Servers: 4}
	replay := func(speed float64) WikiRun {
		cell := Scenario{Cluster: cluster, Policy: SRc(4),
			Workload: TraceWorkload{Entries: entries}, Load: speed}.Run(context.Background())
		if cell.Err != nil {
			t.Fatal(cell.Err)
		}
		return cell.Outcome.Extra.(WikiRun)
	}
	slow, fast := replay(1), replay(2)
	slowTotal := slow.WikiAll.Count() + slow.StaticAll.Count() + slow.Refused
	fastTotal := fast.WikiAll.Count() + fast.StaticAll.Count() + fast.Refused
	if slowTotal != len(entries) || fastTotal != len(entries) {
		t.Fatalf("accounting: %d/%d results for %d entries", slowTotal, fastTotal, len(entries))
	}
	// Speed must not touch the cache model: the request sequence is the
	// same, so per-replica hit rates are identical at any replay speed.
	if !reflect.DeepEqual(slow.HitRates, fast.HitRates) {
		t.Fatalf("replay speed changed cache behavior: %v vs %v", slow.HitRates, fast.HitRates)
	}
	// Twice the arrival rate on the same cluster: response times degrade.
	if fast.WikiAll.Quantile(0.75) <= slow.WikiAll.Quantile(0.75) {
		t.Fatalf("2x replay Q3 (%v) not above 1x Q3 (%v)",
			fast.WikiAll.Quantile(0.75), slow.WikiAll.Quantile(0.75))
	}
}

func TestMMPPMeanRate(t *testing.T) {
	w := BurstyWorkload{Lambda0: 100, Queries: 1}.withDefaults()
	// Drive the arrival process directly: long-run rate ≈ load × Lambda0.
	mean := 0.6 * w.Lambda0
	onFrac := w.MeanOn.Seconds() / (w.MeanOn + w.MeanOff).Seconds()
	rateOn := w.PeakFactor * mean
	rateOff := (mean - onFrac*rateOn) / (1 - onFrac)
	p := &mmpp{
		r: rng.Split(9, 0xb124), rateOn: rateOn, rateOff: rateOff,
		meanOn: w.MeanOn, meanOff: w.MeanOff,
	}
	const n = 60000
	var last time.Duration
	for i := 0; i < n; i++ {
		last = p.Next()
	}
	got := float64(n) / last.Seconds()
	if got < 0.9*mean || got > 1.1*mean {
		t.Fatalf("MMPP long-run rate %.1f q/s, want ≈ %.1f", got, mean)
	}
}
