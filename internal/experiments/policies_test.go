package experiments

import (
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"srlb/internal/feedback"
)

// feedbackCluster is the policies experiment's cluster shape in
// miniature: a shared pool behind one or more replicas with the
// telemetry plane on.
func feedbackCluster(seed uint64, replicas int) ClusterConfig {
	return ClusterConfig{
		Seed: seed, Servers: 4,
		Replicas: replicas,
		Feedback: feedback.Config{Enabled: true},
	}
}

// Per-VIP conservation under flowlet re-steering, schemes × replicas:
// moving established flows mid-connection (and the close-ACKs that
// trigger it) must never unbalance the books — for every service,
// completions + refusals + unfinished still equals the queries offered
// to its VIP, and the per-VIP columns still sum to the aggregate. The
// flowlet rows additionally assert the mechanism really fired.
func TestPoliciesConservationUnderResteering(t *testing.T) {
	// A tight gap makes nearly every close-ACK a flowlet boundary, so
	// even test-sized runs see moves.
	flowletTight := FlowletPolicy(2 * time.Millisecond)
	cases := []struct {
		name        string
		policy      PolicySpec
		replicas    int
		wantResteer bool
	}{
		{"random2 single LB", Random2(), 1, false},
		{"chash2 single LB", CHash2(), 1, false},
		{"wleastload single LB", WeightedLeastLoadPolicy(), 1, false},
		{"flowlet single LB", flowletTight, 1, true},
		// Random selection across 2 replicas loses flows by construction;
		// re-steering must not make the books stop balancing.
		{"flowlet 2 replicas (lossy)", flowletTight, 2, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := sharedPoolServices(600, 8*time.Second)
			w.CloseAck = true
			out, err := w.Run(context.Background(), feedbackCluster(83, tc.replicas), tc.policy, 0.35)
			if err != nil {
				t.Fatal(err)
			}
			var completed, refused, unfinished int
			for _, vo := range out.PerVIP {
				if vo.Offered == 0 {
					t.Fatalf("service %q offered no queries — stream never opened", vo.Name)
				}
				if got := vo.RT.Count() + vo.Refused + vo.Unfinished; got != vo.Offered {
					t.Fatalf("service %q: %d completed + %d refused + %d unfinished != %d offered",
						vo.Name, vo.RT.Count(), vo.Refused, vo.Unfinished, vo.Offered)
				}
				completed += vo.RT.Count()
				refused += vo.Refused
				unfinished += vo.Unfinished
			}
			if completed != out.RT.Count() || refused != out.Refused || unfinished != out.Unfinished {
				t.Fatalf("per-VIP sums (%d/%d/%d) != aggregate (%d/%d/%d)",
					completed, refused, unfinished, out.RT.Count(), out.Refused, out.Unfinished)
			}
			ms, ok := out.Extra.(MultiServiceStats)
			if !ok {
				t.Fatalf("Extra is %T, want MultiServiceStats", out.Extra)
			}
			if tc.wantResteer && ms.Resteers == 0 {
				t.Fatal("flowlet policy never re-steered an established flow — mechanism vacuous")
			}
			if !tc.wantResteer && ms.Resteers != 0 {
				t.Fatalf("non-flowlet policy re-steered %d flows", ms.Resteers)
			}
			if ms.Rebinds != ms.Resteers {
				t.Fatalf("flow-table rebinds (%d) diverge from scheme re-steers (%d)", ms.Rebinds, ms.Resteers)
			}
		})
	}
}

// RunPolicies in miniature: the full four-policy ablation over both
// variants, with well-formed rows, the mechanism counter on every
// bursty flowlet cell, and working accessors and renderers.
func TestRunPoliciesSmall(t *testing.T) {
	res := RunPolicies(PoliciesConfig{
		Cluster:    ClusterConfig{Seed: 89, Servers: 4},
		Lambda0:    80,
		WebRho:     0.5,
		BatchRhos:  []float64{0.1, 0.35},
		Queries:    500,
		FlowletGap: 2 * time.Millisecond,
	})
	if got, want := len(res.Variants), 2; got != want {
		t.Fatalf("%d variants, want %d", got, want)
	}
	if got, want := len(res.Services), 2; got != want {
		t.Fatalf("%d services, want %d", got, want)
	}
	// 2 variants × 2 batch rhos × 4 policies × (1 aggregate + 2 services).
	if got, want := len(res.Rows), 48; got != want {
		t.Fatalf("%d rows, want %d", got, want)
	}
	for _, row := range res.Rows {
		if row.N != 1 {
			t.Fatalf("row %+v has N=%d, want 1", row, row.N)
		}
		if row.Offered == 0 {
			t.Fatalf("row %s/%s/%s offered nothing", row.Variant, row.Policy, row.Service)
		}
		if row.Service == "web" && row.Load != 0.5 {
			t.Fatalf("web row carries load %.2f, want the pinned 0.50", row.Load)
		}
		if row.Service == "batch" && row.Load != row.BatchRho {
			t.Fatalf("batch row carries load %.2f, want its own axis %.2f", row.Load, row.BatchRho)
		}
		if row.Service != "all" && row.Resteers != 0 {
			t.Fatalf("service row %s/%s carries resteers %.1f, want 0 (aggregate-only counter)",
				row.Policy, row.Service, row.Resteers)
		}
		if row.Policy != "flowlet" && row.Resteers != 0 {
			t.Fatalf("policy %s re-steered %.1f flows", row.Policy, row.Resteers)
		}
	}
	// The acceptance bar: the flowlet policy moves at least one
	// established flow in every bursty cell, both variants.
	for _, variant := range res.Variants {
		for _, rho := range res.BatchRhos {
			row, err := res.Row(variant, "flowlet", "all", rho)
			if err != nil {
				t.Fatal(err)
			}
			if row.Resteers < 1 {
				t.Fatalf("flowlet[%s] at batch_rho=%.2f re-steered %.1f flows, want ≥ 1", variant, rho, row.Resteers)
			}
		}
		if res.TotalResteers(variant, "flowlet") < 2 {
			t.Fatalf("flowlet[%s] total resteers below the per-cell floor", variant)
		}
		if res.TotalResteers(variant, "random2") != 0 {
			t.Fatalf("random2[%s] reports resteers", variant)
		}
	}
	if _, err := res.Row("churn", "wleastload", "web", 0.35); err != nil {
		t.Fatal(err)
	}
	if _, err := res.Row("steady", "nosuch", "web", 0.1); err == nil {
		t.Fatal("Row for an unknown policy must error")
	}
	var buf strings.Builder
	if err := res.WriteTSV(&buf); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != 2+len(res.Rows) {
		t.Fatalf("TSV has %d lines, want %d", lines, 2+len(res.Rows))
	}
	// One facet per (variant, service), each with all four policies.
	facets := res.PlotFacets()
	if len(facets) != 4 {
		t.Fatalf("PlotFacets returned %d facets, want 4", len(facets))
	}
	for _, f := range facets {
		if len(f.Series) != 4 {
			t.Fatalf("facet %q has %d series, want 4", f.Title, len(f.Series))
		}
	}
}

// The determinism contract survives the feedback plane: a full
// RunPolicies grid — load-aware scheme state, periodic report ticks,
// flowlet rebinds and all — is byte-identical at 1 vs 4 Runner workers
// (runs under -race -shuffle=on in CI).
func TestRunPoliciesDeterminism(t *testing.T) {
	cfg := PoliciesConfig{
		Cluster:    ClusterConfig{Seed: 97, Servers: 4},
		Lambda0:    80,
		WebRho:     0.5,
		BatchRhos:  []float64{0.3},
		Queries:    300,
		FlowletGap: 2 * time.Millisecond,
		Seeds:      DeriveSeeds(97, 2),
	}
	serialCfg, parallelCfg := cfg, cfg
	serialCfg.Workers = 1
	parallelCfg.Workers = 4
	serial := RunPolicies(serialCfg)
	parallel := RunPolicies(parallelCfg)
	a, err := json.Marshal(serial.Rows)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(parallel.Rows)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("policies grid differs between 1 and 4 workers with feedback enabled")
	}
	if serial.TotalResteers("steady", "flowlet") != parallel.TotalResteers("steady", "flowlet") {
		t.Fatal("re-steer counts differ between worker counts")
	}
}
