package experiments

import (
	"math"
	"reflect"
	"testing"
)

// TestCalibrateParallelMatchesSerial is the equivalence guarantee the
// speculative ladder advertises: the concurrent K-section search must
// land within one bisection tolerance of the classic serial bisection
// (ProbeFan = 1, one worker), while issuing its probes concurrently.
func TestCalibrateParallelMatchesSerial(t *testing.T) {
	base := CalibrationConfig{Cluster: smallCluster(31), Queries: 3000}

	serialCfg := base
	serialCfg.ProbeFan = 1
	serialCfg.Workers = 1
	serial := Calibrate(serialCfg)

	parallelCfg := base
	parallelCfg.ProbeFan = 4
	parallelCfg.Workers = 4
	parallel := Calibrate(parallelCfg)

	tol := serialCfg.withDefaults().RelTol * serial.Lambda0
	if diff := math.Abs(parallel.Lambda0 - serial.Lambda0); diff > tol {
		t.Fatalf("parallel lambda0 = %.2f, serial = %.2f: differ by %.2f > tolerance %.2f",
			parallel.Lambda0, serial.Lambda0, diff, tol)
	}
	// The ladder must need fewer serial rounds: with fan 4 each round
	// shrinks the bracket 5×, so the total probe count can be higher but
	// the round count (probes/fan) must be well below the serial one.
	if len(parallel.Probes) >= 2*len(serial.Probes) {
		t.Fatalf("parallel path ran %d probes vs %d serial — speculation out of control",
			len(parallel.Probes), len(serial.Probes))
	}
}

// TestCalibrateDeterministicAcrossWorkers: the probe list and λ0 are
// pure functions of the config — worker scheduling must not show.
func TestCalibrateDeterministicAcrossWorkers(t *testing.T) {
	cfg := CalibrationConfig{Cluster: smallCluster(32), Queries: 2000, ProbeFan: 3}
	one := cfg
	one.Workers = 1
	many := cfg
	many.Workers = 8
	a, b := Calibrate(one), Calibrate(many)
	if a.Lambda0 != b.Lambda0 {
		t.Fatalf("lambda0 differs across worker counts: %v vs %v", a.Lambda0, b.Lambda0)
	}
	if !reflect.DeepEqual(a.Probes, b.Probes) {
		t.Fatalf("probe lists differ across worker counts:\n%v\n%v", a.Probes, b.Probes)
	}
}

// TestCalibrateFanOneIsLegacyBisection pins the ProbeFan = 1 path to
// the classic bisection shape: every refinement probe is the bracket
// midpoint of the two preceding bounds, i.e. exactly one probe per
// round.
func TestCalibrateFanOneIsLegacyBisection(t *testing.T) {
	cfg := CalibrationConfig{Cluster: smallCluster(33), Queries: 2000, ProbeFan: 1, Workers: 1}
	res := Calibrate(cfg)
	d := cfg.withDefaults()
	// Well-bracketed default: first two probes are Lo then Hi.
	if len(res.Probes) < 3 {
		t.Fatalf("only %d probes", len(res.Probes))
	}
	if res.Probes[0].RatePerSec != d.Lo || res.Probes[1].RatePerSec != d.Hi {
		t.Fatalf("widening probes = %v, %v; want %v, %v",
			res.Probes[0].RatePerSec, res.Probes[1].RatePerSec, d.Lo, d.Hi)
	}
	if res.Probes[2].RatePerSec != (d.Lo+d.Hi)/2 {
		t.Fatalf("first bisection probe = %v, want midpoint %v",
			res.Probes[2].RatePerSec, (d.Lo+d.Hi)/2)
	}
}

func TestCalibrateCached(t *testing.T) {
	cfg := CalibrationConfig{Cluster: smallCluster(34), Queries: 2000}
	first := CalibrateCached(cfg)
	second := CalibrateCached(cfg)
	if !reflect.DeepEqual(first, second) {
		t.Fatal("cached calibration differs from the first run")
	}
	// Same backing array ⇒ the second call was a cache hit, not a rerun.
	if len(first.Probes) == 0 || &first.Probes[0] != &second.Probes[0] {
		t.Fatal("second CalibrateCached call re-ran the probes")
	}
	// A different topology must miss the cache.
	other := cfg
	other.Cluster.Seed++
	if third := CalibrateCached(other); len(third.Probes) > 0 && &third.Probes[0] == &first.Probes[0] {
		t.Fatal("different cluster fingerprints collided in the cache")
	}
}

func TestCalibrationFingerprint(t *testing.T) {
	a := CalibrationConfig{Cluster: smallCluster(35)}
	b := a
	if a.fingerprint() != b.fingerprint() {
		t.Fatal("identical configs must share a fingerprint")
	}
	b.Cluster.Servers = 6
	if a.fingerprint() == b.fingerprint() {
		t.Fatal("server count must be part of the fingerprint")
	}
	c := a
	c.Queries = 123
	if a.fingerprint() == c.fingerprint() {
		t.Fatal("probe batch size must be part of the fingerprint")
	}
	d := a
	d.Spec = SRc(4)
	if a.fingerprint() == d.fingerprint() {
		t.Fatal("probing policy must be part of the fingerprint")
	}
	// Same label, different behavior: the NewAgent identity must keep
	// two such specs from aliasing to one cached lambda0.
	e, f := a, a
	e.Spec = SRc(4)
	f.Spec = PolicySpec{Name: e.Spec.Name, Candidates: e.Spec.Candidates, NewAgent: SRdyn().NewAgent}
	if e.fingerprint() == f.fingerprint() {
		t.Fatal("same-named policies with different NewAgent must not share a fingerprint")
	}
	// And the default (nil Spec → RR) must fingerprint stably across
	// calls, or the cache would never hit.
	if a.fingerprint() != (CalibrationConfig{Cluster: smallCluster(35)}).fingerprint() {
		t.Fatal("default-spec fingerprint not stable across configs")
	}
}
