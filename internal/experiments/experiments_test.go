package experiments

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"srlb/internal/testbed"
	"srlb/internal/wiki"
)

// Small cluster + batches keep the suite fast; shapes are what we assert.
func smallCluster(seed uint64) ClusterConfig {
	return ClusterConfig{Seed: seed, Servers: 4}
}

func TestPolicySpecs(t *testing.T) {
	if RR().Name != "RR" || RR().Candidates != 1 {
		t.Fatal("RR spec wrong")
	}
	if SRc(4).Name != "SR 4" || SRc(4).Candidates != 2 {
		t.Fatal("SRc spec wrong")
	}
	if SRdyn().Name != "SR dyn" {
		t.Fatal("SRdyn spec wrong")
	}
	if SRcK(4, 3).Candidates != 3 {
		t.Fatal("SRcK spec wrong")
	}
	if len(PaperPolicies()) != 5 {
		t.Fatal("paper policies must be the 5 lines of figure 2")
	}
	// Fresh agents per server: two calls must not share state.
	spec := SRdyn()
	if spec.NewAgent() == spec.NewAgent() {
		t.Fatal("NewAgent must build independent instances")
	}
}

func TestTheoreticalCapacity(t *testing.T) {
	got := ClusterConfig{}.TheoreticalCapacity()
	if got != 240 { // 12 servers × 2 cores / 0.1s
		t.Fatalf("capacity = %v, want 240", got)
	}
}

func TestRunPoissonBasics(t *testing.T) {
	run := RunPoisson(smallCluster(1), SRc(4), 40, 2000, PoissonHooks{})
	if run.RT.Count()+run.Refused+run.Unfinished != 2000 {
		t.Fatalf("accounting: ok=%d refused=%d unfinished=%d",
			run.RT.Count(), run.Refused, run.Unfinished)
	}
	if run.OKFraction() < 0.99 {
		t.Fatalf("ok fraction = %v at moderate load", run.OKFraction())
	}
	if run.RT.Mean() <= 0 {
		t.Fatal("zero mean response time")
	}
}

func TestRunPoissonHooksObserveEveryQuery(t *testing.T) {
	seen := 0
	RunPoisson(smallCluster(2), RR(), 50, 1000, PoissonHooks{
		OnResult: func(testbed.Result) { seen++ },
	})
	if seen != 1000 {
		t.Fatalf("hooks saw %d results, want 1000", seen)
	}
}

func TestCalibrateFindsDropOnset(t *testing.T) {
	cal := Calibrate(CalibrationConfig{Cluster: smallCluster(3), Queries: 4000})
	// 4 servers × 2 cores / 0.1s = 80 q/s theoretical.
	if cal.Theoretical != 80 {
		t.Fatalf("theoretical = %v", cal.Theoretical)
	}
	if cal.Lambda0 < 60 || cal.Lambda0 > 120 {
		t.Fatalf("lambda0 = %v, implausible for 80 q/s theoretical", cal.Lambda0)
	}
	if len(cal.Probes) < 3 {
		t.Fatalf("only %d probes", len(cal.Probes))
	}
	var buf bytes.Buffer
	if err := cal.WriteTSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "rate_qps") {
		t.Fatal("TSV header missing")
	}
}

func TestFig2ShapeAndTSV(t *testing.T) {
	res := RunFig2(Fig2Config{
		Cluster:  smallCluster(4),
		Rhos:     []float64{0.3, 0.88},
		Policies: []PolicySpec{RR(), SRc(4)},
		Queries:  6000,
	})
	if len(res.Points) != 2 || len(res.Points[0]) != 2 {
		t.Fatal("result shape wrong")
	}
	// The paper's core claim: SR4 ≤ RR at high load, and high load is
	// slower than light load for RR.
	rrLight, rrHigh := res.Points[0][0].Mean, res.Points[0][1].Mean
	srHigh := res.Points[1][1].Mean
	if rrHigh <= rrLight {
		t.Fatalf("RR not degrading with load: %v vs %v", rrLight, rrHigh)
	}
	if srHigh >= rrHigh {
		t.Fatalf("SR4 (%v) not better than RR (%v) at rho=0.88", srHigh, rrHigh)
	}
	imp, err := res.Improvement("SR 4", 0.88)
	if err != nil {
		t.Fatal(err)
	}
	if imp < 1.2 {
		t.Fatalf("improvement %.2fx too small", imp)
	}
	if _, err := res.Improvement("nope", 0.5); err == nil {
		t.Fatal("unknown policy should error")
	}
	var buf bytes.Buffer
	if err := res.WriteTSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "rho\tRR\tSR 4") {
		t.Fatalf("TSV header wrong:\n%s", out)
	}
	if len(strings.Split(strings.TrimSpace(out), "\n")) != 4 { // comment+header+2 rows
		t.Fatalf("TSV row count wrong:\n%s", out)
	}
}

func TestCDFResult(t *testing.T) {
	res := RunCDF(CDFConfig{
		Cluster:  smallCluster(5),
		Rho:      0.7,
		Policies: []PolicySpec{RR(), SRc(4)},
		Queries:  4000,
		Points:   50,
	})
	if len(res.RT) != 2 {
		t.Fatal("wrong number of recorders")
	}
	for _, r := range res.RT {
		if r.Count() < 3800 {
			t.Fatalf("too few completions: %d", r.Count())
		}
	}
	var buf bytes.Buffer
	if err := res.WriteTSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "cdf_RR") || !strings.Contains(buf.String(), "cdf_SR 4") {
		t.Fatal("CDF TSV missing policy blocks")
	}
}

func TestFig3Fig5FixTheLoad(t *testing.T) {
	cfg := CDFConfig{Cluster: smallCluster(6), Lambda0: 80, Queries: 500,
		Policies: []PolicySpec{RR()}}
	if got := RunFig3(cfg).Rho; got != 0.88 {
		t.Fatalf("fig3 rho = %v", got)
	}
	if got := RunFig5(cfg).Rho; got != 0.61 {
		t.Fatalf("fig5 rho = %v", got)
	}
}

func TestFig4FairnessOrdering(t *testing.T) {
	res := RunFig4(Fig4Config{
		Cluster: smallCluster(7),
		Queries: 8000,
	})
	if len(res.Series) != 2 {
		t.Fatal("expected RR and SR4 series")
	}
	rr, err := res.MeanFairness("RR")
	if err != nil {
		t.Fatal(err)
	}
	sr, err := res.MeanFairness("SR 4")
	if err != nil {
		t.Fatal(err)
	}
	// Figure 4's claim: SR4's fairness index sits above RR's.
	if sr <= rr {
		t.Fatalf("SR4 fairness %.3f not above RR %.3f", sr, rr)
	}
	if _, err := res.MeanFairness("nope"); err == nil {
		t.Fatal("unknown policy should error")
	}
	var buf bytes.Buffer
	if err := res.WriteTSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "fairness_RR") {
		t.Fatal("fig4 TSV missing series")
	}
}

func TestWikiReplayShapes(t *testing.T) {
	res := RunWiki(WikiConfig{
		Cluster: ClusterConfig{Seed: 8, Servers: 12},
		Day:     wikiDayFast(8),
	})
	if len(res.Runs) != 2 {
		t.Fatal("expected RR and SR4 runs")
	}
	rr, sr := res.Runs[0], res.Runs[1]
	if rr.WikiAll.Count() == 0 || sr.WikiAll.Count() == 0 {
		t.Fatal("no wiki pages recorded")
	}
	// Both replay the same trace: every query ends as exactly one of
	// ok-wiki, ok-static or refused, so totals must match exactly.
	rrTotal := rr.WikiAll.Count() + rr.StaticAll.Count() + rr.Refused
	srTotal := sr.WikiAll.Count() + sr.StaticAll.Count() + sr.Refused
	if rrTotal != srTotal {
		t.Fatalf("trace sizes diverge: rr=%d sr=%d", rrTotal, srTotal)
	}
	// Under the calibrated defaults only a small fraction may be refused.
	if rr.Refused > rrTotal/20 {
		t.Fatalf("rr refused %d of %d — system overloaded, calibration off", rr.Refused, rrTotal)
	}
	// §VI-C: statics are cheap and unaffected; wiki pages improve with SR4.
	if rr.StaticAll.Median() > 20*time.Millisecond {
		t.Fatalf("static median %v too slow", rr.StaticAll.Median())
	}
	if sr.WikiAll.Quantile(0.75) >= rr.WikiAll.Quantile(0.75) {
		t.Fatalf("SR4 Q3 (%v) not better than RR (%v)",
			sr.WikiAll.Quantile(0.75), rr.WikiAll.Quantile(0.75))
	}
	// Cache model engaged on every replica.
	for i, h := range sr.HitRates {
		if h <= 0 || h >= 1 {
			t.Fatalf("replica %d hit rate %v implausible", i, h)
		}
	}

	for _, emit := range []func(*bytes.Buffer) error{
		func(b *bytes.Buffer) error { return res.WriteFig6TSV(b) },
		func(b *bytes.Buffer) error { return res.WriteFig7TSV(b) },
		func(b *bytes.Buffer) error { return res.WriteFig8TSV(b) },
	} {
		var buf bytes.Buffer
		if err := emit(&buf); err != nil {
			t.Fatal(err)
		}
		if buf.Len() == 0 {
			t.Fatal("empty TSV")
		}
	}
	if len(res.Summaries()) != 2 {
		t.Fatal("summaries wrong")
	}
}

func TestAblationCandidates(t *testing.T) {
	res := RunCandidateAblation(AblationConfig{
		Cluster: smallCluster(9),
		Queries: 5000,
		Rho:     0.85,
	})
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// k=2 must already capture most of the gain over k=1 (Mitzenmacher).
	k1, k2 := res.Rows[0].Mean, res.Rows[1].Mean
	if k2 >= k1 {
		t.Fatalf("k=2 (%v) not better than k=1 (%v)", k2, k1)
	}
	var buf bytes.Buffer
	if err := res.WriteTSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "k=1 (RR)") {
		t.Fatal("ablation TSV missing rows")
	}
}

func TestDeterministicExperiments(t *testing.T) {
	runOnce := func() time.Duration {
		return RunPoisson(smallCluster(10), SRdyn(), 60, 3000, PoissonHooks{}).RT.Mean()
	}
	if runOnce() != runOnce() {
		t.Fatal("experiment not deterministic for fixed seed")
	}
}

// wikiDayFast returns a compressed, low-volume day for tests.
func wikiDayFast(seed uint64) wiki.Config {
	return wiki.Config{
		Seed:        seed,
		Compression: 288, // 24h -> 5 simulated minutes
	}
}
