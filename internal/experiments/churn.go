package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"srlb/internal/metrics"
	"srlb/internal/testbed"
)

// ChurnConfig is the pool-churn / autoscale experiment: mid-run, part of
// the server pool is drained (scale-in under load — established flows
// finish, no new connections land there) and later replaced by freshly
// added servers (scale-out). Each load point runs two topology variants
// under identical arrivals:
//
//   - "steady" — the fixed pool, the baseline every figure uses.
//   - "churn"  — the drain/add schedule above.
//
// The measurement is how much of the churn window's capacity squeeze
// each policy passes through to clients: Service Hunting steers new
// connections around the drained servers' queues and onto fresh ones by
// construction, while the random spray only finds them by luck.
type ChurnConfig struct {
	Cluster ClusterConfig
	Lambda0 float64
	// Rhos are the normalized loads, relative to the BASE pool's
	// capacity (default {0.5, 0.75, 0.95}).
	Rhos []float64
	// ChurnBy is how many servers drain and are later re-added (default
	// a third of the pool, at least 1).
	ChurnBy int
	// DrainFrac and GrowFrac place the two phases on the arrival span
	// (defaults 0.3 and 0.65).
	DrainFrac, GrowFrac float64
	// Queries per cell (default 20000).
	Queries int
	// Policies defaults to {RR, SR4, SRdyn}.
	Policies []PolicySpec
	// Seeds is the replication axis (default: the cluster seed alone).
	Seeds    []uint64
	Workers  int
	Progress func(string)
}

// ChurnRow is one (policy, rho, variant) outcome, aggregated across the
// replication axis.
type ChurnRow struct {
	Policy string
	Rho    float64
	// Mode is "steady" or "churn".
	Mode string
	// N counts completed replicates.
	N                   int
	Mean, MeanCI95, P99 time.Duration
	OKFrac, OKFracCI95  float64
	// Refused and Unfinished are across-seed mean counts.
	Refused, Unfinished float64
}

// ChurnResult holds the full grid.
type ChurnResult struct {
	Lambda0 float64
	ChurnBy int
	Seeds   []uint64
	Rows    []ChurnRow
}

// RunChurn executes the experiment.
func RunChurn(cfg ChurnConfig) ChurnResult { return RunChurnCtx(context.Background(), cfg) }

// RunChurnCtx is RunChurn with cancellation; cancelled cells are dropped
// from the aggregates.
func RunChurnCtx(ctx context.Context, cfg ChurnConfig) ChurnResult {
	cfg.Cluster = cfg.Cluster.withDefaults()
	if len(cfg.Rhos) == 0 {
		cfg.Rhos = []float64{0.5, 0.75, 0.95}
	}
	if cfg.ChurnBy == 0 {
		cfg.ChurnBy = max(1, cfg.Cluster.Servers/3)
	}
	if cfg.DrainFrac == 0 {
		cfg.DrainFrac = 0.3
	}
	if cfg.GrowFrac == 0 {
		cfg.GrowFrac = 0.65
	}
	if cfg.Queries == 0 {
		cfg.Queries = 20000
	}
	if len(cfg.Policies) == 0 {
		cfg.Policies = []PolicySpec{RR(), SRc(4), SRdyn()}
	}
	if cfg.Lambda0 == 0 {
		cal := CalibrateCached(CalibrationConfig{Cluster: cfg.Cluster})
		cfg.Lambda0 = cal.Lambda0
	}

	res := ChurnResult{Lambda0: cfg.Lambda0, ChurnBy: cfg.ChurnBy}
	// The schedule is rate-relative: each phase is a fraction of the
	// arrival span, staggered by 1% per server, so the same two variants
	// serve every load point of one sweep — each cell resolves the
	// fractions against its own span (historically this ran one sweep
	// per rho with hand-resolved absolute times).
	agg, _ := Runner{Workers: cfg.Workers, Progress: cfg.Progress}.RunSweepStats(ctx, Sweep{
		Cluster:  cfg.Cluster,
		Policies: cfg.Policies,
		Variants: []ClusterVariant{
			{Name: "steady"},
			{Name: "churn", Apply: func(c ClusterConfig) ClusterConfig {
				c.Events = churnEvents(cfg.ChurnBy, cfg.DrainFrac, cfg.GrowFrac)
				return c
			}},
		},
		Loads:    cfg.Rhos,
		Seeds:    cfg.Seeds,
		Workload: PoissonWorkload{Lambda0: cfg.Lambda0, Queries: cfg.Queries},
	})
	res.Seeds = agg.Seeds
	for li, rho := range cfg.Rhos {
		for pi, spec := range cfg.Policies {
			for vi, mode := range []string{"steady", "churn"} {
				cs := agg.CellAt(pi, vi, li)
				if cs.N() == 0 {
					continue
				}
				res.Rows = append(res.Rows, ChurnRow{
					Policy: spec.Name, Rho: rho, Mode: mode, N: cs.N(),
					Mean:     secDur(cs.Mean.Dist.Mean),
					MeanCI95: secDur(cs.Mean.Dist.ReportedCI95()),
					P99:      secDur(cs.P99.Dist.Mean),
					OKFrac:   cs.OKFraction.Dist.Mean, OKFracCI95: cs.OKFraction.Dist.ReportedCI95(),
					Refused: cs.Refused.Dist.Mean, Unfinished: cs.Unfinished.Dist.Mean,
				})
			}
		}
	}
	return res
}

// churnEvents builds the rate-relative drain + re-add schedule: churnBy
// drains starting at drainFrac of the arrival span, churnBy adds at
// growFrac, each phase staggered by 1% of the span per server. Fractions
// clamp to 1 so large pools (or late phases) stay valid schedules — the
// tail of a long stagger lands at span end, where the absolute-time
// schedule used to fire it after the last arrival.
func churnEvents(churnBy int, drainFrac, growFrac float64) []testbed.Event {
	frac := func(f float64) float64 {
		if f > 1 {
			return 1
		}
		return f
	}
	events := make([]testbed.Event, 0, 2*churnBy)
	for g := 0; g < churnBy; g++ {
		events = append(events, testbed.DrainServer(0, 0, g).AtFraction(frac(drainFrac+float64(g)*0.01)))
	}
	for g := 0; g < churnBy; g++ {
		events = append(events, testbed.AddServer(0, 0).AtFraction(frac(growFrac+float64(g)*0.01)))
	}
	return events
}

// WriteTSV renders the grid: one row per (rho, policy, mode).
func (r ChurnResult) WriteTSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# Pool churn/autoscale: drain+re-add %d servers mid-run; lambda0=%.1f q/s\n",
		r.ChurnBy, r.Lambda0); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "rho\tpolicy\tmode\tmean_s\tmean_ci95_s\tp99_s\tok_frac\tok_ci95\trefused\tunfinished\tn"); err != nil {
		return err
	}
	for _, row := range r.Rows {
		if _, err := fmt.Fprintf(w, "%.2f\t%s\t%s\t%s\t%s\t%s\t%.4f\t%.4f\t%.0f\t%.0f\t%d\n",
			row.Rho, row.Policy, row.Mode,
			metrics.FormatDuration(row.Mean),
			metrics.FormatDuration(row.MeanCI95),
			metrics.FormatDuration(row.P99),
			row.OKFrac, row.OKFracCI95, row.Refused, row.Unfinished, row.N); err != nil {
			return err
		}
	}
	return nil
}

// ChurnPenalty returns the churn/steady mean-RT ratio for the policy at
// the rho closest to the requested load — "how much slower did clients
// get because the pool churned".
func (r ChurnResult) ChurnPenalty(policyName string, rho float64) (float64, error) {
	var steady, churn time.Duration
	bestDiff := 2.0
	for _, row := range r.Rows {
		if row.Policy != policyName {
			continue
		}
		d := row.Rho - rho
		if d < 0 {
			d = -d
		}
		if d > bestDiff {
			continue
		}
		if d < bestDiff {
			bestDiff = d
			steady, churn = 0, 0
		}
		switch row.Mode {
		case "steady":
			steady = row.Mean
		case "churn":
			churn = row.Mean
		}
	}
	if steady == 0 || churn == 0 {
		return 0, fmt.Errorf("churn: no complete steady/churn pair for %q near rho=%.2f", policyName, rho)
	}
	return float64(churn) / float64(steady), nil
}
