package experiments

import (
	"fmt"
	"io"
	"time"

	"srlb/internal/metrics"
)

// findRun returns the run for a policy name.
func (r WikiResult) findRun(name string) (WikiRun, error) {
	for _, run := range r.Runs {
		if run.Spec.Name == name {
			return run, nil
		}
	}
	return WikiRun{}, fmt.Errorf("wiki: no run for policy %q", name)
}

// binLabel renders a bin's start as the trace-time hour (the paper's
// "time of day (UTC)" axis).
func (r WikiResult) binLabel(binIdx int, bins *metrics.TimeBins) string {
	virtual := bins.BinStart(binIdx)
	real := r.Day.RealTime(virtual)
	h := int(real.Hours())
	m := int(real.Minutes()) % 60
	return fmt.Sprintf("%02d:%02d", h, m)
}

// WriteFig6TSV emits figure 6: the wiki-page query rate and the median
// wiki-page load time per 10-minute bin, for every policy.
func (r WikiResult) WriteFig6TSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "# Figure 6: wiki replay — query rate and median load time per bin"); err != nil {
		return err
	}
	fmt.Fprint(w, "time\trate_qps")
	for _, run := range r.Runs {
		fmt.Fprintf(w, "\tmedian_s_%s", run.Spec.Name)
	}
	fmt.Fprintln(w)
	if len(r.Runs) == 0 {
		return nil
	}
	ref := r.Runs[0]
	comp := r.Day.RealTime(time.Second).Seconds()
	for i := 0; i < ref.WikiBins.NumBins(); i++ {
		// The rate axis reports trace-time q/s: bin counts divided by the
		// REAL bin width (virtual width × compression keeps it invariant).
		rate := ref.RateBins.Rate(i) // virtual q/s == real q/s (rates preserved)
		_ = comp
		fmt.Fprintf(w, "%s\t%.1f", r.binLabel(i, ref.WikiBins), rate)
		for _, run := range r.Runs {
			fmt.Fprintf(w, "\t%s", metrics.FormatDuration(run.WikiBins.Bin(i).Median()))
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

// WriteFig7TSV emits figure 7: deciles 1–9 of the wiki-page load time per
// bin, one block per policy.
func (r WikiResult) WriteFig7TSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "# Figure 7: wiki replay — load-time deciles 1..9 per bin"); err != nil {
		return err
	}
	for _, run := range r.Runs {
		fmt.Fprintf(w, "# policy: %s\n", run.Spec.Name)
		fmt.Fprint(w, "time")
		for d := 1; d <= 9; d++ {
			fmt.Fprintf(w, "\td%d_s", d)
		}
		fmt.Fprintln(w)
		for i := 0; i < run.WikiBins.NumBins(); i++ {
			fmt.Fprint(w, r.binLabel(i, run.WikiBins))
			for _, q := range run.WikiBins.Bin(i).Deciles() {
				fmt.Fprintf(w, "\t%s", metrics.FormatDuration(q))
			}
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
		fmt.Fprintln(w)
	}
	return nil
}

// WriteFig8TSV emits figure 8: the CDF of wiki-page load time over the
// whole day per policy, with the paper's summary stats (median and third
// quartile) in the header.
func (r WikiResult) WriteFig8TSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "# Figure 8: wiki replay — CDF of wiki page load time over the whole day"); err != nil {
		return err
	}
	for _, run := range r.Runs {
		fmt.Fprintf(w, "# policy: %s median=%s q3=%s n=%d\n",
			run.Spec.Name,
			metrics.FormatDuration(run.WikiAll.Median()),
			metrics.FormatDuration(run.WikiAll.Quantile(0.75)),
			run.WikiAll.Count())
		fmt.Fprintf(w, "rt_s\tcdf_%s\n", run.Spec.Name)
		for _, pt := range run.WikiAll.CDF(200) {
			fmt.Fprintf(w, "%s\t%.4f\n", metrics.FormatDuration(pt.Value), pt.Fraction)
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

// Summary compares the paper's headline figure-8 numbers: the overall
// median and Q3 per policy.
type WikiSummary struct {
	Policy     string
	Median, Q3 time.Duration
	WikiPages  int
	Refused    int
	MeanHit    float64
}

// Summaries returns one summary per run.
func (r WikiResult) Summaries() []WikiSummary {
	out := make([]WikiSummary, 0, len(r.Runs))
	for _, run := range r.Runs {
		var hit float64
		for _, h := range run.HitRates {
			hit += h
		}
		if len(run.HitRates) > 0 {
			hit /= float64(len(run.HitRates))
		}
		out = append(out, WikiSummary{
			Policy:    run.Spec.Name,
			Median:    run.WikiAll.Median(),
			Q3:        run.WikiAll.Quantile(0.75),
			WikiPages: run.WikiAll.Count(),
			Refused:   run.Refused,
			MeanHit:   hit,
		})
	}
	return out
}
