package experiments

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// testResilienceConfig is a small but honest instance: two anycast
// replicas, a mid-run kill and a fast recover, run hot enough (rho 0.9)
// that second-candidate acceptances — the flows a cold consistent-hash
// fallback mis-steers and a warm table steers right — are common, with
// the outage shorter than the SYN-retransmission backoff horizon so
// retrying flows span it.
func testResilienceConfig() ResilienceConfig {
	return ResilienceConfig{
		Cluster:     ClusterConfig{Seed: 71, Servers: 4},
		Lambda0:     80,
		Rho:         0.9,
		Queries:     3000,
		RecoverFrac: 0.43,
		Seeds:       DeriveSeeds(71, 2),
	}
}

// The ablation's claim, pinned on a fixed seed: through a replica kill,
// warm handoff completes at least as much as the chash miss-fallback,
// which completes strictly more than a stateless-random restart.
func TestResilienceKillOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-cell sweep")
	}
	res := RunResilience(testResilienceConfig())
	if len(res.Rows) != 9 {
		t.Fatalf("%d rows, want the 3×3 grid", len(res.Rows))
	}
	for _, scenario := range resilienceScenarios {
		warm, err := res.Row(scenario, "warm")
		if err != nil {
			t.Fatal(err)
		}
		chash, err := res.Row(scenario, "chash")
		if err != nil {
			t.Fatal(err)
		}
		stateless, err := res.Row(scenario, "stateless")
		if err != nil {
			t.Fatal(err)
		}
		if warm.N != 2 || chash.N != 2 || stateless.N != 2 {
			t.Fatalf("%s: replicates = %d/%d/%d, want 2 each", scenario, warm.N, chash.N, stateless.N)
		}
		if warm.OKFrac < chash.OKFrac {
			t.Errorf("%s: warm ok=%.4f below chash ok=%.4f", scenario, warm.OKFrac, chash.OKFrac)
		}
		if chash.OKFrac <= stateless.OKFrac {
			t.Errorf("%s: chash ok=%.4f not above stateless ok=%.4f", scenario, chash.OKFrac, stateless.OKFrac)
		}
	}
	// The kill scenario is the acceptance case: warm must strictly beat
	// the fallback's guessing — the restarted replica holds real
	// bindings for flows the consistent hash would mis-steer.
	warm, _ := res.Row("kill", "warm")
	chash, _ := res.Row("kill", "chash")
	if warm.OKFrac <= chash.OKFrac {
		t.Errorf("kill: warm ok=%.4f does not strictly beat chash ok=%.4f", warm.OKFrac, chash.OKFrac)
	}
	// The TSV facets by scenario and carries the completion columns.
	var buf bytes.Buffer
	if err := res.WriteTSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"# facet: scenario=kill", "# facet: scenario=rack", "# facet: scenario=rolling", "ok_frac\tok_frac_ci95"} {
		if !strings.Contains(out, want) {
			t.Fatalf("TSV missing %q:\n%s", want, out)
		}
	}
	if _, err := res.Row("kill", "lukewarm"); err == nil {
		t.Fatal("unknown mode did not error")
	}
}

// The runner's determinism contract extends through RunResilience: the
// marshalled row grid is byte-identical at 1 vs 4 workers.
func TestResilienceParallelEqualsSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-cell sweep")
	}
	cfg := testResilienceConfig()
	cfg.Workers = 1
	serial := RunResilience(cfg)
	cfg.Workers = 4
	parallel := RunResilience(cfg)
	sj, err := json.Marshal(serial.Rows)
	if err != nil {
		t.Fatal(err)
	}
	pj, err := json.Marshal(parallel.Rows)
	if err != nil {
		t.Fatal(err)
	}
	if string(sj) != string(pj) {
		t.Fatalf("rows differ between 1 and 4 workers:\n%s\n%s", sj, pj)
	}
}
