package experiments

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"srlb/internal/metrics"
)

// Runner executes scenarios on a worker pool. Cells are independent
// simulations with all randomness derived from their own scenario value,
// so the worker count changes wall-clock time and nothing else: results
// are identical for 1 worker and N, and arrive in input order.
//
// The zero value runs on GOMAXPROCS workers with no progress output.
type Runner struct {
	// Workers bounds concurrent scenarios; 0 means GOMAXPROCS, 1 is
	// fully serial.
	Workers int
	// Progress, if non-nil, receives one line per finished cell. It is
	// called from worker goroutines under an internal lock, in completion
	// (not input) order.
	Progress func(string)
}

func (r Runner) workers(n int) int {
	w := r.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Run executes the scenarios and returns one CellResult per scenario, in
// input order regardless of completion order. On cancellation it returns
// promptly with partial results — finished cells are complete, the cell(s)
// in flight carry Err, cells never started are marked Skipped — together
// with the context error.
func (r Runner) Run(ctx context.Context, scenarios []Scenario) ([]CellResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	n := len(scenarios)
	results := make([]CellResult, n)
	for i := range results {
		results[i] = CellResult{Index: i, Name: scenarios[i].label(), Policy: scenarios[i].Policy.Name,
			Workload: scenarios[i].Workload.Label(), Variant: scenarios[i].Variant,
			Load: scenarios[i].load(), LoadVec: scenarios[i].LoadVec, Seed: scenarios[i].seed()}
	}
	if n == 0 {
		return results, ctx.Err()
	}

	var (
		wg       sync.WaitGroup
		progress sync.Mutex
		done     int
	)
	report := func(c CellResult) {
		if r.Progress == nil {
			return
		}
		progress.Lock()
		defer progress.Unlock()
		done++
		if c.Err != nil {
			r.Progress(fmt.Sprintf("[%d/%d] %s: %v", done, n, c.Name, c.Err))
			return
		}
		r.Progress(fmt.Sprintf("[%d/%d] %s: mean=%s ok=%.3f (%v)",
			done, n, c.Name,
			metrics.FormatDuration(c.Outcome.RT.Mean()), c.Outcome.OKFraction(),
			c.Wall.Round(time.Millisecond)))
	}

	next := make(chan int)
	for w := r.workers(n); w > 0; w-- {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				res := scenarios[i].Run(ctx)
				res.Index = i
				results[i] = res
				report(res)
			}
		}()
	}
feed:
	for i := range scenarios {
		select {
		case next <- i:
		case <-ctx.Done():
			// Cells never handed out stay in their Skipped state.
			for j := i; j < n; j++ {
				if results[j].Outcome.RT == nil && results[j].Err == nil {
					results[j].Err = ctx.Err()
				}
			}
			break feed
		}
	}
	close(next)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		// A cell may have been claimed concurrently with cancellation and
		// finished anyway; re-mark only truly unrun cells.
		for j := range results {
			if results[j].Outcome.RT == nil && results[j].Err == nil {
				results[j].Err = err
			}
		}
		return results, err
	}
	return results, nil
}

// RunSweep expands the sweep and executes it, returning the axis-indexed
// result. The error mirrors Run's: non-nil only on cancellation, with the
// partial cells still returned.
func (r Runner) RunSweep(ctx context.Context, s Sweep) (SweepResult, error) {
	s = s.withDefaults()
	cells, err := r.Run(ctx, s.Scenarios())
	return SweepResult{
		Policies: s.Policies, Variants: s.Variants,
		Loads: s.loadLabels(), LoadVecs: s.LoadGrid.Points(),
		Seeds: s.Seeds, Cells: cells,
	}, err
}
