package experiments

import (
	"context"
	"fmt"
	"io"
	"math"
	"time"

	"srlb/internal/appserver"
	"srlb/internal/metrics"
	"srlb/internal/stats"
)

// HeteroConfig studies a heterogeneous cluster — a natural extension the
// paper's design accommodates for free: the acceptance decision is a
// *local* busy-thread threshold, so a slow box (fewer cores) simply
// crosses its threshold earlier and refuses more offers, shedding load to
// faster boxes. A random balancer, blind to capacity, keeps feeding the
// slow boxes.
type HeteroConfig struct {
	Cluster ClusterConfig
	// SlowFraction of the servers get SlowCores instead of the default
	// (defaults: 1/3 of the cluster at 1 core vs the usual 2).
	SlowFraction float64
	SlowCores    float64
	// Rho is computed against the HETEROGENEOUS capacity (default 0.85).
	Rho     float64
	Queries int
	// Seeds is the replication axis (default: the cluster seed alone).
	Seeds []uint64
	// Workers bounds the per-policy parallelism (0 = GOMAXPROCS).
	Workers  int
	Progress func(string)
}

// HeteroRow is one policy's outcome on the mixed cluster, aggregated
// across the replication axis (CI95 fields are zero when N == 1).
type HeteroRow struct {
	Policy       string
	Mean, Median time.Duration
	P95          time.Duration
	Refused      int
	// SlowShare is the fraction of total completions served by slow boxes
	// (capacity-proportional would equal slow capacity share).
	SlowShare float64
	// N counts the completed replicates behind the row.
	N             int
	MeanCI95      time.Duration
	SlowShareCI95 float64
}

// HeteroResult compares policies on the mixed cluster.
type HeteroResult struct {
	Rho           float64
	SlowServers   int
	TotalServers  int
	CapacityShare float64 // slow boxes' share of total capacity
	Seeds         []uint64
	Rows          []HeteroRow
}

// RunHetero executes RR, SR4 and SRdyn on the mixed cluster — a Sweep over
// the three policies whose cluster carries a ServerOverride, with the
// slow-box completion share read from the workload's PoissonStats.
func RunHetero(cfg HeteroConfig) HeteroResult { return RunHeteroCtx(context.Background(), cfg) }

// RunHeteroCtx is RunHetero with cancellation; cancelled rows are omitted.
func RunHeteroCtx(ctx context.Context, cfg HeteroConfig) HeteroResult {
	cfg.Cluster = cfg.Cluster.withDefaults()
	if cfg.SlowFraction == 0 {
		cfg.SlowFraction = 1.0 / 3
	}
	if cfg.SlowCores == 0 {
		cfg.SlowCores = 1
	}
	if cfg.Rho == 0 {
		cfg.Rho = 0.85
	}
	if cfg.Queries == 0 {
		cfg.Queries = 20000
	}
	servers := cfg.Cluster.Servers
	slow := int(float64(servers) * cfg.SlowFraction)
	fastCores := cfg.Cluster.Server.Cores
	totalCores := float64(servers-slow)*fastCores + float64(slow)*cfg.SlowCores
	capacity := totalCores / MeanDemand.Seconds()

	slowCfg := cfg.Cluster.Server
	slowCfg.Cores = cfg.SlowCores
	cluster := cfg.Cluster
	cluster.ServerOverride = func(i int) appserver.Config {
		if i < slow {
			return slowCfg
		}
		return appserver.Config{}
	}

	res := HeteroResult{
		Rho:           cfg.Rho,
		SlowServers:   slow,
		TotalServers:  servers,
		CapacityShare: float64(slow) * cfg.SlowCores / totalCores,
	}
	policies := []PolicySpec{RR(), SRc(4), SRdyn()}
	sweep, _ := Runner{Workers: cfg.Workers, Progress: cfg.Progress}.RunSweep(ctx, Sweep{
		Cluster:  cluster,
		Policies: policies,
		Loads:    []float64{cfg.Rho},
		Seeds:    cfg.Seeds,
		Workload: PoissonWorkload{Lambda0: capacity, Queries: cfg.Queries},
	})
	agg := sweep.Aggregate()
	res.Seeds = sweep.Seeds
	for pi, spec := range policies {
		cs := agg.Cell(pi, 0)
		if cs.N() == 0 {
			continue
		}
		row := HeteroRow{
			Policy:   spec.Name,
			Mean:     secDur(cs.Mean.Dist.Mean),
			Median:   secDur(cs.Median.Dist.Mean),
			P95:      secDur(cs.P95.Dist.Mean),
			Refused:  int(math.Round(cs.Refused.Dist.Mean)),
			N:        cs.N(),
			MeanCI95: secDur(cs.Mean.Dist.ReportedCI95()),
		}
		var shares []float64
		for si := range sweep.Seeds {
			cell := sweep.Cell(pi, 0, si)
			if cell.Err != nil { // match newCellStats: no truncated runs
				continue
			}
			if ps, ok := cell.Outcome.Extra.(PoissonStats); ok {
				var slowDone, allDone uint64
				for i, done := range ps.ServerCompleted {
					allDone += done
					if i < slow {
						slowDone += done
					}
				}
				if allDone > 0 {
					shares = append(shares, float64(slowDone)/float64(allDone))
				}
			}
		}
		if d := stats.Describe(shares); d.N > 0 {
			row.SlowShare = d.Mean
			row.SlowShareCI95 = d.CI95
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

// WriteTSV renders the study; replicated runs gain mean_ci95_s and
// slow_share_ci95 columns.
func (r HeteroResult) WriteTSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w,
		"# Extension: heterogeneous cluster (%d/%d slow servers, capacity share %.3f), rho=%.2f\n",
		r.SlowServers, r.TotalServers, r.CapacityShare, r.Rho); err != nil {
		return err
	}
	replicated := len(r.Seeds) > 1
	if replicated {
		fmt.Fprintln(w, "policy\tmean_s\tmean_ci95_s\tmedian_s\tp95_s\tslow_share\tslow_share_ci95\trefused\tn")
	} else {
		fmt.Fprintln(w, "policy\tmean_s\tmedian_s\tp95_s\tslow_share\trefused")
	}
	for _, row := range r.Rows {
		var err error
		if replicated {
			_, err = fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%s\t%.3f\t%.3f\t%d\t%d\n",
				row.Policy,
				metrics.FormatDuration(row.Mean),
				metrics.FormatDuration(row.MeanCI95),
				metrics.FormatDuration(row.Median),
				metrics.FormatDuration(row.P95),
				row.SlowShare, row.SlowShareCI95, row.Refused, row.N)
		} else {
			_, err = fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%.3f\t%d\n",
				row.Policy,
				metrics.FormatDuration(row.Mean),
				metrics.FormatDuration(row.Median),
				metrics.FormatDuration(row.P95),
				row.SlowShare, row.Refused)
		}
		if err != nil {
			return err
		}
	}
	return nil
}
