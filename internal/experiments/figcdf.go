package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"srlb/internal/metrics"
	"srlb/internal/sketch"
	"srlb/internal/stats"
)

// CDFConfig reproduces figures 3 and 5: the CDF of page load time over a
// 20000-query Poisson batch at a fixed normalized load, for every policy.
type CDFConfig struct {
	Cluster ClusterConfig
	// Rho is the normalized request rate (figure 3: 0.88; figure 5: 0.61).
	Rho float64
	// Lambda0 normalizes ρ (0 ⇒ measured first).
	Lambda0  float64
	Policies []PolicySpec
	Queries  int
	// Points bounds the emitted CDF resolution (default 200).
	Points int
	// Seeds is the replication axis (default: the cluster seed alone).
	// With several seeds the emitted CDFs gain across-seed confidence
	// bands and the per-policy medians a 95% CI.
	Seeds []uint64
	// Workers bounds the sweep's parallelism (0 = GOMAXPROCS).
	Workers  int
	Progress func(string)
}

// CDFBand is the across-seed confidence band of one policy's CDF: at
// each cumulative fraction, the mean of the per-seed quantile curves
// with its Student-t 95% interval.
type CDFBand struct {
	Fraction    []float64
	Lo, Mid, Hi []time.Duration
}

// CDFResult holds one response-time distribution per policy.
type CDFResult struct {
	Rho      float64
	Lambda0  float64
	Policies []PolicySpec
	Seeds    []uint64
	// RT[i] is the response-time sketch for Policies[i] — all seeds
	// pooled (Histogram.Merge is exact, so pooling order is immaterial).
	RT []*sketch.Histogram
	// Stats[i] aggregates Policies[i]'s per-seed summary statistics
	// (median, p95, … with CIs) across the replication axis.
	Stats []CellStats
	// Bands[i] is the across-seed CDF band for Policies[i]; nil when
	// the sweep ran a single seed.
	Bands []CDFBand
	// Points is the CDF resolution for WriteTSV.
	Points int
}

// RunCDF executes the experiment at cfg.Rho: a one-load-point Sweep over
// the policy set × seeds, run in parallel.
func RunCDF(cfg CDFConfig) CDFResult { return RunCDFCtx(context.Background(), cfg) }

// RunCDFCtx is RunCDF with cancellation; cancelled cells yield empty
// recorders.
func RunCDFCtx(ctx context.Context, cfg CDFConfig) CDFResult {
	cfg.Cluster = cfg.Cluster.withDefaults()
	if cfg.Lambda0 == 0 {
		cal := CalibrateCached(CalibrationConfig{Cluster: cfg.Cluster})
		cfg.Lambda0 = cal.Lambda0
	}
	if len(cfg.Policies) == 0 {
		cfg.Policies = PaperPolicies()
	}
	if cfg.Points == 0 {
		cfg.Points = 200
	}

	sweep, _ := Runner{Workers: cfg.Workers, Progress: cfg.Progress}.RunSweep(ctx, Sweep{
		Cluster:  cfg.Cluster,
		Policies: cfg.Policies,
		Loads:    []float64{cfg.Rho},
		Seeds:    cfg.Seeds,
		Workload: PoissonWorkload{Lambda0: cfg.Lambda0, Queries: cfg.Queries},
	})
	agg := sweep.Aggregate()

	res := CDFResult{Rho: cfg.Rho, Lambda0: cfg.Lambda0, Policies: cfg.Policies,
		Seeds: sweep.Seeds, Points: cfg.Points}
	replicated := len(sweep.Seeds) > 1
	for pi := range cfg.Policies {
		pooled := sketch.New()
		for si := range sweep.Seeds {
			cell := sweep.Cell(pi, 0, si)
			if cell.Err != nil { // drop truncated mid-cancel recorders too
				continue
			}
			pooled.Merge(cell.Outcome.RT)
		}
		// The band is evaluated at the exact fractions the pooled CDF
		// will emit (Histogram.CDF clamps its point count to the sample
		// count), so WriteTSV's row-by-row pairing stays aligned.
		var curves [][]time.Duration // per-seed quantile curves
		fractions := cdfFractions(pooled, cfg.Points)
		if replicated {
			for si := range sweep.Seeds {
				cell := sweep.Cell(pi, 0, si)
				if cell.Err != nil {
					continue
				}
				curve := make([]time.Duration, len(fractions))
				for fi, p := range fractions {
					curve[fi] = cell.Outcome.RT.Quantile(p)
				}
				curves = append(curves, curve)
			}
		}
		res.RT = append(res.RT, pooled)
		res.Stats = append(res.Stats, agg.Cell(pi, 0))
		res.Bands = append(res.Bands, cdfBand(fractions, curves))
	}
	return res
}

// cdfFractions returns the cumulative fractions pooled.CDF(points) will
// emit, so band rows and CDF rows share one grid.
func cdfFractions(pooled *sketch.Histogram, points int) []float64 {
	pts := pooled.CDF(points)
	out := make([]float64, len(pts))
	for i, pt := range pts {
		out[i] = pt.Fraction
	}
	return out
}

// cdfBand folds per-seed quantile curves into an across-seed band
// (zero-value band when there are fewer than two curves).
func cdfBand(fractions []float64, curves [][]time.Duration) CDFBand {
	if len(curves) < 2 {
		return CDFBand{}
	}
	band := CDFBand{
		Fraction: fractions,
		Lo:       make([]time.Duration, len(fractions)),
		Mid:      make([]time.Duration, len(fractions)),
		Hi:       make([]time.Duration, len(fractions)),
	}
	xs := make([]float64, len(curves))
	for fi := range fractions {
		for ci, curve := range curves {
			xs[ci] = curve[fi].Seconds()
		}
		d := stats.Describe(xs)
		band.Mid[fi] = secDur(d.Mean)
		// Response times are nonnegative; clamp the t interval's lower
		// edge rather than emit an impossible value.
		band.Lo[fi] = max(0, secDur(d.Lo()))
		band.Hi[fi] = secDur(d.Hi())
	}
	return band
}

// RunFig3 runs the high-load CDF (ρ = 0.88, §V-C figure 3).
func RunFig3(cfg CDFConfig) CDFResult {
	cfg.Rho = 0.88
	return RunCDF(cfg)
}

// RunFig5 runs the light-load CDF (ρ = 0.61, §V-C figure 5).
func RunFig5(cfg CDFConfig) CDFResult {
	cfg.Rho = 0.61
	return RunCDF(cfg)
}

// WriteTSV emits per-policy CDF blocks: rows of (response time in seconds,
// cumulative fraction) — the axes of figures 3 and 5. A replicated run
// (more than one seed) pools all seeds into the rt_s column and appends
// the across-seed band: rt_mean_s ± the Student-t 95% interval.
func (r CDFResult) WriteTSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# CDF of response time at rho=%.2f (lambda0=%.1f q/s)\n", r.Rho, r.Lambda0); err != nil {
		return err
	}
	for i, spec := range r.Policies {
		fmt.Fprintf(w, "# policy: %s (n=%d, median=%s", spec.Name, r.RT[i].Count(), metrics.FormatDuration(r.RT[i].Median()))
		if len(r.Stats) > i && r.Stats[i].N() > 1 {
			fmt.Fprintf(w, " ± %s over %d seeds", metrics.FormatDuration(secDur(r.Stats[i].Median.Dist.ReportedCI95())), r.Stats[i].N())
		}
		fmt.Fprintln(w, ")")
		banded := len(r.Bands) > i && len(r.Bands[i].Fraction) > 0
		fmt.Fprintf(w, "rt_s\tcdf_%s", spec.Name)
		if banded {
			fmt.Fprint(w, "\trt_mean_s\trt_lo_s\trt_hi_s")
		}
		fmt.Fprintln(w)
		band := CDFBand{}
		if banded {
			band = r.Bands[i]
		}
		for pi, pt := range r.RT[i].CDF(r.Points) {
			fmt.Fprintf(w, "%s\t%.4f", metrics.FormatDuration(pt.Value), pt.Fraction)
			if banded && pi < len(band.Fraction) {
				fmt.Fprintf(w, "\t%s\t%s\t%s",
					metrics.FormatDuration(band.Mid[pi]),
					metrics.FormatDuration(band.Lo[pi]),
					metrics.FormatDuration(band.Hi[pi]))
			}
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}
