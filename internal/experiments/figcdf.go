package experiments

import (
	"context"
	"fmt"
	"io"

	"srlb/internal/metrics"
)

// CDFConfig reproduces figures 3 and 5: the CDF of page load time over a
// 20000-query Poisson batch at a fixed normalized load, for every policy.
type CDFConfig struct {
	Cluster ClusterConfig
	// Rho is the normalized request rate (figure 3: 0.88; figure 5: 0.61).
	Rho float64
	// Lambda0 normalizes ρ (0 ⇒ measured first).
	Lambda0  float64
	Policies []PolicySpec
	Queries  int
	// Points bounds the emitted CDF resolution (default 200).
	Points int
	// Workers bounds the sweep's parallelism (0 = GOMAXPROCS).
	Workers  int
	Progress func(string)
}

// CDFResult holds one response-time distribution per policy.
type CDFResult struct {
	Rho      float64
	Lambda0  float64
	Policies []PolicySpec
	// RT[i] is the recorder for Policies[i].
	RT []*metrics.Recorder
	// Points is the CDF resolution for WriteTSV.
	Points int
}

// RunCDF executes the experiment at cfg.Rho: a one-load-point Sweep over
// the policy set, run in parallel.
func RunCDF(cfg CDFConfig) CDFResult { return RunCDFCtx(context.Background(), cfg) }

// RunCDFCtx is RunCDF with cancellation; cancelled cells yield empty
// recorders.
func RunCDFCtx(ctx context.Context, cfg CDFConfig) CDFResult {
	cfg.Cluster = cfg.Cluster.withDefaults()
	if cfg.Lambda0 == 0 {
		cal := Calibrate(CalibrationConfig{Cluster: cfg.Cluster})
		cfg.Lambda0 = cal.Lambda0
	}
	if len(cfg.Policies) == 0 {
		cfg.Policies = PaperPolicies()
	}
	if cfg.Points == 0 {
		cfg.Points = 200
	}

	sweep, _ := Runner{Workers: cfg.Workers, Progress: cfg.Progress}.RunSweep(ctx, Sweep{
		Cluster:  cfg.Cluster,
		Policies: cfg.Policies,
		Loads:    []float64{cfg.Rho},
		Workload: PoissonWorkload{Lambda0: cfg.Lambda0, Queries: cfg.Queries},
	})

	res := CDFResult{Rho: cfg.Rho, Lambda0: cfg.Lambda0, Policies: cfg.Policies, Points: cfg.Points}
	for pi := range cfg.Policies {
		cell := sweep.Cell(pi, 0, 0)
		rt := cell.Outcome.RT
		if rt == nil {
			rt = metrics.NewRecorder(0)
		}
		res.RT = append(res.RT, rt)
	}
	return res
}

// RunFig3 runs the high-load CDF (ρ = 0.88, §V-C figure 3).
func RunFig3(cfg CDFConfig) CDFResult {
	cfg.Rho = 0.88
	return RunCDF(cfg)
}

// RunFig5 runs the light-load CDF (ρ = 0.61, §V-C figure 5).
func RunFig5(cfg CDFConfig) CDFResult {
	cfg.Rho = 0.61
	return RunCDF(cfg)
}

// WriteTSV emits per-policy CDF blocks: rows of (response time in seconds,
// cumulative fraction) — the axes of figures 3 and 5.
func (r CDFResult) WriteTSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# CDF of response time at rho=%.2f (lambda0=%.1f q/s)\n", r.Rho, r.Lambda0); err != nil {
		return err
	}
	for i, spec := range r.Policies {
		fmt.Fprintf(w, "# policy: %s (n=%d, median=%s)\n",
			spec.Name, r.RT[i].Count(), metrics.FormatDuration(r.RT[i].Median()))
		fmt.Fprintf(w, "rt_s\tcdf_%s\n", spec.Name)
		for _, pt := range r.RT[i].CDF(r.Points) {
			fmt.Fprintf(w, "%s\t%.4f\n", metrics.FormatDuration(pt.Value), pt.Fraction)
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}
