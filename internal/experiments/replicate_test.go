package experiments

import (
	"context"
	"math"
	"testing"
	"time"
)

func TestSweepAggregate(t *testing.T) {
	const nSeeds = 5
	sweep := Sweep{
		Cluster:  ClusterConfig{Seed: 41, Servers: 4},
		Policies: []PolicySpec{RR(), SRc(4)},
		Loads:    []float64{0.5, 0.85},
		Seeds:    DeriveSeeds(41, nSeeds),
		Workload: PoissonWorkload{Lambda0: 80, Queries: 1500},
	}
	agg, err := Runner{}.RunSweepStats(context.Background(), sweep)
	if err != nil {
		t.Fatal(err)
	}
	if len(agg.Cells) != 4 {
		t.Fatalf("aggregated cells = %d, want 4 (policy × load)", len(agg.Cells))
	}
	for pi := range agg.Policies {
		for li := range agg.Loads {
			cs := agg.Cell(pi, li)
			if cs.N() != nSeeds {
				t.Fatalf("cell (%d,%d): n = %d, want %d", pi, li, cs.N(), nSeeds)
			}
			d := cs.Mean.Dist
			if d.CI95 <= 0 {
				t.Fatalf("cell (%d,%d): %d distinct seeds must yield a positive CI", pi, li, nSeeds)
			}
			if d.Mean < d.Min || d.Mean > d.Max {
				t.Fatalf("cell (%d,%d): mean %v outside [%v, %v]", pi, li, d.Mean, d.Min, d.Max)
			}
			if len(cs.Mean.Values) != nSeeds || len(cs.Refused.Values) != nSeeds {
				t.Fatalf("cell (%d,%d): raw replicate values not preserved", pi, li)
			}
			if cs.MeanRT() <= 0 {
				t.Fatalf("cell (%d,%d): zero aggregate mean", pi, li)
			}
		}
	}
	// The paper's claim must survive aggregation: SR4's whole interval
	// sits below RR's point estimate at high load. (RR's own CI is wide
	// at these small batches — that width is exactly the information a
	// single-seed figure was hiding.)
	rr, sr := agg.Cell(0, 1), agg.Cell(1, 1)
	if sr.Mean.Dist.Hi() >= rr.Mean.Dist.Mean {
		t.Fatalf("SR4 CI [%.3f, %.3f] not below RR mean %.3f at rho=0.85",
			sr.Mean.Dist.Lo(), sr.Mean.Dist.Hi(), rr.Mean.Dist.Mean)
	}
}

func TestAggregateSingleSeedDegenerates(t *testing.T) {
	sweep := Sweep{
		Cluster:  ClusterConfig{Seed: 42, Servers: 4},
		Policies: []PolicySpec{RR()},
		Loads:    []float64{0.5},
		Workload: PoissonWorkload{Lambda0: 80, Queries: 1000},
	}
	res, err := Runner{}.RunSweep(context.Background(), sweep)
	if err != nil {
		t.Fatal(err)
	}
	cs := res.Aggregate().Cell(0, 0)
	if cs.N() != 1 {
		t.Fatalf("n = %d, want 1", cs.N())
	}
	if !math.IsInf(cs.Mean.Dist.CI95, 1) {
		t.Fatal("single replicate must carry an unknown (+Inf) CI, not a finite one")
	}
	if cs.MeanCI95() != 0 {
		t.Fatal("the duration-typed reporting accessor must map the unknown CI to 0")
	}
	// The point estimate must be the underlying cell's, to duration
	// rounding.
	raw := res.Cell(0, 0, 0).Outcome.RT.Mean()
	if diff := cs.MeanRT() - raw; diff < -time.Microsecond || diff > time.Microsecond {
		t.Fatalf("aggregate mean %v diverges from the cell's %v", cs.MeanRT(), raw)
	}
}

func TestCDFBandAlignsWithPooledRows(t *testing.T) {
	// Fewer pooled samples than Points: Recorder.CDF clamps its row
	// count, and the band must follow the same grid row for row.
	res := RunCDF(CDFConfig{
		Cluster:  ClusterConfig{Seed: 44, Servers: 4},
		Rho:      0.5,
		Lambda0:  80,
		Policies: []PolicySpec{RR()},
		Queries:  60,
		Points:   200,
		Seeds:    DeriveSeeds(44, 3),
	})
	rows := res.RT[0].CDF(res.Points)
	band := res.Bands[0]
	if len(rows) >= 200 {
		t.Fatalf("test premise broken: %d pooled rows", len(rows))
	}
	if len(band.Fraction) != len(rows) {
		t.Fatalf("band has %d points, pooled CDF %d rows", len(band.Fraction), len(rows))
	}
	for i := range rows {
		if band.Fraction[i] != rows[i].Fraction {
			t.Fatalf("row %d: band fraction %v != CDF fraction %v", i, band.Fraction[i], rows[i].Fraction)
		}
		if band.Lo[i] > band.Mid[i] || band.Mid[i] > band.Hi[i] {
			t.Fatalf("row %d: band not ordered: %v %v %v", i, band.Lo[i], band.Mid[i], band.Hi[i])
		}
	}
}

func TestFig2Replicated(t *testing.T) {
	res := RunFig2(Fig2Config{
		Cluster:  ClusterConfig{Seed: 43, Servers: 4},
		Lambda0:  80,
		Rhos:     []float64{0.85},
		Policies: []PolicySpec{RR(), SRc(4)},
		Queries:  1500,
		Seeds:    DeriveSeeds(43, 3),
	})
	for pi := range res.Policies {
		pt := res.Points[pi][0]
		if pt.N != 3 {
			t.Fatalf("policy %d: n = %d, want 3", pi, pt.N)
		}
		if pt.MeanCI95 <= 0 || pt.MedianCI95 <= 0 {
			t.Fatalf("policy %d: missing CIs: %+v", pi, pt)
		}
	}
	if len(res.Stats.Cells) != 2 {
		t.Fatalf("stats cells = %d", len(res.Stats.Cells))
	}
}
