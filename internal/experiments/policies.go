// Policy ablation over the load-feedback telemetry plane: the four-way
// scheme comparison {random2, chash2, wleastload, flowlet} run over the
// cross-service interference workload (steady web victim + bursty batch
// aggressor on one shared pool) and its pool-churn variant, with the
// feedback plane enabled so the load-aware schemes actually see the
// surge. Clients close connections explicitly (CloseAck) so every
// connection carries one late steered packet — the flowlet boundary the
// flowlet policy re-steers at.
//
// The measurement is the usual victim view (p99 and completion per
// service as the aggressor ramps) plus the mechanism counter the
// ablation is really about: how many established flows the flowlet
// policy moved mid-connection (Resteers), while per-VIP conservation
// (offered == ok + refused + unfinished) still holds.
//
// RunPolicies is the canonical instance behind
// `srlb-bench -experiment policies`.

package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"srlb/internal/feedback"
	"srlb/internal/metrics"
	"srlb/internal/plot"
	"srlb/internal/testbed"
)

// PoliciesConfig parameterizes the experiment.
type PoliciesConfig struct {
	Cluster ClusterConfig
	// Lambda0 is the shared pool's calibrated capacity rate (0 ⇒
	// measured via CalibrateCached on the base cluster).
	Lambda0 float64
	// WebRho is the victim's pinned load fraction (default 0.55).
	WebRho float64
	// BatchRhos is the aggressor axis (default {0.05, 0.2, 0.35, 0.5}).
	BatchRhos []float64
	// Queries is the web VIP's arrivals per cell (default 20000).
	Queries int
	// BatchPeak is the batch service's ON-state burst factor (default 4).
	BatchPeak float64
	// FlowletGap is the flowlet policy's idle gap (0 ⇒
	// selection.DefaultFlowletGap). Used only when Policies is empty.
	FlowletGap time.Duration
	// Feedback overrides the telemetry plane's tuning; Enabled is forced
	// on (the ablation is about the plane).
	Feedback feedback.Config
	// ChurnBy is how many shared-pool servers the churn variant drains
	// mid-run and later re-adds (default a third of the pool, at least 1).
	ChurnBy int
	// Policies defaults to AblationPolicies() with FlowletGap applied.
	Policies []PolicySpec
	// Seeds is the replication axis (default: the cluster seed alone).
	Seeds    []uint64
	Workers  int
	Progress func(string)
}

// PoliciesRow is one (variant, batch-load, policy, service) outcome
// aggregated across the replication axis; Service "all" is the
// aggregate over both services.
type PoliciesRow struct {
	// Variant is "steady" or "churn"; BatchRho the aggressor's load (the
	// sweep knob); Load the row's service's own resolved load.
	Variant  string
	BatchRho float64
	Policy   string
	Service  string
	Load     float64
	// N counts completed replicates.
	N                            int
	Mean, MeanCI95, P99, P99CI95 time.Duration
	OKFrac, OKFracCI95           float64
	// Offered, Refused and Unfinished are across-seed mean counts.
	Offered, Refused, Unfinished float64
	// Resteers is the across-seed mean count of flowlet re-steers
	// (mid-connection candidate rewrites, whole cluster — reported on
	// the "all" rows, zero elsewhere and for non-flowlet policies).
	Resteers float64
}

// PoliciesResult holds the full grid.
type PoliciesResult struct {
	Lambda0 float64
	WebRho  float64
	// BatchRhos is the swept aggressor axis.
	BatchRhos []float64
	Seeds     []uint64
	// Variants lists the topology variants ("steady", "churn");
	// Services the service names in spec order (web, batch).
	Variants []string
	Services []string
	// Stats is the underlying replicated sweep — the machine-readable
	// artifact's source (schema v7 adds the variant axis rows).
	Stats SweepStats
	Rows  []PoliciesRow
}

// RunPolicies executes the experiment.
func RunPolicies(cfg PoliciesConfig) PoliciesResult {
	return RunPoliciesCtx(context.Background(), cfg)
}

// RunPoliciesCtx is RunPolicies with cancellation; cancelled cells are
// dropped from the aggregates.
func RunPoliciesCtx(ctx context.Context, cfg PoliciesConfig) PoliciesResult {
	cfg.Cluster = cfg.Cluster.withDefaults()
	if cfg.WebRho == 0 {
		cfg.WebRho = 0.55
	}
	if len(cfg.BatchRhos) == 0 {
		cfg.BatchRhos = []float64{0.05, 0.2, 0.35, 0.5}
	}
	if cfg.Queries == 0 {
		cfg.Queries = 20000
	}
	if cfg.BatchPeak == 0 {
		cfg.BatchPeak = 4
	}
	if cfg.ChurnBy == 0 {
		cfg.ChurnBy = max(1, cfg.Cluster.Servers/3)
	}
	if len(cfg.Policies) == 0 {
		cfg.Policies = []PolicySpec{
			Random2(), CHash2(), WeightedLeastLoadPolicy(), FlowletPolicy(cfg.FlowletGap),
		}
	}
	if cfg.Lambda0 == 0 {
		cal := CalibrateCached(CalibrationConfig{Cluster: cfg.Cluster})
		cfg.Lambda0 = cal.Lambda0
	}
	// The ablation is about the telemetry plane — it is always on here;
	// per-policy degradation to the oblivious fallback happens through
	// staleness, not through the config.
	cfg.Cluster.Feedback = cfg.Feedback
	cfg.Cluster.Feedback.Enabled = true

	// Same shape as RunInterference: the victim's span fixes the window,
	// the aggressor is time-bounded to it. CloseAck gives every
	// connection its late steered packet — the flowlet boundary.
	span := time.Duration(float64(cfg.Queries) / (cfg.WebRho * cfg.Lambda0) * float64(time.Second))
	workload := MultiServiceWorkload{
		Services: []ServiceSpec{
			{Name: "web", Pool: "shared", Workload: PoissonService{Lambda0: cfg.Lambda0, Queries: cfg.Queries}},
			{Name: "batch", Pool: "shared", Workload: BurstyService{
				Lambda0: cfg.Lambda0, Horizon: span, PeakFactor: cfg.BatchPeak,
			}},
		},
		ServiceLoads: []ServiceLoad{{Fixed: cfg.WebRho}, {}},
		Pools:        []testbed.PoolSpec{{Name: "shared"}},
		CloseAck:     true,
	}
	variants := []ClusterVariant{
		{Name: "steady"},
		{Name: "churn", Apply: func(c ClusterConfig) ClusterConfig {
			c.Events = poolChurnEvents("shared", cfg.ChurnBy, 0.3, 0.65)
			return c
		}},
	}

	raw, _ := Runner{Workers: cfg.Workers, Progress: cfg.Progress}.RunSweep(ctx, Sweep{
		Cluster:  cfg.Cluster,
		Policies: cfg.Policies,
		Variants: variants,
		Loads:    cfg.BatchRhos,
		Seeds:    cfg.Seeds,
		Workload: workload,
	})
	agg := raw.Aggregate()

	res := PoliciesResult{
		Lambda0:   cfg.Lambda0,
		WebRho:    cfg.WebRho,
		BatchRhos: cfg.BatchRhos,
		Seeds:     agg.Seeds,
		Stats:     agg,
	}
	for _, va := range variants {
		res.Variants = append(res.Variants, va.Name)
	}
	for _, svc := range workload.Services {
		res.Services = append(res.Services, svc.Name)
	}
	for vi, variant := range res.Variants {
		for li, rho := range cfg.BatchRhos {
			for pi, spec := range cfg.Policies {
				cs := agg.CellAt(pi, vi, li)
				if cs.N() == 0 {
					continue
				}
				var offered float64
				for _, vs := range cs.VIPs {
					offered += vs.Offered.Dist.Mean
				}
				// Aggregate drops CellOutcome.Extra, so the mechanism
				// counter comes off the raw replicate cells.
				var resteers float64
				var done int
				for si := range agg.Seeds {
					cell := raw.CellAt(pi, vi, li, si)
					if cell.Err != nil {
						continue
					}
					if ms, ok := cell.Outcome.Extra.(MultiServiceStats); ok {
						resteers += float64(ms.Resteers)
						done++
					}
				}
				if done > 0 {
					resteers /= float64(done)
				}
				res.Rows = append(res.Rows, PoliciesRow{
					Variant: variant, BatchRho: rho, Policy: spec.Name, Service: "all", Load: rho, N: cs.N(),
					Mean: secDur(cs.Mean.Dist.Mean), MeanCI95: secDur(cs.Mean.Dist.ReportedCI95()),
					P99: secDur(cs.P99.Dist.Mean), P99CI95: secDur(cs.P99.Dist.ReportedCI95()),
					OKFrac: cs.OKFraction.Dist.Mean, OKFracCI95: cs.OKFraction.Dist.ReportedCI95(),
					Offered:    offered,
					Refused:    cs.Refused.Dist.Mean,
					Unfinished: cs.Unfinished.Dist.Mean,
					Resteers:   resteers,
				})
				for _, vs := range cs.VIPs {
					res.Rows = append(res.Rows, PoliciesRow{
						Variant: variant, BatchRho: rho, Policy: spec.Name, Service: vs.Name, Load: vs.Load, N: cs.N(),
						Mean: secDur(vs.Mean.Dist.Mean), MeanCI95: secDur(vs.Mean.Dist.ReportedCI95()),
						P99: secDur(vs.P99.Dist.Mean), P99CI95: secDur(vs.P99.Dist.ReportedCI95()),
						OKFrac: vs.OKFraction.Dist.Mean, OKFracCI95: vs.OKFraction.Dist.ReportedCI95(),
						Offered:    vs.Offered.Dist.Mean,
						Refused:    vs.Refused.Dist.Mean,
						Unfinished: vs.Unfinished.Dist.Mean,
					})
				}
			}
		}
	}
	return res
}

// poolChurnEvents is churnEvents retargeted at a named shared pool:
// churnBy drains starting at drainFrac of the span, churnBy adds at
// growFrac, each phase staggered by 1% per server.
func poolChurnEvents(pool string, churnBy int, drainFrac, growFrac float64) []testbed.Event {
	frac := func(f float64) float64 {
		if f > 1 {
			return 1
		}
		return f
	}
	events := make([]testbed.Event, 0, 2*churnBy)
	for g := 0; g < churnBy; g++ {
		events = append(events, testbed.DrainPoolServer(0, pool, g).AtFraction(frac(drainFrac+float64(g)*0.01)))
	}
	for g := 0; g < churnBy; g++ {
		events = append(events, testbed.AddPoolServer(0, pool).AtFraction(frac(growFrac+float64(g)*0.01)))
	}
	return events
}

// Row returns the row for (variant, policy, service) at the batch load
// closest to the requested one.
func (r PoliciesResult) Row(variant, policy, service string, batchRho float64) (PoliciesRow, error) {
	var best PoliciesRow
	bestDiff := -1.0
	for _, row := range r.Rows {
		if row.Variant != variant || row.Policy != policy || row.Service != service {
			continue
		}
		d := row.BatchRho - batchRho
		if d < 0 {
			d = -d
		}
		if bestDiff < 0 || d < bestDiff {
			bestDiff = d
			best = row
		}
	}
	if bestDiff < 0 {
		return PoliciesRow{}, fmt.Errorf("policies: no row for (%q, %q, %q)", variant, policy, service)
	}
	return best, nil
}

// TotalResteers sums the across-seed mean re-steer counts of the
// policy's cells in the given variant — the experiment's mechanism
// check (> 0 means the flowlet policy really moved established flows).
func (r PoliciesResult) TotalResteers(variant, policy string) float64 {
	var total float64
	for _, row := range r.Rows {
		if row.Variant == variant && row.Policy == policy && row.Service == "all" {
			total += row.Resteers
		}
	}
	return total
}

// PlotFacets renders one facet per (variant, service): p99 vs batch
// load, one series per policy with across-seed ci95 whiskers.
func (r PoliciesResult) PlotFacets() []plot.Facet {
	facets := make([]plot.Facet, 0, len(r.Variants)*len(r.Services))
	for _, variant := range r.Variants {
		for _, svc := range r.Services {
			byPolicy := make(map[string]*plot.Series)
			var order []string
			for _, row := range r.Rows {
				if row.Variant != variant || row.Service != svc {
					continue
				}
				ser, ok := byPolicy[row.Policy]
				if !ok {
					ser = &plot.Series{Name: row.Policy}
					byPolicy[row.Policy] = ser
					order = append(order, row.Policy)
				}
				ser.X = append(ser.X, row.BatchRho)
				ser.Y = append(ser.Y, row.P99.Seconds())
				ser.YErr = append(ser.YErr, row.P99CI95.Seconds())
			}
			series := make([]plot.Series, 0, len(order))
			for _, name := range order {
				series = append(series, *byPolicy[name])
			}
			facets = append(facets, plot.Facet{
				Title:  fmt.Sprintf("Policies[%s]: %s p99 (s) vs batch load (web pinned at rho=%.2f)", variant, svc, r.WebRho),
				Series: series,
			})
		}
	}
	return facets
}

// WriteTSV renders the grid: one row per (variant, batch_rho, policy,
// service), the aggregate first.
func (r PoliciesResult) WriteTSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# Policy ablation with load feedback: web pinned at rho=%.2f, batch swept, steady+churn variants; lambda0=%.1f q/s\n",
		r.WebRho, r.Lambda0); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "variant\tbatch_rho\tpolicy\tservice\trho_svc\toffered\tmean_s\tmean_ci95_s\tp99_s\tp99_ci95_s\tok_frac\tok_ci95\tresteers\trefused\tunfinished\tn"); err != nil {
		return err
	}
	for _, row := range r.Rows {
		if _, err := fmt.Fprintf(w, "%s\t%.2f\t%s\t%s\t%.2f\t%.0f\t%s\t%s\t%s\t%s\t%.4f\t%.4f\t%.1f\t%.0f\t%.0f\t%d\n",
			row.Variant, row.BatchRho, row.Policy, row.Service, row.Load, row.Offered,
			metrics.FormatDuration(row.Mean),
			metrics.FormatDuration(row.MeanCI95),
			metrics.FormatDuration(row.P99),
			metrics.FormatDuration(row.P99CI95),
			row.OKFrac, row.OKFracCI95, row.Resteers,
			row.Refused, row.Unfinished, row.N); err != nil {
			return err
		}
	}
	return nil
}
