package experiments

import (
	"context"
	"fmt"
	"time"

	"srlb/internal/metrics"
	"srlb/internal/testbed"
	"srlb/internal/trace"
	"srlb/internal/vrouter"
	"srlb/internal/wiki"
)

// WikiConfig drives the §VI replay behind figures 6, 7 and 8: a (synthetic)
// 24-hour Wikipedia day replayed against the 12-replica testbed under RR
// and SR4, recording client-side wiki-page load times.
type WikiConfig struct {
	Cluster ClusterConfig
	// Day parameterizes the synthetic trace (wiki.Config zero value =
	// calibrated defaults). Set Day.Compression to trade replay fidelity
	// for speed (e.g. 24 ⇒ one simulated hour).
	Day wiki.Config
	// Cost is the per-replica service-cost model.
	Cost wiki.CostModel
	// Policies defaults to {RR, SR4} (§VI-B replays the trace against
	// both).
	Policies []PolicySpec
	// BinWidth is the report bin in *trace* time (default 10min, the
	// paper's).
	BinWidth time.Duration
	// Entries optionally replays a recorded trace instead of the
	// synthetic stream (e.g. loaded via the trace package). When set,
	// Day is only used for compression/labeling.
	Entries []trace.Entry
	// Workers bounds the per-policy parallelism (0 = GOMAXPROCS).
	Workers  int
	Progress func(string)
}

// WikiRun is the outcome of replaying the day under one policy.
type WikiRun struct {
	Spec PolicySpec
	// Wiki are the wiki-page load times, binned by trace time and overall.
	WikiBins *metrics.TimeBins
	WikiAll  *metrics.Recorder
	// StaticAll are static-object load times (equivalent under both
	// policies, §VI-C).
	StaticAll *metrics.Recorder
	// RateBins counts wiki-page queries per bin (figure 6 top plot).
	RateBins *metrics.TimeBins
	Refused  int
	// HitRates are the per-replica memcached hit fractions at the end.
	HitRates []float64
}

// WikiResult holds one run per policy.
type WikiResult struct {
	Day      wiki.Config
	BinWidth time.Duration
	Runs     []WikiRun
}

const classWiki = 1

// WikiWorkload replays the synthetic Wikipedia day (§VI) — diurnal NHPP
// arrivals, Zipf page popularity, per-replica memcached models — or a
// recorded trace when Entries is set. The load point is ignored: intensity
// lives in Day (Scale/Compression). Extra carries the full WikiRun.
type WikiWorkload struct {
	Day  wiki.Config
	Cost wiki.CostModel
	// BinWidth is the report bin in trace time (default 10min).
	BinWidth time.Duration
	// Entries, when non-empty, replaces the synthetic stream.
	Entries []trace.Entry
}

// Label implements Workload.
func (w WikiWorkload) Label() string {
	if len(w.Entries) > 0 {
		return fmt.Sprintf("wiki-trace(%d entries)", len(w.Entries))
	}
	return fmt.Sprintf("wiki-day(compress=%.0fx)", w.Day.Compression)
}

// Run implements Workload.
func (w WikiWorkload) Run(ctx context.Context, cluster ClusterConfig, spec PolicySpec, _ float64) (CellOutcome, error) {
	binWidth := w.BinWidth
	if binWidth == 0 {
		binWidth = 10 * time.Minute
	}
	run, err := runWikiReplay(ctx, cluster, spec, w.Day, w.Cost, binWidth, w.Entries, 1)
	return CellOutcome{RT: sketchFromRecorder(run.WikiAll), Refused: run.Refused, Extra: run}, err
}

// TraceWorkload replays a recorded access trace (see cmd/srlb-trace and
// the trace package). Demands are derived per server from the URL through
// the Wikipedia replica model, as in §VI. The load point is a replay
// speed-up: arrival times are divided by it (load 2 replays twice as
// fast; load 1 replays in recorded time). Extra carries the WikiRun.
type TraceWorkload struct {
	Entries []trace.Entry
	// Cost is the per-replica service-cost model (zero value = defaults).
	Cost wiki.CostModel
	// BinWidth is the report bin in trace time (default 10min).
	BinWidth time.Duration
}

// Label implements Workload.
func (w TraceWorkload) Label() string {
	return fmt.Sprintf("trace(%d entries)", len(w.Entries))
}

// Run implements Workload.
func (w TraceWorkload) Run(ctx context.Context, cluster ClusterConfig, spec PolicySpec, load float64) (CellOutcome, error) {
	if load <= 0 {
		load = 1
	}
	binWidth := w.BinWidth
	if binWidth == 0 {
		binWidth = 10 * time.Minute
	}
	// The zero-value day keeps the replica cache model (catalog size, cost
	// scaling) independent of the replay speed — speed only rescales
	// arrival times and report bins, so load points stay comparable.
	run, err := runWikiReplay(ctx, cluster, spec, wiki.Config{}, w.Cost, binWidth, w.Entries, load)
	return CellOutcome{RT: sketchFromRecorder(run.WikiAll), Refused: run.Refused, Extra: run}, err
}

// RunWiki replays the day under every policy: a Sweep of the wiki workload
// over the policy set, one parallel cell per policy.
func RunWiki(cfg WikiConfig) WikiResult { return RunWikiCtx(context.Background(), cfg) }

// RunWikiCtx is RunWiki with cancellation; cancelled runs are omitted from
// the result.
func RunWikiCtx(ctx context.Context, cfg WikiConfig) WikiResult {
	cfg.Cluster = cfg.Cluster.withDefaults()
	if len(cfg.Policies) == 0 {
		cfg.Policies = []PolicySpec{RR(), SRc(4)}
	}
	if cfg.BinWidth == 0 {
		cfg.BinWidth = 10 * time.Minute
	}

	sweep, _ := Runner{Workers: cfg.Workers, Progress: cfg.Progress}.RunSweep(ctx, Sweep{
		Cluster:  cfg.Cluster,
		Policies: cfg.Policies,
		Workload: WikiWorkload{Day: cfg.Day, Cost: cfg.Cost, BinWidth: cfg.BinWidth, Entries: cfg.Entries},
	})

	res := WikiResult{Day: cfg.Day, BinWidth: cfg.BinWidth}
	for pi := range cfg.Policies {
		if run, ok := sweep.Cell(pi, 0, 0).Outcome.Extra.(WikiRun); ok {
			res.Runs = append(res.Runs, run)
		}
	}
	return res
}

// runWikiReplay is the §VI replay engine shared by WikiWorkload and
// TraceWorkload. speed scales recorded-entry arrival times (synthetic-day
// speed lives in day.Compression).
func runWikiReplay(ctx context.Context, cluster ClusterConfig, spec PolicySpec, day wiki.Config, cost wiki.CostModel, binWidth time.Duration, entries []trace.Entry, speed float64) (WikiRun, error) {
	cluster = cluster.withDefaults()
	top := cluster.topology(spec)
	// The replicas compute demand from the URL and their cache state.
	// Caches start prewarmed with the popular head (the paper's replicas
	// are long-running MediaWiki installations, not cold starts) and are
	// scaled to the day's page catalog so hit rates survive compression.
	replicas := make([]*wiki.Replica, cluster.Servers)
	model := cost.ScaledTo(day.CatalogPages())
	model.Prewarm = true
	top.VIPs[0].Demand = func(i int) vrouter.DemandFn {
		rep := wiki.NewReplica(cluster.Seed+uint64(i)*7919, model)
		for len(replicas) <= i { // servers added by lifecycle events
			replicas = append(replicas, nil)
		}
		replicas[i] = rep
		return rep.Demand
	}

	virtualHorizon := day.VirtualHorizon()
	if n := len(entries); n > 0 {
		// A recorded trace defines its own horizon.
		virtualHorizon = time.Duration(float64(entries[n-1].At) / speed)
	}
	// Rate-relative events resolve against the replay's own span.
	top.Events = testbed.ResolveEvents(top.Events, virtualHorizon)
	tb := testbed.Build(top)
	// Bin width in virtual time: compression shrinks the synthetic clock,
	// and recorded entries are additionally rescaled by speed.
	comp := day.RealTime(time.Second).Seconds() // = Compression factor
	if len(entries) > 0 {
		comp *= speed
	}
	virtualBin := time.Duration(float64(binWidth) / comp)

	run := WikiRun{
		Spec:      spec,
		WikiBins:  metrics.NewTimeBins(virtualBin, virtualHorizon),
		WikiAll:   metrics.NewRecorder(1 << 16),
		StaticAll: metrics.NewRecorder(1 << 16),
		RateBins:  metrics.NewTimeBins(virtualBin, virtualHorizon),
	}
	tb.Gen.OnResult = func(res testbed.Result) {
		if res.Refused || !res.OK {
			run.Refused++
			return
		}
		if res.Class == classWiki {
			run.WikiAll.Add(res.RT)
			run.WikiBins.Add(res.IssuedAt, res.RT)
		} else {
			run.StaticAll.Add(res.RT)
		}
	}

	// Launch queries from the stream (or a recorded trace), one ahead.
	var id uint64
	launch := func(e trace.Entry, isWiki bool) {
		class := uint8(0)
		if isWiki {
			class = classWiki
			run.RateBins.Add(tb.Sim.Now(), 0)
		}
		tb.Gen.Launch(testbed.Query{ID: id, URL: e.URL, Class: class})
		id++
	}
	if len(entries) > 0 {
		at := func(i int) time.Duration { return time.Duration(float64(entries[i].At) / speed) }
		var step func(i int)
		step = func(i int) {
			e := entries[i]
			launch(e, e.IsWikiPage())
			if i+1 < len(entries) {
				tb.Sim.At(at(i+1), func() { step(i + 1) })
			}
		}
		tb.Sim.At(at(0), func() { step(0) })
	} else {
		stream := wiki.NewStream(day)
		var step func(e trace.Entry, isWiki bool)
		schedule := func() {
			if e, isWiki, done := stream.Next(); !done {
				tb.Sim.At(e.At, func() { step(e, isWiki) })
			}
		}
		step = func(e trace.Entry, isWiki bool) {
			launch(e, isWiki)
			schedule()
		}
		schedule()
	}
	err := runSim(ctx, tb.Sim, virtualHorizon+2*time.Minute)
	// Drained queries report through OnResult above (!res.OK), so they
	// are already in run.Refused — do not add the return count on top.
	tb.Gen.DrainPending()
	for _, rep := range replicas {
		if rep != nil {
			run.HitRates = append(run.HitRates, rep.HitRate())
		}
	}
	return run, err
}
