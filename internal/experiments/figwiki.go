package experiments

import (
	"fmt"
	"time"

	"srlb/internal/metrics"
	"srlb/internal/testbed"
	"srlb/internal/trace"
	"srlb/internal/vrouter"
	"srlb/internal/wiki"
)

// WikiConfig drives the §VI replay behind figures 6, 7 and 8: a (synthetic)
// 24-hour Wikipedia day replayed against the 12-replica testbed under RR
// and SR4, recording client-side wiki-page load times.
type WikiConfig struct {
	Cluster ClusterConfig
	// Day parameterizes the synthetic trace (wiki.Config zero value =
	// calibrated defaults). Set Day.Compression to trade replay fidelity
	// for speed (e.g. 24 ⇒ one simulated hour).
	Day wiki.Config
	// Cost is the per-replica service-cost model.
	Cost wiki.CostModel
	// Policies defaults to {RR, SR4} (§VI-B replays the trace against
	// both).
	Policies []PolicySpec
	// BinWidth is the report bin in *trace* time (default 10min, the
	// paper's).
	BinWidth time.Duration
	// Entries optionally replays a recorded trace instead of the
	// synthetic stream (e.g. loaded via the trace package). When set,
	// Day is only used for compression/labeling.
	Entries  []trace.Entry
	Progress func(string)
}

// WikiRun is the outcome of replaying the day under one policy.
type WikiRun struct {
	Spec PolicySpec
	// Wiki are the wiki-page load times, binned by trace time and overall.
	WikiBins *metrics.TimeBins
	WikiAll  *metrics.Recorder
	// StaticAll are static-object load times (equivalent under both
	// policies, §VI-C).
	StaticAll *metrics.Recorder
	// RateBins counts wiki-page queries per bin (figure 6 top plot).
	RateBins *metrics.TimeBins
	Refused  int
	// HitRates are the per-replica memcached hit fractions at the end.
	HitRates []float64
}

// WikiResult holds one run per policy.
type WikiResult struct {
	Day      wiki.Config
	BinWidth time.Duration
	Runs     []WikiRun
}

const classWiki = 1

// RunWiki replays the day under every policy.
func RunWiki(cfg WikiConfig) WikiResult {
	cfg.Cluster = cfg.Cluster.withDefaults()
	if len(cfg.Policies) == 0 {
		cfg.Policies = []PolicySpec{RR(), SRc(4)}
	}
	if cfg.BinWidth == 0 {
		cfg.BinWidth = 10 * time.Minute
	}
	res := WikiResult{Day: cfg.Day, BinWidth: cfg.BinWidth}
	for _, spec := range cfg.Policies {
		res.Runs = append(res.Runs, runWikiOne(cfg, spec))
		if cfg.Progress != nil {
			run := res.Runs[len(res.Runs)-1]
			cfg.Progress(fmt.Sprintf("%s: %d wiki pages, median=%s q3=%s refused=%d",
				spec.Name, run.WikiAll.Count(),
				metrics.FormatDuration(run.WikiAll.Median()),
				metrics.FormatDuration(run.WikiAll.Quantile(0.75)),
				run.Refused))
		}
	}
	return res
}

func runWikiOne(cfg WikiConfig, spec PolicySpec) WikiRun {
	tbCfg := cfg.Cluster.testbedConfig(spec)
	// The replicas compute demand from the URL and their cache state.
	// Caches start prewarmed with the popular head (the paper's replicas
	// are long-running MediaWiki installations, not cold starts) and are
	// scaled to the day's page catalog so hit rates survive compression.
	replicas := make([]*wiki.Replica, cfg.Cluster.withDefaults().Servers)
	day := cfg.Day
	model := cfg.Cost.ScaledTo(day.CatalogPages())
	model.Prewarm = true
	tbCfg.Demand = func(i int) vrouter.DemandFn {
		rep := wiki.NewReplica(cfg.Cluster.Seed+uint64(i)*7919, model)
		replicas[i] = rep
		return rep.Demand
	}
	tb := testbed.New(tbCfg)

	virtualHorizon := day.VirtualHorizon()
	// Bin width in virtual time (compression shrinks the clock).
	comp := day.RealTime(time.Second).Seconds() // = Compression factor
	virtualBin := time.Duration(float64(cfg.BinWidth) / comp)

	run := WikiRun{
		Spec:      spec,
		WikiBins:  metrics.NewTimeBins(virtualBin, virtualHorizon),
		WikiAll:   metrics.NewRecorder(1 << 16),
		StaticAll: metrics.NewRecorder(1 << 16),
		RateBins:  metrics.NewTimeBins(virtualBin, virtualHorizon),
	}
	tb.Gen.DiscardResults = true
	tb.Gen.OnResult = func(res testbed.Result) {
		if res.Refused || !res.OK {
			run.Refused++
			return
		}
		if res.Class == classWiki {
			run.WikiAll.Add(res.RT)
			run.WikiBins.Add(res.IssuedAt, res.RT)
		} else {
			run.StaticAll.Add(res.RT)
		}
	}

	// Launch queries from the stream (or a recorded trace), one ahead.
	var id uint64
	launch := func(e trace.Entry, isWiki bool) {
		class := uint8(0)
		if isWiki {
			class = classWiki
			run.RateBins.Add(e.At, 0)
		}
		tb.Gen.Launch(testbed.Query{ID: id, URL: e.URL, Class: class})
		id++
	}
	if len(cfg.Entries) > 0 {
		var step func(i int)
		step = func(i int) {
			e := cfg.Entries[i]
			launch(e, e.IsWikiPage())
			if i+1 < len(cfg.Entries) {
				tb.Sim.At(cfg.Entries[i+1].At, func() { step(i + 1) })
			}
		}
		tb.Sim.At(cfg.Entries[0].At, func() { step(0) })
	} else {
		stream := wiki.NewStream(day)
		var step func(e trace.Entry, isWiki bool)
		schedule := func() {
			if e, isWiki, done := stream.Next(); !done {
				tb.Sim.At(e.At, func() { step(e, isWiki) })
			}
		}
		step = func(e trace.Entry, isWiki bool) {
			launch(e, isWiki)
			schedule()
		}
		schedule()
	}
	tb.Sim.RunUntil(virtualHorizon + 2*time.Minute)
	run.Refused += tb.Gen.DrainPending()
	for _, rep := range replicas {
		if rep != nil {
			run.HitRates = append(run.HitRates, rep.HitRate())
		}
	}
	return run
}
