package experiments

import (
	"bytes"
	"context"
	"reflect"
	"strings"
	"testing"
	"time"

	"srlb/internal/agent"
	"srlb/internal/testbed"
)

// failoverVariants is a small two-replica anycast sweep with a mid-run
// LB-failure event on its topology axis — the acceptance scenario.
func failoverVariants() Sweep {
	kill := []testbed.Event{testbed.FailReplica(8*time.Second, 0)}
	return Sweep{
		Cluster:  ClusterConfig{Seed: 31, Servers: 4},
		Policies: []PolicySpec{RR(), SRc(4)},
		Variants: []ClusterVariant{
			{Name: "steady"},
			{Name: "lb-fail", Apply: func(c ClusterConfig) ClusterConfig {
				c.Replicas = 2
				c.ConsistentHash = false
				c.MissFallback = true
				c.Events = kill
				return c
			}},
		},
		Loads:    []float64{0.6},
		Seeds:    DeriveSeeds(31, 2),
		Workload: PoissonWorkload{Lambda0: 80, Queries: 1500},
	}
}

// A two-replica anycast topology with a mid-run LB-failure Event must
// run through Sweep/Runner with byte-identical results at 1 vs N
// workers — the topology axis keeps the Runner's determinism contract.
func TestVariantSweepParallelEqualsSerial(t *testing.T) {
	sweep := failoverVariants()
	serial, err := Runner{Workers: 1}.RunSweep(context.Background(), sweep)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Runner{Workers: 8}.RunSweep(context.Background(), sweep)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial.Cells) != sweep.Size() {
		t.Fatalf("cells = %d, want %d", len(serial.Cells), sweep.Size())
	}
	if !reflect.DeepEqual(stripWall(serial.Cells), stripWall(parallel.Cells)) {
		t.Fatal("variant sweep differs between 1 and 8 workers")
	}
	// Axis indexing: CellAt must agree with Scenarios() order, and the
	// variant label must ride into every cell.
	i := 0
	for pi := range sweep.Policies {
		for vi, va := range sweep.Variants {
			for si := range serial.Seeds {
				c := serial.CellAt(pi, vi, 0, si)
				if c.Index != i || c.Variant != va.Name {
					t.Fatalf("CellAt(%d,%d,0,%d) = index %d variant %q, want index %d variant %q",
						pi, vi, si, c.Index, c.Variant, i, va.Name)
				}
				i++
			}
		}
	}
	// Aggregation folds seeds per (policy, variant): the variant axis
	// must survive into SweepStats.
	agg := serial.Aggregate()
	if got := agg.CellAt(1, 1, 0); got.Variant != "lb-fail" || got.N() != 2 {
		t.Fatalf("aggregate variant cell = %q n=%d, want lb-fail n=2", got.Variant, got.N())
	}
}

// The failover experiment's claim: with consistent-hash selection plus
// the miss-fallback, killing a replica loses nothing; with random
// selection, flows whose state lived on the dead replica stall.
func TestFailoverMaglevVsRandom(t *testing.T) {
	res := RunFailover(FailoverConfig{
		Cluster:  ClusterConfig{Seed: 33, Servers: 4},
		Lambda0:  80,
		Rho:      0.7,
		Queries:  3000,
		Replicas: 2,
		Bins:     20,
		Seeds:    DeriveSeeds(33, 2),
	})
	maglev, err := res.Mode("maglev+fallback")
	if err != nil {
		t.Fatal(err)
	}
	random, err := res.Mode("random")
	if err != nil {
		t.Fatal(err)
	}
	if n := maglev.Stats.N(); n != 2 {
		t.Fatalf("maglev replicates = %d, want 2", n)
	}
	if got := maglev.Stats.Unfinished.Dist.Mean; got != 0 {
		t.Fatalf("maglev+fallback lost %v queries across the failover, want 0", got)
	}
	if got := random.Stats.Unfinished.Dist.Mean; got == 0 {
		t.Fatal("random selection lost nothing — failover not exercised")
	}
	if maglev.Stats.OKFraction.Dist.Mean <= random.Stats.OKFraction.Dist.Mean {
		t.Fatalf("maglev ok=%.4f not above random ok=%.4f",
			maglev.Stats.OKFraction.Dist.Mean, random.Stats.OKFraction.Dist.Mean)
	}
	// The maglev timeline must be flat at zero failures; the random
	// timeline must show the structural cross-replica losses while both
	// replicas are alive — and (the instructive part) a *lower* failure
	// rate once only one replica remains.
	killBin := int(res.KillAt / res.BinWidth)
	var preKill, postKill float64
	for i, b := range maglev.Bins {
		if b.FailedFrac != 0 {
			t.Fatalf("maglev bin %d has failures (%.4f)", i, b.FailedFrac)
		}
	}
	for i, b := range random.Bins {
		if i < killBin-1 {
			preKill += b.FailedFrac
		} else if i > killBin+1 {
			postKill += b.FailedFrac
		}
	}
	if preKill == 0 {
		t.Fatal("random mode shows no cross-replica steering losses pre-kill")
	}
	if postKill >= preKill {
		t.Fatalf("random mode did not improve once single-replica: pre=%.2f post=%.2f", preKill, postKill)
	}
	// And the TSV renders one block per mode.
	var buf bytes.Buffer
	if err := res.WriteTSV(&buf); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "# mode:"); got != 2 {
		t.Fatalf("TSV has %d mode blocks, want 2", got)
	}
}

// Regression for the failover rate-relative migration: the kill/recover
// schedule used to be computed absolutely from the (single) rho's
// arrival span. The migrated schedule declares the same instants as
// fractions (AtFraction) and lets the workload resolve them per load
// point — so at a fixed rho the two forms must produce byte-identical
// cells.
func TestFailoverRelativeMatchesAbsolute(t *testing.T) {
	const (
		lambda0               = 80.0
		queries               = 1500
		rho                   = 0.7
		killFrac, recoverFrac = 0.5, 0.8
	)
	// The absolute schedule exactly as the pre-migration code computed it.
	rate := rho * lambda0
	span := time.Duration(float64(queries) / rate * float64(time.Second))
	absolute := []testbed.Event{
		testbed.FailReplica(time.Duration(killFrac*float64(span)), 0),
		testbed.RecoverReplica(time.Duration(recoverFrac*float64(span)), 0),
	}
	relative := []testbed.Event{
		testbed.FailReplica(0, 0).AtFraction(killFrac),
		testbed.RecoverReplica(0, 0).AtFraction(recoverFrac),
	}
	run := func(events []testbed.Event) []CellResult {
		res, err := Runner{Workers: 2}.RunSweep(context.Background(), Sweep{
			Cluster: ClusterConfig{Seed: 83, Servers: 4},
			Policies: []PolicySpec{{
				Name:       "first-accept",
				Candidates: 2,
				NewAgent:   func() agent.Policy { return agent.Always{} },
			}},
			Variants: []ClusterVariant{{Name: "lb-fail", Apply: func(c ClusterConfig) ClusterConfig {
				c.Replicas = 2
				c.ConsistentHash = true
				c.MissFallback = true
				c.Events = events
				return c
			}}},
			Loads:    []float64{rho},
			Seeds:    DeriveSeeds(83, 2),
			Workload: failoverWorkload{lambda0: lambda0, queries: queries, bins: 20},
		})
		if err != nil {
			t.Fatal(err)
		}
		return stripWall(res.Cells)
	}
	if !reflect.DeepEqual(run(absolute), run(relative)) {
		t.Fatal("rate-relative failover schedule diverges from the absolute-time schedule at fixed rho")
	}
}

func TestChurnSweep(t *testing.T) {
	res := RunChurn(ChurnConfig{
		Cluster:  ClusterConfig{Seed: 35, Servers: 4},
		Lambda0:  80,
		Rhos:     []float64{0.6},
		ChurnBy:  1,
		Queries:  2000,
		Policies: []PolicySpec{RR(), SRc(4)},
		Seeds:    DeriveSeeds(35, 2),
	})
	if len(res.Rows) != 4 { // 2 policies × {steady, churn}
		t.Fatalf("rows = %d, want 4", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.N != 2 {
			t.Fatalf("row %s/%s has n=%d, want 2", row.Policy, row.Mode, row.N)
		}
		if row.OKFrac < 0.95 {
			t.Fatalf("row %s/%s ok=%.3f — churn at moderate load should not shed queries", row.Policy, row.Mode, row.OKFrac)
		}
	}
	if _, err := res.ChurnPenalty("SR 4", 0.6); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteTSV(&buf); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != 2+4 { // header comment + column row + 4 rows
		t.Fatalf("TSV line count = %d", lines)
	}
}

// The bursty sweep rides the fig2 machinery: identical row format,
// column for column, so the two TSVs compare directly.
func TestBurstySweepMatchesPoissonRowFormat(t *testing.T) {
	base := Fig2Config{
		Cluster: ClusterConfig{Seed: 37, Servers: 4},
		Lambda0: 80,
		Rhos:    []float64{0.4, 0.7},
		Queries: 800,
		Seeds:   DeriveSeeds(37, 2),
	}
	poisson := RunFig2(base)
	bursty := base
	bursty.Workload = BurstyWorkload{Lambda0: 80, Queries: 800}
	burstyRes := RunFig2(bursty)

	var pBuf, bBuf bytes.Buffer
	if err := poisson.WriteTSV(&pBuf); err != nil {
		t.Fatal(err)
	}
	if err := burstyRes.WriteTSV(&bBuf); err != nil {
		t.Fatal(err)
	}
	pLines := strings.Split(strings.TrimRight(pBuf.String(), "\n"), "\n")
	bLines := strings.Split(strings.TrimRight(bBuf.String(), "\n"), "\n")
	if len(pLines) != len(bLines) {
		t.Fatalf("line counts differ: %d vs %d", len(pLines), len(bLines))
	}
	// Same column structure everywhere; identical header row (the
	// policy columns), different title comment.
	if pLines[1] != bLines[1] {
		t.Fatalf("header rows differ:\n%s\n%s", pLines[1], bLines[1])
	}
	for i := 2; i < len(pLines); i++ {
		if pc, bc := strings.Count(pLines[i], "\t"), strings.Count(bLines[i], "\t"); pc != bc {
			t.Fatalf("row %d column counts differ: %d vs %d", i, pc, bc)
		}
	}
	if !strings.Contains(bBuf.String(), "bursty") {
		t.Fatal("bursty TSV title does not name the workload")
	}
}
