// Package experiments reproduces the paper's complete evaluation: the λ0
// bootstrap of §V-A, the Poisson-workload figures 2–5, the Wikipedia
// replay figures 6–8, and the ablation studies DESIGN.md calls out.
//
// Every figure has a Run function that returns structured series and a
// Fprint function that renders the same rows the paper plots, so
// cmd/srlb-bench can regenerate each artifact as TSV.
package experiments

import (
	"context"
	"fmt"
	"math/rand/v2"
	"net/netip"
	"time"

	"srlb/internal/agent"
	"srlb/internal/appserver"
	"srlb/internal/feedback"
	"srlb/internal/rng"
	"srlb/internal/selection"
	"srlb/internal/sketch"
	"srlb/internal/testbed"
)

// PolicySpec names a complete load-balancing configuration: the number of
// SR candidates and the per-server acceptance policy.
type PolicySpec struct {
	// Name is the label used in figures ("RR", "SR 4", …).
	Name string
	// Candidates is the SR list length (1 = no hunting).
	Candidates int
	// NewAgent builds a fresh acceptance policy per server (SRdyn keeps
	// per-server adaptive state, so one instance per server).
	NewAgent func() agent.Policy
	// Scheme, when non-nil, overrides candidate selection entirely: it
	// builds the VIP's scheme from the pool, the per-VIP rng stream, and
	// the VIP's feedback view (nil when the cluster's feedback plane is
	// disabled — load-aware schemes must then degrade to their oblivious
	// fallback). Candidates and ConsistentHash are ignored when set.
	Scheme testbed.FeedbackSchemeFn
}

// RR is the paper's baseline: one random server, no Service Hunting.
func RR() PolicySpec {
	return PolicySpec{
		Name:       "RR",
		Candidates: 1,
		NewAgent:   func() agent.Policy { return agent.Always{} },
	}
}

// SRc is the static policy with threshold c over two random candidates.
func SRc(c int) PolicySpec {
	return PolicySpec{
		Name:       fmt.Sprintf("SR %d", c),
		Candidates: 2,
		NewAgent:   func() agent.Policy { return agent.NewStatic(c) },
	}
}

// SRdyn is the adaptive policy (Algorithm 2) over two random candidates.
func SRdyn() PolicySpec {
	return PolicySpec{
		Name:       "SR dyn",
		Candidates: 2,
		NewAgent:   func() agent.Policy { return agent.NewDynamic(agent.DynamicConfig{}) },
	}
}

// SRcK is SRc generalized to k candidates (ablation: the power of k
// choices).
func SRcK(c, k int) PolicySpec {
	return PolicySpec{
		Name:       fmt.Sprintf("SR %d (k=%d)", c, k),
		Candidates: k,
		NewAgent:   func() agent.Policy { return agent.NewStatic(c) },
	}
}

// PaperPolicies returns the five configurations of figures 2, 3 and 5:
// RR, SR4, SR8, SR16, SRdyn.
func PaperPolicies() []PolicySpec {
	return []PolicySpec{RR(), SRc(4), SRc(8), SRc(16), SRdyn()}
}

// Random2 is plain power-of-two random placement with no acceptance
// gating — the load-oblivious anchor of the policy ablation (the scheme
// every load-aware policy degrades to when its signal goes stale).
func Random2() PolicySpec {
	return PolicySpec{
		Name:       "random2",
		Candidates: 2,
		NewAgent:   func() agent.Policy { return agent.Always{} },
	}
}

// CHash2 selects two candidates from the Maglev consistent-hash table —
// the connection-affine anchor of the policy ablation.
func CHash2() PolicySpec {
	return PolicySpec{
		Name: "chash2",
		Scheme: func(servers []netip.Addr, _ *rand.Rand, _ *feedback.VIPView) selection.Scheme {
			s, err := selection.NewConsistentHash(servers, 0)
			if err != nil {
				panic(err)
			}
			return s
		},
		NewAgent: func() agent.Policy { return agent.Always{} },
	}
}

// WeightedLeastLoadPolicy re-ranks two random candidates by the servers'
// reported load (Charon-style weighted least-load over the feedback
// plane); with the plane disabled or any report stale it degrades to
// random2.
func WeightedLeastLoadPolicy() PolicySpec {
	return PolicySpec{
		Name: "wleastload",
		Scheme: func(servers []netip.Addr, r *rand.Rand, view *feedback.VIPView) selection.Scheme {
			var lv selection.LoadView
			if view != nil {
				lv = view
			}
			return selection.NewWeightedLeastLoad(servers, 2, r, lv)
		},
		NewAgent: func() agent.Policy { return agent.Always{} },
	}
}

// FlowletPolicy places like random2 but re-steers established flows at
// flowlet-gap boundaries onto less-loaded servers (gap ≤ 0 takes
// selection.DefaultFlowletGap). With the feedback plane disabled flows
// never move.
func FlowletPolicy(gap time.Duration) PolicySpec {
	return PolicySpec{
		Name: "flowlet",
		Scheme: func(servers []netip.Addr, r *rand.Rand, view *feedback.VIPView) selection.Scheme {
			var lv selection.LoadView
			if view != nil {
				lv = view
			}
			return selection.NewFlowlet(servers, gap, r, lv)
		},
		NewAgent: func() agent.Policy { return agent.Always{} },
	}
}

// AblationPolicies returns the four-way scheme ablation of RunPolicies:
// {random2, chash2, wleastload, flowlet}, all with Always-accepting
// servers so the comparison isolates candidate selection.
func AblationPolicies() []PolicySpec {
	return []PolicySpec{Random2(), CHash2(), WeightedLeastLoadPolicy(), FlowletPolicy(0)}
}

// ClusterConfig fixes the testbed parameters shared by all experiments.
// The zero value is the paper's platform: 12 servers × (32 workers,
// 2 cores, backlog 128, abort-on-overflow).
type ClusterConfig struct {
	Seed    uint64
	Servers int
	Server  appserver.Config
	Clients int
	// ConsistentHash switches candidate selection from uniform random to
	// the Maglev table (ablation).
	ConsistentHash bool
	// ServerOverride, when non-nil, configures server i — heterogeneous
	// clusters with mixed core counts or worker pools. A zero Config falls
	// back to Server.
	ServerOverride func(i int) appserver.Config

	// Replicas is the number of LB replicas behind the anycast VIP
	// (default 1 — the paper's single LB). With more than one, flows are
	// ECMP-spread across stateless replicas (the Maglev/Ananta model).
	Replicas int
	// MissFallback installs a consistent-hash steering fallback on each
	// replica: mid-flow packets that miss the flow table (cross-replica
	// ECMP, replica restart) are hashed to a server instead of dropped.
	MissFallback bool
	// Events is the lifecycle schedule (server drain/add/fail, replica
	// fail/recover) applied at virtual times during each run.
	Events []testbed.Event

	// Feedback enables the server-load telemetry plane: servers publish
	// load reports every Feedback.Interval and load-aware policy schemes
	// (WeightedLeastLoadPolicy, FlowletPolicy) read them through a
	// freshness-tracked view. A zero Horizon is filled in per run with
	// the cell's own simulation horizon.
	Feedback feedback.Config
}

func (c ClusterConfig) withDefaults() ClusterConfig {
	if c.Servers == 0 {
		c.Servers = 12
	}
	if c.Server.Workers == 0 {
		c.Server = appserver.Default()
	}
	if c.Clients == 0 {
		c.Clients = 8
	}
	return c
}

// MeanDemand is the paper's CPU cost distribution mean for the Poisson
// workload: an exponential of mean 100 ms (§V-A).
const MeanDemand = 100 * time.Millisecond

// TheoreticalCapacity returns servers × cores / E[S] — the fluid-limit
// service capacity in queries/sec, a sanity reference for Calibrate.
func (c ClusterConfig) TheoreticalCapacity() float64 {
	c = c.withDefaults()
	return float64(c.Servers) * c.Server.Cores / MeanDemand.Seconds()
}

// vipSpec lowers the cluster + policy pair into one testbed.VIPSpec —
// the place the legacy selection knobs (ConsistentHash, MissFallback)
// map onto VIPSpec fields. Multi-service workloads build one such spec
// per service, overriding pool size and demand model per VIP.
func (c ClusterConfig) vipSpec(spec PolicySpec) testbed.VIPSpec {
	vip := testbed.VIPSpec{
		Servers:        c.Servers,
		Server:         c.Server,
		ServerOverride: c.ServerOverride,
		Policy:         func(int) agent.Policy { return spec.NewAgent() },
	}
	k := spec.Candidates
	if k <= 0 {
		k = 2
	}
	chash := func(servers []netip.Addr) selection.Scheme {
		s, err := selection.NewConsistentHash(servers, 0)
		if err != nil {
			panic(err)
		}
		return s
	}
	if spec.Scheme != nil {
		// The policy carries its own scheme constructor. Both forms are
		// installed: FeedbackScheme serves feedback-enabled topologies,
		// the plain form (nil view — the scheme's oblivious fallback)
		// serves everything else.
		vip.FeedbackScheme = spec.Scheme
		vip.Scheme = func(servers []netip.Addr, r *rand.Rand) selection.Scheme {
			return spec.Scheme(servers, r, nil)
		}
	} else if c.ConsistentHash && k == 2 {
		vip.Scheme = func(servers []netip.Addr, _ *rand.Rand) selection.Scheme {
			return chash(servers)
		}
	} else {
		vip.Scheme = func(servers []netip.Addr, r *rand.Rand) selection.Scheme {
			return selection.NewRandom(servers, k, r)
		}
	}
	if c.MissFallback {
		vip.Fallback = chash
	}
	return vip
}

// topology lowers the cluster + policy pair into the declarative
// testbed.Topology. A default ClusterConfig compiles to the identical
// single-LB/single-VIP cluster the pre-Topology testbed built.
func (c ClusterConfig) topology(spec PolicySpec) testbed.Topology {
	c = c.withDefaults()
	return testbed.Topology{
		Seed:     c.Seed,
		Replicas: c.Replicas,
		Clients:  c.Clients,
		VIPs:     []testbed.VIPSpec{c.vipSpec(spec)},
		Events:   c.Events,
		Feedback: c.Feedback,
	}
}

// PoissonRun is the outcome of one (policy, rate) Poisson experiment.
type PoissonRun struct {
	Spec       PolicySpec
	RatePerSec float64
	Queries    int
	// RT sketches the response times of successful queries.
	RT *sketch.Histogram
	// Refused counts RST-refused connections (TCP backlog overflow).
	Refused int
	// Unfinished counts queries still pending at horizon end.
	Unfinished int
}

// OKFraction returns the fraction of queries that completed.
func (r PoissonRun) OKFraction() float64 {
	if r.Queries == 0 {
		return 0
	}
	return float64(r.RT.Count()) / float64(r.Queries)
}

// RunPoisson replays the §V workload: `queries` arrivals at ratePerSec
// with Exp(MeanDemand) CPU demands, under the given policy. The returned
// testbed allows callers to inspect server-side state; hooks (may be nil)
// observe the run.
type PoissonHooks struct {
	// OnResult observes every query completion.
	OnResult func(testbed.Result)
	// Testbed observes the cluster right after construction (before any
	// arrival), e.g. to install load sampling.
	Testbed func(tb *testbed.Testbed, horizon time.Duration)
}

// RunPoisson executes the experiment and returns its outcome. It is the
// serial, hook-capable face of PoissonWorkload — both run the same engine
// (runOpenLoop) from the same seed streams, so their results coincide.
func RunPoisson(cluster ClusterConfig, spec PolicySpec, ratePerSec float64, queries int, hooks PoissonHooks) PoissonRun {
	cluster = cluster.withDefaults()
	arrivals := rng.NewPoisson(rng.Split(cluster.Seed, 0xa221), ratePerSec, 0)
	out, _ := runOpenLoop(context.Background(), cluster, spec, arrivals, ratePerSec, queries, 0, hooks)
	return PoissonRun{
		Spec: spec, RatePerSec: ratePerSec, Queries: queries,
		RT: out.RT, Refused: out.Refused, Unfinished: out.Unfinished,
	}
}
