package experiments

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"srlb/internal/appserver"
)

// TestRetransmitAblation reproduces the rationale of §IV-C: silent drops
// push SYN-retransmit delays into the measured tail, RSTs keep the
// measurements clean.
func TestRetransmitAblation(t *testing.T) {
	// Deep overload (ρ=2) with a tiny backlog: the backlog CAPS queueing
	// delay, so the completed-query tail is dominated by either nothing
	// (RST mode — rejected queries simply don't complete) or the
	// retransmission timeouts (silent mode) — the §IV-C contrast.
	res := RunRetransmitAblation(RetransmitConfig{
		Cluster: ClusterConfig{Seed: 21, Servers: 4,
			Server: serverWithBacklog(8)},
		Rho:     2.0,
		Queries: 6000,
		RTO:     time.Second,
	})
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	abort, silent := res.Rows[0], res.Rows[1]

	// Overload must actually bite in both modes.
	if abort.Refused == 0 {
		t.Fatal("no RSTs under overload — test vacuous")
	}
	if silent.Retransmits == 0 {
		t.Fatal("no retransmissions under silent drop — test vacuous")
	}
	// The paper's point: the silent-drop tail carries RTO-scale delays.
	if silent.P99 < abort.P99+500*time.Millisecond {
		t.Fatalf("silent-drop p99 (%v) does not show retransmit delays over abort p99 (%v)",
			silent.P99, abort.P99)
	}
	// And the RST path never injects RTO-scale artifacts into completions:
	// every completed request was admitted on first contact.
	if abort.Retransmits != 0 {
		t.Fatal("abort mode should never retransmit")
	}

	var buf bytes.Buffer
	if err := res.WriteTSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "abort-on-overflow") {
		t.Fatal("TSV missing modes")
	}
}

func serverWithBacklog(backlog int) appserver.Config {
	cfg := appserver.Default()
	cfg.Backlog = backlog
	return cfg
}
