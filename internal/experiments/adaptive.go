package experiments

import (
	"context"
	"math"
)

// Stop reasons recorded on CellStats.StopReason by adaptive replication.
const (
	// StopConverged: the cell's relative CI95 reached its target with at
	// least MinSeeds completed replicates.
	StopConverged = "converged"
	// StopMaxSeeds: the cell hit the MaxSeeds replicate cap before its
	// interval converged.
	StopMaxSeeds = "max-seeds"
)

// adaptiveSeedSalt decorrelates the seeds the adaptive controller
// derives beyond Sweep.Seeds from the seeds DeriveSeeds(Cluster.Seed, n)
// would hand a fixed sweep.
const adaptiveSeedSalt = 0xada9f17e5eed5a17

// Adaptive configures adaptive replication for Runner.RunSweepStats.
// Every logical cell first runs MinSeeds replicates; then, round by
// round, each unconverged cell receives one more seed until its
// relative CI95 (the Student-t half-width of the per-seed mean
// response time, divided by the mean) drops below CITarget or the cell
// reaches MaxSeeds. Cells at policy-crossover boundaries — load points
// where the best policy by mean response time differs from a
// grid-adjacent point — are held to the tighter target
// CITarget/BoundaryFactor, so the budget saved on easy cells
// concentrates where the curves actually cross.
//
// Determinism: stop decisions are taken at round barriers from
// completed-seed data only, evaluated in canonical cell order, and the
// seed a cell receives in round k is a pure function of the sweep
// value. Results are therefore byte-identical at any worker count,
// like every other Runner path.
type Adaptive struct {
	// CITarget is the relative CI95 stop threshold (e.g. 0.2 = ±20% of
	// the mean); <= 0 disables adaptive replication entirely (fixed
	// replication over Sweep.Seeds, the default).
	CITarget float64
	// MinSeeds is the mandatory replicate floor before any stop
	// decision. Values below 3 are raised to 3: a Student-t interval
	// over fewer replicates is too wide to gate on, and with one
	// replicate the interval is unknown outright (stats.MeanCI95
	// returns +Inf for n < 2 — the bug pair this floor guards).
	MinSeeds int
	// MaxSeeds caps any cell's replicates (default max(2×MinSeeds,
	// len(Sweep.Seeds))). The fixed-replication budget a sweep is
	// compared against is cells × MaxSeeds.
	MaxSeeds int
	// BoundaryFactor divides CITarget for boundary-adjacent cells
	// (default 2; 1 disables the refinement).
	BoundaryFactor float64
}

// enabled reports whether the config turns adaptive replication on.
func (a Adaptive) enabled() bool { return a.CITarget > 0 }

func (a Adaptive) withDefaults(seedCount int) Adaptive {
	if a.MinSeeds < 3 {
		a.MinSeeds = 3
	}
	if a.MaxSeeds == 0 {
		a.MaxSeeds = 2 * a.MinSeeds
		if seedCount > a.MaxSeeds {
			a.MaxSeeds = seedCount
		}
	}
	if a.MaxSeeds < a.MinSeeds {
		a.MaxSeeds = a.MinSeeds
	}
	if a.BoundaryFactor == 0 {
		a.BoundaryFactor = 2
	}
	if a.BoundaryFactor < 1 {
		a.BoundaryFactor = 1
	}
	return a
}

// relCI returns the relative CI95 of the cell's mean response time:
// half-width over |mean|. Fewer than two completed replicates yield
// +Inf (unknown interval — stats.MeanCI95), as does a zero mean with a
// nonzero half-width, so degenerate cells can never read as converged.
func relCI(cs CellStats) float64 {
	d := cs.Mean.Dist
	if d.Mean == 0 {
		if d.CI95 == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return d.CI95 / math.Abs(d.Mean)
}

// RunSweepAdaptive executes the sweep under the adaptive replication
// controller and returns both the ragged raw result (per-cell seed
// lists in CellSeeds) and its aggregate with per-cell StopReason.
// RunSweepStats delegates here when Sweep.Adaptive is enabled; use
// this entry point directly when the raw replicates are needed too.
// The error mirrors Run's: non-nil only on cancellation, with the
// partial cells still returned (interrupted cells keep an empty
// StopReason).
func (r Runner) RunSweepAdaptive(ctx context.Context, s Sweep) (SweepResult, SweepStats, error) {
	s = s.withDefaults()
	a := s.Adaptive.withDefaults(len(s.Seeds))

	// The seed universe: the sweep's own seeds first (deduplicated, in
	// order), grown to MaxSeeds with derived seeds that collide with
	// none of them. Every cell's round-k replicate uses seeds[k], so
	// cells share common random numbers and the schedule is a pure
	// function of the sweep value.
	seeds := dedupSeeds(s.Seeds)
	if len(seeds) < a.MaxSeeds {
		seeds = ExtendSeeds(seeds, s.Cluster.Seed^adaptiveSeedSalt, a.MaxSeeds-len(seeds))
	} else {
		seeds = seeds[:a.MaxSeeds]
	}

	base := s.cellScenarios()
	nCells := len(base)
	perCell := make([][]CellResult, nCells)
	reason := make([]string, nCells)
	scheduled := make([]int, nCells)

	var runErr error
	for runErr == nil {
		// Build this round's batch: every open cell gets its next seed
		// (the full MinSeeds floor in round 0). Batch order is canonical
		// cell order, so Runner.Run's input-order determinism carries
		// straight through.
		var batch []Scenario
		var owner []int
		for ci, sc := range base {
			if reason[ci] != "" {
				continue
			}
			want := a.MinSeeds
			if scheduled[ci] > 0 {
				want = scheduled[ci] + 1
			}
			for k := scheduled[ci]; k < want; k++ {
				rep := sc
				rep.Seed = seeds[k]
				batch = append(batch, rep)
				owner = append(owner, ci)
			}
			scheduled[ci] = want
		}
		if len(batch) == 0 {
			break
		}
		results, err := r.Run(ctx, batch)
		for i, res := range results {
			perCell[owner[i]] = append(perCell[owner[i]], res)
		}
		if err != nil {
			runErr = err
			break
		}

		// Barrier: stop decisions from completed data only, evaluated in
		// canonical cell order — independent of worker scheduling.
		boundary := boundaryCells(s, base, perCell)
		for ci := range base {
			if reason[ci] != "" {
				continue
			}
			cs := newCellStats(perCell[ci])
			target := a.CITarget
			if boundary[ci] {
				target /= a.BoundaryFactor
			}
			switch {
			case cs.N() >= a.MinSeeds && relCI(cs) <= target:
				reason[ci] = StopConverged
			case scheduled[ci] >= a.MaxSeeds:
				reason[ci] = StopMaxSeeds
			}
		}
	}

	res := SweepResult{
		Policies: s.Policies, Variants: s.Variants,
		Loads: s.loadLabels(), LoadVecs: s.LoadGrid.Points(),
		Seeds:     seeds,
		CellSeeds: make([][]uint64, nCells),
	}
	for ci, reps := range perCell {
		cellSeeds := make([]uint64, len(reps))
		for k, rep := range reps {
			cellSeeds[k] = rep.Seed
		}
		res.CellSeeds[ci] = cellSeeds
		res.Cells = append(res.Cells, reps...)
	}
	agg := res.Aggregate()
	for ci := range agg.Cells {
		agg.Cells[ci].StopReason = reason[ci]
	}
	return res, agg, runErr
}

// dedupSeeds drops duplicate (and zero — it would alias Cluster.Seed)
// entries, preserving first-occurrence order.
func dedupSeeds(seeds []uint64) []uint64 {
	seen := make(map[uint64]bool, len(seeds))
	out := make([]uint64, 0, len(seeds))
	for _, s := range seeds {
		if s == 0 || seen[s] {
			continue
		}
		seen[s] = true
		out = append(out, s)
	}
	return out
}

// boundaryCells marks the cells sitting on policy-crossover boundaries:
// for each (variant, load point), the best policy by across-seed mean
// response time is compared against each neighboring load point's best
// (grid adjacency under LoadGrid, ±1 along the load axis otherwise);
// where they differ, every policy's cell at both points is marked. The
// input data is the completed replicates so far; evaluation order is
// canonical, keeping the result worker-count independent.
func boundaryCells(s Sweep, base []Scenario, perCell [][]CellResult) []bool {
	nPolicies, nVariants, nLoads := len(s.Policies), len(s.Variants), s.loadPoints()
	cellIdx := func(pi, vi, li int) int { return (pi*nVariants+vi)*nLoads + li }

	marked := make([]bool, len(base))
	if nPolicies < 2 || nLoads < 2 {
		return marked
	}
	for vi := 0; vi < nVariants; vi++ {
		best := make([]int, nLoads)
		for li := 0; li < nLoads; li++ {
			best[li] = -1
			bestMean := math.Inf(1)
			for pi := 0; pi < nPolicies; pi++ {
				cs := newCellStats(perCell[cellIdx(pi, vi, li)])
				if cs.N() == 0 {
					continue
				}
				if m := cs.Mean.Dist.Mean; m < bestMean {
					bestMean, best[li] = m, pi
				}
			}
		}
		for li := 0; li < nLoads; li++ {
			if best[li] < 0 {
				continue
			}
			for _, ni := range loadNeighbors(s, li) {
				if best[ni] < 0 || best[ni] == best[li] {
					continue
				}
				for pi := 0; pi < nPolicies; pi++ {
					marked[cellIdx(pi, vi, li)] = true
					marked[cellIdx(pi, vi, ni)] = true
				}
			}
		}
	}
	return marked
}

// loadNeighbors returns the load-axis indexes adjacent to point li:
// grid adjacency (±1 along exactly one axis) for grid sweeps, ±1 for
// scalar ones.
func loadNeighbors(s Sweep, li int) []int {
	if !s.LoadGrid.Empty() {
		return s.LoadGrid.Neighbors(li)
	}
	var out []int
	if li > 0 {
		out = append(out, li-1)
	}
	if li < len(s.Loads)-1 {
		out = append(out, li+1)
	}
	return out
}

// TotalReplicates sums the completed replicates over all cells — the
// measurement budget an adaptive run actually spent, to compare
// against the fixed budget len(Cells) × MaxSeeds.
func (s SweepStats) TotalReplicates() int {
	total := 0
	for _, cs := range s.Cells {
		total += cs.N()
	}
	return total
}
