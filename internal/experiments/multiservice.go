// Multi-service workloads: several independent arrival streams — one per
// VIP — interleaved into a single deterministic open loop against one
// multi-VIP topology. This is the regime the paper's power-of-choices
// argument is really about: heterogeneous services sharing LB replicas,
// where an imbalance created by one service's bursts is invisible to a
// per-service random spray but steerable by Service Hunting.
//
// The building blocks:
//
//   - ServiceWorkload — one VIP's arrival process (Poisson, bursty MMPP,
//     Wikipedia-day replay), opened per run with a per-VIP seed.
//   - ServiceSpec — the service: a name, its workload, its pool sizing.
//   - MultiServiceWorkload — the Workload that builds the joint topology,
//     merges the streams, and reports the outcome both aggregate and per
//     VIP (CellOutcome.PerVIP).
//   - RunMultiService — the canonical three-service experiment behind
//     `srlb-bench -experiment multiservice`.

package experiments

import (
	"context"
	"fmt"
	"io"
	"math/rand/v2"
	"net/netip"
	"strings"
	"time"

	"srlb/internal/agent"
	"srlb/internal/appserver"
	"srlb/internal/metrics"
	"srlb/internal/plot"
	"srlb/internal/rng"
	"srlb/internal/testbed"
	"srlb/internal/vrouter"
	"srlb/internal/wiki"
)

// ServiceStream yields one VIP's queries in arrival order. Next returns
// the next query and its absolute arrival time; ok=false ends the stream.
type ServiceStream interface {
	Next() (at time.Duration, q testbed.Query, ok bool)
}

// ServiceWorkload is one VIP's arrival process inside a
// MultiServiceWorkload — the per-service analogue of Workload. All
// randomness must derive from the seed passed to Open, so a multi-service
// cell stays a pure function of its scenario value.
type ServiceWorkload interface {
	// Label names the arrival process in artifacts.
	Label() string
	// Span estimates the stream's arrival span at the given load — the
	// horizon guard and the base rate-relative events resolve against.
	Span(load float64) time.Duration
	// Open builds the run's stream. spec is the service's VIPSpec,
	// mutable until Build — workloads with per-server demand models (the
	// Wikipedia replay) install them here. seed is already split per VIP.
	Open(spec *testbed.VIPSpec, seed uint64, load float64) ServiceStream
}

// PoissonService is the §V open-loop Poisson arrival process as one
// service of a multi-service workload: Exp(MeanDemand) demands at rate
// load × Lambda0, for Queries arrivals (or until Horizon).
type PoissonService struct {
	// Lambda0 converts the load point to an absolute rate in queries/sec.
	Lambda0 float64
	// Queries per run (default 20000). Ignored when Horizon is set.
	Queries int
	// Horizon, when nonzero, bounds the stream by time instead of count:
	// arrivals flow at rate load × Lambda0 until Horizon, so the offered
	// count scales with the load point while the span stays fixed — the
	// shape an interference aggressor needs when swept against a
	// fixed-span victim.
	Horizon time.Duration
}

func (s PoissonService) queries() int {
	if s.Queries == 0 {
		return 20000
	}
	return s.Queries
}

// Label implements ServiceWorkload.
func (s PoissonService) Label() string {
	if s.Horizon > 0 {
		return fmt.Sprintf("poisson(%.0fs)", s.Horizon.Seconds())
	}
	return fmt.Sprintf("poisson(%dq)", s.queries())
}

// Span implements ServiceWorkload.
func (s PoissonService) Span(load float64) time.Duration {
	if s.Horizon > 0 {
		return s.Horizon
	}
	return time.Duration(float64(s.queries()) / (load * s.Lambda0) * float64(time.Second))
}

// Open implements ServiceWorkload.
func (s PoissonService) Open(_ *testbed.VIPSpec, seed uint64, load float64) ServiceStream {
	remaining := s.queries()
	if s.Horizon > 0 {
		remaining = -1
	}
	return &demandStream{
		arrivals:  rng.NewPoisson(rng.Split(seed, 0xa221), load*s.Lambda0, 0),
		demands:   rng.Split(seed, 0xde3a),
		remaining: remaining,
		horizon:   s.Horizon,
	}
}

// BurstyService is the on/off MMPP arrival process (BurstyWorkload) as
// one service: bursts at PeakFactor times the long-run mean alternate
// with quiet periods while the mean stays load × Lambda0.
type BurstyService struct {
	Lambda0 float64
	// Queries per run (default 20000). Ignored when Horizon is set.
	Queries int
	// Horizon, when nonzero, bounds the stream by time instead of count
	// (see PoissonService.Horizon).
	Horizon time.Duration
	// MeanOn/MeanOff are the mean burst and quiet durations (defaults 2s
	// and 6s); PeakFactor the ON-state rate relative to the mean
	// (default 3). Same semantics as BurstyWorkload.
	MeanOn, MeanOff time.Duration
	PeakFactor      float64
}

func (s BurstyService) bursty() BurstyWorkload {
	return BurstyWorkload{
		Lambda0: s.Lambda0, Queries: s.Queries,
		MeanOn: s.MeanOn, MeanOff: s.MeanOff, PeakFactor: s.PeakFactor,
	}.withDefaults()
}

// Label implements ServiceWorkload.
func (s BurstyService) Label() string {
	if s.Horizon > 0 {
		w := s.bursty()
		return fmt.Sprintf("bursty(%.0fs,peak=%.1fx)", s.Horizon.Seconds(), w.PeakFactor)
	}
	return s.bursty().Label()
}

// Span implements ServiceWorkload.
func (s BurstyService) Span(load float64) time.Duration {
	if s.Horizon > 0 {
		return s.Horizon
	}
	w := s.bursty()
	return time.Duration(float64(w.Queries) / (load * w.Lambda0) * float64(time.Second))
}

// Open implements ServiceWorkload.
func (s BurstyService) Open(_ *testbed.VIPSpec, seed uint64, load float64) ServiceStream {
	w := s.bursty()
	remaining := w.Queries
	if s.Horizon > 0 {
		remaining = -1
	}
	return &demandStream{
		arrivals:  w.newMMPP(seed, load),
		demands:   rng.Split(seed, 0xde3a),
		remaining: remaining,
		horizon:   s.Horizon,
	}
}

// demandStream adapts an arrivalStream plus Exp(MeanDemand) demands into
// a bounded ServiceStream — the engine behind PoissonService and
// BurstyService. The bound is either a count (remaining > 0) or a time
// horizon (remaining < 0, horizon set).
type demandStream struct {
	arrivals  arrivalStream
	demands   *rand.Rand
	remaining int
	horizon   time.Duration
}

func (s *demandStream) Next() (time.Duration, testbed.Query, bool) {
	if s.remaining == 0 {
		return 0, testbed.Query{}, false
	}
	at := s.arrivals.Next()
	if s.horizon > 0 && at > s.horizon {
		s.remaining = 0
		return 0, testbed.Query{}, false
	}
	if s.remaining > 0 {
		s.remaining--
	}
	return at, testbed.Query{Demand: rng.Exp(s.demands, MeanDemand)}, true
}

// WikiService replays the §VI synthetic Wikipedia day as one service:
// diurnal NHPP arrivals, Zipf page popularity, and a per-server memcached
// demand model installed on the service's pool. The load point is a
// replay speed-up (load 2 replays twice as fast), exactly as in
// TraceWorkload, so the service sweeps intensity coherently with its
// Poisson neighbors.
type WikiService struct {
	// Day parameterizes the synthetic trace. Day.Seed 0 derives the
	// stream from the scenario seed (so replicates vary the day);
	// setting it pins the trace across seeds.
	Day wiki.Config
	// Cost is the per-server service-cost model (zero = defaults).
	Cost wiki.CostModel
	// Pinned is the recorded-day replay mode: one fixed day — its
	// arrival stream, page sequence, AND the per-server cache cost
	// streams — replayed identically across policies × seeds, all
	// derived from Day.Seed (default 1 when zero) instead of the
	// scenario seed. Replicates then differ only in the cluster's own
	// randomness (candidate selection, cross-service interleaving), so
	// across-seed variance of the wiki rows collapses to the part the
	// policy comparison actually cares about.
	Pinned bool
}

// Label implements ServiceWorkload.
func (s WikiService) Label() string {
	if s.Pinned {
		return fmt.Sprintf("wiki-day(pinned,compress=%.0fx)", s.Day.Compression)
	}
	return fmt.Sprintf("wiki-day(compress=%.0fx)", s.Day.Compression)
}

// Span implements ServiceWorkload.
func (s WikiService) Span(load float64) time.Duration {
	return time.Duration(float64(s.Day.VirtualHorizon()) / load)
}

// Open implements ServiceWorkload.
func (s WikiService) Open(spec *testbed.VIPSpec, seed uint64, load float64) ServiceStream {
	day := s.Day
	if day.Seed == 0 {
		day.Seed = seed
		if s.Pinned {
			day.Seed = 1
		}
	}
	// Per-server Wikipedia replicas: prewarmed caches scaled to the
	// day's catalog, as in the single-service replay (§VI). Pinned mode
	// freezes the replica cost streams with the day.
	repSeed := seed
	if s.Pinned {
		repSeed = day.Seed
	}
	model := s.Cost.ScaledTo(day.CatalogPages())
	model.Prewarm = true
	spec.Demand = func(i int) vrouter.DemandFn {
		return wiki.NewReplica(repSeed+uint64(i)*7919, model).Demand
	}
	return &wikiServiceStream{stream: wiki.NewStream(day), speed: load}
}

// wikiServiceStream adapts the synthetic day's entry stream, rescaling
// arrival times by the replay speed.
type wikiServiceStream struct {
	stream *wiki.Stream
	speed  float64
}

func (s *wikiServiceStream) Next() (time.Duration, testbed.Query, bool) {
	e, isWiki, done := s.stream.Next()
	if done {
		return 0, testbed.Query{}, false
	}
	q := testbed.Query{URL: e.URL}
	if isWiki {
		q.Class = classWiki
	}
	return time.Duration(float64(e.At) / s.speed), q, true
}

// ServiceSpec declares one service of a MultiServiceWorkload: its name,
// arrival process, and pool sizing. Zero pool fields inherit the
// cluster's (ClusterConfig.Servers / .Server).
type ServiceSpec struct {
	// Name labels the VIP in artifacts and per-VIP rows (default
	// "svc<i>").
	Name string
	// Workload is the service's arrival process (required).
	Workload ServiceWorkload
	// Pool, when set, references a MultiServiceWorkload.Pools entry by
	// name: services naming the same pool select over the *same*
	// servers and contend for the same workers. Servers/Server are then
	// ignored — the pool carries the sizing.
	Pool string
	// Servers overrides the service's pool size; Server its per-server
	// configuration.
	Servers int
	Server  appserver.Config
}

func (s ServiceSpec) name(i int) string {
	if s.Name == "" {
		return fmt.Sprintf("svc%d", i)
	}
	return s.Name
}

// ServiceLoad maps the sweep's scalar load point onto one service's own
// intensity — the per-service load axis. The zero value tracks the sweep
// load unchanged; Fixed pins a constant (the steady victim of an
// interference study); Scale multiplies the sweep's knob (a proportional
// aggressor). Together with Sweep.Loads this spans a ρ-matrix: e.g.
// batch surge ρ_b (Scale 1, swept) against steady web ρ_w (Fixed).
type ServiceLoad struct {
	// Fixed, when nonzero, pins the service's load at this value
	// whatever the sweep's load point.
	Fixed float64
	// Scale multiplies the sweep's load point (0 means 1). Ignored when
	// Fixed is set.
	Scale float64
}

// Resolve returns the service's effective load at the sweep's load point.
func (sl ServiceLoad) Resolve(load float64) float64 {
	if sl.Fixed != 0 {
		return sl.Fixed
	}
	if sl.Scale != 0 {
		return sl.Scale * load
	}
	return load
}

// MultiServiceWorkload interleaves the arrival streams of several
// services — each targeting its own VIP, with its own server pool or a
// shared one — into one deterministic open loop against a single
// multi-VIP cluster sharing the LB replicas. The policy under test
// applies to every VIP (the policy axis is what the experiment
// compares); the load point scales every service's intensity together
// unless ServiceLoads gives a service its own axis.
//
// The outcome is reported both aggregate (the usual CellOutcome fields,
// covering all VIPs) and per service (CellOutcome.PerVIP, one VIPOutcome
// per ServiceSpec in order, each carrying its resolved Load), and the
// per-VIP breakdown survives replication: CellStats.VIPs aggregates each
// service across seeds.
type MultiServiceWorkload struct {
	Services []ServiceSpec
	// ServiceLoads, when non-nil, gives service i its own load axis
	// (must be parallel to Services): the cell's scalar load resolves
	// through ServiceLoads[i] before reaching the service's workload.
	ServiceLoads []ServiceLoad
	// Pools declares named server pools that services reference via
	// ServiceSpec.Pool — the shared-backend regime. Zero sizing fields
	// inherit the cluster's; a nil Policy takes the PolicySpec under
	// test (one agent per physical server, shared by every service).
	Pools []testbed.PoolSpec
	// CloseAck makes clients acknowledge responses with a final ACK+FIN
	// (testbed.Generator.CloseAck) — the extra steered packet arrives a
	// service time after the request, giving flowlet-grained policies a
	// boundary to act on. Off by default: the extra frame shifts the
	// shared network rng stream of pinned experiments.
	CloseAck bool
}

// MultiServiceStats is MultiServiceWorkload's CellOutcome.Extra payload:
// the cluster-side counters a policy ablation wants alongside the
// latency aggregates. (CellStats drops Extra — read these off the raw
// SweepResult cells.)
type MultiServiceStats struct {
	// Resteers counts flowlet re-steers (mid-connection candidate
	// rewrites) summed across LB replicas.
	Resteers uint64
	// Rebinds is the flow-table view of the same events, summed across
	// replicas — equal to Resteers unless a rebind raced an expiry.
	Rebinds uint64
}

// RunVector implements VectorWorkload: a grid sweep's per-service
// ρ-vector rides the ServiceLoads plumbing — service d is pinned at
// loads[d] (ServiceLoad.Fixed) and the scalar load knob is inert. Any
// ServiceLoads already set on the workload are replaced for the cell.
func (w MultiServiceWorkload) RunVector(ctx context.Context, cluster ClusterConfig, spec PolicySpec, loads []float64) (CellOutcome, error) {
	if len(loads) != len(w.Services) {
		panic(fmt.Sprintf("experiments: %d-dimensional load vector for %d services", len(loads), len(w.Services)))
	}
	sl := make([]ServiceLoad, len(loads))
	for i, l := range loads {
		if l <= 0 {
			panic(fmt.Sprintf("experiments: grid load %g for service %d must be > 0", l, i))
		}
		sl[i] = ServiceLoad{Fixed: l}
	}
	w.ServiceLoads = sl
	return w.Run(ctx, cluster, spec, 1)
}

// ResolveLoads returns the per-service loads at the sweep's load point,
// in service order.
func (w MultiServiceWorkload) ResolveLoads(load float64) []float64 {
	out := make([]float64, len(w.Services))
	for i := range out {
		out[i] = load
		if w.ServiceLoads != nil {
			out[i] = w.ServiceLoads[i].Resolve(load)
		}
	}
	return out
}

// Label implements Workload.
func (w MultiServiceWorkload) Label() string {
	parts := make([]string, len(w.Services))
	for i, svc := range w.Services {
		parts[i] = svc.name(i) + ":" + svc.Workload.Label()
		if svc.Pool != "" {
			parts[i] += "→" + svc.Pool
		}
		if w.ServiceLoads != nil && i < len(w.ServiceLoads) && w.ServiceLoads[i].Fixed != 0 {
			parts[i] += fmt.Sprintf("@rho=%.2f", w.ServiceLoads[i].Fixed)
		}
	}
	return "multi(" + strings.Join(parts, " ") + ")"
}

// Run implements Workload.
func (w MultiServiceWorkload) Run(ctx context.Context, cluster ClusterConfig, spec PolicySpec, load float64) (CellOutcome, error) {
	if len(w.Services) == 0 {
		panic("experiments: MultiServiceWorkload needs at least one service")
	}
	if w.ServiceLoads != nil && len(w.ServiceLoads) != len(w.Services) {
		panic(fmt.Sprintf("experiments: %d ServiceLoads for %d services", len(w.ServiceLoads), len(w.Services)))
	}
	cluster = cluster.withDefaults()
	loads := w.ResolveLoads(load)

	// Shared pools: zero sizing inherits the cluster's, a nil Policy
	// takes the policy under test — one agent per physical server,
	// whichever service's query lands on it.
	pools := make([]testbed.PoolSpec, len(w.Pools))
	for i, ps := range w.Pools {
		if ps.Servers == 0 {
			ps.Servers = cluster.Servers
		}
		if ps.Server.Workers == 0 {
			ps.Server = cluster.Server
		}
		if ps.ServerOverride == nil {
			ps.ServerOverride = cluster.ServerOverride
		}
		if ps.Policy == nil {
			ps.Policy = func(int) agent.Policy { return spec.NewAgent() }
		}
		pools[i] = ps
	}

	// One VIPSpec per service, all sharing the policy under test; each
	// service's workload may install its demand model before Build.
	specs := make([]testbed.VIPSpec, len(w.Services))
	streams := make([]ServiceStream, len(w.Services))
	svcSeeds := DeriveSeeds(cluster.Seed^0x5eb51ce5, len(w.Services))
	var span time.Duration
	for i, svc := range w.Services {
		if svc.Workload == nil {
			panic(fmt.Sprintf("experiments: service %d has no workload", i))
		}
		vs := cluster.vipSpec(spec)
		vs.Name = svc.name(i)
		if svc.Pool != "" {
			// The referenced pool carries sizing and policy; the VIPSpec
			// keeps only the per-service machinery (scheme, fallback,
			// demand).
			vs.Pool = svc.Pool
			vs.Servers = 0
			vs.Server = appserver.Config{}
			vs.ServerOverride = nil
			vs.Policy = nil
		} else {
			if svc.Servers > 0 {
				vs.Servers = svc.Servers
				vs.ServerOverride = nil
			}
			if svc.Server.Workers != 0 {
				vs.Server = svc.Server
			}
		}
		specs[i] = vs
		if sp := svc.Workload.Span(loads[i]); sp > span {
			span = sp
		}
	}
	for i, svc := range w.Services {
		streams[i] = svc.Workload.Open(&specs[i], svcSeeds[i], loads[i])
	}
	top := testbed.Topology{
		Seed:     cluster.Seed,
		Replicas: cluster.Replicas,
		Clients:  cluster.Clients,
		Pools:    pools,
		VIPs:     specs,
		Events:   testbed.ResolveEvents(cluster.Events, span),
		Feedback: cluster.Feedback,
	}
	if top.Feedback.Enabled && top.Feedback.Horizon <= 0 {
		top.Feedback.Horizon = span + 2*time.Minute
	}
	tb := testbed.Build(top)
	tb.Gen.CloseAck = w.CloseAck

	// Aggregate and per-VIP accounting: the sink demultiplexes by
	// Result.VIP, with every service pre-registered in service order so
	// the per-VIP sketches come back in a deterministic order.
	vips := make([]netip.Addr, len(w.Services))
	for i := range w.Services {
		vips[i] = tb.VIPAddrOf(i)
	}
	sink := testbed.NewSketchSink(vips...)
	tb.Gen.Sink = sink

	// Interleave: every stream schedules itself one arrival ahead; the
	// DES merges them in time order (ties by scheduling order, which is
	// itself deterministic). Query IDs are global across services.
	var id uint64
	for v := range streams {
		vip := vips[v]
		stream := streams[v]
		var step func(q testbed.Query)
		schedule := func() {
			if at, q, ok := stream.Next(); ok {
				tb.Sim.At(at, func() { step(q) })
			}
		}
		step = func(q testbed.Query) {
			q.ID = id
			id++
			q.VIP = vip
			tb.Gen.Launch(q)
			schedule()
		}
		schedule()
	}
	err := runSim(ctx, tb.Sim, span+2*time.Minute)
	// Drained queries report through the sink (OK and Refused both
	// false), landing in the Unfinished columns.
	tb.Gen.DrainPending()

	total := sink.Total()
	out := CellOutcome{
		RT:         total.RT,
		Refused:    int(total.Counters.Refused),
		Unfinished: int(total.Counters.Unfinished),
		PerVIP:     make([]VIPOutcome, len(w.Services)),
	}
	for i := range out.PerVIP {
		vs := sink.VIP(vips[i])
		out.PerVIP[i] = VIPOutcome{
			Name:       specs[i].Name,
			Workload:   w.Services[i].Workload.Label(),
			Load:       loads[i],
			Offered:    int(vs.Counters.Offered),
			RT:         vs.RT,
			Refused:    int(vs.Counters.Refused),
			Unfinished: int(vs.Counters.Unfinished),
		}
	}
	var ms MultiServiceStats
	for _, lb := range tb.LBs {
		ms.Resteers += lb.Counts.Get("flowlet_resteer")
		ms.Rebinds += lb.FlowStats().Rebinds
	}
	out.Extra = ms
	return out, err
}

// MultiServiceConfig is the canonical multi-service experiment: three
// heterogeneous services — an interactive web VIP under Poisson arrivals,
// a Wikipedia-day replay VIP, and a smaller batch VIP under bursty MMPP
// arrivals — sharing the LB replica(s), swept over load under each
// policy. The measurement is per-service: how much of each service's
// latency and completion budget does each policy preserve when the
// services contend through one balancer.
type MultiServiceConfig struct {
	Cluster ClusterConfig
	// Lambda0 is the web VIP's calibrated capacity rate (0 ⇒ measured
	// via CalibrateCached on the base cluster); the batch VIP's rate
	// scales with its pool share.
	Lambda0 float64
	// Rhos are the normalized loads to sweep (default {0.6, 0.85}).
	Rhos []float64
	// Queries is the web VIP's arrivals per cell (default 20000); the
	// batch VIP offers half that.
	Queries int
	// Compression is the wiki day's replay compression (default 288 —
	// the 24-hour day in 5 simulated minutes).
	Compression float64
	// BatchPeak is the batch VIP's ON-state burst factor (default 4).
	BatchPeak float64
	// Policies defaults to {RR, SR4, SRdyn}.
	Policies []PolicySpec
	// Seeds is the replication axis (default: the cluster seed alone).
	Seeds    []uint64
	Workers  int
	Progress func(string)
}

// MultiServiceRow is one (rho, policy, service) outcome aggregated across
// the replication axis; Service "all" is the aggregate over services.
type MultiServiceRow struct {
	Rho     float64
	Policy  string
	Service string
	// N counts completed replicates.
	N                        int
	Mean, MeanCI95, P50, P99 time.Duration
	OKFrac, OKFracCI95       float64
	// Offered, Refused and Unfinished are across-seed mean counts.
	Offered, Refused, Unfinished float64
}

// MultiServiceResult holds the full grid.
type MultiServiceResult struct {
	Lambda0 float64
	// Services lists the service names, in ServiceSpec order.
	Services []string
	Rhos     []float64
	Seeds    []uint64
	// Stats is the underlying replicated sweep — per-VIP aggregates
	// included (CellStats.VIPs) — the machine-readable artifact's source.
	Stats SweepStats
	Rows  []MultiServiceRow
}

// RunMultiService executes the experiment.
func RunMultiService(cfg MultiServiceConfig) MultiServiceResult {
	return RunMultiServiceCtx(context.Background(), cfg)
}

// RunMultiServiceCtx is RunMultiService with cancellation; cancelled
// cells are dropped from the aggregates.
func RunMultiServiceCtx(ctx context.Context, cfg MultiServiceConfig) MultiServiceResult {
	cfg.Cluster = cfg.Cluster.withDefaults()
	if len(cfg.Rhos) == 0 {
		cfg.Rhos = []float64{0.6, 0.85}
	}
	if cfg.Queries == 0 {
		cfg.Queries = 20000
	}
	if cfg.Compression == 0 {
		cfg.Compression = 288
	}
	if cfg.BatchPeak == 0 {
		cfg.BatchPeak = 4
	}
	if len(cfg.Policies) == 0 {
		cfg.Policies = []PolicySpec{RR(), SRc(4), SRdyn()}
	}
	if cfg.Lambda0 == 0 {
		cal := CalibrateCached(CalibrationConfig{Cluster: cfg.Cluster})
		cfg.Lambda0 = cal.Lambda0
	}

	// The batch pool is half the web pool; its offered rate scales with
	// its pool share so every service sweeps the same normalized load.
	batchServers := cfg.Cluster.Servers / 2
	if batchServers < 2 {
		batchServers = 2
	}
	batchShare := float64(batchServers) / float64(cfg.Cluster.Servers)
	workload := MultiServiceWorkload{Services: []ServiceSpec{
		{Name: "web", Workload: PoissonService{Lambda0: cfg.Lambda0, Queries: cfg.Queries}},
		{Name: "wiki", Workload: WikiService{Day: wiki.Config{Compression: cfg.Compression}}},
		{Name: "batch", Workload: BurstyService{
			Lambda0: cfg.Lambda0 * batchShare, Queries: cfg.Queries / 2, PeakFactor: cfg.BatchPeak,
		}, Servers: batchServers},
	}}

	agg, _ := Runner{Workers: cfg.Workers, Progress: cfg.Progress}.RunSweepStats(ctx, Sweep{
		Cluster:  cfg.Cluster,
		Policies: cfg.Policies,
		Loads:    cfg.Rhos,
		Seeds:    cfg.Seeds,
		Workload: workload,
	})

	res := MultiServiceResult{
		Lambda0: cfg.Lambda0,
		Rhos:    cfg.Rhos,
		Seeds:   agg.Seeds,
		Stats:   agg,
	}
	for _, svc := range workload.Services {
		res.Services = append(res.Services, svc.Name)
	}
	for li, rho := range cfg.Rhos {
		for pi, spec := range cfg.Policies {
			cs := agg.CellAt(pi, 0, li)
			if cs.N() == 0 {
				continue
			}
			var offered float64
			for _, vs := range cs.VIPs {
				offered += vs.Offered.Dist.Mean
			}
			res.Rows = append(res.Rows, MultiServiceRow{
				Rho: rho, Policy: spec.Name, Service: "all", N: cs.N(),
				Offered:  offered,
				Mean:     secDur(cs.Mean.Dist.Mean),
				MeanCI95: secDur(cs.Mean.Dist.ReportedCI95()),
				P50:      secDur(cs.Median.Dist.Mean),
				P99:      secDur(cs.P99.Dist.Mean),
				OKFrac:   cs.OKFraction.Dist.Mean, OKFracCI95: cs.OKFraction.Dist.ReportedCI95(),
				Refused: cs.Refused.Dist.Mean, Unfinished: cs.Unfinished.Dist.Mean,
			})
			for _, vs := range cs.VIPs {
				res.Rows = append(res.Rows, MultiServiceRow{
					Rho: rho, Policy: spec.Name, Service: vs.Name, N: cs.N(),
					Mean:     secDur(vs.Mean.Dist.Mean),
					MeanCI95: secDur(vs.Mean.Dist.ReportedCI95()),
					P50:      secDur(vs.Median.Dist.Mean),
					P99:      secDur(vs.P99.Dist.Mean),
					OKFrac:   vs.OKFraction.Dist.Mean, OKFracCI95: vs.OKFraction.Dist.ReportedCI95(),
					Offered: vs.Offered.Dist.Mean,
					Refused: vs.Refused.Dist.Mean, Unfinished: vs.Unfinished.Dist.Mean,
				})
			}
		}
	}
	return res
}

// Row returns the row for (policy, service) at the rho closest to the
// requested load.
func (r MultiServiceResult) Row(policy, service string, rho float64) (MultiServiceRow, error) {
	var best MultiServiceRow
	bestDiff := -1.0
	for _, row := range r.Rows {
		if row.Policy != policy || row.Service != service {
			continue
		}
		d := row.Rho - rho
		if d < 0 {
			d = -d
		}
		if bestDiff < 0 || d < bestDiff {
			bestDiff = d
			best = row
		}
	}
	if bestDiff < 0 {
		return MultiServiceRow{}, fmt.Errorf("multiservice: no row for (%q, %q)", policy, service)
	}
	return best, nil
}

// Improvement returns the RR-vs-policy mean-RT ratio for one service at
// the rho closest to the requested load — "how much faster is this
// service under the policy than under the random spray".
func (r MultiServiceResult) Improvement(policy, service string, rho float64) (float64, error) {
	rr, err := r.Row("RR", service, rho)
	if err != nil {
		return 0, err
	}
	row, err := r.Row(policy, service, rho)
	if err != nil {
		return 0, err
	}
	if row.Mean == 0 {
		return 0, fmt.Errorf("multiservice: zero mean for (%q, %q)", policy, service)
	}
	return float64(rr.Mean) / float64(row.Mean), nil
}

// PlotSeries renders one service's mean-RT-vs-load lines, one series per
// policy, with across-seed ci95 error bars.
func (r MultiServiceResult) PlotSeries(service string) []plot.Series {
	byPolicy := make(map[string]*plot.Series)
	var order []string
	for _, row := range r.Rows {
		if row.Service != service {
			continue
		}
		ser, ok := byPolicy[row.Policy]
		if !ok {
			ser = &plot.Series{Name: row.Policy}
			byPolicy[row.Policy] = ser
			order = append(order, row.Policy)
		}
		ser.X = append(ser.X, row.Rho)
		ser.Y = append(ser.Y, row.Mean.Seconds())
		ser.YErr = append(ser.YErr, row.MeanCI95.Seconds())
	}
	out := make([]plot.Series, 0, len(order))
	for _, name := range order {
		out = append(out, *byPolicy[name])
	}
	return out
}

// WriteTSV renders the grid: one row per (rho, policy, service), the
// aggregate first.
func (r MultiServiceResult) WriteTSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# Multi-service run: %s sharing the LB; lambda0=%.1f q/s (web VIP)\n",
		strings.Join(r.Services, "+"), r.Lambda0); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "rho\tpolicy\tservice\toffered\tmean_s\tmean_ci95_s\tp50_s\tp99_s\tok_frac\tok_ci95\trefused\tunfinished\tn"); err != nil {
		return err
	}
	for _, row := range r.Rows {
		if _, err := fmt.Fprintf(w, "%.2f\t%s\t%s\t%.0f\t%s\t%s\t%s\t%s\t%.4f\t%.4f\t%.0f\t%.0f\t%d\n",
			row.Rho, row.Policy, row.Service, row.Offered,
			metrics.FormatDuration(row.Mean),
			metrics.FormatDuration(row.MeanCI95),
			metrics.FormatDuration(row.P50),
			metrics.FormatDuration(row.P99),
			row.OKFrac, row.OKFracCI95, row.Refused, row.Unfinished, row.N); err != nil {
			return err
		}
	}
	return nil
}
