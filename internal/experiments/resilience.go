package experiments

import (
	"context"
	"fmt"
	"io"
	"strings"
	"time"

	"srlb/internal/testbed"
)

// ResilienceConfig is the correlated-failure resilience ablation: the
// same replica-kill, rack-loss and rolling-upgrade schedules run under
// three recovery disciplines, isolating what each layer of the SRLB
// failover story buys:
//
//   - "stateless" — the paper's uniform-random selection, no fallback,
//     cold restart. The baseline: flows steered by a replica that never
//     saw their SYN-ACK stall.
//   - "chash" — §II-B consistent-hash selection plus the miss-fallback
//     on the steering path, cold restart. Survivors and the restarted
//     replica recompute a candidate from the packet alone — right
//     whenever the first choice accepted, a guess when it did not.
//   - "warm" — chash plus warm handoff: the restarted replica imports a
//     survivor's flow table (ImportFlows) at the recover instant, so
//     even second-choice bindings steer exactly.
//
// Acceptance is load-dependent (SR with a threshold), so the three
// disciplines separate: warm ≥ chash ≥ stateless in completion rate.
type ResilienceConfig struct {
	Cluster ClusterConfig
	// Rho is the normalized load (default 0.85).
	Rho     float64
	Lambda0 float64
	// Queries per cell (default 20000).
	Queries int
	// Replicas is the LB replica count (default 2); replica 0 is killed
	// in the kill and rack scenarios.
	Replicas int
	// KillFrac places the failure at this fraction of the arrival span
	// (default 0.4); RecoverFrac re-attaches the replica (default 0.45
	// — a fast process restart, the window warm handoff is for: flows
	// still in SYN-retransmission when the replica returns are steered
	// by its inherited table instead of reset by a cold fallback guess).
	KillFrac, RecoverFrac float64
	// RackFrac is the fraction of pool servers lost in the rack
	// scenario (default 0.25), all at KillFrac.
	RackFrac float64
	// RTO enables client SYN retransmission (default 1s, exponential
	// backoff). Without it a single mis-steered request is a permanent
	// loss for every discipline and the ablation cannot separate them.
	RTO time.Duration
	// Seeds is the replication axis (default: the cluster seed alone).
	Seeds    []uint64
	Workers  int
	Progress func(string)
}

// resilienceScenarios and resilienceModes span the 3×3 variant grid.
var (
	resilienceScenarios = []string{"kill", "rack", "rolling"}
	resilienceModes     = []string{"stateless", "chash", "warm"}
)

// ResilienceRow is one (scenario, mode) cell, aggregated across seeds.
// All fields are derived scalars — no wall-clock rides along — so a
// marshalled row slice is byte-identical at any worker count.
type ResilienceRow struct {
	Scenario string
	Mode     string
	// N is the number of completed replicates.
	N int
	// OKFrac is the across-seed mean completion rate; CI95 fields are
	// Student-t half-widths (zero when N == 1).
	OKFrac, OKFracCI95 float64
	// MeanRT and P99 are response-time statistics in seconds.
	MeanRT, MeanRTCI95, P99 float64
	// Refused and Unfinished are mean per-seed counts.
	Refused, Unfinished float64
}

// ResilienceResult holds the 3×3 grid.
type ResilienceResult struct {
	Rho      float64
	Lambda0  float64
	Replicas int
	// KillFrac, RecoverFrac and RackFrac echo the resolved schedule.
	KillFrac, RecoverFrac, RackFrac float64
	Seeds                           []uint64
	// Rows is the grid in scenario-major, mode-minor order.
	Rows []ResilienceRow
	// Stats is the underlying sweep aggregation (per-cell metric
	// distributions, wall-clock), for programmatic drill-down.
	Stats SweepStats
}

// resilienceEvents builds one (scenario, mode)'s lifecycle schedule.
// Every event is rate-relative, so the same schedule serves any load
// point.
func resilienceEvents(cfg ResilienceConfig, scenario, mode string) []testbed.Event {
	warm := mode == "warm"
	donor := 0
	if cfg.Replicas > 1 {
		donor = 1
	}
	recover := func(frac float64) testbed.Event {
		if warm {
			return testbed.RecoverReplicaWarm(0, 0, donor).AtFraction(frac)
		}
		return testbed.RecoverReplica(0, 0).AtFraction(frac)
	}
	switch scenario {
	case "rack":
		// Several pool servers fail at the same instant as the replica —
		// the correlated top-of-rack story. The servers stay dead; only
		// the replica comes back.
		events := testbed.FailPoolRack("", cfg.Cluster.Servers, cfg.RackFrac, cfg.KillFrac)
		return append(events,
			testbed.FailReplica(0, 0).AtFraction(cfg.KillFrac),
			recover(cfg.RecoverFrac))
	case "rolling":
		// Sequential fail/recover pairs across every replica, spaced to
		// finish by 90% of the span, each outage as short as the kill
		// scenario's.
		stride := (0.9 - cfg.KillFrac) / float64(cfg.Replicas)
		down := cfg.RecoverFrac - cfg.KillFrac
		if down > stride/2 {
			down = stride / 2
		}
		return testbed.RollingUpgradeEvents(cfg.Replicas, cfg.KillFrac, stride, down, warm)
	default: // "kill"
		return []testbed.Event{
			testbed.FailReplica(0, 0).AtFraction(cfg.KillFrac),
			recover(cfg.RecoverFrac),
		}
	}
}

// RunResilience executes the ablation.
func RunResilience(cfg ResilienceConfig) ResilienceResult {
	return RunResilienceCtx(context.Background(), cfg)
}

// RunResilienceCtx is RunResilience with cancellation; cancelled cells
// are dropped from the aggregates.
func RunResilienceCtx(ctx context.Context, cfg ResilienceConfig) ResilienceResult {
	cfg.Cluster = cfg.Cluster.withDefaults()
	if cfg.Rho == 0 {
		cfg.Rho = 0.85
	}
	if cfg.Queries == 0 {
		cfg.Queries = 20000
	}
	if cfg.Replicas == 0 {
		cfg.Replicas = 2
	}
	if cfg.KillFrac == 0 {
		cfg.KillFrac = 0.4
	}
	if cfg.RecoverFrac == 0 {
		cfg.RecoverFrac = 0.45
	}
	if cfg.RackFrac == 0 {
		cfg.RackFrac = 0.25
	}
	if cfg.RTO == 0 {
		cfg.RTO = time.Second
	}
	if cfg.Lambda0 == 0 {
		cal := CalibrateCached(CalibrationConfig{Cluster: cfg.Cluster})
		cfg.Lambda0 = cal.Lambda0
	}

	// Each variant pins the replica count, the event schedule and both
	// selection knobs — the base cluster's own settings must not leak
	// into a mode labeled the other way.
	var variants []ClusterVariant
	for _, scenario := range resilienceScenarios {
		for _, mode := range resilienceModes {
			events := resilienceEvents(cfg, scenario, mode)
			stateless := mode == "stateless"
			variants = append(variants, ClusterVariant{
				Name: scenario + "/" + mode,
				Apply: func(c ClusterConfig) ClusterConfig {
					c.Replicas = cfg.Replicas
					c.Events = events
					c.ConsistentHash = !stateless
					c.MissFallback = !stateless
					return c
				},
			})
		}
	}
	// A threshold policy, so acceptance depends on instantaneous load:
	// some flows land on their second candidate, which is exactly the
	// population the chash fallback guesses wrong and warm handoff gets
	// right.
	policy := SRc(4)

	sweep, _ := Runner{Workers: cfg.Workers, Progress: cfg.Progress}.RunSweep(ctx, Sweep{
		Cluster:  cfg.Cluster,
		Policies: []PolicySpec{policy},
		Variants: variants,
		Loads:    []float64{cfg.Rho},
		Seeds:    cfg.Seeds,
		Workload: PoissonWorkload{Lambda0: cfg.Lambda0, Queries: cfg.Queries, RetransmitRTO: cfg.RTO},
	})
	agg := sweep.Aggregate()

	res := ResilienceResult{
		Rho: cfg.Rho, Lambda0: cfg.Lambda0, Replicas: cfg.Replicas,
		KillFrac: cfg.KillFrac, RecoverFrac: cfg.RecoverFrac, RackFrac: cfg.RackFrac,
		Seeds: sweep.Seeds,
		Stats: agg,
	}
	for vi, va := range variants {
		cs := agg.CellAt(0, vi, 0)
		scenario, mode, _ := strings.Cut(va.Name, "/")
		res.Rows = append(res.Rows, ResilienceRow{
			Scenario: scenario,
			Mode:     mode,
			N:        cs.N(),
			OKFrac:   cs.OKFraction.Dist.Mean, OKFracCI95: cs.OKFraction.Dist.ReportedCI95(),
			MeanRT: cs.Mean.Dist.Mean, MeanRTCI95: cs.Mean.Dist.ReportedCI95(),
			P99:     cs.P99.Dist.Mean,
			Refused: cs.Refused.Dist.Mean, Unfinished: cs.Unfinished.Dist.Mean,
		})
	}
	return res
}

// Row returns the (scenario, mode) cell.
func (r ResilienceResult) Row(scenario, mode string) (ResilienceRow, error) {
	for _, row := range r.Rows {
		if row.Scenario == scenario && row.Mode == mode {
			return row, nil
		}
	}
	return ResilienceRow{}, fmt.Errorf("resilience: no cell %s/%s", scenario, mode)
}

// WriteTSV renders the grid faceted by scenario: one block per
// scenario, one row per recovery mode, completion rate first.
func (r ResilienceResult) WriteTSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w,
		"# resilience ablation: rho=%.2f, %d replicas, kill@%.2f recover@%.2f rack_frac=%.2f; lambda0=%.1f q/s; n=%d seeds\n",
		r.Rho, r.Replicas, r.KillFrac, r.RecoverFrac, r.RackFrac, r.Lambda0, len(r.Seeds)); err != nil {
		return err
	}
	for _, scenario := range resilienceScenarios {
		if _, err := fmt.Fprintf(w, "# facet: scenario=%s\n", scenario); err != nil {
			return err
		}
		if _, err := fmt.Fprintln(w, "mode\tn\tok_frac\tok_frac_ci95\tmean_rt_s\tmean_rt_ci95\tp99_s\trefused\tunfinished"); err != nil {
			return err
		}
		for _, row := range r.Rows {
			if row.Scenario != scenario {
				continue
			}
			if _, err := fmt.Fprintf(w, "%s\t%d\t%.4f\t%.4f\t%.4f\t%.4f\t%.4f\t%.1f\t%.1f\n",
				row.Mode, row.N, row.OKFrac, row.OKFracCI95,
				row.MeanRT, row.MeanRTCI95, row.P99, row.Refused, row.Unfinished); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}
