package experiments

import (
	"context"
	"fmt"
	"io"
	"math"
	"time"

	"srlb/internal/metrics"
)

// Fig2Config reproduces figure 2: mean page-load time as a function of the
// normalized request rate ρ, for RR and the SRc/SRdyn policies.
type Fig2Config struct {
	Cluster ClusterConfig
	// Lambda0 normalizes ρ (0 ⇒ measured first via Calibrate).
	Lambda0 float64
	// Rhos are the normalized rates to sweep (default: the paper's
	// "24 values of ρ in the range (0, 1)").
	Rhos []float64
	// Policies defaults to PaperPolicies().
	Policies []PolicySpec
	// Queries per (policy, ρ) point (default 20000, as in §V-B).
	Queries int
	// Seeds is the replication axis (default: the cluster seed alone).
	// With several seeds every point reports mean ± 95% CI across
	// replicates — use DeriveSeeds to expand a base seed.
	Seeds []uint64
	// Workers bounds the sweep's parallelism (0 = GOMAXPROCS).
	Workers int
	// Progress, if non-nil, receives one line per finished point.
	Progress func(string)
	// Workload, when non-nil, replaces the default Poisson workload —
	// the same policies × loads grid replayed under another arrival
	// process (srlb-bench's bursty sweep passes BurstyWorkload here).
	// The workload's own Lambda0/Queries fields apply; cfg.Lambda0 still
	// normalizes the reported axis and cfg.Queries is ignored.
	Workload Workload
}

// DefaultRhos returns 24 evenly spaced loads in (0, 1): 0.04 … 0.96.
func DefaultRhos() []float64 {
	out := make([]float64, 24)
	for i := range out {
		out[i] = 0.04 * float64(i+1)
	}
	return out
}

// Fig2Point is one (policy, ρ) outcome, aggregated across the
// replication axis: point estimates are across-seed means of per-seed
// statistics, the CI95 fields their Student-t 95% half-widths (zero
// when N == 1 — unknown, not exact).
type Fig2Point struct {
	Rho     float64
	Mean    time.Duration
	Median  time.Duration
	P95     time.Duration
	OKFrac  float64
	Refused int
	// N is the number of completed replicates behind the estimates.
	N          int
	MeanCI95   time.Duration
	MedianCI95 time.Duration
	P95CI95    time.Duration
}

// Fig2Result holds the full sweep, indexed [policy][rhoIdx].
type Fig2Result struct {
	Lambda0 float64
	// WorkloadLabel names the arrival process when it is not the default
	// Poisson one (empty otherwise) — it only changes the TSV header;
	// the row format is identical across workloads, so sweeps compare
	// column for column.
	WorkloadLabel string
	Policies      []PolicySpec
	Rhos          []float64
	Seeds         []uint64
	Points        [][]Fig2Point
	// Cells are the raw sweep cells (Scenarios() order), including
	// per-cell wall-clock.
	Cells []CellResult
	// Stats folds the replication axis: one aggregate per (policy, ρ) —
	// cmd/srlb-bench's machine-readable artifact (BENCH_sweep.json).
	Stats SweepStats
}

// RunFig2 executes the figure as a Sweep: PaperPolicies × ρ points over
// the Poisson workload, on a parallel Runner.
func RunFig2(cfg Fig2Config) Fig2Result { return RunFig2Ctx(context.Background(), cfg) }

// RunFig2Ctx is RunFig2 with cancellation; a cancelled run returns the
// points finished so far (unfinished points are zero).
func RunFig2Ctx(ctx context.Context, cfg Fig2Config) Fig2Result {
	cfg.Cluster = cfg.Cluster.withDefaults()
	if cfg.Lambda0 == 0 {
		cal := CalibrateCached(CalibrationConfig{Cluster: cfg.Cluster})
		cfg.Lambda0 = cal.Lambda0
		if cfg.Progress != nil {
			cfg.Progress(fmt.Sprintf("calibrated lambda0 = %.1f q/s (theoretical %.1f)", cal.Lambda0, cal.Theoretical))
		}
	}
	if len(cfg.Rhos) == 0 {
		cfg.Rhos = DefaultRhos()
	}
	if len(cfg.Policies) == 0 {
		cfg.Policies = PaperPolicies()
	}

	workload := cfg.Workload
	var workloadLabel string
	if workload == nil {
		workload = PoissonWorkload{Lambda0: cfg.Lambda0, Queries: cfg.Queries}
	} else {
		workloadLabel = workload.Label()
	}
	sweep, _ := Runner{Workers: cfg.Workers, Progress: cfg.Progress}.RunSweep(ctx, Sweep{
		Cluster:  cfg.Cluster,
		Policies: cfg.Policies,
		Loads:    cfg.Rhos,
		Seeds:    cfg.Seeds,
		Workload: workload,
	})
	agg := sweep.Aggregate()

	res := Fig2Result{Lambda0: cfg.Lambda0, WorkloadLabel: workloadLabel,
		Policies: cfg.Policies, Rhos: cfg.Rhos,
		Seeds: sweep.Seeds, Cells: sweep.Cells, Stats: agg}
	res.Points = make([][]Fig2Point, len(cfg.Policies))
	for pi := range cfg.Policies {
		res.Points[pi] = make([]Fig2Point, len(cfg.Rhos))
		for ri, rho := range cfg.Rhos {
			cs := agg.Cell(pi, ri)
			if cs.N() == 0 {
				continue
			}
			res.Points[pi][ri] = Fig2Point{
				Rho:        rho,
				Mean:       secDur(cs.Mean.Dist.Mean),
				Median:     secDur(cs.Median.Dist.Mean),
				P95:        secDur(cs.P95.Dist.Mean),
				OKFrac:     cs.OKFraction.Dist.Mean,
				Refused:    int(math.Round(cs.Refused.Dist.Mean)),
				N:          cs.N(),
				MeanCI95:   secDur(cs.Mean.Dist.ReportedCI95()),
				MedianCI95: secDur(cs.Median.Dist.ReportedCI95()),
				P95CI95:    secDur(cs.P95.Dist.ReportedCI95()),
			}
		}
	}
	return res
}

// WriteTSV renders the figure's series: one row per ρ, one mean-response
// column per policy (matching the paper's axes: load factor vs mean
// response time in seconds). A replicated sweep (more than one seed)
// adds a <policy>_ci95 half-width column next to every mean.
func (r Fig2Result) WriteTSV(w io.Writer) error {
	replicated := len(r.Seeds) > 1
	title := "Figure 2"
	if r.WorkloadLabel != "" {
		title = r.WorkloadLabel + " sweep"
	}
	if _, err := fmt.Fprintf(w, "# %s: mean response time (s) vs normalized load; lambda0=%.1f q/s", title, r.Lambda0); err != nil {
		return err
	}
	if replicated {
		fmt.Fprintf(w, "; n=%d seeds, ci = Student-t 95%% half-width", len(r.Seeds))
	}
	fmt.Fprintln(w)
	fmt.Fprint(w, "rho")
	for _, p := range r.Policies {
		fmt.Fprintf(w, "\t%s", p.Name)
		if replicated {
			fmt.Fprintf(w, "\t%s_ci95", p.Name)
		}
	}
	fmt.Fprintln(w)
	for ri, rho := range r.Rhos {
		fmt.Fprintf(w, "%.2f", rho)
		for pi := range r.Policies {
			fmt.Fprintf(w, "\t%s", metrics.FormatDuration(r.Points[pi][ri].Mean))
			if replicated {
				fmt.Fprintf(w, "\t%s", metrics.FormatDuration(r.Points[pi][ri].MeanCI95))
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

// Improvement returns the RR/policy mean-RT ratio at the ρ closest to the
// requested load — e.g. the paper's "up to 2.3× better than RR for
// ρ = 0.88" headline for SR4.
func (r Fig2Result) Improvement(policyName string, rho float64) (float64, error) {
	rrIdx, polIdx := -1, -1
	for i, p := range r.Policies {
		switch p.Name {
		case "RR":
			rrIdx = i
		case policyName:
			polIdx = i
		}
	}
	if rrIdx < 0 || polIdx < 0 {
		return 0, fmt.Errorf("fig2: policies %q/RR not in result", policyName)
	}
	best, bestDiff := -1, 2.0
	for i, v := range r.Rhos {
		if d := math.Abs(v - rho); d < bestDiff {
			best, bestDiff = i, d
		}
	}
	rr := r.Points[rrIdx][best].Mean
	pol := r.Points[polIdx][best].Mean
	if pol == 0 {
		return 0, fmt.Errorf("fig2: zero mean for %s", policyName)
	}
	return float64(rr) / float64(pol), nil
}
