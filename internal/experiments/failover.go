package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"srlb/internal/agent"
	"srlb/internal/rng"
	"srlb/internal/stats"
	"srlb/internal/testbed"
)

// FailoverConfig is the LB-replica failover experiment: N stateless LB
// replicas share the anycast VIP behind ECMP, one is killed mid-run, and
// the client-observed transient (response times and failed queries,
// bucketed by issue time) is measured. Two topology variants run under
// identical arrivals:
//
//   - "maglev+fallback" — §II-B consistent-hash selection plus the
//     consistent-hash miss-fallback on the steering path. Survivors
//     recompute every flow's server from the packet alone, so flows that
//     re-hash onto a replica that never learned them keep flowing:
//     completions stay at 100% straight through the kill.
//   - "random" — the paper's uniform-random selection, no fallback.
//     The timeline exposes that this is broken *structurally*, not just
//     at failover: the two ECMP directions hash independently, so about
//     half the flows are steered by a replica that never saw their
//     SYN-ACK and stall even in steady state — and once the replica
//     dies, the survivor (now consistent with itself by default) stops
//     missing. With random selection, two replicas are worse than one.
//
// This is the deployment story the paper's consistent-hashing section
// tells, measured: deterministic selection is the *prerequisite* for
// running SRLB as a stateless anycast fleet, and with it replica death
// is free.
type FailoverConfig struct {
	Cluster ClusterConfig
	// Rho is the normalized load (default 0.85 — busy but unsaturated,
	// so the transient is attributable to the failover, not overload).
	Rho     float64
	Lambda0 float64
	// Queries per cell (default 20000).
	Queries int
	// Replicas is the LB replica count (default 2); replica 0 is killed.
	Replicas int
	// KillFrac places the failure at this fraction of the arrival span
	// (default 0.5). RecoverFrac, when nonzero, re-attaches the replica
	// (stateless) at that fraction.
	KillFrac, RecoverFrac float64
	// Bins is the transient-timeline resolution (default 40).
	Bins int
	// Seeds is the replication axis (default: the cluster seed alone).
	Seeds    []uint64
	Workers  int
	Progress func(string)
}

// FailoverBin is one point of the transient timeline, aggregated across
// the replication axis (CI95 fields are zero when N == 1).
type FailoverBin struct {
	// Start is the bin's left edge in issue time.
	Start time.Duration
	// MeanRT is the across-seed mean of the bin's mean response time
	// over completed queries, in seconds.
	MeanRT, MeanRTCI95 float64
	// FailedFrac is the fraction of the bin's queries that did not
	// complete (refused or stalled until simulation end).
	FailedFrac, FailedFracCI95 float64
}

// FailoverMode is one variant's outcome.
type FailoverMode struct {
	Name string
	// Stats aggregates the whole-run metrics across seeds.
	Stats CellStats
	// Bins is the transient timeline.
	Bins []FailoverBin
}

// FailoverResult holds both variants.
type FailoverResult struct {
	Rho      float64
	Lambda0  float64
	Replicas int
	// KillAt (and RecoverAt, zero when the replica stays dead) are the
	// scheduled event times.
	KillAt, RecoverAt time.Duration
	BinWidth          time.Duration
	Seeds             []uint64
	Modes             []FailoverMode
}

// failoverBinRaw is the per-seed transient accounting riding in Extra.
type failoverBinRaw struct {
	Count, OK, Refused int
	SumRT              time.Duration
}

// failoverWorkload is the Poisson workload instrumented with per-issue-
// time-bin accounting of the failover transient.
type failoverWorkload struct {
	lambda0 float64
	queries int
	bins    int
}

// Label implements Workload.
func (w failoverWorkload) Label() string {
	return fmt.Sprintf("poisson+transient(%dq)", w.queries)
}

// Run implements Workload.
func (w failoverWorkload) Run(ctx context.Context, cluster ClusterConfig, spec PolicySpec, load float64) (CellOutcome, error) {
	rate := load * w.lambda0
	span := time.Duration(float64(w.queries) / rate * float64(time.Second))
	binW := span / time.Duration(w.bins)
	raw := make([]failoverBinRaw, w.bins)
	hooks := PoissonHooks{OnResult: func(res testbed.Result) {
		i := int(res.IssuedAt / binW)
		if i < 0 {
			i = 0
		}
		if i >= len(raw) {
			i = len(raw) - 1
		}
		b := &raw[i]
		b.Count++
		if res.OK {
			b.OK++
			b.SumRT += res.RT
		} else if res.Refused {
			b.Refused++
		}
	}}
	arrivals := rng.NewPoisson(rng.Split(cluster.Seed, 0xa221), rate, 0)
	out, err := runOpenLoop(ctx, cluster, spec, arrivals, rate, w.queries, 0, hooks)
	out.Extra = raw
	return out, err
}

// RunFailover executes the experiment.
func RunFailover(cfg FailoverConfig) FailoverResult {
	return RunFailoverCtx(context.Background(), cfg)
}

// RunFailoverCtx is RunFailover with cancellation; cancelled cells are
// dropped from the aggregates.
func RunFailoverCtx(ctx context.Context, cfg FailoverConfig) FailoverResult {
	cfg.Cluster = cfg.Cluster.withDefaults()
	if cfg.Rho == 0 {
		cfg.Rho = 0.85
	}
	if cfg.Queries == 0 {
		cfg.Queries = 20000
	}
	if cfg.Replicas == 0 {
		cfg.Replicas = 2
	}
	if cfg.KillFrac == 0 {
		cfg.KillFrac = 0.5
	}
	if cfg.Bins == 0 {
		cfg.Bins = 40
	}
	if cfg.Lambda0 == 0 {
		cal := CalibrateCached(CalibrationConfig{Cluster: cfg.Cluster})
		cfg.Lambda0 = cal.Lambda0
	}

	// The schedule is rate-relative: kill (and recovery) are fractions of
	// the arrival span, resolved per load point by the workload — so the
	// same variant pair would serve a whole load sweep, exactly as
	// RunChurn's schedule does (historically the kill time was computed
	// absolutely here, which pinned the experiment to one rho).
	rate := cfg.Rho * cfg.Lambda0
	span := time.Duration(float64(cfg.Queries) / rate * float64(time.Second))
	killAt := time.Duration(cfg.KillFrac * float64(span))
	var recoverAt time.Duration
	events := []testbed.Event{testbed.FailReplica(0, 0).AtFraction(cfg.KillFrac)}
	if cfg.RecoverFrac > 0 {
		recoverAt = time.Duration(cfg.RecoverFrac * float64(span))
		events = append(events, testbed.RecoverReplica(0, 0).AtFraction(cfg.RecoverFrac))
	}
	// Each mode pins the selection knobs explicitly — the base cluster's
	// own ConsistentHash/MissFallback settings must not leak into the
	// mode labeled the other way.
	replicate := func(c ClusterConfig) ClusterConfig {
		c.Replicas = cfg.Replicas
		c.Events = events
		return c
	}
	variants := []ClusterVariant{
		{Name: "maglev+fallback", Apply: func(c ClusterConfig) ClusterConfig {
			c = replicate(c)
			c.ConsistentHash = true
			c.MissFallback = true
			return c
		}},
		{Name: "random", Apply: func(c ClusterConfig) ClusterConfig {
			c = replicate(c)
			c.ConsistentHash = false
			c.MissFallback = false
			return c
		}},
	}
	// Both variants use the same acceptance policy — every first
	// candidate accepts — so the comparison isolates flow steering: with
	// deterministic selection the fallback lands exactly on the server
	// that accepted; with random selection there is nothing to fall back
	// to.
	policy := PolicySpec{
		Name:       "first-accept",
		Candidates: 2,
		NewAgent:   func() agent.Policy { return agent.Always{} },
	}

	sweep, _ := Runner{Workers: cfg.Workers, Progress: cfg.Progress}.RunSweep(ctx, Sweep{
		Cluster:  cfg.Cluster,
		Policies: []PolicySpec{policy},
		Variants: variants,
		Loads:    []float64{cfg.Rho},
		Seeds:    cfg.Seeds,
		Workload: failoverWorkload{lambda0: cfg.Lambda0, queries: cfg.Queries, bins: cfg.Bins},
	})
	agg := sweep.Aggregate()

	res := FailoverResult{
		Rho: cfg.Rho, Lambda0: cfg.Lambda0, Replicas: cfg.Replicas,
		KillAt: killAt, RecoverAt: recoverAt,
		BinWidth: span / time.Duration(cfg.Bins),
		Seeds:    sweep.Seeds,
	}
	for vi, va := range variants {
		mode := FailoverMode{Name: va.Name, Stats: agg.CellAt(0, vi, 0)}
		var timelines [][]failoverBinRaw
		for si := range sweep.Seeds {
			cell := sweep.CellAt(0, vi, 0, si)
			if cell.Err != nil {
				continue
			}
			if raw, ok := cell.Outcome.Extra.([]failoverBinRaw); ok {
				timelines = append(timelines, raw)
			}
		}
		mode.Bins = aggregateFailoverBins(res.BinWidth, cfg.Bins, timelines)
		res.Modes = append(res.Modes, mode)
	}
	return res
}

// aggregateFailoverBins folds per-seed bin timelines into pointwise
// mean ± CI series. Bin edges are deterministic, so bin i aligns across
// replicates.
func aggregateFailoverBins(binW time.Duration, bins int, timelines [][]failoverBinRaw) []FailoverBin {
	if len(timelines) == 0 {
		return nil
	}
	out := make([]FailoverBin, bins)
	rts := make([]float64, 0, len(timelines))
	fails := make([]float64, 0, len(timelines))
	for i := range out {
		rts, fails = rts[:0], fails[:0]
		for _, tl := range timelines {
			b := tl[i]
			if b.OK > 0 {
				rts = append(rts, (b.SumRT / time.Duration(b.OK)).Seconds())
			}
			if b.Count > 0 {
				fails = append(fails, float64(b.Count-b.OK)/float64(b.Count))
			}
		}
		dr, df := stats.Describe(rts), stats.Describe(fails)
		out[i] = FailoverBin{
			Start:  time.Duration(i) * binW,
			MeanRT: dr.Mean, MeanRTCI95: dr.CI95,
			FailedFrac: df.Mean, FailedFracCI95: df.CI95,
		}
	}
	return out
}

// WriteTSV renders the transient: one block per mode, one row per bin.
func (r FailoverResult) WriteTSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# LB-replica failover transient: rho=%.2f, %d replicas, kill t=%.1fs",
		r.Rho, r.Replicas, r.KillAt.Seconds()); err != nil {
		return err
	}
	if r.RecoverAt > 0 {
		fmt.Fprintf(w, ", recover t=%.1fs", r.RecoverAt.Seconds())
	}
	fmt.Fprintf(w, "; lambda0=%.1f q/s\n", r.Lambda0)
	for _, m := range r.Modes {
		fmt.Fprintf(w, "# mode: %s (n=%d seeds, ok=%.4f refused=%.0f unfinished=%.0f)\n",
			m.Name, m.Stats.N(), m.Stats.OKFraction.Dist.Mean,
			m.Stats.Refused.Dist.Mean, m.Stats.Unfinished.Dist.Mean)
		fmt.Fprintln(w, "t_s\tmean_rt_s\tmean_rt_ci95\tfailed_frac\tfailed_frac_ci95")
		for _, b := range m.Bins {
			if _, err := fmt.Fprintf(w, "%.2f\t%.4f\t%.4f\t%.4f\t%.4f\n",
				b.Start.Seconds(), b.MeanRT, b.MeanRTCI95, b.FailedFrac, b.FailedFracCI95); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

// Mode returns the named mode's outcome.
func (r FailoverResult) Mode(name string) (FailoverMode, error) {
	for _, m := range r.Modes {
		if m.Name == name {
			return m, nil
		}
	}
	return FailoverMode{}, fmt.Errorf("failover: no mode %q", name)
}
