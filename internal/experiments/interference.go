// Cross-service interference over a shared server pool: a steady
// interactive web service (the victim) and a bursty batch service (the
// aggressor) select over the *same* servers, and the batch load is swept
// while the web load stays pinned — the ρ-matrix regime shared-backend
// deployments (Maglev-style pools, mixed-tenant clusters) operate in.
// The measurement is per-victim degradation: how much of the batch
// surge's queueing does each policy let bleed into the web service's
// tail latency and completion rate. A connection-aware policy (Service
// Hunting) steers web connections around workers the surge has already
// queued on; a random spray cannot see the surge at all.
//
// RunInterference is the canonical instance behind
// `srlb-bench -experiment interference`.

package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"srlb/internal/metrics"
	"srlb/internal/plot"
	"srlb/internal/testbed"
)

// InterferenceConfig parameterizes the experiment.
type InterferenceConfig struct {
	Cluster ClusterConfig
	// Lambda0 is the shared pool's calibrated capacity rate (0 ⇒
	// measured via CalibrateCached on the base cluster).
	Lambda0 float64
	// WebRho is the victim's pinned load as a fraction of the shared
	// pool's capacity (default 0.55 — busy but unsaturated on its own).
	WebRho float64
	// BatchRhos is the aggressor axis: each value is the batch service's
	// own load fraction of the same pool, so total utilization is
	// WebRho + ρ_b (default {0.05, 0.2, 0.35, 0.5} — up to overload).
	BatchRhos []float64
	// Queries is the web VIP's arrivals per cell (default 20000). The
	// batch stream is time-bounded to the web span, so its offered count
	// scales with ρ_b.
	Queries int
	// BatchPeak is the batch service's ON-state burst factor (default 4).
	BatchPeak float64
	// Policies defaults to {RR, SR4, SRdyn}.
	Policies []PolicySpec
	// Seeds is the replication axis (default: the cluster seed alone).
	Seeds    []uint64
	Workers  int
	Progress func(string)
}

// InterferenceRow is one (batch-load, policy, service) outcome
// aggregated across the replication axis; Service "all" is the aggregate
// over both services.
type InterferenceRow struct {
	// BatchRho is the aggressor's load (the sweep knob); Load is this
	// row's service's own resolved load (WebRho for the victim, BatchRho
	// for the aggressor, BatchRho for the aggregate).
	BatchRho float64
	Policy   string
	Service  string
	Load     float64
	// N counts completed replicates.
	N                            int
	Mean, MeanCI95, P99, P99CI95 time.Duration
	OKFrac, OKFracCI95           float64
	// Offered, Refused and Unfinished are across-seed mean counts.
	Offered, Refused, Unfinished float64
	// P99Degradation is this row's p99 over the same (policy, service)
	// p99 at the lowest batch load — the interference multiple the
	// service suffers as the aggressor ramps. 1 at the baseline itself.
	P99Degradation float64
	// OKDrop is the completion-rate degradation vs the same baseline
	// (baseline OKFrac − this OKFrac; 0 at the baseline).
	OKDrop float64
}

// InterferenceResult holds the full ρ-matrix grid.
type InterferenceResult struct {
	Lambda0 float64
	WebRho  float64
	// BatchRhos is the swept aggressor axis; BatchRhos[0] is the
	// degradation baseline.
	BatchRhos []float64
	Seeds     []uint64
	// Services lists the service names in spec order (web, batch).
	Services []string
	// Stats is the underlying replicated sweep — per-VIP aggregates with
	// per-service loads included — the machine-readable artifact's source.
	Stats SweepStats
	Rows  []InterferenceRow
}

// RunInterference executes the experiment.
func RunInterference(cfg InterferenceConfig) InterferenceResult {
	return RunInterferenceCtx(context.Background(), cfg)
}

// RunInterferenceCtx is RunInterference with cancellation; cancelled
// cells are dropped from the aggregates.
func RunInterferenceCtx(ctx context.Context, cfg InterferenceConfig) InterferenceResult {
	cfg.Cluster = cfg.Cluster.withDefaults()
	if cfg.WebRho == 0 {
		cfg.WebRho = 0.55
	}
	if len(cfg.BatchRhos) == 0 {
		cfg.BatchRhos = []float64{0.05, 0.2, 0.35, 0.5}
	}
	if cfg.Queries == 0 {
		cfg.Queries = 20000
	}
	if cfg.BatchPeak == 0 {
		cfg.BatchPeak = 4
	}
	if len(cfg.Policies) == 0 {
		cfg.Policies = []PolicySpec{RR(), SRc(4), SRdyn()}
	}
	if cfg.Lambda0 == 0 {
		cal := CalibrateCached(CalibrationConfig{Cluster: cfg.Cluster})
		cfg.Lambda0 = cal.Lambda0
	}

	// The victim's span fixes the cell's window; the aggressor is
	// time-bounded to it, so every batch load offers over the same
	// interval and only the intensity varies.
	span := time.Duration(float64(cfg.Queries) / (cfg.WebRho * cfg.Lambda0) * float64(time.Second))
	workload := MultiServiceWorkload{
		Services: []ServiceSpec{
			{Name: "web", Pool: "shared", Workload: PoissonService{Lambda0: cfg.Lambda0, Queries: cfg.Queries}},
			{Name: "batch", Pool: "shared", Workload: BurstyService{
				Lambda0: cfg.Lambda0, Horizon: span, PeakFactor: cfg.BatchPeak,
			}},
		},
		ServiceLoads: []ServiceLoad{{Fixed: cfg.WebRho}, {}},
		Pools:        []testbed.PoolSpec{{Name: "shared"}},
	}

	agg, _ := Runner{Workers: cfg.Workers, Progress: cfg.Progress}.RunSweepStats(ctx, Sweep{
		Cluster:  cfg.Cluster,
		Policies: cfg.Policies,
		Loads:    cfg.BatchRhos,
		Seeds:    cfg.Seeds,
		Workload: workload,
	})

	res := InterferenceResult{
		Lambda0:   cfg.Lambda0,
		WebRho:    cfg.WebRho,
		BatchRhos: cfg.BatchRhos,
		Seeds:     agg.Seeds,
		Stats:     agg,
	}
	for _, svc := range workload.Services {
		res.Services = append(res.Services, svc.Name)
	}
	// Baselines (lowest batch load) per (policy, service) for the
	// degradation columns.
	type key struct{ policy, service string }
	baseP99 := make(map[key]float64)
	baseOK := make(map[key]float64)
	for li, rho := range cfg.BatchRhos {
		for pi, spec := range cfg.Policies {
			cs := agg.CellAt(pi, 0, li)
			if cs.N() == 0 {
				continue
			}
			var offered float64
			for _, vs := range cs.VIPs {
				offered += vs.Offered.Dist.Mean
			}
			rows := []InterferenceRow{{
				BatchRho: rho, Policy: spec.Name, Service: "all", Load: rho, N: cs.N(),
				Mean: secDur(cs.Mean.Dist.Mean), MeanCI95: secDur(cs.Mean.Dist.ReportedCI95()),
				P99: secDur(cs.P99.Dist.Mean), P99CI95: secDur(cs.P99.Dist.ReportedCI95()),
				OKFrac: cs.OKFraction.Dist.Mean, OKFracCI95: cs.OKFraction.Dist.ReportedCI95(),
				Offered: offered,
				Refused: cs.Refused.Dist.Mean, Unfinished: cs.Unfinished.Dist.Mean,
			}}
			for _, vs := range cs.VIPs {
				rows = append(rows, InterferenceRow{
					BatchRho: rho, Policy: spec.Name, Service: vs.Name, Load: vs.Load, N: cs.N(),
					Mean: secDur(vs.Mean.Dist.Mean), MeanCI95: secDur(vs.Mean.Dist.ReportedCI95()),
					P99: secDur(vs.P99.Dist.Mean), P99CI95: secDur(vs.P99.Dist.ReportedCI95()),
					OKFrac: vs.OKFraction.Dist.Mean, OKFracCI95: vs.OKFraction.Dist.ReportedCI95(),
					Offered: vs.Offered.Dist.Mean,
					Refused: vs.Refused.Dist.Mean, Unfinished: vs.Unfinished.Dist.Mean,
				})
			}
			for _, row := range rows {
				k := key{row.Policy, row.Service}
				if li == 0 {
					baseP99[k] = row.P99.Seconds()
					baseOK[k] = row.OKFrac
				}
				if b := baseP99[k]; b > 0 {
					row.P99Degradation = row.P99.Seconds() / b
				}
				// Degradation columns stay zero when the baseline cell
				// never completed (cancelled mid-sweep).
				if base, ok := baseOK[k]; ok {
					row.OKDrop = base - row.OKFrac
				}
				res.Rows = append(res.Rows, row)
			}
		}
	}
	return res
}

// Row returns the row for (policy, service) at the batch load closest to
// the requested one.
func (r InterferenceResult) Row(policy, service string, batchRho float64) (InterferenceRow, error) {
	var best InterferenceRow
	bestDiff := -1.0
	for _, row := range r.Rows {
		if row.Policy != policy || row.Service != service {
			continue
		}
		d := row.BatchRho - batchRho
		if d < 0 {
			d = -d
		}
		if bestDiff < 0 || d < bestDiff {
			bestDiff = d
			best = row
		}
	}
	if bestDiff < 0 {
		return InterferenceRow{}, fmt.Errorf("interference: no row for (%q, %q)", policy, service)
	}
	return best, nil
}

// VictimDegradation returns the web service's p99 interference multiple
// under the given policy at the heaviest batch load — the experiment's
// headline number.
func (r InterferenceResult) VictimDegradation(policy string) (float64, error) {
	if len(r.BatchRhos) == 0 {
		return 0, fmt.Errorf("interference: empty batch axis")
	}
	row, err := r.Row(policy, "web", r.BatchRhos[len(r.BatchRhos)-1])
	if err != nil {
		return 0, err
	}
	if row.P99Degradation == 0 {
		return 0, fmt.Errorf("interference: no baseline p99 for %q", policy)
	}
	return row.P99Degradation, nil
}

// PlotFacets renders the victim view: one facet per service, p99 vs
// batch load, one series per policy with across-seed ci95 whiskers —
// the heatmap-style companion to the TSV's ρ-matrix rows.
func (r InterferenceResult) PlotFacets() []plot.Facet {
	facets := make([]plot.Facet, 0, len(r.Services))
	for _, svc := range r.Services {
		byPolicy := make(map[string]*plot.Series)
		var order []string
		for _, row := range r.Rows {
			if row.Service != svc {
				continue
			}
			ser, ok := byPolicy[row.Policy]
			if !ok {
				ser = &plot.Series{Name: row.Policy}
				byPolicy[row.Policy] = ser
				order = append(order, row.Policy)
			}
			ser.X = append(ser.X, row.BatchRho)
			ser.Y = append(ser.Y, row.P99.Seconds())
			ser.YErr = append(ser.YErr, row.P99CI95.Seconds())
		}
		series := make([]plot.Series, 0, len(order))
		for _, name := range order {
			series = append(series, *byPolicy[name])
		}
		facets = append(facets, plot.Facet{
			Title:  fmt.Sprintf("Interference: %s p99 (s) vs batch load (web pinned at rho=%.2f)", svc, r.WebRho),
			Series: series,
		})
	}
	return facets
}

// WriteTSV renders the grid: one row per (batch_rho, policy, service),
// the aggregate first.
func (r InterferenceResult) WriteTSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# Cross-service interference on one shared pool: web pinned at rho=%.2f, batch swept; lambda0=%.1f q/s\n",
		r.WebRho, r.Lambda0); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "batch_rho\tpolicy\tservice\trho_svc\toffered\tmean_s\tmean_ci95_s\tp99_s\tp99_ci95_s\tok_frac\tok_ci95\tp99_degradation\tok_drop\trefused\tunfinished\tn"); err != nil {
		return err
	}
	for _, row := range r.Rows {
		if _, err := fmt.Fprintf(w, "%.2f\t%s\t%s\t%.2f\t%.0f\t%s\t%s\t%s\t%s\t%.4f\t%.4f\t%.2f\t%.4f\t%.0f\t%.0f\t%d\n",
			row.BatchRho, row.Policy, row.Service, row.Load, row.Offered,
			metrics.FormatDuration(row.Mean),
			metrics.FormatDuration(row.MeanCI95),
			metrics.FormatDuration(row.P99),
			metrics.FormatDuration(row.P99CI95),
			row.OKFrac, row.OKFracCI95, row.P99Degradation, row.OKDrop,
			row.Refused, row.Unfinished, row.N); err != nil {
			return err
		}
	}
	return nil
}
