package experiments

import (
	"context"
	"math"
	"reflect"
	"testing"

	"srlb/internal/testbed"
)

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected a panic", name)
		}
	}()
	f()
}

func adaptiveTestSweep(seed uint64, a Adaptive) Sweep {
	return Sweep{
		Cluster:  ClusterConfig{Seed: seed, Servers: 4},
		Policies: []PolicySpec{RR(), SRc(4)},
		Loads:    []float64{0.5, 0.85},
		Adaptive: a,
		Workload: PoissonWorkload{Lambda0: 80, Queries: 600},
	}
}

// stripCellWall zeroes the only nondeterministic CellStats field so
// aggregates can be compared across worker counts.
func stripCellWall(cells []CellStats) []CellStats {
	out := make([]CellStats, len(cells))
	for i, c := range cells {
		c.Wall = 0
		out[i] = c
	}
	return out
}

// TestAdaptiveNeverStopsBeforeMinSeeds is the regression test for the
// CI-width bug pair: stats.MeanCI95 used to report 0 (an exact-looking
// interval) for a single replicate, and the controller accepted
// MinSeeds of 1 — together letting a one-seed cell "converge"
// instantly. Now a sub-2 interval is +Inf and the floor clamps to 3,
// so even a huge CITarget cannot stop a cell before three completed
// replicates.
func TestAdaptiveNeverStopsBeforeMinSeeds(t *testing.T) {
	s := adaptiveTestSweep(3, Adaptive{CITarget: 1e9, MinSeeds: 1, MaxSeeds: 5})
	res, agg, err := Runner{Workers: 2}.RunSweepAdaptive(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	for ci, seeds := range res.CellSeeds {
		if len(seeds) != 3 {
			t.Fatalf("cell %d ran %d replicates; the MinSeeds floor must force 3 even when the target is trivially wide", ci, len(seeds))
		}
	}
	for _, cs := range agg.Cells {
		if cs.N() != 3 {
			t.Fatalf("cell %q aggregated %d replicates, want 3", cs.Name, cs.N())
		}
		if cs.StopReason != StopConverged {
			t.Fatalf("cell %q stop reason = %q, want %q", cs.Name, cs.StopReason, StopConverged)
		}
	}

	// The mechanism itself: one completed replicate must carry an
	// unknown (+Inf) relative CI, never a finite one the stopper could
	// compare against a target.
	rep := Scenario{
		Cluster:  s.Cluster,
		Policy:   RR(),
		Workload: s.Workload,
		Load:     0.5,
		Seed:     7,
	}.Run(context.Background())
	if one := newCellStats([]CellResult{rep}); !math.IsInf(relCI(one), 1) {
		t.Fatalf("relCI over one replicate = %v, want +Inf (the old zero is what allowed premature stops)", relCI(one))
	}
}

// TestAdaptiveDeterminism1vs4 pins the controller's determinism
// contract: the per-cell seed schedule, every replicate result, the
// stop reasons and the aggregates are byte-identical at 1 worker and 4.
func TestAdaptiveDeterminism1vs4(t *testing.T) {
	s := adaptiveTestSweep(11, Adaptive{CITarget: 0.3, MinSeeds: 3, MaxSeeds: 5})
	ctx := context.Background()
	res1, agg1, err := Runner{Workers: 1}.RunSweepAdaptive(ctx, s)
	if err != nil {
		t.Fatal(err)
	}
	res4, agg4, err := Runner{Workers: 4}.RunSweepAdaptive(ctx, s)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res1.CellSeeds, res4.CellSeeds) {
		t.Fatalf("per-cell seed schedules differ across worker counts:\n1 worker: %v\n4 workers: %v", res1.CellSeeds, res4.CellSeeds)
	}
	if !reflect.DeepEqual(stripWall(res1.Cells), stripWall(res4.Cells)) {
		t.Fatal("adaptive replicate results differ across worker counts")
	}
	if !reflect.DeepEqual(stripCellWall(agg1.Cells), stripCellWall(agg4.Cells)) {
		t.Fatal("adaptive aggregates (incl. stop reasons) differ across worker counts")
	}
	// And the schedule must actually be adaptive-shaped: every cell
	// within [MinSeeds, MaxSeeds], sharing the common seed universe
	// prefix (common random numbers).
	for ci, seeds := range res1.CellSeeds {
		if len(seeds) < 3 || len(seeds) > 5 {
			t.Fatalf("cell %d ran %d replicates, outside [3, 5]", ci, len(seeds))
		}
		if !reflect.DeepEqual(seeds, res1.Seeds[:len(seeds)]) {
			t.Fatalf("cell %d seeds %v are not a prefix of the universe %v", ci, seeds, res1.Seeds)
		}
	}
}

// TestSweepResultRaggedCellAt is the regression test for the silent
// flat-index arithmetic: CellAt on a ragged result must resolve each
// cell against its own replicate count, and any out-of-range axis or
// seed index must panic instead of returning a neighboring cell.
func TestSweepResultRaggedCellAt(t *testing.T) {
	mk := func(name string, seed uint64) CellResult {
		return CellResult{Name: name, Seed: seed}
	}
	res := SweepResult{
		Policies: []PolicySpec{{Name: "a"}, {Name: "b"}},
		Loads:    []float64{0.5, 0.9},
		Seeds:    []uint64{1, 2, 3},
		CellSeeds: [][]uint64{
			{1, 2},    // (a, 0.5)
			{1, 2, 3}, // (a, 0.9)
			{1},       // (b, 0.5)
			{1, 2},    // (b, 0.9)
		},
		Cells: []CellResult{
			mk("a-lo", 1), mk("a-lo", 2),
			mk("a-hi", 1), mk("a-hi", 2), mk("a-hi", 3),
			mk("b-lo", 1),
			mk("b-hi", 1), mk("b-hi", 2),
		},
	}
	if c := res.CellAt(0, 0, 1, 2); c.Name != "a-hi" || c.Seed != 3 {
		t.Fatalf("CellAt(0,0,1,2) = %q seed %d, want a-hi seed 3", c.Name, c.Seed)
	}
	if c := res.CellAt(1, 0, 0, 0); c.Name != "b-lo" || c.Seed != 1 {
		t.Fatalf("CellAt(1,0,0,0) = %q seed %d, want b-lo seed 1 (the old flat math read a neighbor here)", c.Name, c.Seed)
	}
	if c := res.CellAt(1, 0, 1, 1); c.Name != "b-hi" || c.Seed != 2 {
		t.Fatalf("CellAt(1,0,1,1) = %q seed %d, want b-hi seed 2", c.Name, c.Seed)
	}
	if got := res.SeedsAt(1, 0, 0); !reflect.DeepEqual(got, []uint64{1}) {
		t.Fatalf("SeedsAt(1,0,0) = %v, want the cell's own single seed", got)
	}
	mustPanic(t, "seed index past the cell's own count", func() { res.CellAt(0, 0, 0, 2) })
	mustPanic(t, "policy index out of range", func() { res.CellAt(2, 0, 0, 0) })
	mustPanic(t, "load index out of range", func() { res.CellAt(0, 0, 2, 0) })
	mustPanic(t, "negative seed index", func() { res.CellAt(0, 0, 0, -1) })

	// Uniform (non-ragged) results must bounds-check the same way.
	uni := SweepResult{
		Policies: []PolicySpec{{Name: "a"}},
		Loads:    []float64{0.5},
		Seeds:    []uint64{1, 2},
		Cells:    []CellResult{mk("u", 1), mk("u", 2)},
	}
	if c := uni.CellAt(0, 0, 0, 1); c.Seed != 2 {
		t.Fatalf("uniform CellAt seed = %d, want 2", c.Seed)
	}
	mustPanic(t, "uniform seed index out of range", func() { uni.CellAt(0, 0, 0, 2) })
	mustPanic(t, "uniform variant index out of range", func() { uni.CellAt(0, 1, 0, 0) })
}

// TestDeriveSeedsAdversarial is the regression test for the seed
// derivation bugs: a base chosen so the raw SplitMix64 stream emits 0
// (which would silently alias Cluster.Seed downstream) must still
// yield nonzero, pairwise distinct seeds; and ExtendSeeds must never
// collide with the seeds it extends.
func TestDeriveSeedsAdversarial(t *testing.T) {
	// base = -γ mod 2^64: the first increment lands on x = 0, whose
	// SplitMix64 finalization is 0 — the old code handed that straight
	// to the replication axis.
	var base uint64
	base -= 0x9e3779b97f4a7c15
	seeds := DeriveSeeds(base, 4)
	if len(seeds) != 4 {
		t.Fatalf("DeriveSeeds returned %d seeds, want 4", len(seeds))
	}
	seen := map[uint64]bool{}
	for i, s := range seeds {
		if s == 0 {
			t.Fatalf("seed %d is zero — it would fall back to Cluster.Seed and duplicate the base replicate", i)
		}
		if seen[s] {
			t.Fatalf("duplicate derived seed %#x", s)
		}
		seen[s] = true
	}
	if !reflect.DeepEqual(seeds, DeriveSeeds(base, 4)) {
		t.Fatal("DeriveSeeds must stay deterministic while skipping zero")
	}

	first := DeriveSeeds(42, 3)
	ext := ExtendSeeds(first, 42, 3)
	if len(ext) != 6 {
		t.Fatalf("ExtendSeeds returned %d seeds, want 6", len(ext))
	}
	if !reflect.DeepEqual(ext[:3], first) {
		t.Fatal("ExtendSeeds must preserve the existing seeds in order")
	}
	seen = map[uint64]bool{}
	for _, s := range ext {
		if s == 0 || seen[s] {
			t.Fatalf("ExtendSeeds over the same base must skip the seeds already spent, got %v", ext)
		}
		seen[s] = true
	}
}

func TestLoadGridPointsAndNeighbors(t *testing.T) {
	g := LoadGrid{Axes: [][]float64{{0.3, 0.55, 0.8}, {0.05, 0.2}}}
	if g.Size() != 6 {
		t.Fatalf("Size = %d, want 6", g.Size())
	}
	want := [][]float64{
		{0.3, 0.05}, {0.3, 0.2},
		{0.55, 0.05}, {0.55, 0.2},
		{0.8, 0.05}, {0.8, 0.2},
	}
	if got := g.Points(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Points = %v, want row-major with the last axis fastest: %v", got, want)
	}
	sorted := func(xs []int) []int {
		out := append([]int(nil), xs...)
		for i := range out {
			for j := i + 1; j < len(out); j++ {
				if out[j] < out[i] {
					out[i], out[j] = out[j], out[i]
				}
			}
		}
		return out
	}
	if got := sorted(g.Neighbors(0)); !reflect.DeepEqual(got, []int{1, 2}) {
		t.Fatalf("Neighbors(0) = %v, want {1, 2}", got)
	}
	if got := sorted(g.Neighbors(3)); !reflect.DeepEqual(got, []int{1, 2, 5}) {
		t.Fatalf("Neighbors(3) = %v, want {1, 2, 5} (±1 along exactly one axis)", got)
	}
	if (LoadGrid{}).Points() != nil || (LoadGrid{}).Size() != 0 {
		t.Fatal("empty grid must enumerate nothing")
	}

	mustPanic(t, "Loads and LoadGrid are mutually exclusive", func() {
		Sweep{
			Loads:    []float64{0.5},
			LoadGrid: g,
			Workload: PoissonWorkload{},
		}.Scenarios()
	})
}

// TestGridSweepResolvesVectorLoads runs a tiny grid sweep end to end
// and checks each cell actually pinned its services to the grid
// point's per-service loads.
func TestGridSweepResolvesVectorLoads(t *testing.T) {
	s := Sweep{
		Cluster:  ClusterConfig{Seed: 9, Servers: 4},
		Policies: []PolicySpec{RR()},
		LoadGrid: LoadGrid{
			AxisNames: []string{"web", "batch"},
			Axes:      [][]float64{{0.3, 0.6}, {0.1}},
		},
		Seeds: []uint64{7},
		Workload: MultiServiceWorkload{
			Services: []ServiceSpec{
				{Name: "web", Pool: "shared", Workload: PoissonService{Lambda0: 80, Queries: 200}},
				{Name: "batch", Pool: "shared", Workload: PoissonService{Lambda0: 80, Queries: 200}},
			},
			Pools: []testbed.PoolSpec{{Name: "shared"}},
		},
	}
	res, err := Runner{Workers: 2}.RunSweep(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.LoadVecs) != 2 || len(res.Loads) != 2 {
		t.Fatalf("grid sweep recorded %d load vectors / %d labels, want 2", len(res.LoadVecs), len(res.Loads))
	}
	for li, vec := range res.LoadVecs {
		c := res.CellAt(0, 0, li, 0)
		if !reflect.DeepEqual(c.LoadVec, vec) {
			t.Fatalf("cell %d carries load vector %v, want %v", li, c.LoadVec, vec)
		}
		if c.Load != vec[len(vec)-1] {
			t.Fatalf("cell %d scalar label = %v, want the last-axis value %v", li, c.Load, vec[len(vec)-1])
		}
		if len(c.Outcome.PerVIP) != 2 {
			t.Fatalf("cell %d has %d VIP outcomes, want 2", li, len(c.Outcome.PerVIP))
		}
		for d, vo := range c.Outcome.PerVIP {
			if vo.Load != vec[d] {
				t.Fatalf("cell %d service %q resolved load %v, want the grid point's %v", li, vo.Name, vo.Load, vec[d])
			}
			if vo.Offered == 0 {
				t.Fatalf("cell %d service %q offered nothing", li, vo.Name)
			}
		}
	}
}

// TestRhoGridAdaptiveBudget is the CI budget gate in miniature: on a
// reference grid with a realistic CI target, adaptive replication must
// spend at most 60% of the fixed-replication budget (cells × MaxSeeds),
// and the result must still cover every (point, policy, service) row
// with a recorded stop reason.
func TestRhoGridAdaptiveBudget(t *testing.T) {
	cfg := RhoGridConfig{
		Cluster:   ClusterConfig{Seed: 5, Servers: 4},
		Lambda0:   80,
		WebRhos:   []float64{0.3, 0.6},
		BatchRhos: []float64{0.1, 0.3},
		Queries:   1500,
		BatchPeak: 2,
		Policies:  []PolicySpec{Random2(), WeightedLeastLoadPolicy()},
		Adaptive:  Adaptive{CITarget: 0.5, MinSeeds: 3, MaxSeeds: 10},
		Workers:   4,
	}
	res := RunRhoGrid(cfg)

	fixed := res.FixedBudget()
	if fixed != 2*2*2*10 {
		t.Fatalf("fixed budget = %d, want 80 (2×2 grid × 2 policies × 10 max seeds)", fixed)
	}
	if spent := res.TotalReplicates(); spent*10 > fixed*6 {
		t.Fatalf("adaptive run spent %d replicates, more than 60%% of the fixed budget %d", spent, fixed)
	}

	rows := map[string]bool{}
	for _, row := range res.Rows {
		if row.StopReason != StopConverged && row.StopReason != StopMaxSeeds {
			t.Fatalf("row (%v, %v, %s, %s) has stop reason %q", row.WebRho, row.BatchRho, row.Policy, row.Service, row.StopReason)
		}
		if row.N < 3 {
			t.Fatalf("row (%v, %v, %s, %s) aggregated %d replicates, below the MinSeeds floor", row.WebRho, row.BatchRho, row.Policy, row.Service, row.N)
		}
		key := row.Policy + "/" + row.Service
		rows[key] = true
	}
	for _, p := range []string{"random2", "wleastload"} {
		for _, svc := range []string{"all", "web", "batch"} {
			if !rows[p+"/"+svc] {
				t.Fatalf("missing rows for policy %s service %s", p, svc)
			}
		}
	}
	if want := 2 * 2 * 2 * 3; len(res.Rows) != want {
		t.Fatalf("got %d rows, want %d (points × policies × {all, web, batch})", len(res.Rows), want)
	}

	maps := res.Heatmaps("p99")
	if len(maps) != 2 {
		t.Fatalf("got %d heatmap facets, want one per policy", len(maps))
	}
	for _, h := range maps {
		if len(h.Z) != 2 || len(h.Z[0]) != 2 {
			t.Fatalf("facet %q has shape %dx%d, want 2x2", h.Title, len(h.Z), len(h.Z[0]))
		}
		for _, row := range h.Z {
			for _, v := range row {
				if math.IsNaN(v) {
					t.Fatalf("facet %q has a missing cell; every grid point ran", h.Title)
				}
			}
		}
	}
}
