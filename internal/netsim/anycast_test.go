package netsim

import (
	"testing"

	"srlb/internal/des"
	"srlb/internal/ipv6"
	"srlb/internal/packet"
	"srlb/internal/tcpseg"
)

func anycastPkt(srcPort uint16) *packet.Packet {
	return &packet.Packet{
		IP:  ipv6.Header{Src: addrA, Dst: addrC},
		TCP: tcpseg.Segment{SrcPort: srcPort, DstPort: 80, Flags: tcpseg.FlagSYN},
	}
}

func TestAnycastSpreadsFlows(t *testing.T) {
	sim := des.New()
	net := New(sim, Config{})
	var got [2]int
	for i := range got {
		i := i
		net.AttachAnycast(NodeFunc(func(*packet.Packet) { got[i]++ }), addrC)
	}
	const n = 2000
	for port := 0; port < n; port++ {
		net.Send(anycastPkt(uint16(1024 + port)))
	}
	sim.Run()
	if got[0]+got[1] != n {
		t.Fatalf("delivered %d+%d, want %d", got[0], got[1], n)
	}
	// ECMP should spread roughly evenly across members.
	if got[0] < n/3 || got[1] < n/3 {
		t.Fatalf("ECMP unbalanced: %d/%d", got[0], got[1])
	}
}

func TestAnycastPerFlowStability(t *testing.T) {
	sim := des.New()
	net := New(sim, Config{})
	var got [2][]uint16
	for i := range got {
		i := i
		net.AttachAnycast(NodeFunc(func(p *packet.Packet) {
			got[i] = append(got[i], p.TCP.SrcPort)
		}), addrC)
	}
	// Send each flow's packet three times: all copies must land on the
	// same member (hash is per 5-tuple, not per packet).
	for port := uint16(2000); port < 2100; port++ {
		for rep := 0; rep < 3; rep++ {
			net.Send(anycastPkt(port))
		}
	}
	sim.Run()
	seen := map[uint16]int{}
	for member, ports := range got {
		for _, p := range ports {
			if owner, ok := seen[p]; ok && owner != member {
				t.Fatalf("flow %d delivered to both members", p)
			}
			seen[p] = member
		}
	}
}

// countingNode is a comparable Node (pointer), as DetachAnycast requires.
type countingNode struct{ n int }

func (c *countingNode) Handle(*packet.Packet) { c.n++ }

func TestAnycastDetachRehashes(t *testing.T) {
	sim := des.New()
	net := New(sim, Config{})
	nodeA := &countingNode{}
	nodeB := &countingNode{}
	net.AttachAnycast(nodeA, addrC)
	net.AttachAnycast(nodeB, addrC)
	for port := 0; port < 500; port++ {
		net.Send(anycastPkt(uint16(3000 + port)))
	}
	sim.Run()
	if nodeA.n == 0 || nodeB.n == 0 {
		t.Fatal("both members should receive traffic")
	}
	if !net.DetachAnycast(nodeA, addrC) {
		t.Fatal("detach failed")
	}
	if net.DetachAnycast(nodeA, addrC) {
		t.Fatal("double detach should report false")
	}
	aBefore := nodeA.n
	bBefore := nodeB.n
	for port := 0; port < 500; port++ {
		net.Send(anycastPkt(uint16(3000 + port)))
	}
	sim.Run()
	if nodeA.n != aBefore {
		t.Fatal("detached member still receiving")
	}
	if nodeB.n != bBefore+500 {
		t.Fatalf("survivor got %d of 500 after detach", nodeB.n-bBefore)
	}
}

func TestAnycastEmptyGroupUnroutable(t *testing.T) {
	sim := des.New()
	net := New(sim, Config{})
	node := &countingNode{}
	net.AttachAnycast(node, addrC)
	net.DetachAnycast(node, addrC)
	net.Send(anycastPkt(1))
	sim.Run()
	if net.Counts.Get("unroutable") != 1 {
		t.Fatal("empty anycast group should be unroutable")
	}
}

func TestUnicastAnycastConflictPanics(t *testing.T) {
	sim := des.New()
	net := New(sim, Config{})
	net.Attach(NodeFunc(func(*packet.Packet) {}), addrA)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("anycast over unicast should panic")
			}
		}()
		net.AttachAnycast(NodeFunc(func(*packet.Packet) {}), addrA)
	}()
	net.AttachAnycast(NodeFunc(func(*packet.Packet) {}), addrC)
	defer func() {
		if recover() == nil {
			t.Fatal("unicast over anycast should panic")
		}
	}()
	net.Attach(NodeFunc(func(*packet.Packet) {}), addrC)
}
