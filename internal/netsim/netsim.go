// Package netsim simulates the paper's experimental network (§IV-C): all
// VPP instances — the load balancer and the twelve application servers —
// "bridged on the same link, with routing tables statically configured".
//
// The network is a flat L2 segment addressed by IPv6 address. Every
// transmission serializes the packet to bytes, applies link latency
// (optionally jitter and loss), and re-parses the bytes at the receiver —
// so the full wire-codec path runs on every hop, like a real software
// data plane.
package netsim

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math/rand/v2"
	"net/netip"
	"time"

	"srlb/internal/des"
	"srlb/internal/metrics"
	"srlb/internal/packet"
)

// Node is anything attached to the LAN. Handle is invoked once per
// delivered packet; the node may synchronously send more packets.
//
// Ownership: the delivered packet belongs to the receiving node. It may
// be mutated in place and re-sent (how the LB and the virtual routers
// forward without cloning per hop); conversely, anything that must
// outlive the Handle call has to be copied out (packet.Clone). The
// network enforces this by recycling the Packet struct and its wire
// buffer for later deliveries once Handle returns.
type Node interface {
	// Handle processes one delivered packet.
	Handle(pkt *packet.Packet)
}

// Tap observes every delivered packet (after parse, before Handle).
// Used by tests and the pcap-style logger. Taps run before ownership
// passes to the node, so they see the packet as it arrived — but they
// must not retain it beyond the call (the node may mutate it).
type Tap func(at time.Duration, dst netip.Addr, pkt *packet.Packet)

// Config tunes link behavior. The zero value gives an ideal lossless LAN
// with the default latency.
type Config struct {
	// Latency is the one-way delivery delay (default 50µs — same-rack).
	Latency time.Duration
	// JitterFrac adds uniform ±fraction jitter to Latency (0 disables).
	JitterFrac float64
	// LossProb drops packets with this probability (0 disables).
	LossProb float64
	// VerifyChecksums re-validates TCP checksums at every delivery.
	// Slightly slower; on by default in tests.
	VerifyChecksums bool
	// Seed drives jitter/loss randomness.
	Seed uint64
}

// DefaultLatency is the one-way LAN latency when Config.Latency is zero.
const DefaultLatency = 50 * time.Microsecond

// Network is a simulated bridged LAN.
type Network struct {
	sim    *des.Simulator
	cfg    Config
	rng    *rand.Rand
	nodes  map[netip.Addr]Node
	anycst map[netip.Addr][]Node
	taps   []Tap
	Counts *metrics.Counter

	// Delivery recycling: each transmission borrows an inflight (wire
	// buffer + pre-bound delivery closure) and each delivery borrows a
	// Packet, both returned to free lists once the receiving node's
	// Handle returns. Sound because of the ownership contract above:
	// nothing may retain the packet (or its payload, which aliases the
	// wire buffer) beyond the Handle call.
	freeIn  *inflight
	freePkt []*packet.Packet
}

// inflight is one scheduled transmission: the marshaled bytes and the
// closure the simulator fires to deliver them. The closure is bound to
// the inflight once, at allocation, so re-use costs zero allocations.
type inflight struct {
	wire []byte
	fire func()
	next *inflight // free-list link
}

// New creates a network on the given simulator.
func New(sim *des.Simulator, cfg Config) *Network {
	if cfg.Latency <= 0 {
		cfg.Latency = DefaultLatency
	}
	return &Network{
		sim:    sim,
		cfg:    cfg,
		rng:    rand.New(rand.NewPCG(cfg.Seed, 0xbeef)),
		nodes:  make(map[netip.Addr]Node),
		anycst: make(map[netip.Addr][]Node),
		Counts: metrics.NewCounter(),
	}
}

// Sim returns the underlying simulator.
func (n *Network) Sim() *des.Simulator { return n.sim }

// Attach binds addrs to node on the LAN. Attaching an address twice
// panics: unicast address assignment is static in the testbed (use
// AttachAnycast for ECMP groups).
func (n *Network) Attach(node Node, addrs ...netip.Addr) {
	for _, a := range addrs {
		if _, dup := n.nodes[a]; dup {
			panic(fmt.Sprintf("netsim: address %v attached twice", a))
		}
		if _, dup := n.anycst[a]; dup {
			panic(fmt.Sprintf("netsim: address %v already an anycast group", a))
		}
		n.nodes[a] = node
	}
}

// Detach removes a unicast address binding previously installed by
// Attach — a node failing or being decommissioned mid-run. Packets
// already in flight toward addr become unroutable (and are counted),
// exactly as on a real LAN when a host drops off. It reports whether
// node owned addr.
func (n *Network) Detach(node Node, addr netip.Addr) bool {
	if cur, ok := n.nodes[addr]; ok && cur == node {
		delete(n.nodes, addr)
		return true
	}
	return false
}

// AttachAnycast adds node to the ECMP group of addr: packets to addr are
// spread across the group by a stable hash of the TCP 5-tuple, the way
// routers ECMP flows across equal-cost next hops (RFC 2992 hash-threshold
// — the mechanism the paper's related work relies on for scaling LB
// instances).
func (n *Network) AttachAnycast(node Node, addr netip.Addr) {
	if _, dup := n.nodes[addr]; dup {
		panic(fmt.Sprintf("netsim: address %v already unicast", addr))
	}
	n.anycst[addr] = append(n.anycst[addr], node)
}

// DetachAnycast removes one member from addr's ECMP group (a replica
// failing or being drained); remaining flows rehash across survivors.
// It reports whether the member was present. Members are matched by
// interface equality, so anycast nodes must have comparable dynamic types
// (pointers — as every real node is; NodeFunc closures are not).
func (n *Network) DetachAnycast(node Node, addr netip.Addr) bool {
	group := n.anycst[addr]
	for i, member := range group {
		if member == node {
			n.anycst[addr] = append(group[:i:i], group[i+1:]...)
			return true
		}
	}
	return false
}

// AddTap registers a delivery observer.
func (n *Network) AddTap(t Tap) { n.taps = append(n.taps, t) }

// getInflight pops (or allocates) a transmission slot.
func (n *Network) getInflight() *inflight {
	if f := n.freeIn; f != nil {
		n.freeIn = f.next
		f.next = nil
		return f
	}
	f := &inflight{}
	f.fire = func() { n.deliver(f) }
	return f
}

func (n *Network) putInflight(f *inflight) {
	f.next = n.freeIn
	n.freeIn = f
}

// getPacket pops (or allocates) a delivery Packet.
func (n *Network) getPacket() *packet.Packet {
	if last := len(n.freePkt) - 1; last >= 0 {
		p := n.freePkt[last]
		n.freePkt = n.freePkt[:last]
		return p
	}
	return new(packet.Packet)
}

func (n *Network) putPacket(p *packet.Packet) {
	// Drop references into the wire buffer and SRH so the recycled
	// struct pins nothing.
	p.SRH = nil
	p.TCP.Payload = nil
	n.freePkt = append(n.freePkt, p)
}

// Send serializes pkt and schedules its delivery to the node owning the
// packet's IPv6 destination address. Unroutable destinations and lossy
// drops are counted, not errors: that is how a real LAN behaves.
func (n *Network) Send(pkt *packet.Packet) {
	f := n.getInflight()
	wire, err := pkt.Marshal(f.wire[:0])
	if err != nil {
		// A malformed locally-originated packet is a programming error in
		// the sending node; surface it loudly.
		panic(fmt.Sprintf("netsim: marshal failed: %v", err))
	}
	f.wire = wire
	n.Counts.Inc("tx")
	n.Counts.Addn("tx_bytes", uint64(len(wire)))
	if n.cfg.LossProb > 0 && n.rng.Float64() < n.cfg.LossProb {
		n.Counts.Inc("lost")
		n.putInflight(f)
		return
	}
	delay := n.cfg.Latency
	if n.cfg.JitterFrac > 0 {
		delay = time.Duration(float64(delay) * (1 + n.cfg.JitterFrac*(2*n.rng.Float64()-1)))
	}
	n.sim.ScheduleAfter(delay, f.fire)
}

func (n *Network) deliver(f *inflight) {
	pkt := n.getPacket()
	if err := packet.ParseInto(pkt, f.wire, n.cfg.VerifyChecksums); err != nil {
		n.Counts.Inc("rx_parse_error")
		n.putPacket(pkt)
		n.putInflight(f)
		return
	}
	node, ok := n.nodes[pkt.IP.Dst]
	if !ok {
		if group := n.anycst[pkt.IP.Dst]; len(group) > 0 {
			node = group[ecmpHash(pkt)%uint64(len(group))]
			ok = true
		}
	}
	if !ok {
		n.Counts.Inc("unroutable")
		n.putPacket(pkt)
		n.putInflight(f)
		return
	}
	n.Counts.Inc("rx")
	for _, tap := range n.taps {
		tap(n.sim.Now(), pkt.IP.Dst, pkt)
	}
	node.Handle(pkt)
	n.putPacket(pkt)
	n.putInflight(f)
}

// ecmpHash hashes the transport 5-tuple (stable per flow direction).
func ecmpHash(pkt *packet.Packet) uint64 {
	h := fnv.New64a()
	src := pkt.IP.Src.As16()
	dst := pkt.IP.Dst.As16()
	h.Write(src[:])
	h.Write(dst[:])
	var ports [4]byte
	binary.BigEndian.PutUint16(ports[0:2], pkt.TCP.SrcPort)
	binary.BigEndian.PutUint16(ports[2:4], pkt.TCP.DstPort)
	h.Write(ports[:])
	return h.Sum64()
}

// NodeFunc adapts a function to the Node interface.
type NodeFunc func(pkt *packet.Packet)

// Handle implements Node.
func (f NodeFunc) Handle(pkt *packet.Packet) { f(pkt) }
