package netsim

import (
	"net/netip"
	"testing"
	"time"

	"srlb/internal/des"
	"srlb/internal/ipv6"
	"srlb/internal/packet"
	"srlb/internal/srv6"
	"srlb/internal/tcpseg"
)

var (
	addrA = ipv6.MustAddr("2001:db8::a")
	addrB = ipv6.MustAddr("2001:db8::b")
	addrC = ipv6.MustAddr("2001:db8::c")
)

func mkPkt(src, dst string) *packet.Packet {
	return &packet.Packet{
		IP:  ipv6.Header{Src: ipv6.MustAddr(src), Dst: ipv6.MustAddr(dst)},
		TCP: tcpseg.Segment{SrcPort: 1000, DstPort: 80, Flags: tcpseg.FlagSYN},
	}
}

func TestDeliveryWithLatency(t *testing.T) {
	sim := des.New()
	net := New(sim, Config{Latency: time.Millisecond, VerifyChecksums: true})
	var gotAt time.Duration
	var got *packet.Packet
	net.Attach(NodeFunc(func(p *packet.Packet) {
		gotAt = sim.Now()
		got = p.Clone()
	}), addrB)
	net.Send(mkPkt("2001:db8::a", "2001:db8::b"))
	sim.Run()
	if got == nil {
		t.Fatal("packet not delivered")
	}
	if gotAt != time.Millisecond {
		t.Fatalf("delivered at %v, want 1ms", gotAt)
	}
	if got.IP.Src != addrA {
		t.Fatalf("src = %v", got.IP.Src)
	}
	if net.Counts.Get("tx") != 1 || net.Counts.Get("rx") != 1 {
		t.Fatal("counters wrong")
	}
}

func TestDefaultLatency(t *testing.T) {
	sim := des.New()
	net := New(sim, Config{})
	var at time.Duration
	net.Attach(NodeFunc(func(*packet.Packet) { at = sim.Now() }), addrB)
	net.Send(mkPkt("2001:db8::a", "2001:db8::b"))
	sim.Run()
	if at != DefaultLatency {
		t.Fatalf("at = %v, want %v", at, DefaultLatency)
	}
}

func TestUnroutableCounted(t *testing.T) {
	sim := des.New()
	net := New(sim, Config{})
	net.Send(mkPkt("2001:db8::a", "2001:db8::b"))
	sim.Run()
	if net.Counts.Get("unroutable") != 1 {
		t.Fatal("unroutable not counted")
	}
}

func TestDuplicateAttachPanics(t *testing.T) {
	sim := des.New()
	net := New(sim, Config{})
	net.Attach(NodeFunc(func(*packet.Packet) {}), addrA)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate attach")
		}
	}()
	net.Attach(NodeFunc(func(*packet.Packet) {}), addrA)
}

func TestMultiAddressNode(t *testing.T) {
	sim := des.New()
	net := New(sim, Config{})
	count := 0
	node := NodeFunc(func(*packet.Packet) { count++ })
	net.Attach(node, addrB, addrC)
	net.Send(mkPkt("2001:db8::a", "2001:db8::b"))
	net.Send(mkPkt("2001:db8::a", "2001:db8::c"))
	sim.Run()
	if count != 2 {
		t.Fatalf("count = %d, want 2", count)
	}
}

func TestLoss(t *testing.T) {
	sim := des.New()
	net := New(sim, Config{LossProb: 1.0})
	delivered := false
	net.Attach(NodeFunc(func(*packet.Packet) { delivered = true }), addrB)
	net.Send(mkPkt("2001:db8::a", "2001:db8::b"))
	sim.Run()
	if delivered {
		t.Fatal("packet delivered despite 100% loss")
	}
	if net.Counts.Get("lost") != 1 {
		t.Fatal("loss not counted")
	}
}

func TestLossStatistics(t *testing.T) {
	sim := des.New()
	net := New(sim, Config{LossProb: 0.3, Seed: 7})
	delivered := 0
	net.Attach(NodeFunc(func(*packet.Packet) { delivered++ }), addrB)
	const n = 10000
	for i := 0; i < n; i++ {
		net.Send(mkPkt("2001:db8::a", "2001:db8::b"))
	}
	sim.Run()
	frac := float64(delivered) / n
	if frac < 0.67 || frac > 0.73 {
		t.Fatalf("delivered fraction = %v, want ≈0.7", frac)
	}
}

func TestJitterBounded(t *testing.T) {
	sim := des.New()
	net := New(sim, Config{Latency: time.Millisecond, JitterFrac: 0.5, Seed: 3})
	var times []time.Duration
	net.Attach(NodeFunc(func(*packet.Packet) { times = append(times, sim.Now()) }), addrB)
	for i := 0; i < 1000; i++ {
		net.Send(mkPkt("2001:db8::a", "2001:db8::b"))
	}
	sim.Run()
	for _, at := range times {
		if at < 500*time.Microsecond || at > 1500*time.Microsecond {
			t.Fatalf("delivery at %v outside jitter bounds", at)
		}
	}
}

// TestSRHSurvivesTheWire checks that segment routing state is carried
// byte-accurately across a hop.
func TestSRHSurvivesTheWire(t *testing.T) {
	sim := des.New()
	net := New(sim, Config{VerifyChecksums: true})
	var got *packet.Packet
	net.Attach(NodeFunc(func(p *packet.Packet) { got = p.Clone() }), addrB)

	p := mkPkt("2001:db8::a", "2001:db8::b")
	p.SRH = srv6.MustNew(ipv6.ProtoTCP, addrB, addrC)
	net.Send(p)
	sim.Run()
	if got == nil || got.SRH == nil {
		t.Fatal("SRH lost on the wire")
	}
	if got.SRH.SegmentsLeft != 1 {
		t.Fatalf("SL = %d", got.SRH.SegmentsLeft)
	}
	final, _ := got.SRH.Final()
	if final != addrC {
		t.Fatalf("final = %v", final)
	}
}

func TestTapSeesPackets(t *testing.T) {
	sim := des.New()
	net := New(sim, Config{})
	net.Attach(NodeFunc(func(*packet.Packet) {}), addrB)
	count := 0
	net.AddTap(func(at time.Duration, dst netip.Addr, pkt *packet.Packet) {
		count++
		if dst != addrB {
			t.Errorf("tap dst = %v", dst)
		}
		if at != sim.Now() {
			t.Errorf("tap at = %v, now = %v", at, sim.Now())
		}
	})
	net.Send(mkPkt("2001:db8::a", "2001:db8::b"))
	net.Send(mkPkt("2001:db8::a", "2001:db8::b"))
	sim.Run()
	if count != 2 {
		t.Fatalf("tap saw %d packets, want 2", count)
	}
}

func TestSynchronousReplyFromHandler(t *testing.T) {
	// A node may send from within Handle (that is how servers reply);
	// the reply must be delivered on a later event, not recursively.
	sim := des.New()
	net := New(sim, Config{Latency: time.Millisecond})
	gotReply := false
	net.Attach(NodeFunc(func(p *packet.Packet) {
		reply := mkPkt("2001:db8::b", "2001:db8::a")
		net.Send(reply)
	}), addrB)
	net.Attach(NodeFunc(func(p *packet.Packet) { gotReply = true }), addrA)
	net.Send(mkPkt("2001:db8::a", "2001:db8::b"))
	sim.Run()
	if !gotReply {
		t.Fatal("reply not delivered")
	}
	if sim.Now() != 2*time.Millisecond {
		t.Fatalf("round trip took %v, want 2ms", sim.Now())
	}
}

func BenchmarkSendDeliver(b *testing.B) {
	sim := des.New()
	net := New(sim, Config{VerifyChecksums: true})
	net.Attach(NodeFunc(func(*packet.Packet) {}), addrB)
	p := mkPkt("2001:db8::a", "2001:db8::b")
	p.SRH = srv6.MustNew(ipv6.ProtoTCP, addrB, addrC)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		net.Send(p)
		sim.Run()
	}
}
