// Package vrouter implements the per-server virtual router of the paper
// (§II-A): the component that, on each compute node, dispatches packets
// between the (simulated) NIC and the application-bound virtual interface,
// and executes the Service Hunting decision.
//
// In the paper this is a VPP plugin colocated with the Apache server
// agent; here it is a packet-handler state machine attached to the
// simulated LAN. Its behavior, per Algorithms 1–2:
//
//   - Packet with SegmentsLeft ≥ 2 addressed to this server: a *choice*
//     offer. Consult the local agent policy; accept ⇒ deliver to the
//     application (SL := 0, dst := VIP); refuse ⇒ advance the SR list and
//     forward to the next candidate.
//   - Packet with SegmentsLeft = 1: penultimate segment — the application
//     "must not refuse" (satisfiability guarantee). Deliver.
//   - Packet without SRH (or SL = 0) addressed to a local VIP: a steered
//     packet of an established flow. Deliver.
//
// On acceptance of a connection (SYN), the server replies with a SYN-ACK
// carrying an SRH [self, LB, client]: the LB, as penultimate segment,
// learns which server accepted and installs flow state (paper figure 1).
package vrouter

import (
	"fmt"
	"net/netip"
	"time"

	"srlb/internal/agent"
	"srlb/internal/appserver"
	"srlb/internal/des"
	"srlb/internal/ipv6"
	"srlb/internal/metrics"
	"srlb/internal/netsim"
	"srlb/internal/packet"
	"srlb/internal/srv6"
	"srlb/internal/tcpseg"
)

// DemandFn computes the CPU demand of a request from its flow key and
// request payload. The testbed encodes the demand in the request bytes
// (the paper's PHP busy-loop duration); the Wikipedia workload instead
// derives it from the URL and the server-local cache state.
type DemandFn func(flow packet.FlowKey, payload []byte) time.Duration

// Config assembles a server node.
type Config struct {
	// Addr is the server's physical address (the SR segment).
	Addr netip.Addr
	// VIPs are the virtual service addresses this server hosts.
	VIPs []netip.Addr
	// LB is the load balancer address, used to route SYN-ACKs through it.
	LB netip.Addr
	// Policy is the connection-acceptance policy (agent).
	Policy agent.Policy
	// Server is the application instance model.
	Server *appserver.Server
	// Demand computes CPU demand per request.
	Demand DemandFn
}

// conn tracks one accepted connection through its request/response cycle.
type conn struct {
	flow      packet.FlowKey
	demand    time.Duration
	requested bool // request payload received
	ready     bool // service complete, response awaiting the request
	closed    bool // response sent; lingering to absorb late packets
}

// CloseLinger is how long connection state is retained after the response
// is sent, absorbing in-flight client packets (TIME_WAIT in miniature —
// without it, a request shorter than the handshake RTT would see its own
// trailing ACK answered with an RST).
const CloseLinger = time.Second

// Router is the virtual router + application agent of one server.
type Router struct {
	cfg     Config
	sim     *des.Simulator
	net     *netsim.Network
	vips    map[netip.Addr]bool
	conns   map[packet.FlowKey]*conn
	vipResp map[netip.Addr]uint64
	down    bool
	Counts  *metrics.Counter
}

// New builds the router and attaches it to the network under its physical
// address and its VIPs.
func New(sim *des.Simulator, net *netsim.Network, cfg Config) *Router {
	if cfg.Policy == nil || cfg.Server == nil || cfg.Demand == nil {
		panic("vrouter: Policy, Server and Demand are required")
	}
	if err := ipv6.CheckAddr(cfg.Addr); err != nil {
		panic(fmt.Sprintf("vrouter: bad addr: %v", err))
	}
	r := &Router{
		cfg:     cfg,
		sim:     sim,
		net:     net,
		vips:    make(map[netip.Addr]bool, len(cfg.VIPs)),
		conns:   make(map[packet.FlowKey]*conn),
		vipResp: make(map[netip.Addr]uint64, len(cfg.VIPs)),
		Counts:  metrics.NewCounter(),
	}
	for _, v := range cfg.VIPs {
		r.vips[v] = true
	}
	net.Attach(r, cfg.Addr)
	return r
}

// Addr returns the server's physical address.
func (r *Router) Addr() netip.Addr { return r.cfg.Addr }

// Server returns the application instance model.
func (r *Router) Server() *appserver.Server { return r.cfg.Server }

// Policy returns the acceptance policy (for telemetry).
func (r *Router) Policy() agent.Policy { return r.cfg.Policy }

// OpenConns returns the number of tracked connections.
func (r *Router) OpenConns() int { return len(r.conns) }

// VIPResponses returns the number of responses this server has emitted
// for connections of the given VIP. Every response is attributed to
// exactly one VIP (the connection's flow destination), so on a shared
// pool the per-VIP counts sum to the responses_tx total — the busy-time
// attribution ledger of multi-service servers.
func (r *Router) VIPResponses(vip netip.Addr) uint64 { return r.vipResp[vip] }

// SetDown marks the server failed (true) or recovered (false) — the
// fail-stop model of the topology lifecycle events. A down router
// ignores all delivered traffic and suppresses responses for work its
// application finishes while dark; connection state is retained, so a
// recovered server silently absorbs (rather than RSTs) stragglers of
// flows it accepted before going down.
func (r *Router) SetDown(down bool) { r.down = down }

// Down reports whether the router is failed.
func (r *Router) Down() bool { return r.down }

// Handle implements netsim.Node.
func (r *Router) Handle(pkt *packet.Packet) {
	if r.down {
		r.Counts.Inc("down_rx")
		return
	}
	if pkt.SRH != nil && pkt.IP.Dst == r.cfg.Addr {
		r.handleSegment(pkt)
		return
	}
	// No SRH (or SRH already consumed): steered packet for a local flow.
	r.deliverLocal(pkt)
}

// handleSegment executes SR endpoint processing for the active segment.
func (r *Router) handleSegment(pkt *packet.Packet) {
	switch {
	case pkt.SRH.SegmentsLeft >= 2:
		// A real choice: first (or middle) candidate in the hunt.
		if pkt.IsSYN() {
			r.Counts.Inc("hunt_offers")
			if r.cfg.Policy.Accept(r.cfg.Server) {
				r.Counts.Inc("hunt_accepts")
				r.acceptSYN(pkt)
				return
			}
			r.Counts.Inc("hunt_refusals")
			r.forwardNext(pkt)
			return
		}
		// Non-SYN with a choice segment: not part of the hunt protocol;
		// behave as a plain SR transit node.
		r.forwardNext(pkt)

	case pkt.SRH.SegmentsLeft == 1:
		// Penultimate segment: must not refuse (paper §II-A).
		if pkt.IsSYN() {
			r.Counts.Inc("forced_accepts")
			r.acceptSYN(pkt)
			return
		}
		r.deliverLocal(pkt)

	default: // SegmentsLeft == 0
		r.deliverLocal(pkt)
	}
}

// acceptSYN admits the connection into the application (or RSTs on
// overflow) and emits the SYN-ACK through the load balancer.
func (r *Router) acceptSYN(pkt *packet.Packet) {
	flow := pkt.Flow()
	if c, dup := r.conns[flow]; dup {
		if c.closed {
			// Port reuse onto a lingering closed connection: the old
			// incarnation is done, treat this as a fresh connection.
			delete(r.conns, flow)
		} else {
			// Duplicate SYN (retransmit after accept): re-send SYN-ACK.
			r.Counts.Inc("dup_syn")
			r.sendSYNACK(pkt, flow)
			return
		}
	}
	demand := r.cfg.Demand(flow, pkt.TCP.Payload)
	c := &conn{flow: flow, demand: demand}
	verdict := r.cfg.Server.Offer(demand, func() { r.respond(c) })
	switch verdict {
	case appserver.Admitted:
		r.conns[flow] = c
		r.sendSYNACK(pkt, flow)
	case appserver.Rejected:
		// tcp_abort_on_overflow: RST straight back to the client.
		r.Counts.Inc("rst_overflow")
		r.sendRST(pkt)
	case appserver.DroppedSilently:
		r.Counts.Inc("syn_dropped")
	}
}

// sendSYNACK replies to a SYN with an SRH [self, LB, client] so the LB
// learns which server accepted (figure 1: SYN-ACK {a, S2, LB, c}).
func (r *Router) sendSYNACK(pkt *packet.Packet, flow packet.FlowKey) {
	srh, err := srv6.New(ipv6.ProtoTCP, r.cfg.Addr, r.cfg.LB, flow.Src)
	if err != nil {
		panic(fmt.Sprintf("vrouter: SYN-ACK SRH: %v", err))
	}
	// The server is the first segment and the packet originates here, so
	// the active segment is already consumed: advance to the LB.
	next, err := srh.Advance()
	if err != nil {
		panic(err)
	}
	reply := &packet.Packet{
		IP: ipv6.Header{
			Src: flow.Dst, // the VIP: the client must see the service address
			Dst: next,     // through the LB
		},
		SRH: srh,
		TCP: tcpseg.Segment{
			SrcPort: flow.DstPort,
			DstPort: flow.SrcPort,
			Seq:     1,
			Ack:     pkt.TCP.Seq + 1,
			Flags:   tcpseg.FlagSYN | tcpseg.FlagACK,
		},
	}
	r.Counts.Inc("synack_tx")
	r.net.Send(reply)
}

// sendRST refuses the connection (backlog overflow) directly to the
// client — the paper's tcp_abort_on_overflow behavior.
func (r *Router) sendRST(pkt *packet.Packet) {
	flow := pkt.Flow()
	rst := &packet.Packet{
		IP: ipv6.Header{Src: flow.Dst, Dst: flow.Src},
		TCP: tcpseg.Segment{
			SrcPort: flow.DstPort,
			DstPort: flow.SrcPort,
			Ack:     pkt.TCP.Seq + 1,
			Flags:   tcpseg.FlagRST | tcpseg.FlagACK,
		},
	}
	r.net.Send(rst)
}

// deliverLocal hands a steered packet to the local application instance.
func (r *Router) deliverLocal(pkt *packet.Packet) {
	flow := pkt.Flow()
	if !r.vips[flow.Dst] {
		r.Counts.Inc("not_local")
		return
	}
	c, ok := r.conns[flow]
	if !ok {
		// Data for a flow we never accepted (e.g. stale steering after a
		// table eviction). A real stack would RST; count it.
		r.Counts.Inc("no_conn")
		r.sendRST(pkt)
		return
	}
	if c.closed {
		// Late packet for an answered connection (the response overtook
		// the client's ACK): absorb silently, like TIME_WAIT.
		r.Counts.Inc("late_rx")
		return
	}
	if len(pkt.TCP.Payload) > 0 && !c.requested {
		// The request payload has arrived; service is already queued (the
		// demand was committed at accept time — Apache's worker model
		// reads the request once a worker picks the connection up).
		c.requested = true
		r.Counts.Inc("requests_rx")
		if c.ready {
			// Service finished before the request landed (sub-RTT demand):
			// the response was held for causality; release it now.
			r.emitResponse(c)
		}
	}
	if pkt.TCP.Flags.Has(tcpseg.FlagFIN) {
		// Client closed; server side will close after responding. Nothing
		// to do in the model: conn state is removed on respond().
		r.Counts.Inc("fin_rx")
	}
}

// respond fires when the application finishes computing the response. A
// server cannot answer a request it has not yet received, so if the
// (simulated, accept-time-started) service finished before the request
// payload landed, the response is held until deliverLocal releases it.
func (r *Router) respond(c *conn) {
	cur, live := r.conns[c.flow]
	if !live || cur != c || c.closed || r.down {
		return
	}
	if !c.requested {
		c.ready = true
		return
	}
	r.emitResponse(c)
}

// emitResponse sends the response data + FIN directly to the client
// (direct server return — the LB is not on the return path, §II-A) and
// schedules conn-state teardown after the linger.
func (r *Router) emitResponse(c *conn) {
	c.closed = true
	r.sim.After(CloseLinger, func() {
		if cur, ok := r.conns[c.flow]; ok && cur == c {
			delete(r.conns, c.flow)
		}
	})
	resp := &packet.Packet{
		IP: ipv6.Header{Src: c.flow.Dst, Dst: c.flow.Src},
		TCP: tcpseg.Segment{
			SrcPort: c.flow.DstPort,
			DstPort: c.flow.SrcPort,
			Seq:     2,
			Ack:     2,
			Flags:   tcpseg.FlagPSH | tcpseg.FlagACK | tcpseg.FlagFIN,
			Payload: []byte("HTTP/1.1 200 OK\r\n\r\n"),
		},
	}
	r.Counts.Inc("responses_tx")
	r.vipResp[c.flow.Dst]++
	r.net.Send(resp)
}

// forwardNext advances the SR list and forwards to the next segment.
// The delivered packet is owned by this node (netsim.Node contract), so
// it is advanced in place rather than cloned.
func (r *Router) forwardNext(pkt *packet.Packet) {
	next, err := pkt.SRH.Advance()
	if err != nil {
		r.Counts.Inc("srh_exhausted")
		return
	}
	pkt.IP.Dst = next
	pkt.IP.HopLimit--
	if pkt.IP.HopLimit == 0 {
		r.Counts.Inc("hoplimit_exceeded")
		return
	}
	r.Counts.Inc("forwarded")
	r.net.Send(pkt)
}

var _ netsim.Node = (*Router)(nil)
