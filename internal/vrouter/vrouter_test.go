package vrouter

import (
	"net/netip"
	"testing"
	"time"

	"srlb/internal/agent"
	"srlb/internal/appserver"
	"srlb/internal/des"
	"srlb/internal/ipv6"
	"srlb/internal/netsim"
	"srlb/internal/packet"
	"srlb/internal/srv6"
	"srlb/internal/tcpseg"
)

var (
	client = ipv6.MustAddr("2001:db8:c::1")
	lbAddr = ipv6.MustAddr("2001:db8:1b::1")
	sAddr1 = ipv6.MustAddr("2001:db8:5::1")
	sAddr2 = ipv6.MustAddr("2001:db8:5::2")
	vip    = ipv6.MustAddr("2001:db8:f00d::1")
)

// rig wires one or two routers plus recording sinks at the LB and client
// addresses.
type rig struct {
	sim    *des.Simulator
	net    *netsim.Network
	r1, r2 *Router
	toLB   []*packet.Packet
	toCli  []*packet.Packet
}

func demandFromPayload(_ packet.FlowKey, payload []byte) time.Duration {
	if len(payload) == 0 {
		return 10 * time.Millisecond
	}
	return time.Duration(payload[0]) * time.Millisecond
}

func newRig(t *testing.T, pol1, pol2 agent.Policy, cfg appserver.Config) *rig {
	t.Helper()
	sim := des.New()
	net := netsim.New(sim, netsim.Config{VerifyChecksums: true})
	g := &rig{sim: sim, net: net}
	net.Attach(netsim.NodeFunc(func(p *packet.Packet) { g.toLB = append(g.toLB, p.Clone()) }), lbAddr)
	net.Attach(netsim.NodeFunc(func(p *packet.Packet) { g.toCli = append(g.toCli, p.Clone()) }), client)
	g.r1 = New(sim, net, Config{
		Addr: sAddr1, VIPs: []netip.Addr{vip}, LB: lbAddr,
		Policy: pol1, Server: appserver.New(sim, "s1", cfg), Demand: demandFromPayload,
	})
	if pol2 != nil {
		g.r2 = New(sim, net, Config{
			Addr: sAddr2, VIPs: []netip.Addr{vip}, LB: lbAddr,
			Policy: pol2, Server: appserver.New(sim, "s2", cfg), Demand: demandFromPayload,
		})
	}
	return g
}

// huntSYN builds the SYN the LB would emit for a 2-candidate hunt.
func huntSYN(demandMs byte) *packet.Packet {
	srh := srv6.MustNew(ipv6.ProtoTCP, sAddr1, sAddr2, vip)
	return &packet.Packet{
		IP:  ipv6.Header{Src: client, Dst: sAddr1},
		SRH: srh,
		TCP: tcpseg.Segment{
			SrcPort: 40000, DstPort: 80, Seq: 0,
			Flags:   tcpseg.FlagSYN,
			Payload: []byte{demandMs},
		},
	}
}

func TestAcceptAtFirstCandidate(t *testing.T) {
	g := newRig(t, agent.Always{}, nil, appserver.Default())
	g.net.Send(huntSYN(5))
	g.sim.Run()

	if g.r1.Counts.Get("hunt_accepts") != 1 {
		t.Fatal("first candidate did not accept")
	}
	// SYN-ACK must be routed to the LB with SRH [s1, lb, client], SL=1.
	if len(g.toLB) != 1 {
		t.Fatalf("LB received %d packets, want 1 SYN-ACK", len(g.toLB))
	}
	sa := g.toLB[0]
	if !sa.IsSYNACK() {
		t.Fatalf("LB packet flags = %v", sa.TCP.Flags)
	}
	if sa.SRH == nil || sa.SRH.SegmentsLeft != 1 {
		t.Fatalf("SYN-ACK SRH = %v", sa.SRH)
	}
	srv, err := sa.SRH.SegmentAtSL(sa.SRH.SegmentsLeft + 1)
	if err != nil || srv != sAddr1 {
		t.Fatalf("accepting server segment = %v (%v)", srv, err)
	}
	if sa.IP.Src != vip {
		t.Fatalf("SYN-ACK src = %v, want the VIP", sa.IP.Src)
	}
	// No response before the request payload arrives (causality).
	if len(g.toCli) != 0 {
		t.Fatalf("client received %d packets before sending its request", len(g.toCli))
	}
	// Complete the exchange: steered ACK+request (as the LB would emit).
	req := &packet.Packet{
		IP:  ipv6.Header{Src: client, Dst: sAddr1},
		SRH: srv6.MustNew(ipv6.ProtoTCP, sAddr1, vip),
		TCP: tcpseg.Segment{
			SrcPort: 40000, DstPort: 80, Seq: 1, Ack: 2,
			Flags: tcpseg.FlagACK | tcpseg.FlagPSH, Payload: []byte{5},
		},
	}
	g.net.Send(req)
	g.sim.Run()
	if len(g.toCli) != 1 {
		t.Fatalf("client received %d packets, want 1 response", len(g.toCli))
	}
	if g.sim.Now() < 5*time.Millisecond {
		t.Fatalf("response too early: %v", g.sim.Now())
	}
}

func TestRefusalForwardsToSecond(t *testing.T) {
	g := newRig(t, agent.Never{}, agent.Never{}, appserver.Default())
	g.net.Send(huntSYN(5))
	g.sim.Run()

	if g.r1.Counts.Get("hunt_refusals") != 1 {
		t.Fatal("first candidate should refuse")
	}
	if g.r1.Counts.Get("forwarded") != 1 {
		t.Fatal("packet not forwarded to second candidate")
	}
	// Second candidate must force-accept despite Never policy (SL=1).
	if g.r2.Counts.Get("forced_accepts") != 1 {
		t.Fatal("second candidate did not force-accept")
	}
	if g.r2.Server().Stats().Admitted != 1 {
		t.Fatal("second server did not admit")
	}
	if g.r1.Server().Stats().Admitted != 0 {
		t.Fatal("first server wrongly admitted")
	}
}

func TestStaticPolicyDecidesOnBusyCount(t *testing.T) {
	cfg := appserver.Config{Workers: 8, Cores: 8, Backlog: 16, AbortOnOverflow: true}
	g := newRig(t, agent.NewStatic(2), agent.Always{}, cfg)
	// Occupy two workers with long requests (policy threshold c=2).
	g.r1.Server().Offer(time.Second, nil)
	g.r1.Server().Offer(time.Second, nil)
	g.net.Send(huntSYN(1))
	g.sim.RunUntil(100 * time.Millisecond)
	if g.r1.Counts.Get("hunt_refusals") != 1 {
		t.Fatal("busy first candidate should refuse (busy=2 ≥ c=2)")
	}
	if g.r2.Counts.Get("forced_accepts") != 1 {
		t.Fatal("second candidate should serve")
	}
}

func TestBacklogOverflowSendsRST(t *testing.T) {
	cfg := appserver.Config{Workers: 1, Cores: 1, Backlog: 0, AbortOnOverflow: true}
	g := newRig(t, agent.Always{}, nil, cfg)
	// First connection occupies the only worker …
	g.r1.Server().Offer(time.Second, nil)
	// … so a hunted SYN that must be accepted (SL=1 leg) overflows.
	srh := srv6.MustNew(ipv6.ProtoTCP, sAddr1, vip)
	syn := &packet.Packet{
		IP:  ipv6.Header{Src: client, Dst: sAddr1},
		SRH: srh,
		TCP: tcpseg.Segment{SrcPort: 40001, DstPort: 80, Flags: tcpseg.FlagSYN, Payload: []byte{1}},
	}
	g.net.Send(syn)
	g.sim.RunUntil(10 * time.Millisecond)
	if g.r1.Counts.Get("rst_overflow") != 1 {
		t.Fatal("overflow did not RST")
	}
	if len(g.toCli) != 1 || !g.toCli[0].TCP.Flags.Has(tcpseg.FlagRST) {
		t.Fatalf("client did not receive RST: %v", g.toCli)
	}
}

func TestDuplicateSYNResendsSYNACK(t *testing.T) {
	g := newRig(t, agent.Always{}, nil, appserver.Default())
	g.net.Send(huntSYN(200))
	g.sim.RunUntil(time.Millisecond)
	g.net.Send(huntSYN(200)) // retransmit of the same flow
	g.sim.RunUntil(2 * time.Millisecond)
	if g.r1.Counts.Get("dup_syn") != 1 {
		t.Fatal("duplicate SYN not detected")
	}
	if len(g.toLB) != 2 {
		t.Fatalf("LB saw %d SYN-ACKs, want 2", len(g.toLB))
	}
	if g.r1.Server().Stats().Admitted != 1 {
		t.Fatal("duplicate SYN admitted twice")
	}
}

func TestSteeredDataForUnknownFlowRSTs(t *testing.T) {
	// A steered packet (SRH [server, vip], SL=1, as the LB emits mid-flow)
	// for a connection this server never accepted must be RST.
	g := newRig(t, agent.Always{}, nil, appserver.Default())
	data := &packet.Packet{
		IP:  ipv6.Header{Src: client, Dst: sAddr1},
		SRH: srv6.MustNew(ipv6.ProtoTCP, sAddr1, vip),
		TCP: tcpseg.Segment{SrcPort: 40002, DstPort: 80, Flags: tcpseg.FlagACK | tcpseg.FlagPSH, Payload: []byte("x")},
	}
	g.net.Send(data)
	g.sim.Run()
	if g.r1.Counts.Get("no_conn") != 1 {
		t.Fatalf("no_conn = %d, want 1", g.r1.Counts.Get("no_conn"))
	}
	if len(g.toCli) != 1 || !g.toCli[0].TCP.Flags.Has(tcpseg.FlagRST) {
		t.Fatalf("client did not receive RST for stale steering")
	}
}

func TestMustFieldsPanic(t *testing.T) {
	sim := des.New()
	net := netsim.New(sim, netsim.Config{})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for missing fields")
		}
	}()
	New(sim, net, Config{Addr: sAddr1})
}

func TestHopLimitGuard(t *testing.T) {
	g := newRig(t, agent.Never{}, agent.Never{}, appserver.Default())
	p := huntSYN(1)
	p.IP.HopLimit = 1 // next hop would hit 0
	g.net.Send(p)
	g.sim.Run()
	if g.r1.Counts.Get("hoplimit_exceeded") != 1 {
		t.Fatal("hop limit not enforced")
	}
	if g.r2.Counts.Get("forced_accepts") != 0 {
		t.Fatal("packet should have been dropped")
	}
}

func TestAccessors(t *testing.T) {
	g := newRig(t, agent.Always{}, nil, appserver.Default())
	if g.r1.Addr() != sAddr1 {
		t.Fatal("Addr() wrong")
	}
	if g.r1.Server() == nil || g.r1.Policy() == nil {
		t.Fatal("accessors returned nil")
	}
	if g.r1.OpenConns() != 0 {
		t.Fatal("fresh router has open conns")
	}
}
