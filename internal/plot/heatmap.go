package plot

import (
	"errors"
	"fmt"
	"io"
	"math"
	"strings"
)

// Heatmap is one 2-D scalar field for RenderHeatmap: Z[yi][xi] holds
// the value at row tick Y[yi] and column tick X[xi]. Rows render with
// the largest Y at the top (a conventional y axis); NaN cells render
// blank ("missing", distinguishable from every ramp glyph).
type Heatmap struct {
	// Title heads the facet (optional).
	Title string
	// XLabel and YLabel name the axes (optional).
	XLabel string
	YLabel string
	// X and Y are the column and row tick values; len(Z) must equal
	// len(Y) and every row's length len(X).
	X, Y []float64
	// Z[yi][xi] is the cell value; NaN marks a missing cell.
	Z [][]float64
	// Min and Max, when Max > Min, pin the color scale — use one shared
	// range to make facets comparable (e.g. the same metric across
	// policies). Otherwise the scale spans the finite Z range.
	Min, Max float64
}

// heatRamp orders the cell glyphs light → dark. Blank is excluded so a
// missing (NaN) cell can never be confused with a low value.
const heatRamp = ".:-=+*#%@"

// heatCellWidth is the rendered width of one grid column; each cell
// shows its glyph tripled ("===") so levels stay readable at a glance.
const heatCellWidth = 6

// scale returns the color-scale range: the pinned [Min, Max] when set,
// else the finite range of Z.
func (h Heatmap) scale() (lo, hi float64) {
	if h.Max > h.Min {
		return h.Min, h.Max
	}
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, row := range h.Z {
		for _, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
	}
	if lo > hi { // all cells missing
		return 0, 0
	}
	return lo, hi
}

// glyph maps v onto the ramp for the scale [lo, hi] (flat scales take
// the middle glyph; out-of-range values clamp to the ends).
func heatGlyph(v, lo, hi float64) byte {
	if hi <= lo {
		return heatRamp[len(heatRamp)/2]
	}
	frac := (v - lo) / (hi - lo)
	frac = math.Max(0, math.Min(1, frac))
	return heatRamp[int(math.Round(frac*float64(len(heatRamp)-1)))]
}

func (h Heatmap) validate() error {
	if len(h.X) == 0 || len(h.Y) == 0 {
		return errors.New("plot: heatmap needs at least one row and one column")
	}
	if len(h.Z) != len(h.Y) {
		return fmt.Errorf("plot: heatmap has %d rows of Z for %d Y ticks", len(h.Z), len(h.Y))
	}
	for yi, row := range h.Z {
		if len(row) != len(h.X) {
			return fmt.Errorf("plot: heatmap row %d has %d cells for %d X ticks", yi, len(row), len(h.X))
		}
	}
	return nil
}

// RenderHeatmap writes the grid as ASCII: one glyph-cell per (X, Y)
// point, darker glyph = larger value, row labels on the left, column
// ticks below, and a scale legend mapping the ramp's endpoints back to
// values. The output is deterministic byte-for-byte for a given
// Heatmap — golden-testable like Render.
func RenderHeatmap(w io.Writer, h Heatmap) error {
	if err := h.validate(); err != nil {
		return err
	}
	var b strings.Builder
	if h.Title != "" {
		b.WriteString(h.Title + "\n")
	}
	lo, hi := h.scale()

	// Rows: largest Y on top. The y-axis label rides the middle row.
	rowLabelWidth := 9
	mid := (len(h.Y) - 1) / 2
	order := make([]int, len(h.Y))
	for i := range order {
		order[i] = i
	}
	// Y may arrive in any order; render by descending tick value using
	// a stable selection so equal ticks keep input order.
	for i := 0; i < len(order); i++ {
		maxAt := i
		for j := i + 1; j < len(order); j++ {
			if h.Y[order[j]] > h.Y[order[maxAt]] {
				maxAt = j
			}
		}
		order[i], order[maxAt] = order[maxAt], order[i]
	}
	for rank, yi := range order {
		label := formatTick(h.Y[yi])
		prefix := ""
		if h.YLabel != "" && rank == mid {
			prefix = trunc(h.YLabel, rowLabelWidth-len(label)-1) + " "
		}
		var row strings.Builder
		fmt.Fprintf(&row, "%*s |", rowLabelWidth, prefix+label)
		for xi := range h.X {
			v := h.Z[yi][xi]
			cell := "   "
			if !math.IsNaN(v) {
				g := heatGlyph(v, lo, hi)
				cell = strings.Repeat(string(g), 3)
			}
			fmt.Fprintf(&row, " %-*s", heatCellWidth-1, cell)
		}
		b.WriteString(strings.TrimRight(row.String(), " ") + "\n")
	}

	// Axis rule and column ticks.
	fmt.Fprintf(&b, "%*s +%s\n", rowLabelWidth, "", strings.Repeat("-", heatCellWidth*len(h.X)))
	var ticks strings.Builder
	fmt.Fprintf(&ticks, "%*s ", rowLabelWidth, "")
	for _, x := range h.X {
		fmt.Fprintf(&ticks, " %-*s", heatCellWidth-1, trunc(formatTick(x), heatCellWidth-1))
	}
	b.WriteString(strings.TrimRight(ticks.String(), " ") + "\n")
	if h.XLabel != "" {
		fmt.Fprintf(&b, "%*s  %s\n", rowLabelWidth, "", h.XLabel)
	}
	fmt.Fprintf(&b, "%*s  scale: %c = %s .. %c = %s (blank = missing)\n",
		rowLabelWidth, "", heatRamp[0], formatTick(lo), heatRamp[len(heatRamp)-1], formatTick(hi))

	_, err := io.WriteString(w, b.String())
	return err
}

// RenderHeatmaps renders several facets in sequence, separated by a
// blank line — one facet per (policy, metric) is the grid-sweep
// convention.
func RenderHeatmaps(w io.Writer, maps ...Heatmap) error {
	for i, h := range maps {
		if i > 0 {
			if _, err := io.WriteString(w, "\n"); err != nil {
				return err
			}
		}
		if err := RenderHeatmap(w, h); err != nil {
			return err
		}
	}
	return nil
}
