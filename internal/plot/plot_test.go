package plot

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestRenderBasicChart(t *testing.T) {
	var buf bytes.Buffer
	err := Render(&buf, Config{Title: "fig", Width: 40, Height: 10, XLabel: "rho", YLabel: "rt"},
		Series{Name: "RR", X: []float64{0, 0.5, 1}, Y: []float64{0.1, 0.3, 1.2}},
		Series{Name: "SR4", X: []float64{0, 0.5, 1}, Y: []float64{0.1, 0.15, 0.5}},
	)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"fig", "* RR", "o SR4", "rho", "+---"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + height rows + axis + x-labels + legend
	if len(lines) != 1+10+1+1+1 {
		t.Fatalf("line count = %d:\n%s", len(lines), out)
	}
	// The max point of RR (y=1.2) must be at the top row; min at bottom.
	if !strings.Contains(lines[1], "*") {
		t.Fatalf("top row has no RR marker:\n%s", out)
	}
}

func TestRenderErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := Render(&buf, Config{}); err == nil {
		t.Fatal("no series accepted")
	}
	if err := Render(&buf, Config{}, Series{Name: "bad", X: []float64{1}, Y: []float64{1, 2}}); err == nil {
		t.Fatal("mismatched lengths accepted")
	}
	nan := math.NaN()
	if err := Render(&buf, Config{}, Series{Name: "nan", X: []float64{nan}, Y: []float64{nan}}); err == nil {
		t.Fatal("all-NaN accepted")
	}
}

func TestRenderDegenerateRanges(t *testing.T) {
	var buf bytes.Buffer
	// Constant series: ranges are artificially widened, no division by 0.
	err := Render(&buf, Config{Width: 20, Height: 6},
		Series{Name: "flat", X: []float64{1, 1, 1}, Y: []float64{2, 2, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "flat") {
		t.Fatal("legend missing")
	}
}

func TestRenderClampsTinyCanvas(t *testing.T) {
	var buf bytes.Buffer
	err := Render(&buf, Config{Width: 1, Height: 1},
		Series{Name: "s", X: []float64{0, 1}, Y: []float64{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	// Clamped to minimum canvas: must not panic and must contain an axis.
	if !strings.Contains(buf.String(), "+") {
		t.Fatal("axis missing")
	}
}

func TestManySeriesMarkersCycle(t *testing.T) {
	var buf bytes.Buffer
	var series []Series
	for i := 0; i < 10; i++ {
		series = append(series, Series{
			Name: strings.Repeat("s", i+1),
			X:    []float64{0, 1},
			Y:    []float64{float64(i), float64(i + 1)},
		})
	}
	if err := Render(&buf, Config{}, series...); err != nil {
		t.Fatal(err)
	}
}

func TestFormatTick(t *testing.T) {
	if formatTick(1234.5) != "1235" && formatTick(1234.5) != "1234" {
		t.Fatalf("big tick = %q", formatTick(1234.5))
	}
	if formatTick(12.34) != "12.3" {
		t.Fatalf("mid tick = %q", formatTick(12.34))
	}
	if formatTick(0.1234) != "0.123" {
		t.Fatalf("small tick = %q", formatTick(0.1234))
	}
}

// Golden output for the CI-aware form: mean ± ci95 error bars, the
// rendering srlb-bench uses for replicated SweepStats series. The
// whisker spans y ± yerr with the series marker overprinting the center.
func TestRenderErrorBarsGolden(t *testing.T) {
	var buf bytes.Buffer
	err := Render(&buf, Config{Title: "mean rt vs load (error bars = ci95)", Width: 40, Height: 12, XLabel: "rho", YLabel: "rt(s)"},
		SeriesErr("RR", []float64{0.2, 0.5, 0.8}, []float64{0.12, 0.3, 1.0}, []float64{0.02, 0.08, 0.3}),
		SeriesErr("SR 4", []float64{0.2, 0.5, 0.8}, []float64{0.11, 0.18, 0.42}, []float64{0.01, 0.03, 0.1}),
	)
	if err != nil {
		t.Fatal(err)
	}
	golden := "mean rt vs load (error bars = ci95)\n" +
		"   1.300 |                                       |\n" +
		"         |                                       |\n" +
		"         |                                       |\n" +
		"         |                                       *\n" +
		"         |                                       |\n" +
		"         |                                       |\n" +
		"   rt(s) |                                       |\n" +
		"         |                                        \n" +
		"         |                                       |\n" +
		"         |                   |                   o\n" +
		"         |                   *                    \n" +
		"   0.100 |o                  o                    \n" +
		"         +----------------------------------------\n" +
		"          0.200             rho              0.800\n" +
		"          * RR   o SR 4\n"
	if got := buf.String(); got != golden {
		t.Fatalf("error-bar rendering drifted from golden:\ngot:\n%s\nwant:\n%s", got, golden)
	}
}

func TestRenderYErrValidation(t *testing.T) {
	var buf bytes.Buffer
	err := Render(&buf, Config{}, Series{Name: "bad", X: []float64{1, 2}, Y: []float64{1, 2}, YErr: []float64{0.1}})
	if err == nil {
		t.Fatal("mismatched YErr length accepted")
	}
	// The y-range must widen to include the whiskers: a flat line with
	// errors still renders without a degenerate range.
	if err := Render(&buf, Config{Width: 20, Height: 6},
		SeriesErr("flat", []float64{0, 1}, []float64{1, 1}, []float64{0.5, 0.5})); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "|") || !strings.Contains(out, "*") {
		t.Fatalf("whiskers missing:\n%s", out)
	}
}

func TestRenderFacets(t *testing.T) {
	var buf bytes.Buffer
	s := Series{Name: "RR", X: []float64{0, 1}, Y: []float64{1, 2}}
	err := RenderFacets(&buf, Config{Width: 24, Height: 6, XLabel: "rho"},
		Facet{Title: "web", Series: []Series{s}},
		Facet{Title: "batch", Series: []Series{s}},
	)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, title := range []string{"web", "batch"} {
		if !strings.Contains(out, title) {
			t.Fatalf("facet title %q missing:\n%s", title, out)
		}
	}
	// Facets are separated by a blank line (two consecutive newlines).
	if !strings.Contains(out, "\n\n") {
		t.Fatalf("no separator between facets:\n%s", out)
	}
	// A facet that fails to render propagates its error.
	bad := Series{Name: "bad", X: []float64{1}, Y: []float64{1, 2}}
	if err := RenderFacets(&buf, Config{}, Facet{Title: "x", Series: []Series{bad}}); err == nil {
		t.Fatal("facet rendering error not propagated")
	}
}
