// Package plot renders small ASCII line charts and CDFs of experiment
// series, so the regenerated figures can be inspected straight in a
// terminal — no gnuplot required. cmd/srlb-bench uses it behind -plot.
package plot

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one named line.
type Series struct {
	Name string
	// X and Y must have equal length.
	X, Y []float64
	// YErr, when non-nil, holds the per-point symmetric error half-width
	// (e.g. a 95% CI): point i renders a vertical bar spanning
	// Y[i] ± YErr[i], with the marker at the center. Must match Y's
	// length; zero entries draw no bar.
	YErr []float64
}

// SeriesErr builds a Series with error bars — the CI-aware form the
// replicated-sweep plots use.
func SeriesErr(name string, x, y, yerr []float64) Series {
	return Series{Name: name, X: x, Y: y, YErr: yerr}
}

// Facet is one titled chart of a multi-chart rendering.
type Facet struct {
	Title  string
	Series []Series
}

// RenderFacets draws several charts sharing one Config — e.g. the
// per-service breakdown of a multi-VIP sweep, one facet per service.
// Each facet's Title overrides cfg.Title; a blank line separates charts.
func RenderFacets(w io.Writer, cfg Config, facets ...Facet) error {
	for i, f := range facets {
		c := cfg
		c.Title = f.Title
		if i > 0 {
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
		if err := Render(w, c, f.Series...); err != nil {
			return err
		}
	}
	return nil
}

// markers label the lines in drawing order.
var markers = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// Config sizes the canvas. Zero values take defaults (72×20).
type Config struct {
	Width  int
	Height int
	Title  string
	XLabel string
	YLabel string
}

func (c Config) withDefaults() Config {
	if c.Width <= 0 {
		c.Width = 72
	}
	if c.Width < 16 {
		c.Width = 16
	}
	if c.Height <= 0 {
		c.Height = 20
	}
	if c.Height < 6 {
		c.Height = 6
	}
	return c
}

// Render draws the series onto one shared canvas.
func Render(w io.Writer, cfg Config, series ...Series) error {
	cfg = cfg.withDefaults()
	if len(series) == 0 {
		return fmt.Errorf("plot: no series")
	}
	var minX, maxX, minY, maxY float64
	first := true
	for _, s := range series {
		if len(s.X) != len(s.Y) {
			return fmt.Errorf("plot: series %q has %d x vs %d y", s.Name, len(s.X), len(s.Y))
		}
		if s.YErr != nil && len(s.YErr) != len(s.Y) {
			return fmt.Errorf("plot: series %q has %d y vs %d yerr", s.Name, len(s.Y), len(s.YErr))
		}
		for i := range s.X {
			if math.IsNaN(s.X[i]) || math.IsNaN(s.Y[i]) {
				continue
			}
			lo, hi := s.Y[i], s.Y[i]
			if e := s.err(i); e > 0 {
				lo, hi = lo-e, hi+e
			}
			if first {
				minX, maxX, minY, maxY = s.X[i], s.X[i], lo, hi
				first = false
				continue
			}
			minX = math.Min(minX, s.X[i])
			maxX = math.Max(maxX, s.X[i])
			minY = math.Min(minY, lo)
			maxY = math.Max(maxY, hi)
		}
	}
	if first {
		return fmt.Errorf("plot: all points NaN")
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	grid := make([][]byte, cfg.Height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", cfg.Width))
	}
	yRow := func(y float64) int {
		return cfg.Height - 1 - int((y-minY)/(maxY-minY)*float64(cfg.Height-1))
	}
	for si, s := range series {
		mark := markers[si%len(markers)]
		for i := range s.X {
			if math.IsNaN(s.X[i]) || math.IsNaN(s.Y[i]) {
				continue
			}
			col := int((s.X[i] - minX) / (maxX - minX) * float64(cfg.Width-1))
			row := yRow(s.Y[i])
			if e := s.err(i); e > 0 {
				// The CI whisker: a vertical bar from y−err to y+err; the
				// marker overprints the center.
				for r := yRow(s.Y[i] + e); r <= yRow(s.Y[i]-e); r++ {
					if grid[r][col] == ' ' {
						grid[r][col] = '|'
					}
				}
			}
			grid[row][col] = mark
		}
	}

	if cfg.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", cfg.Title); err != nil {
			return err
		}
	}
	yLo, yHi := formatTick(minY), formatTick(maxY)
	for r, line := range grid {
		label := strings.Repeat(" ", 9)
		switch r {
		case 0:
			label = fmt.Sprintf("%8s ", yHi)
		case cfg.Height - 1:
			label = fmt.Sprintf("%8s ", yLo)
		case cfg.Height / 2:
			if cfg.YLabel != "" {
				label = fmt.Sprintf("%8s ", trunc(cfg.YLabel, 8))
			}
		}
		if _, err := fmt.Fprintf(w, "%s|%s\n", label, string(line)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s+%s\n", strings.Repeat(" ", 9), strings.Repeat("-", cfg.Width)); err != nil {
		return err
	}
	xAxis := fmt.Sprintf("%s%s", strings.Repeat(" ", 10), formatTick(minX))
	right := formatTick(maxX)
	if cfg.XLabel != "" {
		mid := cfg.XLabel
		pad := cfg.Width - len(formatTick(minX)) - len(right) - len(mid)
		if pad < 2 {
			pad = 2
		}
		left := pad / 2
		xAxis += strings.Repeat(" ", left) + mid + strings.Repeat(" ", pad-left) + right
	} else {
		xAxis += strings.Repeat(" ", maxInt(2, cfg.Width-len(formatTick(minX))-len(right))) + right
	}
	if _, err := fmt.Fprintln(w, xAxis); err != nil {
		return err
	}
	// Legend.
	var legend []string
	for si, s := range series {
		legend = append(legend, fmt.Sprintf("%c %s", markers[si%len(markers)], s.Name))
	}
	_, err := fmt.Fprintf(w, "%s%s\n", strings.Repeat(" ", 10), strings.Join(legend, "   "))
	return err
}

// err returns the error half-width of point i (0 when absent or NaN).
func (s Series) err(i int) float64 {
	// Non-finite half-widths (the stats package's "unknown interval"
	// sentinel for n < 2) render as no bar, like an absent YErr.
	if s.YErr == nil || i >= len(s.YErr) || math.IsNaN(s.YErr[i]) || math.IsInf(s.YErr[i], 0) {
		return 0
	}
	return s.YErr[i]
}

func formatTick(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 1000:
		return fmt.Sprintf("%.0f", v)
	case av >= 10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

func trunc(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n]
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
