package plot

import (
	"math"
	"strings"
	"testing"
)

// gridHeatmap is the shared fixture: a 3×4 ρ-grid with one missing
// cell, the shape RhoGridResult.Heatmaps produces.
func gridHeatmap() Heatmap {
	return Heatmap{
		Title:  "RhoGrid[flowlet]: web p99 (s) over web-rho × batch-rho",
		XLabel: "batch rho",
		YLabel: "web rho",
		X:      []float64{0.05, 0.2, 0.35, 0.5},
		Y:      []float64{0.3, 0.55, 0.8},
		Z: [][]float64{
			{0.11, 0.12, 0.14, 0.18},
			{0.12, 0.15, 0.22, 0.35},
			{0.16, 0.28, 0.55, math.NaN()},
		},
	}
}

// TestRenderHeatmapGolden pins the renderer byte-for-byte, like
// TestRenderErrorBarsGolden does for Render: rows descend by Y tick
// (0.80 on top), the missing cell renders blank, and the legend maps
// the ramp endpoints back to values.
func TestRenderHeatmapGolden(t *testing.T) {
	var b strings.Builder
	if err := RenderHeatmap(&b, gridHeatmap()); err != nil {
		t.Fatal(err)
	}
	want := `RhoGrid[flowlet]: web p99 (s) over web-rho × batch-rho
    0.800 | :::   ===   @@@
web 0.550 | ...   :::   ---   +++
    0.300 | ...   ...   :::   :::
          +------------------------
           0.050 0.200 0.350 0.500
           batch rho
           scale: . = 0.110 .. @ = 0.550 (blank = missing)
`
	if got := b.String(); got != want {
		t.Errorf("heatmap mismatch\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestRenderHeatmapsFacets(t *testing.T) {
	a, c := gridHeatmap(), gridHeatmap()
	c.Title = "RhoGrid[random2]: web p99 (s) over web-rho × batch-rho"
	var b strings.Builder
	if err := RenderHeatmaps(&b, a, c); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if strings.Count(out, "scale:") != 2 {
		t.Fatalf("want two facets, got:\n%s", out)
	}
	if !strings.Contains(out, "\n\nRhoGrid[random2]") {
		t.Fatalf("facets must be separated by a blank line:\n%s", out)
	}
}

func TestRenderHeatmapPinnedScale(t *testing.T) {
	// A pinned [Min, Max] keeps glyphs comparable across facets: with a
	// shared scale of [0, 1.1], the 0.55 peak is mid-ramp, not '@'.
	h := gridHeatmap()
	h.Min, h.Max = 0, 1.1
	var b strings.Builder
	if err := RenderHeatmap(&b, h); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, line := range strings.Split(out, "\n") {
		if _, cells, ok := strings.Cut(line, "|"); ok && strings.Contains(cells, "@") {
			t.Fatalf("pinned scale must shift glyphs off the top of the ramp:\n%s", out)
		}
	}
	if !strings.Contains(out, "= 1.100") {
		t.Fatalf("legend must report the pinned maximum:\n%s", out)
	}
}

func TestRenderHeatmapValidation(t *testing.T) {
	if err := RenderHeatmap(&strings.Builder{}, Heatmap{}); err == nil {
		t.Fatal("empty heatmap must be rejected")
	}
	h := gridHeatmap()
	h.Z = h.Z[:2]
	if err := RenderHeatmap(&strings.Builder{}, h); err == nil {
		t.Fatal("row/tick mismatch must be rejected")
	}
	h = gridHeatmap()
	h.Z[1] = h.Z[1][:3]
	if err := RenderHeatmap(&strings.Builder{}, h); err == nil {
		t.Fatal("ragged Z row must be rejected")
	}
}

func TestRenderHeatmapFlatAndAllMissing(t *testing.T) {
	h := Heatmap{X: []float64{1, 2}, Y: []float64{1}, Z: [][]float64{{5, 5}}}
	var b strings.Builder
	if err := RenderHeatmap(&b, h); err != nil {
		t.Fatal(err)
	}
	mid := string(heatRamp[len(heatRamp)/2])
	if !strings.Contains(b.String(), strings.Repeat(mid, 3)) {
		t.Fatalf("flat field should render the middle glyph:\n%s", b.String())
	}
	h.Z = [][]float64{{math.NaN(), math.NaN()}}
	b.Reset()
	if err := RenderHeatmap(&b, h); err != nil {
		t.Fatal(err)
	}
	// Ramp glyphs may appear in labels and legend, but every grid cell
	// (after the "|" of a row line) must be blank.
	for _, line := range strings.Split(b.String(), "\n") {
		if _, cells, ok := strings.Cut(line, "|"); ok && strings.TrimSpace(cells) != "" {
			t.Fatalf("all-missing field must render blank cells, got row %q", line)
		}
	}
}
