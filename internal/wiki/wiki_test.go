package wiki

import (
	"bytes"
	"math"
	"testing"
	"time"

	"srlb/internal/ipv6"
	"srlb/internal/packet"
	"srlb/internal/trace"
)

func dummyFlow() packet.FlowKey {
	return packet.FlowKey{
		Src:     ipv6.MustAddr("2001:db8:c::1"),
		Dst:     ipv6.MustAddr("2001:db8:f00d::1"),
		SrcPort: 40000,
		DstPort: 80,
	}
}

func TestRateEnvelope(t *testing.T) {
	cfg := Config{}.withDefaults()
	peak := cfg.WikiRate(time.Duration(cfg.PeakHour * float64(time.Hour)))
	trough := cfg.WikiRate(time.Duration((cfg.PeakHour - 12) * float64(time.Hour)))
	wantPeak := cfg.ReplayScale * cfg.FullPeakRate
	wantTrough := cfg.ReplayScale * cfg.FullTroughRate
	if math.Abs(peak-wantPeak) > 0.5 {
		t.Fatalf("peak rate = %v, want %v", peak, wantPeak)
	}
	if math.Abs(trough-wantTrough) > 0.5 {
		t.Fatalf("trough rate = %v, want %v", trough, wantTrough)
	}
	// Max bound must dominate the whole day.
	maxRate := cfg.MaxWikiRate()
	for h := 0.0; h < 24; h += 0.25 {
		if r := cfg.WikiRate(time.Duration(h * float64(time.Hour))); r > maxRate {
			t.Fatalf("rate %v at hour %v exceeds MaxWikiRate %v", r, h, maxRate)
		}
	}
}

func TestStaticRateRatio(t *testing.T) {
	cfg := Config{}.withDefaults()
	at := 5 * time.Hour
	ratio := cfg.StaticRate(at) / cfg.WikiRate(at)
	if math.Abs(ratio-cfg.StaticPerWiki) > 1e-9 {
		t.Fatalf("static/wiki ratio = %v, want %v", ratio, cfg.StaticPerWiki)
	}
}

func TestPageURLRoundTrip(t *testing.T) {
	for _, id := range []int{0, 1, 42, 199_999} {
		page, ok := ParsePageURL(PageURL(id))
		if !ok || page != id {
			t.Fatalf("round trip failed for %d: %d %v", id, page, ok)
		}
	}
	if _, ok := ParsePageURL(StaticURL(3)); ok {
		t.Fatal("static URL parsed as page")
	}
	if _, ok := ParsePageURL("/wiki/index.php?title=Article_xyz"); ok {
		t.Fatal("garbage id parsed")
	}
	e := trace.Entry{URL: PageURL(1)}
	if !e.IsWikiPage() {
		t.Fatal("PageURL not classified as wiki page by trace")
	}
}

func TestSynthesizeShortWindow(t *testing.T) {
	cfg := Config{Seed: 1, Horizon: 10 * time.Minute}
	var buf bytes.Buffer
	w := trace.NewWriter(&buf)
	wikiN, statN, err := Synthesize(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	// Expected wiki ≈ rate(≈00:00-00:10) × 600s. Rate at midnight with
	// defaults: 0.5*(167 + 53·cos(2π(0-20)/24)) ≈ 0.5*(167+53*0.5) = 96.8/s.
	if wikiN < 40000 || wikiN > 75000 {
		t.Fatalf("wiki count = %d, out of plausible range", wikiN)
	}
	ratio := float64(statN) / float64(wikiN)
	if ratio < 3.6 || ratio > 4.4 {
		t.Fatalf("static/wiki = %v, want ≈4", ratio)
	}
	// The stream must be parseable and time-ordered (Reader enforces).
	entries, err := trace.ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != wikiN+statN {
		t.Fatalf("entries = %d, want %d", len(entries), wikiN+statN)
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	gen := func() string {
		var buf bytes.Buffer
		w := trace.NewWriter(&buf)
		if _, _, err := Synthesize(Config{Seed: 7, Horizon: time.Minute}, w); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if gen() != gen() {
		t.Fatal("synthesis not deterministic for fixed seed")
	}
}

func TestSizeFactorRangeAndDeterminism(t *testing.T) {
	for id := 0; id < 10000; id++ {
		f := SizeFactor(id)
		if f < 0.5 || f > 3.0 {
			t.Fatalf("SizeFactor(%d) = %v out of [0.5, 3]", id, f)
		}
		if f != SizeFactor(id) {
			t.Fatal("SizeFactor not deterministic")
		}
	}
}

func TestReplicaStaticVsWikiCosts(t *testing.T) {
	rep := NewReplica(1, CostModel{})
	var staticSum, wikiSum time.Duration
	const n = 2000
	for i := 0; i < n; i++ {
		staticSum += rep.DemandURL(StaticURL(i % 100))
	}
	for i := 0; i < n; i++ {
		wikiSum += rep.DemandURL(PageURL(i % 5000))
	}
	staticMean := staticSum / n
	wikiMean := wikiSum / n
	if staticMean > 2*time.Millisecond {
		t.Fatalf("static mean %v too expensive", staticMean)
	}
	if wikiMean < 50*time.Millisecond {
		t.Fatalf("wiki mean %v too cheap", wikiMean)
	}
	if wikiMean < 20*staticMean {
		t.Fatalf("wiki/static cost ratio too small: %v vs %v", wikiMean, staticMean)
	}
}

func TestReplicaCacheEffect(t *testing.T) {
	rep := NewReplica(2, CostModel{CacheCapacity: 100})
	// First touch of a page: miss. Subsequent touches: hits (page stays hot).
	page := PageURL(7)
	rep.DemandURL(page)
	if rep.HitRate() != 0 {
		t.Fatalf("first access hit rate = %v", rep.HitRate())
	}
	var hitSum time.Duration
	const n = 500
	for i := 0; i < n; i++ {
		hitSum += rep.DemandURL(page)
	}
	if rep.HitRate() < 0.99 {
		t.Fatalf("hit rate = %v after hammering one page", rep.HitRate())
	}
	// Hit cost must be well below a miss-heavy workload's cost.
	missRep := NewReplica(3, CostModel{CacheCapacity: 10})
	var missSum time.Duration
	for i := 0; i < n; i++ {
		missSum += missRep.DemandURL(PageURL(i + 1000)) // all distinct → all miss
	}
	if hitSum*2 >= missSum {
		t.Fatalf("cache hits not cheaper: hits %v vs misses %v", hitSum/n, missSum/n)
	}
}

func TestLRUCacheEviction(t *testing.T) {
	c := newLRU(3)
	c.insert(1)
	c.insert(2)
	c.insert(3)
	c.touch(1) // 1 hot; 2 is LRU
	c.insert(4)
	if c.Len() != 3 {
		t.Fatalf("len = %d", c.Len())
	}
	if c.touch(2) {
		t.Fatal("LRU page 2 survived eviction")
	}
	for _, p := range []int{1, 3, 4} {
		if !c.touch(p) {
			t.Fatalf("page %d wrongly evicted", p)
		}
	}
	// Duplicate insert is a no-op.
	c.insert(4)
	if c.Len() != 3 {
		t.Fatal("duplicate insert changed size")
	}
	// Degenerate capacity.
	d := newLRU(0)
	d.insert(1)
	if d.Len() != 1 {
		t.Fatal("capacity clamp failed")
	}
}

func TestDemandFactoryIndependentReplicas(t *testing.T) {
	factory := DemandFactory(Config{Seed: 9}, CostModel{CacheCapacity: 50})
	d0 := factory(0)
	d1 := factory(1)
	// Same URL, different replicas: costs drawn from independent streams.
	payload := append(make([]byte, 8), []byte(PageURL(1))...)
	a := d0(dummyFlow(), payload)
	b := d1(dummyFlow(), payload)
	if a == b {
		t.Fatal("replicas share an RNG stream (identical draws)")
	}
}

func TestReplicaDemandFromPayload(t *testing.T) {
	rep := NewReplica(4, CostModel{})
	payload := append(make([]byte, 8), []byte(StaticURL(1))...)
	d := rep.Demand(dummyFlow(), payload)
	if d <= 0 || d > 20*time.Millisecond {
		t.Fatalf("static demand via payload = %v", d)
	}
	// Short payload behaves as an unknown (static-class) request.
	if d := rep.Demand(dummyFlow(), nil); d <= 0 {
		t.Fatalf("empty payload demand = %v", d)
	}
}
