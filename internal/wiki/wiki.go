// Package wiki synthesizes the paper's Wikipedia replay workload (§VI).
//
// The original experiment replays 24 hours of real access traces (a 10%
// sample of wikipedia.org traffic, English-only) against 12 full MediaWiki
// + MySQL + memcached replicas. Neither the traces nor the enwiki database
// dump are available offline, so — per the reproduction's substitution
// rule — this package generates a synthetic day with the same structure:
//
//   - a diurnal request-rate envelope (trough around 08:00 UTC, evening
//     peak, ≈2:1 peak-to-trough ratio — the shape of figure 6's top plot),
//     realized as a nonhomogeneous Poisson process;
//   - two request classes: cheap static objects and CPU-intensive wiki
//     pages (the class the paper analyzes, "/wiki/index.php" URLs);
//   - Zipf page popularity over a large article catalog;
//   - a per-server memcached model (LRU): a page miss pays the MySQL
//     cost, a hit only the render cost — giving realistic heavy-tailed,
//     state-dependent service times per replica.
//
// The trace is replayed at a configurable scale; like the paper (which
// could sustain 50% of Wikipedia's sampled peak), the defaults put the
// evening peak near the testbed's measured capacity so the RR baseline
// visibly degrades while SR4 does not.
package wiki

import (
	"container/list"
	"fmt"
	"math"
	"math/rand/v2"
	"strconv"
	"strings"
	"time"

	"srlb/internal/packet"
	"srlb/internal/rng"
	"srlb/internal/trace"
	"srlb/internal/vrouter"
)

// Config parameterizes the synthetic day. Zero fields take defaults that
// reproduce the shapes of the paper's figures 6–8 on the 12-server
// testbed.
type Config struct {
	Seed uint64
	// Horizon is the trace length (default 24h).
	Horizon time.Duration
	// FullPeakRate/FullTroughRate are the raw trace's wiki-page rates in
	// queries/sec (defaults 250 and 125: replayed at 50% the evening peak lands at ~0.88 of the testbed capacity measured with the ~0.69-hit cache model).
	FullPeakRate   float64
	FullTroughRate float64
	// ReplayScale scales the raw trace at replay (default 0.5 — the
	// paper's "50% of the peak load").
	ReplayScale float64
	// PeakHour is the local hour of the rate maximum (default 20).
	PeakHour float64
	// StaticPerWiki is the ratio of static-object requests to wiki-page
	// requests (default 4).
	StaticPerWiki float64
	// Pages is the article catalog size (default 200_000).
	Pages int
	// ZipfS is the popularity exponent (default 0.8).
	ZipfS float64
	// StaticObjects is the static catalog size (default 20_000).
	StaticObjects int
	// Compression speeds up replay by the given factor: the simulated
	// horizon shrinks to Horizon/Compression while instantaneous rates
	// (and hence load levels) are preserved, so a 24-hour day can be
	// replayed in 1 simulated hour with Compression=24. Statistical noise
	// per time bin grows accordingly. Default 1 (real time).
	Compression float64
}

func (c Config) withDefaults() Config {
	if c.Horizon == 0 {
		c.Horizon = 24 * time.Hour
	}
	if c.FullPeakRate == 0 {
		c.FullPeakRate = 250
	}
	if c.FullTroughRate == 0 {
		c.FullTroughRate = 125
	}
	if c.ReplayScale == 0 {
		c.ReplayScale = 0.5
	}
	if c.PeakHour == 0 {
		c.PeakHour = 20
	}
	if c.StaticPerWiki == 0 {
		c.StaticPerWiki = 4
	}
	if c.Compression == 0 {
		c.Compression = 1
	}
	if c.Pages == 0 {
		// Scale the catalog with compression so the arrivals-per-page
		// ratio — and hence memcached hit-rate dynamics, which feed
		// straight into CPU demand — stays invariant: a compressed day
		// sees proportionally fewer queries, so it gets a proportionally
		// smaller catalog. Explicit Pages always wins.
		c.Pages = int(200_000 / c.Compression)
		if c.Pages < 2000 {
			c.Pages = 2000
		}
	}
	if c.ZipfS == 0 {
		c.ZipfS = 0.8
	}
	if c.StaticObjects == 0 {
		c.StaticObjects = 20_000
	}
	return c
}

// VirtualHorizon returns the simulated duration of the replay:
// Horizon / Compression.
func (c Config) VirtualHorizon() time.Duration {
	c = c.withDefaults()
	return time.Duration(float64(c.Horizon) / c.Compression)
}

// CatalogPages returns the effective article-catalog size after defaults
// (including compression scaling).
func (c Config) CatalogPages() int { return c.withDefaults().Pages }

// RealTime maps a virtual replay instant back to trace (wall-clock) time.
func (c Config) RealTime(virtual time.Duration) time.Duration {
	c = c.withDefaults()
	return time.Duration(float64(virtual) * c.Compression)
}

// WikiRate returns the replayed wiki-page arrival rate (queries/sec) at
// *virtual* time t: a sinusoid over the (possibly compressed) day with its
// minimum 12h before PeakHour, scaled by ReplayScale.
func (c Config) WikiRate(t time.Duration) float64 {
	c = c.withDefaults()
	mean := (c.FullPeakRate + c.FullTroughRate) / 2
	amp := (c.FullPeakRate - c.FullTroughRate) / 2
	hours := c.RealTime(t).Hours()
	phase := 2 * math.Pi * (hours - c.PeakHour) / 24
	return c.ReplayScale * (mean + amp*math.Cos(phase))
}

// StaticRate returns the static-object arrival rate at time t.
func (c Config) StaticRate(t time.Duration) float64 {
	cc := c.withDefaults()
	return cc.StaticPerWiki * c.WikiRate(t)
}

// MaxWikiRate bounds WikiRate over the horizon (for NHPP thinning).
func (c Config) MaxWikiRate() float64 {
	c = c.withDefaults()
	return c.ReplayScale * c.FullPeakRate * 1.0001
}

// PageURL renders the wiki-page URL for an article id — the paper
// identifies wiki pages "by the string /wiki/index.php in their URL".
func PageURL(page int) string {
	return fmt.Sprintf("/wiki/index.php?title=Article_%d", page)
}

// StaticURL renders a static-object URL.
func StaticURL(obj int) string {
	return fmt.Sprintf("/w/static/obj_%d.css", obj)
}

// ParsePageURL extracts the article id from a wiki-page URL; ok=false for
// static or foreign URLs.
func ParsePageURL(url string) (int, bool) {
	const marker = "/wiki/index.php?title=Article_"
	if !strings.HasPrefix(url, marker) {
		return 0, false
	}
	id, err := strconv.Atoi(url[len(marker):])
	if err != nil || id < 0 {
		return 0, false
	}
	return id, true
}

// Stream lazily generates the synthetic day's requests in time order by
// merging the wiki-page and static NHPP streams — memory use is O(1)
// regardless of trace length, so full 24-hour replays can be driven
// without materializing tens of millions of entries.
type Stream struct {
	cfg      Config
	zipf     *rng.Zipf
	statZipf *rng.Zipf
	wiki     *rng.NHPP
	static   *rng.NHPP
	nextWiki time.Duration
	nextStat time.Duration
	okW, okS bool
	wikiN    int
	statN    int
}

// NewStream starts a synthetic-day stream.
func NewStream(cfg Config) *Stream {
	cfg = cfg.withDefaults()
	s := &Stream{
		cfg:      cfg,
		zipf:     rng.NewZipf(rng.Split(cfg.Seed, 0x21bf), cfg.Pages, cfg.ZipfS),
		statZipf: rng.NewZipf(rng.Split(cfg.Seed, 0x57a8), cfg.StaticObjects, 0.6),
		wiki:     rng.NewNHPP(rng.Split(cfg.Seed, 0x71c1), cfg.WikiRate, cfg.MaxWikiRate(), 0),
		static:   rng.NewNHPP(rng.Split(cfg.Seed, 0x57a7), cfg.StaticRate, cfg.StaticPerWiki*cfg.MaxWikiRate(), 0),
	}
	s.nextWiki, s.okW = s.wiki.Next(cfg.VirtualHorizon())
	s.nextStat, s.okS = s.static.Next(cfg.VirtualHorizon())
	return s
}

// Next returns the next request and whether it is a wiki page; done=false
// at end of day.
func (s *Stream) Next() (e trace.Entry, isWiki bool, done bool) {
	switch {
	case !s.okW && !s.okS:
		return trace.Entry{}, false, true
	case s.okW && (!s.okS || s.nextWiki <= s.nextStat):
		e = trace.Entry{At: s.nextWiki, URL: PageURL(s.zipf.Draw())}
		s.wikiN++
		s.nextWiki, s.okW = s.wiki.Next(s.cfg.VirtualHorizon())
		return e, true, false
	default:
		e = trace.Entry{At: s.nextStat, URL: StaticURL(s.statZipf.Draw())}
		s.statN++
		s.nextStat, s.okS = s.static.Next(s.cfg.VirtualHorizon())
		return e, false, false
	}
}

// Counts reports how many wiki and static requests have been emitted.
func (s *Stream) Counts() (wiki, static int) { return s.wikiN, s.statN }

// Synthesize streams the synthetic day into w, merging the wiki-page and
// static NHPP streams in time order. It returns (wikiCount, staticCount).
func Synthesize(cfg Config, w *trace.Writer) (int, int, error) {
	s := NewStream(cfg)
	for {
		e, _, done := s.Next()
		if done {
			break
		}
		if err := w.Write(e); err != nil {
			wikiN, statN := s.Counts()
			return wikiN, statN, err
		}
	}
	wikiN, statN := s.Counts()
	return wikiN, statN, w.Flush()
}

// CostModel maps requests to CPU demand on a replica. Zero fields take
// defaults calibrated so the 12×(2-core) testbed shows the paper's
// response-time regime (§VI-C: wiki-page medians of 0.15–0.25 s under
// moderate load, ~1 ms statics).
type CostModel struct {
	// StaticMean is the CPU cost of a static object (default 600µs).
	StaticMean time.Duration
	// RenderMean/RenderCV: PHP parse+render cost of a wiki page
	// (default 70ms, cv 0.45), multiplied by the page's size factor.
	RenderMean time.Duration
	RenderCV   float64
	// HitMean: extra cost when the page's data is in memcached
	// (default 12ms).
	HitMean time.Duration
	// MissMean/MissCV: extra cost of MySQL queries on a memcached miss
	// (default 240ms, cv 0.6).
	MissMean time.Duration
	MissCV   float64
	// CacheCapacity is the per-server memcached capacity in pages
	// (default 8000).
	CacheCapacity int
	// Prewarm seeds the cache with the most popular pages (ranks
	// 0..CacheCapacity-1) at construction, modeling a long-running
	// memcached rather than a cold start. The replay experiments enable
	// it; default off so cache dynamics are observable from scratch.
	Prewarm bool
}

func (m CostModel) withDefaults() CostModel {
	if m.StaticMean == 0 {
		m.StaticMean = 600 * time.Microsecond
	}
	if m.RenderMean == 0 {
		m.RenderMean = 70 * time.Millisecond
	}
	if m.RenderCV == 0 {
		m.RenderCV = 0.45
	}
	if m.HitMean == 0 {
		m.HitMean = 12 * time.Millisecond
	}
	if m.MissMean == 0 {
		m.MissMean = 240 * time.Millisecond
	}
	if m.MissCV == 0 {
		m.MissCV = 0.6
	}
	if m.CacheCapacity == 0 {
		m.CacheCapacity = 8000
	}
	return m
}

// SizeFactor returns the deterministic per-article size multiplier in
// [0.5, 3.0], hashed from the article id (long articles render slower).
func SizeFactor(page int) float64 {
	// xorshift-style mix for a uniform-ish value in [0,1).
	x := uint64(page)*0x9e3779b97f4a7c15 + 0x7f4a7c15
	x ^= x >> 29
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 32
	u := float64(x%1_000_000) / 1_000_000
	// Skew towards small articles: square the uniform and stretch.
	return 0.5 + 2.5*u*u
}

// Replica models one server's cache-dependent cost function.
type Replica struct {
	model  CostModel
	cache  *lruCache
	rngSrc *rand.Rand
	hits   uint64
	misses uint64
}

// ScaledTo adjusts an unset CacheCapacity to one third of the page
// catalog: under Zipf(0.8) popularity the top third of articles draws
// ((1/3)^0.2 ≈) 80% of the traffic, so an LRU of that size yields the
// ≈0.8 steady-state hit rate of a production memcached in front of
// MySQL. Keeping the capacity-to-catalog ratio fixed makes hit rates —
// which feed straight into CPU demand and hence load — approximately
// invariant under trace compression. An explicitly set capacity wins.
func (m CostModel) ScaledTo(pages int) CostModel {
	if m.CacheCapacity == 0 && pages > 0 {
		m.CacheCapacity = pages / 3
		if m.CacheCapacity < 100 {
			m.CacheCapacity = 100
		}
	}
	return m.withDefaults()
}

// DemandFactory returns a per-server vrouter.DemandFn backed by
// independent replica caches — the wiki equivalent of the Poisson
// workload's DefaultDemand. The cache capacity is scaled to cfg's page
// catalog (see ScaledTo).
func DemandFactory(cfg Config, model CostModel) func(server int) vrouter.DemandFn {
	cfg = cfg.withDefaults()
	model = model.ScaledTo(cfg.Pages)
	return func(server int) vrouter.DemandFn {
		rep := NewReplica(cfg.Seed+uint64(server)*7919, model)
		return rep.Demand
	}
}

// NewReplica builds a replica cost model seeded independently.
func NewReplica(seed uint64, model CostModel) *Replica {
	model = model.withDefaults()
	rep := &Replica{
		model:  model,
		cache:  newLRU(model.CacheCapacity),
		rngSrc: rng.Split(seed, 0xcac4e),
	}
	if model.Prewarm {
		// Zipf rank i is page id i, so the popular head is 0..K-1. Insert
		// in reverse so rank 0 ends up most recently used.
		for page := model.CacheCapacity - 1; page >= 0; page-- {
			rep.cache.insert(page)
		}
	}
	return rep
}

// HitRate reports the replica's memcached hit fraction so far.
func (rep *Replica) HitRate() float64 {
	total := rep.hits + rep.misses
	if total == 0 {
		return 0
	}
	return float64(rep.hits) / float64(total)
}

// Demand implements vrouter.DemandFn over testbed payloads: the URL is
// carried after the 8-byte demand slot (which the wiki workload leaves
// zero — cost is server-state dependent and computed here).
func (rep *Replica) Demand(_ packet.FlowKey, payload []byte) time.Duration {
	url := ""
	if len(payload) > 8 {
		url = string(payload[8:])
	}
	return rep.DemandURL(url)
}

// DemandURL computes the CPU demand of serving url on this replica.
func (rep *Replica) DemandURL(url string) time.Duration {
	page, isWiki := ParsePageURL(url)
	if !isWiki {
		return rng.Exp(rep.rngSrc, rep.model.StaticMean)
	}
	render := time.Duration(float64(rng.LogNormal(rep.rngSrc, rep.model.RenderMean, rep.model.RenderCV)) * SizeFactor(page))
	var db time.Duration
	if rep.cache.touch(page) {
		rep.hits++
		db = rng.Exp(rep.rngSrc, rep.model.HitMean)
	} else {
		rep.misses++
		db = rng.LogNormal(rep.rngSrc, rep.model.MissMean, rep.model.MissCV)
		rep.cache.insert(page)
	}
	return render + db
}

// lruCache is a fixed-capacity LRU set of page ids (the memcached model).
type lruCache struct {
	cap   int
	list  *list.List
	index map[int]*list.Element
}

func newLRU(capacity int) *lruCache {
	if capacity < 1 {
		capacity = 1
	}
	return &lruCache{cap: capacity, list: list.New(), index: make(map[int]*list.Element)}
}

// touch returns true (and refreshes recency) when page is cached.
func (c *lruCache) touch(page int) bool {
	if el, ok := c.index[page]; ok {
		c.list.MoveToFront(el)
		return true
	}
	return false
}

// insert adds page, evicting the LRU entry at capacity.
func (c *lruCache) insert(page int) {
	if _, ok := c.index[page]; ok {
		return
	}
	if c.list.Len() >= c.cap {
		back := c.list.Back()
		delete(c.index, back.Value.(int))
		c.list.Remove(back)
	}
	c.index[page] = c.list.PushFront(page)
}

// Len returns the number of cached pages.
func (c *lruCache) Len() int { return c.list.Len() }
