package feedback

import (
	"net/netip"
	"testing"
	"time"
)

func addr(i int) netip.Addr {
	a := netip.MustParseAddr("2001:db8:beef::1")
	for j := 0; j < i; j++ {
		a = a.Next()
	}
	return a
}

func TestConfigDefaults(t *testing.T) {
	c := Config{Enabled: true}.WithDefaults()
	if c.Interval != 100*time.Millisecond {
		t.Fatalf("Interval = %v", c.Interval)
	}
	if c.TTL != 3*c.Interval {
		t.Fatalf("TTL = %v, want 3x interval", c.TTL)
	}
	if c.Alpha != 0.3 {
		t.Fatalf("Alpha = %v", c.Alpha)
	}
	// Explicit values survive; TTL defaults off the explicit interval.
	c = Config{Interval: time.Second, Alpha: 0.9}.WithDefaults()
	if c.Interval != time.Second || c.TTL != 3*time.Second || c.Alpha != 0.9 {
		t.Fatalf("explicit config mangled: %+v", c)
	}
}

func TestPublisherEWMA(t *testing.T) {
	p := NewPublisher(0.5)
	// First sample primes the filter — no warm-up bias toward zero.
	r := p.Sample(0, 8, 8, 3)
	if r.Util != 1.0 {
		t.Fatalf("primed util = %v, want 1.0", r.Util)
	}
	if r.Busy != 8 || r.Workers != 8 || r.Flows != 3 || r.At != 0 {
		t.Fatalf("report fields mangled: %+v", r)
	}
	// Second sample folds: 0.5*0 + 0.5*1.0.
	r = p.Sample(time.Second, 0, 8, 0)
	if r.Util != 0.5 {
		t.Fatalf("EWMA util = %v, want 0.5", r.Util)
	}
	// Zero workers reads as zero instantaneous load, not a divide.
	r = p.Sample(2*time.Second, 0, 0, 0)
	if r.Util != 0.25 {
		t.Fatalf("util after zero-worker sample = %v, want 0.25", r.Util)
	}
}

func TestViewFreshnessTTL(t *testing.T) {
	now := time.Duration(0)
	v := NewView(Config{Enabled: true}, func() time.Duration { return now })
	vip, s := addr(0), addr(1)
	vv := v.For(vip)

	// Never reported: unknown and stale.
	if load, fresh := vv.ServerLoad(s); load != 0 || fresh {
		t.Fatalf("unreported server = (%v, %v), want (0, false)", load, fresh)
	}

	v.Ingest(vip, s, Report{Util: 0.7, At: now})
	if load, fresh := vv.ServerLoad(s); load != 0.7 || !fresh {
		t.Fatalf("fresh report = (%v, %v), want (0.7, true)", load, fresh)
	}

	// Exactly at the TTL boundary the report still counts.
	ttl := v.Config().TTL
	now = ttl
	if _, fresh := vv.ServerLoad(s); !fresh {
		t.Fatal("report exactly TTL old must still be fresh")
	}

	// One tick past the TTL it goes stale — a silent server must stop
	// attracting load-aware traffic.
	now = ttl + time.Nanosecond
	if _, fresh := vv.ServerLoad(s); fresh {
		t.Fatal("report older than TTL must be stale")
	}

	// A fresh report recovers the server.
	v.Ingest(vip, s, Report{Util: 0.2, At: now})
	if load, fresh := vv.ServerLoad(s); load != 0.2 || !fresh {
		t.Fatalf("recovered report = (%v, %v), want (0.2, true)", load, fresh)
	}
}

func TestViewPerVIPIsolation(t *testing.T) {
	now := time.Duration(0)
	v := NewView(Config{Enabled: true}, func() time.Duration { return now })
	vipA, vipB, s := addr(0), addr(1), addr(2)
	v.Ingest(vipA, s, Report{Util: 0.9, At: now})
	if _, fresh := v.For(vipB).ServerLoad(s); fresh {
		t.Fatal("report for vipA leaked into vipB's view")
	}
	if load, fresh := v.For(vipA).ServerLoad(s); load != 0.9 || !fresh {
		t.Fatalf("vipA view = (%v, %v)", load, fresh)
	}
	// For returns a stable pointer — schemes capture it once.
	if v.For(vipA) != v.For(vipA) {
		t.Fatal("For must return a stable per-VIP projection")
	}
}

func TestViewIngestReplacesAndCounts(t *testing.T) {
	now := time.Duration(0)
	v := NewView(Config{Enabled: true}, func() time.Duration { return now })
	vip, s := addr(0), addr(1)
	v.Ingest(vip, s, Report{Util: 0.3, Flows: 1, At: 0})
	v.Ingest(vip, s, Report{Util: 0.6, Flows: 2, At: 0})
	if got := v.Stats().Ingests; got != 2 {
		t.Fatalf("Ingests = %d, want 2", got)
	}
	rpt, ok := v.For(vip).Report(s)
	if !ok || rpt.Util != 0.6 || rpt.Flows != 2 {
		t.Fatalf("Report = (%+v, %v), want the latest ingest", rpt, ok)
	}
	if _, ok := v.For(vip).Report(addr(9)); ok {
		t.Fatal("Report for an unknown server must report !ok")
	}
}

func TestViewIngestSteadyStateAllocs(t *testing.T) {
	now := time.Duration(0)
	v := NewView(Config{Enabled: true}, func() time.Duration { return now })
	vip := addr(0)
	srv := []netip.Addr{addr(1), addr(2), addr(3)}
	for _, s := range srv {
		v.Ingest(vip, s, Report{At: now})
	}
	allocs := testing.AllocsPerRun(200, func() {
		for _, s := range srv {
			v.Ingest(vip, s, Report{Util: 0.5, At: now})
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state Ingest allocates %.1f times per round, want 0", allocs)
	}
}
