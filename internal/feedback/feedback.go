// Package feedback implements the server-load telemetry plane: the
// out-of-band signaling channel that the paper's SR schemes deliberately
// avoid (§II uses only state local to each hop), but that the two natural
// competitors require — Charon-style load-aware weighted selection and
// host-driven flowlet re-steering both need each LB replica to know how
// busy every candidate server currently is.
//
// The plane is deliberately small: each vrouter/appserver owns a
// Publisher that samples its scoreboard (busy workers, open flows) on a
// configurable reporting interval and EWMA-smooths the utilization; the
// reports land in a per-LB View keyed by (VIP, server). Schemes read the
// view through its per-VIP projection (VIPView), which tracks freshness:
// a report older than the TTL answers fresh=false, and every load-aware
// consumer degrades to its load-oblivious fallback on any stale
// candidate — a silent server (crashed, partitioned, or drained) must
// never keep attracting traffic on the strength of an old "I'm idle"
// report.
//
// Determinism: reports are published by DES timers and stamped with the
// simulator clock — the plane performs no wall-clock reads and no
// background goroutines, so feedback-enabled runs stay byte-identical
// across host worker counts. Ingest reuses per-(VIP, server) slots after
// first contact, so the steady-state hot path allocates nothing
// (BenchmarkFeedbackIngest gates this).
package feedback

import (
	"net/netip"
	"time"
)

// Config tunes the telemetry plane. The zero value (Enabled=false)
// disables it entirely; enabled configs take defaults for zero fields.
type Config struct {
	// Enabled turns the plane on. When false the testbed publishes
	// nothing and schemes see a nil view (pure load-oblivious behavior,
	// zero hot-path cost).
	Enabled bool
	// Interval is the reporting period of every publisher (default
	// 100ms of virtual time).
	Interval time.Duration
	// TTL bounds how old a report may be and still count as fresh
	// (default 3×Interval): one missed report is jitter, three is an
	// outage.
	TTL time.Duration
	// Alpha is the EWMA smoothing factor applied to instantaneous
	// worker utilization, 0 < Alpha ≤ 1 (default 0.3). Higher values
	// track bursts faster; lower values damp sampling noise.
	Alpha float64
	// Horizon, when positive, stops the testbed's publishing tickers
	// after this much virtual time — the same bounded-tick idiom as
	// testbed.SampleLoads, so an otherwise-idle simulation terminates.
	// Experiments set it to their run horizon.
	Horizon time.Duration
}

// WithDefaults fills zero fields with the documented defaults.
func (c Config) WithDefaults() Config {
	if c.Interval <= 0 {
		c.Interval = 100 * time.Millisecond
	}
	if c.TTL <= 0 {
		c.TTL = 3 * c.Interval
	}
	if c.Alpha <= 0 || c.Alpha > 1 {
		c.Alpha = 0.3
	}
	return c
}

// Report is one server's load sample as published to the LBs.
type Report struct {
	// Busy and Workers are the scoreboard's instantaneous occupancy.
	Busy, Workers int
	// Flows is the server's open-connection count at sampling time.
	Flows int
	// Util is the EWMA-smoothed worker utilization (Busy/Workers run
	// through the publisher's filter) — the load score consumers rank
	// by.
	Util float64
	// At is the virtual time the sample was taken.
	At time.Duration
}

// Publisher is one server's report source: it owns the EWMA state so
// that utilization smoothing happens where the samples are taken, and
// every subscribed view receives identical numbers.
type Publisher struct {
	alpha  float64
	util   float64
	primed bool
}

// NewPublisher creates a publisher with the given smoothing factor
// (zero or out-of-range values take the Config default).
func NewPublisher(alpha float64) *Publisher {
	if alpha <= 0 || alpha > 1 {
		alpha = Config{}.WithDefaults().Alpha
	}
	return &Publisher{alpha: alpha}
}

// Sample folds the instantaneous scoreboard reading into the EWMA and
// returns the report to publish. The first sample primes the filter
// directly (no warm-up bias toward zero).
func (p *Publisher) Sample(now time.Duration, busy, workers, flows int) Report {
	inst := 0.0
	if workers > 0 {
		inst = float64(busy) / float64(workers)
	}
	if !p.primed {
		p.util = inst
		p.primed = true
	} else {
		p.util = p.alpha*inst + (1-p.alpha)*p.util
	}
	return Report{Busy: busy, Workers: workers, Flows: flows, Util: p.util, At: now}
}

// slot holds the latest report for one (VIP, server) pair. Slots are
// allocated on first contact and reused forever after — the ingest hot
// path is two map lookups and a struct copy.
type slot struct {
	rpt Report
	has bool
}

// Stats counts view activity.
type Stats struct {
	// Ingests is the total number of reports accepted.
	Ingests uint64
}

// View is one LB replica's subscription to the telemetry plane: the
// latest report per (VIP, server), with freshness judged against the
// caller-provided clock. Not safe for concurrent use (the simulator is
// single-threaded).
type View struct {
	cfg   Config
	now   func() time.Duration
	vips  map[netip.Addr]*VIPView
	stats Stats
}

// NewView creates a view. now must read the same clock that stamps the
// reports (the DES simulator's Now).
func NewView(cfg Config, now func() time.Duration) *View {
	return &View{
		cfg:  cfg.WithDefaults(),
		now:  now,
		vips: make(map[netip.Addr]*VIPView),
	}
}

// Config returns the view's resolved (defaulted) configuration.
func (v *View) Config() Config { return v.cfg }

// Stats returns a copy of the view counters.
func (v *View) Stats() Stats { return v.stats }

// For returns the per-VIP projection, creating it on first use. The
// pointer is stable for the view's lifetime, so schemes capture it once
// at construction.
func (v *View) For(vip netip.Addr) *VIPView {
	vv := v.vips[vip]
	if vv == nil {
		vv = &VIPView{view: v, slots: make(map[netip.Addr]*slot)}
		v.vips[vip] = vv
	}
	return vv
}

// Ingest records a report for (vip, server), replacing any previous
// one. Steady state (slots already exist) allocates nothing.
func (v *View) Ingest(vip, server netip.Addr, rpt Report) {
	vv := v.For(vip)
	s := vv.slots[server]
	if s == nil {
		s = &slot{}
		vv.slots[server] = s
	}
	s.rpt = rpt
	s.has = true
	v.stats.Ingests++
}

// Reset forgets every report the view has accumulated — a replica
// restarting after a failure comes back with no telemetry, exactly as a
// real process would, and every server answers stale until it reports
// again. Projections are cleared in place: the VIPView pointers handed
// out by For stay valid, so schemes built before the reset keep
// working (and correctly see nothing but staleness until the next
// publish tick). Stats are preserved — they count the view's lifetime,
// not the current contents.
func (v *View) Reset() {
	for _, vv := range v.vips {
		for server := range vv.slots {
			delete(vv.slots, server)
		}
	}
}

// VIPView is the per-VIP projection schemes consume; it implements
// selection.LoadView.
type VIPView struct {
	view  *View
	slots map[netip.Addr]*slot
}

// ServerLoad returns the server's last reported load score and whether
// that report is still fresh (within TTL of now). A server that never
// reported is (0, false); consumers must treat any stale candidate as a
// signal to fall back to load-oblivious behavior.
func (vv *VIPView) ServerLoad(server netip.Addr) (load float64, fresh bool) {
	s := vv.slots[server]
	if s == nil || !s.has {
		return 0, false
	}
	return s.rpt.Util, vv.view.now()-s.rpt.At <= vv.view.cfg.TTL
}

// Report returns the last raw report for the server, if any —
// inspection and test hook; the scheme-facing surface is ServerLoad.
func (vv *VIPView) Report(server netip.Addr) (Report, bool) {
	s := vv.slots[server]
	if s == nil || !s.has {
		return Report{}, false
	}
	return s.rpt, true
}
