package agent

import (
	"testing"

	"srlb/internal/appserver"
)

// fakeBoard is a settable scoreboard.
type fakeBoard struct {
	busy, total int
}

func (f *fakeBoard) BusyWorkers() int  { return f.busy }
func (f *fakeBoard) TotalWorkers() int { return f.total }

var _ appserver.Scoreboard = (*fakeBoard)(nil)

func TestStaticThreshold(t *testing.T) {
	p := NewStatic(4)
	sb := &fakeBoard{total: 32}
	for busy := 0; busy < 10; busy++ {
		sb.busy = busy
		got := p.Accept(sb)
		want := busy < 4
		if got != want {
			t.Fatalf("busy=%d: accept=%v, want %v", busy, got, want)
		}
	}
}

func TestStaticExtremes(t *testing.T) {
	sb := &fakeBoard{total: 32}
	zero := NewStatic(0)
	full := NewStatic(33) // n+1
	for busy := 0; busy <= 32; busy++ {
		sb.busy = busy
		if zero.Accept(sb) {
			t.Fatal("SR0 must refuse everything")
		}
		if !full.Accept(sb) {
			t.Fatal("SR(n+1) must accept everything")
		}
	}
}

func TestStaticName(t *testing.T) {
	if NewStatic(4).Name() != "SR4" || NewStatic(16).Name() != "SR16" {
		t.Fatal("static names wrong")
	}
}

func TestDynamicDefaults(t *testing.T) {
	p := NewDynamic(DynamicConfig{})
	if p.C() != 1 {
		t.Fatalf("initial c = %d, want 1", p.C())
	}
	if p.Name() != "SRdyn" {
		t.Fatalf("name = %q", p.Name())
	}
}

func TestDynamicRaisesCUnderRefusals(t *testing.T) {
	// Busy always ≥ c → all offers refused → ratio 0 < 0.4 → c++ per window.
	p := NewDynamic(DynamicConfig{InitialC: 1, WindowSize: 50})
	sb := &fakeBoard{busy: 32, total: 32}
	for i := 0; i < 50*5; i++ {
		p.Accept(sb)
	}
	if p.C() < 5 {
		t.Fatalf("c = %d after 5 windows of refusals, want ≥5", p.C())
	}
}

func TestDynamicCapsAtTotalWorkers(t *testing.T) {
	p := NewDynamic(DynamicConfig{InitialC: 1, WindowSize: 10})
	sb := &fakeBoard{busy: 4, total: 4}
	for i := 0; i < 10*100; i++ {
		p.Accept(sb)
	}
	if p.C() > 4 {
		t.Fatalf("c = %d, must not exceed n=4", p.C())
	}
}

func TestDynamicLowersCUnderAcceptance(t *testing.T) {
	// Busy always 0 → everything accepted → ratio 1 > 0.6 → c-- per
	// window. At the floor the algorithm oscillates by design: with c=0
	// nothing is accepted, the ratio drops below 0.4 and c comes back to
	// 1 — so steady idle state is c ∈ {0, 1}.
	p := NewDynamic(DynamicConfig{InitialC: 5, WindowSize: 50})
	sb := &fakeBoard{busy: 0, total: 32}
	for i := 0; i < 50*20; i++ {
		p.Accept(sb)
	}
	if p.C() > 1 {
		t.Fatalf("c = %d after steady acceptance, want ≤1", p.C())
	}
}

func TestDynamicStableInBand(t *testing.T) {
	// Exactly half the offers accepted → ratio 0.5 ∈ [0.4, 0.6] → c stays.
	p := NewDynamic(DynamicConfig{InitialC: 3, WindowSize: 50})
	sb := &fakeBoard{total: 32}
	for i := 0; i < 50*10; i++ {
		if i%2 == 0 {
			sb.busy = 0 // below c → accept
		} else {
			sb.busy = 10 // above c → refuse
		}
		p.Accept(sb)
	}
	if p.C() != 3 {
		t.Fatalf("c = %d, want stable 3", p.C())
	}
}

func TestDynamicConvergesToHalfRatio(t *testing.T) {
	// Simulated stationary busy distribution: busy uniform over [0, 8).
	// The policy should settle near c=4 where P(busy<c)≈1/2.
	p := NewDynamic(DynamicConfig{})
	sb := &fakeBoard{total: 32}
	seq := 0
	for i := 0; i < 50*200; i++ {
		sb.busy = seq % 8
		seq++
		p.Accept(sb)
	}
	if p.C() < 3 || p.C() > 5 {
		t.Fatalf("c = %d, want ≈4", p.C())
	}
}

func TestDynamicWindowExactness(t *testing.T) {
	// Adaptation must occur exactly at window boundaries.
	p := NewDynamic(DynamicConfig{InitialC: 1, WindowSize: 10})
	sb := &fakeBoard{busy: 31, total: 32}
	for i := 0; i < 9; i++ {
		p.Accept(sb)
		if p.C() != 1 {
			t.Fatalf("c changed mid-window at attempt %d", i)
		}
	}
	p.Accept(sb) // 10th decision crosses the boundary on the next call
	p.Accept(sb)
	if p.C() != 2 {
		t.Fatalf("c = %d after window of refusals, want 2", p.C())
	}
}

func TestAlwaysNever(t *testing.T) {
	sb := &fakeBoard{busy: 16, total: 32}
	if !(Always{}).Accept(sb) {
		t.Fatal("Always refused")
	}
	if (Never{}).Accept(sb) {
		t.Fatal("Never accepted")
	}
	if (Always{}).Name() != "Always" || (Never{}).Name() != "Never" {
		t.Fatal("names wrong")
	}
}

func TestDynamicCustomBand(t *testing.T) {
	p := NewDynamic(DynamicConfig{InitialC: 2, WindowSize: 4, LowRatio: 0.25, HighRatio: 0.75})
	sb := &fakeBoard{total: 8}
	// 2 accepts of 4 → ratio 0.5, inside [0.25, 0.75] → stable.
	pattern := []int{0, 0, 7, 7}
	for round := 0; round < 10; round++ {
		for _, b := range pattern {
			sb.busy = b
			p.Accept(sb)
		}
	}
	if p.C() != 2 {
		t.Fatalf("c = %d, want 2", p.C())
	}
}
