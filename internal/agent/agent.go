// Package agent implements the paper's connection acceptance policies
// (§III): the application agent that sits next to the virtual router on
// every server and decides, from local state only, whether the application
// instance should accept a hunted connection.
//
// The agent reads the busy-worker count from the server's scoreboard
// (Apache's scoreboard shared memory in the paper, §IV-B) — a local read
// with no system call and no out-of-band signaling.
package agent

import (
	"fmt"

	"srlb/internal/appserver"
)

// Policy decides whether the first candidate of an SR list accepts a new
// connection. Implementations may keep state (SRdyn does); they are
// invoked only for packets on which the server has a real choice
// (SegmentsLeft = 2 in the two-candidate deployment — the penultimate
// segment must always accept, which the virtual router enforces without
// consulting the policy).
type Policy interface {
	// Accept reports whether the application should take the connection,
	// given the scoreboard. Implementations may mutate internal state
	// (windowed counters), so Accept is called exactly once per decision.
	Accept(sb appserver.Scoreboard) bool
	// Name returns the policy's display name (e.g. "SR4", "SRdyn").
	Name() string
}

// Static is Algorithm 1 (SRc): accept if and only if fewer than C worker
// threads are busy. C=0 refuses everything (second candidate serves);
// C=n+1 accepts everything (first candidate serves). Both extremes
// degenerate to random load balancing, as §III-A notes.
type Static struct {
	C int
}

// NewStatic returns the SRc policy with threshold c.
func NewStatic(c int) *Static { return &Static{C: c} }

// Accept implements Policy.
func (p *Static) Accept(sb appserver.Scoreboard) bool {
	return sb.BusyWorkers() < p.C
}

// Name implements Policy.
func (p *Static) Name() string { return fmt.Sprintf("SR%d", p.C) }

// DynamicConfig parameterizes SRdyn. Zero fields take the paper's values.
type DynamicConfig struct {
	InitialC   int     // initial threshold (paper: 1)
	WindowSize int     // decisions per adaptation window (paper: 50)
	LowRatio   float64 // increment c when acceptance ratio < LowRatio (paper: 0.4)
	HighRatio  float64 // decrement c when acceptance ratio > HighRatio (paper: 0.6)
}

func (c DynamicConfig) withDefaults() DynamicConfig {
	if c.InitialC == 0 {
		c.InitialC = 1
	}
	if c.WindowSize == 0 {
		c.WindowSize = 50
	}
	if c.LowRatio == 0 {
		c.LowRatio = 0.4
	}
	if c.HighRatio == 0 {
		c.HighRatio = 0.6
	}
	return c
}

// Dynamic is Algorithm 2 (SRdyn): the threshold c is adapted so that the
// local acceptance ratio stays near ½, maximizing the information carried
// by each two-candidate choice. Decisions are recorded over a fixed window
// of first-choice offers; at the end of each window, c is incremented if
// the acceptance ratio fell below LowRatio (too many refusals: raise the
// bar... rather, admit more) and decremented if it exceeded HighRatio.
type Dynamic struct {
	cfg      DynamicConfig
	c        int
	accepted int
	attempt  int
}

// NewDynamic returns an SRdyn policy. Zero-value config fields take the
// paper's defaults (c0=1, window=50, band [0.4, 0.6]).
func NewDynamic(cfg DynamicConfig) *Dynamic {
	cfg = cfg.withDefaults()
	return &Dynamic{cfg: cfg, c: cfg.InitialC}
}

// C returns the current threshold (exported for tests and telemetry).
func (p *Dynamic) C() int { return p.c }

// Accept implements Policy — a verbatim transcription of Algorithm 2.
func (p *Dynamic) Accept(sb appserver.Scoreboard) bool {
	p.attempt++
	if p.attempt >= p.cfg.WindowSize {
		// End of window: adapt c if needed and reset.
		ratio := float64(p.accepted) / float64(p.cfg.WindowSize)
		n := sb.TotalWorkers()
		if ratio < p.cfg.LowRatio && p.c < n {
			p.c++
		} else if ratio > p.cfg.HighRatio && p.c > 0 {
			p.c--
		}
		p.attempt = 0
		p.accepted = 0
	}
	if sb.BusyWorkers() < p.c {
		p.accepted++
		return true
	}
	return false
}

// Name implements Policy.
func (p *Dynamic) Name() string { return "SRdyn" }

// Always accepts every offer — with two candidates this makes the first
// candidate serve everything, i.e. random load balancing (it is also the
// behavior of SRc with c = n+1).
type Always struct{}

// Accept implements Policy.
func (Always) Accept(appserver.Scoreboard) bool { return true }

// Name implements Policy.
func (Always) Name() string { return "Always" }

// Never refuses every offer, pushing all traffic to the second candidate.
type Never struct{}

// Accept implements Policy.
func (Never) Accept(appserver.Scoreboard) bool { return false }

// Name implements Policy.
func (Never) Name() string { return "Never" }

// Interface compliance checks.
var (
	_ Policy = (*Static)(nil)
	_ Policy = (*Dynamic)(nil)
	_ Policy = Always{}
	_ Policy = Never{}
)
