// Package appserver models the paper's application servers (§IV-C): an
// Apache HTTP server with mpm_prefork, 32 worker threads and a TCP backlog
// of 128, running inside a 2-core VM, with the Linux
// tcp_abort_on_overflow behavior (RST instead of silent drop when the
// accept queue is full).
//
// The service is CPU-bound (the paper's workload is a PHP busy loop), so a
// server with k busy workers runs each of them at min(1, cores/k) of a
// core: egalitarian processor sharing. This contention is the mechanism
// behind the paper's entire evaluation — a random load balancer piles
// tens of connections on one box (slowing each by 10×+) while another box
// idles, and the power-of-two-choices acceptance policy prevents exactly
// that.
//
// The processor-sharing engine is event-exact: on every arrival and
// departure the remaining work of in-service requests is settled against
// elapsed virtual time, and the next completion is rescheduled. Cost is
// O(workers) per event with workers ≤ 32, which is negligible.
package appserver

import (
	"fmt"
	"sort"
	"time"

	"srlb/internal/des"
)

// Config describes one application server. The defaults (via Default) are
// the paper's testbed values.
type Config struct {
	Workers int     // worker threads (paper: 32)
	Cores   float64 // CPU cores shared by the workers (paper: 2)
	Backlog int     // accept-queue capacity (paper: 128)
	// AbortOnOverflow mirrors tcp_abort_on_overflow=1: a connection
	// arriving to a full backlog is rejected immediately (RST) instead of
	// being silently dropped.
	AbortOnOverflow bool
}

// Default returns the paper's server configuration.
func Default() Config {
	return Config{Workers: 32, Cores: 2, Backlog: 128, AbortOnOverflow: true}
}

func (c Config) validate() error {
	if c.Workers <= 0 {
		return fmt.Errorf("appserver: Workers must be positive, got %d", c.Workers)
	}
	if c.Cores <= 0 {
		return fmt.Errorf("appserver: Cores must be positive, got %v", c.Cores)
	}
	if c.Backlog < 0 {
		return fmt.Errorf("appserver: Backlog must be non-negative, got %d", c.Backlog)
	}
	return nil
}

// Verdict is the outcome of offering a connection to the server.
type Verdict int

// Connection admission outcomes.
const (
	// Admitted: a worker slot or backlog slot was taken; the handshake
	// completes and the request will eventually be served.
	Admitted Verdict = iota + 1
	// Rejected: backlog full with AbortOnOverflow — the caller should
	// emit a TCP RST.
	Rejected
	// DroppedSilently: backlog full without AbortOnOverflow — the SYN is
	// ignored (the client would retransmit; the simulation records it).
	DroppedSilently
)

func (v Verdict) String() string {
	switch v {
	case Admitted:
		return "admitted"
	case Rejected:
		return "rejected"
	case DroppedSilently:
		return "dropped"
	default:
		return fmt.Sprintf("Verdict(%d)", int(v))
	}
}

// Request is one admitted connection's work item.
type request struct {
	id        uint64
	demand    time.Duration // total CPU time required
	remaining float64       // CPU-seconds still owed
	started   time.Duration
	onDone    func()
}

// Scoreboard is the shared-memory view the paper's server agent reads
// (§IV-B): the number of busy worker threads, available to the virtual
// router at zero cost. It is satisfied by *Server.
type Scoreboard interface {
	// BusyWorkers returns the number of workers currently serving (or
	// assigned to) a connection.
	BusyWorkers() int
	// TotalWorkers returns the size of the worker pool.
	TotalWorkers() int
}

// Stats aggregates server-side accounting.
type Stats struct {
	Admitted  uint64
	Rejected  uint64
	Dropped   uint64
	Completed uint64
	// BusyTime integrates busy-worker-seconds, for utilization reports.
	BusyTime time.Duration
	// CPUTime integrates CPU-seconds actually granted.
	CPUTime time.Duration
}

// Server is the processor-sharing application server.
type Server struct {
	cfg  Config
	sim  *des.Simulator
	name string

	inService map[uint64]*request
	backlog   []*request
	nextID    uint64

	lastSettle  time.Duration
	nextDone    *des.Timer
	lastBusyAcc time.Duration

	stats Stats
}

// New creates a server bound to the simulator. Invalid configs panic:
// server construction is static testbed setup.
func New(sim *des.Simulator, name string, cfg Config) *Server {
	if err := cfg.validate(); err != nil {
		panic(err)
	}
	return &Server{
		cfg:       cfg,
		sim:       sim,
		name:      name,
		inService: make(map[uint64]*request, cfg.Workers),
	}
}

// Name returns the server's display name.
func (s *Server) Name() string { return s.name }

// Config returns the server's configuration.
func (s *Server) Config() Config { return s.cfg }

// Stats returns a copy of the server's counters.
func (s *Server) Stats() Stats { return s.stats }

// BusyWorkers implements Scoreboard: workers currently serving.
func (s *Server) BusyWorkers() int { return len(s.inService) }

// TotalWorkers implements Scoreboard.
func (s *Server) TotalWorkers() int { return s.cfg.Workers }

// QueueLen returns the number of connections waiting in the backlog.
func (s *Server) QueueLen() int { return len(s.backlog) }

// Utilization returns the fraction of CPU capacity used since t0.
func (s *Server) Utilization(since time.Duration) float64 {
	elapsed := s.sim.Now() - since
	if elapsed <= 0 {
		return 0
	}
	return float64(s.stats.CPUTime) / (float64(elapsed) * s.cfg.Cores)
}

// Offer presents a new connection with the given CPU demand. onDone fires
// when the response has been computed (the caller then sends the response
// packet). The verdict tells the caller whether to continue the handshake,
// RST, or stay silent.
func (s *Server) Offer(demand time.Duration, onDone func()) Verdict {
	if demand < 0 {
		demand = 0
	}
	s.settle()
	req := &request{
		id:        s.nextID,
		demand:    demand,
		remaining: demand.Seconds(),
		started:   s.sim.Now(),
		onDone:    onDone,
	}
	s.nextID++
	if len(s.inService) < s.cfg.Workers {
		s.stats.Admitted++
		s.inService[req.id] = req
		s.reschedule()
		return Admitted
	}
	if len(s.backlog) < s.cfg.Backlog {
		s.stats.Admitted++
		s.backlog = append(s.backlog, req)
		return Admitted
	}
	if s.cfg.AbortOnOverflow {
		s.stats.Rejected++
		return Rejected
	}
	s.stats.Dropped++
	return DroppedSilently
}

// rate returns the per-request CPU rate (CPU-seconds per second).
func (s *Server) rate() float64 {
	k := len(s.inService)
	if k == 0 {
		return 0
	}
	if float64(k) <= s.cfg.Cores {
		return 1
	}
	return s.cfg.Cores / float64(k)
}

// settle charges elapsed virtual time against remaining work.
func (s *Server) settle() {
	now := s.sim.Now()
	dt := (now - s.lastSettle).Seconds()
	s.lastSettle = now
	if dt <= 0 || len(s.inService) == 0 {
		return
	}
	r := s.rate()
	granted := r * dt
	for _, req := range s.inService {
		req.remaining -= granted
		if req.remaining < 0 {
			req.remaining = 0
		}
	}
	s.stats.CPUTime += time.Duration(float64(len(s.inService)) * granted * float64(time.Second))
	s.stats.BusyTime += time.Duration(float64(len(s.inService)) * dt * float64(time.Second))
}

// reschedule plans the next completion event.
func (s *Server) reschedule() {
	if s.nextDone != nil {
		s.sim.Cancel(s.nextDone)
		s.nextDone = nil
	}
	if len(s.inService) == 0 {
		return
	}
	minRemaining := -1.0
	for _, req := range s.inService {
		if minRemaining < 0 || req.remaining < minRemaining {
			minRemaining = req.remaining
		}
	}
	r := s.rate()
	wait := time.Duration(minRemaining / r * float64(time.Second))
	// Clamp to the simulator's 1ns clock grid: a sub-nanosecond residual
	// would otherwise truncate to a zero-delay timer whose settle() grants
	// zero work — an infinite loop at one instant.
	if wait < 1 {
		wait = 1
	}
	s.nextDone = s.sim.After(wait, s.complete)
}

// complete settles work and finishes every request that has none left.
func (s *Server) complete() {
	s.nextDone = nil
	s.settle()
	const eps = 1e-12 // FP slack: half a picosecond of CPU work
	var done []*request
	for id, req := range s.inService {
		if req.remaining <= eps {
			done = append(done, req)
			delete(s.inService, id)
		}
	}
	// Promote backlog into freed worker slots (FIFO, like the kernel
	// accept queue).
	for len(s.backlog) > 0 && len(s.inService) < s.cfg.Workers {
		req := s.backlog[0]
		s.backlog = s.backlog[1:]
		s.inService[req.id] = req
	}
	s.reschedule()
	// Map iteration order is randomized; sort by admission id so that
	// completion callbacks (and hence packet emission) are deterministic.
	sort.Slice(done, func(i, j int) bool { return done[i].id < done[j].id })
	for _, req := range done {
		s.stats.Completed++
		if req.onDone != nil {
			req.onDone()
		}
	}
}
