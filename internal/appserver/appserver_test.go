package appserver

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"srlb/internal/des"
	"srlb/internal/rng"
)

func TestSingleRequestFullSpeed(t *testing.T) {
	sim := des.New()
	s := New(sim, "s1", Config{Workers: 4, Cores: 2, Backlog: 8, AbortOnOverflow: true})
	var doneAt time.Duration
	v := s.Offer(100*time.Millisecond, func() { doneAt = sim.Now() })
	if v != Admitted {
		t.Fatalf("verdict = %v", v)
	}
	if s.BusyWorkers() != 1 {
		t.Fatalf("busy = %d", s.BusyWorkers())
	}
	sim.Run()
	if doneAt != 100*time.Millisecond {
		t.Fatalf("done at %v, want 100ms (single request runs at full core speed)", doneAt)
	}
	if s.BusyWorkers() != 0 {
		t.Fatal("worker not released")
	}
}

func TestTwoRequestsTwoCoresNoSlowdown(t *testing.T) {
	sim := des.New()
	s := New(sim, "s1", Default())
	var d1, d2 time.Duration
	s.Offer(100*time.Millisecond, func() { d1 = sim.Now() })
	s.Offer(100*time.Millisecond, func() { d2 = sim.Now() })
	sim.Run()
	if d1 != 100*time.Millisecond || d2 != 100*time.Millisecond {
		t.Fatalf("d1=%v d2=%v, want both 100ms (2 cores)", d1, d2)
	}
}

func TestProcessorSharingSlowdown(t *testing.T) {
	// 4 equal requests on 2 cores: each runs at rate 1/2 → takes 2× demand.
	sim := des.New()
	s := New(sim, "s1", Default())
	var done []time.Duration
	for i := 0; i < 4; i++ {
		s.Offer(100*time.Millisecond, func() { done = append(done, sim.Now()) })
	}
	sim.Run()
	if len(done) != 4 {
		t.Fatalf("completed %d", len(done))
	}
	for _, d := range done {
		if d != 200*time.Millisecond {
			t.Fatalf("done at %v, want 200ms", d)
		}
	}
}

func TestStaggeredArrivalSettling(t *testing.T) {
	// Request A (100ms demand) alone on 2 cores for 50ms (half done),
	// then B and C arrive (3 jobs, rate 2/3 each).
	// A needs 50ms more work at rate 2/3 → 75ms more → done at 125ms.
	sim := des.New()
	s := New(sim, "s1", Default())
	var aDone time.Duration
	s.Offer(100*time.Millisecond, func() { aDone = sim.Now() })
	sim.After(50*time.Millisecond, func() {
		s.Offer(200*time.Millisecond, nil)
		s.Offer(200*time.Millisecond, nil)
	})
	sim.Run()
	want := 125 * time.Millisecond
	if diff := aDone - want; diff < -time.Microsecond || diff > time.Microsecond {
		t.Fatalf("A done at %v, want %v", aDone, want)
	}
}

func TestBacklogAndPromotion(t *testing.T) {
	sim := des.New()
	cfg := Config{Workers: 1, Cores: 1, Backlog: 2, AbortOnOverflow: true}
	s := New(sim, "s1", cfg)
	var order []int
	for i := 0; i < 3; i++ {
		i := i
		if v := s.Offer(10*time.Millisecond, func() { order = append(order, i) }); v != Admitted {
			t.Fatalf("offer %d verdict = %v", i, v)
		}
	}
	if s.BusyWorkers() != 1 || s.QueueLen() != 2 {
		t.Fatalf("busy=%d queue=%d", s.BusyWorkers(), s.QueueLen())
	}
	// Fourth offer overflows.
	if v := s.Offer(10*time.Millisecond, nil); v != Rejected {
		t.Fatalf("overflow verdict = %v, want Rejected", v)
	}
	sim.Run()
	if len(order) != 3 {
		t.Fatalf("completed %d", len(order))
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("FIFO violated: %v", order)
		}
	}
	st := s.Stats()
	if st.Admitted != 3 || st.Rejected != 1 || st.Completed != 3 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSilentDropWithoutAbort(t *testing.T) {
	sim := des.New()
	cfg := Config{Workers: 1, Cores: 1, Backlog: 0, AbortOnOverflow: false}
	s := New(sim, "s1", cfg)
	s.Offer(time.Millisecond, nil)
	if v := s.Offer(time.Millisecond, nil); v != DroppedSilently {
		t.Fatalf("verdict = %v, want DroppedSilently", v)
	}
	if s.Stats().Dropped != 1 {
		t.Fatal("drop not counted")
	}
}

func TestZeroDemandCompletesImmediately(t *testing.T) {
	sim := des.New()
	s := New(sim, "s1", Default())
	done := false
	s.Offer(0, func() { done = true })
	sim.Run()
	if !done {
		t.Fatal("zero-demand request never completed")
	}
	// The completion timer is clamped to the 1ns clock grid.
	if sim.Now() > time.Nanosecond {
		t.Fatalf("completed at %v, want ≤1ns", sim.Now())
	}
	// Negative demand is clamped.
	done = false
	s.Offer(-time.Second, func() { done = true })
	sim.Run()
	if !done {
		t.Fatal("negative-demand request never completed")
	}
}

func TestScoreboardInterfaceCompliance(t *testing.T) {
	var _ Scoreboard = (*Server)(nil)
	sim := des.New()
	s := New(sim, "s1", Default())
	if s.TotalWorkers() != 32 {
		t.Fatalf("total workers = %d", s.TotalWorkers())
	}
}

func TestVerdictString(t *testing.T) {
	if Admitted.String() != "admitted" || Rejected.String() != "rejected" ||
		DroppedSilently.String() != "dropped" {
		t.Fatal("verdict strings wrong")
	}
	if Verdict(42).String() == "" {
		t.Fatal("unknown verdict should still render")
	}
}

func TestBadConfigPanics(t *testing.T) {
	cases := []Config{
		{Workers: 0, Cores: 1, Backlog: 1},
		{Workers: 1, Cores: 0, Backlog: 1},
		{Workers: 1, Cores: 1, Backlog: -1},
	}
	for _, cfg := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("config %+v should panic", cfg)
				}
			}()
			New(des.New(), "bad", cfg)
		}()
	}
}

// TestWorkConservation: total CPU granted can never exceed cores × elapsed
// time, and equals total demand when everything completes.
func TestWorkConservation(t *testing.T) {
	f := func(demands []uint16, seed uint64) bool {
		if len(demands) == 0 {
			return true
		}
		if len(demands) > 200 {
			demands = demands[:200]
		}
		sim := des.New()
		s := New(sim, "s1", Default())
		r := rng.New(seed)
		var totalDemand time.Duration
		completed := 0
		for _, d := range demands {
			demand := time.Duration(d) * 10 * time.Microsecond
			at := rng.Uniform(r, 0, 50*time.Millisecond)
			sim.At(at, func() {
				if s.Offer(demand, func() { completed++ }) == Admitted {
					totalDemand += demand
				}
			})
		}
		sim.Run()
		st := s.Stats()
		elapsed := sim.Now()
		if float64(st.CPUTime) > float64(elapsed)*s.Config().Cores*1.0001+1000 {
			return false // more CPU granted than exists
		}
		// All admitted must complete, and CPU granted == total demand.
		if st.Completed != st.Admitted {
			return false
		}
		diff := math.Abs(float64(st.CPUTime - totalDemand))
		return diff < float64(time.Millisecond) // FP slack
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestBusyCountMatchesInService tracks the scoreboard against a reference
// count through a random schedule.
func TestBusyCountMatchesInService(t *testing.T) {
	sim := des.New()
	s := New(sim, "s1", Config{Workers: 4, Cores: 2, Backlog: 100, AbortOnOverflow: true})
	r := rng.New(42)
	inFlight := 0
	maxBusy := 0
	for i := 0; i < 500; i++ {
		at := rng.Uniform(r, 0, time.Second)
		demand := rng.Exp(r, 5*time.Millisecond)
		sim.At(at, func() {
			if s.Offer(demand, func() { inFlight-- }) == Admitted {
				inFlight++
			}
			if b := s.BusyWorkers(); b > maxBusy {
				maxBusy = b
			}
			if s.BusyWorkers() > s.TotalWorkers() {
				t.Fatal("busy exceeds worker pool")
			}
			if s.BusyWorkers()+s.QueueLen() != inFlight {
				t.Fatalf("busy+queue=%d, in-flight=%d", s.BusyWorkers()+s.QueueLen(), inFlight)
			}
		})
	}
	sim.Run()
	if inFlight != 0 {
		t.Fatalf("in-flight = %d at end", inFlight)
	}
	if maxBusy != 4 {
		t.Logf("note: maxBusy=%d (load may not have saturated)", maxBusy)
	}
}

func TestUtilization(t *testing.T) {
	sim := des.New()
	s := New(sim, "s1", Config{Workers: 8, Cores: 2, Backlog: 8, AbortOnOverflow: true})
	// Keep both cores busy for exactly 1s: 4 requests of 500ms CPU each.
	for i := 0; i < 4; i++ {
		s.Offer(500*time.Millisecond, nil)
	}
	sim.Run()
	if sim.Now() != time.Second {
		t.Fatalf("finished at %v, want 1s", sim.Now())
	}
	u := s.Utilization(0)
	if math.Abs(u-1.0) > 0.001 {
		t.Fatalf("utilization = %v, want 1.0", u)
	}
}

// TestThroughputCeiling: a server cannot complete more CPU-work per second
// than it has cores — the foundation of the λ0 calibration.
func TestThroughputCeiling(t *testing.T) {
	sim := des.New()
	s := New(sim, "s1", Default())
	r := rng.New(7)
	completed := 0
	// Offered load: 40 req/s × 100ms = 4 CPU-seconds/sec on 2 cores (2× overload).
	p := rng.NewPoisson(r, 40, 0)
	for {
		at := p.Next()
		if at > 30*time.Second {
			break
		}
		sim.At(at, func() {
			s.Offer(rng.Exp(r, 100*time.Millisecond), func() { completed++ })
		})
	}
	sim.RunUntil(30 * time.Second)
	// Max completions ≈ cores/meanDemand × 30s = 2/0.1×30 = 600.
	if completed > 660 {
		t.Fatalf("completed %d requests in 30s, exceeds 2-core ceiling ≈600", completed)
	}
	if completed < 400 {
		t.Fatalf("completed only %d, server is underperforming", completed)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []time.Duration {
		sim := des.New()
		s := New(sim, "s1", Default())
		r := rng.New(123)
		var done []time.Duration
		for i := 0; i < 200; i++ {
			at := rng.Uniform(r, 0, time.Second)
			demand := rng.Exp(r, 20*time.Millisecond)
			sim.At(at, func() {
				s.Offer(demand, func() { done = append(done, sim.Now()) })
			})
		}
		sim.Run()
		return done
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func BenchmarkOfferComplete(b *testing.B) {
	sim := des.New()
	s := New(sim, "s1", Default())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Offer(time.Microsecond, nil)
		sim.Run()
	}
}

func BenchmarkSaturatedServer(b *testing.B) {
	sim := des.New()
	s := New(sim, "s1", Default())
	r := rng.New(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Offer(rng.Exp(r, time.Millisecond), nil)
		if i%16 == 15 {
			sim.RunFor(8 * time.Millisecond)
		}
	}
	sim.Run()
}
