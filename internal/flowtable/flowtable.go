// Package flowtable implements the load balancer's per-flow state: the
// mapping from a TCP 4-tuple to the application server that accepted the
// connection during Service Hunting.
//
// The table is bounded (LRU eviction) and entries expire after an idle
// TTL, with a shorter linger after FIN/RST — mirroring how a production
// LB protects itself against state exhaustion. Expiry is driven by the
// caller-provided clock (virtual time in simulations), not wall time.
//
// One table serves every VIP the balancer advertises: FlowKey includes
// the destination address, so entries are keyed by (VIP, flow) and the
// per-packet cost is one map operation regardless of service count. The
// LRU list is intrusive (prev/next links live inside the entry) and
// removed entries recycle through a free list, so the steady state of a
// long run — flows expiring as fast as they are learned — allocates
// nothing.
package flowtable

import (
	"net/netip"
	"time"

	"srlb/internal/packet"
)

// Config tunes the table. Zero fields take defaults.
type Config struct {
	// MaxEntries bounds the table; inserting beyond it evicts the least
	// recently used entry (default 1 << 20).
	MaxEntries int
	// IdleTTL expires entries untouched for this long (default 60s).
	IdleTTL time.Duration
	// FinLinger holds an entry after the flow is marked closing, so
	// retransmitted FIN/ACKs still steer correctly (default 2s).
	FinLinger time.Duration
}

func (c Config) withDefaults() Config {
	if c.MaxEntries <= 0 {
		c.MaxEntries = 1 << 20
	}
	if c.IdleTTL <= 0 {
		c.IdleTTL = 60 * time.Second
	}
	if c.FinLinger <= 0 {
		c.FinLinger = 2 * time.Second
	}
	return c
}

type entry struct {
	key      packet.FlowKey
	backend  netip.Addr
	deadline time.Duration // absolute expiry
	seen     time.Duration // last packet time (idle-gap queries)
	closing  bool
	// Intrusive LRU links. The list is circular through the table's
	// sentinel: head side = most recently used. A free entry reuses next
	// as the free-list link.
	prev, next *entry
}

// Stats counts table events.
type Stats struct {
	Hits      uint64
	Misses    uint64
	Inserts   uint64
	Evictions uint64
	Expiries  uint64
	Rebinds   uint64
}

// Table maps flows to backends with TTL + LRU eviction. Not safe for
// concurrent use: the simulator is single-threaded, and the live runtime
// wraps it with its own lock.
type Table struct {
	cfg     Config
	entries map[packet.FlowKey]*entry
	lru     entry  // sentinel: lru.next = MRU, lru.prev = LRU
	free    *entry // recycled entries, linked through next
	stats   Stats
}

// New creates a table.
func New(cfg Config) *Table {
	cfg = cfg.withDefaults()
	t := &Table{
		cfg:     cfg,
		entries: make(map[packet.FlowKey]*entry),
	}
	t.lru.prev, t.lru.next = &t.lru, &t.lru
	return t
}

// Len returns the number of live entries (including not-yet-expired ones).
func (t *Table) Len() int { return len(t.entries) }

// Stats returns a copy of the table counters.
func (t *Table) Stats() Stats { return t.stats }

// pushFront links e at the MRU end.
func (t *Table) pushFront(e *entry) {
	e.prev, e.next = &t.lru, t.lru.next
	t.lru.next.prev = e
	t.lru.next = e
}

// unlink removes e from the LRU list.
func (t *Table) unlink(e *entry) {
	e.prev.next = e.next
	e.next.prev = e.prev
}

// moveToFront refreshes e's LRU position.
func (t *Table) moveToFront(e *entry) {
	t.unlink(e)
	t.pushFront(e)
}

// newEntry takes an entry from the free list or allocates one.
func (t *Table) newEntry() *entry {
	if e := t.free; e != nil {
		t.free = e.next
		*e = entry{}
		return e
	}
	return &entry{}
}

// Insert binds key to backend at time now, refreshing the TTL if the key
// exists. Inserting may evict the LRU entry when the table is full.
func (t *Table) Insert(now time.Duration, key packet.FlowKey, backend netip.Addr) {
	if e, ok := t.entries[key]; ok {
		e.backend = backend
		e.deadline = now + t.cfg.IdleTTL
		e.seen = now
		e.closing = false
		t.moveToFront(e)
		return
	}
	if len(t.entries) >= t.cfg.MaxEntries {
		t.evictLRU()
	}
	e := t.newEntry()
	e.key = key
	e.backend = backend
	e.deadline = now + t.cfg.IdleTTL
	e.seen = now
	t.pushFront(e)
	t.entries[key] = e
	t.stats.Inserts++
}

// Lookup returns the backend bound to key, refreshing its TTL. Expired
// entries are removed and reported as misses.
func (t *Table) Lookup(now time.Duration, key packet.FlowKey) (netip.Addr, bool) {
	e, ok := t.entries[key]
	if !ok {
		t.stats.Misses++
		return netip.Addr{}, false
	}
	if now > e.deadline {
		t.removeEntry(e)
		t.stats.Expiries++
		t.stats.Misses++
		return netip.Addr{}, false
	}
	if !e.closing {
		e.deadline = now + t.cfg.IdleTTL
	}
	e.seen = now
	t.moveToFront(e)
	t.stats.Hits++
	return e.backend, true
}

// LookupIdle is Lookup plus the flow's idle gap: how long since the
// entry last saw a packet, measured before this one refreshes it — the
// flowlet-boundary signal. Semantics otherwise match Lookup (TTL
// refresh, LRU touch, expiry-as-miss).
func (t *Table) LookupIdle(now time.Duration, key packet.FlowKey) (backend netip.Addr, idle time.Duration, ok bool) {
	e, found := t.entries[key]
	if !found {
		t.stats.Misses++
		return netip.Addr{}, 0, false
	}
	if now > e.deadline {
		t.removeEntry(e)
		t.stats.Expiries++
		t.stats.Misses++
		return netip.Addr{}, 0, false
	}
	idle = now - e.seen
	if !e.closing {
		e.deadline = now + t.cfg.IdleTTL
	}
	e.seen = now
	t.moveToFront(e)
	t.stats.Hits++
	return e.backend, idle, true
}

// Rebind moves an existing flow to a new backend — the mid-connection
// candidate rewrite behind flowlet re-steering. Unlike Insert it
// touches nothing else: closing state and the deadline are preserved
// (the triggering packet's LookupIdle already refreshed them), and a
// missing key is a no-op returning false. An expired entry is treated
// exactly as Lookup treats it — removed, counted as an expiry, and
// reported missing — so a dead flow can never be re-steered.
func (t *Table) Rebind(now time.Duration, key packet.FlowKey, backend netip.Addr) bool {
	e, ok := t.entries[key]
	if !ok {
		return false
	}
	if now > e.deadline {
		t.removeEntry(e)
		t.stats.Expiries++
		return false
	}
	e.backend = backend
	t.stats.Rebinds++
	return true
}

// MarkClosing shortens the entry's remaining lifetime to FinLinger —
// called when the LB observes FIN or RST on the flow. It reports
// whether this call newly marked the entry (false for retransmitted
// FINs and unknown flows), so the caller can run exactly-once teardown
// bookkeeping. An entry already past its deadline is removed and
// reported missing, matching Lookup — the flow's state is gone, so
// there is no teardown left to account for.
func (t *Table) MarkClosing(now time.Duration, key packet.FlowKey) bool {
	e, ok := t.entries[key]
	if !ok {
		return false
	}
	if now > e.deadline {
		t.removeEntry(e)
		t.stats.Expiries++
		return false
	}
	if e.closing {
		return false
	}
	e.closing = true
	if d := now + t.cfg.FinLinger; d < e.deadline {
		e.deadline = d
	}
	return true
}

// Delete removes the entry immediately.
func (t *Table) Delete(key packet.FlowKey) {
	if e, ok := t.entries[key]; ok {
		t.removeEntry(e)
	}
}

// Sweep removes all entries expired at time now and returns how many were
// collected. Call periodically (the LB does) to bound memory between
// lookups.
func (t *Table) Sweep(now time.Duration) int {
	removed := 0
	for e := t.lru.prev; e != &t.lru; {
		prev := e.prev
		if now > e.deadline {
			t.removeEntry(e)
			t.stats.Expiries++
			removed++
		}
		e = prev
	}
	return removed
}

// FlowBinding is one flow's externalized state: everything another
// table needs to reproduce the entry — backend, absolute deadline,
// last-seen time and closing mark. Times are the donor's virtual clock;
// since every replica in a simulation shares that clock, deadlines
// transfer unchanged and entries that expired while a snapshot sat idle
// are dropped on Restore.
type FlowBinding struct {
	Key      packet.FlowKey
	Backend  netip.Addr
	Deadline time.Duration
	Seen     time.Duration
	Closing  bool
}

// Snapshot exports every live binding at time now, ordered least- to
// most-recently used, so that a Restore replaying the slice in order
// reproduces the donor's LRU order. Entries already expired are skipped
// (but left for Lookup/Sweep to collect — Snapshot has no side
// effects).
func (t *Table) Snapshot(now time.Duration) []FlowBinding {
	out := make([]FlowBinding, 0, len(t.entries))
	for e := t.lru.prev; e != &t.lru; e = e.prev {
		if now > e.deadline {
			continue
		}
		out = append(out, FlowBinding{
			Key: e.key, Backend: e.backend,
			Deadline: e.deadline, Seen: e.seen, Closing: e.closing,
		})
	}
	return out
}

// Restore merges a snapshot into the table at time now — the receiving
// half of a warm handoff. Bindings expired by now are dropped (a
// snapshot can never resurrect a dead flow), and the merge never
// overwrites newer local state: a local entry with a later-or-equal
// deadline, or one already marked closing (teardown knowledge the
// snapshot predates), wins over the imported binding. New entries
// respect the capacity bound, evicting LRU like Insert. Returns the
// number of bindings applied.
func (t *Table) Restore(now time.Duration, bindings []FlowBinding) int {
	applied := 0
	for _, b := range bindings {
		if now > b.Deadline {
			continue
		}
		if e, ok := t.entries[b.Key]; ok {
			if e.closing || e.deadline >= b.Deadline {
				continue
			}
			e.backend = b.Backend
			e.deadline = b.Deadline
			e.seen = b.Seen
			e.closing = b.Closing
			t.moveToFront(e)
			applied++
			continue
		}
		if len(t.entries) >= t.cfg.MaxEntries {
			t.evictLRU()
		}
		e := t.newEntry()
		e.key = b.Key
		e.backend = b.Backend
		e.deadline = b.Deadline
		e.seen = b.Seen
		e.closing = b.Closing
		t.pushFront(e)
		t.entries[b.Key] = e
		t.stats.Inserts++
		applied++
	}
	return applied
}

func (t *Table) evictLRU() {
	e := t.lru.prev
	if e == &t.lru {
		return
	}
	t.removeEntry(e)
	t.stats.Evictions++
}

func (t *Table) removeEntry(e *entry) {
	t.unlink(e)
	delete(t.entries, e.key)
	// Recycle: clear links (and let the key's addrs drop) then push onto
	// the free list through next.
	*e = entry{next: t.free}
	t.free = e
}
