package flowtable

import (
	"testing"
	"time"
)

// checkTable verifies the structural invariants every public operation
// must preserve: the entry map and the intrusive LRU list agree
// exactly, capacity is respected, and the free list is finite and
// disjoint from the live list.
func checkTable(t *testing.T, tb *Table) {
	t.Helper()
	live := map[*entry]bool{}
	n := 0
	for e := tb.lru.next; e != &tb.lru; e = e.next {
		n++
		if n > len(tb.entries) {
			t.Fatal("LRU list longer than entry map")
		}
		if tb.entries[e.key] != e {
			t.Fatal("LRU entry not indexed under its key")
		}
		if e.next.prev != e || e.prev.next != e {
			t.Fatal("LRU links inconsistent")
		}
		live[e] = true
	}
	if n != len(tb.entries) {
		t.Fatalf("LRU list has %d entries, map has %d", n, len(tb.entries))
	}
	if len(tb.entries) > tb.cfg.MaxEntries {
		t.Fatalf("table over capacity: %d > %d", len(tb.entries), tb.cfg.MaxEntries)
	}
	fn := 0
	for e := tb.free; e != nil; e = e.next {
		fn++
		if live[e] {
			t.Fatal("entry on both the free list and the LRU list")
		}
		if fn > 1<<16 {
			t.Fatal("free list runaway (cycle?)")
		}
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	src := New(Config{IdleTTL: 60 * time.Second, FinLinger: 2 * time.Second})
	for i := 0; i < 5; i++ {
		src.Insert(time.Duration(i)*time.Second, key(i), backend1)
	}
	src.MarkClosing(5*time.Second, key(2)) // linger deadline: 7s

	snap := src.Snapshot(5 * time.Second)
	if len(snap) != 5 {
		t.Fatalf("snapshot has %d bindings, want 5", len(snap))
	}
	if src.Len() != 5 {
		t.Fatal("Snapshot mutated the source table")
	}

	dst := New(Config{MaxEntries: 5, IdleTTL: 60 * time.Second})
	if n := dst.Restore(5*time.Second, snap); n != 5 {
		t.Fatalf("restored %d bindings, want 5", n)
	}
	checkTable(t, dst)
	for i := 0; i < 5; i++ {
		got, ok := dst.Lookup(5*time.Second, key(i))
		if !ok || got != backend1 {
			t.Fatalf("key %d after restore: %v, %v", i, got, ok)
		}
	}
	// Closing state transferred: entry 2 dies at its linger deadline,
	// not at the idle TTL.
	if _, ok := dst.Lookup(20*time.Second, key(2)); ok {
		t.Fatal("closing mark lost in transfer")
	}
}

// Restore replays the snapshot in the donor's LRU order, so the
// receiver inherits the donor's eviction order too.
func TestRestorePreservesLRUOrder(t *testing.T) {
	src := New(Config{})
	for i := 0; i < 3; i++ {
		src.Insert(0, key(i), backend1)
	}
	src.Lookup(time.Second, key(0)) // key(1) is now the donor's LRU

	dst := New(Config{MaxEntries: 3})
	dst.Restore(time.Second, src.Snapshot(time.Second))
	dst.Insert(2*time.Second, key(9), backend2) // evicts the inherited LRU
	if _, ok := dst.Lookup(2*time.Second, key(1)); ok {
		t.Fatal("donor's LRU entry survived the eviction")
	}
	for _, k := range []int{0, 2, 9} {
		if _, ok := dst.Lookup(2*time.Second, key(k)); !ok {
			t.Fatalf("key %d wrongly evicted", k)
		}
	}
}

func TestSnapshotSkipsExpired(t *testing.T) {
	src := New(Config{IdleTTL: 10 * time.Second})
	src.Insert(0, key(1), backend1)             // dead at 10s
	src.Insert(5*time.Second, key(2), backend1) // dead at 15s
	snap := src.Snapshot(12 * time.Second)
	if len(snap) != 1 || snap[0].Key != key(2) {
		t.Fatalf("snapshot = %+v, want only key(2)", snap)
	}
	// Snapshot is side-effect-free: the expired entry is still the
	// sweeper's to collect.
	if src.Len() != 2 {
		t.Fatalf("len = %d after snapshot, want 2", src.Len())
	}
}

// A snapshot ages while its owner is down: bindings whose deadline
// passed during the downtime must not come back.
func TestRestoreDropsExpired(t *testing.T) {
	src := New(Config{IdleTTL: 10 * time.Second})
	src.Insert(0, key(1), backend1)             // deadline 10s
	src.Insert(8*time.Second, key(2), backend1) // deadline 18s
	snap := src.Snapshot(8 * time.Second)
	if len(snap) != 2 {
		t.Fatalf("snapshot has %d bindings, want 2", len(snap))
	}

	dst := New(Config{IdleTTL: 10 * time.Second})
	if n := dst.Restore(15*time.Second, snap); n != 1 {
		t.Fatalf("restored %d bindings, want 1", n)
	}
	if _, ok := dst.Lookup(15*time.Second, key(1)); ok {
		t.Fatal("restore resurrected an expired flow")
	}
	if _, ok := dst.Lookup(15*time.Second, key(2)); !ok {
		t.Fatal("still-live binding dropped")
	}
}

func TestRestoreNeverOverwritesNewerLocal(t *testing.T) {
	cfg := Config{IdleTTL: 10 * time.Second, FinLinger: 2 * time.Second}
	donor := New(cfg)
	donor.Insert(0, key(1), backend2)             // deadline 10s
	donor.Insert(5*time.Second, key(2), backend2) // deadline 15s
	donor.Insert(5*time.Second, key(3), backend2) // deadline 15s
	snap := donor.Snapshot(5 * time.Second)

	local := New(cfg)
	local.Insert(5*time.Second, key(1), backend1) // deadline 15s: newer than donor's
	local.Insert(0, key(2), backend1)             // deadline 10s: older than donor's
	local.Insert(5*time.Second, key(3), backend1)
	local.MarkClosing(5*time.Second, key(3)) // teardown seen locally

	if n := local.Restore(6*time.Second, snap); n != 1 {
		t.Fatalf("restore applied %d bindings, want 1 (only the older local)", n)
	}
	if got, _ := local.Lookup(6*time.Second, key(1)); got != backend1 {
		t.Fatal("restore overwrote a newer local entry")
	}
	if got, _ := local.Lookup(6*time.Second, key(2)); got != backend2 {
		t.Fatal("older local entry not refreshed from the snapshot")
	}
	// The closing entry keeps its mark and its linger deadline (7s).
	if _, ok := local.Lookup(9*time.Second, key(3)); ok {
		t.Fatal("restore resurrected a locally-closing flow")
	}
}

func TestRestoreRespectsCapacity(t *testing.T) {
	src := New(Config{})
	for i := 0; i < 5; i++ {
		src.Insert(time.Duration(i)*time.Second, key(i), backend1)
	}
	snap := src.Snapshot(5 * time.Second)

	dst := New(Config{MaxEntries: 3})
	dst.Restore(5*time.Second, snap)
	checkTable(t, dst)
	if dst.Len() != 3 {
		t.Fatalf("len = %d, want the capacity bound 3", dst.Len())
	}
	if dst.Stats().Evictions != 2 {
		t.Fatalf("evictions = %d, want 2", dst.Stats().Evictions)
	}
	// The donor's three most-recent bindings survive.
	for _, k := range []int{2, 3, 4} {
		if _, ok := dst.Lookup(5*time.Second, key(k)); !ok {
			t.Fatalf("key %d missing; capacity eviction dropped the wrong end", k)
		}
	}
}
