package flowtable

import (
	"net/netip"
	"testing"
	"time"

	"srlb/internal/packet"
)

// ftCursor is a bounded-decode cursor over the fuzz input: each call
// consumes one byte and maps it into [0, bound). Out of data = 0, so
// every input decodes to some (possibly trivial) op sequence.
type ftCursor struct {
	data []byte
	pos  int
}

func (c *ftCursor) next(bound int) int {
	if bound <= 0 || c.pos >= len(c.data) {
		return 0
	}
	b := c.data[c.pos]
	c.pos++
	return int(b) % bound
}

// FuzzFlowtableSnapshot drives a source table through an arbitrary op
// sequence, snapshots it, merges the snapshot into an independently
// mutated destination, and checks the structural and semantic
// invariants: map/LRU/free-list consistency, no expired binding ever
// exported or resurrected, and newer local state never overwritten.
func FuzzFlowtableSnapshot(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{3, 5, 1, 8, 0, 1, 2, 0, 1, 4, 2, 1, 3, 9, 0, 2})
	f.Add([]byte{1, 19, 4, 30, 10, 0, 3, 11, 1, 7, 2, 2, 4, 4, 250, 9, 9, 9, 1})
	f.Add([]byte{7, 2, 2, 60, 200, 100, 50, 25, 12, 6, 3, 1, 0, 0, 0, 255, 128, 64})
	f.Fuzz(func(t *testing.T, data []byte) {
		c := &ftCursor{data: data}
		cfg := Config{
			MaxEntries: 1 + c.next(8),
			IdleTTL:    time.Duration(1+c.next(20)) * time.Second,
			FinLinger:  time.Duration(1+c.next(5)) * time.Second,
		}
		const keySpace = 12
		drive := func(tb *Table, start time.Duration, ops int) time.Duration {
			now := start
			for i := 0; i < ops; i++ {
				now += time.Duration(c.next(5000)) * time.Millisecond
				k := key(c.next(keySpace))
				switch c.next(5) {
				case 0, 1:
					b := backend1
					if c.next(2) == 1 {
						b = backend2
					}
					tb.Insert(now, k, b)
				case 2:
					tb.Lookup(now, k)
				case 3:
					tb.MarkClosing(now, k)
				case 4:
					tb.Rebind(now, k, backend2)
				}
			}
			return now
		}

		src := New(cfg)
		now := drive(src, 0, c.next(64))
		checkTable(t, src)

		snap := src.Snapshot(now)
		if len(snap) > src.Len() {
			t.Fatalf("snapshot has %d bindings from a table of %d", len(snap), src.Len())
		}
		seen := map[packet.FlowKey]bool{}
		for _, b := range snap {
			if now > b.Deadline {
				t.Fatal("snapshot exported an expired binding")
			}
			if seen[b.Key] {
				t.Fatal("duplicate key in snapshot")
			}
			seen[b.Key] = true
		}

		// Destination capacity covers every possible key, so the merge
		// checks below can't be confounded by capacity eviction (that
		// path has its own deterministic test).
		dstCfg := cfg
		dstCfg.MaxEntries = 2 * keySpace
		dst := New(dstCfg)
		dnow := drive(dst, now, c.next(32))
		type prior struct {
			backend  netip.Addr
			deadline time.Duration
			closing  bool
		}
		pre := map[packet.FlowKey]prior{}
		for k, e := range dst.entries {
			pre[k] = prior{e.backend, e.deadline, e.closing}
		}

		restoreNow := dnow + time.Duration(c.next(10000))*time.Millisecond
		dst.Restore(restoreNow, snap)
		checkTable(t, dst)
		for _, b := range snap {
			e, ok := dst.entries[b.Key]
			if !ok {
				continue // expired by restoreNow, or never present — both legal
			}
			p, had := pre[b.Key]
			switch {
			case had && (p.closing || p.deadline >= b.Deadline):
				if e.backend != p.backend || e.deadline != p.deadline || e.closing != p.closing {
					t.Fatal("restore overwrote newer local state")
				}
			case restoreNow > b.Deadline:
				if e.backend == b.Backend && e.deadline == b.Deadline {
					t.Fatal("restore resurrected an expired binding")
				}
			case had:
				if e.backend != b.Backend || e.deadline != b.Deadline || e.closing != b.Closing {
					t.Fatal("older local entry not updated to the snapshot's state")
				}
			default:
				if e.backend != b.Backend || e.deadline != b.Deadline || e.seen != b.Seen || e.closing != b.Closing {
					t.Fatal("restored binding mutated in transfer")
				}
			}
		}
	})
}
