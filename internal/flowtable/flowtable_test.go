package flowtable

import (
	"fmt"
	"testing"
	"time"

	"srlb/internal/ipv6"
	"srlb/internal/packet"
)

var (
	backend1 = ipv6.MustAddr("2001:db8:5::1")
	backend2 = ipv6.MustAddr("2001:db8:5::2")
)

func key(i int) packet.FlowKey {
	return packet.FlowKey{
		Src:     ipv6.MustAddr(fmt.Sprintf("2001:db8:c::%x", i+1)),
		Dst:     ipv6.MustAddr("2001:db8:f00d::1"),
		SrcPort: uint16(40000 + i),
		DstPort: 80,
	}
}

func TestInsertLookup(t *testing.T) {
	tb := New(Config{})
	tb.Insert(0, key(1), backend1)
	got, ok := tb.Lookup(time.Second, key(1))
	if !ok || got != backend1 {
		t.Fatalf("lookup = %v, %v", got, ok)
	}
	if _, ok := tb.Lookup(time.Second, key(2)); ok {
		t.Fatal("missing key found")
	}
	st := tb.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Inserts != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestIdleTTLExpiry(t *testing.T) {
	tb := New(Config{IdleTTL: 10 * time.Second})
	tb.Insert(0, key(1), backend1)
	if _, ok := tb.Lookup(9*time.Second, key(1)); !ok {
		t.Fatal("entry expired too early")
	}
	// The lookup above refreshed the TTL: deadline is now 19s.
	if _, ok := tb.Lookup(18*time.Second, key(1)); !ok {
		t.Fatal("TTL not refreshed by lookup")
	}
	if _, ok := tb.Lookup(40*time.Second, key(1)); ok {
		t.Fatal("entry survived past TTL")
	}
	if tb.Len() != 0 {
		t.Fatal("expired entry not removed")
	}
	if tb.Stats().Expiries != 1 {
		t.Fatal("expiry not counted")
	}
}

func TestReinsertRefreshes(t *testing.T) {
	tb := New(Config{IdleTTL: 10 * time.Second})
	tb.Insert(0, key(1), backend1)
	tb.Insert(8*time.Second, key(1), backend2) // rebind + refresh
	got, ok := tb.Lookup(17*time.Second, key(1))
	if !ok || got != backend2 {
		t.Fatalf("lookup = %v %v, want backend2", got, ok)
	}
	if tb.Len() != 1 {
		t.Fatalf("len = %d", tb.Len())
	}
	if tb.Stats().Inserts != 1 {
		t.Fatal("re-insert should not count as a new insert")
	}
}

func TestMarkClosingLinger(t *testing.T) {
	tb := New(Config{IdleTTL: 60 * time.Second, FinLinger: 2 * time.Second})
	tb.Insert(0, key(1), backend1)
	tb.MarkClosing(time.Second, key(1))
	// Within linger: still steerable.
	if _, ok := tb.Lookup(2*time.Second, key(1)); !ok {
		t.Fatal("entry gone during linger")
	}
	// Lookup during closing must NOT refresh the deadline.
	if _, ok := tb.Lookup(10*time.Second, key(1)); ok {
		t.Fatal("closing entry survived past linger")
	}
}

func TestMarkClosingMissingKeyIsNoop(t *testing.T) {
	tb := New(Config{})
	tb.MarkClosing(0, key(9)) // must not panic
}

func TestMarkClosingNeverExtends(t *testing.T) {
	tb := New(Config{IdleTTL: time.Second, FinLinger: 10 * time.Second})
	tb.Insert(0, key(1), backend1)
	tb.MarkClosing(0, key(1))
	if _, ok := tb.Lookup(5*time.Second, key(1)); ok {
		t.Fatal("MarkClosing extended the entry lifetime")
	}
}

// Regression: Rebind used to ignore `now` and re-steer entries already
// past their deadline — a dead flow would move to a new backend instead
// of expiring. Expired entries must behave exactly as they do in
// Lookup: removed, counted, reported missing.
func TestRebindExpiredEntryIsMiss(t *testing.T) {
	tb := New(Config{IdleTTL: 10 * time.Second})
	tb.Insert(0, key(1), backend1)
	if tb.Rebind(20*time.Second, key(1), backend2) {
		t.Fatal("Rebind re-steered an expired flow")
	}
	if tb.Len() != 0 {
		t.Fatal("expired entry not removed by Rebind")
	}
	st := tb.Stats()
	if st.Expiries != 1 || st.Rebinds != 0 {
		t.Fatalf("stats = %+v, want 1 expiry and 0 rebinds", st)
	}
	// And the entry is really gone, not merely skipped.
	if tb.Rebind(20*time.Second, key(1), backend2) {
		t.Fatal("rebind found a removed entry")
	}
}

func TestRebindLiveEntry(t *testing.T) {
	tb := New(Config{IdleTTL: 10 * time.Second})
	tb.Insert(0, key(1), backend1)
	if !tb.Rebind(5*time.Second, key(1), backend2) {
		t.Fatal("rebind of a live entry failed")
	}
	got, ok := tb.Lookup(5*time.Second, key(1))
	if !ok || got != backend2 {
		t.Fatalf("lookup after rebind = %v, %v", got, ok)
	}
	if tb.Stats().Rebinds != 1 {
		t.Fatal("rebind not counted")
	}
}

// Regression: MarkClosing used to run its exactly-once transition on
// entries already past their deadline, so the caller's teardown
// bookkeeping fired for a flow whose state was gone.
func TestMarkClosingExpiredEntryIsMiss(t *testing.T) {
	tb := New(Config{IdleTTL: 10 * time.Second, FinLinger: 2 * time.Second})
	tb.Insert(0, key(1), backend1)
	if tb.MarkClosing(20*time.Second, key(1)) {
		t.Fatal("MarkClosing claimed exactly-once teardown for an expired flow")
	}
	if tb.Len() != 0 {
		t.Fatal("expired entry not removed by MarkClosing")
	}
	if st := tb.Stats(); st.Expiries != 1 {
		t.Fatalf("stats = %+v, want 1 expiry", st)
	}
}

func TestDelete(t *testing.T) {
	tb := New(Config{})
	tb.Insert(0, key(1), backend1)
	tb.Delete(key(1))
	if tb.Len() != 0 {
		t.Fatal("delete failed")
	}
	if _, ok := tb.Lookup(0, key(1)); ok {
		t.Fatal("deleted entry resurrected")
	}
	tb.Delete(key(1)) // double delete is a no-op
}

func TestLRUEviction(t *testing.T) {
	tb := New(Config{MaxEntries: 3})
	tb.Insert(0, key(1), backend1)
	tb.Insert(0, key(2), backend1)
	tb.Insert(0, key(3), backend1)
	// Touch key(1) so key(2) is the LRU.
	tb.Lookup(time.Second, key(1))
	tb.Insert(2*time.Second, key(4), backend2)
	if tb.Len() != 3 {
		t.Fatalf("len = %d", tb.Len())
	}
	if _, ok := tb.Lookup(2*time.Second, key(2)); ok {
		t.Fatal("LRU entry not evicted")
	}
	for _, k := range []int{1, 3, 4} {
		if _, ok := tb.Lookup(2*time.Second, key(k)); !ok {
			t.Fatalf("key %d wrongly evicted", k)
		}
	}
	if tb.Stats().Evictions != 1 {
		t.Fatal("eviction not counted")
	}
}

func TestSweep(t *testing.T) {
	tb := New(Config{IdleTTL: 10 * time.Second})
	for i := 0; i < 10; i++ {
		tb.Insert(0, key(i), backend1)
	}
	for i := 10; i < 15; i++ {
		tb.Insert(20*time.Second, key(i), backend1)
	}
	removed := tb.Sweep(15 * time.Second)
	if removed != 10 {
		t.Fatalf("swept %d, want 10", removed)
	}
	if tb.Len() != 5 {
		t.Fatalf("len = %d, want 5", tb.Len())
	}
	if tb.Sweep(15*time.Second) != 0 {
		t.Fatal("second sweep should remove nothing")
	}
}

func TestDefaultsApplied(t *testing.T) {
	tb := New(Config{})
	if tb.cfg.MaxEntries != 1<<20 || tb.cfg.IdleTTL != 60*time.Second || tb.cfg.FinLinger != 2*time.Second {
		t.Fatalf("defaults = %+v", tb.cfg)
	}
}

func TestManyFlowsChurn(t *testing.T) {
	tb := New(Config{MaxEntries: 100, IdleTTL: 5 * time.Second})
	now := time.Duration(0)
	for i := 0; i < 10000; i++ {
		now += time.Millisecond
		tb.Insert(now, key(i%500), backend1)
		if i%3 == 0 {
			tb.Lookup(now, key((i-50+500)%500))
		}
		if tb.Len() > 100 {
			t.Fatalf("table exceeded MaxEntries: %d", tb.Len())
		}
	}
	st := tb.Stats()
	if st.Evictions == 0 {
		t.Fatal("expected evictions under churn")
	}
}

func BenchmarkInsertLookup(b *testing.B) {
	tb := New(Config{MaxEntries: 1 << 16})
	keys := make([]packet.FlowKey, 1024)
	for i := range keys {
		keys[i] = key(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := keys[i&1023]
		tb.Insert(time.Duration(i), k, backend1)
		tb.Lookup(time.Duration(i), k)
	}
}
