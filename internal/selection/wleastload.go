package selection

import (
	"fmt"
	"math/rand/v2"
	"net/netip"

	"srlb/internal/packet"
)

// DefaultInflightWeight converts one locally-observed in-flight flow
// into load-score units when re-ranking candidates. Reports lag by up
// to the feedback interval, so flows this LB placed since the last
// report are load the score has not seen yet; with the testbed's
// 16-worker servers one admitted flow occupies about 1/16 of a worker
// pool, and the weight is kept slightly below that so the published
// EWMA stays the dominant signal.
const DefaultInflightWeight = 0.05

// WeightedLeastLoad is the Charon-style load-aware policy: candidates
// are still drawn power-of-two-choices at random (preserving the
// paper's churn resilience — the candidate set never collapses onto one
// "best" server), but the ordered list handed to Service Hunting is
// re-ranked by reported load, so the hunt offers the connection to the
// least-loaded candidate first. When any candidate's report is stale
// the original random order is kept — the scheme degrades to exactly
// the paper's random2.
type WeightedLeastLoad struct {
	k     int
	inner *Random
	rng   *rand.Rand
	view  LoadView
	// InflightWeight is the per-flow local load delta added to each
	// candidate's reported score (DefaultInflightWeight unless
	// overridden before first use).
	InflightWeight float64
	inflight       map[netip.Addr]int
}

// NewWeightedLeastLoad builds the scheme over the servers with k
// candidates per hunt. view may be nil (no feedback plane), in which
// case the scheme is indistinguishable from NewRandom(servers, k, rng).
// Construction consumes no randomness.
func NewWeightedLeastLoad(servers []netip.Addr, k int, rng *rand.Rand, view LoadView) *WeightedLeastLoad {
	w := &WeightedLeastLoad{
		k:              k,
		rng:            rng,
		view:           view,
		InflightWeight: DefaultInflightWeight,
		inflight:       make(map[netip.Addr]int),
	}
	w.Update(servers)
	return w
}

// Pick implements Scheme: draw k random candidates, then re-rank them
// least-loaded-first when every candidate has a fresh report. Any stale
// candidate keeps the oblivious random order (and the sort is stable,
// so equal scores also keep it).
func (w *WeightedLeastLoad) Pick(flow packet.FlowKey) []netip.Addr {
	cands := w.inner.Pick(flow)
	if w.view == nil || len(cands) < 2 {
		return cands
	}
	var scores [8]float64
	if len(cands) > len(scores) {
		return cands // larger k than the scratch: stay oblivious
	}
	for i, c := range cands {
		load, fresh := w.view.ServerLoad(c)
		if !fresh {
			return cands
		}
		scores[i] = load + w.InflightWeight*float64(w.inflight[c])
	}
	// Insertion sort: k is tiny (2 in every experiment) and stability
	// preserves the random order between equals.
	for i := 1; i < len(cands); i++ {
		for j := i; j > 0 && scores[j] < scores[j-1]; j-- {
			scores[j], scores[j-1] = scores[j-1], scores[j]
			cands[j], cands[j-1] = cands[j-1], cands[j]
		}
	}
	return cands
}

// Name implements Scheme.
func (w *WeightedLeastLoad) Name() string { return fmt.Sprintf("wleastload%d", w.k) }

// Observe implements Stateful: track this LB's own placements between
// reports. Counts clamp at zero (idle-expired flows never decrement).
func (w *WeightedLeastLoad) Observe(server netip.Addr, delta int) {
	n := w.inflight[server] + delta
	if n <= 0 {
		delete(w.inflight, server)
		return
	}
	w.inflight[server] = n
}

// Update implements Stateful: replace the candidate set (churn or
// per-VIP filtering), keeping in-flight state for surviving servers.
// Consumes no randomness.
func (w *WeightedLeastLoad) Update(servers []netip.Addr) {
	k := w.k
	if len(servers) < k {
		k = len(servers)
	}
	w.inner = NewRandom(servers, k, w.rng)
	if len(w.inflight) > 0 {
		keep := make(map[netip.Addr]bool, len(servers))
		for _, s := range servers {
			keep[s] = true
		}
		for s := range w.inflight {
			if !keep[s] {
				delete(w.inflight, s)
			}
		}
	}
}

var _ Stateful = (*WeightedLeastLoad)(nil)
