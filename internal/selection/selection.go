// Package selection implements the load balancer's server-selection
// policies (§II-B of the paper): given a new flow, produce the ordered
// list of candidate servers to place in the SR header.
//
// The paper's experiments use two servers "chosen at random from among all
// servers hosting a given application instance" (citing Mitzenmacher's
// power-of-two-choices result that more than two candidates has decreasing
// marginal benefit); §II-B also names consistent hashing as an alternative
// scheme, which is provided here via the Maglev table.
package selection

import (
	"fmt"
	"math/rand/v2"
	"net/netip"

	"srlb/internal/chash"
	"srlb/internal/packet"
)

// Scheme produces candidate lists for new flows. Implementations are not
// safe for concurrent use (the simulator is single-threaded; the live
// runtime serializes through the LB lock).
type Scheme interface {
	// Pick returns the ordered candidate servers for the flow. The last
	// candidate is the "must accept" penultimate segment.
	Pick(flow packet.FlowKey) []netip.Addr
	// Name returns the scheme's display name.
	Name() string
}

// Random picks K distinct servers uniformly at random — the paper's
// scheme, with K=2 as evaluated.
type Random struct {
	k       int
	servers []netip.Addr
	rng     *rand.Rand
}

// NewRandom builds a random scheme over the given servers. It panics when
// k < 1 or fewer than k servers exist: the testbed topology is static and
// this is a construction-time error.
func NewRandom(servers []netip.Addr, k int, rng *rand.Rand) *Random {
	if k < 1 {
		panic(fmt.Sprintf("selection: k must be ≥ 1, got %d", k))
	}
	if len(servers) < k {
		panic(fmt.Sprintf("selection: need at least %d servers, have %d", k, len(servers)))
	}
	return &Random{
		k:       k,
		servers: append([]netip.Addr(nil), servers...),
		rng:     rng,
	}
}

// Pick implements Scheme via a partial Fisher–Yates shuffle: O(k) time,
// k distinct servers, each k-subset ordered uniformly. The permutation is
// left in place between calls, which does not bias later draws (a partial
// shuffle of any fixed permutation of the set is still uniform).
func (r *Random) Pick(packet.FlowKey) []netip.Addr {
	n := len(r.servers)
	out := make([]netip.Addr, r.k)
	for i := 0; i < r.k; i++ {
		j := i + r.rng.IntN(n-i)
		r.servers[i], r.servers[j] = r.servers[j], r.servers[i]
		out[i] = r.servers[i]
	}
	return out
}

// Name implements Scheme.
func (r *Random) Name() string {
	if r.k == 1 {
		return "random1"
	}
	return fmt.Sprintf("random%d", r.k)
}

// RoundRobin cycles deterministically through the servers, emitting K
// consecutive servers per flow. Deterministic and stateless across
// restarts given the same arrival order; mainly a comparison baseline.
type RoundRobin struct {
	k       int
	servers []netip.Addr
	next    int
}

// NewRoundRobin builds a round-robin scheme.
func NewRoundRobin(servers []netip.Addr, k int) *RoundRobin {
	if k < 1 || len(servers) < k {
		panic("selection: bad round-robin parameters")
	}
	return &RoundRobin{k: k, servers: append([]netip.Addr(nil), servers...)}
}

// Pick implements Scheme.
func (r *RoundRobin) Pick(packet.FlowKey) []netip.Addr {
	out := make([]netip.Addr, r.k)
	for i := range out {
		out[i] = r.servers[(r.next+i)%len(r.servers)]
	}
	r.next = (r.next + 1) % len(r.servers)
	return out
}

// Name implements Scheme.
func (r *RoundRobin) Name() string { return fmt.Sprintf("roundrobin%d", r.k) }

// ConsistentHash picks two candidates from a Maglev table keyed on the
// flow 4-tuple, so the same client flow always hunts the same pair —
// useful when multiple LB instances must agree without shared state
// (the Maglev/Ananta deployment model in the paper's related work).
type ConsistentHash struct {
	table  *chash.Maglev
	byName map[string]netip.Addr
}

// NewConsistentHash builds the scheme over the servers. The Maglev
// table is interned by (servers, tableSize): thousands of VIPs sharing
// one pool populate a single shared table instead of one each, keeping
// control-plane construction O(pools), not O(VIPs).
func NewConsistentHash(servers []netip.Addr, tableSize int) (*ConsistentHash, error) {
	names := make([]string, len(servers))
	byName := make(map[string]netip.Addr, len(servers))
	for i, s := range servers {
		names[i] = s.String()
		byName[names[i]] = s
	}
	m, err := chash.SharedMaglev(names, tableSize)
	if err != nil {
		return nil, err
	}
	return &ConsistentHash{table: m, byName: byName}, nil
}

// Pick implements Scheme.
func (c *ConsistentHash) Pick(flow packet.FlowKey) []netip.Addr {
	a, b := c.table.Lookup2(flow.String())
	if a == b {
		return []netip.Addr{c.byName[a]}
	}
	return []netip.Addr{c.byName[a], c.byName[b]}
}

// Name implements Scheme.
func (c *ConsistentHash) Name() string { return "chash2" }

// Interface compliance checks.
var (
	_ Scheme = (*Random)(nil)
	_ Scheme = (*RoundRobin)(nil)
	_ Scheme = (*ConsistentHash)(nil)
)
