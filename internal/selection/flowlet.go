package selection

import (
	"math/rand/v2"
	"net/netip"
	"time"

	"srlb/internal/packet"
)

// DefaultFlowletGap is the idle gap that opens a new flowlet. 50ms sits
// above the testbed's intra-burst packet spacing (one RTT of ~200µs
// between SYN-ACK and request) and below the think/service gaps that
// separate a connection's bursts, so flowlet boundaries land between
// application-level exchanges — the safe re-steering points.
const DefaultFlowletGap = 50 * time.Millisecond

// Flowlet re-steers established flows at flowlet-gap boundaries instead
// of pinning the SYN-time decision for the connection's lifetime
// (Nakamura-style host-driven SRv6 re-steering, adapted to the LB).
//
// Placement at SYN time is deliberately load-oblivious (the same
// power-of-two random draw as the paper's scheme), isolating the
// flowlet mechanism in the policy ablation: any gain over random2 comes
// from moving flows mid-connection, not from smarter initial placement.
// When a steered packet arrives after an idle gap longer than Gap, the
// flow is between bursts — in-flight-packet reordering is impossible —
// so the scheme may rebind it: it draws two fresh candidates, compares
// their reported load against the current server's, and moves the flow
// to a strictly less-loaded candidate. Any stale report (current or
// candidate) vetoes the move — with no trustworthy load signal the
// scheme degrades to ordinary sticky steering.
type Flowlet struct {
	gap   time.Duration
	inner *Random
	rng   *rand.Rand
	view  LoadView
	// InflightWeight mirrors WeightedLeastLoad's local delta (one
	// placed flow ≈ this much load-score until the next report).
	InflightWeight float64
	inflight       map[netip.Addr]int
	boundaries     uint64
	moves          uint64
}

// NewFlowlet builds the scheme. gap ≤ 0 takes DefaultFlowletGap; view
// may be nil, in which case flows never move (boundaries are still
// detected, but with no load signal there is no reason to re-steer).
// Construction consumes no randomness.
func NewFlowlet(servers []netip.Addr, gap time.Duration, rng *rand.Rand, view LoadView) *Flowlet {
	if gap <= 0 {
		gap = DefaultFlowletGap
	}
	f := &Flowlet{
		gap:            gap,
		rng:            rng,
		view:           view,
		InflightWeight: DefaultInflightWeight,
		inflight:       make(map[netip.Addr]int),
	}
	f.Update(servers)
	return f
}

// Gap returns the configured flowlet gap.
func (f *Flowlet) Gap() time.Duration { return f.gap }

// Boundaries returns how many flowlet boundaries the scheme has seen;
// Moves returns how many of them re-steered the flow.
func (f *Flowlet) Boundaries() uint64 { return f.boundaries }

// Moves returns the number of boundary decisions that moved a flow.
func (f *Flowlet) Moves() uint64 { return f.moves }

// Pick implements Scheme: plain power-of-two random placement.
func (f *Flowlet) Pick(flow packet.FlowKey) []netip.Addr {
	return f.inner.Pick(flow)
}

// Name implements Scheme.
func (f *Flowlet) Name() string { return "flowlet" }

// Boundary reports whether a packet arriving after the given idle gap
// opens a new flowlet. Strictly greater: a packet exactly gap after its
// predecessor still belongs to the same flowlet, so fuzzed gap
// sequences can never produce two flowlets sharing an instant.
func (f *Flowlet) Boundary(idle time.Duration) bool { return idle > f.gap }

// Resteer implements Resteerer. Called by the LB for every eligible
// steered packet; intra-flowlet packets (idle ≤ gap) never move — the
// first invariant FuzzFlowletGaps locks — and boundary packets move
// only onto a strictly less-loaded, fresh-reported candidate.
func (f *Flowlet) Resteer(now time.Duration, flow packet.FlowKey, idle time.Duration, current netip.Addr) (netip.Addr, bool) {
	if !f.Boundary(idle) {
		return current, false
	}
	f.boundaries++
	if f.view == nil {
		return current, false
	}
	// The candidate draw happens on every boundary (before the
	// freshness checks) so the rng stream depends only on the packet
	// sequence, not on report timing.
	cands := f.inner.Pick(flow)
	curLoad, fresh := f.view.ServerLoad(current)
	if !fresh {
		return current, false
	}
	best, bestScore := current, curLoad+f.InflightWeight*float64(f.inflight[current])
	for _, c := range cands {
		if c == current {
			continue
		}
		load, fresh := f.view.ServerLoad(c)
		if !fresh {
			return current, false
		}
		if score := load + f.InflightWeight*float64(f.inflight[c]); score < bestScore {
			best, bestScore = c, score
		}
	}
	if best == current {
		return current, false
	}
	f.moves++
	return best, true
}

// Observe implements Stateful (same advisory in-flight tracking as
// WeightedLeastLoad).
func (f *Flowlet) Observe(server netip.Addr, delta int) {
	n := f.inflight[server] + delta
	if n <= 0 {
		delete(f.inflight, server)
		return
	}
	f.inflight[server] = n
}

// Update implements Stateful: swap the candidate set without losing
// in-flight state or consuming randomness.
func (f *Flowlet) Update(servers []netip.Addr) {
	k := 2
	if len(servers) < k {
		k = len(servers)
	}
	f.inner = NewRandom(servers, k, f.rng)
	if len(f.inflight) > 0 {
		keep := make(map[netip.Addr]bool, len(servers))
		for _, s := range servers {
			keep[s] = true
		}
		for s := range f.inflight {
			if !keep[s] {
				delete(f.inflight, s)
			}
		}
	}
}

var (
	_ Stateful  = (*Flowlet)(nil)
	_ Resteerer = (*Flowlet)(nil)
)
