package selection

import (
	"fmt"
	"math"
	"net/netip"
	"testing"

	"srlb/internal/ipv6"
	"srlb/internal/packet"
	"srlb/internal/rng"
)

func servers(n int) []netip.Addr {
	out := make([]netip.Addr, n)
	for i := range out {
		out[i] = ipv6.MustAddr(fmt.Sprintf("2001:db8:5::%x", i+1))
	}
	return out
}

func flow(i int) packet.FlowKey {
	return packet.FlowKey{
		Src:     ipv6.MustAddr(fmt.Sprintf("2001:db8:c::%x", i%200+1)),
		Dst:     ipv6.MustAddr("2001:db8:f00d::1"),
		SrcPort: uint16(1024 + i),
		DstPort: 80,
	}
}

func TestRandomDistinctCandidates(t *testing.T) {
	s := NewRandom(servers(12), 2, rng.New(1))
	for i := 0; i < 5000; i++ {
		picks := s.Pick(flow(i))
		if len(picks) != 2 {
			t.Fatalf("len = %d", len(picks))
		}
		if picks[0] == picks[1] {
			t.Fatal("candidates must be distinct")
		}
	}
}

func TestRandomUniformity(t *testing.T) {
	srv := servers(12)
	s := NewRandom(srv, 2, rng.New(2))
	counts := make(map[netip.Addr]int)
	const n = 60000
	for i := 0; i < n; i++ {
		for _, a := range s.Pick(flow(i)) {
			counts[a]++
		}
	}
	// Each server should appear in ≈ n*2/12 lists.
	want := float64(n) * 2 / 12
	for _, a := range srv {
		got := float64(counts[a])
		if math.Abs(got-want)/want > 0.05 {
			t.Fatalf("server %v picked %v times, want ≈%v", a, got, want)
		}
	}
}

func TestRandomFirstPositionUniform(t *testing.T) {
	srv := servers(6)
	s := NewRandom(srv, 2, rng.New(3))
	first := make(map[netip.Addr]int)
	const n = 60000
	for i := 0; i < n; i++ {
		first[s.Pick(flow(i))[0]]++
	}
	want := float64(n) / 6
	for _, a := range srv {
		got := float64(first[a])
		if math.Abs(got-want)/want > 0.05 {
			t.Fatalf("server %v first %v times, want ≈%v", a, got, want)
		}
	}
}

func TestRandomK1(t *testing.T) {
	s := NewRandom(servers(4), 1, rng.New(4))
	if s.Name() != "random1" {
		t.Fatalf("name = %q", s.Name())
	}
	if len(s.Pick(flow(0))) != 1 {
		t.Fatal("k=1 must return one server")
	}
}

func TestRandomPanics(t *testing.T) {
	for _, tc := range []struct {
		n, k int
	}{{3, 0}, {2, 3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("n=%d k=%d should panic", tc.n, tc.k)
				}
			}()
			NewRandom(servers(tc.n), tc.k, rng.New(1))
		}()
	}
}

func TestRoundRobinCycles(t *testing.T) {
	srv := servers(4)
	s := NewRoundRobin(srv, 2)
	if s.Name() != "roundrobin2" {
		t.Fatalf("name = %q", s.Name())
	}
	counts := make(map[netip.Addr]int)
	for i := 0; i < 8; i++ {
		picks := s.Pick(flow(i))
		if len(picks) != 2 || picks[0] == picks[1] {
			t.Fatalf("bad picks %v", picks)
		}
		counts[picks[0]]++
	}
	// After 8 picks over 4 servers, each led exactly twice.
	for _, a := range srv {
		if counts[a] != 2 {
			t.Fatalf("server %v led %d times, want 2", a, counts[a])
		}
	}
}

func TestConsistentHashStability(t *testing.T) {
	s, err := NewConsistentHash(servers(12), 4099)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "chash2" {
		t.Fatalf("name = %q", s.Name())
	}
	for i := 0; i < 200; i++ {
		f := flow(i)
		a := s.Pick(f)
		b := s.Pick(f)
		if len(a) != 2 || a[0] != b[0] || a[1] != b[1] {
			t.Fatal("consistent hash must be deterministic per flow")
		}
		if a[0] == a[1] {
			t.Fatal("candidates must be distinct")
		}
	}
}

func TestConsistentHashSpread(t *testing.T) {
	srv := servers(12)
	s, err := NewConsistentHash(srv, 65537)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[netip.Addr]int)
	const n = 60000
	for i := 0; i < n; i++ {
		counts[s.Pick(flow(i * 7))[0]]++
	}
	want := float64(n) / 12
	for _, a := range srv {
		got := float64(counts[a])
		if math.Abs(got-want)/want > 0.25 {
			t.Fatalf("server %v primary for %v flows, want ≈%v", a, got, want)
		}
	}
}

func TestConsistentHashSingleServer(t *testing.T) {
	s, err := NewConsistentHash(servers(1), 101)
	if err != nil {
		t.Fatal(err)
	}
	picks := s.Pick(flow(0))
	if len(picks) != 1 {
		t.Fatalf("single-server pick = %v", picks)
	}
}

func BenchmarkRandomPick2(b *testing.B) {
	s := NewRandom(servers(12), 2, rng.New(1))
	f := flow(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Pick(f)
	}
}

func BenchmarkConsistentHashPick(b *testing.B) {
	s, _ := NewConsistentHash(servers(12), 65537)
	f := flow(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Pick(f)
	}
}
