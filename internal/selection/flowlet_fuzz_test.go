package selection

import (
	"encoding/binary"
	"net/netip"
	"testing"
	"time"

	"srlb/internal/rng"
)

// fuzzView is a hand-driven LoadView: the fuzzer mutates loads and
// freshness between packets to exercise every veto path in Resteer.
type fuzzView struct {
	loads map[netip.Addr]float64
	fresh map[netip.Addr]bool
}

func (v *fuzzView) ServerLoad(a netip.Addr) (float64, bool) { return v.loads[a], v.fresh[a] }

// FuzzFlowletGaps drives a Flowlet scheme with arbitrary interleavings
// of packet arrivals (per-flow idle gaps, SYN/RST flags, load and
// freshness churn) and checks the re-steering safety invariants the LB
// depends on:
//
//  1. A packet with idle ≤ gap never moves its flow — flowlets are
//     only cut at strict idle gaps, so in-flight reordering is
//     impossible.
//  2. Flowlet segments of one flow never overlap: each new flowlet
//     opens strictly after the previous segment's last packet plus the
//     gap.
//  3. SYNs and RSTs are never re-steer eligible (ResteerEligible), so
//     a connection's first packet and its teardown can't be split from
//     their flowlet.
//  4. A move only happens onto a different, known server whose
//     reported load is strictly lower than the current server's, with
//     both reports fresh — any staleness vetoes the move.
//  5. Boundary accounting is exact: the boundary counter advances
//     exactly on idle > gap decisions, never otherwise.
func FuzzFlowletGaps(f *testing.F) {
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0, 1, 255, 255, 1, 0, 10, 0, 0, 2, 200, 0})
	f.Add([]byte{3, 4, 0, 1, 3, 8, 77, 0, 3, 0, 51, 0, 2, 12, 49, 0})
	f.Add([]byte{1, 0, 50, 0, 1, 0, 50, 0, 1, 0, 51, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		srv := servers(6)
		view := &fuzzView{
			loads: make(map[netip.Addr]float64, len(srv)),
			fresh: make(map[netip.Addr]bool, len(srv)),
		}
		for i, a := range srv {
			view.loads[a] = float64(i) / 8
			view.fresh[a] = true
		}
		known := make(map[netip.Addr]bool, len(srv))
		for _, a := range srv {
			known[a] = true
		}
		const gap = 50 * time.Millisecond
		fl := NewFlowlet(srv, gap, rng.New(0x9e37), view)

		type flowState struct {
			started bool
			backend netip.Addr
			last    time.Duration // previous packet of this flow
			segEnd  time.Duration // last packet of the previous flowlet
		}
		flows := make(map[int]*flowState)
		now := time.Duration(0)

		for i := 0; i+3 < len(data); i += 4 {
			fi := int(data[i]) % 4
			flags := data[i+1]
			isSYN := flags&1 != 0
			isRST := flags&2 != 0
			if flags&4 != 0 { // freshness churn on one server
				a := srv[int(data[i+2])%len(srv)]
				view.fresh[a] = !view.fresh[a]
			}
			if flags&8 != 0 { // load churn on one server
				a := srv[int(data[i+3])%len(srv)]
				view.loads[a] = float64(data[i+2]) / 255
			}
			now += time.Duration(binary.LittleEndian.Uint16(data[i+2:])) * time.Millisecond / 4

			st := flows[fi]
			if st == nil {
				// First packet of the flow: SYN-time placement via Pick,
				// exactly as the LB's Service Hunting path would do.
				picks := fl.Pick(flow(fi))
				if len(picks) == 0 {
					t.Fatal("Pick returned no candidates")
				}
				st = &flowState{started: true, backend: picks[0], last: now, segEnd: now}
				flows[fi] = st
				continue
			}

			// Invariant 3: SYN/RST packets are never re-steer eligible.
			if ResteerEligible(isSYN, isRST) != (!isSYN && !isRST) {
				t.Fatalf("ResteerEligible(%v, %v) violated the SYN/RST rule", isSYN, isRST)
			}
			idle := now - st.last
			if !ResteerEligible(isSYN, isRST) {
				// The LB skips Resteer entirely; the flow keeps its backend
				// and the packet still extends (or opens) a flowlet.
				st.segEnd = now
				st.last = now
				continue
			}

			before := fl.Boundaries()
			next, moved := fl.Resteer(now, flow(fi), idle, st.backend)
			boundary := fl.Boundary(idle)

			// Invariant 5: boundary accounting is exact.
			wantDelta := uint64(0)
			if boundary {
				wantDelta = 1
			}
			if got := fl.Boundaries() - before; got != wantDelta {
				t.Fatalf("idle %v (gap %v): boundary counter advanced %d, want %d", idle, gap, got, wantDelta)
			}

			if !boundary {
				// Invariant 1: intra-flowlet packets never move.
				if moved || next != st.backend {
					t.Fatalf("idle %v ≤ gap %v but Resteer moved %v → %v", idle, gap, st.backend, next)
				}
			} else {
				// Invariant 2: the new flowlet opens strictly after the
				// previous segment's end plus the gap — segments of one
				// flow can never overlap or even touch.
				if now <= st.segEnd+gap {
					t.Fatalf("new flowlet at %v overlaps previous segment ending %v (gap %v)", now, st.segEnd, gap)
				}
				if moved {
					// Invariant 4: moves are strict improvements between
					// fresh reports, onto a real, different server. The
					// fuzzer never calls Observe, so the in-flight bias is
					// zero and the comparison is on raw reported load.
					if next == st.backend {
						t.Fatal("moved onto the current backend")
					}
					if !known[next] {
						t.Fatalf("moved onto unknown server %v", next)
					}
					if !view.fresh[st.backend] || !view.fresh[next] {
						t.Fatalf("moved %v → %v with a stale report", st.backend, next)
					}
					if view.loads[next] >= view.loads[st.backend] {
						t.Fatalf("moved %v (load %v) → %v (load %v): not a strict improvement",
							st.backend, view.loads[st.backend], next, view.loads[next])
					}
					st.backend = next
				} else if next != st.backend {
					t.Fatalf("Resteer returned (%v, false) but current is %v", next, st.backend)
				}
			}
			st.segEnd = now
			st.last = now
		}
	})
}
