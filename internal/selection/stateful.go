// Stateful scheme surface: the optional interfaces a selection scheme
// may implement beyond Pick/Name, added for the load-feedback policies.
// The core LB probes for them once at VIP-compile time and keeps nil
// handles for plain schemes, so the paper's load-oblivious policies pay
// nothing on the per-packet path.

package selection

import (
	"net/netip"
	"time"

	"srlb/internal/packet"
)

// LoadView exposes the feedback plane's per-server load reports to
// load-aware schemes (implemented by feedback.VIPView). ServerLoad
// returns the server's smoothed load score and whether the underlying
// report is still fresh; every consumer must degrade to load-oblivious
// behavior when any candidate is stale — an old "I'm idle" report from
// a silent server must never keep attracting traffic.
type LoadView interface {
	ServerLoad(server netip.Addr) (load float64, fresh bool)
}

// Stateful is the stateful scheme variant: schemes that track per-(VIP,
// server) state across flows implement it alongside Scheme.
type Stateful interface {
	Scheme
	// Observe tracks flow lifecycle on this VIP: delta +1 when the LB
	// learns a flow onto server, -1 when the flow starts closing or is
	// re-steered away. The count is advisory (idle-expired flows decay
	// only through Update and fresh reports); schemes clamp at zero.
	Observe(server netip.Addr, delta int)
	// Update replaces the candidate set — the per-(VIP, server) filter
	// hook, also invoked on pool churn so the scheme keeps its
	// accumulated state instead of being reconstructed. Implementations
	// must consume no randomness (the testbed rebuild path relies on
	// construction-time draw-freedom).
	Update(servers []netip.Addr)
}

// Resteerer is implemented by schemes that may move established flows
// (flowlet-grained balancing). The LB consults it on the steered path
// for every eligible packet: given the flow's idle gap since its last
// packet and its currently bound server, the scheme returns the server
// the flow should continue on and whether that is a move. SYNs and RSTs
// are never offered (ResteerEligible); the flowtable rewrite and the
// Observe bookkeeping are the LB's job.
type Resteerer interface {
	Resteer(now time.Duration, flow packet.FlowKey, idle time.Duration, current netip.Addr) (next netip.Addr, move bool)
}

// Wrapper is implemented by delegating schemes (the testbed's
// hot-swappable wrapper): capability probes unwrap the chain so a plain
// inner scheme keeps reporting "no optional interfaces" even through a
// forwarding wrapper.
type Wrapper interface {
	Unwrap() Scheme
}

// ResteerEligible is the LB-side gate for Resteerer: a SYN must never
// re-steer (it either starts a hunt or sticks to its rebound server — a
// mid-hunt move would fork the handshake), and an RST is tearing the
// flow down, so moving it only misdelivers the teardown. Everything
// else on the steered path may cross a flowlet boundary.
func ResteerEligible(isSYN, isRST bool) bool {
	return !isSYN && !isRST
}

// Capability probing -------------------------------------------------

// AsStateful returns the Stateful handle for s, or nil when s (after
// unwrapping any delegation chain) does not track state. The returned
// handle is the outermost implementation, so hot-swap wrappers keep
// forwarding to whatever scheme is current.
func AsStateful(s Scheme) Stateful {
	if !innerImplements(s, func(s Scheme) bool { _, ok := s.(Stateful); return ok }) {
		return nil
	}
	st, _ := s.(Stateful)
	return st
}

// AsResteerer returns the Resteerer handle for s, or nil when the
// unwrapped scheme cannot move established flows.
func AsResteerer(s Scheme) Resteerer {
	if !innerImplements(s, func(s Scheme) bool { _, ok := s.(Resteerer); return ok }) {
		return nil
	}
	rs, _ := s.(Resteerer)
	return rs
}

// innerImplements unwraps the delegation chain and applies the probe to
// the innermost scheme.
func innerImplements(s Scheme, probe func(Scheme) bool) bool {
	for {
		w, ok := s.(Wrapper)
		if !ok {
			return probe(s)
		}
		inner := w.Unwrap()
		if inner == nil {
			return false
		}
		s = inner
	}
}
