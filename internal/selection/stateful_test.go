package selection

import (
	"net/netip"
	"testing"
	"time"

	"srlb/internal/packet"
	"srlb/internal/rng"
)

// loadsView builds a fuzzView where every listed server is fresh at the
// given load.
func loadsView(srv []netip.Addr, loads ...float64) *fuzzView {
	v := &fuzzView{
		loads: make(map[netip.Addr]float64, len(srv)),
		fresh: make(map[netip.Addr]bool, len(srv)),
	}
	for i, a := range srv {
		v.loads[a] = loads[i]
		v.fresh[a] = true
	}
	return v
}

// With every report fresh, WeightedLeastLoad must hand Service Hunting
// a least-loaded-first candidate list: the first candidate's score never
// exceeds the second's.
func TestWeightedLeastLoadRanksByLoad(t *testing.T) {
	srv := servers(6)
	view := loadsView(srv, 0.9, 0.1, 0.5, 0.3, 0.7, 0.0)
	w := NewWeightedLeastLoad(srv, 2, rng.New(21), view)
	if w.Name() != "wleastload2" {
		t.Fatalf("name = %q", w.Name())
	}
	for i := 0; i < 2000; i++ {
		picks := w.Pick(flow(i))
		if len(picks) != 2 || picks[0] == picks[1] {
			t.Fatalf("bad picks %v", picks)
		}
		if view.loads[picks[0]] > view.loads[picks[1]] {
			t.Fatalf("picks %v not least-loaded-first (%.2f > %.2f)",
				picks, view.loads[picks[0]], view.loads[picks[1]])
		}
	}
}

// Staleness degrades the scheme to exactly the paper's random2: the
// candidate sets always match a twin Random scheme's draw, and any pick
// touching a stale server keeps the oblivious order bit for bit.
func TestWeightedLeastLoadStaleDegradesToRandom(t *testing.T) {
	srv := servers(6)
	stale := srv[2]
	view := loadsView(srv, 0.9, 0.1, 0.0, 0.3, 0.7, 0.5)
	view.fresh[stale] = false // the tempting "I'm idle" report has expired
	w := NewWeightedLeastLoad(srv, 2, rng.New(22), view)
	ref := NewRandom(srv, 2, rng.New(22))
	reordered := 0
	for i := 0; i < 4000; i++ {
		p, q := w.Pick(flow(i)), ref.Pick(flow(i))
		if !(p[0] == q[0] && p[1] == q[1] || p[0] == q[1] && p[1] == q[0]) {
			t.Fatalf("candidate sets diverged: %v vs %v", p, q)
		}
		if p[0] == stale || p[1] == stale {
			// Stale candidate: the original random order must survive —
			// load 0.0 on a stale report must not attract the flow.
			if p[0] != q[0] {
				t.Fatalf("stale candidate reordered: %v vs oblivious %v", p, q)
			}
		} else if p[0] != q[0] {
			reordered++
		}
	}
	if reordered == 0 {
		t.Fatal("no fresh pair was ever reordered — load awareness vacuous")
	}
	// A nil view is pure random2 on every pick.
	w2 := NewWeightedLeastLoad(srv, 2, rng.New(23), nil)
	ref2 := NewRandom(srv, 2, rng.New(23))
	for i := 0; i < 1000; i++ {
		p, q := w2.Pick(flow(i)), ref2.Pick(flow(i))
		if p[0] != q[0] || p[1] != q[1] {
			t.Fatalf("nil-view pick %v diverged from random %v", p, q)
		}
	}
}

// Observe's in-flight tracking biases the ranking between reports, and
// Update drops state for departed servers (pool churn) while keeping it
// for survivors.
func TestWeightedLeastLoadObserveAndUpdate(t *testing.T) {
	srv := servers(3)
	view := loadsView(srv, 0.5, 0.5, 0.5) // equal reported load everywhere
	w := NewWeightedLeastLoad(srv, 2, rng.New(24), view)
	biased := srv[0]
	w.Observe(biased, +40) // 40 unreported placements: score +2.0
	for i := 0; i < 1000; i++ {
		if p := w.Pick(flow(i)); p[0] == biased {
			t.Fatalf("server with 40 in-flight placements still ranked first: %v", p)
		}
	}
	// Update to the surviving set keeps the bias…
	w.Update(srv)
	for i := 0; i < 1000; i++ {
		if p := w.Pick(flow(i)); p[0] == biased {
			t.Fatalf("Update(survivors) lost in-flight state: %v", p)
		}
	}
	// …but dropping the server and re-adding it forgets the counts, and
	// clamping means Observe(-1) on a clean server stays at zero.
	w.Update(srv[1:])
	w.Update(srv)
	w.Observe(srv[1], -1)
	seenFirst := false
	for i := 0; i < 1000; i++ {
		if p := w.Pick(flow(i)); p[0] == biased {
			seenFirst = true
			break
		}
	}
	if !seenFirst {
		t.Fatal("departed-then-readded server still carries stale in-flight bias")
	}
}

// Flowlet staleness vetoes: at a genuine boundary the flow moves only
// when the current server and every candidate report fresh — a stale
// report anywhere (or no view at all) keeps the flow where it is.
func TestFlowletStaleVetoesMove(t *testing.T) {
	srv := servers(2)
	hot, cold := srv[0], srv[1]
	view := loadsView(srv, 0.9, 0.1)
	fl := NewFlowlet(srv, 50*time.Millisecond, rng.New(25), view)
	boundary := 100 * time.Millisecond

	// All fresh: the flow on the hot server moves to the cold one.
	next, moved := fl.Resteer(time.Second, flow(0), boundary, hot)
	if !moved || next != cold {
		t.Fatalf("fresh reports: Resteer = (%v, %v), want move to %v", next, moved, cold)
	}
	if fl.Moves() != 1 || fl.Boundaries() != 1 {
		t.Fatalf("counters = %d moves / %d boundaries, want 1/1", fl.Moves(), fl.Boundaries())
	}

	// Stale candidate: its tempting 0.1 must be ignored.
	view.fresh[cold] = false
	if next, moved := fl.Resteer(2*time.Second, flow(0), boundary, hot); moved || next != hot {
		t.Fatalf("stale candidate: Resteer = (%v, %v), want stay", next, moved)
	}

	// Stale current: no trustworthy comparison point, stay.
	view.fresh[cold] = true
	view.fresh[hot] = false
	if next, moved := fl.Resteer(3*time.Second, flow(0), boundary, hot); moved || next != hot {
		t.Fatalf("stale current: Resteer = (%v, %v), want stay", next, moved)
	}

	// Fresh again: recovery re-enables the move.
	view.fresh[hot] = true
	if _, moved := fl.Resteer(4*time.Second, flow(0), boundary, hot); !moved {
		t.Fatal("fresh recovery did not re-enable re-steering")
	}

	// No view: boundaries are still counted, flows never move.
	fl2 := NewFlowlet(srv, 50*time.Millisecond, rng.New(26), nil)
	if next, moved := fl2.Resteer(time.Second, flow(0), boundary, hot); moved || next != hot {
		t.Fatalf("nil view: Resteer = (%v, %v), want stay", next, moved)
	}
	if fl2.Boundaries() != 1 {
		t.Fatalf("nil view boundaries = %d, want 1", fl2.Boundaries())
	}
}

// The boundary predicate is strictly greater-than, and intra-flowlet
// packets don't touch the boundary counter.
func TestFlowletBoundaryStrict(t *testing.T) {
	srv := servers(2)
	fl := NewFlowlet(srv, 50*time.Millisecond, rng.New(27), loadsView(srv, 0.9, 0.1))
	if fl.Gap() != 50*time.Millisecond {
		t.Fatalf("gap = %v", fl.Gap())
	}
	if fl.Boundary(50 * time.Millisecond) {
		t.Fatal("idle == gap must not open a flowlet")
	}
	if !fl.Boundary(50*time.Millisecond + time.Nanosecond) {
		t.Fatal("idle just past gap must open a flowlet")
	}
	if next, moved := fl.Resteer(time.Second, flow(0), 50*time.Millisecond, srv[0]); moved || next != srv[0] {
		t.Fatalf("intra-flowlet Resteer = (%v, %v), want no-op", next, moved)
	}
	if fl.Boundaries() != 0 {
		t.Fatalf("intra-flowlet packet counted a boundary (%d)", fl.Boundaries())
	}
	if NewFlowlet(srv, 0, rng.New(28), nil).Gap() != DefaultFlowletGap {
		t.Fatal("gap ≤ 0 must take DefaultFlowletGap")
	}
}

// hotSwap mimics the testbed's hot-swappable wrapper shape: Scheme +
// Wrapper + blanket Stateful/Resteerer forwarding. It must only
// *report* the capabilities of its current inner scheme.
type hotSwap struct{ inner Scheme }

func (h *hotSwap) Pick(fk packet.FlowKey) []netip.Addr { return h.inner.Pick(fk) }
func (h *hotSwap) Name() string                        { return h.inner.Name() }
func (h *hotSwap) Unwrap() Scheme                      { return h.inner }
func (h *hotSwap) Observe(server netip.Addr, delta int) {
	if st := AsStateful(h.inner); st != nil {
		st.Observe(server, delta)
	}
}
func (h *hotSwap) Update(servers []netip.Addr) {
	if st := AsStateful(h.inner); st != nil {
		st.Update(servers)
	}
}
func (h *hotSwap) Resteer(now time.Duration, fk packet.FlowKey, idle time.Duration, cur netip.Addr) (netip.Addr, bool) {
	if rs := AsResteerer(h.inner); rs != nil {
		return rs.Resteer(now, fk, idle, cur)
	}
	return cur, false
}

// Capability probes unwrap delegation chains: a forwarding wrapper
// around a plain scheme reports no optional interfaces, while the same
// wrapper around a stateful scheme exposes the *outermost* handle.
func TestCapabilityProbingUnwraps(t *testing.T) {
	srv := servers(4)
	plain := NewRandom(srv, 2, rng.New(29))
	if AsStateful(plain) != nil || AsResteerer(plain) != nil {
		t.Fatal("plain Random must expose no optional interfaces")
	}
	wrapPlain := &hotSwap{inner: plain}
	if AsStateful(wrapPlain) != nil || AsResteerer(wrapPlain) != nil {
		t.Fatal("wrapper around a plain scheme must still probe nil")
	}
	wll := NewWeightedLeastLoad(srv, 2, rng.New(30), nil)
	if AsStateful(wll) == nil {
		t.Fatal("WeightedLeastLoad must probe Stateful")
	}
	if AsResteerer(wll) != nil {
		t.Fatal("WeightedLeastLoad must not probe Resteerer")
	}
	wrapWLL := &hotSwap{inner: wll}
	if st := AsStateful(wrapWLL); st == nil {
		t.Fatal("wrapper around a stateful scheme must probe Stateful")
	} else if _, isWrapper := st.(*hotSwap); !isWrapper {
		t.Fatal("probe must return the outermost handle, not the inner scheme")
	}
	fl := NewFlowlet(srv, 0, rng.New(31), nil)
	if AsStateful(fl) == nil || AsResteerer(fl) == nil {
		t.Fatal("Flowlet must probe both Stateful and Resteerer")
	}
	if AsResteerer(&hotSwap{inner: fl}) == nil {
		t.Fatal("wrapper around Flowlet must probe Resteerer")
	}
	// Nested wrappers unwrap all the way down; a nil inner probes false.
	if AsStateful(&hotSwap{inner: &hotSwap{inner: fl}}) == nil {
		t.Fatal("double wrapper must still probe through")
	}
	if AsStateful(&hotSwap{}) != nil {
		t.Fatal("wrapper with nil inner must probe nil")
	}
}
