// Package rng provides seeded random sources and the distributions used by
// the SRLB workloads: exponential service times (the paper's Poisson/PHP
// workload, §V-A), log-normal and Pareto tails (Wikipedia page costs, §VI),
// Zipf page popularity, and homogeneous/nonhomogeneous Poisson processes
// (the diurnal Wikipedia request rate).
//
// All randomness in the repository flows through this package so that every
// experiment is reproducible from a single seed.
package rng

import (
	"math"
	"math/rand/v2"
	"time"
)

// New returns a deterministic PCG-backed source for the given seed.
func New(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, 0x5317_1b5e_ed5e_ed00))
}

// Split derives an independent source from seed and a stream index, so
// subsystems (arrivals, selection, service times, …) consume independent
// streams and adding draws to one does not perturb the others.
func Split(seed uint64, stream uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, 0x9e37_79b9_7f4a_7c15^stream))
}

// Exp draws an exponentially distributed duration with the given mean.
func Exp(r *rand.Rand, mean time.Duration) time.Duration {
	if mean <= 0 {
		return 0
	}
	return time.Duration(r.ExpFloat64() * float64(mean))
}

// ExpRate draws an exponential inter-arrival time for a Poisson process of
// the given rate (events per second).
func ExpRate(r *rand.Rand, ratePerSec float64) time.Duration {
	if ratePerSec <= 0 {
		return time.Duration(math.MaxInt64)
	}
	return time.Duration(r.ExpFloat64() / ratePerSec * float64(time.Second))
}

// LogNormal draws a log-normally distributed duration parameterized by the
// distribution's mean and coefficient of variation (stddev/mean), which is
// the natural way to specify "median-ish with a heavy tail" service times.
func LogNormal(r *rand.Rand, mean time.Duration, cv float64) time.Duration {
	if mean <= 0 {
		return 0
	}
	if cv <= 0 {
		return mean
	}
	sigma2 := math.Log(1 + cv*cv)
	mu := math.Log(float64(mean)) - sigma2/2
	return time.Duration(math.Exp(mu + math.Sqrt(sigma2)*r.NormFloat64()))
}

// Pareto draws from a bounded Pareto with shape alpha and minimum xmin.
// Used for static-object sizes.
func Pareto(r *rand.Rand, xmin float64, alpha float64) float64 {
	if alpha <= 0 || xmin <= 0 {
		return xmin
	}
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return xmin / math.Pow(u, 1/alpha)
}

// Uniform draws a duration uniformly from [lo, hi).
func Uniform(r *rand.Rand, lo, hi time.Duration) time.Duration {
	if hi <= lo {
		return lo
	}
	return lo + time.Duration(r.Int64N(int64(hi-lo)))
}

// Jitter returns d multiplied by a uniform factor in [1-f, 1+f].
func Jitter(r *rand.Rand, d time.Duration, f float64) time.Duration {
	if f <= 0 {
		return d
	}
	scale := 1 + f*(2*r.Float64()-1)
	return time.Duration(float64(d) * scale)
}

// Zipf generates Zipf-distributed integers in [0, n) with exponent s > 1
// is not required; any s > 0 is accepted (s=0 degenerates to uniform).
// math/rand/v2 dropped the v1 Zipf generator, so this is a from-scratch
// implementation using Chlebus' inverse-CDF approximation over a
// precomputed cumulative table (exact, O(log n) per draw).
type Zipf struct {
	cdf []float64 // cdf[i] = P(X <= i)
	r   *rand.Rand
}

// NewZipf builds a Zipf sampler over ranks 0..n-1 with exponent s.
// Rank 0 is the most popular item.
func NewZipf(r *rand.Rand, n int, s float64) *Zipf {
	if n <= 0 {
		panic("rng: Zipf needs n > 0")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	inv := 1 / sum
	for i := range cdf {
		cdf[i] *= inv
	}
	cdf[n-1] = 1 // guard against FP round-down
	return &Zipf{cdf: cdf, r: r}
}

// N returns the number of ranks.
func (z *Zipf) N() int { return len(z.cdf) }

// Draw returns a rank in [0, n), rank 0 most popular.
func (z *Zipf) Draw() int {
	u := z.r.Float64()
	// Binary search for the first index with cdf[i] >= u.
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Prob returns the probability mass of rank i.
func (z *Zipf) Prob(i int) float64 {
	if i < 0 || i >= len(z.cdf) {
		return 0
	}
	if i == 0 {
		return z.cdf[0]
	}
	return z.cdf[i] - z.cdf[i-1]
}

// Poisson is a homogeneous Poisson arrival process.
type Poisson struct {
	r    *rand.Rand
	rate float64 // events per second
	next time.Duration
}

// NewPoisson creates a Poisson process with the given rate (events/sec)
// whose first arrival is drawn from time start.
func NewPoisson(r *rand.Rand, ratePerSec float64, start time.Duration) *Poisson {
	p := &Poisson{r: r, rate: ratePerSec, next: start}
	p.next += ExpRate(r, ratePerSec)
	return p
}

// Next returns the next arrival time and advances the process.
func (p *Poisson) Next() time.Duration {
	t := p.next
	p.next += ExpRate(p.r, p.rate)
	return t
}

// RateFn maps absolute time to an instantaneous rate (events/second).
type RateFn func(t time.Duration) float64

// NHPP is a nonhomogeneous Poisson process generated by thinning
// (Lewis & Shedler): candidate arrivals are drawn at rateMax and accepted
// with probability rate(t)/rateMax.
type NHPP struct {
	r       *rand.Rand
	rate    RateFn
	rateMax float64
	t       time.Duration
}

// NewNHPP creates a nonhomogeneous Poisson process. rateMax must bound
// rate(t) from above over the simulated horizon.
func NewNHPP(r *rand.Rand, rate RateFn, rateMax float64, start time.Duration) *NHPP {
	if rateMax <= 0 {
		panic("rng: NHPP needs rateMax > 0")
	}
	return &NHPP{r: r, rate: rate, rateMax: rateMax, t: start}
}

// Next returns the next accepted arrival time, or ok=false if none occurs
// before horizon.
func (p *NHPP) Next(horizon time.Duration) (time.Duration, bool) {
	for {
		p.t += ExpRate(p.r, p.rateMax)
		if p.t >= horizon {
			return 0, false
		}
		lambda := p.rate(p.t)
		if lambda < 0 {
			lambda = 0
		}
		if lambda > p.rateMax {
			// The bound is violated: accepting with probability 1 keeps the
			// process well defined (slightly under-dispersed); callers should
			// pass a correct bound.
			return p.t, true
		}
		if p.r.Float64()*p.rateMax < lambda {
			return p.t, true
		}
	}
}
