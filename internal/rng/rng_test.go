package rng

import (
	"math"
	"testing"
	"time"
)

func TestExpMean(t *testing.T) {
	r := New(1)
	const n = 200000
	mean := 100 * time.Millisecond
	var sum time.Duration
	for i := 0; i < n; i++ {
		sum += Exp(r, mean)
	}
	got := float64(sum) / n
	want := float64(mean)
	if math.Abs(got-want)/want > 0.02 {
		t.Fatalf("Exp mean = %v, want %v ±2%%", time.Duration(got), mean)
	}
}

func TestExpNonPositiveMean(t *testing.T) {
	r := New(1)
	if Exp(r, 0) != 0 || Exp(r, -time.Second) != 0 {
		t.Fatal("Exp with non-positive mean should be 0")
	}
}

func TestExpRateMean(t *testing.T) {
	r := New(2)
	const n = 100000
	var sum time.Duration
	for i := 0; i < n; i++ {
		sum += ExpRate(r, 50) // 50 events/sec => mean 20ms
	}
	got := float64(sum) / n
	want := float64(20 * time.Millisecond)
	if math.Abs(got-want)/want > 0.03 {
		t.Fatalf("ExpRate mean = %v, want 20ms ±3%%", time.Duration(got))
	}
}

func TestExpRateZero(t *testing.T) {
	r := New(2)
	if ExpRate(r, 0) != time.Duration(math.MaxInt64) {
		t.Fatal("ExpRate(0) should be effectively infinite")
	}
}

func TestLogNormalMeanAndCV(t *testing.T) {
	r := New(3)
	const n = 300000
	mean := 150 * time.Millisecond
	cv := 0.8
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		x := float64(LogNormal(r, mean, cv))
		sum += x
		sumsq += x * x
	}
	m := sum / n
	v := sumsq/n - m*m
	gotCV := math.Sqrt(v) / m
	if math.Abs(m-float64(mean))/float64(mean) > 0.02 {
		t.Fatalf("LogNormal mean = %v, want %v", time.Duration(m), mean)
	}
	if math.Abs(gotCV-cv) > 0.05 {
		t.Fatalf("LogNormal cv = %v, want %v", gotCV, cv)
	}
}

func TestLogNormalDegenerate(t *testing.T) {
	r := New(3)
	if LogNormal(r, 0, 1) != 0 {
		t.Fatal("LogNormal mean 0 should be 0")
	}
	if LogNormal(r, time.Second, 0) != time.Second {
		t.Fatal("LogNormal cv 0 should be the mean")
	}
}

func TestParetoBounds(t *testing.T) {
	r := New(4)
	for i := 0; i < 10000; i++ {
		x := Pareto(r, 2.0, 1.5)
		if x < 2.0 {
			t.Fatalf("Pareto sample %v below xmin", x)
		}
	}
	if Pareto(r, 2.0, 0) != 2.0 {
		t.Fatal("Pareto with alpha<=0 should return xmin")
	}
}

func TestUniformRange(t *testing.T) {
	r := New(5)
	lo, hi := 10*time.Millisecond, 20*time.Millisecond
	for i := 0; i < 10000; i++ {
		x := Uniform(r, lo, hi)
		if x < lo || x >= hi {
			t.Fatalf("Uniform sample %v outside [%v,%v)", x, lo, hi)
		}
	}
	if Uniform(r, hi, lo) != hi {
		t.Fatal("inverted range should return lo")
	}
}

func TestJitterBounds(t *testing.T) {
	r := New(6)
	d := 100 * time.Millisecond
	for i := 0; i < 10000; i++ {
		x := Jitter(r, d, 0.1)
		if x < 90*time.Millisecond || x > 110*time.Millisecond {
			t.Fatalf("Jitter sample %v outside ±10%%", x)
		}
	}
	if Jitter(r, d, 0) != d {
		t.Fatal("zero jitter should be identity")
	}
}

func TestZipfDistribution(t *testing.T) {
	r := New(7)
	z := NewZipf(r, 100, 1.0)
	counts := make([]int, 100)
	const n = 200000
	for i := 0; i < n; i++ {
		counts[z.Draw()]++
	}
	// Rank 0 should be the most frequent and roughly prob(0)*n.
	p0 := z.Prob(0)
	got := float64(counts[0]) / n
	if math.Abs(got-p0)/p0 > 0.05 {
		t.Fatalf("rank-0 freq %v, want %v ±5%%", got, p0)
	}
	// Monotone trend: first rank much more popular than the 50th.
	if counts[0] < counts[49]*5 {
		t.Fatalf("Zipf head not heavy enough: counts[0]=%d counts[49]=%d", counts[0], counts[49])
	}
}

func TestZipfProbSumsToOne(t *testing.T) {
	r := New(8)
	z := NewZipf(r, 50, 0.8)
	sum := 0.0
	for i := 0; i < z.N(); i++ {
		sum += z.Prob(i)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("Zipf probs sum to %v, want 1", sum)
	}
	if z.Prob(-1) != 0 || z.Prob(50) != 0 {
		t.Fatal("out-of-range Prob should be 0")
	}
}

func TestZipfUniformWhenSZero(t *testing.T) {
	r := New(9)
	z := NewZipf(r, 10, 0)
	for i := 0; i < 10; i++ {
		if math.Abs(z.Prob(i)-0.1) > 1e-9 {
			t.Fatalf("s=0 should be uniform, Prob(%d)=%v", i, z.Prob(i))
		}
	}
}

func TestZipfPanicsOnBadN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for n<=0")
		}
	}()
	NewZipf(New(1), 0, 1)
}

func TestPoissonProcessRate(t *testing.T) {
	r := New(10)
	p := NewPoisson(r, 100, 0) // 100 events/sec
	horizon := 100 * time.Second
	count := 0
	for {
		ts := p.Next()
		if ts >= horizon {
			break
		}
		count++
	}
	// Expect ~10000 events; 3 sigma ≈ 300.
	if count < 9600 || count > 10400 {
		t.Fatalf("Poisson produced %d events in 100s at rate 100, want ≈10000", count)
	}
}

func TestPoissonMonotone(t *testing.T) {
	r := New(11)
	p := NewPoisson(r, 1000, time.Second)
	prev := time.Duration(0)
	for i := 0; i < 1000; i++ {
		ts := p.Next()
		if ts < prev {
			t.Fatal("Poisson arrivals must be nondecreasing")
		}
		if ts < time.Second {
			t.Fatal("arrivals must start after the start time")
		}
		prev = ts
	}
}

func TestNHPPMatchesRate(t *testing.T) {
	r := New(12)
	// rate: 50/s in the first half, 150/s in the second half.
	rate := func(t time.Duration) float64 {
		if t < 50*time.Second {
			return 50
		}
		return 150
	}
	p := NewNHPP(r, rate, 150, 0)
	horizon := 100 * time.Second
	var first, second int
	for {
		ts, ok := p.Next(horizon)
		if !ok {
			break
		}
		if ts < 50*time.Second {
			first++
		} else {
			second++
		}
	}
	if first < 2200 || first > 2800 {
		t.Fatalf("NHPP first half: %d events, want ≈2500", first)
	}
	if second < 7000 || second > 8000 {
		t.Fatalf("NHPP second half: %d events, want ≈7500", second)
	}
}

func TestNHPPHorizon(t *testing.T) {
	r := New(13)
	p := NewNHPP(r, func(time.Duration) float64 { return 10 }, 10, 0)
	for {
		ts, ok := p.Next(time.Second)
		if !ok {
			break
		}
		if ts >= time.Second {
			t.Fatalf("arrival %v beyond horizon", ts)
		}
	}
}

func TestNHPPPanicsOnBadBound(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for rateMax<=0")
		}
	}()
	NewNHPP(New(1), func(time.Duration) float64 { return 1 }, 0, 0)
}

func TestDeterminism(t *testing.T) {
	a, b := New(99), New(99)
	for i := 0; i < 1000; i++ {
		if Exp(a, time.Second) != Exp(b, time.Second) {
			t.Fatal("same seed must give same stream")
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	a := Split(7, 0)
	b := Split(7, 1)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split streams look identical (%d collisions)", same)
	}
}

func BenchmarkZipfDraw(b *testing.B) {
	z := NewZipf(New(1), 1_000_000, 0.99)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		z.Draw()
	}
}

func BenchmarkExp(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		Exp(r, 100*time.Millisecond)
	}
}
