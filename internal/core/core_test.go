package core

import (
	"net/netip"
	"testing"
	"time"

	"srlb/internal/des"
	"srlb/internal/flowtable"
	"srlb/internal/ipv6"
	"srlb/internal/netsim"
	"srlb/internal/packet"
	"srlb/internal/rng"
	"srlb/internal/selection"
	"srlb/internal/srv6"
	"srlb/internal/tcpseg"
)

var (
	client = ipv6.MustAddr("2001:db8:c::1")
	lbAddr = ipv6.MustAddr("2001:db8:1b::1")
	sAddr1 = ipv6.MustAddr("2001:db8:5::1")
	sAddr2 = ipv6.MustAddr("2001:db8:5::2")
	vip    = ipv6.MustAddr("2001:db8:f00d::1")
)

type capture struct {
	pkts []*packet.Packet
}

// Clone: the network recycles delivered packets once Handle returns.
func (c *capture) Handle(p *packet.Packet) { c.pkts = append(c.pkts, p.Clone()) }

// rig: LB plus captures at both server addresses and the client.
type rig struct {
	sim    *des.Simulator
	net    *netsim.Network
	lb     *LoadBalancer
	s1, s2 *capture
	cli    *capture
}

func newRig(t *testing.T, cfg Config) *rig {
	t.Helper()
	sim := des.New()
	net := netsim.New(sim, netsim.Config{VerifyChecksums: true})
	g := &rig{sim: sim, net: net, s1: &capture{}, s2: &capture{}, cli: &capture{}}
	net.Attach(g.s1, sAddr1)
	net.Attach(g.s2, sAddr2)
	net.Attach(g.cli, client)
	if cfg.Addr == (netip.Addr{}) {
		cfg.Addr = lbAddr
	}
	if cfg.VIPs == nil {
		cfg.VIPs = map[netip.Addr]selection.Scheme{
			vip: selection.NewRandom([]netip.Addr{sAddr1, sAddr2}, 2, rng.New(1)),
		}
	}
	g.lb = New(sim, net, cfg)
	return g
}

func clientSYN(port uint16) *packet.Packet {
	return &packet.Packet{
		IP:  ipv6.Header{Src: client, Dst: vip},
		TCP: tcpseg.Segment{SrcPort: port, DstPort: 80, Flags: tcpseg.FlagSYN},
	}
}

func TestSYNGetsHuntSRH(t *testing.T) {
	g := newRig(t, Config{})
	g.net.Send(clientSYN(40000))
	g.sim.Run()

	total := len(g.s1.pkts) + len(g.s2.pkts)
	if total != 1 {
		t.Fatalf("servers received %d packets, want 1", total)
	}
	var got *packet.Packet
	if len(g.s1.pkts) == 1 {
		got = g.s1.pkts[0]
	} else {
		got = g.s2.pkts[0]
	}
	if got.SRH == nil {
		t.Fatal("SYN forwarded without SRH")
	}
	if got.SRH.SegmentsLeft != 2 {
		t.Fatalf("SL = %d, want 2", got.SRH.SegmentsLeft)
	}
	final, _ := got.SRH.Final()
	if final != vip {
		t.Fatalf("final segment = %v, want the VIP", final)
	}
	path := got.SRH.Path()
	if len(path) != 3 || path[0] == path[1] {
		t.Fatalf("path = %v", path)
	}
	if got.IP.Dst != path[0] {
		t.Fatalf("dst %v != first segment %v", got.IP.Dst, path[0])
	}
	if g.lb.Counts.Get("hunts_started") != 1 {
		t.Fatal("hunt not counted")
	}
}

// serverSYNACK builds the acceptance packet server s would send.
func serverSYNACK(s netip.Addr, clientPort uint16) *packet.Packet {
	srh := srv6.MustNew(ipv6.ProtoTCP, s, lbAddr, client)
	srh.Advance() // server consumed its own segment; LB active
	return &packet.Packet{
		IP:  ipv6.Header{Src: vip, Dst: lbAddr},
		SRH: srh,
		TCP: tcpseg.Segment{
			SrcPort: 80, DstPort: clientPort, Seq: 1, Ack: 1,
			Flags: tcpseg.FlagSYN | tcpseg.FlagACK,
		},
	}
}

func TestSYNACKLearnsFlowAndStrips(t *testing.T) {
	g := newRig(t, Config{})
	g.net.Send(serverSYNACK(sAddr2, 40000))
	g.sim.Run()

	if len(g.cli.pkts) != 1 {
		t.Fatalf("client received %d packets", len(g.cli.pkts))
	}
	sa := g.cli.pkts[0]
	if sa.SRH != nil {
		t.Fatal("SRH not stripped before the client")
	}
	if !sa.IsSYNACK() {
		t.Fatal("not a SYN-ACK")
	}
	if sa.IP.Src != vip || sa.IP.Dst != client {
		t.Fatalf("addresses = %v -> %v", sa.IP.Src, sa.IP.Dst)
	}
	if g.lb.FlowCount() != 1 {
		t.Fatalf("flow count = %d", g.lb.FlowCount())
	}

	// A subsequent client packet must be steered to sAddr2.
	ack := &packet.Packet{
		IP:  ipv6.Header{Src: client, Dst: vip},
		TCP: tcpseg.Segment{SrcPort: 40000, DstPort: 80, Flags: tcpseg.FlagACK, Payload: []byte("GET /")},
	}
	g.net.Send(ack)
	g.sim.Run()
	if len(g.s2.pkts) != 1 {
		t.Fatalf("server2 received %d packets, want the steered ACK", len(g.s2.pkts))
	}
	steered := g.s2.pkts[0]
	if steered.SRH == nil || steered.SRH.SegmentsLeft != 1 {
		t.Fatalf("steered SRH = %v", steered.SRH)
	}
	final, _ := steered.SRH.Final()
	if final != vip {
		t.Fatal("steered final segment must be the VIP")
	}
	if len(g.s1.pkts) != 0 {
		t.Fatal("wrong server received steered traffic")
	}
}

func TestMidFlowMissDroppedByDefault(t *testing.T) {
	g := newRig(t, Config{})
	ack := &packet.Packet{
		IP:  ipv6.Header{Src: client, Dst: vip},
		TCP: tcpseg.Segment{SrcPort: 41000, DstPort: 80, Flags: tcpseg.FlagACK},
	}
	g.net.Send(ack)
	g.sim.Run()
	if g.lb.Counts.Get("miss_dropped") != 1 {
		t.Fatal("miss not dropped/counted")
	}
	if len(g.s1.pkts)+len(g.s2.pkts) != 0 {
		t.Fatal("miss wrongly forwarded")
	}
}

func TestMidFlowMissFallback(t *testing.T) {
	fallback, err := selection.NewConsistentHash([]netip.Addr{sAddr1, sAddr2}, 101)
	if err != nil {
		t.Fatal(err)
	}
	g := newRig(t, Config{MissFallback: fallback})
	ack := &packet.Packet{
		IP:  ipv6.Header{Src: client, Dst: vip},
		TCP: tcpseg.Segment{SrcPort: 41000, DstPort: 80, Flags: tcpseg.FlagACK},
	}
	g.net.Send(ack)
	g.sim.Run()
	if g.lb.Counts.Get("miss_fallback") != 1 {
		t.Fatal("fallback not used")
	}
	if len(g.s1.pkts)+len(g.s2.pkts) != 1 {
		t.Fatal("fallback did not forward")
	}
}

func TestFINMarksFlowClosing(t *testing.T) {
	g := newRig(t, Config{Flows: flowtable.Config{FinLinger: time.Second}})
	g.net.Send(serverSYNACK(sAddr1, 42000))
	g.sim.Run()
	fin := &packet.Packet{
		IP:  ipv6.Header{Src: client, Dst: vip},
		TCP: tcpseg.Segment{SrcPort: 42000, DstPort: 80, Flags: tcpseg.FlagFIN | tcpseg.FlagACK},
	}
	g.net.Send(fin)
	g.sim.Run()
	if g.lb.Counts.Get("closing_observed") != 1 {
		t.Fatal("FIN not observed")
	}
	// After the linger a sweep must reclaim the flow.
	g.sim.RunUntil(g.sim.Now() + 5*time.Second)
	g.lb.SweepNow()
	if g.lb.FlowCount() != 0 {
		t.Fatalf("flow count = %d after linger+sweep", g.lb.FlowCount())
	}
}

func TestSweepReclaimsIdleFlows(t *testing.T) {
	g := newRig(t, Config{
		Flows:         flowtable.Config{IdleTTL: 2 * time.Second},
		SweepInterval: time.Second,
	})
	g.net.Send(serverSYNACK(sAddr1, 43000))
	g.sim.Run()
	if g.lb.FlowCount() != 1 {
		t.Fatal("flow not installed")
	}
	// Any datapath activity after the TTL triggers the opportunistic sweep.
	g.sim.RunUntil(10 * time.Second)
	g.net.Send(clientSYN(44000))
	g.sim.Run()
	if g.lb.FlowCount() != 0 {
		t.Fatalf("idle flow survived: count=%d", g.lb.FlowCount())
	}
	if g.lb.FlowStats().Expiries == 0 {
		t.Fatal("no expiries recorded")
	}
}

func TestOpportunisticSweepRateLimited(t *testing.T) {
	g := newRig(t, Config{
		Flows:         flowtable.Config{IdleTTL: time.Hour},
		SweepInterval: time.Second,
	})
	// Many packets inside one interval: lastSweep must only advance once.
	for i := 0; i < 5; i++ {
		g.net.Send(clientSYN(uint16(45000 + i)))
	}
	g.sim.Run()
	if g.lb.lastSweep != 0 && g.lb.lastSweep > 100*time.Millisecond {
		t.Fatalf("sweep timestamp advanced unexpectedly: %v", g.lb.lastSweep)
	}
	// Disabled sweeping never sweeps.
	h := newRig(t, Config{SweepInterval: -1})
	h.net.Send(clientSYN(46000))
	h.sim.Run()
	if h.lb.lastSweep != 0 {
		t.Fatal("negative SweepInterval must disable sweeping")
	}
}

func TestUnknownVIPCounted(t *testing.T) {
	g := newRig(t, Config{})
	other := ipv6.MustAddr("2001:db8:f00d::99")
	p := &packet.Packet{
		IP:  ipv6.Header{Src: client, Dst: other},
		TCP: tcpseg.Segment{SrcPort: 1, DstPort: 80, Flags: tcpseg.FlagSYN},
	}
	// Not attached to the LB: send directly through Handle to exercise the
	// guard (the LAN would never deliver it).
	g.lb.Handle(p)
	if g.lb.Counts.Get("unknown_vip") != 1 {
		t.Fatal("unknown VIP not counted")
	}
}

func TestReturnPathValidation(t *testing.T) {
	g := newRig(t, Config{})
	// SRH whose active segment is NOT the LB: must be rejected.
	srh := srv6.MustNew(ipv6.ProtoTCP, sAddr1, client)
	bad := &packet.Packet{
		IP:  ipv6.Header{Src: vip, Dst: lbAddr},
		SRH: srh,
		TCP: tcpseg.Segment{SrcPort: 80, DstPort: 1, Flags: tcpseg.FlagSYN | tcpseg.FlagACK},
	}
	g.lb.Handle(bad)
	if g.lb.Counts.Get("return_bad_segment") != 1 {
		t.Fatal("bad return segment not rejected")
	}
	// Packet to the LB without SRH.
	plain := &packet.Packet{
		IP:  ipv6.Header{Src: vip, Dst: lbAddr},
		TCP: tcpseg.Segment{SrcPort: 80, DstPort: 1, Flags: tcpseg.FlagACK},
	}
	g.lb.Handle(plain)
	if g.lb.Counts.Get("to_lb_no_srh") != 1 {
		t.Fatal("plain LB packet not counted")
	}
}

func TestConfigValidation(t *testing.T) {
	sim := des.New()
	net := netsim.New(sim, netsim.Config{})
	for name, cfg := range map[string]Config{
		"no vips":  {Addr: lbAddr},
		"bad addr": {VIPs: map[netip.Addr]selection.Scheme{vip: nil}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			New(sim, net, cfg)
		}()
	}
}

func TestNonSYNACKReturnRelayedWithoutLearning(t *testing.T) {
	// A server could route other packets through the LB (not in the
	// normal protocol, but must not corrupt state): they relay without a
	// flow-table insert.
	g := newRig(t, Config{})
	srh := srv6.MustNew(ipv6.ProtoTCP, sAddr1, lbAddr, client)
	srh.Advance()
	p := &packet.Packet{
		IP:  ipv6.Header{Src: vip, Dst: lbAddr},
		SRH: srh,
		TCP: tcpseg.Segment{SrcPort: 80, DstPort: 5, Flags: tcpseg.FlagACK},
	}
	g.net.Send(p)
	g.sim.Run()
	if g.lb.FlowCount() != 0 {
		t.Fatal("non-SYN-ACK return installed flow state")
	}
	if len(g.cli.pkts) != 1 {
		t.Fatal("return packet not relayed")
	}
}
