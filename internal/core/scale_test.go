package core

import (
	"fmt"
	"net/netip"
	"testing"

	"srlb/internal/des"
	"srlb/internal/ipv6"
	"srlb/internal/netsim"
	"srlb/internal/packet"
	"srlb/internal/selection"
	"srlb/internal/tcpseg"
)

// scaleAddr derives a deterministic test address in the given /48-ish
// space: 2001:db8:<space>::<i+1>.
func scaleAddr(space byte, i int) netip.Addr {
	a := [16]byte{0x20, 0x01, 0x0d, 0xb8, 0, space}
	n := uint64(i) + 1
	for b := 0; b < 8; b++ {
		a[15-b] = byte(n >> (8 * b))
	}
	return netip.AddrFrom16(a)
}

// scaleVIPList builds n VIPConfigs over the given servers, round-robin
// schemes (deterministic, rng-free) so two independently built LBs pick
// identically for identical packet sequences.
func scaleVIPList(n int, servers []netip.Addr) []VIPConfig {
	list := make([]VIPConfig, n)
	for i := range list {
		list[i] = VIPConfig{Addr: scaleAddr(0xaa, i), Scheme: selection.NewRoundRobin(servers, 2)}
	}
	return list
}

// scaleLB builds a detached LB over a delivery-dropping network: Handle
// runs the full dispatch (including the wire marshal in Send) but
// nothing is ever delivered, so packets can be driven directly.
func scaleLB(cfg Config) *LoadBalancer {
	sim := des.New()
	net := netsim.New(sim, netsim.Config{LossProb: 1})
	return NewDetached(sim, net, cfg)
}

// The legacy map form and the indexed VIPList form must be behaviorally
// identical: same per-VIP SYN demux, same counters, same flow-table
// state for the same packet sequence.
func TestVIPListMapFormEquivalence(t *testing.T) {
	const vips, ports = 8, 64
	servers := []netip.Addr{sAddr1, sAddr2}
	listForm := scaleLB(Config{Addr: lbAddr, VIPList: scaleVIPList(vips, servers)})
	m := make(map[netip.Addr]selection.Scheme, vips)
	for _, vc := range scaleVIPList(vips, servers) {
		m[vc.Addr] = vc.Scheme
	}
	mapForm := scaleLB(Config{Addr: lbAddr, VIPs: m})

	if listForm.NumVIPs() != vips || mapForm.NumVIPs() != vips {
		t.Fatalf("NumVIPs = %d/%d, want %d", listForm.NumVIPs(), mapForm.NumVIPs(), vips)
	}
	drive := func(lb *LoadBalancer) {
		var pkt packet.Packet
		for i := 0; i < vips*ports; i++ {
			dst := scaleAddr(0xaa, i%vips)
			// A SYN opening the flow, then a steered packet that misses
			// (no return path here, so every non-SYN is a miss).
			pkt = packet.Packet{
				IP:  ipv6.Header{Src: client, Dst: dst},
				TCP: tcpseg.Segment{SrcPort: uint16(1024 + i), DstPort: 80, Flags: tcpseg.FlagSYN},
			}
			lb.Handle(&pkt)
			pkt = packet.Packet{
				IP:  ipv6.Header{Src: client, Dst: dst},
				TCP: tcpseg.Segment{SrcPort: uint16(1024 + i), DstPort: 80, Flags: tcpseg.FlagACK},
			}
			lb.Handle(&pkt)
		}
	}
	drive(listForm)
	drive(mapForm)
	for i := 0; i < vips; i++ {
		addr := scaleAddr(0xaa, i)
		if a, b := listForm.VIPSYNs(addr), mapForm.VIPSYNs(addr); a != b || a != ports {
			t.Fatalf("VIP %d SYNs: list=%d map=%d, want %d", i, a, b, ports)
		}
	}
	for _, key := range []string{"syn_rx", "hunts_started", "miss_dropped", "steered", "unknown_vip"} {
		if a, b := listForm.Counts.Get(key), mapForm.Counts.Get(key); a != b {
			t.Fatalf("counter %q: list=%d map=%d", key, a, b)
		}
	}
	if a, b := listForm.FlowCount(), mapForm.FlowCount(); a != b {
		t.Fatalf("flow count: list=%d map=%d", a, b)
	}
}

// SeedFlow installs a binding exactly as a learned SYN-ACK would: a
// subsequent client packet steers to the seeded server instead of
// dropping as a miss.
func TestSeedFlowSteersLikeLearned(t *testing.T) {
	g := newRig(t, Config{})
	g.lb.SeedFlow(packet.FlowKey{Src: client, Dst: vip, SrcPort: 47000, DstPort: 80}, sAddr2)
	if g.lb.FlowCount() != 1 {
		t.Fatalf("flow count = %d after seed", g.lb.FlowCount())
	}
	ack := &packet.Packet{
		IP:  ipv6.Header{Src: client, Dst: vip},
		TCP: tcpseg.Segment{SrcPort: 47000, DstPort: 80, Flags: tcpseg.FlagACK},
	}
	g.net.Send(ack)
	g.sim.Run()
	if len(g.s2.pkts) != 1 || len(g.s1.pkts) != 0 {
		t.Fatalf("seeded flow steered to s1=%d s2=%d packets, want s2 only", len(g.s1.pkts), len(g.s2.pkts))
	}
	if g.lb.Counts.Get("miss_dropped") != 0 {
		t.Fatal("seeded flow treated as a miss")
	}
}

// Construction allocation must not scale with VIP count: the compiled
// dispatch table is one slice plus one presized map, and no per-VIP
// metric keys or strings are built. A per-VIP allocation would show up
// here as ~960 extra allocs at 1024 VIPs.
func TestNewDetachedConstantAllocs(t *testing.T) {
	servers := []netip.Addr{sAddr1, sAddr2}
	allocs := func(n int) float64 {
		list := scaleVIPList(n, servers)
		sim := des.New()
		net := netsim.New(sim, netsim.Config{LossProb: 1})
		return testing.AllocsPerRun(10, func() {
			lb := NewDetached(sim, net, Config{Addr: lbAddr, VIPList: list})
			if lb.NumVIPs() != n {
				t.Fatalf("built %d VIPs, want %d", lb.NumVIPs(), n)
			}
		})
	}
	small, large := allocs(64), allocs(1024)
	t.Logf("NewDetached allocs: %d VIPs → %.0f, %d VIPs → %.0f", 64, small, 1024, large)
	// Slack covers map-bucket granularity between the two presized maps;
	// anything per-VIP blows through it immediately.
	if large > small+16 {
		t.Fatalf("construction allocs scale with VIP count: %.0f at 64 VIPs vs %.0f at 1024", small, large)
	}
}

// The two config forms are mutually exclusive and VIPList entries are
// validated like map keys.
func TestVIPListValidation(t *testing.T) {
	servers := []netip.Addr{sAddr1, sAddr2}
	scheme := selection.NewRoundRobin(servers, 2)
	for name, cfg := range map[string]Config{
		"both forms": {
			Addr:    lbAddr,
			VIPs:    map[netip.Addr]selection.Scheme{vip: scheme},
			VIPList: []VIPConfig{{Addr: scaleAddr(0xaa, 0), Scheme: scheme}},
		},
		"duplicate vip": {
			Addr: lbAddr,
			VIPList: []VIPConfig{
				{Addr: scaleAddr(0xaa, 1), Scheme: scheme},
				{Addr: scaleAddr(0xaa, 1), Scheme: scheme},
			},
		},
		"bad vip addr": {
			Addr:    lbAddr,
			VIPList: []VIPConfig{{Scheme: scheme}},
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			scaleLB(cfg)
		}()
	}
}

// The dense ids assigned to the map form are sorted by address, so
// id-ordered state (VIPSYNs reads, iteration) is deterministic across
// map iteration orders.
func TestMapFormIDsDeterministic(t *testing.T) {
	servers := []netip.Addr{sAddr1, sAddr2}
	build := func() string {
		m := make(map[netip.Addr]selection.Scheme, 16)
		for i := 0; i < 16; i++ {
			m[scaleAddr(0xaa, i)] = selection.NewRoundRobin(servers, 2)
		}
		lb := scaleLB(Config{Addr: lbAddr, VIPs: m})
		sig := ""
		for i := range lb.vips {
			sig += fmt.Sprintf("%d:%v;", i, lb.vips[i].addr)
		}
		return sig
	}
	first := build()
	for trial := 0; trial < 4; trial++ {
		if got := build(); got != first {
			t.Fatalf("map-form id assignment varies across builds:\n%s\nvs\n%s", first, got)
		}
	}
}
