package core

import (
	"net/netip"
	"testing"

	"srlb/internal/ipv6"
	"srlb/internal/packet"
	"srlb/internal/tcpseg"
)

func midFlow(port uint16, flags tcpseg.Flags) *packet.Packet {
	return &packet.Packet{
		IP:  ipv6.Header{Src: client, Dst: vip},
		TCP: tcpseg.Segment{SrcPort: port, DstPort: 80, Flags: flags},
	}
}

// The warm-handoff contract: a replica seeded via ImportFlows is
// stream-identical to one that learned the same bindings from SYN-ACKs.
// Both rigs then face the same mid-flow traffic — data ACKs on every
// flow, a FIN teardown, a post-FIN retransmit — and must steer every
// packet to the same server with identical flow-table accounting.
func TestImportFlowsStreamIdentical(t *testing.T) {
	ports := []uint16{40000, 40001, 40002, 40003}
	servers := []netip.Addr{sAddr1, sAddr2, sAddr2, sAddr1}

	// The teacher learns each flow the SRv6 way: the accepting server's
	// SYN-ACK transits the LB.
	teacher := newRig(t, Config{})
	for i, p := range ports {
		teacher.net.Send(serverSYNACK(servers[i], p))
	}
	teacher.sim.Run()
	if got := teacher.lb.FlowCount(); got != len(ports) {
		t.Fatalf("teacher learned %d flows, want %d", got, len(ports))
	}

	// The student inherits the teacher's table wholesale.
	student := newRig(t, Config{})
	if n := student.lb.ImportFlows(teacher.lb.ExportFlows()); n != len(ports) {
		t.Fatalf("student imported %d bindings, want %d", n, len(ports))
	}
	if got := student.lb.FlowCount(); got != len(ports) {
		t.Fatalf("student holds %d flows, want %d", got, len(ports))
	}

	drive := func(g *rig) map[uint16]netip.Addr {
		base1, base2 := len(g.s1.pkts), len(g.s2.pkts)
		for _, p := range ports {
			g.net.Send(midFlow(p, tcpseg.FlagACK))
		}
		g.net.Send(midFlow(ports[0], tcpseg.FlagFIN|tcpseg.FlagACK))
		g.net.Send(midFlow(ports[0], tcpseg.FlagACK)) // retransmit in the linger
		g.sim.Run()
		dst := make(map[uint16]netip.Addr)
		for _, pkt := range g.s1.pkts[base1:] {
			dst[pkt.TCP.SrcPort] = sAddr1
		}
		for _, pkt := range g.s2.pkts[base2:] {
			dst[pkt.TCP.SrcPort] = sAddr2
		}
		return dst
	}
	taught := drive(teacher)
	imported := drive(student)

	for i, p := range ports {
		if taught[p] != servers[i] {
			t.Fatalf("teacher steered port %d to %v, want the accepting server %v", p, taught[p], servers[i])
		}
		if imported[p] != servers[i] {
			t.Fatalf("student steered port %d to %v, want the accepting server %v", p, imported[p], servers[i])
		}
	}
	// Identical books: the import counted one insert per binding — the
	// same as SYN-ACK learning — and the drive produced the same hits,
	// closing transition and zero misses on both sides.
	if ts, ss := teacher.lb.FlowStats(), student.lb.FlowStats(); ts != ss {
		t.Fatalf("flow-table stats diverge:\nteacher %+v\nstudent %+v", ts, ss)
	}
	for _, counter := range []string{"steered", "closing_observed", "miss_dropped"} {
		if tc, sc := teacher.lb.Counts.Get(counter), student.lb.Counts.Get(counter); tc != sc {
			t.Fatalf("%s: teacher %d, student %d", counter, tc, sc)
		}
	}
	if got := teacher.lb.FlowCount(); got != student.lb.FlowCount() {
		t.Fatalf("flow counts diverge: teacher %d, student %d", got, student.lb.FlowCount())
	}
}
