// Package core implements SRLB's primary contribution: the load balancer
// that performs Service Hunting within the IP forwarding plane (paper
// §II).
//
// The load balancer sits at the edge of the data center and advertises
// routes for the virtual IPs (VIPs). Its entire job is forwarding-plane
// state manipulation — it never terminates connections and knows nothing
// about application protocols:
//
//   - On a new flow's SYN, it selects candidate servers (two at random in
//     the paper's evaluation) and inserts an SRH listing them, with the
//     VIP as the final segment. The candidates then "hunt": each may
//     accept or pass the connection along, based on purely local state.
//   - The accepting server's SYN-ACK travels back through the LB carrying
//     an SRH [server, LB, client]; the LB reads the accepting server from
//     the segment list, installs flow state, strips the SRH, and forwards
//     to the (SR-oblivious) client.
//   - Every subsequent client packet of the flow is steered straight to
//     the accepting server through a one-segment SRH.
//   - FIN/RST mark the flow closing; entries then expire after a short
//     linger (and idle flows after a TTL), bounding LB state.
//
// Dispatch is indexed: VIP configuration compiles into a dense table of
// per-VIP entries plus one address→id map, so the per-packet cost is a
// single map lookup followed by array indexing — O(1) in the number of
// advertised services, whether the balancer serves four VIPs or ten
// thousand.
package core

import (
	"fmt"
	"net/netip"
	"sort"
	"time"

	"srlb/internal/des"
	"srlb/internal/flowtable"
	"srlb/internal/ipv6"
	"srlb/internal/metrics"
	"srlb/internal/netsim"
	"srlb/internal/packet"
	"srlb/internal/selection"
	"srlb/internal/srv6"
	"srlb/internal/tcpseg"
)

// VIPConfig declares one advertised VIP in the indexed configuration
// form. Position in Config.VIPList is the VIP's dense internal id, so a
// caller that builds the list in a deterministic order gets a fully
// deterministic balancer without any map-iteration concerns.
type VIPConfig struct {
	// Addr is the virtual IP clients address.
	Addr netip.Addr
	// Scheme selects candidate servers for new flows.
	Scheme selection.Scheme
	// Fallback, when non-nil, steers non-SYN flow-table misses for this
	// VIP (overriding Config.MissFallback). A consistent-hash scheme
	// makes post-failure steering deterministic.
	Fallback selection.Scheme
}

// Config assembles a load balancer. Exactly one of VIPs (the legacy map
// form) or VIPList (the indexed form) must be populated.
type Config struct {
	// Addr is the LB's own address (the segment servers route SYN-ACKs
	// through).
	Addr netip.Addr
	// VIPs maps each advertised virtual IP to its selection scheme — the
	// legacy map form. It is compiled into the same indexed internal
	// table as VIPList (sorted by address so ids are deterministic).
	VIPs map[netip.Addr]selection.Scheme
	// VIPList declares the advertised VIPs in dense-id order — the form
	// scale callers use: one slice, no per-VIP map churn, ids assigned by
	// position.
	VIPList []VIPConfig
	// Flows tunes the flow table (zero value = defaults).
	Flows flowtable.Config
	// SweepInterval bounds how often expired flow entries are collected.
	// Sweeps run opportunistically on the datapath (at most one per
	// interval), never from a free-running timer — so an idle simulation
	// terminates. Default 1s of virtual time; negative disables.
	SweepInterval time.Duration
	// MissFallback, when non-nil, selects a server for non-SYN packets
	// that miss the flow table (e.g. after LB state loss) instead of
	// dropping them. A consistent-hash scheme makes this deterministic.
	MissFallback selection.Scheme
	// MissFallbacks, when non-nil, overrides MissFallback per VIP for the
	// legacy map form. (VIPList callers set VIPConfig.Fallback instead.)
	// A VIP absent from the map falls back to MissFallback, then to
	// dropping.
	MissFallbacks map[netip.Addr]selection.Scheme
}

// vipEntry is the compiled per-VIP dispatch state: everything the hot
// path needs after the single vipIndex lookup, in one cache-friendly
// slot. The per-VIP SYN counter lives here as a plain integer — no
// string-keyed metrics map on the per-packet path.
type vipEntry struct {
	addr     netip.Addr
	scheme   selection.Scheme
	fallback selection.Scheme
	// stateful and resteer cache the scheme's optional capabilities,
	// probed once at compile time (through any delegation wrapper): nil
	// for the paper's plain schemes, so the load-oblivious hot path
	// stays free of interface probes per packet.
	stateful selection.Stateful
	resteer  selection.Resteerer
	syns     uint64
}

// LoadBalancer is the SRLB forwarding-plane element.
type LoadBalancer struct {
	cfg       Config
	sim       *des.Simulator
	net       *netsim.Network
	flows     *flowtable.Table
	lastSweep time.Duration
	Counts    *metrics.Counter
	// vipIndex maps each advertised VIP to its dense id in vips. This is
	// the only per-packet map lookup on the dispatch path.
	vipIndex map[netip.Addr]int32
	vips     []vipEntry
}

// New builds the LB and attaches it to the network under its own address
// and every VIP it advertises.
func New(sim *des.Simulator, net *netsim.Network, cfg Config) *LoadBalancer {
	lb := NewDetached(sim, net, cfg)
	addrs := make([]netip.Addr, 0, 1+len(lb.vips))
	addrs = append(addrs, cfg.Addr)
	for i := range lb.vips {
		addrs = append(addrs, lb.vips[i].addr)
	}
	net.Attach(lb, addrs...)
	return lb
}

// NewDetached builds the LB without attaching it to the LAN — for
// multi-replica deployments the caller places each replica into the
// anycast/ECMP groups of the shared VIP and LB return address itself
// (netsim.AttachAnycast).
func NewDetached(sim *des.Simulator, net *netsim.Network, cfg Config) *LoadBalancer {
	if err := ipv6.CheckAddr(cfg.Addr); err != nil {
		panic(fmt.Sprintf("core: bad LB addr: %v", err))
	}
	if cfg.SweepInterval == 0 {
		cfg.SweepInterval = time.Second
	}
	lb := &LoadBalancer{
		cfg:    cfg,
		sim:    sim,
		net:    net,
		flows:  flowtable.New(cfg.Flows),
		Counts: metrics.NewCounter(),
	}
	lb.compileVIPs()
	return lb
}

// compileVIPs builds the indexed dispatch table from whichever config
// form the caller used. Allocation is constant-count (one slice, one
// presized map) regardless of VIP count.
func (lb *LoadBalancer) compileVIPs() {
	cfg := &lb.cfg
	if len(cfg.VIPs) > 0 && len(cfg.VIPList) > 0 {
		panic("core: set Config.VIPs or Config.VIPList, not both")
	}
	list := cfg.VIPList
	if len(list) == 0 {
		if len(cfg.VIPs) == 0 {
			panic("core: at least one VIP is required")
		}
		// Compile the map form: sort by address so dense ids (and thus
		// any id-ordered iteration) are deterministic.
		list = make([]VIPConfig, 0, len(cfg.VIPs))
		for vip, scheme := range cfg.VIPs {
			list = append(list, VIPConfig{Addr: vip, Scheme: scheme, Fallback: cfg.MissFallbacks[vip]})
		}
		sort.Slice(list, func(i, j int) bool { return list[i].Addr.Less(list[j].Addr) })
	}
	lb.vips = make([]vipEntry, len(list))
	lb.vipIndex = make(map[netip.Addr]int32, len(list))
	for i, vc := range list {
		if err := ipv6.CheckAddr(vc.Addr); err != nil {
			panic(fmt.Sprintf("core: bad VIP: %v", err))
		}
		if _, dup := lb.vipIndex[vc.Addr]; dup {
			panic(fmt.Sprintf("core: duplicate VIP %v", vc.Addr))
		}
		fb := vc.Fallback
		if fb == nil {
			fb = cfg.MissFallbacks[vc.Addr]
		}
		if fb == nil {
			fb = cfg.MissFallback
		}
		lb.vips[i] = vipEntry{
			addr:     vc.Addr,
			scheme:   vc.Scheme,
			fallback: fb,
			stateful: selection.AsStateful(vc.Scheme),
			resteer:  selection.AsResteerer(vc.Scheme),
		}
		lb.vipIndex[vc.Addr] = int32(i)
	}
}

// Addr returns the LB's address.
func (lb *LoadBalancer) Addr() netip.Addr { return lb.cfg.Addr }

// NumVIPs returns how many VIPs the balancer advertises.
func (lb *LoadBalancer) NumVIPs() int { return len(lb.vips) }

// VIPSYNs returns the number of client SYNs this replica received for
// the given VIP — the per-service demand split of a multi-VIP cluster.
// Summed across replicas it equals the queries offered to the VIP (each
// query sends one SYN unless client retransmission is enabled).
func (lb *LoadBalancer) VIPSYNs(vip netip.Addr) uint64 {
	id, ok := lb.vipIndex[vip]
	if !ok {
		return 0
	}
	return lb.vips[id].syns
}

// FlowCount returns the number of tracked flows.
func (lb *LoadBalancer) FlowCount() int { return lb.flows.Len() }

// FlowStats returns flow-table counters.
func (lb *LoadBalancer) FlowStats() flowtable.Stats { return lb.flows.Stats() }

// ResetFlows discards all learned flow state — a replica restarting
// after a failure comes back stateless. The §II-B consistent-hashing
// selection (and the MissFallback steering path) exist precisely so
// that this is survivable without state synchronization: any replica
// recomputes the same flow→server mapping from the packet alone.
func (lb *LoadBalancer) ResetFlows() {
	lb.flows = flowtable.New(lb.cfg.Flows)
}

// SeedFlow installs a flow→server binding directly, bypassing SYN-ACK
// learning — the warm-handoff hook (a recovering replica inheriting
// another's connection state) and the dispatch benchmarks' way of
// exercising the steered-hit path without running the simulator.
func (lb *LoadBalancer) SeedFlow(flow packet.FlowKey, server netip.Addr) {
	lb.flows.Insert(lb.sim.Now(), flow, server)
}

// ExportFlows snapshots every live flow binding at the current virtual
// time — the donor half of a warm handoff. The snapshot carries
// absolute deadlines and closing marks, so a receiver importing it
// later inherits exactly the state that is still alive then.
func (lb *LoadBalancer) ExportFlows() []flowtable.FlowBinding {
	return lb.flows.Snapshot(lb.sim.Now())
}

// ImportFlows merges an exported snapshot into this replica's flow
// table — the receiving half of a warm handoff. Bindings that expired
// since the export are dropped, a newer local entry is never
// overwritten, and the table's capacity bound still holds. Returns the
// number of bindings applied.
func (lb *LoadBalancer) ImportFlows(bindings []flowtable.FlowBinding) int {
	return lb.flows.Restore(lb.sim.Now(), bindings)
}

// SweepNow immediately collects expired flow entries and returns how many
// were removed.
func (lb *LoadBalancer) SweepNow() int {
	lb.lastSweep = lb.sim.Now()
	return lb.flows.Sweep(lb.sim.Now())
}

// maybeSweep runs an opportunistic sweep at most once per SweepInterval.
func (lb *LoadBalancer) maybeSweep() {
	if lb.cfg.SweepInterval < 0 {
		return
	}
	if now := lb.sim.Now(); now-lb.lastSweep >= lb.cfg.SweepInterval {
		lb.lastSweep = now
		lb.flows.Sweep(now)
	}
}

// Handle implements netsim.Node.
func (lb *LoadBalancer) Handle(pkt *packet.Packet) {
	lb.maybeSweep()
	// SYN-ACK (or any packet) SR-routed through the LB itself: the
	// flow-learning path.
	if pkt.IP.Dst == lb.cfg.Addr {
		if pkt.SRH != nil {
			lb.handleReturn(pkt)
			return
		}
		lb.Counts.Inc("to_lb_no_srh")
		return
	}
	// Client-side traffic addressed to a VIP: one map lookup, then
	// everything the packet needs is in the dense entry.
	id, ok := lb.vipIndex[pkt.IP.Dst]
	if !ok {
		lb.Counts.Inc("unknown_vip")
		return
	}
	e := &lb.vips[id]
	if pkt.IsSYN() {
		e.syns++
		lb.handleSYN(pkt, e)
		return
	}
	lb.handleSteered(pkt, e)
}

// handleSYN starts Service Hunting: insert the candidate SRH and forward
// to the first candidate. A SYN whose flow is already bound (a client
// retransmission after a lost SYN-ACK) is steered to the bound server
// instead of starting a new hunt — "data packets belonging to the same
// flow are delivered to the same application instance" (§I) includes the
// SYN itself.
func (lb *LoadBalancer) handleSYN(pkt *packet.Packet, e *vipEntry) {
	lb.Counts.Inc("syn_rx")
	flow := pkt.Flow()
	if _, bound := lb.flows.Lookup(lb.sim.Now(), flow); bound {
		lb.Counts.Inc("syn_rebound")
		lb.handleSteered(pkt, e)
		return
	}
	candidates := e.scheme.Pick(flow)
	if len(candidates) == 0 {
		lb.Counts.Inc("no_candidates")
		return
	}
	vip := pkt.IP.Dst
	pathSegs := append(append(make([]netip.Addr, 0, len(candidates)+1), candidates...), vip)
	srh, err := srv6.New(ipv6.ProtoTCP, pathSegs...)
	if err != nil {
		panic(fmt.Sprintf("core: hunt SRH: %v", err))
	}
	// The delivered packet is owned by this node (netsim.Node contract):
	// mutate it in place rather than cloning on the hot path.
	pkt.SRH = srh
	active, err := srh.Active()
	if err != nil {
		panic(err)
	}
	pkt.IP.Dst = active
	lb.Counts.Inc("hunts_started")
	lb.net.Send(pkt)
}

// handleReturn processes a server→client packet SR-routed through the LB:
// learn the accepting server, strip the SRH, forward to the client.
func (lb *LoadBalancer) handleReturn(pkt *packet.Packet) {
	srh := pkt.SRH
	active, err := srh.Active()
	if err != nil || active != lb.cfg.Addr {
		lb.Counts.Inc("return_bad_segment")
		return
	}
	// The accepting server wrote itself one slot behind the LB in the
	// list (figure 1: SYN-ACK {a, S2, LB, c} — S2 at SL+1).
	server, err := srh.SegmentAtSL(srh.SegmentsLeft + 1)
	if err != nil {
		lb.Counts.Inc("return_no_server")
		return
	}
	client, err := srh.Advance()
	if err != nil {
		lb.Counts.Inc("return_exhausted")
		return
	}
	if pkt.IsSYNACK() {
		// Key the mapping by the CLIENT's view of the flow: the SYN-ACK
		// flow is (VIP→client); the client flow is its reverse.
		clientFlow := pkt.Flow().Reverse()
		lb.flows.Insert(lb.sim.Now(), clientFlow, server)
		lb.Counts.Inc("flows_learned")
		// A stateful scheme tracks its own placements (the in-flight
		// delta between feedback reports); the flow's VIP is the client
		// flow's destination.
		if id, ok := lb.vipIndex[clientFlow.Dst]; ok {
			if st := lb.vips[id].stateful; st != nil {
				st.Observe(server, +1)
			}
		}
	}
	// Strip the SRH: the client is SR-oblivious.
	pkt.SRH = nil
	pkt.IP.Dst = client
	lb.Counts.Inc("returns_relayed")
	lb.net.Send(pkt)
}

// handleSteered forwards mid-flow client packets to the accepting
// server. When the VIP's scheme can re-steer (flowlet-grained
// balancing), the lookup also reads the flow's idle gap and offers
// eligible packets to the scheme at flowlet boundaries; a move rebinds
// the flowtable entry in place, so the packet and every successor
// steer to the new server.
func (lb *LoadBalancer) handleSteered(pkt *packet.Packet, e *vipEntry) {
	now := lb.sim.Now()
	flow := pkt.Flow()
	isRST := pkt.TCP.Flags.Has(tcpseg.FlagRST)
	var server netip.Addr
	var ok bool
	if e.resteer != nil {
		var idle time.Duration
		server, idle, ok = lb.flows.LookupIdle(now, flow)
		if ok && selection.ResteerEligible(pkt.IsSYN(), isRST) {
			if next, move := e.resteer.Resteer(now, flow, idle, server); move && next != server {
				lb.flows.Rebind(now, flow, next)
				if st := e.stateful; st != nil {
					st.Observe(server, -1)
					st.Observe(next, +1)
				}
				server = next
				lb.Counts.Inc("flowlet_resteer")
			}
		}
	} else {
		server, ok = lb.flows.Lookup(now, flow)
	}
	if !ok {
		if fb := e.fallback; fb != nil {
			if cands := fb.Pick(flow); len(cands) > 0 {
				server = cands[0]
				ok = true
				lb.Counts.Inc("miss_fallback")
			}
		}
		if !ok {
			lb.Counts.Inc("miss_dropped")
			return
		}
	}
	if pkt.TCP.Flags.Has(tcpseg.FlagFIN) || isRST {
		if lb.flows.MarkClosing(now, flow) {
			if st := e.stateful; st != nil {
				st.Observe(server, -1)
			}
		}
		lb.Counts.Inc("closing_observed")
	}
	vip := pkt.IP.Dst
	srh, err := srv6.New(ipv6.ProtoTCP, server, vip)
	if err != nil {
		panic(fmt.Sprintf("core: steer SRH: %v", err))
	}
	pkt.SRH = srh
	pkt.IP.Dst = server
	lb.Counts.Inc("steered")
	lb.net.Send(pkt)
}

var _ netsim.Node = (*LoadBalancer)(nil)
