package core

import (
	"fmt"
	"net/netip"
	"testing"
	"time"

	"srlb/internal/agent"
	"srlb/internal/appserver"
	"srlb/internal/des"
	"srlb/internal/ipv6"
	"srlb/internal/netsim"
	"srlb/internal/packet"
	"srlb/internal/selection"
	"srlb/internal/tcpseg"
	"srlb/internal/vrouter"
)

// Multi-instance deployment (the Maglev/Ananta model the paper's related
// work discusses, enabled by §II-B's consistent-hashing selection): two
// LB replicas advertise the same anycast VIP behind ECMP. Client→VIP and
// server→LB packets of one connection can land on DIFFERENT replicas
// (the ECMP hash keys on the packet's own 5-tuple, and the two directions
// hash independently), so a replica may have to steer flows whose
// SYN-ACK it never saw. With Maglev-backed candidate selection and the
// Maglev miss-fallback, both replicas agree on flow→server without any
// shared state — every query completes.

type multiLBClient struct {
	net     *netsim.Network
	addr    netip.Addr
	vip     netip.Addr
	ok      int
	refused int
}

func (c *multiLBClient) Handle(pkt *packet.Packet) {
	switch {
	case pkt.TCP.Flags.Has(tcpseg.FlagRST):
		c.refused++
	case pkt.IsSYNACK():
		req := &packet.Packet{
			IP: ipv6.Header{Src: c.addr, Dst: c.vip},
			TCP: tcpseg.Segment{
				SrcPort: pkt.TCP.DstPort, DstPort: 80,
				Seq: 1, Ack: pkt.TCP.Seq + 1,
				Flags:   tcpseg.FlagACK | tcpseg.FlagPSH,
				Payload: append(make([]byte, 8), []byte("GET /")...),
			},
		}
		c.net.Send(req)
	case len(pkt.TCP.Payload) > 0:
		c.ok++
	}
}

func TestTwoLBReplicasAnycastECMP(t *testing.T) {
	sim := des.New()
	net := netsim.New(sim, netsim.Config{VerifyChecksums: true})

	const servers = 6
	serverAddrs := make([]netip.Addr, servers)
	for i := range serverAddrs {
		serverAddrs[i] = ipv6.MustAddr(fmt.Sprintf("2001:db8:5::%x", i+1))
	}
	mkScheme := func() selection.Scheme {
		s, err := selection.NewConsistentHash(serverAddrs, 4099)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}

	anycastVIP := ipv6.MustAddr("2001:db8:f00d::1")
	anycastLB := ipv6.MustAddr("2001:db8:1b::1")

	// Two replicas, no shared state. Both join the ECMP groups for the
	// VIP (client side) and the LB return address (SYN-ACK side).
	replicas := make([]*LoadBalancer, 2)
	for i := range replicas {
		lb := NewDetached(sim, net, Config{
			Addr:         anycastLB,
			VIPs:         map[netip.Addr]selection.Scheme{anycastVIP: mkScheme()},
			MissFallback: mkScheme(),
		})
		replicas[i] = lb
		net.AttachAnycast(lb, anycastVIP)
		net.AttachAnycast(lb, anycastLB)
	}

	for i := 0; i < servers; i++ {
		srv := appserver.New(sim, fmt.Sprintf("s%d", i), appserver.Default())
		vrouter.New(sim, net, vrouter.Config{
			Addr:   serverAddrs[i],
			VIPs:   []netip.Addr{anycastVIP},
			LB:     anycastLB,
			Policy: agent.Always{}, // first candidate serves: keeps chash fallback exact
			Server: srv,
			Demand: func(packet.FlowKey, []byte) time.Duration { return 5 * time.Millisecond },
		})
	}

	cli := &multiLBClient{net: net, addr: ipv6.MustAddr("2001:db8:c::1"), vip: anycastVIP}
	net.Attach(cli, cli.addr)

	const n = 400
	for i := 0; i < n; i++ {
		port := uint16(42000 + i)
		at := time.Duration(i) * 2 * time.Millisecond
		sim.At(at, func() {
			syn := &packet.Packet{
				IP: ipv6.Header{Src: cli.addr, Dst: anycastVIP},
				TCP: tcpseg.Segment{
					SrcPort: port, DstPort: 80, Flags: tcpseg.FlagSYN,
					Payload: make([]byte, 8),
				},
			}
			net.Send(syn)
		})
	}
	sim.Run()

	if cli.ok != n {
		t.Fatalf("only %d/%d queries completed across replicas (refused=%d)", cli.ok, n, cli.refused)
	}
	// ECMP must actually split the traffic between the two replicas.
	a := replicas[0].Counts.Get("syn_rx")
	b := replicas[1].Counts.Get("syn_rx")
	if a+b != n {
		t.Fatalf("replicas saw %d+%d SYNs, want %d", a, b, n)
	}
	if a == 0 || b == 0 {
		t.Fatalf("ECMP did not split SYNs: %d/%d", a, b)
	}
	// The directions hash independently, so some flows MUST have been
	// steered by a replica that never learned them — via the fallback.
	fallbacks := replicas[0].Counts.Get("miss_fallback") + replicas[1].Counts.Get("miss_fallback")
	if fallbacks == 0 {
		t.Fatal("no cross-replica steering exercised — ECMP split suspiciously aligned")
	}
	t.Logf("replica SYN split %d/%d, cross-replica fallbacks %d", a, b, fallbacks)
}

// TestReplicaFailureRehash: when one replica leaves the ECMP group,
// in-flight flows rehash onto the survivor, which steers them via the
// consistent-hash fallback without interruption.
func TestReplicaFailureRehash(t *testing.T) {
	sim := des.New()
	net := netsim.New(sim, netsim.Config{})

	serverAddrs := []netip.Addr{
		ipv6.MustAddr("2001:db8:5::1"),
		ipv6.MustAddr("2001:db8:5::2"),
	}
	mkScheme := func() selection.Scheme {
		s, err := selection.NewConsistentHash(serverAddrs, 101)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	anycastVIP := ipv6.MustAddr("2001:db8:f00d::1")
	anycastLB := ipv6.MustAddr("2001:db8:1b::1")
	mk := func() *LoadBalancer {
		lb := NewDetached(sim, net, Config{
			Addr:         anycastLB,
			VIPs:         map[netip.Addr]selection.Scheme{anycastVIP: mkScheme()},
			MissFallback: mkScheme(),
		})
		net.AttachAnycast(lb, anycastVIP)
		net.AttachAnycast(lb, anycastLB)
		return lb
	}
	lbA, lbB := mk(), mk()
	_ = lbA

	for i, sa := range serverAddrs {
		srv := appserver.New(sim, fmt.Sprintf("s%d", i), appserver.Default())
		vrouter.New(sim, net, vrouter.Config{
			Addr: sa, VIPs: []netip.Addr{anycastVIP}, LB: anycastLB,
			Policy: agent.Always{}, Server: srv,
			Demand: func(packet.FlowKey, []byte) time.Duration { return 50 * time.Millisecond },
		})
	}
	cli := &multiLBClient{net: net, addr: ipv6.MustAddr("2001:db8:c::1"), vip: anycastVIP}
	net.Attach(cli, cli.addr)

	const n = 100
	for i := 0; i < n; i++ {
		port := uint16(43000 + i)
		at := time.Duration(i) * time.Millisecond
		sim.At(at, func() {
			net.Send(&packet.Packet{
				IP: ipv6.Header{Src: cli.addr, Dst: anycastVIP},
				TCP: tcpseg.Segment{
					SrcPort: port, DstPort: 80, Flags: tcpseg.FlagSYN,
					Payload: make([]byte, 8),
				},
			})
		})
	}
	// Kill replica A while responses are still outstanding.
	sim.At(110*time.Millisecond, func() {
		if !net.DetachAnycast(lbA, anycastVIP) || !net.DetachAnycast(lbA, anycastLB) {
			t.Error("detach failed")
		}
	})
	sim.Run()

	if cli.ok != n {
		t.Fatalf("only %d/%d completed across replica failure (refused=%d)", cli.ok, n, cli.refused)
	}
	if lbB.Counts.Get("syn_rx") == 0 {
		t.Fatal("survivor saw no traffic — test vacuous")
	}
	_ = lbA
}
