package des

import (
	"math/rand/v2"
	"testing"
	"time"
)

func TestZeroValueReady(t *testing.T) {
	var s Simulator
	fired := false
	s.After(time.Second, func() { fired = true })
	s.Run()
	if !fired {
		t.Fatal("event did not fire")
	}
	if s.Now() != time.Second {
		t.Fatalf("Now() = %v, want 1s", s.Now())
	}
}

func TestEventOrdering(t *testing.T) {
	s := New()
	var order []int
	s.At(3*time.Second, func() { order = append(order, 3) })
	s.At(1*time.Second, func() { order = append(order, 1) })
	s.At(2*time.Second, func() { order = append(order, 2) })
	s.Run()
	want := []int{1, 2, 3}
	for i, v := range want {
		if order[i] != v {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestTieBreakBySchedulingOrder(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(time.Second, func() { order = append(order, i) })
	}
	s.Run()
	for i := 0; i < 10; i++ {
		if order[i] != i {
			t.Fatalf("ties not FIFO: %v", order)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	s := New()
	count := 0
	var recur func()
	recur = func() {
		count++
		if count < 5 {
			s.After(time.Millisecond, recur)
		}
	}
	s.After(0, recur)
	s.Run()
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
	if s.Now() != 4*time.Millisecond {
		t.Fatalf("Now() = %v, want 4ms", s.Now())
	}
}

func TestCancel(t *testing.T) {
	s := New()
	fired := false
	tm := s.After(time.Second, func() { fired = true })
	if !tm.Pending() {
		t.Fatal("timer should be pending")
	}
	if !s.Cancel(tm) {
		t.Fatal("Cancel reported false on pending timer")
	}
	if tm.Pending() {
		t.Fatal("timer still pending after cancel")
	}
	if s.Cancel(tm) {
		t.Fatal("second Cancel should report false")
	}
	s.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestCancelNil(t *testing.T) {
	s := New()
	if s.Cancel(nil) {
		t.Fatal("Cancel(nil) should report false")
	}
	var tm *Timer
	if tm.Pending() {
		t.Fatal("nil timer should not be pending")
	}
}

func TestReschedule(t *testing.T) {
	s := New()
	var at time.Duration
	tm := s.After(time.Second, func() { at = s.Now() })
	if !s.Reschedule(tm, 5*time.Second) {
		t.Fatal("Reschedule failed")
	}
	s.Run()
	if at != 5*time.Second {
		t.Fatalf("fired at %v, want 5s", at)
	}
	if s.Reschedule(tm, 6*time.Second) {
		t.Fatal("Reschedule of fired timer should report false")
	}
}

func TestRescheduleOrdering(t *testing.T) {
	s := New()
	var order []string
	a := s.At(1*time.Second, func() { order = append(order, "a") })
	s.At(2*time.Second, func() { order = append(order, "b") })
	s.Reschedule(a, 3*time.Second)
	s.Run()
	if len(order) != 2 || order[0] != "b" || order[1] != "a" {
		t.Fatalf("order = %v, want [b a]", order)
	}
}

func TestRunUntil(t *testing.T) {
	s := New()
	fired := 0
	s.At(1*time.Second, func() { fired++ })
	s.At(2*time.Second, func() { fired++ })
	s.At(3*time.Second, func() { fired++ })
	s.RunUntil(2 * time.Second)
	if fired != 2 {
		t.Fatalf("fired = %d, want 2", fired)
	}
	if s.Now() != 2*time.Second {
		t.Fatalf("Now() = %v, want 2s", s.Now())
	}
	if s.Pending() != 1 {
		t.Fatalf("Pending() = %d, want 1", s.Pending())
	}
	s.RunFor(time.Second)
	if fired != 3 {
		t.Fatalf("fired = %d, want 3", fired)
	}
}

func TestRunUntilLimit(t *testing.T) {
	s := New()
	fired := 0
	for i := 1; i <= 5; i++ {
		s.At(time.Duration(i)*time.Second, func() { fired++ })
	}
	if !s.RunUntilLimit(4*time.Second, 2) {
		t.Fatal("events ≤ deadline should remain after 2 steps")
	}
	if fired != 2 {
		t.Fatalf("fired = %d, want 2", fired)
	}
	if s.Now() == 4*time.Second {
		t.Fatal("clock must not jump to deadline while events remain")
	}
	if s.RunUntilLimit(4*time.Second, 100) {
		t.Fatal("no events ≤ deadline should remain")
	}
	if fired != 4 {
		t.Fatalf("fired = %d, want 4", fired)
	}
	if s.Now() != 4*time.Second {
		t.Fatalf("Now() = %v, want 4s", s.Now())
	}
	if s.Pending() != 1 {
		t.Fatalf("Pending() = %d, want 1", s.Pending())
	}
}

func TestRunUntilAdvancesClockWithoutEvents(t *testing.T) {
	s := New()
	s.RunUntil(10 * time.Second)
	if s.Now() != 10*time.Second {
		t.Fatalf("Now() = %v, want 10s", s.Now())
	}
}

func TestSchedulePastPanics(t *testing.T) {
	s := New()
	s.At(time.Second, func() {})
	s.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic scheduling into the past")
		}
	}()
	s.At(0, func() {})
}

func TestNilFuncPanics(t *testing.T) {
	s := New()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on nil fn")
		}
	}()
	s.At(time.Second, nil)
}

func TestNegativeAfterClampsToNow(t *testing.T) {
	s := New()
	fired := false
	s.After(-time.Second, func() { fired = true })
	s.Step()
	if !fired || s.Now() != 0 {
		t.Fatalf("fired=%v now=%v, want true/0", fired, s.Now())
	}
}

func TestProcessedCount(t *testing.T) {
	s := New()
	for i := 0; i < 7; i++ {
		s.After(time.Duration(i)*time.Millisecond, func() {})
	}
	s.Run()
	if s.Processed() != 7 {
		t.Fatalf("Processed() = %d, want 7", s.Processed())
	}
}

// TestDeterministicUnderRandomLoad schedules a large randomized workload
// twice with the same seed and verifies identical execution traces.
func TestDeterministicUnderRandomLoad(t *testing.T) {
	run := func(seed uint64) []time.Duration {
		rng := rand.New(rand.NewPCG(seed, 0))
		s := New()
		var trace []time.Duration
		var spawn func(depth int)
		spawn = func(depth int) {
			trace = append(trace, s.Now())
			if depth < 3 {
				n := rng.IntN(3)
				for i := 0; i < n; i++ {
					s.After(time.Duration(rng.IntN(1000))*time.Microsecond, func() { spawn(depth + 1) })
				}
			}
		}
		for i := 0; i < 100; i++ {
			s.After(time.Duration(rng.IntN(100_000))*time.Microsecond, func() { spawn(0) })
		}
		s.Run()
		return trace
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func BenchmarkScheduleAndRun(b *testing.B) {
	s := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.After(time.Microsecond, func() {})
		s.Step()
	}
}

// TestScheduleOrdering: handle-free Schedule events interleave with
// At/After handles in the same (at, seq) total order.
func TestScheduleOrdering(t *testing.T) {
	s := New()
	var order []int
	s.Schedule(2*time.Second, func() { order = append(order, 2) })
	s.At(1*time.Second, func() { order = append(order, 1) })
	s.ScheduleAfter(3*time.Second, func() { order = append(order, 3) })
	s.Schedule(1*time.Second, func() { order = append(order, 10) }) // tie with At: fires second
	s.Run()
	want := []int{1, 10, 2, 3}
	for i, v := range want {
		if order[i] != v {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

// TestScheduleRecyclesTimers: after a warm-up, the fire-and-forget path
// must not allocate a timer per event.
func TestScheduleRecyclesTimers(t *testing.T) {
	s := New()
	for i := 0; i < 64; i++ {
		s.ScheduleAfter(time.Microsecond, func() {})
	}
	s.Run()
	allocs := testing.AllocsPerRun(1000, func() {
		s.ScheduleAfter(time.Microsecond, func() {})
		s.Step()
	})
	if allocs > 0.1 {
		t.Errorf("Schedule+Step allocates %.2f objects per event, want 0", allocs)
	}
}

// TestScheduleNegativeAfterClampsToNow mirrors the After clamp.
func TestScheduleNegativeAfterClampsToNow(t *testing.T) {
	s := New()
	fired := false
	s.ScheduleAfter(-time.Second, func() { fired = true })
	s.Step()
	if !fired || s.Now() != 0 {
		t.Fatalf("fired=%v now=%v, want true/0", fired, s.Now())
	}
}

// TestSchedulePastPanicsToo: the past-scheduling guard covers the
// handle-free path as well.
func TestSchedulePastPanicsToo(t *testing.T) {
	s := New()
	s.At(time.Second, func() {})
	s.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic scheduling into the past")
		}
	}()
	s.Schedule(0, func() {})
}

// TestCalendarResizeChurn drives the queue through growth and shrink
// cycles with mixed time scales (µs deliveries, ms services, a far
// horizon guard) and verifies the dequeue order stays globally sorted.
func TestCalendarResizeChurn(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 0))
	s := New()
	var fired []time.Duration
	record := func() { fired = append(fired, s.Now()) }
	s.At(time.Hour, record) // far-future outlier the width estimate must survive
	var handles []*Timer
	for i := 0; i < 5000; i++ {
		switch rng.IntN(3) {
		case 0:
			s.Schedule(s.Now()+time.Duration(rng.IntN(100))*time.Microsecond, record)
		case 1:
			handles = append(handles, s.At(s.Now()+time.Duration(rng.IntN(50))*time.Millisecond, record))
		case 2:
			if len(handles) > 0 && rng.IntN(2) == 0 {
				h := handles[rng.IntN(len(handles))]
				if h.Pending() {
					if rng.IntN(2) == 0 {
						s.Cancel(h)
					} else {
						s.Reschedule(h, s.Now()+time.Duration(rng.IntN(10))*time.Millisecond)
					}
				}
			}
		}
		if rng.IntN(4) == 0 {
			s.Step()
		}
	}
	s.Run()
	for i := 1; i < len(fired); i++ {
		if fired[i] < fired[i-1] {
			t.Fatalf("out-of-order fire at %d: %v after %v", i, fired[i], fired[i-1])
		}
	}
	if fired[len(fired)-1] != time.Hour {
		t.Fatalf("horizon guard fired at %v, want 1h", fired[len(fired)-1])
	}
	if s.Pending() != 0 {
		t.Fatalf("Pending() = %d after drain", s.Pending())
	}
}

func BenchmarkScheduleNoHandle(b *testing.B) {
	s := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.ScheduleAfter(time.Microsecond, func() {})
		s.Step()
	}
}

// BenchmarkCalendarMixed models the hot loop's population: a few
// thousand co-pending events at mixed time scales.
func BenchmarkCalendarMixed(b *testing.B) {
	rng := rand.New(rand.NewPCG(1, 0))
	s := New()
	for i := 0; i < 4096; i++ {
		s.ScheduleAfter(time.Duration(rng.IntN(200_000))*time.Microsecond, func() {})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ScheduleAfter(time.Duration(rng.IntN(200_000))*time.Microsecond, func() {})
		s.Step()
	}
}
