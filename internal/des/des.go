// Package des provides a deterministic discrete-event simulation kernel.
//
// The kernel is a calendar-queue event scheduler (Brown 1988) with a
// virtual clock: pending events hash into time buckets by arrival
// instant, each bucket an intrusive sorted list, so enqueue and dequeue
// are O(1) amortized instead of the O(log n) of a binary heap. The
// bucket count and width adapt to the pending population as it grows
// and shrinks. Events scheduled for the same instant fire in scheduling
// order, which — together with seeded randomness everywhere else —
// makes whole-cluster simulations bit-for-bit reproducible.
//
// Two scheduling flavors exist: At/After return a *Timer handle that
// can be cancelled or rescheduled, while Schedule/ScheduleAfter return
// nothing and recycle the timer's allocation through an internal free
// list once it fires — the zero-garbage path for fire-and-forget events
// (packet deliveries, arrival streams), which dominate the hot loop.
//
// The kernel is intentionally single-threaded: simulated components are
// plain state machines invoked from the event loop, which keeps them free
// of locks and makes 24-hour cluster runs complete in seconds.
package des

import (
	"fmt"
	"sort"
	"time"
)

// Timer is a handle to a scheduled event. It can be cancelled or
// rescheduled until it has fired.
type Timer struct {
	at         time.Duration
	seq        uint64
	fn         func()
	prev, next *Timer // intrusive bucket list; nil once fired/cancelled
	pooled     bool   // allocated by Schedule: recycle after firing
}

// At reports the virtual time the timer is (or was) scheduled to fire.
func (t *Timer) At() time.Duration { return t.at }

// Pending reports whether the timer is still scheduled.
func (t *Timer) Pending() bool { return t != nil && t.next != nil }

// before is the queue's total order: time, then scheduling sequence.
func (t *Timer) before(u *Timer) bool {
	if t.at != u.at {
		return t.at < u.at
	}
	return t.seq < u.seq
}

// Calendar sizing bounds. The bucket count doubles while the pending
// population exceeds two events per bucket and halves when it drops
// below a quarter event per bucket; width re-estimates on every resize.
const (
	minBuckets  = 16
	maxBuckets  = 1 << 16
	widthSample = 1024
)

// Simulator is a discrete-event scheduler. The zero value is ready to use
// with the clock at 0.
type Simulator struct {
	buckets []Timer // sentinels of circular doubly-linked lists
	width   time.Duration
	count   int

	// cur/curTop track the dequeue cursor: curTop is the top of bucket
	// cur's window in the year currently being scanned. Invariant: every
	// pending event fires at or after curTop−width, so a forward scan
	// from cur meets the earliest event first.
	cur    int
	curTop time.Duration
	peeked *Timer // cached minimum; nil when unknown

	now       time.Duration
	seq       uint64
	processed uint64

	free *Timer // freelist of pooled timers, linked through next
}

// New returns a Simulator with the clock at zero.
func New() *Simulator { return &Simulator{} }

// Now returns the current virtual time.
func (s *Simulator) Now() time.Duration { return s.now }

// Processed returns the number of events executed so far.
func (s *Simulator) Processed() uint64 { return s.processed }

// Pending returns the number of events currently scheduled.
func (s *Simulator) Pending() int { return s.count }

// topOf returns the upper edge of the bucket window containing at.
func (s *Simulator) topOf(at time.Duration) time.Duration {
	return (at/s.width + 1) * s.width
}

// bucketOf maps an instant to its bucket index.
func (s *Simulator) bucketOf(at time.Duration) int {
	return int((uint64(at) / uint64(s.width)) % uint64(len(s.buckets)))
}

// init sets up the initial (empty) calendar.
func (s *Simulator) init() {
	s.width = 64 * time.Microsecond // near LAN latency; resizes adapt
	s.buckets = makeBuckets(minBuckets)
}

func makeBuckets(n int) []Timer {
	b := make([]Timer, n)
	for i := range b {
		b[i].prev, b[i].next = &b[i], &b[i]
	}
	return b
}

// insert links t into its bucket, keeping the bucket sorted by
// (at, seq). Most events land at the tail of their bucket (time flows
// forward), so the scan starts there.
func (s *Simulator) insert(t *Timer) {
	if s.buckets == nil {
		s.init()
	}
	if s.count >= 2*len(s.buckets) && len(s.buckets) < maxBuckets {
		s.resize(2 * len(s.buckets))
	}
	sent := &s.buckets[s.bucketOf(t.at)]
	p := sent.prev
	for p != sent && t.before(p) {
		p = p.prev
	}
	t.prev, t.next = p, p.next
	p.next.prev = t
	p.next = t
	s.count++
	if s.count == 1 || t.at < s.curTop-s.width {
		// First event, or an event before the cursor's window: realign so
		// the scan invariant (nothing fires before curTop−width) holds.
		s.cur = s.bucketOf(t.at)
		s.curTop = s.topOf(t.at)
		if s.count == 1 {
			s.peeked = t
		}
	}
	if s.peeked != nil && t.before(s.peeked) {
		s.peeked = t
	}
}

// remove unlinks a queued timer.
func (s *Simulator) remove(t *Timer) {
	t.prev.next = t.next
	t.next.prev = t.prev
	t.prev, t.next = nil, nil
	s.count--
	if s.peeked == t {
		s.peeked = nil
	}
	if s.count < len(s.buckets)/4 && len(s.buckets) > minBuckets {
		s.resize(len(s.buckets) / 2)
	}
}

// resize rebuilds the calendar with n buckets and a width re-estimated
// from the pending population, relinking every event. O(count), but
// resizes are geometric so the amortized cost per event is constant.
func (s *Simulator) resize(n int) {
	var all *Timer // collect through next pointers
	var sample []time.Duration
	for i := range s.buckets {
		sent := &s.buckets[i]
		for t := sent.next; t != sent; {
			nx := t.next
			t.prev = nil
			t.next = all
			all = t
			if len(sample) < widthSample {
				sample = append(sample, t.at)
			}
			t = nx
		}
	}
	if w := estimateWidth(sample); w > 0 {
		s.width = w
	}
	s.buckets = makeBuckets(n)
	s.count = 0
	s.peeked = nil
	for t := all; t != nil; {
		nx := t.next
		t.next = nil
		s.insert(t)
		t = nx
	}
	// Realign the cursor by direct search so the scan invariant holds.
	if min := s.direct(); min != nil {
		s.cur = s.bucketOf(min.at)
		s.curTop = s.topOf(min.at)
		s.peeked = min
	}
}

// estimateWidth picks a bucket width from a sample of pending event
// times: twice the median of the non-zero gaps between time-adjacent
// samples. The median keeps one far-future outlier (horizon guards,
// idle timeouts) from stretching the width and collapsing the dense
// near-term population into a single bucket. Returns 0 when the sample
// carries no signal (fewer than two distinct instants).
func estimateWidth(sample []time.Duration) time.Duration {
	if len(sample) < 2 {
		return 0
	}
	sort.Slice(sample, func(i, j int) bool { return sample[i] < sample[j] })
	gaps := sample[:0]
	for i := 1; i < len(sample); i++ {
		if g := sample[i] - sample[i-1]; g > 0 {
			gaps = append(gaps, g)
		}
	}
	if len(gaps) == 0 {
		return 0
	}
	sort.Slice(gaps, func(i, j int) bool { return gaps[i] < gaps[j] })
	w := 2 * gaps[len(gaps)/2]
	if w < 1 {
		w = 1
	}
	return w
}

// direct finds the global minimum by inspecting every bucket head —
// the fallback when a year's scan comes up empty (sparse queues, or
// every pending event more than a year ahead).
func (s *Simulator) direct() *Timer {
	var best *Timer
	for i := range s.buckets {
		sent := &s.buckets[i]
		if first := sent.next; first != sent {
			if best == nil || first.before(best) {
				best = first
			}
		}
	}
	return best
}

// peek returns the earliest pending timer without dequeuing it, or nil.
func (s *Simulator) peek() *Timer {
	if s.peeked != nil {
		return s.peeked
	}
	if s.count == 0 {
		return nil
	}
	b, top := s.cur, s.curTop
	for i := 0; i < len(s.buckets); i++ {
		sent := &s.buckets[b]
		if first := sent.next; first != sent && first.at < top {
			s.cur, s.curTop = b, top
			s.peeked = first
			return first
		}
		b++
		if b == len(s.buckets) {
			b = 0
		}
		top += s.width
	}
	best := s.direct()
	s.cur = s.bucketOf(best.at)
	s.curTop = s.topOf(best.at)
	s.peeked = best
	return best
}

// At schedules fn at absolute virtual time t and returns a cancellable
// handle. Scheduling in the past (t < Now) panics: it is always a logic
// error in the caller.
func (s *Simulator) At(t time.Duration, fn func()) *Timer {
	s.check(t, fn)
	s.seq++
	tm := &Timer{at: t, seq: s.seq, fn: fn}
	s.insert(tm)
	return tm
}

// After schedules fn after delay d (d < 0 is treated as 0).
func (s *Simulator) After(d time.Duration, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return s.At(s.now+d, fn)
}

// Schedule is At without a handle: the event cannot be cancelled or
// rescheduled, and in exchange its timer allocation is recycled through
// the simulator's free list once it fires. Use it for fire-and-forget
// events on the hot path.
func (s *Simulator) Schedule(t time.Duration, fn func()) {
	s.check(t, fn)
	tm := s.free
	if tm != nil {
		s.free = tm.next
		tm.next = nil
	} else {
		tm = &Timer{pooled: true}
	}
	s.seq++
	tm.at, tm.seq, tm.fn = t, s.seq, fn
	s.insert(tm)
}

// ScheduleAfter is After without a handle (d < 0 is treated as 0).
func (s *Simulator) ScheduleAfter(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	s.Schedule(s.now+d, fn)
}

func (s *Simulator) check(t time.Duration, fn func()) {
	if t < s.now {
		panic(fmt.Sprintf("des: scheduling event at %v before now %v", t, s.now))
	}
	if fn == nil {
		panic("des: nil event function")
	}
}

// Cancel removes a pending timer. Cancelling a fired, cancelled or nil
// timer is a no-op and reports false.
func (s *Simulator) Cancel(t *Timer) bool {
	if t == nil || t.next == nil {
		return false
	}
	s.remove(t)
	t.fn = nil
	return true
}

// Reschedule moves a pending timer to fire at absolute time t, keeping its
// callback. If the timer already fired it reports false.
func (s *Simulator) Reschedule(t *Timer, at time.Duration) bool {
	if t == nil || t.next == nil {
		return false
	}
	if at < s.now {
		panic(fmt.Sprintf("des: rescheduling event at %v before now %v", at, s.now))
	}
	s.remove(t)
	t.at = at
	s.seq++
	t.seq = s.seq
	s.insert(t)
	return true
}

// Step executes the next event, advancing the clock. It reports false when
// no events remain.
func (s *Simulator) Step() bool {
	t := s.peek()
	if t == nil {
		return false
	}
	s.remove(t)
	s.now = t.at
	fn := t.fn
	t.fn = nil
	if t.pooled {
		t.next = s.free
		s.free = t
	}
	s.processed++
	fn()
	return true
}

// Run executes events until the queue drains.
func (s *Simulator) Run() {
	for s.Step() {
	}
}

// RunUntil executes events with timestamps ≤ deadline, then advances the
// clock to the deadline (even if events remain beyond it).
func (s *Simulator) RunUntil(deadline time.Duration) {
	for t := s.peek(); t != nil && t.at <= deadline; t = s.peek() {
		s.Step()
	}
	if s.now < deadline {
		s.now = deadline
	}
}

// RunUntilLimit executes at most limit events with timestamps ≤ deadline
// and reports whether any such events remain. Only once none remain is the
// clock advanced to the deadline, so interleaving RunUntilLimit calls with
// other work (e.g. cancellation polls) is equivalent to one RunUntil.
func (s *Simulator) RunUntilLimit(deadline time.Duration, limit int) bool {
	for limit > 0 {
		t := s.peek()
		if t == nil || t.at > deadline {
			break
		}
		s.Step()
		limit--
	}
	if t := s.peek(); t != nil && t.at <= deadline {
		return true
	}
	if s.now < deadline {
		s.now = deadline
	}
	return false
}

// RunFor executes events for a further d of virtual time.
func (s *Simulator) RunFor(d time.Duration) { s.RunUntil(s.now + d) }
