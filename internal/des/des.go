// Package des provides a deterministic discrete-event simulation kernel.
//
// The kernel is a binary-heap event scheduler with a virtual clock.
// Events scheduled for the same instant fire in scheduling order, which —
// together with seeded randomness everywhere else — makes whole-cluster
// simulations bit-for-bit reproducible.
//
// The kernel is intentionally single-threaded: simulated components are
// plain state machines invoked from the event loop, which keeps them free
// of locks and makes 24-hour cluster runs complete in seconds.
package des

import (
	"container/heap"
	"fmt"
	"time"
)

// Timer is a handle to a scheduled event. It can be cancelled or
// rescheduled until it has fired.
type Timer struct {
	at    time.Duration
	seq   uint64
	index int // heap index, -1 once fired or cancelled
	fn    func()
}

// At reports the virtual time the timer is (or was) scheduled to fire.
func (t *Timer) At() time.Duration { return t.at }

// Pending reports whether the timer is still scheduled.
func (t *Timer) Pending() bool { return t != nil && t.index >= 0 }

type eventHeap []*Timer

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	t := x.(*Timer)
	t.index = len(*h)
	*h = append(*h, t)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	t.index = -1
	*h = old[:n-1]
	return t
}

// Simulator is a discrete-event scheduler. The zero value is ready to use
// with the clock at 0.
type Simulator struct {
	events    eventHeap
	now       time.Duration
	seq       uint64
	processed uint64
	running   bool
}

// New returns a Simulator with the clock at zero.
func New() *Simulator { return &Simulator{} }

// Now returns the current virtual time.
func (s *Simulator) Now() time.Duration { return s.now }

// Processed returns the number of events executed so far.
func (s *Simulator) Processed() uint64 { return s.processed }

// Pending returns the number of events currently scheduled.
func (s *Simulator) Pending() int { return len(s.events) }

// At schedules fn at absolute virtual time t. Scheduling in the past
// (t < Now) panics: it is always a logic error in the caller.
func (s *Simulator) At(t time.Duration, fn func()) *Timer {
	if t < s.now {
		panic(fmt.Sprintf("des: scheduling event at %v before now %v", t, s.now))
	}
	if fn == nil {
		panic("des: nil event function")
	}
	s.seq++
	tm := &Timer{at: t, seq: s.seq, fn: fn}
	heap.Push(&s.events, tm)
	return tm
}

// After schedules fn after delay d (d < 0 is treated as 0).
func (s *Simulator) After(d time.Duration, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return s.At(s.now+d, fn)
}

// Cancel removes a pending timer. Cancelling a fired, cancelled or nil
// timer is a no-op and reports false.
func (s *Simulator) Cancel(t *Timer) bool {
	if t == nil || t.index < 0 {
		return false
	}
	heap.Remove(&s.events, t.index)
	t.index = -1
	t.fn = nil
	return true
}

// Reschedule moves a pending timer to fire at absolute time t, keeping its
// callback. If the timer already fired it reports false.
func (s *Simulator) Reschedule(t *Timer, at time.Duration) bool {
	if t == nil || t.index < 0 {
		return false
	}
	if at < s.now {
		panic(fmt.Sprintf("des: rescheduling event at %v before now %v", at, s.now))
	}
	t.at = at
	s.seq++
	t.seq = s.seq
	heap.Fix(&s.events, t.index)
	return true
}

// Step executes the next event, advancing the clock. It reports false when
// no events remain.
func (s *Simulator) Step() bool {
	if len(s.events) == 0 {
		return false
	}
	t := heap.Pop(&s.events).(*Timer)
	s.now = t.at
	fn := t.fn
	t.fn = nil
	s.processed++
	fn()
	return true
}

// Run executes events until the queue drains.
func (s *Simulator) Run() {
	for s.Step() {
	}
}

// RunUntil executes events with timestamps ≤ deadline, then advances the
// clock to the deadline (even if events remain beyond it).
func (s *Simulator) RunUntil(deadline time.Duration) {
	for len(s.events) > 0 && s.events[0].at <= deadline {
		s.Step()
	}
	if s.now < deadline {
		s.now = deadline
	}
}

// RunUntilLimit executes at most limit events with timestamps ≤ deadline
// and reports whether any such events remain. Only once none remain is the
// clock advanced to the deadline, so interleaving RunUntilLimit calls with
// other work (e.g. cancellation polls) is equivalent to one RunUntil.
func (s *Simulator) RunUntilLimit(deadline time.Duration, limit int) bool {
	for limit > 0 && len(s.events) > 0 && s.events[0].at <= deadline {
		s.Step()
		limit--
	}
	if len(s.events) > 0 && s.events[0].at <= deadline {
		return true
	}
	if s.now < deadline {
		s.now = deadline
	}
	return false
}

// RunFor executes events for a further d of virtual time.
func (s *Simulator) RunFor(d time.Duration) { s.RunUntil(s.now + d) }
