// Package trace defines the access-trace format used by the Wikipedia
// replay (§VI): a line-oriented text file with millisecond timestamps and
// request URLs, in the spirit of the WikiBench traces the paper replays
// ("a traffic generator able to replay a MediaWiki access trace with
// millisecond granularity").
//
// Format (one request per line, '#' comments allowed):
//
//	<timestamp_ms> <url>
//
// Timestamps are milliseconds from trace start, non-decreasing.
package trace

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// Entry is one trace record.
type Entry struct {
	// At is the request time relative to trace start.
	At time.Duration
	// URL is the request target.
	URL string
}

// IsWikiPage reports whether the URL is a dynamic wiki-page request —
// the class the paper analyzes separately, "identifiable by the string
// /wiki/index.php in their URL" (§VI-C).
func (e Entry) IsWikiPage() bool {
	return strings.Contains(e.URL, "/wiki/index.php")
}

// ErrBadLine reports a malformed trace line.
var ErrBadLine = errors.New("trace: malformed line")

// Writer streams entries to a trace file.
type Writer struct {
	w    *bufio.Writer
	last time.Duration
	n    int
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w)}
}

// Write appends one entry. Entries must be time-ordered.
func (tw *Writer) Write(e Entry) error {
	if e.At < tw.last {
		return fmt.Errorf("trace: out-of-order entry at %v after %v", e.At, tw.last)
	}
	if strings.ContainsAny(e.URL, " \t\n") {
		return fmt.Errorf("trace: URL contains whitespace: %q", e.URL)
	}
	tw.last = e.At
	tw.n++
	_, err := fmt.Fprintf(tw.w, "%d %s\n", e.At.Milliseconds(), e.URL)
	return err
}

// Count returns the number of entries written.
func (tw *Writer) Count() int { return tw.n }

// Flush flushes buffered output.
func (tw *Writer) Flush() error { return tw.w.Flush() }

// Reader streams entries from a trace file.
type Reader struct {
	sc   *bufio.Scanner
	line int
	last time.Duration
}

// NewReader wraps r.
func NewReader(r io.Reader) *Reader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	return &Reader{sc: sc}
}

// Next returns the next entry, io.EOF at end of trace.
func (tr *Reader) Next() (Entry, error) {
	for tr.sc.Scan() {
		tr.line++
		line := strings.TrimSpace(tr.sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		ms, url, ok := strings.Cut(line, " ")
		if !ok {
			return Entry{}, fmt.Errorf("%w %d: %q", ErrBadLine, tr.line, line)
		}
		t, err := strconv.ParseInt(ms, 10, 64)
		if err != nil || t < 0 {
			return Entry{}, fmt.Errorf("%w %d: bad timestamp %q", ErrBadLine, tr.line, ms)
		}
		e := Entry{At: time.Duration(t) * time.Millisecond, URL: strings.TrimSpace(url)}
		if e.At < tr.last {
			return Entry{}, fmt.Errorf("%w %d: timestamp goes backwards", ErrBadLine, tr.line)
		}
		tr.last = e.At
		return e, nil
	}
	if err := tr.sc.Err(); err != nil {
		return Entry{}, err
	}
	return Entry{}, io.EOF
}

// ReadAll consumes the whole trace.
func ReadAll(r io.Reader) ([]Entry, error) {
	tr := NewReader(r)
	var out []Entry
	for {
		e, err := tr.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, e)
	}
}
