package trace

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
	"time"
)

func TestWriteReadRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	entries := []Entry{
		{At: 0, URL: "/wiki/index.php?title=Article_1"},
		{At: 150 * time.Millisecond, URL: "/w/static/obj_3.css"},
		{At: 150 * time.Millisecond, URL: "/wiki/index.php?title=Article_9"},
		{At: 2 * time.Second, URL: "/wiki/index.php?title=Article_1"},
	}
	for _, e := range entries {
		if err := w.Write(e); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != len(entries) {
		t.Fatalf("count = %d", w.Count())
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(entries) {
		t.Fatalf("read %d entries", len(got))
	}
	for i := range entries {
		if got[i] != entries[i] {
			t.Fatalf("entry %d: %+v != %+v", i, got[i], entries[i])
		}
	}
}

func TestWriterRejectsOutOfOrder(t *testing.T) {
	w := NewWriter(io.Discard)
	if err := w.Write(Entry{At: time.Second, URL: "/a"}); err != nil {
		t.Fatal(err)
	}
	if err := w.Write(Entry{At: 0, URL: "/b"}); err == nil {
		t.Fatal("out-of-order entry accepted")
	}
}

func TestWriterRejectsWhitespaceURL(t *testing.T) {
	w := NewWriter(io.Discard)
	if err := w.Write(Entry{URL: "/a b"}); err == nil {
		t.Fatal("whitespace URL accepted")
	}
}

func TestReaderSkipsCommentsAndBlanks(t *testing.T) {
	in := "# a comment\n\n100 /x\n   \n200 /y\n"
	got, err := ReadAll(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].URL != "/x" || got[1].URL != "/y" {
		t.Fatalf("got %+v", got)
	}
}

func TestReaderErrors(t *testing.T) {
	cases := map[string]string{
		"no url":       "100\n",
		"bad ts":       "abc /x\n",
		"negative ts":  "-5 /x\n",
		"out of order": "100 /x\n50 /y\n",
	}
	for name, in := range cases {
		t.Run(name, func(t *testing.T) {
			_, err := ReadAll(strings.NewReader(in))
			if !errors.Is(err, ErrBadLine) {
				t.Fatalf("err = %v, want ErrBadLine", err)
			}
		})
	}
}

func TestIsWikiPage(t *testing.T) {
	if !(Entry{URL: "/wiki/index.php?title=Main"}).IsWikiPage() {
		t.Fatal("wiki page not classified")
	}
	if (Entry{URL: "/w/static/logo.png"}).IsWikiPage() {
		t.Fatal("static object misclassified")
	}
}

func TestMillisecondGranularity(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	// Sub-millisecond offsets truncate to the ms grid.
	if err := w.Write(Entry{At: 1500 * time.Microsecond, URL: "/x"}); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	got, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].At != time.Millisecond {
		t.Fatalf("At = %v, want 1ms", got[0].At)
	}
}

func BenchmarkWrite(b *testing.B) {
	w := NewWriter(io.Discard)
	e := Entry{At: 0, URL: "/wiki/index.php?title=Article_12345"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.At = time.Duration(i) * time.Millisecond
		if err := w.Write(e); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRead(b *testing.B) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i := 0; i < 10000; i++ {
		w.Write(Entry{At: time.Duration(i) * time.Millisecond, URL: "/wiki/index.php?title=Article_1"})
	}
	w.Flush()
	data := buf.Bytes()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := NewReader(bytes.NewReader(data))
		for {
			if _, err := r.Next(); err == io.EOF {
				break
			} else if err != nil {
				b.Fatal(err)
			}
		}
	}
}
