// Package srv6 implements the IPv6 Segment Routing Header (SRH) defined in
// RFC 8754, plus the segment-list semantics SRLB's Service Hunting relies
// on (§II of the paper).
//
// Wire layout (RFC 8754 §2):
//
//	 0                   1                   2                   3
//	 0 1 2 3 4 5 6 7 8 9 0 1 2 3 4 5 6 7 8 9 0 1 2 3 4 5 6 7 8 9 0 1
//	+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
//	| Next Header   |  Hdr Ext Len  | Routing Type  | Segments Left |
//	+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
//	|  Last Entry   |     Flags     |              Tag              |
//	+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
//	|            Segment List[0] … Segment List[n] (128 bits each)  |
//	+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
//
// Segment List[0] is the LAST segment of the path; the list is encoded in
// reverse path order. SegmentsLeft indexes the active segment: the active
// segment is Segment List[SegmentsLeft], and "advancing" decrements
// SegmentsLeft. This package stores the list in wire order and offers
// path-order constructors/accessors so calling code reads like the paper.
package srv6

import (
	"errors"
	"fmt"
	"net/netip"
	"strings"

	"srlb/internal/ipv6"
)

// RoutingType is the IANA routing type for the SRH.
const RoutingType = 4

// MaxSegments is a sanity bound on list length (HdrExtLen is 8 bits:
// 255*8 bytes ≈ 127 segments).
const MaxSegments = 127

// Errors returned by Parse and Marshal.
var (
	ErrTooShort       = errors.New("srv6: buffer too short")
	ErrBadRoutingType = errors.New("srv6: routing type is not SRH (4)")
	ErrBadLen         = errors.New("srv6: header length does not match segment list")
	ErrBadSegments    = errors.New("srv6: SegmentsLeft/LastEntry out of range")
	ErrNoSegments     = errors.New("srv6: empty segment list")
	ErrTooMany        = errors.New("srv6: too many segments")
	ErrExhausted      = errors.New("srv6: segment list exhausted")
)

// SRH is a Segment Routing Header. Segments is stored in WIRE order:
// Segments[0] is the final segment of the path.
type SRH struct {
	NextHeader   uint8
	SegmentsLeft uint8
	Flags        uint8
	Tag          uint16
	Segments     []netip.Addr
}

// New builds an SRH for a path traversed in the given order
// (pathSegments[0] is visited first). SegmentsLeft is initialized to
// len(path)-1, i.e. the first segment is active and the IPv6 destination
// address should be set to it by the caller.
func New(nextHeader uint8, pathSegments ...netip.Addr) (*SRH, error) {
	if len(pathSegments) == 0 {
		return nil, ErrNoSegments
	}
	if len(pathSegments) > MaxSegments {
		return nil, ErrTooMany
	}
	segs := make([]netip.Addr, len(pathSegments))
	for i, s := range pathSegments {
		if err := ipv6.CheckAddr(s); err != nil {
			return nil, fmt.Errorf("srv6: segment %d: %w", i, err)
		}
		segs[len(pathSegments)-1-i] = s
	}
	return &SRH{
		NextHeader:   nextHeader,
		SegmentsLeft: uint8(len(pathSegments) - 1),
		Segments:     segs,
	}, nil
}

// MustNew is New, panicking on error (for tests and static tables).
func MustNew(nextHeader uint8, pathSegments ...netip.Addr) *SRH {
	h, err := New(nextHeader, pathSegments...)
	if err != nil {
		panic(err)
	}
	return h
}

// LastEntry returns the Last Entry field value (index of the last element
// of the segment list).
func (h *SRH) LastEntry() uint8 {
	if len(h.Segments) == 0 {
		return 0
	}
	return uint8(len(h.Segments) - 1)
}

// WireLen returns the marshaled size in bytes: 8 + 16*len(Segments).
func (h *SRH) WireLen() int { return 8 + 16*len(h.Segments) }

// Active returns the active segment, Segments[SegmentsLeft]. The IPv6
// destination address of a packet carrying this SRH equals the active
// segment while in flight.
func (h *SRH) Active() (netip.Addr, error) {
	if int(h.SegmentsLeft) >= len(h.Segments) {
		return netip.Addr{}, ErrBadSegments
	}
	return h.Segments[h.SegmentsLeft], nil
}

// Advance decrements SegmentsLeft and returns the new active segment —
// the RFC 8754 "Upper-Layer Header or SL=0" transition is reported as
// ErrExhausted when SegmentsLeft is already 0.
func (h *SRH) Advance() (netip.Addr, error) {
	if h.SegmentsLeft == 0 {
		return netip.Addr{}, ErrExhausted
	}
	h.SegmentsLeft--
	return h.Segments[h.SegmentsLeft], nil
}

// Final returns the last segment of the path (Segments[0] on the wire) —
// for SRLB this is the VIP on client→server packets.
func (h *SRH) Final() (netip.Addr, error) {
	if len(h.Segments) == 0 {
		return netip.Addr{}, ErrNoSegments
	}
	return h.Segments[0], nil
}

// Path returns the segment list in path (visit) order.
func (h *SRH) Path() []netip.Addr {
	out := make([]netip.Addr, len(h.Segments))
	for i, s := range h.Segments {
		out[len(h.Segments)-1-i] = s
	}
	return out
}

// SegmentAtSL returns the segment at a given SegmentsLeft value. This is
// how the SRLB load balancer reads "who accepted" from a SYN-ACK: the
// accepting server places its own address one position behind the LB's
// active segment (paper figure 1: SYN-ACK {a, S2, LB, c}).
func (h *SRH) SegmentAtSL(sl uint8) (netip.Addr, error) {
	if int(sl) >= len(h.Segments) {
		return netip.Addr{}, ErrBadSegments
	}
	return h.Segments[sl], nil
}

// String renders the SRH in path order with the active segment marked.
func (h *SRH) String() string {
	var b strings.Builder
	b.WriteString("SRH[")
	path := h.Path()
	activeIdx := len(h.Segments) - 1 - int(h.SegmentsLeft)
	for i, s := range path {
		if i > 0 {
			b.WriteString(" -> ")
		}
		if i == activeIdx {
			b.WriteString("*")
		}
		b.WriteString(s.String())
	}
	fmt.Fprintf(&b, "] SL=%d", h.SegmentsLeft)
	return b.String()
}

// Marshal appends the wire encoding of h to dst.
func (h *SRH) Marshal(dst []byte) ([]byte, error) {
	n := len(h.Segments)
	if n == 0 {
		return nil, ErrNoSegments
	}
	if n > MaxSegments {
		return nil, ErrTooMany
	}
	if int(h.SegmentsLeft) >= n {
		return nil, ErrBadSegments
	}
	hdr := [8]byte{
		h.NextHeader,
		uint8(2 * n), // Hdr Ext Len in 8-byte units, excluding first 8 bytes
		RoutingType,
		h.SegmentsLeft,
		uint8(n - 1), // Last Entry
		h.Flags,
		uint8(h.Tag >> 8), uint8(h.Tag),
	}
	dst = append(dst, hdr[:]...)
	for i, s := range h.Segments {
		if err := ipv6.CheckAddr(s); err != nil {
			return nil, fmt.Errorf("srv6: segment %d: %w", i, err)
		}
		a := s.As16()
		dst = append(dst, a[:]...)
	}
	return dst, nil
}

// Parse decodes an SRH from the front of b, returning the header and the
// number of bytes consumed.
func Parse(b []byte) (*SRH, int, error) {
	if len(b) < 8 {
		return nil, 0, ErrTooShort
	}
	if b[2] != RoutingType {
		return nil, 0, ErrBadRoutingType
	}
	extLen := int(b[1]) * 8
	total := 8 + extLen
	if len(b) < total {
		return nil, 0, ErrTooShort
	}
	if extLen%16 != 0 {
		return nil, 0, ErrBadLen
	}
	n := extLen / 16
	if n == 0 {
		return nil, 0, ErrNoSegments
	}
	lastEntry := int(b[4])
	if lastEntry != n-1 {
		return nil, 0, ErrBadLen
	}
	sl := b[3]
	if int(sl) >= n {
		return nil, 0, ErrBadSegments
	}
	h := &SRH{
		NextHeader:   b[0],
		SegmentsLeft: sl,
		Flags:        b[5],
		Tag:          uint16(b[6])<<8 | uint16(b[7]),
		Segments:     make([]netip.Addr, n),
	}
	for i := 0; i < n; i++ {
		off := 8 + 16*i
		h.Segments[i] = netip.AddrFrom16([16]byte(b[off : off+16]))
	}
	return h, total, nil
}
