package srv6

import (
	"net/netip"
	"strings"
	"testing"
	"testing/quick"

	"srlb/internal/ipv6"
)

var (
	s1  = ipv6.MustAddr("2001:db8:5::1")
	s2  = ipv6.MustAddr("2001:db8:5::2")
	vip = ipv6.MustAddr("2001:db8:f00d::1")
	lb  = ipv6.MustAddr("2001:db8:1b::1")
)

func TestNewPathOrder(t *testing.T) {
	h := MustNew(ipv6.ProtoTCP, s1, s2, vip)
	if h.SegmentsLeft != 2 {
		t.Fatalf("SL = %d, want 2", h.SegmentsLeft)
	}
	// Wire order is reversed: Segments[0] is the final segment (the VIP).
	if h.Segments[0] != vip || h.Segments[1] != s2 || h.Segments[2] != s1 {
		t.Fatalf("wire order wrong: %v", h.Segments)
	}
	active, err := h.Active()
	if err != nil || active != s1 {
		t.Fatalf("active = %v (%v), want s1", active, err)
	}
	final, err := h.Final()
	if err != nil || final != vip {
		t.Fatalf("final = %v (%v), want vip", final, err)
	}
	path := h.Path()
	if path[0] != s1 || path[1] != s2 || path[2] != vip {
		t.Fatalf("path order wrong: %v", path)
	}
}

func TestAdvanceSemantics(t *testing.T) {
	// This is the exact Service Hunting walk of paper figure 1:
	// SYN {c, a}: LB inserts [s1, s2, vip]; s1 refuses → advance → s2;
	// s2 accepts → advance → vip delivered locally.
	h := MustNew(ipv6.ProtoTCP, s1, s2, vip)
	next, err := h.Advance()
	if err != nil || next != s2 {
		t.Fatalf("first advance → %v (%v), want s2", next, err)
	}
	if h.SegmentsLeft != 1 {
		t.Fatalf("SL = %d, want 1", h.SegmentsLeft)
	}
	next, err = h.Advance()
	if err != nil || next != vip {
		t.Fatalf("second advance → %v (%v), want vip", next, err)
	}
	if h.SegmentsLeft != 0 {
		t.Fatalf("SL = %d, want 0", h.SegmentsLeft)
	}
	if _, err := h.Advance(); err != ErrExhausted {
		t.Fatalf("advance past 0 → %v, want ErrExhausted", err)
	}
}

func TestSegmentAtSL(t *testing.T) {
	// SYN-ACK {a, S2, LB, c}: path [s2, lb, client]; LB is active at SL=1
	// and reads the accepting server at SL=2.
	client := ipv6.MustAddr("2001:db8:c::9")
	h := MustNew(ipv6.ProtoTCP, s2, lb, client)
	if _, err := h.Advance(); err != nil { // s2 sends; LB is next
		t.Fatal(err)
	}
	if h.SegmentsLeft != 1 {
		t.Fatalf("SL = %d, want 1", h.SegmentsLeft)
	}
	server, err := h.SegmentAtSL(h.SegmentsLeft + 1)
	if err != nil || server != s2 {
		t.Fatalf("SegmentAtSL = %v (%v), want s2", server, err)
	}
	if _, err := h.SegmentAtSL(99); err != ErrBadSegments {
		t.Fatalf("out-of-range err = %v", err)
	}
}

func TestMarshalParseRoundTrip(t *testing.T) {
	h := MustNew(ipv6.ProtoTCP, s1, s2, vip)
	h.Flags = 0xa5
	h.Tag = 0x1234
	b, err := h.Marshal(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != h.WireLen() {
		t.Fatalf("wire len %d, want %d", len(b), h.WireLen())
	}
	got, n, err := Parse(b)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(b) {
		t.Fatalf("consumed %d, want %d", n, len(b))
	}
	if got.NextHeader != h.NextHeader || got.SegmentsLeft != h.SegmentsLeft ||
		got.Flags != h.Flags || got.Tag != h.Tag {
		t.Fatalf("fields mismatch: %+v vs %+v", got, h)
	}
	for i := range h.Segments {
		if got.Segments[i] != h.Segments[i] {
			t.Fatalf("segment %d mismatch", i)
		}
	}
}

func TestWireFormatKnownAnswer(t *testing.T) {
	h := MustNew(ipv6.ProtoTCP, s1, vip)
	b, err := h.Marshal(nil)
	if err != nil {
		t.Fatal(err)
	}
	if b[0] != ipv6.ProtoTCP {
		t.Fatalf("next header = %d", b[0])
	}
	if b[1] != 4 { // 2 segments * 16 bytes = 32 = 4 * 8-byte units
		t.Fatalf("hdr ext len = %d, want 4", b[1])
	}
	if b[2] != RoutingType {
		t.Fatalf("routing type = %d", b[2])
	}
	if b[3] != 1 { // SL
		t.Fatalf("SL = %d", b[3])
	}
	if b[4] != 1 { // last entry
		t.Fatalf("last entry = %d", b[4])
	}
	// Segment List[0] must be the FINAL segment (vip).
	want := vip.As16()
	for i := 0; i < 16; i++ {
		if b[8+i] != want[i] {
			t.Fatal("Segment List[0] is not the final segment")
		}
	}
}

func TestParseErrors(t *testing.T) {
	h := MustNew(ipv6.ProtoTCP, s1, s2, vip)
	good, _ := h.Marshal(nil)

	if _, _, err := Parse(good[:7]); err != ErrTooShort {
		t.Fatalf("short: %v", err)
	}
	bad := append([]byte(nil), good...)
	bad[2] = 3 // wrong routing type
	if _, _, err := Parse(bad); err != ErrBadRoutingType {
		t.Fatalf("routing type: %v", err)
	}
	bad = append([]byte(nil), good...)
	bad[1] = 200 // claims more bytes than present
	if _, _, err := Parse(bad); err != ErrTooShort {
		t.Fatalf("truncated list: %v", err)
	}
	bad = append([]byte(nil), good...)
	bad[3] = 17 // SL out of range
	if _, _, err := Parse(bad); err != ErrBadSegments {
		t.Fatalf("SL range: %v", err)
	}
	bad = append([]byte(nil), good...)
	bad[4] = 9 // last entry inconsistent
	if _, _, err := Parse(bad); err != ErrBadLen {
		t.Fatalf("last entry: %v", err)
	}
	// Odd ext len (not multiple of 16 bytes).
	odd := make([]byte, 8+8)
	odd[1] = 1
	odd[2] = RoutingType
	if _, _, err := Parse(odd); err != ErrBadLen {
		t.Fatalf("odd len: %v", err)
	}
	// Zero segments.
	zero := make([]byte, 8)
	zero[2] = RoutingType
	if _, _, err := Parse(zero); err != ErrNoSegments {
		t.Fatalf("zero segments: %v", err)
	}
}

func TestNewErrors(t *testing.T) {
	if _, err := New(ipv6.ProtoTCP); err != ErrNoSegments {
		t.Fatalf("empty: %v", err)
	}
	many := make([]netip.Addr, MaxSegments+1)
	for i := range many {
		many[i] = s1
	}
	if _, err := New(ipv6.ProtoTCP, many...); err != ErrTooMany {
		t.Fatalf("too many: %v", err)
	}
	var zero netip.Addr
	if _, err := New(ipv6.ProtoTCP, s1, zero); err == nil {
		t.Fatal("invalid segment accepted")
	}
}

func TestMarshalErrors(t *testing.T) {
	h := &SRH{Segments: nil}
	if _, err := h.Marshal(nil); err != ErrNoSegments {
		t.Fatalf("empty: %v", err)
	}
	h = &SRH{Segments: []netip.Addr{s1}, SegmentsLeft: 1}
	if _, err := h.Marshal(nil); err != ErrBadSegments {
		t.Fatalf("SL out of range: %v", err)
	}
}

func TestStringMarksActive(t *testing.T) {
	h := MustNew(ipv6.ProtoTCP, s1, s2, vip)
	s := h.String()
	if !strings.Contains(s, "*"+s1.String()) {
		t.Fatalf("String() should mark s1 active: %q", s)
	}
	h.Advance()
	s = h.String()
	if !strings.Contains(s, "*"+s2.String()) {
		t.Fatalf("String() should mark s2 active after advance: %q", s)
	}
}

// TestRoundTripQuick fuzzes path lengths and segment bytes.
func TestRoundTripQuick(t *testing.T) {
	f := func(raw [][16]byte, nh uint8, tag uint16) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 12 {
			raw = raw[:12]
		}
		path := make([]netip.Addr, len(raw))
		for i, b := range raw {
			b[0] = 0x20 // force plain global unicast (avoid v4-mapped)
			path[i] = netip.AddrFrom16(b)
		}
		h, err := New(nh, path...)
		if err != nil {
			return false
		}
		h.Tag = tag
		wire, err := h.Marshal(nil)
		if err != nil {
			return false
		}
		got, n, err := Parse(wire)
		if err != nil || n != len(wire) {
			return false
		}
		gotPath := got.Path()
		for i := range path {
			if gotPath[i] != path[i] {
				return false
			}
		}
		return got.Tag == tag && got.NextHeader == nh && got.SegmentsLeft == uint8(len(path)-1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMarshal3Segments(b *testing.B) {
	h := MustNew(ipv6.ProtoTCP, s1, s2, vip)
	buf := make([]byte, 0, h.WireLen())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = buf[:0]
		if _, err := h.Marshal(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParse3Segments(b *testing.B) {
	h := MustNew(ipv6.ProtoTCP, s1, s2, vip)
	buf, _ := h.Marshal(nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := Parse(buf); err != nil {
			b.Fatal(err)
		}
	}
}
