// Topology is the declarative cluster-construction API: named VIPs, each
// carrying its own selection scheme; named server pools that several
// VIPs may share (VIPSpec.Pool), so services contend for the same
// workers; N load-balancer replicas joined to the VIPs through netsim's
// anycast/ECMP groups (the Maglev/Ananta deployment model the paper's
// §II-B consistent-hashing selection enables); and a schedule of
// lifecycle Events — server drain/add/fail targeting pools, replica
// fail/recover — applied at virtual times during the run.
//
// Build compiles a Topology into wired nodes. A VIP without a pool
// reference keeps an implicit pool of its own, compiled down to the same
// machinery — the legacy Config is a one-line single-LB/single-VIP
// wrapper over it (Config.Topology), so every existing experiment
// constructs exactly the cluster it always did, stream for stream
// (parity-pinned in TestImplicitPoolCompiledParity).

package testbed

import (
	"fmt"
	"math"
	"math/rand/v2"
	"net/netip"
	"sort"
	"time"

	"srlb/internal/agent"
	"srlb/internal/appserver"
	"srlb/internal/core"
	"srlb/internal/des"
	"srlb/internal/feedback"
	"srlb/internal/flowtable"
	"srlb/internal/netsim"
	"srlb/internal/packet"
	"srlb/internal/rng"
	"srlb/internal/selection"
	"srlb/internal/vrouter"
)

// VIPAddr returns the service address of VIP v (0-based). VIP 0 is the
// legacy testbed VIP. Addresses are index-deterministic — derived
// arithmetically, identical to the historical "2001:db8:f00d::%x"
// string form for every hextet-sized index and well-defined far beyond
// it (10k-VIP topologies walk straight through the /64).
func VIPAddr(v int) netip.Addr {
	if v == 0 {
		return VIP
	}
	return addrWithTail(vipBase, uint64(v)+1)
}

// poolSpaceAddr derives "2001:db8:<space>:<idx>::<tail>" arithmetically:
// idx sits in hextet 3, tail in the low 64 bits.
func poolSpaceAddr(space uint16, idx, tail uint64) netip.Addr {
	if idx > 0xffff {
		panic(fmt.Sprintf("testbed: pool index %d exhausts the 2001:db8:%x::/48 space — use named shared pools", idx, space))
	}
	a := [16]byte{0x20, 0x01, 0x0d, 0xb8}
	a[4] = byte(space >> 8)
	a[5] = byte(space)
	a[6] = byte(idx >> 8)
	a[7] = byte(idx)
	return addrWithTail(netip.AddrFrom16(a), tail)
}

// PoolServerAddr returns the physical address of server i of VIP v's
// implicit pool. VIP 0 uses the legacy ServerAddr space; later VIPs get
// their own /64 so pools never collide.
func PoolServerAddr(v, i int) netip.Addr {
	if v == 0 {
		return ServerAddr(i)
	}
	return poolSpaceAddr(0x5, uint64(v), uint64(i)+1)
}

// SharedPoolServerAddr returns the physical address of server i of the
// p-th declared pool (Topology.Pools order). Named pools get their own
// /64s, disjoint from every implicit per-VIP pool space.
func SharedPoolServerAddr(p, i int) netip.Addr {
	return poolSpaceAddr(0xa, uint64(p)+1, uint64(i)+1)
}

// SchemeFn builds a candidate-selection scheme over the current server
// pool. When an Event changes the pool, the function is invoked again
// with the new pool and the *same* rng, so the scheme's random stream
// continues deterministically across churn. (Stateful schemes are
// instead kept and re-pointed via selection.Stateful.Update, preserving
// their accumulated state.)
type SchemeFn func(servers []netip.Addr, r *rand.Rand) selection.Scheme

// FeedbackSchemeFn builds a load-aware scheme over the current pool,
// additionally receiving the VIP's projection of the replica-shared
// feedback view. Used only when Topology.Feedback.Enabled; VIPs without
// one fall back to their plain SchemeFn.
type FeedbackSchemeFn func(servers []netip.Addr, r *rand.Rand, view *feedback.VIPView) selection.Scheme

// FallbackFn builds the miss-fallback scheme over the current pool — the
// steering path for packets whose flow the replica never learned
// (cross-replica ECMP, replica restart). It takes no rng: a fallback is
// only useful when it is a deterministic function of the flow (consistent
// hashing), so that every replica agrees without shared state.
type FallbackFn func(servers []netip.Addr) selection.Scheme

// PoolSpec declares one named, shareable server pool. Two or more VIPs
// referencing the same pool (VIPSpec.Pool) select over the *same*
// physical servers and contend for the same workers — the shared-backend
// regime of Maglev-style deployments, where one service's surge is
// another's queueing delay. Zero fields take the paper's values.
type PoolSpec struct {
	// Name identifies the pool; VIPSpec.Pool and pool-targeted Events
	// reference it. Required, unique across Topology.Pools.
	Name string
	// Servers is the initial pool size (default 12).
	Servers int
	// Server configures every pool member (default appserver.Default);
	// ServerOverride, when non-nil, configures server i (zero Config
	// falls back to Server). Servers added by Events use the same pair.
	Server         appserver.Config
	ServerOverride func(i int) appserver.Config
	// Policy builds the acceptance policy of server i (default Always).
	// One agent per server, shared by every VIP selecting over the pool:
	// acceptance is a property of the worker, not of the service asking.
	Policy func(i int) agent.Policy
}

// VIPSpec declares one virtual service: its address, server pool, and
// per-connection machinery. Zero fields take the paper's values (12
// servers × appserver.Default, random-2 selection, Always policy,
// demand-in-payload).
type VIPSpec struct {
	// Name labels the VIP in server names and diagnostics (default
	// "vip<index>").
	Name string
	// Addr is the service address (default VIPAddr(index)).
	Addr netip.Addr
	// Pool, when set, references a Topology.Pools entry by name: the VIP
	// selects over that shared pool instead of an implicit one of its
	// own, and the pool-level fields below (Servers, Server,
	// ServerOverride, Policy) must stay zero — the pool carries them.
	Pool string
	// Servers is the initial pool size (default 12). Ignored — and
	// rejected by Validate when nonzero — for pool-referencing VIPs.
	Servers int
	// Server configures every pool member (default appserver.Default);
	// ServerOverride, when non-nil, configures server i (zero Config
	// falls back to Server). Servers added by Events use the same pair.
	Server         appserver.Config
	ServerOverride func(i int) appserver.Config
	// Policy builds the acceptance policy of server i (default Always).
	Policy func(i int) agent.Policy
	// Scheme builds the VIP's candidate selection over the pool (default
	// 2 uniform-random candidates, the paper's). Per VIP even on a
	// shared pool: each service hunts with its own scheme instance.
	Scheme SchemeFn
	// FeedbackScheme, when non-nil and the topology's feedback plane is
	// enabled, builds the VIP's scheme with access to the load-report
	// view; it replaces Scheme under those conditions and is ignored
	// otherwise (so one VIPSpec serves both oblivious and load-aware
	// runs of the same topology).
	FeedbackScheme FeedbackSchemeFn
	// Fallback, when non-nil, builds the VIP's miss-fallback scheme.
	Fallback FallbackFn
	// Demand builds server i's demand function (default DefaultDemand).
	// Per VIP even on a shared pool: a shared server dispatches each
	// request to the demand model of the VIP it arrived for.
	Demand func(i int) vrouter.DemandFn
}

// Topology declares a full cluster. The zero value (plus one implicit
// zero VIPSpec) is the paper's platform behind a single LB.
type Topology struct {
	Seed uint64
	// Replicas is the number of LB replicas (default 1). With more than
	// one, every replica joins the anycast/ECMP groups of each VIP and of
	// the shared LB return address, exactly as ECMP routers would spread
	// flows across Maglev instances.
	Replicas int
	// Pools declares named, shareable server pools (VIPSpec.Pool
	// references them). VIPs without a reference keep an implicit pool of
	// their own — the legacy form, compiled down to the same machinery.
	Pools []PoolSpec
	// VIPs declares the services (default: one zero VIPSpec).
	VIPs []VIPSpec
	// Net, Flows, Clients as in Config.
	Net     netsim.Config
	Flows   flowtable.Config
	Clients int
	// Events is the lifecycle schedule, applied at virtual times during
	// the run. Events at the same instant apply in slice order.
	Events []Event
	// Feedback configures the server-load telemetry plane. Disabled by
	// default: servers publish nothing and VIPSpec.FeedbackScheme is
	// ignored, so existing topologies run exactly as before. When
	// enabled with a positive Horizon, every live server publishes a
	// report each Interval (DES-scheduled, deterministic) until the
	// horizon; with Horizon ≤ 0 nothing is scheduled and tests drive
	// publication manually via Testbed.PublishFeedback.
	Feedback feedback.Config
}

// EventKind enumerates topology lifecycle actions.
type EventKind int

// Lifecycle actions.
const (
	// EventServerAdd grows a VIP's pool by one freshly built server
	// (scale-out): the server is attached and becomes selectable.
	EventServerAdd EventKind = iota + 1
	// EventServerDrain removes a server from candidate selection but
	// keeps it attached: established flows complete (scale-in).
	EventServerDrain
	// EventServerFail is fail-stop: the server leaves selection, detaches
	// from the LAN, and stops responding; its in-flight work is lost.
	EventServerFail
	// EventReplicaFail removes an LB replica from every anycast group;
	// surviving replicas absorb all traffic (flows re-hash onto them).
	EventReplicaFail
	// EventReplicaRecover re-attaches a failed replica — stateless, its
	// flow table cleared, as a restarted process would come back.
	EventReplicaRecover
	// EventReplicaRecoverWarm re-attaches a failed replica with a warm
	// handoff: instead of coming back stateless it imports the donor
	// replica's flow bindings (Event.From) — a surviving replica's live
	// table, or its own pre-fail snapshot aged by the downtime.
	EventReplicaRecoverWarm
)

// Event is one scheduled lifecycle action. Use the constructors.
//
// An event's time is either absolute (At, the historical form) or
// rate-relative: AtFraction marks it as a fraction of the run's arrival
// span, to be resolved to an absolute time by ResolveEvents once the
// workload knows the span at its load point. Rate-relative schedules are
// what let one event schedule serve a whole load sweep — "drain a third
// of the pool 30% into the run" means the same thing at every ρ, while
// an absolute time only fits one arrival rate.
type Event struct {
	At   time.Duration
	Kind EventKind
	// Pool, when non-empty, targets the named shared pool (server
	// events); VIP is then ignored.
	Pool string
	// VIP indexes Topology.VIPs (server events with no Pool name); the
	// event targets that VIP's pool — implicit or referenced.
	VIP int
	// Server indexes the VIP's pool, including servers added by earlier
	// events (drain/fail).
	Server int
	// Replica indexes the LB replicas (replica events).
	Replica int
	// From indexes the donor replica of a warm recover
	// (EventReplicaRecoverWarm); From == Replica means the replica
	// inherits its own pre-fail snapshot.
	From int
	// Frac is the rate-relative time in [0, 1] (fraction of the arrival
	// span); meaningful only when Relative is set.
	Frac float64
	// Relative marks the event as rate-relative: it must be resolved via
	// ResolveEvents before Build.
	Relative bool
}

// AtFraction returns a copy of ev scheduled at fraction f of the run's
// arrival span instead of at an absolute time. The workload resolves it
// (ResolveEvents) when it knows the span for its load point; Build
// rejects topologies whose relative events were never resolved.
func (ev Event) AtFraction(f float64) Event {
	ev.At = 0
	ev.Frac = f
	ev.Relative = true
	return ev
}

// ResolveEvents resolves every rate-relative event against the given
// arrival span, returning a new slice with all times absolute; absolute
// events pass through untouched. Workloads call this once per run, after
// computing their span from the load point. Malformed relative events —
// fractions outside [0, 1], or an event carrying both an absolute time
// and a fraction — panic here with the same diagnostics Validate gives,
// since resolution (not Build) is where the workload path sees them
// last: a fraction resolved unchecked would surface as a bewildering
// negative-time scheduling panic, or as an event silently landing past
// the horizon.
func ResolveEvents(events []Event, span time.Duration) []Event {
	if len(events) == 0 {
		return events
	}
	out := make([]Event, len(events))
	for i, ev := range events {
		if ev.Relative {
			if ev.Frac < 0 || ev.Frac > 1 {
				panic(fmt.Sprintf("testbed: event %d: fraction %v outside [0, 1]", i, ev.Frac))
			}
			if ev.At != 0 {
				panic(fmt.Sprintf("testbed: event %d: both absolute time %v and fraction %v set", i, ev.At, ev.Frac))
			}
			ev.At = time.Duration(ev.Frac * float64(span))
			ev.Frac = 0
			ev.Relative = false
		}
		out[i] = ev
	}
	return out
}

// AddServer returns an event growing VIP v's pool by one server at time
// at. The new server gets the next free pool index.
func AddServer(at time.Duration, v int) Event {
	return Event{At: at, Kind: EventServerAdd, VIP: v}
}

// DrainServer returns an event removing server i of VIP v from candidate
// selection at time at, leaving established flows to complete.
func DrainServer(at time.Duration, v, i int) Event {
	return Event{At: at, Kind: EventServerDrain, VIP: v, Server: i}
}

// FailServer returns a fail-stop event for server i of VIP v at time at.
func FailServer(at time.Duration, v, i int) Event {
	return Event{At: at, Kind: EventServerFail, VIP: v, Server: i}
}

// AddPoolServer returns an event growing the named pool by one server at
// time at — the pool-targeted form of AddServer.
func AddPoolServer(at time.Duration, pool string) Event {
	return Event{At: at, Kind: EventServerAdd, Pool: pool}
}

// DrainPoolServer returns an event removing server i of the named pool
// from candidate selection at time at (every VIP sharing the pool loses
// the server from its candidates at once).
func DrainPoolServer(at time.Duration, pool string, i int) Event {
	return Event{At: at, Kind: EventServerDrain, Pool: pool, Server: i}
}

// FailPoolServer returns a fail-stop event for server i of the named
// pool at time at.
func FailPoolServer(at time.Duration, pool string, i int) Event {
	return Event{At: at, Kind: EventServerFail, Pool: pool, Server: i}
}

// FailReplica returns an event failing LB replica r at time at.
func FailReplica(at time.Duration, r int) Event {
	return Event{At: at, Kind: EventReplicaFail, Replica: r}
}

// RecoverReplica returns an event re-attaching LB replica r (stateless)
// at time at.
func RecoverReplica(at time.Duration, r int) Event {
	return Event{At: at, Kind: EventReplicaRecover, Replica: r}
}

// RecoverReplicaWarm returns an event re-attaching LB replica r at time
// at with a warm handoff: the replica imports replica from's flow
// bindings instead of restarting stateless. A donor that is alive at
// the recover instant exports its table then; a dead donor — including
// from == r, a replica handing its own state forward across the restart
// — contributes the snapshot captured when it failed, aged by the
// downtime (deadlines are absolute virtual times, so bindings that
// expired while the replica was dark are dropped on import).
func RecoverReplicaWarm(at time.Duration, r, from int) Event {
	return Event{At: at, Kind: EventReplicaRecoverWarm, Replica: r, From: from}
}

// FailPoolRack returns a correlated-failure schedule: the first
// ceil(fraction × servers) slots of the named pool (pool == "" targets
// VIP 0's implicit pool) all fail-stop at the same rate-relative
// instant atFrac — one rack dropping off the fabric at once. Victims
// are resolved deterministically as slots 0..k-1, and the count is
// clamped to leave at least one server alive (Validate rejects
// schedules that empty a pool).
func FailPoolRack(pool string, servers int, fraction, atFrac float64) []Event {
	k := int(math.Ceil(fraction * float64(servers)))
	if k < 1 {
		k = 1
	}
	if k > servers-1 {
		k = servers - 1
	}
	events := make([]Event, 0, k)
	for i := 0; i < k; i++ {
		events = append(events, Event{Kind: EventServerFail, Pool: pool, Server: i}.AtFraction(atFrac))
	}
	return events
}

// RollingUpgradeEvents sequences a rolling LB upgrade: replica r goes
// down at fraction startFrac + r·strideFrac of the arrival span and
// comes back downFrac later, so with strideFrac > downFrac at most one
// replica is dark at a time. With warm set, each replica recovers via
// RecoverReplicaWarm from its successor (r+1 mod replicas — a live
// donor whenever the downtimes don't overlap; a single replica hands
// its own snapshot forward); otherwise recovery is stateless. All
// fractions are clamped to 1.
func RollingUpgradeEvents(replicas int, startFrac, strideFrac, downFrac float64, warm bool) []Event {
	clamp := func(f float64) float64 {
		if f > 1 {
			return 1
		}
		return f
	}
	events := make([]Event, 0, 2*replicas)
	for r := 0; r < replicas; r++ {
		failF := clamp(startFrac + float64(r)*strideFrac)
		recF := clamp(startFrac + float64(r)*strideFrac + downFrac)
		events = append(events, FailReplica(0, r).AtFraction(failF))
		if warm {
			events = append(events, RecoverReplicaWarm(0, r, (r+1)%replicas).AtFraction(recF))
		} else {
			events = append(events, RecoverReplica(0, r).AtFraction(recF))
		}
	}
	return events
}

func (t Topology) withDefaults() Topology {
	if t.Replicas <= 0 {
		t.Replicas = 1
	}
	if len(t.VIPs) == 0 {
		t.VIPs = make([]VIPSpec, 1)
	}
	pools := make([]PoolSpec, len(t.Pools))
	for p, ps := range t.Pools {
		if ps.Servers <= 0 {
			ps.Servers = 12
		}
		if ps.Server.Workers == 0 {
			ps.Server = appserver.Default()
		}
		if ps.Policy == nil {
			ps.Policy = func(int) agent.Policy { return agent.Always{} }
		}
		pools[p] = ps
	}
	t.Pools = pools
	vips := make([]VIPSpec, len(t.VIPs))
	for i, v := range t.VIPs {
		if v.Name == "" {
			v.Name = fmt.Sprintf("vip%d", i)
		}
		if !v.Addr.IsValid() {
			v.Addr = VIPAddr(i)
		}
		// Pool-level defaults apply only to VIPs carrying their own
		// implicit pool; a referencing VIP leaves them zero (Validate
		// rejects explicit values there).
		if v.Pool == "" {
			if v.Servers <= 0 {
				v.Servers = 12
			}
			if v.Server.Workers == 0 {
				v.Server = appserver.Default()
			}
			if v.Policy == nil {
				v.Policy = func(int) agent.Policy { return agent.Always{} }
			}
		}
		if v.Scheme == nil {
			v.Scheme = func(servers []netip.Addr, r *rand.Rand) selection.Scheme {
				return selection.NewRandom(servers, 2, r)
			}
		}
		if v.Demand == nil {
			v.Demand = func(int) vrouter.DemandFn { return DefaultDemand }
		}
		vips[i] = v
	}
	t.VIPs = vips
	if t.Clients <= 0 {
		t.Clients = 8
	}
	return t
}

// Validate statically checks the topology and replays its event schedule
// against the declared pools, so that a malformed declaration fails before
// the run, not mid-simulation. Build calls it (and panics on error);
// exported for callers that construct schedules programmatically and want
// the error instead of the panic.
func (t Topology) Validate() error { return t.withDefaults().validate() }

// validate statically replays the event schedule against the declared
// pools so that a malformed schedule fails at Build, not mid-simulation:
// out-of-range indices, malformed rate-relative times and pools drained
// empty are rejected here. One class of error necessarily remains
// dynamic — a pool shrinking below a custom scheme's candidate count
// (the scheme's k is opaque to the topology); keep every pool at least
// as large as its scheme needs, or the scheme's own constructor will
// panic at the event's virtual time.
func (t Topology) validate() error {
	// Rate-relative sanity first: a fraction outside [0, 1], or an event
	// carrying both an absolute time and a fraction, is malformed however
	// the schedule is later resolved. Mixing absolute and relative events
	// in one schedule is also rejected — without the span the two time
	// bases cannot be ordered against each other.
	relative, absolute := 0, 0
	for i, ev := range t.Events {
		if !ev.Relative {
			absolute++
			continue
		}
		relative++
		if ev.Frac < 0 || ev.Frac > 1 {
			return fmt.Errorf("event %d: fraction %v outside [0, 1]", i, ev.Frac)
		}
		if ev.At != 0 {
			return fmt.Errorf("event %d: both absolute time %v and fraction %v set", i, ev.At, ev.Frac)
		}
	}
	if relative > 0 && absolute > 0 {
		return fmt.Errorf("schedule mixes %d absolute and %d rate-relative events; resolve the fractions first (ResolveEvents)", absolute, relative)
	}
	// The pool table: named pools first (checked for name collisions),
	// then one implicit pool per non-referencing VIP. Each entry tracks
	// slots (every index ever valid — drained slots keep theirs) and live
	// (currently selectable servers).
	type poolInfo struct {
		label       string
		slots, live int
	}
	poolIdx := make(map[string]int, len(t.Pools))
	var pools []poolInfo
	for p, ps := range t.Pools {
		if ps.Name == "" {
			return fmt.Errorf("pool %d has no name", p)
		}
		if _, dup := poolIdx[ps.Name]; dup {
			return fmt.Errorf("duplicate pool name %q", ps.Name)
		}
		poolIdx[ps.Name] = len(pools)
		pools = append(pools, poolInfo{label: fmt.Sprintf("pool %q", ps.Name), slots: ps.Servers, live: ps.Servers})
	}
	vipPool := make([]int, len(t.VIPs))
	for v, spec := range t.VIPs {
		if spec.Pool == "" {
			vipPool[v] = len(pools)
			pools = append(pools, poolInfo{label: fmt.Sprintf("VIP %d's pool", v), slots: spec.Servers, live: spec.Servers})
			continue
		}
		pi, ok := poolIdx[spec.Pool]
		if !ok {
			return fmt.Errorf("VIP %d (%s): dangling pool reference %q", v, spec.Name, spec.Pool)
		}
		if spec.Servers != 0 || spec.Server.Workers != 0 || spec.ServerOverride != nil || spec.Policy != nil {
			return fmt.Errorf("VIP %d (%s): references pool %q but sets its own pool fields (Servers/Server/ServerOverride/Policy belong to the PoolSpec)", v, spec.Name, spec.Pool)
		}
		vipPool[v] = pi
	}
	// resolvePool maps a server event to its pool-table index.
	resolvePool := func(i int, ev Event) (int, error) {
		if ev.Pool != "" {
			pi, ok := poolIdx[ev.Pool]
			if !ok {
				return 0, fmt.Errorf("event %d: unknown pool %q", i, ev.Pool)
			}
			return pi, nil
		}
		if ev.VIP < 0 || ev.VIP >= len(t.VIPs) {
			return 0, fmt.Errorf("event %d: VIP %d out of range", i, ev.VIP)
		}
		return vipPool[ev.VIP], nil
	}
	removed := make(map[[2]int]bool)
	// Replay in time order (stable: same-instant events keep slice order,
	// matching how the simulator will fire them). An all-relative
	// schedule replays in fraction order — the order it will fire in
	// once resolved, whatever the span.
	key := func(ev Event) float64 {
		if ev.Relative {
			return ev.Frac
		}
		return float64(ev.At)
	}
	order := make([]int, len(t.Events))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return key(t.Events[order[a]]) < key(t.Events[order[b]]) })
	for _, i := range order {
		ev := t.Events[i]
		switch ev.Kind {
		case EventServerAdd, EventServerDrain, EventServerFail:
			pi, err := resolvePool(i, ev)
			if err != nil {
				return err
			}
			p := &pools[pi]
			if ev.Kind == EventServerAdd {
				p.slots++
				p.live++
				continue
			}
			if ev.Server < 0 || ev.Server >= p.slots {
				return fmt.Errorf("event %d: server %d out of range for %s (≤ %d at t=%v)",
					i, ev.Server, p.label, p.slots, ev.At)
			}
			if key := [2]int{pi, ev.Server}; !removed[key] {
				removed[key] = true
				p.live--
				if p.live < 1 {
					return fmt.Errorf("event %d: draining server %d empties %s at t=%v",
						i, ev.Server, p.label, ev.At)
				}
			}
		case EventReplicaFail, EventReplicaRecover, EventReplicaRecoverWarm:
			if ev.Replica < 0 || ev.Replica >= t.Replicas {
				return fmt.Errorf("event %d: replica %d out of range (%d replicas)", i, ev.Replica, t.Replicas)
			}
			if ev.Kind == EventReplicaRecoverWarm && (ev.From < 0 || ev.From >= t.Replicas) {
				return fmt.Errorf("event %d: warm-recover donor %d out of range (%d replicas)", i, ev.From, t.Replicas)
			}
		default:
			return fmt.Errorf("event %d: unknown kind %d", i, ev.Kind)
		}
	}
	return nil
}

// serverSlot is one (ever-built) pool member.
type serverSlot struct {
	addr    netip.Addr
	router  *vrouter.Router
	server  *appserver.Server
	drained bool
	failed  bool
	// pub is the slot's feedback publisher (EWMA state), nil when the
	// topology's telemetry plane is disabled.
	pub *feedback.Publisher
}

// poolState is the runtime side of one pool — named and shared, or the
// implicit pool a non-referencing VIP compiles down to. It owns the live
// candidate set and the ever-built slots; the VIPs selecting over it hang
// their schemes off the same addresses.
type poolState struct {
	name string
	spec PoolSpec
	// addr allocates the physical address of slot i (legacy per-VIP
	// space for implicit pools, the shared-pool space for named ones).
	addr func(i int) netip.Addr
	// implicitVIP is the owning VIP's index for implicit pools (server
	// naming keeps its historical form), -1 for named pools.
	implicitVIP int
	pool        []netip.Addr // currently selectable servers
	all         []*serverSlot
	vips        []*vipState // every VIP selecting over this pool
}

func (ps *poolState) removeFromPool(addr netip.Addr) bool {
	for i, a := range ps.pool {
		if a == addr {
			ps.pool = append(ps.pool[:i:i], ps.pool[i+1:]...)
			return true
		}
	}
	return false
}

// vipState is the runtime side of a VIPSpec: its address and the pool it
// selects over.
type vipState struct {
	spec  VIPSpec
	addr  netip.Addr
	index int // position in Topology.VIPs (the scheme-stream index)
	pool  *poolState
	// fallback is the VIP's miss-fallback scheme, shared by every replica:
	// FallbackFn takes no rng (the fallback must be a deterministic
	// function of the flow so replicas agree without shared state), so one
	// instance per VIP serves all replicas instead of one per (VIP,
	// replica). Nil when the VIP declares none.
	fallback *mutableScheme
}

// replicaState is one LB replica with its per-VIP schemes.
type replicaState struct {
	lb      *core.LoadBalancer
	down    bool
	schemes []*mutableScheme // per VIP
	rngs    []*rand.Rand     // per VIP; persists across pool rebuilds
	// view is this replica's subscription to the telemetry plane (nil
	// when feedback is disabled) — per replica, per the feedback
	// package's contract. A down replica receives no reports and a
	// recovering one resets its view: a restarted process has no memory
	// of pre-crash load, and answers stale until servers report again.
	view *feedback.View
	// preFail is the flow snapshot captured the instant the replica
	// failed — the donor state for a warm self-recovery, and for a warm
	// recovery whose donor is itself dark at the recover instant.
	preFail []flowtable.FlowBinding
}

// mutableScheme delegates to the pool's current scheme; lifecycle events
// swap the underlying scheme when the pool changes, so the LB's VIP map
// never has to be rebuilt. It forwards the optional Stateful/Resteerer
// capabilities with a per-call type check, and implements
// selection.Wrapper so the LB's compile-time capability probe sees the
// inner scheme — a VIP whose scheme is plain keeps nil capability
// handles (and the zero-cost hot path) even through this wrapper.
type mutableScheme struct{ cur selection.Scheme }

// Pick implements selection.Scheme.
func (m *mutableScheme) Pick(flow packet.FlowKey) []netip.Addr { return m.cur.Pick(flow) }

// Name implements selection.Scheme.
func (m *mutableScheme) Name() string { return m.cur.Name() }

// Unwrap implements selection.Wrapper.
func (m *mutableScheme) Unwrap() selection.Scheme { return m.cur }

// Observe implements selection.Stateful by forwarding.
func (m *mutableScheme) Observe(server netip.Addr, delta int) {
	if st, ok := m.cur.(selection.Stateful); ok {
		st.Observe(server, delta)
	}
}

// Update implements selection.Stateful by forwarding.
func (m *mutableScheme) Update(servers []netip.Addr) {
	if st, ok := m.cur.(selection.Stateful); ok {
		st.Update(servers)
	}
}

// Resteer implements selection.Resteerer by forwarding.
func (m *mutableScheme) Resteer(now time.Duration, flow packet.FlowKey, idle time.Duration, current netip.Addr) (netip.Addr, bool) {
	if rs, ok := m.cur.(selection.Resteerer); ok {
		return rs.Resteer(now, flow, idle, current)
	}
	return current, false
}

// Build compiles the topology into wired nodes. It panics on malformed
// topologies: cluster construction is static experiment setup, and an
// invalid declaration is a programming error in the caller.
//
// Determinism: every random stream is derived from Topology.Seed (the
// scheme of replica r over VIP v draws from stream 1 + r·len(VIPs) + v,
// so the legacy single-LB/single-VIP cluster keeps its historical
// stream), and events scheduled at Build time fire before any workload
// event scheduled later at the same instant. A Topology value therefore
// determines the run byte for byte, whatever worker count executes it.
func Build(top Topology) *Testbed {
	top = top.withDefaults()
	if err := top.validate(); err != nil {
		panic(fmt.Sprintf("testbed: invalid topology: %v", err))
	}
	for _, ev := range top.Events {
		if ev.Relative {
			panic("testbed: rate-relative events unresolved — call ResolveEvents with the arrival span before Build (workloads do this per load point)")
		}
	}
	top.Net.Seed = top.Seed ^ 0x6e65740a // independent net stream

	sim := des.New()
	net := netsim.New(sim, top.Net)
	tb := &Testbed{Sim: sim, Net: net}

	// Compile the pool table: implicit per-VIP pools in VIP order (the
	// legacy layout, so legacy topologies keep their construction order
	// and address space bit for bit), then the named pools in declaration
	// order.
	tb.poolsByName = make(map[string]*poolState, len(top.Pools))
	named := make([]*poolState, len(top.Pools))
	for p, ps := range top.Pools {
		p := p
		pool := &poolState{
			name:        ps.Name,
			spec:        ps,
			addr:        func(i int) netip.Addr { return SharedPoolServerAddr(p, i) },
			implicitVIP: -1,
		}
		named[p] = pool
		tb.poolsByName[ps.Name] = pool
	}
	tb.vips = make([]*vipState, len(top.VIPs))
	for v, spec := range top.VIPs {
		vs := &vipState{spec: spec, addr: spec.Addr, index: v}
		if spec.Pool != "" {
			vs.pool = tb.poolsByName[spec.Pool]
		} else {
			v := v
			vs.pool = &poolState{
				name: spec.Name,
				spec: PoolSpec{
					Name:           spec.Name,
					Servers:        spec.Servers,
					Server:         spec.Server,
					ServerOverride: spec.ServerOverride,
					Policy:         spec.Policy,
				},
				addr:        func(i int) netip.Addr { return PoolServerAddr(v, i) },
				implicitVIP: v,
			}
			tb.pools = append(tb.pools, vs.pool)
		}
		vs.pool.vips = append(vs.pool.vips, vs)
		tb.vips[v] = vs
	}
	tb.pools = append(tb.pools, named...)

	// Count scale-out events per pool so candidate and slot slices are
	// allocated once, at final capacity.
	adds := make(map[*poolState]int, len(tb.pools))
	for _, ev := range top.Events {
		if ev.Kind == EventServerAdd {
			adds[tb.poolOf(ev)]++
		}
	}
	total := 0
	for _, pool := range tb.pools {
		n := pool.spec.Servers
		pool.pool = make([]netip.Addr, n, n+adds[pool])
		for i := range pool.pool {
			pool.pool[i] = pool.addr(i)
		}
		pool.all = make([]*serverSlot, 0, n+adds[pool])
		total += n + adds[pool]
	}

	// LB replicas. A single replica attaches unicast (the legacy wiring);
	// several join the per-address anycast/ECMP groups.
	anycast := top.Replicas > 1
	tb.replicas = make([]*replicaState, top.Replicas)
	tb.LBs = make([]*core.LoadBalancer, top.Replicas)
	for r := 0; r < top.Replicas; r++ {
		rs := &replicaState{
			schemes: make([]*mutableScheme, len(top.VIPs)),
			rngs:    make([]*rand.Rand, len(top.VIPs)),
		}
		if top.Feedback.Enabled {
			// One view per replica — the View is "one LB replica's
			// subscription" by the feedback package's contract. In steady
			// state every replica receives identical reports at identical
			// instants, but a down replica receives nothing and a
			// recovering one starts from scratch.
			rs.view = feedback.NewView(top.Feedback, sim.Now)
		}
		// The indexed config form: VIP v gets dense id v in every replica,
		// so construction is one slice walk — no per-replica maps, and the
		// LB compiles it without sorting.
		list := make([]core.VIPConfig, len(top.VIPs))
		for v, vs := range tb.vips {
			stream := uint64(1) + uint64(r)*uint64(len(top.VIPs)) + uint64(v)
			selRng := rng.Split(top.Seed, stream)
			rs.rngs[v] = selRng
			ms := &mutableScheme{cur: tb.buildScheme(rs, vs, clonePool(vs.pool.pool), selRng)}
			rs.schemes[v] = ms
			list[v] = core.VIPConfig{Addr: vs.addr, Scheme: ms}
			if vs.spec.Fallback != nil {
				if vs.fallback == nil {
					// Built once, shared by every replica (FallbackFn is
					// deterministic and rng-free by contract).
					vs.fallback = &mutableScheme{cur: vs.spec.Fallback(clonePool(vs.pool.pool))}
				}
				list[v].Fallback = vs.fallback
			}
		}
		cfg := core.Config{Addr: LBAddr, VIPList: list, Flows: top.Flows}
		if anycast {
			rs.lb = core.NewDetached(sim, net, cfg)
			for _, vs := range tb.vips {
				net.AttachAnycast(rs.lb, vs.addr)
			}
			net.AttachAnycast(rs.lb, LBAddr)
		} else {
			rs.lb = core.New(sim, net, cfg)
		}
		tb.replicas[r] = rs
		tb.LBs[r] = rs.lb
	}
	tb.LB = tb.LBs[0]
	// The exported Feedback field is replica 0's view (the legacy
	// single-replica surface); FeedbackOf reaches the others.
	tb.Feedback = tb.replicas[0].view

	// Servers, pool by pool in table order (implicit pools first — the
	// legacy construction order).
	tb.Servers = make([]*appserver.Server, 0, total)
	tb.Routers = make([]*vrouter.Router, 0, total)
	for _, pool := range tb.pools {
		for i := 0; i < pool.spec.Servers; i++ {
			tb.buildServer(pool, i)
		}
	}
	tb.Gen = newGenerator(sim, net, top.Clients, tb.vips[0].addr)

	// Feedback publishing: one DES-scheduled tick for the whole cluster,
	// walking pools and slots in table order (deterministic), bounded by
	// the configured horizon — the SampleLoads idiom, so an idle
	// simulation still terminates. Failed servers stop publishing and go
	// stale naturally; the first reports land one interval in.
	if tb.Feedback != nil {
		if h := tb.Feedback.Config().Horizon; h > 0 {
			interval := tb.Feedback.Config().Interval
			var tick func()
			tick = func() {
				tb.PublishFeedback()
				if tb.Sim.Now()+interval <= h {
					tb.Sim.After(interval, tick)
				}
			}
			tb.Sim.After(interval, tick)
		}
	}

	// Lifecycle schedule. Same-instant events fire in slice order, and
	// before workload events scheduled later for the same instant.
	for _, ev := range top.Events {
		ev := ev
		sim.At(ev.At, func() { tb.apply(ev) })
	}
	return tb
}

// buildScheme constructs VIP vs's scheme over servers for replica rs:
// the load-aware constructor (with the replica's own view projection)
// when the feedback plane is on and the spec provides one, the plain
// SchemeFn otherwise.
func (tb *Testbed) buildScheme(rs *replicaState, vs *vipState, servers []netip.Addr, r *rand.Rand) selection.Scheme {
	if rs.view != nil && vs.spec.FeedbackScheme != nil {
		return vs.spec.FeedbackScheme(servers, r, rs.view.For(vs.addr))
	}
	return vs.spec.Scheme(servers, r)
}

// PublishFeedback samples every live server's scoreboard once and
// ingests one report per (VIP, server) into each live replica's view —
// the body of the periodic publishing tick, exported so staleness tests
// can drive reports at instants of their choosing. Each server samples
// once (one EWMA step per tick), every subscriber sees the same
// numbers; a down replica receives nothing, so its view goes stale
// exactly as a dead process's would. No-op when the feedback plane is
// disabled.
func (tb *Testbed) PublishFeedback() {
	if tb.Feedback == nil {
		return
	}
	now := tb.Sim.Now()
	for _, pool := range tb.pools {
		for _, slot := range pool.all {
			if slot.failed || slot.router.Down() {
				continue
			}
			srv := slot.server
			rpt := slot.pub.Sample(now, srv.BusyWorkers(), srv.TotalWorkers(), slot.router.OpenConns())
			for _, vs := range pool.vips {
				for _, rs := range tb.replicas {
					if rs.down {
						continue
					}
					rs.view.Ingest(vs.addr, slot.addr, rpt)
				}
			}
		}
	}
}

func clonePool(pool []netip.Addr) []netip.Addr {
	return append(make([]netip.Addr, 0, len(pool)), pool...)
}

// poolOf resolves a server event's target pool: the named pool when the
// event carries one, the targeted VIP's pool otherwise. Validation has
// already established both resolve.
func (tb *Testbed) poolOf(ev Event) *poolState {
	if ev.Pool != "" {
		return tb.poolsByName[ev.Pool]
	}
	return tb.vips[ev.VIP].pool
}

// buildServer wires pool member i and registers it everywhere. A server
// of a shared pool hosts every VIP selecting over the pool: its router
// accepts all their addresses and dispatches each request to the demand
// model of the VIP it arrived for, so one physical worker pool serves
// several services with per-service cost models.
func (tb *Testbed) buildServer(pool *poolState, i int) *serverSlot {
	spec := pool.spec
	serverCfg := spec.Server
	if spec.ServerOverride != nil {
		if over := spec.ServerOverride(i); over.Workers != 0 {
			serverCfg = over
		}
	}
	name := fmt.Sprintf("%s-server-%d", pool.name, i)
	if pool.implicitVIP == 0 {
		name = fmt.Sprintf("server-%d", i)
	}
	vips := make([]netip.Addr, len(pool.vips))
	for n, vs := range pool.vips {
		vips[n] = vs.addr
	}
	var demand vrouter.DemandFn
	if len(pool.vips) == 1 {
		// Single-VIP pools (every legacy topology) keep the direct demand
		// function — no dispatch on the hot path, identical behavior.
		demand = pool.vips[0].spec.Demand(i)
	} else {
		byVIP := make(map[netip.Addr]vrouter.DemandFn, len(pool.vips))
		for _, vs := range pool.vips {
			byVIP[vs.addr] = vs.spec.Demand(i)
		}
		demand = func(flow packet.FlowKey, payload []byte) time.Duration {
			fn, ok := byVIP[flow.Dst]
			if !ok {
				// Unreachable by construction: every scheme selects only
				// within its own VIP's pool. A silent default here would
				// misprice the query while the attribution ledgers stayed
				// balanced — fail loudly instead.
				panic(fmt.Sprintf("testbed: shared pool %q asked to price a flow for unknown VIP %v", pool.name, flow.Dst))
			}
			return fn(flow, payload)
		}
	}
	srv := appserver.New(tb.Sim, name, serverCfg)
	rt := vrouter.New(tb.Sim, tb.Net, vrouter.Config{
		Addr:   pool.addr(i),
		VIPs:   vips,
		LB:     LBAddr,
		Policy: spec.Policy(i),
		Server: srv,
		Demand: demand,
	})
	tb.Servers = append(tb.Servers, srv)
	tb.Routers = append(tb.Routers, rt)
	slot := &serverSlot{addr: rt.Addr(), router: rt, server: srv}
	if tb.Feedback != nil {
		slot.pub = feedback.NewPublisher(tb.Feedback.Config().Alpha)
	}
	pool.all = append(pool.all, slot)
	return slot
}

// apply executes one lifecycle event at its scheduled instant.
func (tb *Testbed) apply(ev Event) {
	switch ev.Kind {
	case EventServerAdd:
		pool := tb.poolOf(ev)
		slot := tb.buildServer(pool, len(pool.all))
		pool.pool = append(pool.pool, slot.addr)
		tb.rebuildSchemes(pool)

	case EventServerDrain:
		pool := tb.poolOf(ev)
		slot := pool.all[ev.Server]
		if slot.drained || slot.failed {
			return
		}
		slot.drained = true
		pool.removeFromPool(slot.addr)
		tb.rebuildSchemes(pool)

	case EventServerFail:
		pool := tb.poolOf(ev)
		slot := pool.all[ev.Server]
		if slot.failed {
			return
		}
		slot.failed = true
		if !slot.drained {
			slot.drained = true
			pool.removeFromPool(slot.addr)
			tb.rebuildSchemes(pool)
		}
		tb.Net.Detach(slot.router, slot.addr)
		slot.router.SetDown(true)

	case EventReplicaFail:
		rs := tb.replicas[ev.Replica]
		if rs.down {
			return
		}
		// Capture the dying replica's flow bindings first: the warm-recover
		// donor state when this replica later hands its own snapshot
		// forward, or when another replica recovers warm while this donor
		// is still dark. Deadlines are absolute, so the snapshot ages
		// naturally while it sits here.
		rs.preFail = rs.lb.ExportFlows()
		rs.down = true
		if len(tb.replicas) > 1 {
			for _, vs := range tb.vips {
				tb.Net.DetachAnycast(rs.lb, vs.addr)
			}
			tb.Net.DetachAnycast(rs.lb, LBAddr)
		} else {
			for _, vs := range tb.vips {
				tb.Net.Detach(rs.lb, vs.addr)
			}
			tb.Net.Detach(rs.lb, LBAddr)
		}

	case EventReplicaRecover:
		rs := tb.replicas[ev.Replica]
		if !rs.down {
			return
		}
		// Stateless restart: flow state is gone.
		rs.lb.ResetFlows()
		tb.recoverReplica(rs)

	case EventReplicaRecoverWarm:
		rs := tb.replicas[ev.Replica]
		if !rs.down {
			return
		}
		// Warm handoff: restart, then import the donor's bindings. A live
		// donor exports its table right now; a dark donor (including the
		// replica itself) contributes its pre-fail snapshot, which the
		// import ages — bindings that expired during the downtime stay
		// dead.
		rs.lb.ResetFlows()
		donor := tb.replicas[ev.From]
		snap := donor.preFail
		if ev.From != ev.Replica && !donor.down {
			snap = donor.lb.ExportFlows()
		}
		rs.lb.ImportFlows(snap)
		tb.recoverReplica(rs)
	}
}

// recoverReplica re-attaches a failed replica: schemes resync to the
// pool as it is now (it may have churned while the replica was dark),
// stateful schemes are reconstructed — a restarted process has lost its
// in-flight counters — and the replica's telemetry view resets (load
// reports predate the crash; freshness returns with the next publish
// tick). Flow state is the caller's affair: the stateless path clears
// it, the warm path imports a snapshot. Fallbacks are shared across
// replicas and already track the pool, so recovery leaves them alone.
func (tb *Testbed) recoverReplica(rs *replicaState) {
	rs.down = false
	if rs.view != nil {
		rs.view.Reset()
	}
	for v, vs := range tb.vips {
		rs.schemes[v].cur = tb.buildScheme(rs, vs, clonePool(vs.pool.pool), rs.rngs[v])
	}
	if len(tb.replicas) > 1 {
		for _, vs := range tb.vips {
			tb.Net.AttachAnycast(rs.lb, vs.addr)
		}
		tb.Net.AttachAnycast(rs.lb, LBAddr)
	} else {
		for _, vs := range tb.vips {
			tb.Net.Attach(rs.lb, vs.addr)
		}
		tb.Net.Attach(rs.lb, LBAddr)
	}
}

// rebuildSchemes resyncs every (replica, VIP-over-this-pool) scheme (and
// the VIP's shared fallback) to the pool's current candidate set — on a
// shared pool, one drain updates every service's scheme at once. Scheme
// construction consumes no random draws, so rebuilds never perturb the
// selection streams. Fallbacks rebuild once per VIP, not once per
// (VIP, replica): all replicas share the instance.
func (tb *Testbed) rebuildSchemes(pool *poolState) {
	for _, vs := range pool.vips {
		v := vs.index
		for _, rs := range tb.replicas {
			// A stateful scheme is re-pointed at the new candidate set
			// (selection.Stateful.Update, draw-free by contract) so its
			// accumulated load state survives churn; plain schemes are
			// reconstructed as always.
			if st, ok := rs.schemes[v].cur.(selection.Stateful); ok {
				st.Update(clonePool(pool.pool))
			} else {
				rs.schemes[v].cur = tb.buildScheme(rs, vs, clonePool(pool.pool), rs.rngs[v])
			}
		}
		if vs.fallback != nil {
			vs.fallback.cur = vs.spec.Fallback(clonePool(pool.pool))
		}
	}
}

// PoolSize returns the number of currently selectable servers of VIP v's
// pool (shared pools report the same value through every referencing VIP).
func (tb *Testbed) PoolSize(v int) int { return len(tb.vips[v].pool.pool) }

// PoolSizeByName returns the number of currently selectable servers of
// the named shared pool (-1 when no such pool is declared).
func (tb *Testbed) PoolSizeByName(name string) int {
	pool, ok := tb.poolsByName[name]
	if !ok {
		return -1
	}
	return len(pool.pool)
}

// PoolNameOf returns the name of the pool VIP v selects over — the VIP's
// own name for implicit pools.
func (tb *Testbed) PoolNameOf(v int) string { return tb.vips[v].pool.name }

// VIPCount returns the number of declared VIPs.
func (tb *Testbed) VIPCount() int { return len(tb.vips) }

// VIPAddrOf returns the address of VIP v.
func (tb *Testbed) VIPAddrOf(v int) netip.Addr { return tb.vips[v].addr }

// ServerOf returns the application server behind pool slot i of VIP v's
// pool (including drained/failed/added servers). Two VIPs sharing a pool
// return the identical server for the same slot.
func (tb *Testbed) ServerOf(v, i int) *appserver.Server { return tb.vips[v].pool.all[i].server }

// RouterOf returns the virtual router of pool slot i of VIP v's pool.
func (tb *Testbed) RouterOf(v, i int) *vrouter.Router { return tb.vips[v].pool.all[i].router }

// FeedbackOf returns replica r's telemetry view (nil when the plane is
// disabled). Testbed.Feedback is shorthand for FeedbackOf(0).
func (tb *Testbed) FeedbackOf(r int) *feedback.View { return tb.replicas[r].view }
