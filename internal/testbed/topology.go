// Topology is the declarative cluster-construction API: named VIPs, each
// carrying its own selection scheme and server pool; N load-balancer
// replicas joined to the VIPs through netsim's anycast/ECMP groups (the
// Maglev/Ananta deployment model the paper's §II-B consistent-hashing
// selection enables); and a schedule of lifecycle Events — server
// drain/add/fail, replica fail/recover — applied at virtual times during
// the run.
//
// Build compiles a Topology into wired nodes; the legacy Config is now a
// one-line single-LB/single-VIP wrapper over it (Config.Topology), so
// every existing experiment constructs exactly the cluster it always did.

package testbed

import (
	"fmt"
	"math/rand/v2"
	"net/netip"
	"sort"
	"time"

	"srlb/internal/agent"
	"srlb/internal/appserver"
	"srlb/internal/core"
	"srlb/internal/des"
	"srlb/internal/flowtable"
	"srlb/internal/ipv6"
	"srlb/internal/netsim"
	"srlb/internal/packet"
	"srlb/internal/rng"
	"srlb/internal/selection"
	"srlb/internal/vrouter"
)

// VIPAddr returns the service address of VIP v (0-based). VIP 0 is the
// legacy testbed VIP.
func VIPAddr(v int) netip.Addr {
	if v == 0 {
		return VIP
	}
	return ipv6.MustAddr(fmt.Sprintf("2001:db8:f00d::%x", v+1))
}

// PoolServerAddr returns the physical address of server i of VIP v's
// pool. VIP 0 uses the legacy ServerAddr space; later VIPs get their own
// /64 so pools never collide.
func PoolServerAddr(v, i int) netip.Addr {
	if v == 0 {
		return ServerAddr(i)
	}
	return ipv6.MustAddr(fmt.Sprintf("2001:db8:5:%x::%x", v, i+1))
}

// SchemeFn builds a candidate-selection scheme over the current server
// pool. When an Event changes the pool, the function is invoked again
// with the new pool and the *same* rng, so the scheme's random stream
// continues deterministically across churn.
type SchemeFn func(servers []netip.Addr, r *rand.Rand) selection.Scheme

// FallbackFn builds the miss-fallback scheme over the current pool — the
// steering path for packets whose flow the replica never learned
// (cross-replica ECMP, replica restart). It takes no rng: a fallback is
// only useful when it is a deterministic function of the flow (consistent
// hashing), so that every replica agrees without shared state.
type FallbackFn func(servers []netip.Addr) selection.Scheme

// VIPSpec declares one virtual service: its address, server pool, and
// per-connection machinery. Zero fields take the paper's values (12
// servers × appserver.Default, random-2 selection, Always policy,
// demand-in-payload).
type VIPSpec struct {
	// Name labels the VIP in server names and diagnostics (default
	// "vip<index>").
	Name string
	// Addr is the service address (default VIPAddr(index)).
	Addr netip.Addr
	// Servers is the initial pool size (default 12).
	Servers int
	// Server configures every pool member (default appserver.Default);
	// ServerOverride, when non-nil, configures server i (zero Config
	// falls back to Server). Servers added by Events use the same pair.
	Server         appserver.Config
	ServerOverride func(i int) appserver.Config
	// Policy builds the acceptance policy of server i (default Always).
	Policy func(i int) agent.Policy
	// Scheme builds the VIP's candidate selection over the pool (default
	// 2 uniform-random candidates, the paper's).
	Scheme SchemeFn
	// Fallback, when non-nil, builds the VIP's miss-fallback scheme.
	Fallback FallbackFn
	// Demand builds server i's demand function (default DefaultDemand).
	Demand func(i int) vrouter.DemandFn
}

// Topology declares a full cluster. The zero value (plus one implicit
// zero VIPSpec) is the paper's platform behind a single LB.
type Topology struct {
	Seed uint64
	// Replicas is the number of LB replicas (default 1). With more than
	// one, every replica joins the anycast/ECMP groups of each VIP and of
	// the shared LB return address, exactly as ECMP routers would spread
	// flows across Maglev instances.
	Replicas int
	// VIPs declares the services (default: one zero VIPSpec).
	VIPs []VIPSpec
	// Net, Flows, Clients as in Config.
	Net     netsim.Config
	Flows   flowtable.Config
	Clients int
	// Events is the lifecycle schedule, applied at virtual times during
	// the run. Events at the same instant apply in slice order.
	Events []Event
}

// EventKind enumerates topology lifecycle actions.
type EventKind int

// Lifecycle actions.
const (
	// EventServerAdd grows a VIP's pool by one freshly built server
	// (scale-out): the server is attached and becomes selectable.
	EventServerAdd EventKind = iota + 1
	// EventServerDrain removes a server from candidate selection but
	// keeps it attached: established flows complete (scale-in).
	EventServerDrain
	// EventServerFail is fail-stop: the server leaves selection, detaches
	// from the LAN, and stops responding; its in-flight work is lost.
	EventServerFail
	// EventReplicaFail removes an LB replica from every anycast group;
	// surviving replicas absorb all traffic (flows re-hash onto them).
	EventReplicaFail
	// EventReplicaRecover re-attaches a failed replica — stateless, its
	// flow table cleared, as a restarted process would come back.
	EventReplicaRecover
)

// Event is one scheduled lifecycle action. Use the constructors.
//
// An event's time is either absolute (At, the historical form) or
// rate-relative: AtFraction marks it as a fraction of the run's arrival
// span, to be resolved to an absolute time by ResolveEvents once the
// workload knows the span at its load point. Rate-relative schedules are
// what let one event schedule serve a whole load sweep — "drain a third
// of the pool 30% into the run" means the same thing at every ρ, while
// an absolute time only fits one arrival rate.
type Event struct {
	At   time.Duration
	Kind EventKind
	// VIP indexes Topology.VIPs (server events).
	VIP int
	// Server indexes the VIP's pool, including servers added by earlier
	// events (drain/fail).
	Server int
	// Replica indexes the LB replicas (replica events).
	Replica int
	// Frac is the rate-relative time in [0, 1] (fraction of the arrival
	// span); meaningful only when Relative is set.
	Frac float64
	// Relative marks the event as rate-relative: it must be resolved via
	// ResolveEvents before Build.
	Relative bool
}

// AtFraction returns a copy of ev scheduled at fraction f of the run's
// arrival span instead of at an absolute time. The workload resolves it
// (ResolveEvents) when it knows the span for its load point; Build
// rejects topologies whose relative events were never resolved.
func (ev Event) AtFraction(f float64) Event {
	ev.At = 0
	ev.Frac = f
	ev.Relative = true
	return ev
}

// ResolveEvents resolves every rate-relative event against the given
// arrival span, returning a new slice with all times absolute; absolute
// events pass through untouched. Workloads call this once per run, after
// computing their span from the load point. Malformed relative events —
// fractions outside [0, 1], or an event carrying both an absolute time
// and a fraction — panic here with the same diagnostics Validate gives,
// since resolution (not Build) is where the workload path sees them
// last: a fraction resolved unchecked would surface as a bewildering
// negative-time scheduling panic, or as an event silently landing past
// the horizon.
func ResolveEvents(events []Event, span time.Duration) []Event {
	if len(events) == 0 {
		return events
	}
	out := make([]Event, len(events))
	for i, ev := range events {
		if ev.Relative {
			if ev.Frac < 0 || ev.Frac > 1 {
				panic(fmt.Sprintf("testbed: event %d: fraction %v outside [0, 1]", i, ev.Frac))
			}
			if ev.At != 0 {
				panic(fmt.Sprintf("testbed: event %d: both absolute time %v and fraction %v set", i, ev.At, ev.Frac))
			}
			ev.At = time.Duration(ev.Frac * float64(span))
			ev.Frac = 0
			ev.Relative = false
		}
		out[i] = ev
	}
	return out
}

// AddServer returns an event growing VIP v's pool by one server at time
// at. The new server gets the next free pool index.
func AddServer(at time.Duration, v int) Event {
	return Event{At: at, Kind: EventServerAdd, VIP: v}
}

// DrainServer returns an event removing server i of VIP v from candidate
// selection at time at, leaving established flows to complete.
func DrainServer(at time.Duration, v, i int) Event {
	return Event{At: at, Kind: EventServerDrain, VIP: v, Server: i}
}

// FailServer returns a fail-stop event for server i of VIP v at time at.
func FailServer(at time.Duration, v, i int) Event {
	return Event{At: at, Kind: EventServerFail, VIP: v, Server: i}
}

// FailReplica returns an event failing LB replica r at time at.
func FailReplica(at time.Duration, r int) Event {
	return Event{At: at, Kind: EventReplicaFail, Replica: r}
}

// RecoverReplica returns an event re-attaching LB replica r (stateless)
// at time at.
func RecoverReplica(at time.Duration, r int) Event {
	return Event{At: at, Kind: EventReplicaRecover, Replica: r}
}

func (t Topology) withDefaults() Topology {
	if t.Replicas <= 0 {
		t.Replicas = 1
	}
	if len(t.VIPs) == 0 {
		t.VIPs = make([]VIPSpec, 1)
	}
	vips := make([]VIPSpec, len(t.VIPs))
	for i, v := range t.VIPs {
		if v.Name == "" {
			v.Name = fmt.Sprintf("vip%d", i)
		}
		if !v.Addr.IsValid() {
			v.Addr = VIPAddr(i)
		}
		if v.Servers <= 0 {
			v.Servers = 12
		}
		if v.Server.Workers == 0 {
			v.Server = appserver.Default()
		}
		if v.Policy == nil {
			v.Policy = func(int) agent.Policy { return agent.Always{} }
		}
		if v.Scheme == nil {
			v.Scheme = func(servers []netip.Addr, r *rand.Rand) selection.Scheme {
				return selection.NewRandom(servers, 2, r)
			}
		}
		if v.Demand == nil {
			v.Demand = func(int) vrouter.DemandFn { return DefaultDemand }
		}
		vips[i] = v
	}
	t.VIPs = vips
	if t.Clients <= 0 {
		t.Clients = 8
	}
	return t
}

// Validate statically checks the topology and replays its event schedule
// against the declared pools, so that a malformed declaration fails before
// the run, not mid-simulation. Build calls it (and panics on error);
// exported for callers that construct schedules programmatically and want
// the error instead of the panic.
func (t Topology) Validate() error { return t.withDefaults().validate() }

// validate statically replays the event schedule against the declared
// pools so that a malformed schedule fails at Build, not mid-simulation:
// out-of-range indices, malformed rate-relative times and pools drained
// empty are rejected here. One class of error necessarily remains
// dynamic — a pool shrinking below a custom scheme's candidate count
// (the scheme's k is opaque to the topology); keep every pool at least
// as large as its scheme needs, or the scheme's own constructor will
// panic at the event's virtual time.
func (t Topology) validate() error {
	// Rate-relative sanity first: a fraction outside [0, 1], or an event
	// carrying both an absolute time and a fraction, is malformed however
	// the schedule is later resolved. Mixing absolute and relative events
	// in one schedule is also rejected — without the span the two time
	// bases cannot be ordered against each other.
	relative, absolute := 0, 0
	for i, ev := range t.Events {
		if !ev.Relative {
			absolute++
			continue
		}
		relative++
		if ev.Frac < 0 || ev.Frac > 1 {
			return fmt.Errorf("event %d: fraction %v outside [0, 1]", i, ev.Frac)
		}
		if ev.At != 0 {
			return fmt.Errorf("event %d: both absolute time %v and fraction %v set", i, ev.At, ev.Frac)
		}
	}
	if relative > 0 && absolute > 0 {
		return fmt.Errorf("schedule mixes %d absolute and %d rate-relative events; resolve the fractions first (ResolveEvents)", absolute, relative)
	}
	// slots counts every index ever valid (drained slots keep theirs);
	// live counts currently selectable servers.
	slots := make([]int, len(t.VIPs))
	live := make([]int, len(t.VIPs))
	for v, spec := range t.VIPs {
		slots[v] = spec.Servers
		live[v] = spec.Servers
	}
	removed := make(map[[2]int]bool)
	// Replay in time order (stable: same-instant events keep slice order,
	// matching how the simulator will fire them). An all-relative
	// schedule replays in fraction order — the order it will fire in
	// once resolved, whatever the span.
	key := func(ev Event) float64 {
		if ev.Relative {
			return ev.Frac
		}
		return float64(ev.At)
	}
	order := make([]int, len(t.Events))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return key(t.Events[order[a]]) < key(t.Events[order[b]]) })
	for _, i := range order {
		ev := t.Events[i]
		switch ev.Kind {
		case EventServerAdd, EventServerDrain, EventServerFail:
			if ev.VIP < 0 || ev.VIP >= len(t.VIPs) {
				return fmt.Errorf("event %d: VIP %d out of range", i, ev.VIP)
			}
			if ev.Kind == EventServerAdd {
				slots[ev.VIP]++
				live[ev.VIP]++
				continue
			}
			if ev.Server < 0 || ev.Server >= slots[ev.VIP] {
				return fmt.Errorf("event %d: server %d out of range for VIP %d (pool ≤ %d at t=%v)",
					i, ev.Server, ev.VIP, slots[ev.VIP], ev.At)
			}
			if key := [2]int{ev.VIP, ev.Server}; !removed[key] {
				removed[key] = true
				live[ev.VIP]--
				if live[ev.VIP] < 1 {
					return fmt.Errorf("event %d: draining server %d empties VIP %d's pool at t=%v",
						i, ev.Server, ev.VIP, ev.At)
				}
			}
		case EventReplicaFail, EventReplicaRecover:
			if ev.Replica < 0 || ev.Replica >= t.Replicas {
				return fmt.Errorf("event %d: replica %d out of range (%d replicas)", i, ev.Replica, t.Replicas)
			}
		default:
			return fmt.Errorf("event %d: unknown kind %d", i, ev.Kind)
		}
	}
	return nil
}

// serverSlot is one (ever-built) pool member of a VIP.
type serverSlot struct {
	addr    netip.Addr
	router  *vrouter.Router
	server  *appserver.Server
	drained bool
	failed  bool
}

// vipState is the runtime side of a VIPSpec: the live pool and the slots.
type vipState struct {
	spec VIPSpec
	addr netip.Addr
	pool []netip.Addr // currently selectable servers
	all  []*serverSlot
}

func (vs *vipState) removeFromPool(addr netip.Addr) bool {
	for i, a := range vs.pool {
		if a == addr {
			vs.pool = append(vs.pool[:i:i], vs.pool[i+1:]...)
			return true
		}
	}
	return false
}

// replicaState is one LB replica with its per-VIP schemes.
type replicaState struct {
	lb        *core.LoadBalancer
	down      bool
	schemes   []*mutableScheme // per VIP
	fallbacks []*mutableScheme // per VIP; nil when the VIP has no fallback
	rngs      []*rand.Rand     // per VIP; persists across pool rebuilds
}

// mutableScheme delegates to the pool's current scheme; lifecycle events
// swap the underlying scheme when the pool changes, so the LB's VIP map
// never has to be rebuilt.
type mutableScheme struct{ cur selection.Scheme }

// Pick implements selection.Scheme.
func (m *mutableScheme) Pick(flow packet.FlowKey) []netip.Addr { return m.cur.Pick(flow) }

// Name implements selection.Scheme.
func (m *mutableScheme) Name() string { return m.cur.Name() }

// Build compiles the topology into wired nodes. It panics on malformed
// topologies: cluster construction is static experiment setup, and an
// invalid declaration is a programming error in the caller.
//
// Determinism: every random stream is derived from Topology.Seed (the
// scheme of replica r over VIP v draws from stream 1 + r·len(VIPs) + v,
// so the legacy single-LB/single-VIP cluster keeps its historical
// stream), and events scheduled at Build time fire before any workload
// event scheduled later at the same instant. A Topology value therefore
// determines the run byte for byte, whatever worker count executes it.
func Build(top Topology) *Testbed {
	top = top.withDefaults()
	if err := top.validate(); err != nil {
		panic(fmt.Sprintf("testbed: invalid topology: %v", err))
	}
	for _, ev := range top.Events {
		if ev.Relative {
			panic("testbed: rate-relative events unresolved — call ResolveEvents with the arrival span before Build (workloads do this per load point)")
		}
	}
	top.Net.Seed = top.Seed ^ 0x6e65740a // independent net stream

	sim := des.New()
	net := netsim.New(sim, top.Net)
	tb := &Testbed{Sim: sim, Net: net}

	// Count scale-out events per VIP so pools and slot slices are
	// allocated once, at final capacity.
	adds := make([]int, len(top.VIPs))
	for _, ev := range top.Events {
		if ev.Kind == EventServerAdd {
			adds[ev.VIP]++
		}
	}

	tb.vips = make([]*vipState, len(top.VIPs))
	total := 0
	for v, spec := range top.VIPs {
		vs := &vipState{spec: spec, addr: spec.Addr}
		vs.pool = make([]netip.Addr, spec.Servers, spec.Servers+adds[v])
		for i := range vs.pool {
			vs.pool[i] = PoolServerAddr(v, i)
		}
		vs.all = make([]*serverSlot, 0, spec.Servers+adds[v])
		tb.vips[v] = vs
		total += spec.Servers + adds[v]
	}

	// LB replicas. A single replica attaches unicast (the legacy wiring);
	// several join the per-address anycast/ECMP groups.
	anycast := top.Replicas > 1
	tb.replicas = make([]*replicaState, top.Replicas)
	tb.LBs = make([]*core.LoadBalancer, top.Replicas)
	for r := 0; r < top.Replicas; r++ {
		rs := &replicaState{
			schemes:   make([]*mutableScheme, len(top.VIPs)),
			fallbacks: make([]*mutableScheme, len(top.VIPs)),
			rngs:      make([]*rand.Rand, len(top.VIPs)),
		}
		vipSchemes := make(map[netip.Addr]selection.Scheme, len(top.VIPs))
		var fallbacks map[netip.Addr]selection.Scheme
		for v, vs := range tb.vips {
			stream := uint64(1) + uint64(r)*uint64(len(top.VIPs)) + uint64(v)
			selRng := rng.Split(top.Seed, stream)
			rs.rngs[v] = selRng
			ms := &mutableScheme{cur: vs.spec.Scheme(clonePool(vs.pool), selRng)}
			rs.schemes[v] = ms
			vipSchemes[vs.addr] = ms
			if vs.spec.Fallback != nil {
				fb := &mutableScheme{cur: vs.spec.Fallback(clonePool(vs.pool))}
				rs.fallbacks[v] = fb
				if fallbacks == nil {
					fallbacks = make(map[netip.Addr]selection.Scheme, len(top.VIPs))
				}
				fallbacks[vs.addr] = fb
			}
		}
		cfg := core.Config{Addr: LBAddr, VIPs: vipSchemes, Flows: top.Flows, MissFallbacks: fallbacks}
		if anycast {
			rs.lb = core.NewDetached(sim, net, cfg)
			for _, vs := range tb.vips {
				net.AttachAnycast(rs.lb, vs.addr)
			}
			net.AttachAnycast(rs.lb, LBAddr)
		} else {
			rs.lb = core.New(sim, net, cfg)
		}
		tb.replicas[r] = rs
		tb.LBs[r] = rs.lb
	}
	tb.LB = tb.LBs[0]

	// Servers.
	tb.Servers = make([]*appserver.Server, 0, total)
	tb.Routers = make([]*vrouter.Router, 0, total)
	for v, vs := range tb.vips {
		for i := 0; i < vs.spec.Servers; i++ {
			tb.buildServer(v, i)
		}
	}
	tb.Gen = newGenerator(sim, net, top.Clients, tb.vips[0].addr)

	// Lifecycle schedule. Same-instant events fire in slice order, and
	// before workload events scheduled later for the same instant.
	for _, ev := range top.Events {
		ev := ev
		sim.At(ev.At, func() { tb.apply(ev) })
	}
	return tb
}

func clonePool(pool []netip.Addr) []netip.Addr {
	return append(make([]netip.Addr, 0, len(pool)), pool...)
}

// buildServer wires pool member i of VIP v and registers it everywhere.
func (tb *Testbed) buildServer(v, i int) *serverSlot {
	vs := tb.vips[v]
	spec := vs.spec
	serverCfg := spec.Server
	if spec.ServerOverride != nil {
		if over := spec.ServerOverride(i); over.Workers != 0 {
			serverCfg = over
		}
	}
	name := fmt.Sprintf("server-%d", i)
	if v > 0 {
		name = fmt.Sprintf("%s-server-%d", spec.Name, i)
	}
	srv := appserver.New(tb.Sim, name, serverCfg)
	rt := vrouter.New(tb.Sim, tb.Net, vrouter.Config{
		Addr:   PoolServerAddr(v, i),
		VIPs:   []netip.Addr{vs.addr},
		LB:     LBAddr,
		Policy: spec.Policy(i),
		Server: srv,
		Demand: spec.Demand(i),
	})
	tb.Servers = append(tb.Servers, srv)
	tb.Routers = append(tb.Routers, rt)
	slot := &serverSlot{addr: rt.Addr(), router: rt, server: srv}
	vs.all = append(vs.all, slot)
	return slot
}

// apply executes one lifecycle event at its scheduled instant.
func (tb *Testbed) apply(ev Event) {
	switch ev.Kind {
	case EventServerAdd:
		vs := tb.vips[ev.VIP]
		slot := tb.buildServer(ev.VIP, len(vs.all))
		vs.pool = append(vs.pool, slot.addr)
		tb.rebuildSchemes(ev.VIP)

	case EventServerDrain:
		vs := tb.vips[ev.VIP]
		slot := vs.all[ev.Server]
		if slot.drained || slot.failed {
			return
		}
		slot.drained = true
		vs.removeFromPool(slot.addr)
		tb.rebuildSchemes(ev.VIP)

	case EventServerFail:
		vs := tb.vips[ev.VIP]
		slot := vs.all[ev.Server]
		if slot.failed {
			return
		}
		slot.failed = true
		if !slot.drained {
			slot.drained = true
			vs.removeFromPool(slot.addr)
			tb.rebuildSchemes(ev.VIP)
		}
		tb.Net.Detach(slot.router, slot.addr)
		slot.router.SetDown(true)

	case EventReplicaFail:
		rs := tb.replicas[ev.Replica]
		if rs.down {
			return
		}
		rs.down = true
		if len(tb.replicas) > 1 {
			for _, vs := range tb.vips {
				tb.Net.DetachAnycast(rs.lb, vs.addr)
			}
			tb.Net.DetachAnycast(rs.lb, LBAddr)
		} else {
			for _, vs := range tb.vips {
				tb.Net.Detach(rs.lb, vs.addr)
			}
			tb.Net.Detach(rs.lb, LBAddr)
		}

	case EventReplicaRecover:
		rs := tb.replicas[ev.Replica]
		if !rs.down {
			return
		}
		rs.down = false
		// Stateless restart: flow state is gone, schemes resync to the
		// pool as it is now (it may have churned while the replica was
		// dark).
		rs.lb.ResetFlows()
		for v, vs := range tb.vips {
			rs.schemes[v].cur = vs.spec.Scheme(clonePool(vs.pool), rs.rngs[v])
			if rs.fallbacks[v] != nil {
				rs.fallbacks[v].cur = vs.spec.Fallback(clonePool(vs.pool))
			}
		}
		if len(tb.replicas) > 1 {
			for _, vs := range tb.vips {
				tb.Net.AttachAnycast(rs.lb, vs.addr)
			}
			tb.Net.AttachAnycast(rs.lb, LBAddr)
		} else {
			for _, vs := range tb.vips {
				tb.Net.Attach(rs.lb, vs.addr)
			}
			tb.Net.Attach(rs.lb, LBAddr)
		}
	}
}

// rebuildSchemes resyncs every replica's scheme (and fallback) for VIP v
// to the current pool. Scheme construction consumes no random draws, so
// rebuilds never perturb the selection streams.
func (tb *Testbed) rebuildSchemes(v int) {
	vs := tb.vips[v]
	for _, rs := range tb.replicas {
		rs.schemes[v].cur = vs.spec.Scheme(clonePool(vs.pool), rs.rngs[v])
		if rs.fallbacks[v] != nil {
			rs.fallbacks[v].cur = vs.spec.Fallback(clonePool(vs.pool))
		}
	}
}

// PoolSize returns the number of currently selectable servers of VIP v.
func (tb *Testbed) PoolSize(v int) int { return len(tb.vips[v].pool) }

// VIPCount returns the number of declared VIPs.
func (tb *Testbed) VIPCount() int { return len(tb.vips) }

// VIPAddrOf returns the address of VIP v.
func (tb *Testbed) VIPAddrOf(v int) netip.Addr { return tb.vips[v].addr }

// ServerOf returns the application server behind pool slot i of VIP v
// (including drained/failed/added servers).
func (tb *Testbed) ServerOf(v, i int) *appserver.Server { return tb.vips[v].all[i].server }

// RouterOf returns the virtual router of pool slot i of VIP v.
func (tb *Testbed) RouterOf(v, i int) *vrouter.Router { return tb.vips[v].all[i].router }
