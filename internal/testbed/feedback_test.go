package testbed

import (
	"math/rand/v2"
	"net/netip"
	"testing"
	"time"

	"srlb/internal/feedback"
	"srlb/internal/selection"
)

// wllFeedbackScheme is the load-aware constructor the experiments use,
// minus the typed-nil dance (the view is always real here).
func wllFeedbackScheme(servers []netip.Addr, r *rand.Rand, view *feedback.VIPView) selection.Scheme {
	var lv selection.LoadView
	if view != nil {
		lv = view
	}
	return selection.NewWeightedLeastLoad(servers, 2, r, lv)
}

// Staleness end to end: a server that stops publishing (here: fails)
// goes stale in the shared view one TTL after its last report, while the
// survivors stay fresh through the periodic ticks — so every load-aware
// scheme demotes to its oblivious fallback exactly for the silent
// server. A later fresh report recovers it.
func TestFeedbackStalenessAndRecovery(t *testing.T) {
	const servers = 3
	failAt := 20 * time.Millisecond
	tb := Build(Topology{
		Seed: 41,
		VIPs: []VIPSpec{{
			Servers:        servers,
			Scheme:         func(s []netip.Addr, r *rand.Rand) selection.Scheme { return selection.NewRandom(s, 2, r) },
			FeedbackScheme: wllFeedbackScheme,
		}},
		// Horizon 0: no automatic ticker — the test drives publication.
		Feedback: feedback.Config{Enabled: true},
		Events:   []Event{FailServer(failAt, 0, 1)},
	})
	if tb.Feedback == nil {
		t.Fatal("feedback plane not built")
	}
	cfg := tb.Feedback.Config()
	vip := tb.VIPAddrOf(0)
	view := tb.Feedback.For(vip)
	victim := PoolServerAddr(0, 1)

	type probe struct {
		at     time.Duration
		fresh  map[netip.Addr]bool
		sample bool
	}
	var got []probe
	check := func(at time.Duration, sample bool) {
		tb.Sim.At(at, func() {
			if sample {
				tb.PublishFeedback()
			}
			p := probe{at: at, fresh: make(map[netip.Addr]bool, servers), sample: sample}
			for i := 0; i < servers; i++ {
				a := PoolServerAddr(0, i)
				_, fresh := view.ServerLoad(a)
				p.fresh[a] = fresh
			}
			got = append(got, p)
		})
	}

	// t=10ms: everyone publishes. t=10ms+TTL+1ms: the victim has failed
	// (the declared Event) and published nothing since, survivors
	// republished — the victim alone must be stale. A later fresh report
	// (direct ingest: failed servers can't publish) recovers it.
	check(10*time.Millisecond, true)
	staleAt := 10*time.Millisecond + cfg.TTL + time.Millisecond
	check(staleAt-2*time.Millisecond, true) // survivors refresh; victim silent
	check(staleAt, false)
	recoverAt := staleAt + time.Millisecond
	tb.Sim.At(recoverAt, func() {
		tb.Feedback.Ingest(vip, victim, feedback.Report{Util: 0.1, At: tb.Sim.Now()})
	})
	check(recoverAt+time.Millisecond, false)
	tb.Sim.Run()

	if len(got) != 4 {
		t.Fatalf("%d probes ran, want 4", len(got))
	}
	for i := 0; i < servers; i++ {
		if !got[0].fresh[PoolServerAddr(0, i)] {
			t.Fatalf("server %d not fresh right after the first publish", i)
		}
	}
	for i := 0; i < servers; i++ {
		a := PoolServerAddr(0, i)
		wantFresh := a != victim
		if got[2].fresh[a] != wantFresh {
			t.Fatalf("at TTL expiry: server %d fresh=%v, want %v (victim is silent)",
				i, got[2].fresh[a], wantFresh)
		}
	}
	if !got[3].fresh[victim] {
		t.Fatal("fresh report did not recover the stale server")
	}
}

// The periodic publishing ticker: with a positive horizon, reports land
// every interval without any workload, the simulation still terminates,
// and ticks stop at the horizon — plus every replica's scheme reads the
// same shared view.
func TestFeedbackPublishingTicker(t *testing.T) {
	horizon := time.Second
	tb := Build(Topology{
		Seed:     43,
		Replicas: 2,
		VIPs: []VIPSpec{{
			Servers:        2,
			Scheme:         func(s []netip.Addr, r *rand.Rand) selection.Scheme { return selection.NewRandom(s, 2, r) },
			FeedbackScheme: wllFeedbackScheme,
		}},
		Feedback: feedback.Config{Enabled: true, Interval: 100 * time.Millisecond, Horizon: horizon},
	})
	tb.Sim.Run()
	if end := tb.Sim.Now(); end > horizon {
		t.Fatalf("ticker ran past its horizon: sim ended at %v", end)
	}
	// 10 ticks × 2 servers × 1 VIP.
	if got := tb.Feedback.Stats().Ingests; got != 20 {
		t.Fatalf("Ingests = %d, want 20 (10 bounded ticks over 2 servers)", got)
	}
	// One shared view: both replicas' schemes see the same projection.
	view := tb.Feedback.For(tb.VIPAddrOf(0))
	for i := 0; i < 2; i++ {
		if _, ok := view.Report(PoolServerAddr(0, i)); !ok {
			t.Fatalf("server %d never reported through the ticker", i)
		}
	}
}

// Feedback disabled is the zero-cost default: no view, and VIPs with a
// FeedbackScheme fall back to their plain Scheme.
func TestFeedbackDisabledUsesPlainScheme(t *testing.T) {
	built := 0
	tb := Build(Topology{
		Seed: 47,
		VIPs: []VIPSpec{{
			Servers: 2,
			Scheme: func(s []netip.Addr, r *rand.Rand) selection.Scheme {
				built++
				return selection.NewRandom(s, 2, r)
			},
			FeedbackScheme: func([]netip.Addr, *rand.Rand, *feedback.VIPView) selection.Scheme {
				t.Fatal("FeedbackScheme invoked with the plane disabled")
				return nil
			},
		}},
	})
	if tb.Feedback != nil {
		t.Fatal("view built with feedback disabled")
	}
	if built != 1 {
		t.Fatalf("plain scheme built %d times, want 1", built)
	}
}
