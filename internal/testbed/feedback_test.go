package testbed

import (
	"math/rand/v2"
	"net/netip"
	"testing"
	"time"

	"srlb/internal/feedback"
	"srlb/internal/selection"
)

// wllFeedbackScheme is the load-aware constructor the experiments use,
// minus the typed-nil dance (the view is always real here).
func wllFeedbackScheme(servers []netip.Addr, r *rand.Rand, view *feedback.VIPView) selection.Scheme {
	var lv selection.LoadView
	if view != nil {
		lv = view
	}
	return selection.NewWeightedLeastLoad(servers, 2, r, lv)
}

// Staleness end to end: a server that stops publishing (here: fails)
// goes stale in the shared view one TTL after its last report, while the
// survivors stay fresh through the periodic ticks — so every load-aware
// scheme demotes to its oblivious fallback exactly for the silent
// server. A later fresh report recovers it.
func TestFeedbackStalenessAndRecovery(t *testing.T) {
	const servers = 3
	failAt := 20 * time.Millisecond
	tb := Build(Topology{
		Seed: 41,
		VIPs: []VIPSpec{{
			Servers:        servers,
			Scheme:         func(s []netip.Addr, r *rand.Rand) selection.Scheme { return selection.NewRandom(s, 2, r) },
			FeedbackScheme: wllFeedbackScheme,
		}},
		// Horizon 0: no automatic ticker — the test drives publication.
		Feedback: feedback.Config{Enabled: true},
		Events:   []Event{FailServer(failAt, 0, 1)},
	})
	if tb.Feedback == nil {
		t.Fatal("feedback plane not built")
	}
	cfg := tb.Feedback.Config()
	vip := tb.VIPAddrOf(0)
	view := tb.Feedback.For(vip)
	victim := PoolServerAddr(0, 1)

	type probe struct {
		at     time.Duration
		fresh  map[netip.Addr]bool
		sample bool
	}
	var got []probe
	check := func(at time.Duration, sample bool) {
		tb.Sim.At(at, func() {
			if sample {
				tb.PublishFeedback()
			}
			p := probe{at: at, fresh: make(map[netip.Addr]bool, servers), sample: sample}
			for i := 0; i < servers; i++ {
				a := PoolServerAddr(0, i)
				_, fresh := view.ServerLoad(a)
				p.fresh[a] = fresh
			}
			got = append(got, p)
		})
	}

	// t=10ms: everyone publishes. t=10ms+TTL+1ms: the victim has failed
	// (the declared Event) and published nothing since, survivors
	// republished — the victim alone must be stale. A later fresh report
	// (direct ingest: failed servers can't publish) recovers it.
	check(10*time.Millisecond, true)
	staleAt := 10*time.Millisecond + cfg.TTL + time.Millisecond
	check(staleAt-2*time.Millisecond, true) // survivors refresh; victim silent
	check(staleAt, false)
	recoverAt := staleAt + time.Millisecond
	tb.Sim.At(recoverAt, func() {
		tb.Feedback.Ingest(vip, victim, feedback.Report{Util: 0.1, At: tb.Sim.Now()})
	})
	check(recoverAt+time.Millisecond, false)
	tb.Sim.Run()

	if len(got) != 4 {
		t.Fatalf("%d probes ran, want 4", len(got))
	}
	for i := 0; i < servers; i++ {
		if !got[0].fresh[PoolServerAddr(0, i)] {
			t.Fatalf("server %d not fresh right after the first publish", i)
		}
	}
	for i := 0; i < servers; i++ {
		a := PoolServerAddr(0, i)
		wantFresh := a != victim
		if got[2].fresh[a] != wantFresh {
			t.Fatalf("at TTL expiry: server %d fresh=%v, want %v (victim is silent)",
				i, got[2].fresh[a], wantFresh)
		}
	}
	if !got[3].fresh[victim] {
		t.Fatal("fresh report did not recover the stale server")
	}
}

// The periodic publishing ticker: with a positive horizon, reports land
// every interval without any workload, the simulation still terminates,
// and ticks stop at the horizon — plus every replica owns its own view
// and each receives every tick's reports.
func TestFeedbackPublishingTicker(t *testing.T) {
	horizon := time.Second
	tb := Build(Topology{
		Seed:     43,
		Replicas: 2,
		VIPs: []VIPSpec{{
			Servers:        2,
			Scheme:         func(s []netip.Addr, r *rand.Rand) selection.Scheme { return selection.NewRandom(s, 2, r) },
			FeedbackScheme: wllFeedbackScheme,
		}},
		Feedback: feedback.Config{Enabled: true, Interval: 100 * time.Millisecond, Horizon: horizon},
	})
	tb.Sim.Run()
	if end := tb.Sim.Now(); end > horizon {
		t.Fatalf("ticker ran past its horizon: sim ended at %v", end)
	}
	// 10 ticks × 2 servers × 1 VIP, delivered to each replica's view.
	if got := tb.Feedback.Stats().Ingests; got != 20 {
		t.Fatalf("Ingests = %d, want 20 (10 bounded ticks over 2 servers)", got)
	}
	// Per-replica views: distinct subscriptions, identical contents.
	if tb.FeedbackOf(0) != tb.Feedback {
		t.Fatal("Testbed.Feedback is not replica 0's view")
	}
	if tb.FeedbackOf(1) == tb.FeedbackOf(0) {
		t.Fatal("replicas share one view; each must own its subscription")
	}
	if got := tb.FeedbackOf(1).Stats().Ingests; got != 20 {
		t.Fatalf("replica 1 Ingests = %d, want 20 (same reports as replica 0)", got)
	}
	vip := tb.VIPAddrOf(0)
	for r := 0; r < 2; r++ {
		view := tb.FeedbackOf(r).For(vip)
		for i := 0; i < 2; i++ {
			if _, ok := view.Report(PoolServerAddr(0, i)); !ok {
				t.Fatalf("server %d never reported to replica %d through the ticker", i, r)
			}
		}
	}
}

// A recovering replica comes back with no telemetry: its view resets,
// so it answers stale for every server until the next publish tick —
// even though its pre-crash reports would still be within TTL — while
// the surviving replica stays fresh throughout. Warm handoff transfers
// flows, not telemetry, so both recover kinds pin the same staleness.
func TestFeedbackStalenessAfterReplicaRecover(t *testing.T) {
	recovers := []struct {
		name string
		ev   Event
	}{
		{"stateless", RecoverReplica(50*time.Millisecond, 1)},
		{"warm", RecoverReplicaWarm(50*time.Millisecond, 1, 0)},
	}
	for _, rec := range recovers {
		t.Run(rec.name, func(t *testing.T) {
			const servers = 2
			tb := Build(Topology{
				Seed:     53,
				Replicas: 2,
				VIPs: []VIPSpec{{
					Servers:        servers,
					Scheme:         func(s []netip.Addr, r *rand.Rand) selection.Scheme { return selection.NewRandom(s, 2, r) },
					FeedbackScheme: wllFeedbackScheme,
				}},
				// Horizon 0: no automatic ticker — the test publishes.
				Feedback: feedback.Config{Enabled: true},
				Events:   []Event{FailReplica(30*time.Millisecond, 1), rec.ev},
			})
			vip := tb.VIPAddrOf(0)
			freshCount := func(r int) int {
				n := 0
				view := tb.FeedbackOf(r).For(vip)
				for i := 0; i < servers; i++ {
					if _, fresh := view.ServerLoad(PoolServerAddr(0, i)); fresh {
						n++
					}
				}
				return n
			}
			publish := func(at time.Duration) { tb.Sim.At(at, tb.PublishFeedback) }
			probe := func(at time.Duration, want0, want1 int, what string) {
				tb.Sim.At(at, func() {
					if got := freshCount(0); got != want0 {
						t.Errorf("%s: replica 0 has %d fresh servers, want %d", what, got, want0)
					}
					if got := freshCount(1); got != want1 {
						t.Errorf("%s: replica 1 has %d fresh servers, want %d", what, got, want1)
					}
				})
			}
			publish(20 * time.Millisecond)
			probe(25*time.Millisecond, servers, servers, "before the kill")
			publish(40 * time.Millisecond) // replica 1 down: replica 0 only
			// The recover at 50ms resets replica 1's view. Its 20ms reports
			// are still well inside the default 300ms TTL — the reset, not
			// the TTL, is what makes the restarted replica stale.
			probe(55*time.Millisecond, servers, 0, "after recover, before any publish")
			publish(60 * time.Millisecond)
			probe(61*time.Millisecond, servers, servers, "after the first post-recover publish")
			tb.Sim.Run()
			// Replica 0 received all three publishes; replica 1 missed the
			// one during its downtime.
			if got := tb.FeedbackOf(0).Stats().Ingests; got != 3*servers {
				t.Fatalf("replica 0 Ingests = %d, want %d", got, 3*servers)
			}
			if got := tb.FeedbackOf(1).Stats().Ingests; got != 2*servers {
				t.Fatalf("replica 1 Ingests = %d, want %d", got, 2*servers)
			}
		})
	}
}

// Feedback disabled is the zero-cost default: no view, and VIPs with a
// FeedbackScheme fall back to their plain Scheme.
func TestFeedbackDisabledUsesPlainScheme(t *testing.T) {
	built := 0
	tb := Build(Topology{
		Seed: 47,
		VIPs: []VIPSpec{{
			Servers: 2,
			Scheme: func(s []netip.Addr, r *rand.Rand) selection.Scheme {
				built++
				return selection.NewRandom(s, 2, r)
			},
			FeedbackScheme: func([]netip.Addr, *rand.Rand, *feedback.VIPView) selection.Scheme {
				t.Fatal("FeedbackScheme invoked with the plane disabled")
				return nil
			},
		}},
	})
	if tb.Feedback != nil {
		t.Fatal("view built with feedback disabled")
	}
	if built != 1 {
		t.Fatalf("plain scheme built %d times, want 1", built)
	}
}
