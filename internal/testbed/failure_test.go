package testbed

import (
	"testing"
	"time"

	"srlb/internal/agent"
	"srlb/internal/netsim"
	"srlb/internal/rng"
)

// Failure-injection tests: the protocol must degrade gracefully, never
// corrupt state, under packet loss, jitter and pathological policies.

func runWithNet(t *testing.T, netCfg netsim.Config, policy func(int) agent.Policy, n int, rate float64) *Testbed {
	t.Helper()
	cfg := Config{Seed: 77, Servers: 4, Net: netCfg, Policy: policy}
	tb := New(cfg)
	tb.Gen.RetainResults = true
	r := rng.Split(cfg.Seed, 99)
	p := rng.NewPoisson(r, rate, 0)
	for i := 0; i < n; i++ {
		at := p.Next()
		q := Query{ID: uint64(i), Demand: rng.Exp(r, 20*time.Millisecond)}
		tb.Sim.At(at, func() { tb.Gen.Launch(q) })
	}
	tb.Sim.RunUntil(time.Duration(float64(n)/rate*float64(time.Second)) + 30*time.Second)
	tb.Gen.DrainPending()
	return tb
}

func TestPacketLossDegradesGracefully(t *testing.T) {
	// 2% loss: some queries never finish (no retransmit model), but
	// accounting must balance and no server may wedge.
	tb := runWithNet(t,
		netsim.Config{LossProb: 0.02, Seed: 5},
		func(int) agent.Policy { return agent.NewStatic(4) },
		2000, 100)
	results := tb.Gen.Results()
	if len(results) != 2000 {
		t.Fatalf("results = %d", len(results))
	}
	ok := 0
	for _, r := range results {
		if r.OK {
			ok++
		}
	}
	// With ~8 packets per query and 2% loss, roughly 1-in-6 queries lose a
	// packet somewhere; far more than half must still succeed.
	if ok < 1200 {
		t.Fatalf("only %d/2000 ok under 2%% loss", ok)
	}
	if ok == 2000 {
		t.Fatal("no losses observed — loss injection inert?")
	}
	// Servers must not leak workers: all admitted conns eventually
	// complete since the PS engine is loss-agnostic once admitted.
	for i, s := range tb.Servers {
		if s.Stats().Admitted != s.Stats().Completed {
			t.Fatalf("server %d: admitted %d != completed %d",
				i, s.Stats().Admitted, s.Stats().Completed)
		}
		if s.BusyWorkers() != 0 {
			t.Fatalf("server %d wedged with %d busy workers", i, s.BusyWorkers())
		}
	}
}

func TestJitterPreservesCorrectness(t *testing.T) {
	tb := runWithNet(t,
		netsim.Config{Latency: time.Millisecond, JitterFrac: 0.8, Seed: 6},
		func(int) agent.Policy { return agent.NewStatic(4) },
		1500, 100)
	ok := 0
	for _, r := range tb.Gen.Results() {
		if r.OK {
			ok++
		}
	}
	if ok != 1500 {
		t.Fatalf("ok = %d under jitter, want 1500 (no loss configured)", ok)
	}
}

func TestChecksumVerificationOnTheFullPath(t *testing.T) {
	// With checksum verification enabled at every hop, a full run must
	// still succeed: the LB's SRH insertion/stripping and the vrouter's
	// segment advance must all preserve TCP checksums.
	tb := runWithNet(t,
		netsim.Config{VerifyChecksums: true},
		func(int) agent.Policy { return agent.NewStatic(4) },
		1000, 80)
	for _, r := range tb.Gen.Results() {
		if !r.OK {
			t.Fatal("query failed under checksum verification")
		}
	}
	if tb.Net.Counts.Get("rx_parse_error") != 0 {
		t.Fatal("checksum errors on the wire")
	}
}

// TestMixedPolicies: heterogeneous agents (some servers eager, some
// strict) must still serve everything — the hunt's satisfiability
// guarantee is per-packet, not per-policy.
func TestMixedPolicies(t *testing.T) {
	tb := runWithNet(t,
		netsim.Config{},
		func(i int) agent.Policy {
			if i%2 == 0 {
				return agent.Never{}
			}
			return agent.Always{}
		},
		1000, 60)
	ok := 0
	for _, r := range tb.Gen.Results() {
		if r.OK {
			ok++
		}
	}
	if ok != 1000 {
		t.Fatalf("ok = %d with mixed policies", ok)
	}
}

// TestSRdynAdaptsAcrossLoadShift: drive light load then heavy load and
// verify the dynamic policy's threshold moves up under pressure.
func TestSRdynAdaptsAcrossLoadShift(t *testing.T) {
	cfg := Config{Seed: 78, Servers: 4}
	policies := make([]*agent.Dynamic, 0, 4)
	cfg.Policy = func(int) agent.Policy {
		p := agent.NewDynamic(agent.DynamicConfig{})
		policies = append(policies, p)
		return p
	}
	tb := New(cfg)
	r := rng.Split(cfg.Seed, 99)
	// Phase 1: light (20 q/s for 20s). Phase 2: heavy (70 q/s for 40s).
	at := time.Duration(0)
	id := uint64(0)
	for at < 20*time.Second {
		at += rng.ExpRate(r, 20)
		q := Query{ID: id, Demand: rng.Exp(r, 100*time.Millisecond)}
		id++
		tb.Sim.At(at, func() { tb.Gen.Launch(q) })
	}
	var lightC int
	tb.Sim.At(20*time.Second, func() {
		for _, p := range policies {
			lightC += p.C()
		}
	})
	for at < 60*time.Second {
		at += rng.ExpRate(r, 70)
		q := Query{ID: id, Demand: rng.Exp(r, 100*time.Millisecond)}
		id++
		tb.Sim.At(at, func() { tb.Gen.Launch(q) })
	}
	tb.Sim.RunUntil(90 * time.Second)
	tb.Gen.DrainPending()
	var heavyC int
	for _, p := range policies {
		heavyC += p.C()
	}
	if heavyC <= lightC {
		t.Fatalf("SRdyn did not raise c under load: light total=%d heavy total=%d", lightC, heavyC)
	}
}

// TestFlowTableBoundedUnderChurn: the LB must not grow state without
// bound across tens of thousands of short flows.
func TestFlowTableBoundedUnderChurn(t *testing.T) {
	cfg := Config{Seed: 79, Servers: 4}
	tb := New(cfg)
	r := rng.Split(cfg.Seed, 99)
	p := rng.NewPoisson(r, 500, 0)
	for i := 0; i < 20000; i++ {
		at := p.Next()
		q := Query{ID: uint64(i), Demand: rng.Exp(r, 2*time.Millisecond)}
		tb.Sim.At(at, func() { tb.Gen.Launch(q) })
	}
	tb.Sim.RunUntil(45 * time.Second)
	tb.Gen.DrainPending()
	// After the run plus idle TTL (60s default) everything should expire
	// on the next datapath sweep; check the live count is far below the
	// total flow count even before that.
	if tb.LB.FlowCount() > 40000 {
		t.Fatalf("flow table grew to %d entries", tb.LB.FlowCount())
	}
	tb.Sim.RunUntil(200 * time.Second)
	tb.LB.SweepNow()
	if tb.LB.FlowCount() != 0 {
		t.Fatalf("flows leaked: %d", tb.LB.FlowCount())
	}
}
