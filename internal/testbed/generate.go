// GenerateTopology mass-produces control-plane-scale topologies: 1k–10k
// VIPs spread over a handful of shared server pools, with every address
// derived deterministically from the VIP/pool index (VIPAddr,
// SharedPoolServerAddr). This is the regime where kube-proxy's O(n)
// iptables traversal collapses and an O(1) indexed dispatch stays flat —
// the generator exists so benchmarks and the vipscale experiment can
// sweep service count without hand-declaring thousands of specs.

package testbed

import (
	"fmt"

	"srlb/internal/appserver"
)

// GenSpec parameterizes GenerateTopology. The zero value (plus a VIP
// count) produces a paper-flavored cluster: shared pools of 12 default
// servers, random-2 selection, no fallback.
type GenSpec struct {
	// Seed drives every random stream of the built topology (selection
	// schemes, network jitter); addresses do NOT depend on it — they are
	// functions of the index alone, so two differently-seeded generations
	// of the same shape are address-identical.
	Seed uint64
	// VIPs is the number of services (required, ≥ 1).
	VIPs int
	// Pools is the number of shared server pools the VIPs are spread
	// over, round-robin by VIP index (default: VIPs/64 rounded up, capped
	// at 64 — thousands of services over tens of pools, the datacenter
	// shape).
	Pools int
	// ServersPerPool sizes each pool (default 12, the paper's).
	ServersPerPool int
	// Replicas is the LB replica count (default 1).
	Replicas int
	// Clients is the number of traffic sources (default 8).
	Clients int
	// Server configures every pool member (default appserver.Default).
	Server appserver.Config
	// Scheme builds each VIP's candidate selection (default random-2);
	// Fallback, when non-nil, each VIP's miss-fallback.
	Scheme   SchemeFn
	Fallback FallbackFn
	// Events is the lifecycle schedule, passed through to the topology.
	Events []Event
}

func (g GenSpec) withDefaults() GenSpec {
	if g.VIPs < 1 {
		panic(fmt.Sprintf("testbed: GenSpec.VIPs must be ≥ 1, got %d", g.VIPs))
	}
	if g.Pools <= 0 {
		g.Pools = (g.VIPs + 63) / 64
		if g.Pools > 64 {
			g.Pools = 64
		}
	}
	if g.Pools > g.VIPs {
		g.Pools = g.VIPs
	}
	if g.ServersPerPool <= 0 {
		g.ServersPerPool = 12
	}
	return g
}

// GenPoolName returns the name of generated pool p — exported so tests
// and event schedules can target generated pools.
func GenPoolName(p int) string { return fmt.Sprintf("genpool-%d", p) }

// GenerateTopology builds the declarative Topology for the spec. The
// result is an ordinary Topology — compile it with Build, validate it,
// attach events — whose size is bounded only by memory: pool addresses
// come from the shared-pool space (index-deterministic), VIP addresses
// walk the VIP /64, and VIP i selects over pool i mod Pools.
func GenerateTopology(spec GenSpec) Topology {
	spec = spec.withDefaults()
	pools := make([]PoolSpec, spec.Pools)
	for p := range pools {
		pools[p] = PoolSpec{
			Name:    GenPoolName(p),
			Servers: spec.ServersPerPool,
			Server:  spec.Server,
		}
	}
	vips := make([]VIPSpec, spec.VIPs)
	for v := range vips {
		vips[v] = VIPSpec{
			Name:     fmt.Sprintf("svc-%d", v),
			Addr:     VIPAddr(v),
			Pool:     GenPoolName(v % spec.Pools),
			Scheme:   spec.Scheme,
			Fallback: spec.Fallback,
		}
	}
	return Topology{
		Seed:     spec.Seed,
		Replicas: spec.Replicas,
		Pools:    pools,
		VIPs:     vips,
		Clients:  spec.Clients,
		Events:   spec.Events,
	}
}
