package testbed

import (
	"net/netip"

	"srlb/internal/sketch"
)

// ResultSink consumes the Generator's per-query outcomes as they happen
// — the constant-memory alternative to retaining a []Result. Offer is
// called once per Launch (before any packet moves), Record once per
// terminal outcome (response, RST, client timeout, or drain), so
// Offered == OK + Refused + Unfinished once a run has drained.
type ResultSink interface {
	Offer(vip netip.Addr)
	Record(Result)
}

// VIPSketch aggregates one service's outcomes in constant memory: a
// quantile histogram and streaming moments over response times of
// completed queries, plus the offered/outcome counter set.
type VIPSketch struct {
	// VIP is the service address (the zero Addr on the sink's Total).
	VIP netip.Addr
	// RT sketches the response times of successful queries.
	RT *sketch.Histogram
	// Seconds accumulates streaming mean/variance of the same response
	// times, projected to seconds.
	Seconds sketch.Welford
	// Counters is the query accounting for this VIP.
	Counters sketch.Counters
}

func newVIPSketch(vip netip.Addr) *VIPSketch {
	return &VIPSketch{VIP: vip, RT: sketch.New()}
}

func (v *VIPSketch) record(res Result) {
	switch {
	case res.OK:
		v.Counters.OK++
		v.RT.Add(res.RT)
		v.Seconds.Add(res.RT.Seconds())
	case res.Refused:
		v.Counters.Refused++
	default:
		v.Counters.Unfinished++
	}
}

// SketchSink is the standard ResultSink: per-VIP sketches plus an
// all-VIP total, all deterministic functions of the observed stream.
// Its memory footprint is fixed by the VIP count and the histogram
// value range — independent of how many queries flow through, which is
// what lets a 10⁸-query horizon run fit in a constant heap.
type SketchSink struct {
	total VIPSketch
	order []*VIPSketch
	byVIP map[netip.Addr]*VIPSketch
}

// NewSketchSink builds a sink with the given VIPs pre-registered (in
// order). VIPs seen later auto-register in first-appearance order —
// deterministic, since launches are.
func NewSketchSink(vips ...netip.Addr) *SketchSink {
	s := &SketchSink{
		total: VIPSketch{RT: sketch.New()},
		byVIP: make(map[netip.Addr]*VIPSketch, len(vips)),
	}
	for _, vip := range vips {
		s.vip(vip)
	}
	return s
}

func (s *SketchSink) vip(addr netip.Addr) *VIPSketch {
	if v, ok := s.byVIP[addr]; ok {
		return v
	}
	v := newVIPSketch(addr)
	s.byVIP[addr] = v
	s.order = append(s.order, v)
	return v
}

// Offer implements ResultSink.
func (s *SketchSink) Offer(vip netip.Addr) {
	s.total.Counters.Offered++
	s.vip(vip).Counters.Offered++
}

// Record implements ResultSink.
func (s *SketchSink) Record(res Result) {
	s.total.record(res)
	s.vip(res.VIP).record(res)
}

// Total returns the all-VIP aggregate.
func (s *SketchSink) Total() *VIPSketch { return &s.total }

// VIP returns the sketch of one service (nil if never offered a query
// and not pre-registered).
func (s *SketchSink) VIP(addr netip.Addr) *VIPSketch { return s.byVIP[addr] }

// VIPs returns every per-service sketch in registration order.
func (s *SketchSink) VIPs() []*VIPSketch { return s.order }

var _ ResultSink = (*SketchSink)(nil)
