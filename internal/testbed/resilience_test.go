package testbed

import (
	"math"
	"math/rand/v2"
	"net/netip"
	"reflect"
	"testing"
	"time"

	"srlb/internal/flowtable"
	"srlb/internal/packet"
	"srlb/internal/selection"
)

func resilienceTopology(events []Event, flows flowtable.Config) Topology {
	return Topology{
		Seed:     59,
		Replicas: 2,
		Flows:    flows,
		VIPs: []VIPSpec{{
			Servers: 3,
			Scheme:  func(s []netip.Addr, r *rand.Rand) selection.Scheme { return selection.NewRandom(s, 2, r) },
		}},
		Events: events,
	}
}

func testFlow(i int) packet.FlowKey {
	return packet.FlowKey{Src: ClientAddr(i), Dst: VIPAddr(0), SrcPort: uint16(40000 + i), DstPort: 80}
}

// Warm recovery from a surviving donor: the recovering replica inherits
// the donor's live table as it stands at the recover instant — bindings
// learned after the crash included.
func TestRecoverReplicaWarmInheritsSurvivorFlows(t *testing.T) {
	tb := Build(resilienceTopology([]Event{
		FailReplica(10*time.Millisecond, 0),
		RecoverReplicaWarm(30*time.Millisecond, 0, 1),
	}, flowtable.Config{}))
	// The survivor learns flows both before the kill and during the
	// downtime; the recovering replica must inherit all of them.
	tb.Sim.At(5*time.Millisecond, func() {
		tb.LBs[1].SeedFlow(testFlow(0), PoolServerAddr(0, 0))
	})
	tb.Sim.At(20*time.Millisecond, func() {
		tb.LBs[1].SeedFlow(testFlow(1), PoolServerAddr(0, 1))
	})
	tb.Sim.Run()
	if got := tb.LBs[0].FlowCount(); got != 2 {
		t.Fatalf("recovered replica holds %d flows, want 2 (the survivor's table)", got)
	}
	if got := tb.LBs[1].FlowCount(); got != 2 {
		t.Fatalf("donor lost flows during the handoff: %d, want 2", got)
	}
}

// Warm recovery from the replica's own pre-fail snapshot (from == r),
// aged by the downtime: bindings that expired while the replica was
// dark stay dead, the rest come back.
func TestRecoverReplicaWarmSelfSnapshotAges(t *testing.T) {
	tb := Build(resilienceTopology([]Event{
		FailReplica(10*time.Millisecond, 0),
		RecoverReplicaWarm(30*time.Millisecond, 0, 0),
	}, flowtable.Config{IdleTTL: 15 * time.Millisecond}))
	tb.Sim.At(2*time.Millisecond, func() {
		// Deadline 17ms — mid-downtime; must not come back at 30ms.
		tb.LBs[0].SeedFlow(testFlow(0), PoolServerAddr(0, 0))
	})
	tb.Sim.At(9*time.Millisecond, func() {
		// Deadline 24ms — expires later, still before the recover.
		tb.LBs[0].SeedFlow(testFlow(1), PoolServerAddr(0, 1))
	})
	tb.Sim.Run()
	if got := tb.LBs[0].FlowCount(); got != 0 {
		t.Fatalf("replica resurrected %d flows that expired during its downtime", got)
	}

	// Same schedule, longer TTL: the pre-fail bindings survive the
	// 20ms downtime and come back.
	tb = Build(resilienceTopology([]Event{
		FailReplica(10*time.Millisecond, 0),
		RecoverReplicaWarm(30*time.Millisecond, 0, 0),
	}, flowtable.Config{IdleTTL: 50 * time.Millisecond}))
	tb.Sim.At(2*time.Millisecond, func() {
		tb.LBs[0].SeedFlow(testFlow(0), PoolServerAddr(0, 0))
		tb.LBs[0].SeedFlow(testFlow(1), PoolServerAddr(0, 1))
	})
	tb.Sim.Run()
	if got := tb.LBs[0].FlowCount(); got != 2 {
		t.Fatalf("replica recovered %d of its own flows, want 2", got)
	}
}

// A warm recover whose donor is itself dark at the recover instant
// falls back to the donor's pre-fail snapshot.
func TestRecoverReplicaWarmDeadDonorUsesPreFailSnapshot(t *testing.T) {
	tb := Build(resilienceTopology([]Event{
		FailReplica(10*time.Millisecond, 1), // donor dies second... first in time
		FailReplica(15*time.Millisecond, 0),
		RecoverReplicaWarm(30*time.Millisecond, 0, 1),
	}, flowtable.Config{}))
	tb.Sim.At(5*time.Millisecond, func() {
		tb.LBs[1].SeedFlow(testFlow(0), PoolServerAddr(0, 0))
	})
	tb.Sim.Run()
	if got := tb.LBs[0].FlowCount(); got != 1 {
		t.Fatalf("recovered replica holds %d flows, want the dead donor's pre-fail 1", got)
	}
}

func TestFailPoolRackDeterministicAndClamped(t *testing.T) {
	events := FailPoolRack("", 12, 0.25, 0.4)
	if len(events) != 3 {
		t.Fatalf("0.25 of 12 servers = %d events, want 3", len(events))
	}
	for i, ev := range events {
		want := Event{Kind: EventServerFail, Server: i, Frac: 0.4, Relative: true}
		if !reflect.DeepEqual(ev, want) {
			t.Fatalf("event %d = %+v, want %+v", i, ev, want)
		}
	}
	// Same inputs, same schedule — victims are slots, not samples.
	if !reflect.DeepEqual(events, FailPoolRack("", 12, 0.25, 0.4)) {
		t.Fatal("FailPoolRack is not deterministic")
	}
	// The clamp never empties the pool, and never goes below one victim.
	if got := len(FailPoolRack("", 4, 1.0, 0.5)); got != 3 {
		t.Fatalf("full-rack loss on 4 servers fails %d, want the clamped 3", got)
	}
	if got := len(FailPoolRack("", 12, 0.0, 0.5)); got != 1 {
		t.Fatalf("zero-fraction rack fails %d servers, want the floor 1", got)
	}
	if name := FailPoolRack("batch", 8, 0.5, 0.2)[0].Pool; name != "batch" {
		t.Fatalf("named-pool rack targets %q", name)
	}
	// The schedule validates and applies: after the rack event fires,
	// the pool is down to the survivors.
	top := resilienceTopology(ResolveEvents(FailPoolRack("", 3, 1.0/3.0, 0.5), 20*time.Millisecond), flowtable.Config{})
	if err := top.Validate(); err != nil {
		t.Fatalf("rack schedule rejected: %v", err)
	}
	tb := Build(top)
	tb.Sim.Run()
	if got := tb.PoolSize(0); got != 2 {
		t.Fatalf("pool has %d servers after the rack loss, want 2", got)
	}
}

func TestRollingUpgradeEventsSequence(t *testing.T) {
	warm := RollingUpgradeEvents(2, 0.3, 0.3, 0.15, true)
	if len(warm) != 4 {
		t.Fatalf("%d events for 2 replicas, want 4", len(warm))
	}
	wantKinds := []EventKind{EventReplicaFail, EventReplicaRecoverWarm, EventReplicaFail, EventReplicaRecoverWarm}
	wantFracs := []float64{0.3, 0.45, 0.6, 0.75}
	for i, ev := range warm {
		if ev.Kind != wantKinds[i] || math.Abs(ev.Frac-wantFracs[i]) > 1e-9 || !ev.Relative {
			t.Fatalf("event %d = %+v, want kind %d at frac %v", i, ev, wantKinds[i], wantFracs[i])
		}
	}
	// Warm recovery names the successor as donor; a lone replica hands
	// its own snapshot forward.
	if warm[1].From != 1 || warm[3].From != 0 {
		t.Fatalf("donors = %d, %d; want the successor ring 1, 0", warm[1].From, warm[3].From)
	}
	if solo := RollingUpgradeEvents(1, 0.3, 0.3, 0.15, true); solo[1].From != 0 {
		t.Fatalf("single-replica warm upgrade donor = %d, want self", solo[1].From)
	}
	// The stateless form uses plain recovers, and late fractions clamp.
	cold := RollingUpgradeEvents(3, 0.8, 0.3, 0.15, false)
	for _, ev := range cold {
		if ev.Kind == EventReplicaRecoverWarm {
			t.Fatal("stateless rolling upgrade emitted a warm recover")
		}
		if ev.Frac > 1 {
			t.Fatalf("unclamped fraction %v", ev.Frac)
		}
	}
	// Both shapes pass static validation on a matching topology.
	for _, events := range [][]Event{warm, cold} {
		top := resilienceTopology(events, flowtable.Config{})
		top.Replicas = 3
		if err := top.Validate(); err != nil {
			t.Fatalf("rolling-upgrade schedule rejected: %v", err)
		}
	}
}

// Validation: a warm recover names a donor that must exist.
func TestWarmRecoverValidation(t *testing.T) {
	top := resilienceTopology([]Event{
		FailReplica(10*time.Millisecond, 0),
		RecoverReplicaWarm(20*time.Millisecond, 0, 5),
	}, flowtable.Config{})
	if err := top.Validate(); err == nil {
		t.Fatal("out-of-range warm-recover donor accepted")
	}
	top = resilienceTopology([]Event{
		RecoverReplicaWarm(20*time.Millisecond, 5, 0),
	}, flowtable.Config{})
	if err := top.Validate(); err == nil {
		t.Fatal("out-of-range warm-recover replica accepted")
	}
}
