package testbed

import (
	"testing"
	"time"

	"srlb/internal/packet"
	"srlb/internal/vrouter"
)

// sharedPoolTopology is two services selecting over one named pool — the
// contention regime: every worker serves both VIPs.
func sharedPoolTopology(seed uint64, servers int, events ...Event) Topology {
	return Topology{
		Seed:  seed,
		Pools: []PoolSpec{{Name: "shared", Servers: servers}},
		VIPs: []VIPSpec{
			{Name: "web", Pool: "shared"},
			{Name: "batch", Pool: "shared"},
		},
		Events: events,
	}
}

// Two VIPs over one pool: the compiled slots are the *same* servers, both
// services complete, and every response is attributable to exactly one
// VIP — the per-server VIPResponses ledger sums to the responses_tx
// total, slot by slot.
func TestSharedPoolTwoVIPsOneLedger(t *testing.T) {
	const n = 400
	tb := Build(sharedPoolTopology(43, 4))
	tb.Gen.RetainResults = true
	if got := len(tb.Servers); got != 4 {
		t.Fatalf("built %d servers, want 4 — the pool was duplicated per VIP", got)
	}
	for i := 0; i < 4; i++ {
		if tb.ServerOf(0, i) != tb.ServerOf(1, i) {
			t.Fatalf("slot %d differs between the two VIPs — pool not shared", i)
		}
	}
	if tb.PoolSize(0) != 4 || tb.PoolSize(1) != 4 || tb.PoolSizeByName("shared") != 4 {
		t.Fatalf("pool sizes disagree: %d/%d/%d", tb.PoolSize(0), tb.PoolSize(1), tb.PoolSizeByName("shared"))
	}
	if tb.PoolNameOf(0) != "shared" || tb.PoolNameOf(1) != "shared" {
		t.Fatalf("pool names = %q/%q, want shared", tb.PoolNameOf(0), tb.PoolNameOf(1))
	}
	for i := 0; i < n; i++ {
		q := Query{ID: uint64(i), Demand: 5 * time.Millisecond}
		if i%2 == 1 {
			q.VIP = tb.VIPAddrOf(1)
		}
		tb.Sim.At(time.Duration(i)*time.Millisecond, func() { tb.Gen.Launch(q) })
	}
	tb.Sim.Run()
	tb.Gen.DrainPending()
	if ok := okCount(tb); ok != n {
		t.Fatalf("only %d/%d completed over the shared pool", ok, n)
	}
	// Attribution: per slot, the per-VIP response counts sum exactly to
	// the router's total — no response double-counted, none unattributed.
	var perVIP [2]uint64
	for i := 0; i < 4; i++ {
		rt := tb.RouterOf(0, i)
		a := rt.VIPResponses(tb.VIPAddrOf(0))
		b := rt.VIPResponses(tb.VIPAddrOf(1))
		if total := rt.Counts.Get("responses_tx"); a+b != total {
			t.Fatalf("slot %d: %d+%d VIP responses != %d total", i, a, b, total)
		}
		perVIP[0] += a
		perVIP[1] += b
	}
	if perVIP[0] != n/2 || perVIP[1] != n/2 {
		t.Fatalf("per-VIP responses = %d/%d, want %d each", perVIP[0], perVIP[1], n/2)
	}
	// The LB demultiplexes the same way: one SYN per query per VIP.
	for v := 0; v < 2; v++ {
		if got := tb.LB.VIPSYNs(tb.VIPAddrOf(v)); got != n/2 {
			t.Fatalf("LB counted %d SYNs for VIP %d, want %d", got, v, n/2)
		}
	}
}

// Pool-targeted lifecycle events drive the shared pool once for every
// service: a drain removes the server from both VIPs' candidate sets, an
// add makes the new server selectable by both.
func TestSharedPoolEvents(t *testing.T) {
	const n = 600
	tb := Build(sharedPoolTopology(47, 3,
		AddPoolServer(100*time.Millisecond, "shared"),
		DrainPoolServer(300*time.Millisecond, "shared", 0),
	))
	tb.Gen.RetainResults = true
	for i := 0; i < n; i++ {
		q := Query{ID: uint64(i), Demand: 10 * time.Millisecond}
		if i%2 == 1 {
			q.VIP = tb.VIPAddrOf(1)
		}
		tb.Sim.At(time.Duration(i)*time.Millisecond, func() { tb.Gen.Launch(q) })
	}
	tb.Sim.Run()
	tb.Gen.DrainPending()
	if ok := okCount(tb); ok != n {
		t.Fatalf("only %d/%d completed across shared-pool churn", ok, n)
	}
	if got := tb.PoolSizeByName("shared"); got != 3 {
		t.Fatalf("final pool size = %d, want 3 (3 + 1 added - 1 drained)", got)
	}
	added := tb.RouterOf(0, 3)
	if added.VIPResponses(tb.VIPAddrOf(0)) == 0 || added.VIPResponses(tb.VIPAddrOf(1)) == 0 {
		t.Fatalf("added server responses per VIP = %d/%d — not selectable by both services",
			added.VIPResponses(tb.VIPAddrOf(0)), added.VIPResponses(tb.VIPAddrOf(1)))
	}
}

// A shared server dispatches each request to the demand model of the VIP
// it arrived for: per-VIP demand functions see only their own flows.
func TestSharedPoolPerVIPDemand(t *testing.T) {
	const n = 200
	var webCalls, batchCalls int
	top := sharedPoolTopology(53, 3)
	top.VIPs[0].Demand = func(int) vrouter.DemandFn {
		return func(flow packet.FlowKey, payload []byte) time.Duration {
			webCalls++
			return DefaultDemand(flow, payload)
		}
	}
	top.VIPs[1].Demand = func(int) vrouter.DemandFn {
		return func(packet.FlowKey, []byte) time.Duration {
			batchCalls++
			return 25 * time.Millisecond // fixed, payload ignored
		}
	}
	tb := Build(top)
	tb.Gen.RetainResults = true
	webAddr, batchAddr := tb.VIPAddrOf(0), tb.VIPAddrOf(1)
	for i := 0; i < n; i++ {
		q := Query{ID: uint64(i), Demand: 2 * time.Millisecond}
		if i%2 == 1 {
			q.VIP = batchAddr
		}
		tb.Sim.At(time.Duration(i)*2*time.Millisecond, func() { tb.Gen.Launch(q) })
	}
	tb.Sim.Run()
	tb.Gen.DrainPending()
	if ok := okCount(tb); ok != n {
		t.Fatalf("only %d/%d completed", ok, n)
	}
	if webCalls != n/2 || batchCalls != n/2 {
		t.Fatalf("demand calls web=%d batch=%d, want %d each — per-VIP dispatch leaked", webCalls, batchCalls, n/2)
	}
	// The batch demand model ignores the encoded 2 ms and charges 25 ms:
	// batch responses must be visibly slower than web's.
	var webRT, batchRT time.Duration
	var webN, batchN int
	for _, res := range tb.Gen.Results() {
		if !res.OK {
			continue
		}
		if res.VIP == webAddr {
			webRT += res.RT
			webN++
		} else {
			batchRT += res.RT
			batchN++
		}
	}
	if webN == 0 || batchN == 0 {
		t.Fatal("one service completed nothing — test vacuous")
	}
	if batchRT/time.Duration(batchN) <= webRT/time.Duration(webN) {
		t.Fatalf("batch mean RT %v not above web %v — per-VIP cost model not applied",
			batchRT/time.Duration(batchN), webRT/time.Duration(webN))
	}
}
