package testbed

import (
	"math/rand/v2"
	"net/netip"
	"testing"
	"time"

	"srlb/internal/selection"
)

// fuzzCursor decodes small bounded integers from fuzz bytes.
type fuzzCursor struct {
	data []byte
	pos  int
}

func (c *fuzzCursor) next(bound int) int {
	if bound <= 0 {
		return 0
	}
	if c.pos >= len(c.data) {
		return 0
	}
	b := c.data[c.pos]
	c.pos++
	return int(b) % bound
}

// decodeFuzzTopology builds a bounded topology (pools, VIPs, lifecycle
// events) from arbitrary bytes. Every numeric field is taken modulo a
// small bound, so the fuzzer explores the schedule/shape space — pool
// references, event targets, rate-relative fractions, dangling names —
// rather than just integer overflow.
func decodeFuzzTopology(data []byte) Topology {
	c := &fuzzCursor{data: data}
	// random-1 selection keeps every ≥1-server pool schedulable, so the
	// only dynamic panic class Validate documents (a pool shrinking below
	// the scheme's k) cannot fire and "Validate == nil → Build and the
	// event schedule run clean" is a checkable invariant.
	scheme := func(servers []netip.Addr, r *rand.Rand) selection.Scheme {
		return selection.NewRandom(servers, 1, r)
	}
	top := Topology{
		Seed:     uint64(c.next(251)),
		Replicas: c.next(3),
		Clients:  c.next(4),
	}
	npools := c.next(4)
	for p := 0; p < npools; p++ {
		name := GenPoolName(c.next(4)) // collisions on purpose
		top.Pools = append(top.Pools, PoolSpec{Name: name, Servers: c.next(5)})
	}
	nvips := c.next(6) + 1
	for v := 0; v < nvips; v++ {
		spec := VIPSpec{Scheme: scheme}
		switch c.next(3) {
		case 0: // implicit pool
			spec.Servers = c.next(5)
		case 1: // reference a (possibly missing) generated pool
			spec.Pool = GenPoolName(c.next(5))
		case 2: // referencing VIP that illegally sets pool fields
			spec.Pool = GenPoolName(c.next(5))
			spec.Servers = c.next(3)
		}
		top.VIPs = append(top.VIPs, spec)
	}
	nevents := c.next(8)
	for e := 0; e < nevents; e++ {
		ev := Event{
			Kind:    EventKind(c.next(7)),
			VIP:     c.next(nvips + 2),
			Server:  c.next(8),
			Replica: c.next(4),
			From:    c.next(4),
		}
		if c.next(2) == 1 {
			ev.Pool = GenPoolName(c.next(5))
		}
		switch c.next(3) {
		case 0:
			ev.At = time.Duration(c.next(1000)) * time.Millisecond
		case 1:
			ev = ev.AtFraction(float64(c.next(11)) / 10)
		case 2: // malformed mixes: both time bases, out-of-range fractions
			ev.At = time.Duration(c.next(100)) * time.Millisecond
			ev.Frac = float64(c.next(30))/10 - 1
			ev.Relative = c.next(2) == 1
		}
		top.Events = append(top.Events, ev)
	}
	return top
}

// FuzzTopologyValidate pins the compiler contract: whatever shape the
// bytes decode to, Validate never panics, and a topology Validate
// accepts must Build and run its whole event schedule without
// panicking. Rejected topologies must keep rejecting after the
// defaulting pass (Validate is documented as defaults-stable).
func FuzzTopologyValidate(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{2, 1, 3, 0, 2, 3, 1, 0, 4, 2, 1, 1, 0, 50, 1, 2, 5})
	f.Add([]byte{0, 2, 8, 3, 1, 3, 2, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13})
	f.Fuzz(func(t *testing.T, data []byte) {
		top := decodeFuzzTopology(data)
		err := top.Validate()
		if err != nil {
			return
		}
		// Accepted: the compile and the full event schedule (fired by the
		// simulator with no traffic) must run clean. Rate-relative
		// schedules are resolved first — Build rejecting unresolved
		// fractions is part of the contract, not a fuzz finding — and
		// ResolveEvents on a Validate-accepted schedule must itself not
		// panic.
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("Validate accepted a topology whose Build/schedule panics: %v\n%+v", r, top)
			}
		}()
		top.Events = ResolveEvents(top.Events, time.Second)
		tb := Build(top)
		tb.Sim.Run()
	})
}
