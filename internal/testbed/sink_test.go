package testbed

import (
	"testing"
	"time"

	"srlb/internal/rng"
)

// runSink replays the same workload as run() but through a SketchSink,
// with per-query retention left off (the default).
func runSink(t testing.TB, cfg Config, n int, ratePerSec float64, meanDemand time.Duration) (*Testbed, *SketchSink) {
	t.Helper()
	tb := New(cfg)
	sink := NewSketchSink()
	tb.Gen.Sink = sink
	r := rng.Split(cfg.Seed, 99)
	p := rng.NewPoisson(r, ratePerSec, 0)
	for i := 0; i < n; i++ {
		at := p.Next()
		q := Query{ID: uint64(i), Demand: rng.Exp(r, meanDemand)}
		tb.Sim.At(at, func() { tb.Gen.Launch(q) })
	}
	tb.Sim.Run()
	tb.Gen.DrainPending()
	return tb, sink
}

// Sink mode must retain nothing per query: the Results slice stays empty
// and the sink's accounting balances exactly.
func TestSinkModeRetainsNoResults(t *testing.T) {
	const n = 3000
	tb, sink := runSink(t, Config{Seed: 1, Servers: 4}, n, 200, 20*time.Millisecond)
	if got := tb.Gen.Results(); len(got) != 0 {
		t.Fatalf("sink mode retained %d results, want 0", len(got))
	}
	total := sink.Total()
	if total.Counters.Offered != n {
		t.Fatalf("offered = %d, want %d", total.Counters.Offered, n)
	}
	sum := total.Counters.OK + total.Counters.Refused + total.Counters.Unfinished
	if sum != total.Counters.Offered {
		t.Fatalf("conservation: OK+Refused+Unfinished = %d, offered = %d", sum, total.Counters.Offered)
	}
	if int(total.Counters.OK) != total.RT.Count() {
		t.Fatalf("OK counter %d != RT count %d", total.Counters.OK, total.RT.Count())
	}
}

// The sink must observe the identical outcome stream the legacy Results
// slice records: same per-outcome counts, same mean, same max.
func TestSinkMatchesRetainedResults(t *testing.T) {
	const n = 2000
	cfg := Config{Seed: 7, Servers: 4}
	retained := run(t, cfg, n, 200, 20*time.Millisecond)
	_, sink := runSink(t, cfg, n, 200, 20*time.Millisecond)

	var ok, refused int
	var sum, max time.Duration
	for _, r := range retained.Gen.Results() {
		switch {
		case r.OK:
			ok++
			sum += r.RT
			if r.RT > max {
				max = r.RT
			}
		case r.Refused:
			refused++
		}
	}
	total := sink.Total()
	if int(total.Counters.OK) != ok || int(total.Counters.Refused) != refused {
		t.Fatalf("sink counts OK=%d refused=%d, retained OK=%d refused=%d",
			total.Counters.OK, total.Counters.Refused, ok, refused)
	}
	if ok > 0 {
		wantMean := sum / time.Duration(ok)
		if got := total.RT.Mean(); got != wantMean {
			t.Fatalf("sink mean %v != exact mean %v", got, wantMean)
		}
		if got := total.RT.Max(); got != max {
			t.Fatalf("sink max %v != exact max %v", got, max)
		}
	}
}

// The sink's memory is fixed by the histogram's value range, not the
// query count: quadrupling the workload must not grow the bucket table
// beyond what the (slightly wider) observed value range accounts for.
func TestSinkMemoryIndependentOfQueryCount(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run memory comparison")
	}
	_, small := runSink(t, Config{Seed: 3, Servers: 4}, 1000, 200, 20*time.Millisecond)
	_, large := runSink(t, Config{Seed: 3, Servers: 4}, 4000, 200, 20*time.Millisecond)
	sb, lb := small.Total().RT.Buckets(), large.Total().RT.Buckets()
	// Bucket count grows logarithmically with the max observed value and
	// is hard-capped by the 64-bit range; 4x the queries must stay within
	// a couple of log-linear segments of the smaller run.
	if lb > sb+1024 {
		t.Fatalf("bucket table grew with query count: %d -> %d", sb, lb)
	}
}

// Per-VIP demultiplexing: every outcome lands on its own VIP's sketch and
// the per-VIP columns sum to the total.
func TestSinkPerVIPDemux(t *testing.T) {
	const n = 400
	tb := Build(Topology{
		Seed: 5,
		VIPs: []VIPSpec{{Servers: 3}, {Servers: 2}},
	})
	sink := NewSketchSink(tb.VIPAddrOf(0), tb.VIPAddrOf(1))
	tb.Gen.Sink = sink
	for i := 0; i < n; i++ {
		q := Query{ID: uint64(i), Demand: 5 * time.Millisecond}
		if i%2 == 1 {
			q.VIP = tb.VIPAddrOf(1)
		}
		tb.Sim.At(time.Duration(i)*time.Millisecond, func() { tb.Gen.Launch(q) })
	}
	tb.Sim.Run()
	tb.Gen.DrainPending()

	vips := sink.VIPs()
	if len(vips) != 2 {
		t.Fatalf("registered VIPs = %d, want 2", len(vips))
	}
	if vips[0].VIP != tb.VIPAddrOf(0) || vips[1].VIP != tb.VIPAddrOf(1) {
		t.Fatal("pre-registration order not preserved")
	}
	var offered, okSum uint64
	for _, v := range vips {
		if v.Counters.Offered != n/2 {
			t.Fatalf("VIP %v offered %d, want %d", v.VIP, v.Counters.Offered, n/2)
		}
		offered += v.Counters.Offered
		okSum += v.Counters.OK
	}
	total := sink.Total()
	if offered != total.Counters.Offered || okSum != total.Counters.OK {
		t.Fatalf("per-VIP columns (offered %d, ok %d) do not sum to total (%d, %d)",
			offered, okSum, total.Counters.Offered, total.Counters.OK)
	}
	// Merging the per-VIP sketches must reproduce the total exactly.
	merged := vips[0].RT.Clone()
	merged.Merge(vips[1].RT)
	if !merged.Equal(total.RT) {
		t.Fatal("merged per-VIP sketches differ from the total sketch")
	}
}
