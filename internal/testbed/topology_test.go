package testbed

import (
	"math/rand/v2"
	"net/netip"
	"strings"
	"testing"
	"time"

	"srlb/internal/rng"
	"srlb/internal/selection"
)

// chashScheme/chashFallback build the §II-B consistent-hash selection —
// what lets stateless LB replicas agree on flow→server without talking.
func chashScheme(t testing.TB) SchemeFn {
	return func(servers []netip.Addr, _ *rand.Rand) selection.Scheme {
		s, err := selection.NewConsistentHash(servers, 4099)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
}

func chashFallback(t testing.TB) FallbackFn {
	return func(servers []netip.Addr) selection.Scheme {
		s, err := selection.NewConsistentHash(servers, 4099)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
}

// launchEvery schedules n fixed-demand queries at a fixed spacing and
// runs the simulation to completion.
func launchEvery(tb *Testbed, n int, spacing, demand time.Duration) {
	for i := 0; i < n; i++ {
		q := Query{ID: uint64(i), Demand: demand}
		tb.Sim.At(time.Duration(i)*spacing, func() { tb.Gen.Launch(q) })
	}
	tb.Sim.Run()
	tb.Gen.DrainPending()
}

func okCount(tb *Testbed) int {
	ok := 0
	for _, r := range tb.Gen.Results() {
		if r.OK {
			ok++
		}
	}
	return ok
}

// Promoted from the hand-wired core/multilb test: two LB replicas behind
// anycast ECMP, no shared state. Client→VIP and server→LB directions
// hash independently, so replicas must steer flows whose SYN-ACK they
// never saw — via the consistent-hash fallback.
func TestTopologyTwoReplicasAnycastECMP(t *testing.T) {
	const n = 400
	tb := Build(Topology{
		Seed:     9,
		Replicas: 2,
		VIPs: []VIPSpec{{
			Servers:  6,
			Scheme:   chashScheme(t),
			Fallback: chashFallback(t),
		}},
	})
	tb.Gen.RetainResults = true
	launchEvery(tb, n, 2*time.Millisecond, 5*time.Millisecond)

	if ok := okCount(tb); ok != n {
		t.Fatalf("only %d/%d queries completed across replicas", ok, n)
	}
	a := tb.LBs[0].Counts.Get("syn_rx")
	b := tb.LBs[1].Counts.Get("syn_rx")
	if a+b != n {
		t.Fatalf("replicas saw %d+%d SYNs, want %d", a, b, n)
	}
	if a == 0 || b == 0 {
		t.Fatalf("ECMP did not split SYNs: %d/%d", a, b)
	}
	// The directions hash independently, so some flows MUST have been
	// steered by a replica that never learned them — via the fallback.
	fallbacks := tb.LBs[0].Counts.Get("miss_fallback") + tb.LBs[1].Counts.Get("miss_fallback")
	if fallbacks == 0 {
		t.Fatal("no cross-replica steering exercised — ECMP split suspiciously aligned")
	}
	t.Logf("replica SYN split %d/%d, cross-replica fallbacks %d", a, b, fallbacks)
}

// Failover regression: a replica dies mid-flow (declared as a lifecycle
// Event, not hand-wired detach calls); the Maglev miss-fallback keeps
// completions at 100%.
func TestTopologyReplicaFailoverMidFlow(t *testing.T) {
	const n = 100
	tb := Build(Topology{
		Seed:     11,
		Replicas: 2,
		VIPs: []VIPSpec{{
			Servers:  2,
			Scheme:   chashScheme(t),
			Fallback: chashFallback(t),
		}},
		Events: []Event{FailReplica(60*time.Millisecond, 0)},
	})
	tb.Gen.RetainResults = true
	launchEvery(tb, n, time.Millisecond, 50*time.Millisecond)

	if ok := okCount(tb); ok != n {
		t.Fatalf("only %d/%d completed across replica failure", ok, n)
	}
	if tb.LBs[1].Counts.Get("syn_rx") == 0 {
		t.Fatal("survivor saw no traffic — test vacuous")
	}
	// Traffic arriving after the kill must all land on the survivor.
	if down := tb.LBs[0].Counts.Get("syn_rx"); down >= n {
		t.Fatalf("dead replica kept receiving SYNs (%d)", down)
	}
}

// Scale-out/scale-in events: the pool grows by a freshly built server
// and drains another, with every query still served.
func TestTopologyServerChurnEvents(t *testing.T) {
	const n = 600
	tb := Build(Topology{
		Seed: 13,
		VIPs: []VIPSpec{{Servers: 4}},
		Events: []Event{
			AddServer(100*time.Millisecond, 0),
			DrainServer(300*time.Millisecond, 0, 0),
		},
	})
	tb.Gen.RetainResults = true
	launchEvery(tb, n, time.Millisecond, 10*time.Millisecond)

	if ok := okCount(tb); ok != n {
		t.Fatalf("only %d/%d completed across pool churn", ok, n)
	}
	if got := tb.PoolSize(0); got != 4 {
		t.Fatalf("final pool size = %d, want 4 (4 + 1 added - 1 drained)", got)
	}
	if added := tb.ServerOf(0, 4).Stats().Completed; added == 0 {
		t.Fatal("added server never served — scheme not rebuilt?")
	}
	// The drained server kept its established flows but left selection:
	// it must have completed work from before the drain only.
	if tb.ServerOf(0, 0).Stats().Completed == 0 {
		t.Fatal("drained server served nothing at all — drain fired too early?")
	}
}

// Fail-stop server: in-flight work on the dead server is lost (clients
// time out at drain), but the cluster keeps serving and accounting
// balances.
func TestTopologyServerFailStop(t *testing.T) {
	const n = 400
	tb := Build(Topology{
		Seed:   17,
		VIPs:   []VIPSpec{{Servers: 4}},
		Events: []Event{FailServer(100*time.Millisecond, 0, 1)},
	})
	tb.Gen.RetainResults = true
	launchEvery(tb, n, time.Millisecond, 20*time.Millisecond)

	results := tb.Gen.Results()
	if len(results) != n {
		t.Fatalf("accounting: %d results for %d queries", len(results), n)
	}
	ok := okCount(tb)
	if ok == n {
		t.Fatal("no queries lost to the failed server — fail event inert?")
	}
	// The overwhelming majority must still complete: only flows bound to
	// the dead server at its death are lost.
	if ok < n*9/10 {
		t.Fatalf("only %d/%d completed after one server failure", ok, n)
	}
	if tb.RouterOf(0, 1).Down() != true {
		t.Fatal("failed router not marked down")
	}
}

// Multi-VIP: two services with separate pools and schemes on one LB;
// queries address either VIP and are served strictly by its own pool.
func TestTopologyMultiVIP(t *testing.T) {
	const n = 200
	tb := Build(Topology{
		Seed: 19,
		VIPs: []VIPSpec{
			{Servers: 3},
			{Servers: 2},
		},
	})
	tb.Gen.RetainResults = true
	for i := 0; i < n; i++ {
		q := Query{ID: uint64(i), Demand: 5 * time.Millisecond}
		if i%2 == 1 {
			q.VIP = tb.VIPAddrOf(1)
		}
		tb.Sim.At(time.Duration(i)*time.Millisecond, func() { tb.Gen.Launch(q) })
	}
	tb.Sim.Run()
	tb.Gen.DrainPending()

	if ok := okCount(tb); ok != n {
		t.Fatalf("only %d/%d completed across two VIPs", ok, n)
	}
	var vip0, vip1 uint64
	for i := 0; i < 3; i++ {
		vip0 += tb.ServerOf(0, i).Stats().Completed
	}
	for i := 0; i < 2; i++ {
		vip1 += tb.ServerOf(1, i).Stats().Completed
	}
	if vip0 != n/2 || vip1 != n/2 {
		t.Fatalf("per-VIP completions = %d/%d, want %d each", vip0, vip1, n/2)
	}
	// The LB's own per-VIP accounting agrees: one SYN per query, split
	// evenly across the two services.
	for v := 0; v < 2; v++ {
		if got := tb.LB.VIPSYNs(tb.VIPAddrOf(v)); got != n/2 {
			t.Fatalf("LB counted %d SYNs for VIP %d, want %d", got, v, n/2)
		}
	}
	if got := tb.LB.VIPSYNs(netip.MustParseAddr("2001:db8::dead")); got != 0 {
		t.Fatalf("unknown VIP counted %d SYNs, want 0", got)
	}
}

// The legacy Config wrapper must compile to the identical cluster as the
// equivalent hand-written Topology — result for result.
func TestConfigTopologyParity(t *testing.T) {
	runOne := func(tb *Testbed) []Result {
		tb.Gen.RetainResults = true
		r := rng.Split(23, 99)
		p := rng.NewPoisson(r, 150, 0)
		for i := 0; i < 800; i++ {
			at := p.Next()
			q := Query{ID: uint64(i), Demand: rng.Exp(r, 20*time.Millisecond)}
			tb.Sim.At(at, func() { tb.Gen.Launch(q) })
		}
		tb.Sim.Run()
		tb.Gen.DrainPending()
		return tb.Gen.Results()
	}
	legacy := runOne(New(Config{Seed: 23, Servers: 4}))
	declarative := runOne(Build(Topology{Seed: 23, VIPs: []VIPSpec{{Servers: 4}}}))
	if len(legacy) != len(declarative) {
		t.Fatalf("result counts differ: %d vs %d", len(legacy), len(declarative))
	}
	for i := range legacy {
		if legacy[i] != declarative[i] {
			t.Fatalf("result %d differs: %+v vs %+v", i, legacy[i], declarative[i])
		}
	}
}

// Validate must reject every class of malformed schedule with a
// diagnosable error — table-driven over the error paths, including the
// rate-relative ones (Build panics on the same errors; the exported
// Validate returns them).
func TestTopologyValidateErrors(t *testing.T) {
	for name, tc := range map[string]struct {
		top  Topology
		want string
	}{
		"vip out of range": {
			Topology{Events: []Event{AddServer(0, 3)}},
			"VIP 3 out of range",
		},
		"drain unknown server": {
			Topology{VIPs: []VIPSpec{{Servers: 2}}, Events: []Event{DrainServer(0, 0, 5)}},
			"server 5 out of range",
		},
		"fail unknown server": {
			Topology{VIPs: []VIPSpec{{Servers: 2}}, Events: []Event{FailServer(time.Second, 0, 2)}},
			"server 2 out of range",
		},
		"replica out of range": {
			Topology{Replicas: 2, Events: []Event{FailReplica(0, 2)}},
			"replica 2 out of range",
		},
		"recover unknown replica": {
			Topology{Events: []Event{RecoverReplica(0, -1)}},
			"replica -1 out of range",
		},
		"pool drained empty": {
			Topology{VIPs: []VIPSpec{{Servers: 1}}, Events: []Event{DrainServer(0, 0, 0)}},
			"empties VIP 0's pool",
		},
		"unknown event kind": {
			Topology{Events: []Event{{At: time.Second, Kind: EventKind(99)}}},
			"unknown kind",
		},
		"negative fraction": {
			Topology{VIPs: []VIPSpec{{Servers: 2}}, Events: []Event{DrainServer(0, 0, 0).AtFraction(-0.1)}},
			"outside [0, 1]",
		},
		"fraction beyond span": {
			Topology{VIPs: []VIPSpec{{Servers: 2}}, Events: []Event{DrainServer(0, 0, 0).AtFraction(1.5)}},
			"outside [0, 1]",
		},
		"absolute and fraction overlap": {
			Topology{VIPs: []VIPSpec{{Servers: 2}},
				Events: []Event{{At: time.Second, Kind: EventServerDrain, Frac: 0.5, Relative: true}}},
			"both absolute time",
		},
		"mixed absolute and relative schedule": {
			Topology{VIPs: []VIPSpec{{Servers: 3}}, Events: []Event{
				DrainServer(time.Second, 0, 0),
				DrainServer(0, 0, 1).AtFraction(0.5),
			}},
			"mixes",
		},
		"relative drain before its add": {
			// Fraction order is replay order: the drain of slot 2 at 0.2
			// precedes the add at 0.8, so slot 2 does not exist yet.
			Topology{VIPs: []VIPSpec{{Servers: 2}}, Events: []Event{
				AddServer(0, 0).AtFraction(0.8),
				DrainServer(0, 0, 2).AtFraction(0.2),
			}},
			"server 2 out of range",
		},
		"dangling pool reference": {
			Topology{VIPs: []VIPSpec{{Name: "web", Pool: "nosuch"}}},
			`dangling pool reference "nosuch"`,
		},
		"event targets undefined pool": {
			Topology{
				Pools:  []PoolSpec{{Name: "shared", Servers: 2}},
				VIPs:   []VIPSpec{{Pool: "shared"}},
				Events: []Event{DrainPoolServer(0, "phantom", 0)},
			},
			`unknown pool "phantom"`,
		},
		"duplicate pool names": {
			Topology{
				Pools: []PoolSpec{{Name: "shared", Servers: 2}, {Name: "shared", Servers: 3}},
				VIPs:  []VIPSpec{{Pool: "shared"}},
			},
			`duplicate pool name "shared"`,
		},
		"unnamed pool": {
			Topology{Pools: []PoolSpec{{Servers: 2}}, VIPs: []VIPSpec{{Servers: 2}}},
			"pool 0 has no name",
		},
		"shared pool drained empty": {
			// Two VIPs contend on a one-server pool: the single drain
			// starves *both* services at once — rejected up front.
			Topology{
				Pools: []PoolSpec{{Name: "shared", Servers: 1}},
				VIPs:  []VIPSpec{{Pool: "shared"}, {Pool: "shared"}},
				Events: []Event{
					DrainPoolServer(time.Second, "shared", 0),
				},
			},
			`empties pool "shared"`,
		},
		"shared pool server out of range": {
			Topology{
				Pools:  []PoolSpec{{Name: "shared", Servers: 2}},
				VIPs:   []VIPSpec{{Pool: "shared"}},
				Events: []Event{FailPoolServer(0, "shared", 7)},
			},
			`server 7 out of range for pool "shared"`,
		},
		"pool reference plus own pool fields": {
			Topology{
				Pools: []PoolSpec{{Name: "shared", Servers: 2}},
				VIPs:  []VIPSpec{{Pool: "shared", Servers: 4}},
			},
			"sets its own pool fields",
		},
	} {
		t.Run(name, func(t *testing.T) {
			err := tc.top.Validate()
			if err == nil {
				t.Fatalf("Validate accepted malformed topology %+v", tc.top)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
	// Well-formed schedules — absolute, all-relative, and shared-pool —
	// pass.
	for name, top := range map[string]Topology{
		"absolute": {VIPs: []VIPSpec{{Servers: 2}}, Events: []Event{
			AddServer(time.Second, 0),
			DrainServer(2*time.Second, 0, 2),
		}},
		"relative": {VIPs: []VIPSpec{{Servers: 2}}, Events: []Event{
			AddServer(0, 0).AtFraction(0.3),
			DrainServer(0, 0, 2).AtFraction(0.6),
		}},
		"shared pool with pool events": {
			Pools: []PoolSpec{{Name: "shared", Servers: 2}},
			VIPs:  []VIPSpec{{Pool: "shared"}, {Pool: "shared"}},
			Events: []Event{
				AddPoolServer(time.Second, "shared"),
				DrainPoolServer(2*time.Second, "shared", 2),
			},
		},
		"vip-indexed event resolves through the reference": {
			// A legacy-form event (VIP index) on a referencing VIP lands
			// on the shared pool it selects over.
			Pools:  []PoolSpec{{Name: "shared", Servers: 3}},
			VIPs:   []VIPSpec{{Pool: "shared"}, {Pool: "shared"}},
			Events: []Event{DrainServer(time.Second, 1, 2)},
		},
	} {
		if err := top.Validate(); err != nil {
			t.Fatalf("%s: Validate rejected well-formed topology: %v", name, err)
		}
	}
}

// ResolveEvents turns fractions into absolute times against the span and
// leaves absolute events untouched; Build refuses unresolved fractions.
func TestResolveEvents(t *testing.T) {
	span := 200 * time.Second
	resolved := ResolveEvents([]Event{
		DrainServer(0, 0, 1).AtFraction(0.25),
		AddServer(0, 0).AtFraction(0.75),
	}, span)
	if got, want := resolved[0].At, 50*time.Second; got != want {
		t.Fatalf("resolved[0].At = %v, want %v", got, want)
	}
	if got, want := resolved[1].At, 150*time.Second; got != want {
		t.Fatalf("resolved[1].At = %v, want %v", got, want)
	}
	for i, ev := range resolved {
		if ev.Relative || ev.Frac != 0 {
			t.Fatalf("resolved[%d] still marked relative: %+v", i, ev)
		}
	}
	// Absolute events pass through bit for bit, and the input slice is
	// not mutated (topologies are shared values).
	orig := []Event{DrainServer(7*time.Second, 0, 0).AtFraction(0.5)}
	out := ResolveEvents(append([]Event{FailReplica(3*time.Second, 0)}, orig[0]), span)
	if out[0] != FailReplica(3*time.Second, 0) {
		t.Fatalf("absolute event changed: %+v", out[0])
	}
	if !orig[0].Relative {
		t.Fatal("ResolveEvents mutated its input slice")
	}

	// Malformed fractions must fail at resolution — the workload path
	// resolves before Build, so this is where they are last seen.
	for name, bad := range map[string][]Event{
		"negative fraction": {DrainServer(0, 0, 0).AtFraction(-0.1)},
		"fraction above 1":  {DrainServer(0, 0, 0).AtFraction(1.5)},
		"absolute and fraction both set": {
			{At: time.Second, Kind: EventServerDrain, Frac: 0.5, Relative: true},
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: ResolveEvents did not panic", name)
				}
			}()
			ResolveEvents(bad, span)
		}()
	}

	defer func() {
		if recover() == nil {
			t.Fatal("Build accepted unresolved rate-relative events")
		}
	}()
	Build(Topology{VIPs: []VIPSpec{{Servers: 2}},
		Events: []Event{DrainServer(0, 0, 0).AtFraction(0.5)}})
}

// Malformed topologies must fail loudly at Build, not mid-simulation.
func TestTopologyValidation(t *testing.T) {
	for name, top := range map[string]Topology{
		"bad vip index":     {Events: []Event{AddServer(0, 3)}},
		"bad server index":  {VIPs: []VIPSpec{{Servers: 2}}, Events: []Event{DrainServer(0, 0, 5)}},
		"bad replica index": {Replicas: 2, Events: []Event{FailReplica(0, 2)}},
		"pool drained empty": {VIPs: []VIPSpec{{Servers: 1}},
			Events: []Event{DrainServer(0, 0, 0)}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: Build did not panic", name)
				}
			}()
			Build(top)
		}()
	}
	// An add event makes a later index valid: server 2 exists only after
	// the AddServer fires, and validation replays in time order.
	Build(Topology{
		VIPs: []VIPSpec{{Servers: 2}},
		Events: []Event{
			AddServer(time.Second, 0),
			DrainServer(2*time.Second, 0, 2),
		},
	})
}

var benchTB *Testbed

// BenchmarkTestbedNew guards the construction cost of a paper-scale
// cell: Sweep cells are rebuilt per scenario, so at replicated-sweep
// scale (policies × loads × seeds) construction allocation pressure is
// sweep overhead.
func BenchmarkTestbedNew(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		benchTB = New(Config{Seed: uint64(i + 1), Servers: 12})
	}
}
