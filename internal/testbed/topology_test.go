package testbed

import (
	"math/rand/v2"
	"net/netip"
	"testing"
	"time"

	"srlb/internal/rng"
	"srlb/internal/selection"
)

// chashScheme/chashFallback build the §II-B consistent-hash selection —
// what lets stateless LB replicas agree on flow→server without talking.
func chashScheme(t testing.TB) SchemeFn {
	return func(servers []netip.Addr, _ *rand.Rand) selection.Scheme {
		s, err := selection.NewConsistentHash(servers, 4099)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
}

func chashFallback(t testing.TB) FallbackFn {
	return func(servers []netip.Addr) selection.Scheme {
		s, err := selection.NewConsistentHash(servers, 4099)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
}

// launchEvery schedules n fixed-demand queries at a fixed spacing and
// runs the simulation to completion.
func launchEvery(tb *Testbed, n int, spacing, demand time.Duration) {
	for i := 0; i < n; i++ {
		q := Query{ID: uint64(i), Demand: demand}
		tb.Sim.At(time.Duration(i)*spacing, func() { tb.Gen.Launch(q) })
	}
	tb.Sim.Run()
	tb.Gen.DrainPending()
}

func okCount(tb *Testbed) int {
	ok := 0
	for _, r := range tb.Gen.Results() {
		if r.OK {
			ok++
		}
	}
	return ok
}

// Promoted from the hand-wired core/multilb test: two LB replicas behind
// anycast ECMP, no shared state. Client→VIP and server→LB directions
// hash independently, so replicas must steer flows whose SYN-ACK they
// never saw — via the consistent-hash fallback.
func TestTopologyTwoReplicasAnycastECMP(t *testing.T) {
	const n = 400
	tb := Build(Topology{
		Seed:     9,
		Replicas: 2,
		VIPs: []VIPSpec{{
			Servers:  6,
			Scheme:   chashScheme(t),
			Fallback: chashFallback(t),
		}},
	})
	launchEvery(tb, n, 2*time.Millisecond, 5*time.Millisecond)

	if ok := okCount(tb); ok != n {
		t.Fatalf("only %d/%d queries completed across replicas", ok, n)
	}
	a := tb.LBs[0].Counts.Get("syn_rx")
	b := tb.LBs[1].Counts.Get("syn_rx")
	if a+b != n {
		t.Fatalf("replicas saw %d+%d SYNs, want %d", a, b, n)
	}
	if a == 0 || b == 0 {
		t.Fatalf("ECMP did not split SYNs: %d/%d", a, b)
	}
	// The directions hash independently, so some flows MUST have been
	// steered by a replica that never learned them — via the fallback.
	fallbacks := tb.LBs[0].Counts.Get("miss_fallback") + tb.LBs[1].Counts.Get("miss_fallback")
	if fallbacks == 0 {
		t.Fatal("no cross-replica steering exercised — ECMP split suspiciously aligned")
	}
	t.Logf("replica SYN split %d/%d, cross-replica fallbacks %d", a, b, fallbacks)
}

// Failover regression: a replica dies mid-flow (declared as a lifecycle
// Event, not hand-wired detach calls); the Maglev miss-fallback keeps
// completions at 100%.
func TestTopologyReplicaFailoverMidFlow(t *testing.T) {
	const n = 100
	tb := Build(Topology{
		Seed:     11,
		Replicas: 2,
		VIPs: []VIPSpec{{
			Servers:  2,
			Scheme:   chashScheme(t),
			Fallback: chashFallback(t),
		}},
		Events: []Event{FailReplica(60*time.Millisecond, 0)},
	})
	launchEvery(tb, n, time.Millisecond, 50*time.Millisecond)

	if ok := okCount(tb); ok != n {
		t.Fatalf("only %d/%d completed across replica failure", ok, n)
	}
	if tb.LBs[1].Counts.Get("syn_rx") == 0 {
		t.Fatal("survivor saw no traffic — test vacuous")
	}
	// Traffic arriving after the kill must all land on the survivor.
	if down := tb.LBs[0].Counts.Get("syn_rx"); down >= n {
		t.Fatalf("dead replica kept receiving SYNs (%d)", down)
	}
}

// Scale-out/scale-in events: the pool grows by a freshly built server
// and drains another, with every query still served.
func TestTopologyServerChurnEvents(t *testing.T) {
	const n = 600
	tb := Build(Topology{
		Seed: 13,
		VIPs: []VIPSpec{{Servers: 4}},
		Events: []Event{
			AddServer(100*time.Millisecond, 0),
			DrainServer(300*time.Millisecond, 0, 0),
		},
	})
	launchEvery(tb, n, time.Millisecond, 10*time.Millisecond)

	if ok := okCount(tb); ok != n {
		t.Fatalf("only %d/%d completed across pool churn", ok, n)
	}
	if got := tb.PoolSize(0); got != 4 {
		t.Fatalf("final pool size = %d, want 4 (4 + 1 added - 1 drained)", got)
	}
	if added := tb.ServerOf(0, 4).Stats().Completed; added == 0 {
		t.Fatal("added server never served — scheme not rebuilt?")
	}
	// The drained server kept its established flows but left selection:
	// it must have completed work from before the drain only.
	if tb.ServerOf(0, 0).Stats().Completed == 0 {
		t.Fatal("drained server served nothing at all — drain fired too early?")
	}
}

// Fail-stop server: in-flight work on the dead server is lost (clients
// time out at drain), but the cluster keeps serving and accounting
// balances.
func TestTopologyServerFailStop(t *testing.T) {
	const n = 400
	tb := Build(Topology{
		Seed:   17,
		VIPs:   []VIPSpec{{Servers: 4}},
		Events: []Event{FailServer(100*time.Millisecond, 0, 1)},
	})
	launchEvery(tb, n, time.Millisecond, 20*time.Millisecond)

	results := tb.Gen.Results()
	if len(results) != n {
		t.Fatalf("accounting: %d results for %d queries", len(results), n)
	}
	ok := okCount(tb)
	if ok == n {
		t.Fatal("no queries lost to the failed server — fail event inert?")
	}
	// The overwhelming majority must still complete: only flows bound to
	// the dead server at its death are lost.
	if ok < n*9/10 {
		t.Fatalf("only %d/%d completed after one server failure", ok, n)
	}
	if tb.RouterOf(0, 1).Down() != true {
		t.Fatal("failed router not marked down")
	}
}

// Multi-VIP: two services with separate pools and schemes on one LB;
// queries address either VIP and are served strictly by its own pool.
func TestTopologyMultiVIP(t *testing.T) {
	const n = 200
	tb := Build(Topology{
		Seed: 19,
		VIPs: []VIPSpec{
			{Servers: 3},
			{Servers: 2},
		},
	})
	for i := 0; i < n; i++ {
		q := Query{ID: uint64(i), Demand: 5 * time.Millisecond}
		if i%2 == 1 {
			q.VIP = tb.VIPAddrOf(1)
		}
		tb.Sim.At(time.Duration(i)*time.Millisecond, func() { tb.Gen.Launch(q) })
	}
	tb.Sim.Run()
	tb.Gen.DrainPending()

	if ok := okCount(tb); ok != n {
		t.Fatalf("only %d/%d completed across two VIPs", ok, n)
	}
	var vip0, vip1 uint64
	for i := 0; i < 3; i++ {
		vip0 += tb.ServerOf(0, i).Stats().Completed
	}
	for i := 0; i < 2; i++ {
		vip1 += tb.ServerOf(1, i).Stats().Completed
	}
	if vip0 != n/2 || vip1 != n/2 {
		t.Fatalf("per-VIP completions = %d/%d, want %d each", vip0, vip1, n/2)
	}
}

// The legacy Config wrapper must compile to the identical cluster as the
// equivalent hand-written Topology — result for result.
func TestConfigTopologyParity(t *testing.T) {
	runOne := func(tb *Testbed) []Result {
		r := rng.Split(23, 99)
		p := rng.NewPoisson(r, 150, 0)
		for i := 0; i < 800; i++ {
			at := p.Next()
			q := Query{ID: uint64(i), Demand: rng.Exp(r, 20*time.Millisecond)}
			tb.Sim.At(at, func() { tb.Gen.Launch(q) })
		}
		tb.Sim.Run()
		tb.Gen.DrainPending()
		return tb.Gen.Results()
	}
	legacy := runOne(New(Config{Seed: 23, Servers: 4}))
	declarative := runOne(Build(Topology{Seed: 23, VIPs: []VIPSpec{{Servers: 4}}}))
	if len(legacy) != len(declarative) {
		t.Fatalf("result counts differ: %d vs %d", len(legacy), len(declarative))
	}
	for i := range legacy {
		if legacy[i] != declarative[i] {
			t.Fatalf("result %d differs: %+v vs %+v", i, legacy[i], declarative[i])
		}
	}
}

// Malformed topologies must fail loudly at Build, not mid-simulation.
func TestTopologyValidation(t *testing.T) {
	for name, top := range map[string]Topology{
		"bad vip index":     {Events: []Event{AddServer(0, 3)}},
		"bad server index":  {VIPs: []VIPSpec{{Servers: 2}}, Events: []Event{DrainServer(0, 0, 5)}},
		"bad replica index": {Replicas: 2, Events: []Event{FailReplica(0, 2)}},
		"pool drained empty": {VIPs: []VIPSpec{{Servers: 1}},
			Events: []Event{DrainServer(0, 0, 0)}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: Build did not panic", name)
				}
			}()
			Build(top)
		}()
	}
	// An add event makes a later index valid: server 2 exists only after
	// the AddServer fires, and validation replays in time order.
	Build(Topology{
		VIPs: []VIPSpec{{Servers: 2}},
		Events: []Event{
			AddServer(time.Second, 0),
			DrainServer(2*time.Second, 0, 2),
		},
	})
}

var benchTB *Testbed

// BenchmarkTestbedNew guards the construction cost of a paper-scale
// cell: Sweep cells are rebuilt per scenario, so at replicated-sweep
// scale (policies × loads × seeds) construction allocation pressure is
// sweep overhead.
func BenchmarkTestbedNew(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		benchTB = New(Config{Seed: uint64(i + 1), Servers: 12})
	}
}
