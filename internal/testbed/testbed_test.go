package testbed

import (
	"fmt"
	"math"
	"net/netip"
	"testing"
	"time"

	"srlb/internal/agent"
	"srlb/internal/appserver"
	"srlb/internal/rng"
	"srlb/internal/selection"

	"math/rand/v2"
)

// run launches n queries of the given demand at the given rate against a
// testbed and returns it with all results collected.
func run(t testing.TB, cfg Config, n int, ratePerSec float64, meanDemand time.Duration) *Testbed {
	t.Helper()
	tb := New(cfg)
	tb.Gen.RetainResults = true
	r := rng.Split(cfg.Seed, 99)
	p := rng.NewPoisson(r, ratePerSec, 0)
	for i := 0; i < n; i++ {
		at := p.Next()
		q := Query{ID: uint64(i), Demand: rng.Exp(r, meanDemand)}
		tb.Sim.At(at, func() { tb.Gen.Launch(q) })
	}
	tb.Sim.Run()
	tb.Gen.DrainPending()
	return tb
}

func TestEveryQueryServedExactlyOnce(t *testing.T) {
	const n = 2000
	tb := run(t, Config{Seed: 1, Servers: 4}, n, 200, 20*time.Millisecond)
	results := tb.Gen.Results()
	if len(results) != n {
		t.Fatalf("results = %d, want %d", len(results), n)
	}
	seen := make(map[uint64]bool, n)
	okCount := 0
	for _, r := range results {
		if seen[r.ID] {
			t.Fatalf("query %d finished twice", r.ID)
		}
		seen[r.ID] = true
		if r.OK {
			okCount++
		}
	}
	if okCount != n {
		t.Fatalf("only %d/%d queries succeeded at light load", okCount, n)
	}
	// Conservation at the servers: sum of completions == n.
	var completed uint64
	for _, s := range tb.Servers {
		completed += s.Stats().Completed
	}
	if completed != n {
		t.Fatalf("servers completed %d, want %d", completed, n)
	}
}

func TestServiceHuntingProtocolCounters(t *testing.T) {
	// With a never-accept policy every SYN is refused by the first
	// candidate and force-accepted by the second.
	cfg := Config{
		Seed:    2,
		Servers: 4,
		Policy:  func(int) agent.Policy { return agent.Never{} },
	}
	const n = 500
	tb := run(t, cfg, n, 100, 10*time.Millisecond)

	var offers, refusals, forced, firstAccepts uint64
	for _, rt := range tb.Routers {
		offers += rt.Counts.Get("hunt_offers")
		refusals += rt.Counts.Get("hunt_refusals")
		forced += rt.Counts.Get("forced_accepts")
		firstAccepts += rt.Counts.Get("hunt_accepts")
	}
	if offers != n || refusals != n || forced != n || firstAccepts != 0 {
		t.Fatalf("offers=%d refusals=%d forced=%d firstAccepts=%d, want %d/%d/%d/0",
			offers, refusals, forced, firstAccepts, n, n, n)
	}
	if got := tb.LB.Counts.Get("hunts_started"); got != n {
		t.Fatalf("hunts_started = %d", got)
	}
	if got := tb.LB.Counts.Get("flows_learned"); got != n {
		t.Fatalf("flows_learned = %d", got)
	}
}

func TestAlwaysPolicyFirstCandidateWins(t *testing.T) {
	cfg := Config{
		Seed:    3,
		Servers: 4,
		Policy:  func(int) agent.Policy { return agent.Always{} },
	}
	const n = 500
	tb := run(t, cfg, n, 100, 10*time.Millisecond)
	var forced, firstAccepts uint64
	for _, rt := range tb.Routers {
		forced += rt.Counts.Get("forced_accepts")
		firstAccepts += rt.Counts.Get("hunt_accepts")
	}
	if firstAccepts != n || forced != 0 {
		t.Fatalf("firstAccepts=%d forced=%d, want %d/0", firstAccepts, forced, n)
	}
}

// TestFlowAffinity: every packet of a flow must reach the server that
// accepted it. The vrouter counts "no_conn" when a steered packet arrives
// for a connection it does not own.
func TestFlowAffinity(t *testing.T) {
	cfg := Config{Seed: 4, Servers: 8,
		Policy: func(int) agent.Policy { return agent.NewStatic(4) }}
	tb := run(t, cfg, 3000, 300, 15*time.Millisecond)
	for i, rt := range tb.Routers {
		if got := rt.Counts.Get("no_conn"); got != 0 {
			t.Fatalf("server %d received %d packets for flows it does not own", i, got)
		}
		if got := rt.Counts.Get("not_local"); got != 0 {
			t.Fatalf("server %d received %d packets for foreign VIPs", i, got)
		}
	}
	// Every request payload must reach its accepting server: responses are
	// held until the request lands, so requests_rx is exact.
	var requests uint64
	for _, rt := range tb.Routers {
		requests += rt.Counts.Get("requests_rx")
	}
	if requests != 3000 {
		t.Fatalf("requests_rx = %d, want 3000", requests)
	}
}

func TestSRcExtremesEquivalentToRandom(t *testing.T) {
	// c=0: second candidate always serves; c=n+1: first always serves.
	// Both must succeed for all queries and spread load over all servers.
	for _, c := range []int{0, 33} {
		c := c
		t.Run(fmt.Sprintf("c=%d", c), func(t *testing.T) {
			cfg := Config{Seed: 5, Servers: 6,
				Policy: func(int) agent.Policy { return agent.NewStatic(c) }}
			tb := run(t, cfg, 1200, 150, 10*time.Millisecond)
			ok := 0
			for _, r := range tb.Gen.Results() {
				if r.OK {
					ok++
				}
			}
			if ok != 1200 {
				t.Fatalf("ok = %d", ok)
			}
			for i, s := range tb.Servers {
				if s.Stats().Completed == 0 {
					t.Fatalf("server %d served nothing", i)
				}
			}
		})
	}
}

func TestOverloadProducesRSTs(t *testing.T) {
	// Tiny cluster, huge offered load, small backlog: some queries must be
	// refused with RST, and the client must observe them as Refused.
	cfg := Config{
		Seed:    6,
		Servers: 2,
		Server:  appserver.Config{Workers: 4, Cores: 1, Backlog: 4, AbortOnOverflow: true},
	}
	tb := run(t, cfg, 2000, 2000, 50*time.Millisecond)
	refused := 0
	for _, r := range tb.Gen.Results() {
		if r.Refused {
			refused++
		}
	}
	if refused == 0 {
		t.Fatal("expected RST-refused queries under overload")
	}
	var rsts uint64
	for _, rt := range tb.Routers {
		rsts += rt.Counts.Get("rst_overflow")
	}
	if rsts == 0 {
		t.Fatal("servers never RSTed")
	}
	if got := int(rsts); got != refused {
		t.Fatalf("server RSTs %d != client refused %d", got, refused)
	}
}

func TestResponseTimesReflectProcessorSharing(t *testing.T) {
	// At very light load every query should take ≈ its demand (plus tiny
	// network overhead).
	cfg := Config{Seed: 7, Servers: 12}
	tb := run(t, cfg, 200, 5, 100*time.Millisecond)
	for _, r := range tb.Gen.Results() {
		if !r.OK {
			t.Fatal("query failed at light load")
		}
	}
	// Mean RT should be close to the mean demand (100ms) — within 15%.
	var sum time.Duration
	for _, r := range tb.Gen.Results() {
		sum += r.RT
	}
	mean := sum / time.Duration(len(tb.Gen.Results()))
	if mean < 85*time.Millisecond || mean > 130*time.Millisecond {
		t.Fatalf("light-load mean RT = %v, want ≈100ms", mean)
	}
}

func TestDeterministicResults(t *testing.T) {
	digest := func() string {
		cfg := Config{Seed: 42, Servers: 6,
			Policy: func(int) agent.Policy { return agent.NewStatic(8) }}
		tb := run(t, cfg, 800, 200, 20*time.Millisecond)
		var sum time.Duration
		var ids uint64
		for _, r := range tb.Gen.Results() {
			sum += r.RT
			ids += r.ID
		}
		return fmt.Sprintf("%d/%d/%d", len(tb.Gen.Results()), sum, ids)
	}
	a, b := digest(), digest()
	if a != b {
		t.Fatalf("same seed diverged: %s vs %s", a, b)
	}
}

func TestPowerOfTwoBeatsRandomUnderLoad(t *testing.T) {
	// The paper's headline claim (fig 2): SRc with a sensible c beats
	// random assignment at high load. ρ≈0.85 of a 4-server cluster:
	// capacity = 4 servers × 2 cores / 0.1s = 80 q/s; run at 68 q/s.
	meanRT := func(policy func(int) agent.Policy, scheme func([]netip.Addr, *rand.Rand) selection.Scheme) time.Duration {
		cfg := Config{Seed: 8, Servers: 4, Policy: policy, Scheme: scheme}
		tb := run(t, cfg, 4000, 68, 100*time.Millisecond)
		var sum time.Duration
		n := 0
		for _, r := range tb.Gen.Results() {
			if r.OK {
				sum += r.RT
				n++
			}
		}
		if n < 3800 {
			t.Fatalf("too many failures: %d ok", n)
		}
		return sum / time.Duration(n)
	}
	rrRT := meanRT(
		func(int) agent.Policy { return agent.Always{} },
		func(s []netip.Addr, r *rand.Rand) selection.Scheme { return selection.NewRandom(s, 1, r) },
	)
	srRT := meanRT(
		func(int) agent.Policy { return agent.NewStatic(4) },
		nil, // default: 2 random candidates
	)
	if srRT >= rrRT {
		t.Fatalf("SR4 (%v) not better than RR (%v) at high load", srRT, rrRT)
	}
	improvement := float64(rrRT) / float64(srRT)
	t.Logf("RR=%v SR4=%v improvement=%.2fx", rrRT, srRT, improvement)
	if improvement < 1.2 {
		t.Fatalf("improvement %.2fx too small to be the power of choices", improvement)
	}
}

func TestPayloadCodec(t *testing.T) {
	q := Query{Demand: 123 * time.Millisecond, URL: "/wiki/index.php?title=X"}
	d, url := DecodePayload(EncodePayload(q))
	if d != q.Demand || url != q.URL {
		t.Fatalf("decode = %v %q", d, url)
	}
	if d, url := DecodePayload(nil); d != 0 || url != "" {
		t.Fatal("short payload should decode to zero")
	}
}

func TestAddressHelpers(t *testing.T) {
	if ServerAddr(0) == ServerAddr(1) {
		t.Fatal("server addresses collide")
	}
	if ClientAddr(0) == ClientAddr(1) {
		t.Fatal("client addresses collide")
	}
	a := ServerAddr(11)
	if !a.IsValid() {
		t.Fatal("invalid server address")
	}
}

func TestSampleLoads(t *testing.T) {
	tb := New(Config{Seed: 9, Servers: 3})
	var samples int
	var lastLen int
	tb.SampleLoads(100*time.Millisecond, time.Second, func(now time.Duration, busy []int) {
		samples++
		lastLen = len(busy)
	})
	tb.Sim.Run()
	if samples != 10 {
		t.Fatalf("samples = %d, want 10", samples)
	}
	if lastLen != 3 {
		t.Fatalf("busy vector len = %d", lastLen)
	}
}

func TestFairnessImprovesWithSR(t *testing.T) {
	// Jain fairness of cumulative per-server service counts: SR4 should
	// spread at least as evenly as single-random at high load.
	counts := func(policy func(int) agent.Policy, k int) []float64 {
		cfg := Config{Seed: 10, Servers: 6,
			Policy: policy,
			Scheme: func(s []netip.Addr, r *rand.Rand) selection.Scheme {
				return selection.NewRandom(s, k, r)
			}}
		tb := run(t, cfg, 3000, 100, 100*time.Millisecond)
		out := make([]float64, len(tb.Servers))
		for i, s := range tb.Servers {
			out[i] = float64(s.Stats().CPUTime)
		}
		return out
	}
	jain := func(xs []float64) float64 {
		var sum, sq float64
		for _, x := range xs {
			sum += x
			sq += x * x
		}
		return sum * sum / (float64(len(xs)) * sq)
	}
	rr := jain(counts(func(int) agent.Policy { return agent.Always{} }, 1))
	sr := jain(counts(func(int) agent.Policy { return agent.NewStatic(4) }, 2))
	t.Logf("fairness rr=%.4f sr=%.4f", rr, sr)
	if sr < rr-0.02 {
		t.Fatalf("SR fairness %.4f worse than RR %.4f", sr, rr)
	}
}

func TestGeneratorPortWrapAvoidsPendingCollision(t *testing.T) {
	tb := New(Config{Seed: 11, Servers: 2, Clients: 1})
	tb.Gen.RetainResults = true
	// Exhaust a chunk of port space quickly with tiny demands.
	r := rng.New(1)
	for i := 0; i < 5000; i++ {
		q := Query{ID: uint64(i), Demand: rng.Exp(r, time.Millisecond)}
		at := time.Duration(i) * 100 * time.Microsecond
		tb.Sim.At(at, func() { tb.Gen.Launch(q) })
	}
	tb.Sim.Run()
	if tb.Gen.Pending() != 0 {
		t.Fatalf("pending = %d at end", tb.Gen.Pending())
	}
	if len(tb.Gen.Results()) != 5000 {
		t.Fatalf("results = %d", len(tb.Gen.Results()))
	}
}

func TestUtilizationBounded(t *testing.T) {
	tb := run(t, Config{Seed: 12, Servers: 3}, 2000, 500, 20*time.Millisecond)
	for i, s := range tb.Servers {
		u := s.Utilization(0)
		if u > 1.0001 {
			t.Fatalf("server %d utilization %v exceeds capacity", i, u)
		}
	}
	_ = math.Pi // keep math import for the tolerance helpers above
}
