package testbed

import (
	"fmt"
	"testing"
	"time"

	"srlb/internal/ipv6"
	"srlb/internal/rng"
)

// Generated topologies are plain declarative Topologies: defaulted
// shape, index-deterministic addresses, round-robin pool assignment.
func TestGenerateTopologyShape(t *testing.T) {
	top := GenerateTopology(GenSpec{Seed: 7, VIPs: 1000})
	if got := len(top.Pools); got != 16 {
		t.Fatalf("1000 VIPs defaulted to %d pools, want 16", got)
	}
	if got := len(top.VIPs); got != 1000 {
		t.Fatalf("generated %d VIPs, want 1000", got)
	}
	for v, spec := range top.VIPs {
		if spec.Addr != VIPAddr(v) {
			t.Fatalf("VIP %d addr = %v, want VIPAddr = %v", v, spec.Addr, VIPAddr(v))
		}
		if want := GenPoolName(v % 16); spec.Pool != want {
			t.Fatalf("VIP %d pool = %q, want %q", v, spec.Pool, want)
		}
	}
	for p, ps := range top.Pools {
		if ps.Name != GenPoolName(p) || ps.Servers != 12 {
			t.Fatalf("pool %d = {%q, %d servers}, want {%q, 12}", p, ps.Name, ps.Servers, GenPoolName(p))
		}
	}
	if err := top.Validate(); err != nil {
		t.Fatalf("generated topology invalid: %v", err)
	}
	// Pool-count defaults: capped at 64, clamped to the VIP count.
	if got := len(GenerateTopology(GenSpec{VIPs: 10000}).Pools); got != 64 {
		t.Fatalf("10000 VIPs defaulted to %d pools, want the 64 cap", got)
	}
	if got := len(GenerateTopology(GenSpec{VIPs: 3}).Pools); got != 1 {
		t.Fatalf("3 VIPs defaulted to %d pools, want 1", got)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("GenSpec without VIPs must panic")
			}
		}()
		GenerateTopology(GenSpec{})
	}()
}

// The arithmetic address derivation must match the historical sprintf
// forms hextet for hextet wherever those forms are representable — the
// generator leans on this to stay byte-compatible with hand-declared
// topologies.
func TestGeneratedAddressArithmetic(t *testing.T) {
	for _, i := range []int{0, 1, 31, 63, 64, 255, 4095, 0xfffe} {
		if got, want := ServerAddr(i), ipv6.MustAddr(fmt.Sprintf("2001:db8:5::%x", i+1)); got != want {
			t.Fatalf("ServerAddr(%d) = %v, want %v", i, got, want)
		}
		if got, want := ClientAddr(i), ipv6.MustAddr(fmt.Sprintf("2001:db8:c::%x", i+1)); got != want {
			t.Fatalf("ClientAddr(%d) = %v, want %v", i, got, want)
		}
		if i == 0 {
			if VIPAddr(0) != VIP {
				t.Fatalf("VIPAddr(0) = %v, want the legacy VIP %v", VIPAddr(0), VIP)
			}
		} else if got, want := VIPAddr(i), ipv6.MustAddr(fmt.Sprintf("2001:db8:f00d::%x", i+1)); got != want {
			t.Fatalf("VIPAddr(%d) = %v, want %v", i, got, want)
		}
	}
	for _, c := range []struct{ a, b int }{{0, 0}, {1, 0}, {2, 11}, {63, 255}, {1000, 5}} {
		if got, want := SharedPoolServerAddr(c.a, c.b), ipv6.MustAddr(fmt.Sprintf("2001:db8:a:%x::%x", c.a+1, c.b+1)); got != want {
			t.Fatalf("SharedPoolServerAddr(%d, %d) = %v, want %v", c.a, c.b, got, want)
		}
		if c.a == 0 {
			continue // PoolServerAddr(0, i) is the legacy ServerAddr space
		}
		if got, want := PoolServerAddr(c.a, c.b), ipv6.MustAddr(fmt.Sprintf("2001:db8:5:%x::%x", c.a, c.b+1)); got != want {
			t.Fatalf("PoolServerAddr(%d, %d) = %v, want %v", c.a, c.b, got, want)
		}
	}
	// Beyond-hextet tails walk the /64 instead of overflowing into
	// neighboring hextets.
	if got, want := VIPAddr(0xffff+40), ipv6.MustAddr("2001:db8:f00d::1:28"); got != want {
		t.Fatalf("VIPAddr past the hextet = %v, want %v", got, want)
	}
}

// generatedParityDigest drives a downsampled (64-VIP) generated
// topology end to end — indexed dispatch, shared pools, shared Maglev
// fallbacks, pool lifecycle churn — and fingerprints every
// client-observed Result. The pinned digest is the generated-topology
// counterpart of TestImplicitPoolCompiledParity: any perturbation of
// the generator's addressing, the VIPList compile, or the dispatch
// streams shows up here.
func generatedParityDigest() uint64 {
	top := GenerateTopology(GenSpec{
		Seed:           211,
		VIPs:           64,
		Pools:          4,
		ServersPerPool: 6,
		Fallback:       testFallback,
		Events: []Event{
			DrainPoolServer(150*time.Millisecond, GenPoolName(0), 1),
			AddPoolServer(300*time.Millisecond, GenPoolName(2)),
			FailPoolServer(450*time.Millisecond, GenPoolName(1), 0),
		},
	})
	tb := Build(top)
	tb.Gen.RetainResults = true
	r := rng.Split(211, 0xd1ce)
	p := rng.NewPoisson(rng.Split(211, 0xa17), 1500, 0)
	for i := 0; i < 1500; i++ {
		at := p.Next()
		q := Query{ID: uint64(i), VIP: tb.VIPAddrOf(i % 64), Demand: rng.Exp(r, 8*time.Millisecond)}
		tb.Sim.At(at, func() { tb.Gen.Launch(q) })
	}
	tb.Sim.Run()
	tb.Gen.DrainPending()
	return resultsDigest(tb.Gen.Results())
}

func TestGeneratedTopologyParity(t *testing.T) {
	const want = uint64(0x54a2d24135704dd9)
	if got := generatedParityDigest(); got != want {
		t.Fatalf("generated topology digest = %#x, want %#x — the generator or indexed dispatch perturbed the streams", got, want)
	}
}

// A 1k-VIP generated topology compiles, shares pool servers across the
// VIPs assigned to each pool, and dispatches for every service.
func TestGenerate1kBuildSmoke(t *testing.T) {
	top := GenerateTopology(GenSpec{Seed: 9, VIPs: 1000})
	tb := Build(top)
	if got := tb.LB.NumVIPs(); got != 1000 {
		t.Fatalf("LB advertises %d VIPs, want 1000", got)
	}
	if got := len(tb.Servers); got != 16*12 {
		t.Fatalf("built %d servers, want %d — pools duplicated per VIP?", got, 16*12)
	}
	// VIPs 16 apart share a pool; adjacent VIPs do not.
	if tb.ServerOf(0, 0) != tb.ServerOf(16, 0) {
		t.Fatal("VIPs 0 and 16 do not share their pool")
	}
	if tb.ServerOf(0, 0) == tb.ServerOf(1, 0) {
		t.Fatal("VIPs 0 and 1 share a pool but are assigned round-robin to different ones")
	}
}

// Pool lifecycle events on a generated topology drive the shared pool
// once for every service riding it, and the per-VIP query accounting
// conserves: Offered == OK + Refused + Unfinished for every one of the
// 192 services after the run drains. Events are declared rate-relative
// (AtFraction) and resolved against the arrival span, the workload
// path's form.
func TestGeneratedPoolEventsConservation(t *testing.T) {
	const (
		vips = 192
		n    = vips * 12
		step = time.Millisecond
	)
	span := time.Duration(n) * step
	events := ResolveEvents([]Event{
		DrainPoolServer(0, GenPoolName(0), 0).AtFraction(0.3),
		FailPoolServer(0, GenPoolName(0), 1).AtFraction(0.5),
	}, span)
	top := GenerateTopology(GenSpec{
		Seed:           31,
		VIPs:           vips,
		Pools:          3,
		ServersPerPool: 6,
		Events:         events,
	})
	tb := Build(top)
	sink := NewSketchSink()
	tb.Gen.Sink = sink
	r := rng.Split(31, 0x5eed)
	for i := 0; i < n; i++ {
		q := Query{ID: uint64(i), VIP: tb.VIPAddrOf(i % vips), Demand: rng.Exp(r, 4*time.Millisecond)}
		tb.Sim.At(time.Duration(i)*step, func() { tb.Gen.Launch(q) })
	}
	tb.Sim.Run()
	tb.Gen.DrainPending()

	if got := tb.PoolSizeByName(GenPoolName(0)); got != 4 {
		t.Fatalf("final genpool-0 size = %d, want 4 (6 - 1 drained - 1 failed)", got)
	}
	total := sink.Total().Counters
	if total.Offered != n {
		t.Fatalf("offered %d queries, want %d", total.Offered, n)
	}
	if total.OK+total.Refused+total.Unfinished != total.Offered {
		t.Fatalf("total conservation broken: %d OK + %d refused + %d unfinished != %d offered",
			total.OK, total.Refused, total.Unfinished, total.Offered)
	}
	perVIP := sink.VIPs()
	if len(perVIP) != vips {
		t.Fatalf("sink saw %d VIPs, want %d", len(perVIP), vips)
	}
	for _, vs := range perVIP {
		c := vs.Counters
		if c.Offered != n/vips {
			t.Fatalf("VIP %v offered %d, want %d", vs.VIP, c.Offered, n/vips)
		}
		if c.OK+c.Refused+c.Unfinished != c.Offered {
			t.Fatalf("VIP %v conservation broken: %d+%d+%d != %d", vs.VIP, c.OK, c.Refused, c.Unfinished, c.Offered)
		}
		if c.OK == 0 {
			t.Fatalf("VIP %v completed nothing — churn starved a whole service", vs.VIP)
		}
	}
}
