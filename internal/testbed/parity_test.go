package testbed

import (
	"encoding/binary"
	"hash/fnv"
	"net/netip"
	"testing"
	"time"

	"srlb/internal/rng"
	"srlb/internal/selection"
)

// testFallback is a deterministic consistent-hash miss-fallback for the
// parity topology (anycast replicas need one to agree on flows they never
// learned).
func testFallback(servers []netip.Addr) selection.Scheme {
	s, err := selection.NewConsistentHash(servers, 4099)
	if err != nil {
		panic(err)
	}
	return s
}

// legacyParityDigest drives a representative implicit-pool topology — two
// VIPs with their own pools, two anycast LB replicas, a full lifecycle
// schedule — and folds every client-observed Result into one FNV-1a
// digest. The workload mixes both VIPs and random demands so that any
// perturbation of the compiler's random streams, address allocation or
// event ordering shows up in the hash.
func legacyParityDigest() uint64 {
	tb := Build(Topology{
		Seed:     101,
		Replicas: 2,
		VIPs: []VIPSpec{
			{Servers: 4, Fallback: testFallback},
			{Servers: 3, Fallback: testFallback},
		},
		Events: []Event{
			AddServer(80*time.Millisecond, 0),
			DrainServer(200*time.Millisecond, 0, 1),
			FailServer(320*time.Millisecond, 1, 0),
			FailReplica(400*time.Millisecond, 1),
			RecoverReplica(520*time.Millisecond, 1),
		},
	})
	tb.Gen.RetainResults = true
	r := rng.Split(101, 0xd1ce)
	p := rng.NewPoisson(rng.Split(101, 0xa17), 900, 0)
	for i := 0; i < 1200; i++ {
		at := p.Next()
		q := Query{ID: uint64(i), Demand: rng.Exp(r, 12*time.Millisecond)}
		if i%3 == 1 {
			q.VIP = tb.VIPAddrOf(1)
		}
		tb.Sim.At(at, func() { tb.Gen.Launch(q) })
	}
	tb.Sim.Run()
	tb.Gen.DrainPending()
	return resultsDigest(tb.Gen.Results())
}

// resultsDigest folds client-observed Results into one FNV-1a digest —
// the parity fingerprint both the legacy and the generated-topology
// pins use.
func resultsDigest(results []Result) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		binary.BigEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	for _, res := range results {
		put(res.ID)
		put(uint64(res.IssuedAt))
		put(uint64(res.RT))
		bits := uint64(0)
		if res.OK {
			bits |= 1
		}
		if res.Refused {
			bits |= 2
		}
		put(bits)
		a := res.VIP.As16()
		h.Write(a[:])
	}
	return h.Sum64()
}

// The digest below was recorded against the pre-pool compiler (every VIP
// an implicit pool, the only form that existed). The pool-aware compiler
// must reproduce it bit for bit: legacy topologies are the compiled-down
// special case, stream for stream — addresses, selection draws, event
// ordering and all.
func TestImplicitPoolCompiledParity(t *testing.T) {
	const want = uint64(0x4c2ba3c497d4c92b)
	if got := legacyParityDigest(); got != want {
		t.Fatalf("legacy topology digest = %#x, want %#x — the pool refactor perturbed the compiled streams", got, want)
	}
}
