// Package testbed composes the paper's experimental platform (§IV): a
// traffic generator and load balancer on one side, and N application
// servers (12 in the paper) on the other, all bridged on one simulated
// link. It is the harness every experiment and example builds on.
//
// The traffic generator measures client-side response times exactly as
// the paper does: from first SYN transmission to receipt of the response
// payload. Connections refused via RST (backlog overflow with
// tcp_abort_on_overflow) are recorded as failures, not response times.
package testbed

import (
	"encoding/binary"
	"fmt"
	"math/rand/v2"
	"net/netip"
	"time"

	"srlb/internal/agent"
	"srlb/internal/appserver"
	"srlb/internal/core"
	"srlb/internal/des"
	"srlb/internal/feedback"
	"srlb/internal/flowtable"
	"srlb/internal/ipv6"
	"srlb/internal/metrics"
	"srlb/internal/netsim"
	"srlb/internal/packet"
	"srlb/internal/selection"
	"srlb/internal/tcpseg"
	"srlb/internal/vrouter"
)

// Well-known testbed addresses.
var (
	// VIP is the virtual service address the LB advertises.
	VIP = ipv6.MustAddr("2001:db8:f00d::1")
	// LBAddr is the load balancer's own address.
	LBAddr = ipv6.MustAddr("2001:db8:1b::1")
)

// Address tables for the common pool/client sizes, precomputed once so
// that testbed construction — which Sweeps repeat per cell — does not
// re-parse address strings. Indices beyond the tables fall back to
// parsing.
var (
	serverAddrs [64]netip.Addr
	clientAddrs [32]netip.Addr
)

func init() {
	for i := range serverAddrs {
		serverAddrs[i] = ipv6.MustAddr(fmt.Sprintf("2001:db8:5::%x", i+1))
	}
	for j := range clientAddrs {
		clientAddrs[j] = ipv6.MustAddr(fmt.Sprintf("2001:db8:c::%x", j+1))
	}
}

// addrWithTail returns base with its low 64 bits set to tail — the
// arithmetic equivalent of formatting "<prefix>::%x" for hextet-sized
// indices, and the only form that stays valid past 0xffff (where the
// single hextet of the string form would overflow). Scale topologies
// (1k–10k VIPs) derive every address this way: no parsing, no
// allocation.
func addrWithTail(base netip.Addr, tail uint64) netip.Addr {
	a := base.As16()
	a[8] = byte(tail >> 56)
	a[9] = byte(tail >> 48)
	a[10] = byte(tail >> 40)
	a[11] = byte(tail >> 32)
	a[12] = byte(tail >> 24)
	a[13] = byte(tail >> 16)
	a[14] = byte(tail >> 8)
	a[15] = byte(tail)
	return netip.AddrFrom16(a)
}

// Address-space bases for the arithmetic derivations.
var (
	serverBase = ipv6.MustAddr("2001:db8:5::")
	clientBase = ipv6.MustAddr("2001:db8:c::")
	vipBase    = ipv6.MustAddr("2001:db8:f00d::")
)

// ServerAddr returns the physical address of server i (0-based).
func ServerAddr(i int) netip.Addr {
	if i >= 0 && i < len(serverAddrs) {
		return serverAddrs[i]
	}
	return addrWithTail(serverBase, uint64(i)+1)
}

// ClientAddr returns the address of client source j (0-based).
func ClientAddr(j int) netip.Addr {
	if j >= 0 && j < len(clientAddrs) {
		return clientAddrs[j]
	}
	return addrWithTail(clientBase, uint64(j)+1)
}

// Query is one HTTP request to be issued by the traffic generator.
type Query struct {
	// ID is a caller-chosen identifier, echoed in the Result.
	ID uint64
	// VIP, when valid, addresses the query to that service; the zero
	// value targets the topology's first VIP (the legacy behavior).
	VIP netip.Addr
	// Demand is the request's CPU cost. When the per-server DemandFn is
	// the default, this value is carried in the request bytes and used
	// verbatim — so a query costs the same no matter which server wins
	// the hunt, enabling paired comparisons across policies.
	Demand time.Duration
	// URL travels in the request payload; workload-specific DemandFns
	// (the Wikipedia model) derive per-server cost from it.
	URL string
	// Class is an opaque workload tag (e.g. static vs wiki page).
	Class uint8
}

// Result reports the fate of a query.
type Result struct {
	ID    uint64
	Class uint8
	// VIP is the service address the query targeted — the per-service
	// demultiplexing key of multi-VIP workloads.
	VIP      netip.Addr
	IssuedAt time.Duration
	// RT is the client-observed response time (SYN → response payload).
	RT time.Duration
	// OK is true when the response arrived; false when the connection
	// was refused (RST) or still pending at simulation end.
	OK bool
	// Refused is true when the failure was an explicit RST.
	Refused bool
}

// EncodePayload packs a query descriptor into request bytes:
// 8-byte big-endian demand (ns) followed by the URL.
func EncodePayload(q Query) []byte { return appendPayload(nil, q) }

// appendPayload is EncodePayload into a reusable buffer.
func appendPayload(dst []byte, q Query) []byte {
	var hdr [8]byte
	binary.BigEndian.PutUint64(hdr[:], uint64(q.Demand))
	dst = append(dst, hdr[:]...)
	return append(dst, q.URL...)
}

// DecodePayload recovers (demand, url) from request bytes.
func DecodePayload(b []byte) (time.Duration, string) {
	if len(b) < 8 {
		return 0, ""
	}
	return time.Duration(binary.BigEndian.Uint64(b)), string(b[8:])
}

// DefaultDemand is the vrouter DemandFn that trusts the encoded demand —
// the Poisson/PHP workload of §V, where cost is intrinsic to the query.
func DefaultDemand(_ packet.FlowKey, payload []byte) time.Duration {
	d, _ := DecodePayload(payload)
	return d
}

// Config assembles a full testbed. Zero fields take the paper's values.
type Config struct {
	Seed    uint64
	Servers int              // default 12
	Server  appserver.Config // default appserver.Default()
	Net     netsim.Config    // default ideal LAN
	Flows   flowtable.Config // default flowtable defaults
	Clients int              // distinct client source addresses (default 8)

	// ServerOverride, when non-nil, returns the configuration of server i
	// — heterogeneous clusters (mixed core counts / worker pools). Falls
	// back to Server when it returns the zero Config.
	ServerOverride func(i int) appserver.Config

	// Policy builds the acceptance policy for server i. Default: Always
	// (every first candidate accepts — with Scheme=random1 this is the
	// paper's RR baseline).
	Policy func(i int) agent.Policy
	// Scheme builds the LB's candidate-selection scheme over the server
	// addresses. Default: 2 uniform-random candidates (the paper's).
	Scheme func(servers []netip.Addr, r *rand.Rand) selection.Scheme
	// Demand builds the per-server demand function. Default: DefaultDemand
	// on every server.
	Demand func(i int) vrouter.DemandFn
}

// Testbed is a fully wired cluster.
type Testbed struct {
	Sim *des.Simulator
	Net *netsim.Network
	// LB is the first (for single-LB topologies, the only) replica; LBs
	// holds all of them.
	LB  *core.LoadBalancer
	LBs []*core.LoadBalancer
	// Routers and Servers list every pool member ever built, across all
	// VIPs, in construction order (servers added by Events append).
	Routers []*vrouter.Router
	Servers []*appserver.Server
	Gen     *Generator
	// Feedback is replica 0's load-report view — each replica owns its
	// own subscription (FeedbackOf reaches the others); nil unless
	// Topology.Feedback.Enabled.
	Feedback *feedback.View

	vips []*vipState
	// pools lists every compiled pool — implicit per-VIP pools in VIP
	// order, then named shared pools in declaration order; poolsByName
	// indexes the named ones.
	pools       []*poolState
	poolsByName map[string]*poolState
	replicas    []*replicaState
}

// Topology lifts the legacy single-LB/single-VIP configuration into the
// declarative form: one VIP at the historical addresses, one replica, no
// lifecycle events. Build(cfg.Topology()) is exactly the cluster New
// always constructed, stream for stream.
func (cfg Config) Topology() Topology {
	return Topology{
		Seed:    cfg.Seed,
		Net:     cfg.Net,
		Flows:   cfg.Flows,
		Clients: cfg.Clients,
		VIPs: []VIPSpec{{
			Servers:        cfg.Servers,
			Server:         cfg.Server,
			ServerOverride: cfg.ServerOverride,
			Policy:         cfg.Policy,
			Scheme:         SchemeFn(cfg.Scheme),
			Demand:         cfg.Demand,
		}},
	}
}

// New builds the cluster: the one-line compatibility wrapper over the
// Topology compiler.
func New(cfg Config) *Testbed { return Build(cfg.Topology()) }

// BusyCounts returns the current busy-worker count of every server — the
// instantaneous load vector of figure 4.
func (tb *Testbed) BusyCounts() []int {
	out := make([]int, len(tb.Servers))
	for i, s := range tb.Servers {
		out[i] = s.BusyWorkers()
	}
	return out
}

// SampleLoads invokes fn(now, busy) every interval until the given end.
func (tb *Testbed) SampleLoads(interval, until time.Duration, fn func(now time.Duration, busy []int)) {
	var tick func()
	tick = func() {
		fn(tb.Sim.Now(), tb.BusyCounts())
		if tb.Sim.Now()+interval <= until {
			tb.Sim.After(interval, tick)
		}
	}
	tb.Sim.After(interval, tick)
}

// Generator is the traffic source: it opens one TCP connection per query
// through the LB and measures client-side response times.
//
// Measurement modes, from cheapest to heaviest (combinable):
//   - Sink: streaming per-VIP sketches in constant memory — the default
//     path for experiment cells (see SketchSink).
//   - OnResult: a per-result callback for custom accounting.
//   - RetainResults: accumulate every Result in a slice for Results() —
//     the opt-in legacy path; memory grows with query count.
type Generator struct {
	sim      *des.Simulator
	net      *netsim.Network
	vip      netip.Addr // default target (the topology's first VIP)
	addrs    []netip.Addr
	nextPort []uint32
	pending  map[packet.FlowKey]*pendingQuery
	freePQ   *pendingQuery // recycled pendingQuery structs
	results  []Result
	// RetainResults opts into accumulating the Results slice; leave it
	// false (the default) for long replays, which consume outcomes via
	// Sink or OnResult instead.
	RetainResults bool
	// Sink, when non-nil, is offered every launched query and every
	// terminal outcome — the constant-memory measurement path.
	Sink ResultSink
	// RetransmitRTO enables client SYN retransmission with exponential
	// backoff (initial timeout RetransmitRTO, doubling, MaxTries
	// attempts). Zero disables it — the paper's default, since
	// tcp_abort_on_overflow is enabled precisely so that "application
	// response delays are measured, and not possible TCP SYN retransmit
	// delays" (§IV-C). Enable it together with AbortOnOverflow=false to
	// reproduce the behavior the paper avoided.
	RetransmitRTO time.Duration
	// MaxTries bounds total SYN transmissions when RetransmitRTO > 0
	// (default 4).
	MaxTries int
	// CloseAck makes the client acknowledge the response with a final
	// ACK+FIN. Off by default: the legacy client sends nothing after
	// its request, and the extra frame would shift the shared network
	// rng stream of every pinned experiment. Flowlet-grained policies
	// enable it — the close-ACK arrives a service time after the
	// request, so it is the one steered packet that naturally crosses
	// flowlet-gap boundaries.
	CloseAck bool
	OnResult func(Result)
	Counts   *metrics.Counter
	nextSrc  int
	scratch  packet.Packet // reused for outbound SYN/ACK frames
}

type pendingQuery struct {
	q       Query
	sentAt  time.Duration
	flow    packet.FlowKey
	tries   int
	rto     *des.Timer
	payload []byte        // encoded request bytes, reused across sends
	next    *pendingQuery // free-list link
}

func newGenerator(sim *des.Simulator, net *netsim.Network, clients int, vip netip.Addr) *Generator {
	g := &Generator{
		sim:      sim,
		net:      net,
		vip:      vip,
		addrs:    make([]netip.Addr, clients),
		nextPort: make([]uint32, clients),
		pending:  make(map[packet.FlowKey]*pendingQuery, 256),
		Counts:   metrics.NewCounter(),
	}
	for j := 0; j < clients; j++ {
		g.addrs[j] = ClientAddr(j)
		g.nextPort[j] = 1024
		net.Attach(g, g.addrs[j])
	}
	return g
}

// Launch issues query q now: allocates a fresh flow and sends the SYN.
// The query descriptor rides in the SYN payload (a stand-in for TCP Fast
// Open / early data that keeps the simulated exchange single-round-trip;
// the request is re-sent on the post-handshake ACK for protocol fidelity).
func (g *Generator) Launch(q Query) {
	src := g.nextSrc
	g.nextSrc = (g.nextSrc + 1) % len(g.addrs)
	port := uint16(g.nextPort[src]%64512 + 1024)
	g.nextPort[src]++
	dst := q.VIP
	if !dst.IsValid() {
		dst = g.vip
	}
	flow := packet.FlowKey{Src: g.addrs[src], Dst: dst, SrcPort: port, DstPort: 80}
	if _, dup := g.pending[flow]; dup {
		// Port-space wrap onto a still-pending flow: skip this port.
		port = uint16(g.nextPort[src]%64512 + 1024)
		g.nextPort[src]++
		flow.SrcPort = port
	}
	pq := g.getPQ()
	pq.q, pq.sentAt, pq.flow, pq.tries = q, g.sim.Now(), flow, 1
	pq.payload = appendPayload(pq.payload[:0], q)
	g.pending[flow] = pq
	g.Counts.Inc("queries_launched")
	if g.Sink != nil {
		g.Sink.Offer(dst)
	}
	g.sendSYN(pq)
	g.armRTO(pq, g.RetransmitRTO)
}

// getPQ pops (or allocates) a pendingQuery. Recycling is safe because
// finish and DrainPending cancel the query's RTO timer before returning
// the struct, so no live closure can observe a reused pendingQuery.
func (g *Generator) getPQ() *pendingQuery {
	if pq := g.freePQ; pq != nil {
		g.freePQ = pq.next
		pq.next = nil
		return pq
	}
	return &pendingQuery{}
}

func (g *Generator) putPQ(pq *pendingQuery) {
	pq.q = Query{}
	pq.rto = nil
	pq.next = g.freePQ
	g.freePQ = pq
}

func (g *Generator) sendSYN(pq *pendingQuery) {
	// The scratch packet is safe to reuse: netsim.Send serializes to
	// wire bytes before returning and retains nothing.
	syn := &g.scratch
	*syn = packet.Packet{
		IP: ipv6.Header{Src: pq.flow.Src, Dst: pq.flow.Dst},
		TCP: tcpseg.Segment{
			SrcPort: pq.flow.SrcPort,
			DstPort: pq.flow.DstPort,
			Seq:     0,
			Flags:   tcpseg.FlagSYN,
			Payload: pq.payload,
		},
	}
	g.net.Send(syn)
}

// armRTO schedules a SYN retransmission, doubling the timeout each try —
// the behavior tcp_abort_on_overflow exists to keep out of the paper's
// measurements.
func (g *Generator) armRTO(pq *pendingQuery, rto time.Duration) {
	if g.RetransmitRTO <= 0 {
		return
	}
	maxTries := g.MaxTries
	if maxTries <= 0 {
		maxTries = 4
	}
	pq.rto = g.sim.After(rto, func() {
		if g.pending[pq.flow] != pq {
			return // already finished
		}
		if pq.tries >= maxTries {
			g.Counts.Inc("syn_timeout")
			g.finish(pq, Result{
				ID: pq.q.ID, Class: pq.q.Class, IssuedAt: pq.sentAt,
				RT: g.sim.Now() - pq.sentAt, OK: false,
			})
			return
		}
		pq.tries++
		g.Counts.Inc("syn_retransmits")
		g.sendSYN(pq)
		g.armRTO(pq, 2*rto)
	})
}

// Handle implements netsim.Node: the client side of every connection.
func (g *Generator) Handle(pkt *packet.Packet) {
	flow := packet.FlowKey{
		Src: pkt.IP.Dst, Dst: pkt.IP.Src,
		SrcPort: pkt.TCP.DstPort, DstPort: pkt.TCP.SrcPort,
	}
	pq, ok := g.pending[flow]
	if !ok {
		g.Counts.Inc("stray_rx")
		return
	}
	switch {
	case pkt.TCP.Flags.Has(tcpseg.FlagRST):
		g.Counts.Inc("refused")
		g.finish(pq, Result{
			ID: pq.q.ID, Class: pq.q.Class, IssuedAt: pq.sentAt,
			RT: g.sim.Now() - pq.sentAt, OK: false, Refused: true,
		})
	case pkt.IsSYNACK():
		g.Counts.Inc("synack_rx")
		// Complete the handshake and (re-)send the request bytes. The
		// scratch packet is free here: the inbound pkt is a distinct
		// struct owned by this Handle call.
		ack := &g.scratch
		*ack = packet.Packet{
			IP: ipv6.Header{Src: flow.Src, Dst: flow.Dst},
			TCP: tcpseg.Segment{
				SrcPort: flow.SrcPort, DstPort: flow.DstPort,
				Seq: 1, Ack: pkt.TCP.Seq + 1,
				Flags:   tcpseg.FlagACK | tcpseg.FlagPSH,
				Payload: pq.payload,
			},
		}
		g.net.Send(ack)
	case len(pkt.TCP.Payload) > 0 || pkt.TCP.Flags.Has(tcpseg.FlagFIN):
		// The response.
		g.Counts.Inc("responses_rx")
		if g.CloseAck {
			// Close the connection actively: the ACK+FIN travels the
			// steered path through the LB (marking the flow closing
			// there), and — arriving a full service time after the
			// request — is the packet flowlet policies see at a
			// boundary. The response time was measured above; whatever
			// server the FIN lands on cannot change the outcome.
			fin := &g.scratch
			*fin = packet.Packet{
				IP: ipv6.Header{Src: flow.Src, Dst: flow.Dst},
				TCP: tcpseg.Segment{
					SrcPort: flow.SrcPort, DstPort: flow.DstPort,
					Seq: 2, Ack: pkt.TCP.Seq + 1,
					Flags: tcpseg.FlagACK | tcpseg.FlagFIN,
				},
			}
			g.Counts.Inc("close_acks_tx")
			g.net.Send(fin)
		}
		g.finish(pq, Result{
			ID: pq.q.ID, Class: pq.q.Class, IssuedAt: pq.sentAt,
			RT: g.sim.Now() - pq.sentAt, OK: true,
		})
	default:
		g.Counts.Inc("other_rx")
	}
}

func (g *Generator) finish(pq *pendingQuery, res Result) {
	res.VIP = pq.flow.Dst
	delete(g.pending, pq.flow)
	if pq.rto != nil {
		g.sim.Cancel(pq.rto)
		pq.rto = nil
	}
	g.record(res)
	g.putPQ(pq)
}

// record routes one terminal outcome to every configured consumer.
func (g *Generator) record(res Result) {
	if g.RetainResults {
		g.results = append(g.results, res)
	}
	if g.Sink != nil {
		g.Sink.Record(res)
	}
	if g.OnResult != nil {
		g.OnResult(res)
	}
}

// Pending returns the number of in-flight queries.
func (g *Generator) Pending() int { return len(g.pending) }

// Results returns the finished query results accumulated so far — a
// defensive copy, safe to sort or mutate. Empty unless RetainResults
// was set before the run.
func (g *Generator) Results() []Result {
	return append([]Result(nil), g.results...)
}

// DrainPending marks all still-pending queries as failed (used at
// simulation end so accounting always balances).
func (g *Generator) DrainPending() int {
	n := len(g.pending)
	for _, pq := range g.pending {
		if pq.rto != nil {
			g.sim.Cancel(pq.rto)
			pq.rto = nil
		}
		g.record(Result{ID: pq.q.ID, Class: pq.q.Class, VIP: pq.flow.Dst, IssuedAt: pq.sentAt, OK: false})
		g.putPQ(pq)
	}
	clear(g.pending)
	return n
}

var _ netsim.Node = (*Generator)(nil)
