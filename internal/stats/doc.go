// Package stats is the replication-statistics layer of the SRLB
// evaluation: it turns per-seed point estimates into mean ± confidence
// intervals, so that every figure and benchmark artifact reports a
// statistical statement over repeated runs instead of a single-seed
// number.
//
// # Why this package exists
//
// The paper's headline claims — figure 2's response-time reduction, the
// fairness CDFs — are statements about distributions over repeated
// experiments. A simulation replicated over k seeds yields k independent
// observations of each metric (per-seed mean response time, per-seed
// p99, …); this package summarizes those observations.
//
// # The two core types
//
//   - Dist describes a sample of float64 observations: count, mean,
//     sample standard deviation, standard error, and the half-width of
//     the Student-t 95% confidence interval on the mean. Build one with
//     Describe.
//   - Replicated[T] pairs the raw per-replicate values of any metric
//     type (time.Duration, float64, int, …) with the Dist of their
//     float64 projection. Build one with NewReplicated.
//
// The experiments package aggregates sweep cells into
// Replicated[time.Duration] (response-time metrics, projected to
// seconds) and Replicated[float64]/Replicated[int] (fractions, counts);
// cmd/srlb-bench serializes the resulting Dists into BENCH_sweep.json
// (see docs/RESULTS_SCHEMA.md).
//
// # Confidence intervals
//
// Mean CIs use the Student-t distribution with n−1 degrees of freedom
// (TInv95), the standard small-sample interval: with the usual 3–10
// seeds per cell, the normal approximation would be badly anticonservative
// (z=1.96 vs t=4.30 at n=3). A Dist with n < 2 has CI95 = 0 — a single
// replicate carries no dispersion information; callers should treat a
// zero CI at N == 1 as "unknown", not "exact".
//
// For order statistics of a single sample (percentiles, CDF bands),
// where the t interval does not apply, the package provides seeded
// bootstrap percentile intervals: BootstrapCI for any statistic,
// QuantileCI for a quantile, and QuantileBand for a whole CDF band.
// Bootstrap resampling draws from an explicit seed through the repo's
// central internal/rng streams, so results are deterministic and
// reproducible — the same property the Runner guarantees for
// simulation cells.
//
// # Choosing the number of seeds
//
// The CI half-width shrinks as s/√n·t(n−1): going from 1 seed to 5
// buys an actual interval, going from 5 to 10 shrinks it by ~30%.
// Experience with the SRLB testbed: 5 seeds resolve the RR-vs-SR4 gap
// at high load (the effect is ~2×, far wider than the CI); near-equal
// policies (SR8 vs SR16 at light load) may need 10–20 seeds before the
// intervals separate. See the root package documentation ("Interpreting
// results") for how this threads through Sweep.Seeds.
package stats
