package stats

import (
	"math"
	"math/rand/v2"
	"sort"

	"srlb/internal/rng"
)

// Mean returns the arithmetic mean of xs (0 when empty).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the unbiased sample variance (n−1 denominator;
// 0 when n < 2). The two-pass formula keeps it stable for the
// tightly-clustered replicate sets this package sees.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(n-1)
}

// StdDev returns the sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// StdErr returns the standard error of the mean, s/√n (0 when n < 2).
func StdErr(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	return StdDev(xs) / math.Sqrt(float64(len(xs)))
}

// Percentile returns the p-quantile (0 ≤ p ≤ 1) of xs using linear
// interpolation between closest ranks — the same convention as
// metrics.Recorder.Quantile, so per-seed and across-seed percentiles
// are comparable. Empty input returns 0.
func Percentile(xs []float64, p float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return sortedPercentile(sorted, p)
}

// sortedPercentile is Percentile over an already-sorted slice.
func sortedPercentile(sorted []float64, p float64) float64 {
	n := len(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[n-1]
	}
	pos := p * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo] + frac*(sorted[hi]-sorted[lo])
}

// Median returns the 0.5-quantile.
func Median(xs []float64) float64 { return Percentile(xs, 0.5) }

// tTable95 holds the two-sided 95% Student-t critical values
// t_{0.975,df} for df = 1…30.
var tTable95 = [...]float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// z975 is the standard-normal 97.5% quantile, the df→∞ limit.
const z975 = 1.959964

// TInv95 returns the two-sided 95% Student-t critical value with df
// degrees of freedom: tabulated for df ≤ 30, a first-order
// Cornish-Fisher expansion around the normal quantile above (accurate
// to ~0.002 there), and the normal limit for df ≤ 0 (degenerate input).
func TInv95(df int) float64 {
	switch {
	case df <= 0:
		return z975
	case df <= len(tTable95):
		return tTable95[df-1]
	default:
		return z975 + (z975*z975*z975+z975)/(4*float64(df))
	}
}

// MeanCI95 returns the half-width of the Student-t 95% confidence
// interval on the mean of xs. With fewer than two observations the
// interval width is unknown, not zero, so n < 2 returns +Inf: a
// consumer gating on "interval narrow enough" (the adaptive
// replication controller in internal/experiments) can then never
// mistake a single replicate for a converged cell. Use
// Dist.ReportedCI95 where the value feeds serialized artifacts.
func MeanCI95(xs []float64) float64 {
	if len(xs) < 2 {
		return math.Inf(1)
	}
	return TInv95(len(xs)-1) * StdErr(xs)
}

// Dist summarizes a sample of observations: the point estimate (Mean)
// together with its dispersion across replicates. CI95 is the
// half-width of the Student-t 95% interval on the mean — report
// Mean ± CI95. N < 2 yields zero Std/StdErr but a CI95 of +Inf: with
// one observation the interval is unknown, not exact, and an infinite
// width is the value that makes "is this interval tight enough?"
// checks fail safe. Serialization boundaries map the non-finite
// sentinel back to 0 via ReportedCI95.
type Dist struct {
	N      int
	Mean   float64
	Std    float64
	StdErr float64
	CI95   float64
	Min    float64
	Max    float64
}

// Describe computes the Dist of xs.
func Describe(xs []float64) Dist {
	d := Dist{N: len(xs), Mean: Mean(xs), CI95: MeanCI95(xs)}
	if d.N == 0 {
		return d
	}
	d.Min, d.Max = xs[0], xs[0]
	for _, x := range xs[1:] {
		d.Min = math.Min(d.Min, x)
		d.Max = math.Max(d.Max, x)
	}
	d.Std = StdDev(xs)
	d.StdErr = StdErr(xs)
	d.CI95 = MeanCI95(xs)
	return d
}

// Lo returns the lower edge of the 95% interval, Mean − CI95
// (−Inf when the interval is unknown, i.e. N < 2).
func (d Dist) Lo() float64 { return d.Mean - d.CI95 }

// Hi returns the upper edge of the 95% interval, Mean + CI95
// (+Inf when the interval is unknown, i.e. N < 2).
func (d Dist) Hi() float64 { return d.Mean + d.CI95 }

// ReportedCI95 returns CI95 for serialized reports (JSON, TSV, plot
// error bars): the non-finite "unknown" sentinel of N < 2 maps to 0,
// the artifact convention documented in docs/RESULTS_SCHEMA.md — a
// zero ci95 there reads "unknown", never "exact".
func (d Dist) ReportedCI95() float64 {
	if math.IsInf(d.CI95, 0) || math.IsNaN(d.CI95) {
		return 0
	}
	return d.CI95
}

// Replicated pairs the raw per-replicate values of a metric with the
// Dist of their float64 projection — e.g. Replicated[time.Duration]
// projected to seconds, or Replicated[int] counts. The experiments
// package builds one per (cell, metric) when a Sweep carries more than
// one seed.
type Replicated[T any] struct {
	// Values are the raw per-replicate observations, in replicate order.
	Values []T
	// Dist summarizes the float64 projection of Values.
	Dist Dist
}

// NewReplicated builds a Replicated from per-replicate values and the
// projection used for aggregation.
func NewReplicated[T any](values []T, proj func(T) float64) Replicated[T] {
	xs := make([]float64, len(values))
	for i, v := range values {
		xs[i] = proj(v)
	}
	return Replicated[T]{Values: values, Dist: Describe(xs)}
}

// Interval is a two-sided confidence interval.
type Interval struct {
	Lo, Hi float64
}

// bootstrapStream is the rng stream id of bootstrap resampling — all
// randomness in the repo flows through internal/rng so the repo-wide
// seeding discipline reaches this package too.
const bootstrapStream = 0xb007

// newRand returns the deterministic source bootstrap resampling draws
// from for the given seed.
func newRand(seed uint64) *rand.Rand {
	return rng.Split(seed, bootstrapStream)
}

// BootstrapCI returns the percentile-bootstrap confidence interval at
// the given confidence level (e.g. 0.95) for an arbitrary statistic of
// xs, over `resamples` with-replacement resamples. The resampling
// stream is a pure function of seed, so the interval is deterministic.
// Degenerate inputs (empty xs, resamples < 1, conf outside (0,1))
// yield the statistic's point value as a zero-width interval.
func BootstrapCI(xs []float64, stat func([]float64) float64, resamples int, conf float64, seed uint64) Interval {
	if len(xs) == 0 || resamples < 1 || conf <= 0 || conf >= 1 {
		v := stat(xs)
		return Interval{Lo: v, Hi: v}
	}
	r := newRand(seed)
	n := len(xs)
	buf := make([]float64, n)
	vals := make([]float64, resamples)
	for b := range vals {
		for i := range buf {
			buf[i] = xs[r.IntN(n)]
		}
		vals[b] = stat(buf)
	}
	sort.Float64s(vals)
	alpha := (1 - conf) / 2
	return Interval{
		Lo: sortedPercentile(vals, alpha),
		Hi: sortedPercentile(vals, 1-alpha),
	}
}

// QuantileCI is BootstrapCI for the p-quantile of xs.
func QuantileCI(xs []float64, p float64, resamples int, conf float64, seed uint64) Interval {
	return BootstrapCI(xs, func(s []float64) float64 { return Percentile(s, p) }, resamples, conf, seed)
}

// Band is a confidence band over a quantile curve: for each fraction
// P[i], the point estimate Mid[i] with interval [Lo[i], Hi[i]] — the
// machinery behind CDF bands (plot the quantile curve transposed).
type Band struct {
	P           []float64
	Lo, Mid, Hi []float64
}

// QuantileBand returns the bootstrap confidence band of the quantile
// curve of xs at the given fractions. Like BootstrapCI it is a
// deterministic function of (xs, ps, resamples, conf, seed), and it
// equals per-fraction QuantileCI calls at the same seed — but draws and
// sorts each resample once, reading every fraction off it, instead of
// redoing the resampling len(ps) times.
func QuantileBand(xs []float64, ps []float64, resamples int, conf float64, seed uint64) Band {
	band := Band{
		P:   append([]float64(nil), ps...),
		Lo:  make([]float64, len(ps)),
		Mid: make([]float64, len(ps)),
		Hi:  make([]float64, len(ps)),
	}
	for i, p := range ps {
		band.Mid[i] = Percentile(xs, p)
	}
	if len(xs) == 0 || resamples < 1 || conf <= 0 || conf >= 1 {
		copy(band.Lo, band.Mid)
		copy(band.Hi, band.Mid)
		return band
	}
	r := newRand(seed)
	n := len(xs)
	buf := make([]float64, n)
	vals := make([][]float64, len(ps))
	for fi := range vals {
		vals[fi] = make([]float64, resamples)
	}
	for b := 0; b < resamples; b++ {
		for i := range buf {
			buf[i] = xs[r.IntN(n)]
		}
		sort.Float64s(buf)
		for fi, p := range ps {
			vals[fi][b] = sortedPercentile(buf, p)
		}
	}
	alpha := (1 - conf) / 2
	for fi := range ps {
		sort.Float64s(vals[fi])
		band.Lo[fi] = sortedPercentile(vals[fi], alpha)
		band.Hi[fi] = sortedPercentile(vals[fi], 1-alpha)
	}
	return band
}
