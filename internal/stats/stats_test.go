package stats

import (
	"math"
	"math/rand/v2"
	"testing"
	"time"
)

func approx(t *testing.T, got, want, tol float64, name string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Fatalf("%s = %v, want %v (±%v)", name, got, want, tol)
	}
}

func TestDescribeKnownValues(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	d := Describe(xs)
	if d.N != 5 || d.Min != 1 || d.Max != 5 {
		t.Fatalf("shape: %+v", d)
	}
	approx(t, d.Mean, 3, 1e-12, "mean")
	approx(t, d.Std, math.Sqrt(2.5), 1e-12, "std")
	approx(t, d.StdErr, math.Sqrt(0.5), 1e-12, "stderr")
	// t_{0.975,4} = 2.776 → CI = 2.776 × √0.5 ≈ 1.963
	approx(t, d.CI95, 2.776*math.Sqrt(0.5), 1e-9, "ci95")
	approx(t, d.Lo(), d.Mean-d.CI95, 1e-12, "lo")
	approx(t, d.Hi(), d.Mean+d.CI95, 1e-12, "hi")
}

func TestDescribeDegenerate(t *testing.T) {
	// Below two replicates the interval is unknown — CI95 is +Inf so an
	// adaptive stopper can never read a 1-seed cell as converged, and
	// ReportedCI95 maps the sentinel to 0 at serialization boundaries.
	if d := Describe(nil); d.N != 0 || d.Mean != 0 || !math.IsInf(d.CI95, 1) {
		t.Fatalf("empty: %+v", d)
	}
	d := Describe([]float64{7})
	if d.N != 1 || d.Mean != 7 || d.Std != 0 || !math.IsInf(d.CI95, 1) {
		t.Fatalf("single: %+v", d)
	}
	if got := d.ReportedCI95(); got != 0 {
		t.Fatalf("ReportedCI95 of unknown interval = %g, want 0", got)
	}
	if !math.IsInf(d.Hi(), 1) || !math.IsInf(d.Lo(), -1) {
		t.Fatalf("unknown interval edges: lo=%g hi=%g", d.Lo(), d.Hi())
	}
}

func TestMeanCI95UnknownBelowTwo(t *testing.T) {
	// Regression for the adaptive-replication early-stop bug: the old
	// MeanCI95 returned 0 for n < 2, which a "relative CI below target?"
	// gate reads as instant convergence at one seed.
	if !math.IsInf(MeanCI95(nil), 1) {
		t.Fatal("MeanCI95(nil) must be +Inf (unknown), not 0")
	}
	if !math.IsInf(MeanCI95([]float64{3.5}), 1) {
		t.Fatal("MeanCI95 of one observation must be +Inf (unknown), not 0")
	}
	if ci := MeanCI95([]float64{1, 2}); math.IsInf(ci, 0) || ci <= 0 {
		t.Fatalf("MeanCI95 of two observations = %g, want finite and positive", ci)
	}
	// Finite intervals pass through ReportedCI95 untouched.
	d := Describe([]float64{1, 2, 3})
	if d.ReportedCI95() != d.CI95 {
		t.Fatalf("ReportedCI95 altered a finite interval: %g != %g", d.ReportedCI95(), d.CI95)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{4, 1, 3, 2} // unsorted on purpose
	approx(t, Percentile(xs, 0), 1, 0, "p0")
	approx(t, Percentile(xs, 1), 4, 0, "p100")
	approx(t, Median(xs), 2.5, 1e-12, "median")
	approx(t, Percentile(xs, 0.75), 3.25, 1e-12, "p75")
	// Input must not be mutated (callers hand in live replicate slices).
	if xs[0] != 4 {
		t.Fatal("Percentile mutated its input")
	}
}

func TestTInv95(t *testing.T) {
	approx(t, TInv95(1), 12.706, 1e-9, "df=1")
	approx(t, TInv95(4), 2.776, 1e-9, "df=4")
	approx(t, TInv95(30), 2.042, 1e-9, "df=30")
	// Beyond the table: the expansion must track the known values.
	approx(t, TInv95(40), 2.021, 0.002, "df=40")
	approx(t, TInv95(60), 2.000, 0.002, "df=60")
	approx(t, TInv95(1_000_000), z975, 1e-4, "df→∞")
	if TInv95(0) != z975 {
		t.Fatal("df<=0 must fall back to the normal quantile")
	}
}

// TestCICoverage is the honesty check on the whole CI pipeline: for
// repeated small-n samples from a known normal, the Student-t 95%
// interval must cover the true mean at ≈ the nominal rate.
func TestCICoverage(t *testing.T) {
	const (
		trials = 600
		n      = 8
		mu     = 10.0
		sigma  = 2.0
	)
	r := rand.New(rand.NewPCG(12345, 67890))
	covered := 0
	for range trials {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = mu + sigma*r.NormFloat64()
		}
		d := Describe(xs)
		if d.Lo() <= mu && mu <= d.Hi() {
			covered++
		}
	}
	rate := float64(covered) / trials
	// Nominal 0.95; binomial sd over 600 trials ≈ 0.009. The seed is
	// fixed, so this is a deterministic regression bound, not a flake.
	if rate < 0.92 || rate > 0.98 {
		t.Fatalf("coverage = %.3f, want ≈ 0.95", rate)
	}
}

func TestBootstrapDeterminismAndSanity(t *testing.T) {
	r := rand.New(rand.NewPCG(7, 7))
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = r.ExpFloat64()
	}
	med := Median(xs)
	a := QuantileCI(xs, 0.5, 400, 0.95, 42)
	b := QuantileCI(xs, 0.5, 400, 0.95, 42)
	if a != b {
		t.Fatalf("bootstrap not deterministic under fixed seed: %+v vs %+v", a, b)
	}
	c := QuantileCI(xs, 0.5, 400, 0.95, 43)
	if a == c {
		t.Fatal("different bootstrap seeds should perturb the interval")
	}
	if a.Lo > med || med > a.Hi {
		t.Fatalf("interval [%v, %v] misses the point estimate %v", a.Lo, a.Hi, med)
	}
	if a.Hi <= a.Lo {
		t.Fatalf("degenerate interval: %+v", a)
	}
}

func TestBootstrapDegenerate(t *testing.T) {
	iv := BootstrapCI(nil, Mean, 100, 0.95, 1)
	if iv.Lo != 0 || iv.Hi != 0 {
		t.Fatalf("empty input: %+v", iv)
	}
	iv = BootstrapCI([]float64{3, 3, 3}, Mean, 0, 0.95, 1)
	if iv.Lo != 3 || iv.Hi != 3 {
		t.Fatalf("no resamples: %+v", iv)
	}
}

func TestQuantileBand(t *testing.T) {
	r := rand.New(rand.NewPCG(9, 9))
	xs := make([]float64, 300)
	for i := range xs {
		xs[i] = r.NormFloat64()
	}
	ps := []float64{0.25, 0.5, 0.75}
	band := QuantileBand(xs, ps, 300, 0.95, 5)
	for i := range ps {
		if band.Lo[i] > band.Mid[i] || band.Mid[i] > band.Hi[i] {
			t.Fatalf("band not ordered at p=%v: lo=%v mid=%v hi=%v",
				ps[i], band.Lo[i], band.Mid[i], band.Hi[i])
		}
	}
	if band.Mid[0] >= band.Mid[2] {
		t.Fatal("quantile curve not increasing")
	}
	again := QuantileBand(xs, ps, 300, 0.95, 5)
	for i := range ps {
		if band.Lo[i] != again.Lo[i] || band.Hi[i] != again.Hi[i] {
			t.Fatal("band not deterministic under fixed seed")
		}
	}
	// The single-pass band must equal per-fraction QuantileCI calls at
	// the same seed (same resample stream, read at every fraction).
	for i, p := range ps {
		iv := QuantileCI(xs, p, 300, 0.95, 5)
		if band.Lo[i] != iv.Lo || band.Hi[i] != iv.Hi {
			t.Fatalf("band at p=%v [%v, %v] != QuantileCI [%v, %v]",
				p, band.Lo[i], band.Hi[i], iv.Lo, iv.Hi)
		}
	}
}

func TestReplicated(t *testing.T) {
	vals := []time.Duration{100 * time.Millisecond, 120 * time.Millisecond, 110 * time.Millisecond}
	rep := NewReplicated(vals, func(d time.Duration) float64 { return d.Seconds() })
	if rep.Dist.N != 3 {
		t.Fatalf("n = %d", rep.Dist.N)
	}
	approx(t, rep.Dist.Mean, 0.110, 1e-12, "mean seconds")
	if rep.Dist.CI95 <= 0 {
		t.Fatal("three distinct replicates must yield a positive CI")
	}
	if len(rep.Values) != 3 || rep.Values[1] != 120*time.Millisecond {
		t.Fatal("raw values not preserved")
	}
}
