package sketch

import (
	"encoding/binary"
	"math"
	"testing"
	"time"
)

// FuzzHistogramMerge checks the documented merge law on arbitrary
// sample streams: splitting a stream into two shards, ingesting each
// independently, and merging must be byte-identical to single-stream
// ingestion — same buckets, same exact aggregates, same quantiles —
// and every quantile must honor the precision's relative-error bound
// against the bucket representative invariants (no panic, no NaN, and
// monotone in p).
func FuzzHistogramMerge(f *testing.F) {
	f.Add(uint8(7), []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16})
	f.Add(uint8(1), []byte{})
	f.Add(uint8(16), []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f})
	f.Fuzz(func(t *testing.T, precision uint8, data []byte) {
		// Decode the corpus as a stream of int64 ns samples (negative
		// values exercise the clamp path). Cap the stream so a huge input
		// doesn't turn one fuzz case into a long loop.
		const maxSamples = 4096
		var samples []time.Duration
		for len(data) >= 8 && len(samples) < maxSamples {
			samples = append(samples, time.Duration(binary.LittleEndian.Uint64(data)))
			data = data[8:]
		}

		p := uint(precision % 20) // includes out-of-range values the clamp absorbs
		single := NewPrecision(p)
		a, b := NewPrecision(p), NewPrecision(p)
		for i, s := range samples {
			single.Add(s)
			if i%2 == 0 {
				a.Add(s)
			} else {
				b.Add(s)
			}
		}
		a.Merge(b)
		a.Merge(nil)             // no-ops must not perturb state
		a.Merge(NewPrecision(p)) // empty histogram likewise
		if !a.Equal(single) || !single.Equal(a) {
			t.Fatalf("merged shards differ from single-stream ingestion: count %d/%d sum %d/%d",
				a.Count(), single.Count(), a.Sum(), single.Sum())
		}
		if a.Count() != len(samples) {
			t.Fatalf("count = %d, want %d", a.Count(), len(samples))
		}
		if len(samples) == 0 {
			return
		}
		// Quantiles: defined, monotone, and within the error bound of the
		// observed extremes.
		prev := time.Duration(math.MinInt64)
		relErr := MaxRelativeError(single.Precision())
		for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
			v := a.Quantile(q)
			if v != single.Quantile(q) {
				t.Fatalf("quantile %v differs after merge: %v vs %v", q, v, single.Quantile(q))
			}
			if v < prev {
				t.Fatalf("quantile %v = %v below previous %v — not monotone", q, v, prev)
			}
			prev = v
			lo := float64(a.Min()) * (1 - relErr)
			hi := float64(a.Max()) * (1 + relErr)
			if float64(v) < lo || float64(v) > hi {
				t.Fatalf("quantile %v = %v outside [min, max] error envelope [%.0f, %.0f]", q, v, lo, hi)
			}
		}
	})
}
