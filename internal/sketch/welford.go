package sketch

import "math"

// Welford is a streaming mean/variance accumulator (Welford's online
// algorithm). It holds three words regardless of stream length and
// merges across shards with the Chan et al. parallel update.
type Welford struct {
	n    uint64
	mean float64
	m2   float64
}

// Add feeds one observation.
func (w *Welford) Add(x float64) {
	w.n++
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// Count returns the number of observations.
func (w *Welford) Count() int { return int(w.n) }

// Mean returns the running mean (0 when empty).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the unbiased sample variance (n−1 denominator,
// 0 when n < 2) — the same convention as stats.Variance.
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Std returns the sample standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Variance()) }

// Merge folds other into w (Chan et al. pairwise combination). The
// result equals single-stream ingestion up to floating-point rounding.
func (w *Welford) Merge(other Welford) {
	if other.n == 0 {
		return
	}
	if w.n == 0 {
		*w = other
		return
	}
	n := w.n + other.n
	delta := other.mean - w.mean
	w.mean += delta * float64(other.n) / float64(n)
	w.m2 += other.m2 + delta*delta*float64(w.n)*float64(other.n)/float64(n)
	w.n = n
}

// Counters is the per-VIP outcome counter set: how many queries were
// offered to a VIP and how each one ended. Offered ==
// OK + Refused + Unfinished once a run has drained.
type Counters struct {
	Offered    uint64
	OK         uint64
	Refused    uint64
	Unfinished uint64
}

// Merge adds other's counts into c.
func (c *Counters) Merge(other Counters) {
	c.Offered += other.Offered
	c.OK += other.OK
	c.Refused += other.Refused
	c.Unfinished += other.Unfinished
}
