// Package sketch provides streaming statistics in constant memory: a
// mergeable log-linear quantile histogram (HDR-histogram style), a
// Welford mean/variance accumulator, and per-VIP counter sets.
//
// The package exists so a measurement cell can run 10⁸ queries without
// retaining a per-query sample slice: Histogram memory is bounded by the
// value range alone (≤ (65−k)·2^k buckets, ~114 KiB at the default
// precision), independent of how many samples are added.
//
// # Determinism
//
// Nothing here draws randomness: Histogram state is a pure function of
// the multiset of added values, so ingestion order, merge order, and
// worker count cannot change the result. Two histograms built from the
// same samples — one single-stream, one merged from arbitrary shards —
// are byte-identical (see Equal and the package tests). Welford merge is
// the Chan et al. pairwise update; it is exact in ℝ but, being floating
// point, merge order can perturb the last few ulps (tests bound this).
//
// # Error bound
//
// Histogram buckets are exact integers below 2^(precision+1) ns and
// log-linear above: each power-of-two range [2^e, 2^(e+1)) is split into
// 2^precision equal sub-buckets, and a bucket reports its midpoint.
// The worst-case relative error of any reported quantile value is
// therefore (width/2)/low = 2^−(precision+1); this package documents and
// tests the slightly looser bound 2^−precision. At the default precision
// of 8 that is ≤ 1/256 ≈ 0.4% — far below the across-seed variance of
// any experiment in this repository. Count, Sum, Mean, Min and Max are
// always exact.
package sketch

import (
	"math"
	"math/bits"
	"time"
)

// DefaultPrecision is the sub-bucket resolution used by New: 2^8 = 256
// sub-buckets per power-of-two range, a ≤ 2^−8 relative error bound.
const DefaultPrecision = 8

// MaxRelativeError returns the documented worst-case relative error of
// quantile values reported at the given precision: 2^−precision.
// (The theoretical midpoint bound is 2^−(precision+1); the doubled bound
// leaves slack for rank interpolation between adjacent buckets.)
func MaxRelativeError(precision uint) float64 {
	return math.Ldexp(1, -int(precision))
}

// Histogram is a log-linear streaming histogram over non-negative
// durations. The zero value is not ready to use; call New or
// NewPrecision. All methods are single-goroutine, like the simulator
// that feeds them.
type Histogram struct {
	precision uint
	counts    []uint64
	count     uint64
	sum       int64 // exact ns total; 10⁸ samples × ~1 s each still fits
	min, max  int64
}

// New returns a Histogram at DefaultPrecision.
func New() *Histogram { return NewPrecision(DefaultPrecision) }

// NewPrecision returns a Histogram with 2^precision sub-buckets per
// power-of-two range. Precision is clamped to [1, 16].
func NewPrecision(precision uint) *Histogram {
	if precision < 1 {
		precision = 1
	}
	if precision > 16 {
		precision = 16
	}
	return &Histogram{precision: precision, min: math.MaxInt64}
}

// Precision returns the sub-bucket resolution exponent.
func (h *Histogram) Precision() uint { return h.precision }

// bucketIndex maps a non-negative ns value to its bucket. Values below
// 2^(precision+1) map to themselves (exact); above, each power-of-two
// range [2^e, 2^(e+1)) splits into 2^precision equal sub-buckets.
func (h *Histogram) bucketIndex(v int64) int {
	u := uint64(v)
	k := h.precision
	if u < 1<<k {
		return int(u)
	}
	e := uint(bits.Len64(u)) - 1
	sub := u >> (e - k) // in [2^k, 2^(k+1))
	return int((uint64(e-k+1) << k) + (sub - 1<<k))
}

// bucketValue returns the representative (midpoint) value of bucket i —
// the inverse of bucketIndex up to sub-bucket width.
func (h *Histogram) bucketValue(i int) int64 {
	k := h.precision
	if uint64(i) < 1<<(k+1) {
		return int64(i)
	}
	e := uint(i>>k) + k - 1
	sub := uint64(i&(1<<k-1)) + 1<<k
	low := sub << (e - k)
	width := uint64(1) << (e - k)
	return int64(low + width/2)
}

// Add records one sample. Negative durations clamp to zero (response
// times cannot be negative; the clamp keeps a buggy caller visible in
// the zero bucket rather than panicking mid-simulation).
func (h *Histogram) Add(d time.Duration) {
	v := int64(d)
	if v < 0 {
		v = 0
	}
	i := h.bucketIndex(v)
	if i >= len(h.counts) {
		grown := make([]uint64, i+1)
		copy(grown, h.counts)
		h.counts = grown
	}
	h.counts[i]++
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of samples. It mirrors
// metrics.Recorder.Count, so the two are drop-in interchangeable in the
// experiments layer.
func (h *Histogram) Count() int { return int(h.count) }

// Sum returns the exact sum of all samples.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum) }

// Mean returns the exact sample mean (0 when empty).
func (h *Histogram) Mean() time.Duration {
	if h.count == 0 {
		return 0
	}
	return time.Duration(h.sum / int64(h.count))
}

// Min returns the exact smallest sample (0 when empty).
func (h *Histogram) Min() time.Duration {
	if h.count == 0 {
		return 0
	}
	return time.Duration(h.min)
}

// Max returns the exact largest sample.
func (h *Histogram) Max() time.Duration {
	if h.count == 0 {
		return 0
	}
	return time.Duration(h.max)
}

// valueAtRank returns the representative value of the sample at 0-based
// rank r of the sorted stream, with the exact min and max substituted at
// the extremes (they are tracked exactly, so the tails never widen).
// Mid-rank bucket representatives are clamped to [min, max]: a bucket
// midpoint can sit below the true minimum when every sample lands in
// one bucket, and unclamped that makes Quantile non-monotone near the
// tails.
func (h *Histogram) valueAtRank(r uint64) int64 {
	if r == 0 {
		return h.min
	}
	if r >= h.count-1 {
		return h.max
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum > r {
			v := h.bucketValue(i)
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}

// Quantile returns the p-quantile (0 ≤ p ≤ 1) using the same
// closest-rank interpolation convention as metrics.Recorder.Quantile:
// pos = p·(n−1), linear between adjacent ranks. Values carry the
// package-level relative error bound; empty histograms return 0.
func (h *Histogram) Quantile(p float64) time.Duration {
	if h.count == 0 {
		return 0
	}
	if p <= 0 {
		return time.Duration(h.min)
	}
	if p >= 1 {
		return time.Duration(h.max)
	}
	pos := p * float64(h.count-1)
	lo := uint64(math.Floor(pos))
	hi := uint64(math.Ceil(pos))
	lv := h.valueAtRank(lo)
	if lo == hi {
		return time.Duration(lv)
	}
	hv := h.valueAtRank(hi)
	frac := pos - float64(lo)
	v := int64(float64(lv) + frac*float64(hv-lv))
	// The interpolation rounds through float64, whose 52-bit mantissa
	// cannot represent ns values near the int64 extremes exactly; clamp
	// so the rounded value never escapes the exact [min, max] envelope
	// the tail quantiles report.
	if v < h.min {
		v = h.min
	}
	if v > h.max {
		v = h.max
	}
	return time.Duration(v)
}

// Median returns the 0.5-quantile.
func (h *Histogram) Median() time.Duration { return h.Quantile(0.5) }

// Deciles returns quantiles 0.1 … 0.9, mirroring
// metrics.Recorder.Deciles.
func (h *Histogram) Deciles() [9]time.Duration {
	var out [9]time.Duration
	for i := 1; i <= 9; i++ {
		out[i-1] = h.Quantile(float64(i) / 10)
	}
	return out
}

// CDFPoint is one point of an empirical CDF, shaped like
// metrics.CDFPoint so plotting code treats the two alike.
type CDFPoint struct {
	Value    time.Duration
	Fraction float64
}

// CDF returns (value, cumulative-fraction) pairs at up to maxPoints
// evenly spaced ranks — the same rank sampling as metrics.Recorder.CDF,
// with bucket-representative values.
func (h *Histogram) CDF(maxPoints int) []CDFPoint {
	n := int(h.count)
	if n == 0 {
		return nil
	}
	if maxPoints <= 0 || maxPoints > n {
		maxPoints = n
	}
	out := make([]CDFPoint, 0, maxPoints)
	for i := 0; i < maxPoints; i++ {
		rank := (i + 1) * n / maxPoints // 1..n
		out = append(out, CDFPoint{
			Value:    time.Duration(h.valueAtRank(uint64(rank - 1))),
			Fraction: float64(rank) / float64(n),
		})
	}
	return out
}

// Merge folds other into h. Bucket counts add exactly, so
// merge(a, b) is byte-identical to single-stream ingestion of the
// combined samples, in any order. Precisions must match (panic
// otherwise: merging across resolutions silently loses the error
// bound). A nil or empty other is a no-op.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil || other.count == 0 {
		return
	}
	if other.precision != h.precision {
		panic("sketch: merging histograms of different precision")
	}
	if len(other.counts) > len(h.counts) {
		grown := make([]uint64, len(other.counts))
		copy(grown, h.counts)
		h.counts = grown
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	h.count += other.count
	h.sum += other.sum
	if other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
}

// Equal reports whether two histograms hold identical state — same
// precision, counts, and exact aggregates. Trailing zero buckets are
// ignored, so a merged histogram equals its single-stream twin even if
// their slices grew differently.
func (h *Histogram) Equal(other *Histogram) bool {
	if h.precision != other.precision || h.count != other.count ||
		h.sum != other.sum || h.min != other.min || h.max != other.max {
		return false
	}
	long, short := h.counts, other.counts
	if len(short) > len(long) {
		long, short = short, long
	}
	for i, c := range short {
		if long[i] != c {
			return false
		}
	}
	for _, c := range long[len(short):] {
		if c != 0 {
			return false
		}
	}
	return true
}

// Buckets returns the number of allocated buckets — the memory footprint
// knob, useful in tests asserting constant-memory behavior.
func (h *Histogram) Buckets() int { return len(h.counts) }

// Clone returns an independent deep copy.
func (h *Histogram) Clone() *Histogram {
	c := *h
	c.counts = append([]uint64(nil), h.counts...)
	return &c
}
