package sketch

import (
	"math"
	"math/rand/v2"
	"sort"
	"testing"
	"time"
)

// newRand gives tests a fixed-seed source; the package under test draws
// no randomness of its own.
func newRand(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, 0x5ce7c4))
}

// exactQuantile mirrors metrics.Recorder.Quantile on a raw sample set.
func exactQuantile(sorted []time.Duration, p float64) time.Duration {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[n-1]
	}
	pos := p * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo] + time.Duration(frac*float64(sorted[hi]-sorted[lo]))
}

// distributions is the adversarial test matrix: heavy-tail (Pareto,
// α≈1.2 — the worst case for bucketed sketches), bimodal with widely
// separated modes, and constant streams (every quantile identical).
var distributions = []struct {
	name string
	gen  func(r *rand.Rand) time.Duration
}{
	{"heavy-tail", func(r *rand.Rand) time.Duration {
		// Pareto via inverse CDF: x = xm / U^(1/α).
		u := r.Float64()
		if u < 1e-12 {
			u = 1e-12
		}
		return time.Duration(float64(time.Millisecond) / math.Pow(u, 1/1.2))
	}},
	{"bimodal", func(r *rand.Rand) time.Duration {
		if r.Float64() < 0.5 {
			return time.Duration(float64(2*time.Millisecond) * (0.9 + 0.2*r.Float64()))
		}
		return time.Duration(float64(3*time.Second) * (0.9 + 0.2*r.Float64()))
	}},
	{"constant", func(r *rand.Rand) time.Duration {
		return 137 * time.Millisecond
	}},
	{"uniform-wide", func(r *rand.Rand) time.Duration {
		return time.Duration(r.Int64N(int64(10 * time.Second)))
	}},
}

var testQuantiles = []float64{0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999, 1}

// TestQuantileErrorBound checks every reported quantile against the
// exact sorted-sample value, within the documented relative bound
// MaxRelativeError (2^−precision), on each adversarial distribution.
func TestQuantileErrorBound(t *testing.T) {
	const n = 200_000
	for _, dist := range distributions {
		t.Run(dist.name, func(t *testing.T) {
			r := newRand(0xd15)
			h := New()
			samples := make([]time.Duration, 0, n)
			for i := 0; i < n; i++ {
				v := dist.gen(r)
				h.Add(v)
				samples = append(samples, v)
			}
			sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
			bound := MaxRelativeError(h.Precision())
			for _, p := range testQuantiles {
				exact := exactQuantile(samples, p)
				got := h.Quantile(p)
				var rel float64
				if exact != 0 {
					rel = math.Abs(float64(got-exact)) / float64(exact)
				} else if got != 0 {
					rel = 1
				}
				if rel > bound {
					t.Errorf("p=%v: sketch %v vs exact %v — rel err %.5f > bound %.5f",
						p, got, exact, rel, bound)
				}
			}
			if h.Min() != samples[0] || h.Max() != samples[n-1] {
				t.Errorf("min/max not exact: got [%v, %v], want [%v, %v]",
					h.Min(), h.Max(), samples[0], samples[n-1])
			}
			var sum time.Duration
			for _, s := range samples {
				sum += s
			}
			if h.Sum() != sum || h.Mean() != sum/n {
				t.Errorf("sum/mean not exact: got %v/%v, want %v/%v", h.Sum(), h.Mean(), sum, sum/n)
			}
		})
	}
}

// TestExactBelowThreshold: values under 2^(precision+1) ns land in
// unit-width buckets, so small quantiles are exact, not approximate.
func TestExactBelowThreshold(t *testing.T) {
	h := New()
	limit := int64(1) << (h.Precision() + 1)
	for v := int64(0); v < limit; v++ {
		h.Add(time.Duration(v))
	}
	for _, p := range testQuantiles {
		want := exactQuantile(seq(limit), p)
		if got := h.Quantile(p); got != want {
			t.Errorf("p=%v: got %v, want exact %v", p, got, want)
		}
	}
}

func seq(n int64) []time.Duration {
	out := make([]time.Duration, n)
	for i := range out {
		out[i] = time.Duration(i)
	}
	return out
}

// TestMergeEqualsSingleStream: splitting a stream into shards and
// merging — in any shard order — must be byte-identical to single-stream
// ingestion. This is the property that makes across-seed pooling and
// parallel runners safe.
func TestMergeEqualsSingleStream(t *testing.T) {
	for _, dist := range distributions {
		t.Run(dist.name, func(t *testing.T) {
			const n = 50_000
			r := newRand(0x3e6)
			samples := make([]time.Duration, n)
			single := New()
			for i := range samples {
				samples[i] = dist.gen(r)
				single.Add(samples[i])
			}
			for _, shards := range []int{1, 2, 3, 7, 16} {
				parts := make([]*Histogram, shards)
				for i := range parts {
					parts[i] = New()
				}
				for i, v := range samples {
					parts[i%shards].Add(v)
				}
				// Merge back-to-front so the order differs from shard order.
				merged := New()
				for i := shards - 1; i >= 0; i-- {
					merged.Merge(parts[i])
				}
				if !merged.Equal(single) {
					t.Fatalf("shards=%d: merged state differs from single-stream", shards)
				}
				for _, p := range testQuantiles {
					if merged.Quantile(p) != single.Quantile(p) {
						t.Fatalf("shards=%d p=%v: %v != %v", shards, p, merged.Quantile(p), single.Quantile(p))
					}
				}
			}
		})
	}
}

// TestMergePrecisionMismatchPanics: silently merging across resolutions
// would void the error bound.
func TestMergePrecisionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on precision mismatch")
		}
	}()
	a, b := NewPrecision(8), NewPrecision(6)
	b.Add(time.Millisecond)
	a.Merge(b)
}

// TestDeterminism: the same stream always yields identical state — no
// hidden randomness, no order effects within one stream.
func TestDeterminism(t *testing.T) {
	build := func() *Histogram {
		r := newRand(0xabcd)
		h := New()
		for i := 0; i < 10_000; i++ {
			h.Add(time.Duration(r.Int64N(int64(5 * time.Second))))
		}
		return h
	}
	if !build().Equal(build()) {
		t.Fatal("two identical streams produced different histograms")
	}
}

func TestEmptyHistogram(t *testing.T) {
	h := New()
	if h.Count() != 0 || h.Mean() != 0 || h.Median() != 0 || h.Quantile(0.99) != 0 ||
		h.Min() != 0 || h.Max() != 0 || h.CDF(10) != nil {
		t.Error("empty histogram must report zeros and a nil CDF")
	}
	h.Merge(nil)
	h.Merge(New())
	if h.Count() != 0 {
		t.Error("merging empty histograms must stay empty")
	}
}

func TestNegativeClampsToZero(t *testing.T) {
	h := New()
	h.Add(-time.Second)
	if h.Min() != 0 || h.Max() != 0 || h.Count() != 1 {
		t.Errorf("negative sample must clamp to 0: min=%v max=%v", h.Min(), h.Max())
	}
}

// TestCDFMonotone: the CDF must be non-decreasing in both coordinates
// and end at fraction 1 with the exact max.
func TestCDFMonotone(t *testing.T) {
	r := newRand(0xcdf)
	h := New()
	for i := 0; i < 10_000; i++ {
		h.Add(time.Duration(r.Int64N(int64(time.Second))))
	}
	pts := h.CDF(200)
	if len(pts) != 200 {
		t.Fatalf("want 200 points, got %d", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Value < pts[i-1].Value || pts[i].Fraction < pts[i-1].Fraction {
			t.Fatalf("CDF not monotone at %d: %+v then %+v", i, pts[i-1], pts[i])
		}
	}
	last := pts[len(pts)-1]
	if last.Fraction != 1 || last.Value != h.Max() {
		t.Errorf("CDF must end at (max, 1): got (%v, %v)", last.Value, last.Fraction)
	}
}

// TestBucketRoundTrip: every bucket's representative value maps back to
// the same bucket, and representatives are strictly increasing.
func TestBucketRoundTrip(t *testing.T) {
	h := New()
	prev := int64(-1)
	for i := 0; i < 4096; i++ {
		v := h.bucketValue(i)
		if v <= prev {
			t.Fatalf("bucket %d: representative %d not increasing past %d", i, v, prev)
		}
		prev = v
		if got := h.bucketIndex(v); got != i {
			t.Fatalf("bucket %d: representative %d maps back to bucket %d", i, v, got)
		}
	}
}

// TestConstantMemory: the bucket count is bounded by the value range,
// not the sample count.
func TestConstantMemory(t *testing.T) {
	h := New()
	for i := 0; i < 1_000_000; i++ {
		h.Add(time.Duration(i%997) * time.Millisecond)
	}
	if h.Buckets() > (65-int(h.Precision()))<<h.Precision() {
		t.Errorf("bucket count %d exceeds range bound", h.Buckets())
	}
	before := h.Buckets()
	for i := 0; i < 1_000_000; i++ {
		h.Add(time.Duration(i%997) * time.Millisecond)
	}
	if h.Buckets() != before {
		t.Errorf("bucket count grew with sample count: %d -> %d", before, h.Buckets())
	}
}

// TestWelford checks the streaming moments against the two-pass formulas
// and the merge against single-stream ingestion.
func TestWelford(t *testing.T) {
	r := newRand(0x3714)
	xs := make([]float64, 10_000)
	var w Welford
	for i := range xs {
		xs[i] = math.Exp(r.NormFloat64() * 3) // log-normal, nasty spread
		w.Add(xs[i])
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	mean := sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	variance := ss / float64(len(xs)-1)
	if rel := math.Abs(w.Mean()-mean) / mean; rel > 1e-9 {
		t.Errorf("mean off by %v", rel)
	}
	if rel := math.Abs(w.Variance()-variance) / variance; rel > 1e-9 {
		t.Errorf("variance off by %v", rel)
	}

	var a, b Welford
	for i, x := range xs {
		if i%2 == 0 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(b)
	if a.Count() != w.Count() {
		t.Fatalf("merge count %d != %d", a.Count(), w.Count())
	}
	if rel := math.Abs(a.Mean()-w.Mean()) / w.Mean(); rel > 1e-9 {
		t.Errorf("merged mean off by %v", rel)
	}
	if rel := math.Abs(a.Variance()-w.Variance()) / w.Variance(); rel > 1e-9 {
		t.Errorf("merged variance off by %v", rel)
	}

	var empty, one Welford
	one.Add(5)
	empty.Merge(one)
	if empty.Count() != 1 || empty.Mean() != 5 || empty.Variance() != 0 {
		t.Error("merge into empty must copy the other side")
	}
}

func TestCounters(t *testing.T) {
	a := Counters{Offered: 10, OK: 7, Refused: 2, Unfinished: 1}
	b := Counters{Offered: 5, OK: 5}
	a.Merge(b)
	if a != (Counters{Offered: 15, OK: 12, Refused: 2, Unfinished: 1}) {
		t.Errorf("merge mismatch: %+v", a)
	}
}

func BenchmarkHistogramAdd(b *testing.B) {
	h := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Add(time.Duration(i%1000) * time.Millisecond)
	}
}
