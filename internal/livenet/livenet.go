// Package livenet is a real-time, goroutine-per-node runtime for the SRLB
// data plane: the same byte-accurate IPv6+SRH+TCP packets as the
// simulator, delivered over in-memory channels instead of virtual-time
// events.
//
// It exists to demonstrate (and test) that the protocol elements — the
// hunting load balancer, the per-server agent decision, the SYN-ACK
// learning path — work outside the discrete-event harness, under real
// concurrency. Servers here model an I/O-bound worker pool (each worker
// sleeps its service time); the simulator remains the tool for the
// paper's CPU-contention experiments.
package livenet

import (
	"errors"
	"fmt"
	"net/netip"
	"sync"
	"time"

	"srlb/internal/agent"
	"srlb/internal/flowtable"
	"srlb/internal/ipv6"
	"srlb/internal/packet"
	"srlb/internal/selection"
	"srlb/internal/srv6"
	"srlb/internal/tcpseg"
)

// ErrClosed is returned by Send after Close.
var ErrClosed = errors.New("livenet: network closed")

// Handler processes one delivered packet.
type Handler func(pkt *packet.Packet)

// Network is an in-memory bridged LAN. Packets are serialized to bytes on
// Send and re-parsed before delivery, exactly like the simulated wire.
type Network struct {
	mu     sync.Mutex
	nodes  map[netip.Addr]chan []byte
	closed bool
	wg     sync.WaitGroup
	// Latency is an optional artificial one-way delay.
	Latency time.Duration
}

// NewNetwork creates an empty LAN.
func NewNetwork() *Network {
	return &Network{nodes: make(map[netip.Addr]chan []byte)}
}

// Attach registers handler under the given addresses, each served by one
// delivery goroutine.
func (n *Network) Attach(handler Handler, addrs ...netip.Addr) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		panic(ErrClosed)
	}
	for _, a := range addrs {
		if _, dup := n.nodes[a]; dup {
			panic(fmt.Sprintf("livenet: address %v attached twice", a))
		}
		ch := make(chan []byte, 1024)
		n.nodes[a] = ch
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			for wire := range ch {
				pkt, err := packet.Parse(wire, false)
				if err != nil {
					continue
				}
				handler(pkt)
			}
		}()
	}
}

// Send serializes and delivers pkt to its IPv6 destination. Unroutable
// packets are dropped silently (LAN semantics). It is safe from any
// goroutine.
func (n *Network) Send(pkt *packet.Packet) error {
	wire, err := pkt.Marshal(nil)
	if err != nil {
		return err
	}
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return ErrClosed
	}
	ch, ok := n.nodes[pkt.IP.Dst]
	n.mu.Unlock()
	if !ok {
		return nil
	}
	deliver := func() {
		// Block: channel capacity models NIC queue back-pressure.
		defer func() { recover() }() // tolerate racing Close
		ch <- wire
	}
	if n.Latency > 0 {
		time.AfterFunc(n.Latency, deliver)
		return nil
	}
	deliver()
	return nil
}

// Close tears the LAN down and waits for delivery goroutines to drain.
func (n *Network) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	for _, ch := range n.nodes {
		close(ch)
	}
	n.mu.Unlock()
	n.wg.Wait()
}

// LoadBalancer is the live-runtime SRLB element: same protocol as
// internal/core, guarded by a mutex instead of the single-threaded
// simulator.
type LoadBalancer struct {
	addr   netip.Addr
	vip    netip.Addr
	scheme selection.Scheme
	net    *Network

	mu    sync.Mutex
	flows *flowtable.Table
	start time.Time
}

// NewLoadBalancer attaches a hunting LB for one VIP.
func NewLoadBalancer(net *Network, addr, vip netip.Addr, scheme selection.Scheme) *LoadBalancer {
	lb := &LoadBalancer{
		addr:   addr,
		vip:    vip,
		scheme: scheme,
		net:    net,
		flows:  flowtable.New(flowtable.Config{}),
		start:  time.Now(),
	}
	net.Attach(lb.handle, addr, vip)
	return lb
}

func (lb *LoadBalancer) now() time.Duration { return time.Since(lb.start) }

// FlowCount returns the number of tracked flows.
func (lb *LoadBalancer) FlowCount() int {
	lb.mu.Lock()
	defer lb.mu.Unlock()
	return lb.flows.Len()
}

func (lb *LoadBalancer) handle(pkt *packet.Packet) {
	if pkt.IP.Dst == lb.addr {
		if pkt.SRH == nil {
			return
		}
		lb.handleReturn(pkt)
		return
	}
	if pkt.IsSYN() {
		lb.handleSYN(pkt)
		return
	}
	lb.handleSteered(pkt)
}

func (lb *LoadBalancer) handleSYN(pkt *packet.Packet) {
	lb.mu.Lock()
	candidates := lb.scheme.Pick(pkt.Flow())
	lb.mu.Unlock()
	if len(candidates) == 0 {
		return
	}
	out := pkt.Clone()
	segs := append(append(make([]netip.Addr, 0, len(candidates)+1), candidates...), lb.vip)
	srh, err := srv6.New(ipv6.ProtoTCP, segs...)
	if err != nil {
		return
	}
	out.SRH = srh
	active, _ := srh.Active()
	out.IP.Dst = active
	lb.net.Send(out)
}

func (lb *LoadBalancer) handleReturn(pkt *packet.Packet) {
	srh := pkt.SRH
	active, err := srh.Active()
	if err != nil || active != lb.addr {
		return
	}
	server, err := srh.SegmentAtSL(srh.SegmentsLeft + 1)
	if err != nil {
		return
	}
	client, err := srh.Advance()
	if err != nil {
		return
	}
	if pkt.IsSYNACK() {
		lb.mu.Lock()
		lb.flows.Insert(lb.now(), pkt.Flow().Reverse(), server)
		lb.mu.Unlock()
	}
	out := pkt.Clone()
	out.SRH = nil
	out.IP.Dst = client
	lb.net.Send(out)
}

func (lb *LoadBalancer) handleSteered(pkt *packet.Packet) {
	flow := pkt.Flow()
	lb.mu.Lock()
	server, ok := lb.flows.Lookup(lb.now(), flow)
	if ok && (pkt.TCP.Flags.Has(tcpseg.FlagFIN) || pkt.TCP.Flags.Has(tcpseg.FlagRST)) {
		lb.flows.MarkClosing(lb.now(), flow)
	}
	lb.mu.Unlock()
	if !ok {
		return
	}
	out := pkt.Clone()
	srh, err := srv6.New(ipv6.ProtoTCP, server, lb.vip)
	if err != nil {
		return
	}
	out.SRH = srh
	out.IP.Dst = server
	lb.net.Send(out)
}

// ServerConfig assembles a live server.
type ServerConfig struct {
	Addr netip.Addr
	VIP  netip.Addr
	LB   netip.Addr
	// Workers is the pool size (busy count feeds the policy).
	Workers int
	// Policy is the acceptance policy consulted on hunt offers.
	Policy agent.Policy
	// Service computes the (slept) service duration for a request payload.
	Service func(payload []byte) time.Duration
}

// Server is the live-runtime application server + virtual router: a
// worker pool whose busy count drives the same agent policies as the
// simulator.
type Server struct {
	cfg ServerConfig
	net *Network

	// polMu serializes policy decisions; the policy reads the scoreboard
	// through BusyWorkers, which takes mu — never the other way around.
	polMu sync.Mutex

	mu       sync.Mutex
	busy     int
	conns    map[packet.FlowKey]bool
	accepted uint64
	refused  uint64
}

// NewServer attaches a live server.
func NewServer(net *Network, cfg ServerConfig) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = 8
	}
	if cfg.Service == nil {
		cfg.Service = func([]byte) time.Duration { return 10 * time.Millisecond }
	}
	if cfg.Policy == nil {
		cfg.Policy = agent.Always{}
	}
	s := &Server{cfg: cfg, net: net, conns: make(map[packet.FlowKey]bool)}
	net.Attach(s.handle, cfg.Addr)
	return s
}

// BusyWorkers implements appserver.Scoreboard.
func (s *Server) BusyWorkers() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.busy
}

// TotalWorkers implements appserver.Scoreboard.
func (s *Server) TotalWorkers() int { return s.cfg.Workers }

// Accepted returns the number of accepted connections.
func (s *Server) Accepted() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.accepted
}

func (s *Server) handle(pkt *packet.Packet) {
	if pkt.SRH != nil && pkt.IP.Dst == s.cfg.Addr && pkt.IsSYN() {
		if pkt.SRH.SegmentsLeft >= 2 {
			s.polMu.Lock()
			accept := s.cfg.Policy.Accept(s)
			s.polMu.Unlock()
			if !accept {
				s.mu.Lock()
				s.refused++
				s.mu.Unlock()
				out := pkt.Clone()
				if next, err := out.SRH.Advance(); err == nil {
					out.IP.Dst = next
					s.net.Send(out)
				}
				return
			}
		}
		s.acceptSYN(pkt)
		return
	}
	// Steered data packets: the live demo carries the request in the SYN,
	// so nothing further to do.
}

func (s *Server) acceptSYN(pkt *packet.Packet) {
	flow := pkt.Flow()
	s.mu.Lock()
	if s.conns[flow] {
		s.mu.Unlock()
		return
	}
	if s.busy >= s.cfg.Workers {
		s.mu.Unlock()
		// Overflow: RST straight back (abort-on-overflow).
		rst := &packet.Packet{
			IP: ipv6.Header{Src: flow.Dst, Dst: flow.Src},
			TCP: tcpseg.Segment{
				SrcPort: flow.DstPort, DstPort: flow.SrcPort,
				Flags: tcpseg.FlagRST | tcpseg.FlagACK,
			},
		}
		s.net.Send(rst)
		return
	}
	s.busy++
	s.accepted++
	s.conns[flow] = true
	s.mu.Unlock()

	// SYN-ACK through the LB (flow learning), then serve asynchronously.
	srh, err := srv6.New(ipv6.ProtoTCP, s.cfg.Addr, s.cfg.LB, flow.Src)
	if err != nil {
		return
	}
	next, _ := srh.Advance()
	synack := &packet.Packet{
		IP:  ipv6.Header{Src: flow.Dst, Dst: next},
		SRH: srh,
		TCP: tcpseg.Segment{
			SrcPort: flow.DstPort, DstPort: flow.SrcPort,
			Seq: 1, Ack: pkt.TCP.Seq + 1,
			Flags: tcpseg.FlagSYN | tcpseg.FlagACK,
		},
	}
	s.net.Send(synack)

	payload := append([]byte(nil), pkt.TCP.Payload...)
	go func() {
		time.Sleep(s.cfg.Service(payload))
		s.mu.Lock()
		s.busy--
		delete(s.conns, flow)
		s.mu.Unlock()
		resp := &packet.Packet{
			IP: ipv6.Header{Src: flow.Dst, Dst: flow.Src},
			TCP: tcpseg.Segment{
				SrcPort: flow.DstPort, DstPort: flow.SrcPort,
				Seq: 2, Ack: 2,
				Flags:   tcpseg.FlagPSH | tcpseg.FlagACK | tcpseg.FlagFIN,
				Payload: []byte("HTTP/1.1 200 OK\r\n\r\n"),
			},
		}
		s.net.Send(resp)
	}()
}

// Client issues queries and records response times in the live runtime.
type Client struct {
	addr netip.Addr
	vip  netip.Addr
	net  *Network

	mu       sync.Mutex
	nextPort uint16
	pending  map[packet.FlowKey]pendingLive
	done     chan Outcome
}

type pendingLive struct {
	sent time.Time
}

// Outcome is one completed live query.
type Outcome struct {
	RT      time.Duration
	Refused bool
}

// NewClient attaches a client.
func NewClient(net *Network, addr, vip netip.Addr) *Client {
	c := &Client{
		addr: addr, vip: vip, net: net,
		nextPort: 1024,
		pending:  make(map[packet.FlowKey]pendingLive),
		done:     make(chan Outcome, 4096),
	}
	net.Attach(c.handle, addr)
	return c
}

// Results exposes the completion stream.
func (c *Client) Results() <-chan Outcome { return c.done }

// Launch opens one connection with the given payload.
func (c *Client) Launch(payload []byte) {
	c.mu.Lock()
	port := c.nextPort
	c.nextPort++
	if c.nextPort == 0 {
		c.nextPort = 1024
	}
	flow := packet.FlowKey{Src: c.addr, Dst: c.vip, SrcPort: port, DstPort: 80}
	c.pending[flow] = pendingLive{sent: time.Now()}
	c.mu.Unlock()
	syn := &packet.Packet{
		IP: ipv6.Header{Src: c.addr, Dst: c.vip},
		TCP: tcpseg.Segment{
			SrcPort: port, DstPort: 80,
			Flags:   tcpseg.FlagSYN,
			Payload: payload,
		},
	}
	c.net.Send(syn)
}

func (c *Client) handle(pkt *packet.Packet) {
	flow := packet.FlowKey{
		Src: pkt.IP.Dst, Dst: pkt.IP.Src,
		SrcPort: pkt.TCP.DstPort, DstPort: pkt.TCP.SrcPort,
	}
	c.mu.Lock()
	pq, ok := c.pending[flow]
	if !ok {
		c.mu.Unlock()
		return
	}
	switch {
	case pkt.TCP.Flags.Has(tcpseg.FlagRST):
		delete(c.pending, flow)
		c.mu.Unlock()
		c.done <- Outcome{RT: time.Since(pq.sent), Refused: true}
	case len(pkt.TCP.Payload) > 0 && !pkt.IsSYNACK():
		delete(c.pending, flow)
		c.mu.Unlock()
		c.done <- Outcome{RT: time.Since(pq.sent)}
	default:
		c.mu.Unlock()
	}
}
